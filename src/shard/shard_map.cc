#include "shard/shard_map.h"

#include <algorithm>

namespace cdibot::shard {

ShardMap::ShardMap(size_t num_shards)
    : num_shards_(std::max<size_t>(1, num_shards)) {
  segments_.push_back(Segment{std::string(), 0});
}

ShardMap ShardMap::Balanced(const std::vector<std::string>& sorted_ids,
                            size_t num_shards) {
  ShardMap map(num_shards);
  map.segments_.clear();
  map.segments_.push_back(Segment{std::string(), 0});
  const size_t n = map.num_shards_;
  const size_t count = sorted_ids.size();
  for (size_t owner = 1; owner < n; ++owner) {
    const size_t cut = owner * count / n;
    if (cut >= count) break;
    const std::string& start = sorted_ids[cut];
    // Duplicate quantile cuts (fewer ids than shards) would create an
    // empty zero-width segment; skip them — the later owner gets nothing.
    if (start <= map.segments_.back().start) continue;
    map.segments_.push_back(Segment{start, owner});
  }
  return map;
}

size_t ShardMap::OwnerOf(std::string_view vm_id) const {
  // Last segment whose start <= vm_id. segments_[0].start is "", which
  // compares <= everything, so the search never lands before begin.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), vm_id,
      [](std::string_view id, const Segment& s) { return id < s.start; });
  return std::prev(it)->owner;
}

void ShardMap::Assign(const Range& range, size_t owner) {
  if (range.hi.has_value() && *range.hi <= range.lo) return;
  // The owner that rules at `hi` before this assignment must keep ruling
  // at `hi` after it (the assignment covers only [lo, hi)).
  const size_t owner_at_hi =
      range.hi.has_value() ? OwnerOf(*range.hi) : owner;

  // Drop every segment starting inside [lo, hi).
  auto first = std::lower_bound(
      segments_.begin(), segments_.end(), range.lo,
      [](const Segment& s, const std::string& lo) { return s.start < lo; });
  auto last = range.hi.has_value()
                  ? std::lower_bound(segments_.begin(), segments_.end(),
                                     *range.hi,
                                     [](const Segment& s,
                                        const std::string& hi) {
                                       return s.start < hi;
                                     })
                  : segments_.end();
  const bool hi_has_own_segment =
      last != segments_.end() && range.hi.has_value() &&
      last->start == *range.hi;
  auto it = segments_.erase(first, last);
  it = std::next(segments_.insert(it, Segment{range.lo, owner}));
  if (range.hi.has_value() && !hi_has_own_segment) {
    segments_.insert(it, Segment{*range.hi, owner_at_hi});
  }

  // Coalesce runs of equal owners so the map stays minimal.
  std::vector<Segment> merged;
  merged.reserve(segments_.size());
  for (Segment& s : segments_) {
    if (!merged.empty() && merged.back().owner == s.owner) continue;
    merged.push_back(std::move(s));
  }
  segments_ = std::move(merged);
}

std::vector<ShardMap::Move> ShardMap::Diff(const ShardMap& from,
                                           const ShardMap& to) {
  // Elementary boundaries: the union of both maps' segment starts. Each
  // elementary range has exactly one owner in each map.
  std::vector<std::string> bounds;
  bounds.reserve(from.segments_.size() + to.segments_.size());
  for (const Segment& s : from.segments_) bounds.push_back(s.start);
  for (const Segment& s : to.segments_) bounds.push_back(s.start);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  std::vector<Move> moves;
  for (size_t i = 0; i < bounds.size(); ++i) {
    const size_t old_owner = from.OwnerOf(bounds[i]);
    const size_t new_owner = to.OwnerOf(bounds[i]);
    if (old_owner == new_owner) continue;
    Range range{bounds[i], i + 1 < bounds.size()
                               ? std::optional<std::string>(bounds[i + 1])
                               : std::nullopt};
    // Extend the previous move when this range continues it with the same
    // (from, to) pair — fewer, larger handoffs.
    if (!moves.empty() && moves.back().from == old_owner &&
        moves.back().to == new_owner && moves.back().range.hi.has_value() &&
        *moves.back().range.hi == range.lo) {
      moves.back().range.hi = range.hi;
      continue;
    }
    moves.push_back(Move{std::move(range), old_owner, new_owner});
  }
  return moves;
}

}  // namespace cdibot::shard
