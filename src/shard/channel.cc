#include "shard/channel.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

namespace cdibot::shard {

namespace {

/// One direction of the pair: a bounded frame queue. Both endpoints share
/// the two directions via shared_ptr, so either side may outlive the
/// other.
struct Pipe {
  std::mutex mu;
  std::condition_variable not_empty;
  std::deque<std::string> frames;
  size_t capacity = 0;
  bool closed = false;
};

class InProcessEndpoint final : public Transport {
 public:
  InProcessEndpoint(std::shared_ptr<Pipe> inbound, std::shared_ptr<Pipe> outbound)
      : inbound_(std::move(inbound)), outbound_(std::move(outbound)) {}

  ~InProcessEndpoint() override { Close(); }

  Status Send(std::string frame) override {
    {
      std::lock_guard<std::mutex> lock(outbound_->mu);
      if (outbound_->closed) {
        return Status::Unavailable("transport closed");
      }
      if (outbound_->frames.size() >= outbound_->capacity) {
        return Status::ResourceExhausted("transport queue full");
      }
      outbound_->frames.push_back(std::move(frame));
    }
    outbound_->not_empty.notify_one();
    return Status::OK();
  }

  StatusOr<std::string> Recv(const Deadline& deadline) override {
    std::unique_lock<std::mutex> lock(inbound_->mu);
    const auto ready = [this] {
      return !inbound_->frames.empty() || inbound_->closed;
    };
    if (deadline.IsInfinite()) {
      inbound_->not_empty.wait(lock, ready);
    } else if (!inbound_->not_empty.wait_for(
                   lock,
                   std::chrono::milliseconds(deadline.Remaining().millis()),
                   ready)) {
      return Status::Aborted("recv deadline expired");
    }
    if (inbound_->frames.empty()) {
      // closed && drained
      return Status::Unavailable("transport closed");
    }
    std::string frame = std::move(inbound_->frames.front());
    inbound_->frames.pop_front();
    return frame;
  }

  void Close() override {
    for (const auto& pipe : {inbound_, outbound_}) {
      {
        std::lock_guard<std::mutex> lock(pipe->mu);
        pipe->closed = true;
      }
      pipe->not_empty.notify_all();
    }
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(inbound_->mu);
    return inbound_->closed;
  }

  size_t inbound_depth() const override {
    std::lock_guard<std::mutex> lock(inbound_->mu);
    return inbound_->frames.size();
  }

 private:
  std::shared_ptr<Pipe> inbound_;
  std::shared_ptr<Pipe> outbound_;
};

}  // namespace

TransportPair MakeInProcessPair(size_t capacity) {
  auto to_worker = std::make_shared<Pipe>();
  auto to_coordinator = std::make_shared<Pipe>();
  to_worker->capacity = capacity == 0 ? 1 : capacity;
  to_coordinator->capacity = to_worker->capacity;
  TransportPair pair;
  pair.coordinator_end =
      std::make_unique<InProcessEndpoint>(to_coordinator, to_worker);
  pair.worker_end =
      std::make_unique<InProcessEndpoint>(to_worker, to_coordinator);
  return pair;
}

}  // namespace cdibot::shard
