#ifndef CDIBOT_SHARD_WIRE_H_
#define CDIBOT_SHARD_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/time.h"

namespace cdibot::shard {

/// Binary frame writer for the shard protocol. Fixed-width little-endian
/// integers, length-prefixed strings, and bit-cast doubles: a double crosses
/// the wire as its exact IEEE-754 bit pattern, never through a decimal
/// round-trip, because the sharded-equivalence guarantee is BIT identity —
/// "%.17g and back" would be equality-up-to-parsing, a strictly weaker
/// claim. The encoding has no self-description; reader and writer agree on
/// the message schemas in message.h (the MessageKind tag is the version
/// joint: unknown kinds are rejected, new kinds extend the enum).
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void U64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void I64(int64_t v) { PutFixed(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void Time(TimePoint t) { I64(t.millis()); }
  void Dur(Duration d) { I64(d.millis()); }
  void Window(const Interval& iv) {
    Time(iv.start);
    Time(iv.end);
  }
  void StrMap(const std::map<std::string, std::string>& m) {
    U32(static_cast<uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      Str(k);
      Str(v);
    }
  }

  const std::string& frame() const& { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void PutFixed(const void* p, size_t n) {
    // Little-endian byte order on the wire. The in-process transport never
    // crosses an endianness boundary, but a socket transport will; byte
    // swapping here (on the rare big-endian host) keeps frames portable.
    const auto* bytes = static_cast<const unsigned char*>(p);
    if constexpr (std::endian::native == std::endian::big) {
      for (size_t i = n; i-- > 0;) {
        out_.push_back(static_cast<char>(bytes[i]));
      }
    } else {
      out_.append(reinterpret_cast<const char*>(bytes), n);
    }
  }

  std::string out_;
};

/// Bounds-checked reader over a frame. Errors latch: the first truncation
/// or overlong string poisons the reader, every later read returns a zero
/// value, and status() reports the failure once at the end — so decode
/// functions read field-by-field without a Status check per field.
class WireReader {
 public:
  explicit WireReader(std::string_view frame) : frame_(frame) {}

  uint8_t U8() {
    uint8_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint32_t n = U32();
    if (!ok_ || n > frame_.size() - pos_) {
      Poison("truncated string");
      return {};
    }
    std::string s(frame_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  TimePoint Time() { return TimePoint::FromMillis(I64()); }
  Duration Dur() { return Duration::Millis(I64()); }
  Interval Window() {
    const TimePoint start = Time();
    return Interval(start, Time());
  }
  std::map<std::string, std::string> StrMap() {
    std::map<std::string, std::string> m;
    const uint32_t n = U32();
    for (uint32_t i = 0; i < n && ok_; ++i) {
      std::string k = Str();
      m[std::move(k)] = Str();
    }
    return m;
  }

  /// Reads a count field and validates it against the bytes actually left
  /// in the frame (each element needs at least `min_element_bytes`), so a
  /// corrupted length prefix cannot drive a multi-gigabyte reserve.
  uint32_t Count(size_t min_element_bytes = 1) {
    const uint32_t n = U32();
    if (ok_ && min_element_bytes > 0 &&
        n > (frame_.size() - pos_) / min_element_bytes) {
      Poison("count exceeds remaining frame");
      return 0;
    }
    return n;
  }

  /// Latches a decoder-level failure — a cross-field invariant the byte
  /// reads alone cannot catch, like an out-of-range table index — into the
  /// same error state a truncation would produce.
  void Fail(std::string_view why) { Poison(why); }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == frame_.size(); }
  Status status() const {
    if (ok_) return Status::OK();
    return Status::DataLoss("malformed shard frame: " + error_);
  }

 private:
  void Poison(std::string_view why) {
    if (ok_) {
      ok_ = false;
      error_ = std::string(why);
    }
  }
  void GetFixed(void* p, size_t n) {
    if (!ok_ || n > frame_.size() - pos_) {
      Poison("truncated frame");
      std::memset(p, 0, n);
      return;
    }
    auto* bytes = static_cast<unsigned char*>(p);
    if constexpr (std::endian::native == std::endian::big) {
      for (size_t i = n; i-- > 0;) {
        bytes[i] = static_cast<unsigned char>(frame_[pos_++]);
      }
    } else {
      std::memcpy(p, frame_.data() + pos_, n);
      pos_ += n;
    }
  }

  std::string_view frame_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_WIRE_H_
