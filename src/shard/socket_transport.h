#ifndef CDIBOT_SHARD_SOCKET_TRANSPORT_H_
#define CDIBOT_SHARD_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "common/time.h"
#include "shard/channel.h"

namespace cdibot::shard {

/// On-the-wire layout of one frame over a stream socket:
///
///   [u32 le length][payload bytes][u32 le crc32(payload)]
///
/// The length prefix delimits frames on the byte stream; the CRC32 trailer
/// (IEEE, the same polynomial the checkpoint store uses) catches the
/// bit-flips and splices the network chaos layer injects. The payload is an
/// ordinary message.h frame — the socket layer is pure framing and never
/// interprets it.
inline constexpr size_t kWireHeaderBytes = 4;
inline constexpr size_t kWireTrailerBytes = 4;

/// Tuning for a socket endpoint.
struct SocketTransportOptions {
  /// Frames whose length prefix exceeds this are rejected as DataLoss
  /// rather than trusted to allocate gigabytes: a corrupted length prefix
  /// is indistinguishable from a hostile one. Checkpoint frames for big
  /// shards are tens of MB at most.
  size_t max_frame_bytes = size_t{256} << 20;
  /// Bytes per read() into the frame assembler.
  size_t read_chunk_bytes = 64 << 10;
};

/// Wraps `payload` in the wire framing above.
std::string EncodeWireFrame(std::string_view payload);

/// Incremental frame reassembly over an arbitrary byte stream: Feed() the
/// bytes as they arrive (any split — the chaos suite feeds one byte at a
/// time), Next() pops completed payloads.
///
/// Next() returns:
///   OK        — one complete, CRC-verified payload
///   NotFound  — no complete frame buffered yet (feed more bytes)
///   DataLoss  — CRC mismatch or an oversize length prefix. Framing is lost
///               for good on a byte stream, so the error latches: every
///               later Next() repeats it and the connection must be torn
///               down.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes = size_t{256} << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes);
  StatusOr<std::string> Next();

  /// True when buffered bytes form an incomplete frame — EOF here means the
  /// peer died mid-write (a torn frame), not a clean shutdown.
  bool mid_frame() const { return poisoned_ ? false : pos_ < buf_.size(); }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
  std::string error_;
};

/// Transport over a connected stream socket (Unix-domain or TCP). Owns the
/// fd. Implements the Transport contract the in-process channel pins:
///
///   - Send appends one framed payload, handling short writes, EINTR and
///     poll()-based waits for socket-buffer space. A full send buffer blocks
///     (that is the socket's backpressure); a dead peer fails Unavailable.
///   - Recv reassembles frames from arbitrary read() splits. Deadline expiry
///     is Aborted; clean EOF after the last whole frame is Unavailable; EOF
///     mid-frame is a torn frame, surfaced as DataLoss (and counted in
///     shard.transport.torn_frames); a CRC-rejected frame is DataLoss and
///     latches — framing is unrecoverable on a byte stream.
///   - Close shuts the socket down in both directions (idempotent, safe from
///     any thread); blocked Recvs drain frames already assembled user-side,
///     then fail Unavailable. The fd itself is closed in the destructor.
///
/// Threading: one sender and one receiver may run concurrently with each
/// other and with Close()/closed()/inbound_depth(). Multiple concurrent
/// senders serialize on an internal mutex; the receive path assumes a
/// single consumer (the coordinator serializes per-shard calls, the worker
/// serves from one thread).
class SocketTransport final : public Transport {
 public:
  /// Takes ownership of a connected stream-socket fd.
  explicit SocketTransport(int fd, SocketTransportOptions options = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Status Send(std::string frame) override;
  StatusOr<std::string> Recv(const Deadline& deadline = Deadline()) override;
  void Close() override;
  bool closed() const override;
  size_t inbound_depth() const override;

  /// Writes raw bytes to the socket verbatim, bypassing the framing layer.
  /// This is the network-chaos hook: the fault injector builds a wire frame,
  /// mangles its bytes, and puts the damage on the real socket so the peer's
  /// assembler sees exactly what a hostile network would deliver.
  Status SendRaw(std::string_view bytes);

  int fd() const { return fd_; }

 private:
  /// poll()+write() loop: short writes resume where they left off, EINTR
  /// retries, a hung-up peer returns Unavailable.
  Status WriteAll(std::string_view bytes);
  /// One poll()+read() into the assembler. Requires recv_mu_ held.
  Status FillLocked(const Deadline& deadline);
  /// Moves completed frames out of the assembler into ready_. Requires
  /// recv_mu_ held.
  void DrainAssemblerLocked();

  const SocketTransportOptions options_;
  const int fd_;
  std::atomic<bool> closed_{false};

  std::mutex send_mu_;

  std::mutex recv_mu_;
  FrameAssembler assembler_;
  std::deque<std::string> ready_;
  std::atomic<size_t> ready_count_{0};
  bool eof_ = false;
  /// First unrecoverable receive error (CRC reject, torn frame, reset);
  /// returned once, then Unavailable.
  Status latched_;
  bool latched_reported_ = false;
};

/// A bound, listening socket producing SocketTransports. Move-only; the
/// Unix-domain variant unlinks its path on destruction.
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens on a Unix-domain socket at `path` (unlinking any
  /// stale file first). Fails InvalidArgument if the path exceeds
  /// sockaddr_un capacity.
  static StatusOr<SocketListener> BindUnix(const std::string& path);

  /// Binds and listens on loopback TCP. `port` 0 picks an ephemeral port;
  /// read it back from port().
  static StatusOr<SocketListener> BindTcp(uint16_t port);

  /// Waits up to `deadline` for one inbound connection. Aborted on deadline
  /// expiry, Unavailable once Close()d.
  StatusOr<std::unique_ptr<SocketTransport>> Accept(
      const Deadline& deadline = Deadline(),
      SocketTransportOptions options = {});

  /// Stops accepting: wakes a blocked Accept with Unavailable. Idempotent,
  /// safe from any thread. The fd closes in the destructor.
  void Close();

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;  // unix-domain only; unlinked on destruction
  uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

/// Connects to a Unix-domain socket, waiting up to `deadline` for the
/// connect to complete. A missing or refusing socket is Unavailable (the
/// server may not have bound yet — callers wrap this in RetryPolicy).
StatusOr<std::unique_ptr<SocketTransport>> ConnectUnix(
    const std::string& path, const Deadline& deadline = Deadline(),
    SocketTransportOptions options = {});

/// Connects to loopback TCP `port`, ditto.
StatusOr<std::unique_ptr<SocketTransport>> ConnectTcp(
    uint16_t port, const Deadline& deadline = Deadline(),
    SocketTransportOptions options = {});

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_SOCKET_TRANSPORT_H_
