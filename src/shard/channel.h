#ifndef CDIBOT_SHARD_CHANNEL_H_
#define CDIBOT_SHARD_CHANNEL_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/statusor.h"
#include "common/time.h"

namespace cdibot::shard {

/// An IPC-shaped duplex endpoint carrying opaque frames. The coordinator
/// and workers speak exclusively through this interface — request/response
/// structs are fully serialized into frames (see message.h/wire.h) even
/// for the in-process transport below, so a socket transport can slot in
/// without touching either side's logic.
///
/// Error vocabulary (callers key failure semantics off the code):
///   Unavailable       — the peer is gone (channel closed). The coordinator
///                       treats this as a dead shard: degraded DataQuality
///                       now, outbox replay on recovery.
///   Aborted           — Recv deadline expired with the peer still alive (a
///                       straggler). The response may arrive later; the
///                       request-id protocol discards it as stale.
///   ResourceExhausted — Send found the peer's inbound queue full
///                       (backpressure; the call protocol keeps depth
///                       bounded, so this signals a stuck peer).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues one frame to the peer. Non-blocking.
  virtual Status Send(std::string frame) = 0;

  /// Dequeues the next inbound frame, waiting up to `deadline` (infinite
  /// by default).
  virtual StatusOr<std::string> Recv(const Deadline& deadline = Deadline()) = 0;

  /// Closes both directions: pending Recvs wake with Unavailable once
  /// drained, future Sends fail. Idempotent; either side may close.
  virtual void Close() = 0;

  virtual bool closed() const = 0;

  /// Frames currently queued toward this endpoint (its inbound depth).
  /// Feeds the per-shard queue-depth gauges.
  virtual size_t inbound_depth() const = 0;
};

/// A connected pair of in-process endpoints backed by two bounded frame
/// queues (one per direction) — the local stand-in for a socket pair.
struct TransportPair {
  std::unique_ptr<Transport> coordinator_end;
  std::unique_ptr<Transport> worker_end;
};

/// Creates a connected in-process pair; each direction holds at most
/// `capacity` frames.
TransportPair MakeInProcessPair(size_t capacity = 4096);

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_CHANNEL_H_
