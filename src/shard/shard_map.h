#ifndef CDIBOT_SHARD_SHARD_MAP_H_
#define CDIBOT_SHARD_SHARD_MAP_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cdibot::shard {

/// Deterministic assignment of VM ids to shards by contiguous
/// lexicographic range. The id space [-inf, +inf) is partitioned into
/// sorted segments, each owned by one shard; OwnerOf is a binary search.
/// Range ownership (rather than hashing) is what makes rebalance handoff
/// tractable: moving a range moves every piece of state keyed by a target
/// in it — registered VMs, orphaned events of NOT-yet-registered targets,
/// and per-target quality accounting — with a single ExtractRange call.
class ShardMap {
 public:
  /// One contiguous range [start, next segment's start) and its owner.
  /// The first segment always starts at "" (the minimum string).
  struct Segment {
    std::string start;
    size_t owner = 0;
  };

  /// A half-open id range; end nullopt means unbounded above.
  struct Range {
    std::string lo;
    std::optional<std::string> hi;
  };

  /// One range whose ownership differs between two maps.
  struct Move {
    Range range;
    size_t from = 0;
    size_t to = 0;
  };

  /// Everything maps to shard 0 until ranges are assigned.
  explicit ShardMap(size_t num_shards);

  /// Builds a balanced map: `sorted_ids` (ascending, unique) are split
  /// into `num_shards` near-equal contiguous runs, cut at quantile ids.
  /// Deterministic in its inputs. With fewer ids than shards the trailing
  /// shards own empty ranges.
  static ShardMap Balanced(const std::vector<std::string>& sorted_ids,
                           size_t num_shards);

  size_t OwnerOf(std::string_view vm_id) const;

  /// Reassigns [range.lo, range.hi) to `owner`, splitting and coalescing
  /// segments as needed. The incremental commit primitive of rebalance:
  /// each range handoff flips ownership only after its state transfer
  /// succeeded, so a rebalance aborted midway leaves a consistent map.
  void Assign(const Range& range, size_t owner);

  /// Ranges whose owner differs between `from` and `to` (elementary
  /// ranges: each has exactly one owner in both maps). Extract/install
  /// these, in order, to turn `from` into `to`.
  static std::vector<Move> Diff(const ShardMap& from, const ShardMap& to);

  size_t num_shards() const { return num_shards_; }
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  size_t num_shards_;
  /// Sorted by start; segments_[0].start is always "".
  std::vector<Segment> segments_;
};

}  // namespace cdibot::shard

#endif  // CDIBOT_SHARD_SHARD_MAP_H_
