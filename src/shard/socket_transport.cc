#include "shard/socket_transport.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "obs/metrics.h"

namespace cdibot::shard {

namespace {

struct TransportMetrics {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Counter* torn_frames;
  obs::Counter* crc_rejects;
  obs::Counter* oversize_rejects;
  obs::Counter* accepts;
  obs::Counter* connects;
};

const TransportMetrics& Metrics() {
  static const TransportMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return TransportMetrics{
        .frames_sent = reg.GetCounter("shard.transport.frames_sent"),
        .frames_received = reg.GetCounter("shard.transport.frames_received"),
        .bytes_sent = reg.GetCounter("shard.transport.bytes_sent"),
        .bytes_received = reg.GetCounter("shard.transport.bytes_received"),
        .torn_frames = reg.GetCounter("shard.transport.torn_frames"),
        .crc_rejects = reg.GetCounter("shard.transport.crc_rejects"),
        .oversize_rejects = reg.GetCounter("shard.transport.oversize_rejects"),
        .accepts = reg.GetCounter("shard.transport.accepts"),
        .connects = reg.GetCounter("shard.transport.connects"),
    };
  }();
  return m;
}

void PutU32Le(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32Le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

/// Remaining budget as a poll() timeout: -1 for infinite, clamped to int
/// range (Deadline caps "infinite" Remaining() at a year, which overflows
/// int milliseconds).
int PollTimeoutMs(const Deadline& deadline) {
  if (deadline.IsInfinite()) return -1;
  const int64_t ms = deadline.Remaining().millis();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(ms, 1 << 30));
}

/// poll() one fd for `events`, honoring the deadline and EINTR. Returns
/// OK when an event is pending, Aborted on deadline expiry.
Status PollFd(int fd, short events, const Deadline& deadline) {
  while (true) {
    if (!deadline.IsInfinite() && deadline.Expired()) {
      return Status::Aborted("socket wait deadline expired");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Aborted("socket wait deadline expired");
    if (errno == EINTR) continue;
    return Status::Internal(std::string("poll failed: ") + strerror(errno));
  }
}

void SetCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

std::string EncodeWireFrame(std::string_view payload) {
  std::string out;
  out.reserve(kWireHeaderBytes + payload.size() + kWireTrailerBytes);
  PutU32Le(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  PutU32Le(&out, Crc32(payload));
  return out;
}

void FrameAssembler::Feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact the consumed prefix before it grows unbounded.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (64 << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

StatusOr<std::string> FrameAssembler::Next() {
  if (poisoned_) return Status::DataLoss(error_);
  const size_t avail = buf_.size() - pos_;
  if (avail < kWireHeaderBytes) {
    return Status::NotFound("incomplete frame");
  }
  const uint32_t len = GetU32Le(buf_.data() + pos_);
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    error_ = "wire frame length " + std::to_string(len) +
             " exceeds limit (corrupt length prefix?)";
    Metrics().oversize_rejects->Increment();
    return Status::DataLoss(error_);
  }
  const size_t total = kWireHeaderBytes + static_cast<size_t>(len) +
                       kWireTrailerBytes;
  if (avail < total) return Status::NotFound("incomplete frame");
  const std::string_view payload(buf_.data() + pos_ + kWireHeaderBytes, len);
  const uint32_t want_crc =
      GetU32Le(buf_.data() + pos_ + kWireHeaderBytes + len);
  if (Crc32(payload) != want_crc) {
    poisoned_ = true;
    error_ = "wire frame CRC mismatch";
    Metrics().crc_rejects->Increment();
    return Status::DataLoss(error_);
  }
  std::string out(payload);
  pos_ += total;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return out;
}

SocketTransport::SocketTransport(int fd, SocketTransportOptions options)
    : options_(options), fd_(fd), assembler_(options.max_frame_bytes) {}

SocketTransport::~SocketTransport() {
  Close();
  if (fd_ >= 0) ::close(fd_);
}

Status SocketTransport::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: the peer is slow. Block until writable — this
      // is the transport's backpressure (the in-process channel returns
      // ResourceExhausted from a bounded queue; a socket's bound is its
      // kernel buffer).
      Status st = PollFd(fd_, POLLOUT, Deadline());
      if (!st.ok()) return st;
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      closed_.store(true, std::memory_order_release);
      return Status::Unavailable("transport closed (peer gone)");
    }
    return Status::Internal(std::string("socket send failed: ") +
                            strerror(errno));
  }
  return Status::OK();
}

Status SocketTransport::Send(std::string frame) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("transport closed");
  }
  const std::string wire = EncodeWireFrame(frame);
  CDIBOT_RETURN_IF_ERROR(WriteAll(wire));
  Metrics().frames_sent->Increment();
  Metrics().bytes_sent->Add(wire.size());
  return Status::OK();
}

Status SocketTransport::SendRaw(std::string_view bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("transport closed");
  }
  CDIBOT_RETURN_IF_ERROR(WriteAll(bytes));
  Metrics().bytes_sent->Add(bytes.size());
  return Status::OK();
}

void SocketTransport::DrainAssemblerLocked() {
  while (true) {
    auto frame_or = assembler_.Next();
    if (frame_or.ok()) {
      ready_.push_back(std::move(frame_or).value());
      ready_count_.store(ready_.size(), std::memory_order_release);
      Metrics().frames_received->Increment();
      continue;
    }
    if (frame_or.status().code() == StatusCode::kDataLoss && latched_.ok()) {
      // CRC reject / oversize: the byte stream is unframeable from here on.
      latched_ = frame_or.status();
    }
    return;
  }
}

Status SocketTransport::FillLocked(const Deadline& deadline) {
  CDIBOT_RETURN_IF_ERROR(PollFd(fd_, POLLIN, deadline));
  std::string chunk(options_.read_chunk_bytes, '\0');
  while (true) {
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n > 0) {
      assembler_.Feed(std::string_view(chunk.data(), static_cast<size_t>(n)));
      Metrics().bytes_received->Add(static_cast<uint64_t>(n));
      DrainAssemblerLocked();
      return Status::OK();
    }
    if (n == 0) {
      eof_ = true;
      return Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == ECONNRESET) {
      // A reset tears whatever was in flight; mid-frame bytes are a torn
      // frame exactly like an EOF mid-frame.
      eof_ = true;
      return Status::OK();
    }
    return Status::Internal(std::string("socket recv failed: ") +
                            strerror(errno));
  }
}

StatusOr<std::string> SocketTransport::Recv(const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(recv_mu_);
  while (true) {
    if (!ready_.empty()) {
      // Close() drains already-assembled frames first (the contract the
      // in-process channel pins): data that fully arrived is delivered.
      std::string frame = std::move(ready_.front());
      ready_.pop_front();
      ready_count_.store(ready_.size(), std::memory_order_release);
      return frame;
    }
    if (!latched_.ok()) {
      if (!latched_reported_) {
        latched_reported_ = true;
        return latched_;
      }
      return Status::Unavailable("transport closed (unrecoverable stream)");
    }
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("transport closed");
    }
    if (eof_) {
      if (assembler_.mid_frame()) {
        // The peer died mid-write: a torn frame. Latch DataLoss so the
        // caller can distinguish "peer went away between frames" (clean
        // Unavailable, outbox replay suffices) from "a frame tore" (the
        // reconnect path must treat the in-flight request as unresolved).
        Metrics().torn_frames->Increment();
        latched_ = Status::DataLoss(
            "torn frame: connection ended mid-frame (" +
            std::to_string(assembler_.buffered_bytes()) + " bytes buffered)");
        latched_reported_ = true;
        return latched_;
      }
      return Status::Unavailable("transport closed (peer gone)");
    }
    // Blocking in poll() with recv_mu_ held is safe: Close() never takes
    // recv_mu_ — it shuts the socket down, which wakes the poll.
    Status st = FillLocked(deadline);
    if (!st.ok()) return st;  // Aborted (deadline) or Internal
  }
}

void SocketTransport::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown(), not close(): wakes any thread blocked in poll() on this fd
  // without invalidating the descriptor under it. The fd is released in the
  // destructor, when no caller can still hold it.
  (void)::shutdown(fd_, SHUT_RDWR);
}

bool SocketTransport::closed() const {
  return closed_.load(std::memory_order_acquire);
}

size_t SocketTransport::inbound_depth() const {
  return ready_count_.load(std::memory_order_acquire);
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      port_(other.port_),
      closed_(other.closed_.load(std::memory_order_acquire)) {
  other.fd_ = -1;
  other.path_.clear();
}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      if (!path_.empty()) ::unlink(path_.c_str());
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    port_ = other.port_;
    closed_.store(other.closed_.load(std::memory_order_acquire),
                  std::memory_order_release);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

StatusOr<SocketListener> SocketListener::BindUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            strerror(errno));
  }
  SetCloexec(fd);
  ::unlink(path.c_str());
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::Internal("bind(" + path + ") failed: " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Internal("listen(" + path + ") failed: " + err);
  }
  SocketListener l;
  l.fd_ = fd;
  l.path_ = path;
  return l;
}

StatusOr<SocketListener> SocketListener::BindTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            strerror(errno));
  }
  SetCloexec(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::Internal("bind(tcp:" + std::to_string(port) +
                            ") failed: " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::Internal("listen failed: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname failed: " + err);
  }
  SocketListener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

StatusOr<std::unique_ptr<SocketTransport>> SocketListener::Accept(
    const Deadline& deadline, SocketTransportOptions options) {
  if (fd_ < 0) return Status::FailedPrecondition("listener not bound");
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener closed");
    }
    CDIBOT_RETURN_IF_ERROR(PollFd(fd_, POLLIN, deadline));
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener closed");
    }
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      SetCloexec(conn);
      if (!path_.empty()) {
        // Nothing to tune for AF_UNIX.
      } else {
        const int one = 1;
        (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      Metrics().accepts->Increment();
      return std::make_unique<SocketTransport>(conn, options);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EINVAL || errno == EBADF) {
      return Status::Unavailable("listener closed");
    }
    return Status::Internal(std::string("accept failed: ") + strerror(errno));
  }
}

void SocketListener::Close() {
  if (fd_ < 0) return;
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  (void)::shutdown(fd_, SHUT_RDWR);
}

namespace {

StatusOr<std::unique_ptr<SocketTransport>> ConnectFd(
    int fd, const struct sockaddr* addr, socklen_t addrlen,
    const Deadline& deadline, SocketTransportOptions options,
    const std::string& what) {
  SetCloexec(fd);
  // Non-blocking connect so the deadline bounds the wait.
  const int flags = ::fcntl(fd, F_GETFL);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, addrlen);
  if (rc < 0 && errno == EINTR) {
    // In-progress after EINTR; fall through to the poll below.
    rc = -1;
    errno = EINPROGRESS;
  }
  if (rc < 0 && errno == EINPROGRESS) {
    Status st = PollFd(fd, POLLOUT, deadline);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    int err = 0;
    socklen_t errlen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) < 0 ||
        err != 0) {
      ::close(fd);
      return Status::Unavailable("connect(" + what +
                                 ") failed: " + strerror(err ? err : errno));
    }
  } else if (rc < 0) {
    const int err = errno;
    ::close(fd);
    // ENOENT/ECONNREFUSED: the server has not bound yet (or died). Both are
    // Unavailable so RetryPolicy treats them as retryable.
    return Status::Unavailable("connect(" + what +
                               ") failed: " + strerror(err));
  }
  (void)::fcntl(fd, F_SETFL, flags);
  Metrics().connects->Increment();
  return std::make_unique<SocketTransport>(fd, options);
}

}  // namespace

StatusOr<std::unique_ptr<SocketTransport>> ConnectUnix(
    const std::string& path, const Deadline& deadline,
    SocketTransportOptions options) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  return ConnectFd(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr), deadline, options, path);
}

StatusOr<std::unique_ptr<SocketTransport>> ConnectTcp(
    uint16_t port, const Deadline& deadline, SocketTransportOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return ConnectFd(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr), deadline, options,
                   "tcp:" + std::to_string(port));
}

}  // namespace cdibot::shard
