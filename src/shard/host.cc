#include "shard/host.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

extern char** environ;

namespace cdibot::shard {

namespace {

/// Applies the chaos decorator (when present) to a freshly dialed socket.
StatusOr<std::unique_ptr<Transport>> Decorate(
    StatusOr<std::unique_ptr<SocketTransport>> conn_or,
    const SocketDecorator& decorator, size_t shard) {
  CDIBOT_RETURN_IF_ERROR(conn_or.status());
  std::unique_ptr<SocketTransport> conn = std::move(conn_or).value();
  if (decorator != nullptr) return decorator(std::move(conn), shard);
  return std::unique_ptr<Transport>(std::move(conn));
}

}  // namespace

// --- InProcessHost ---------------------------------------------------------

InProcessHost::InProcessHost(size_t index, const EventCatalog* catalog,
                             const EventWeightModel* weights,
                             StreamingCdiOptions options,
                             size_t channel_capacity)
    : index_(index),
      catalog_(catalog),
      weights_(weights),
      options_(std::move(options)),
      channel_capacity_(channel_capacity) {}

InProcessHost::~InProcessHost() { Kill(); }

Status InProcessHost::Respawn() {
  Kill();
  TransportPair pair = MakeInProcessPair(channel_capacity_);
  worker_ = std::make_unique<ShardWorker>(index_, catalog_, weights_,
                                          options_, std::move(pair.worker_end));
  worker_->Start();
  coordinator_end_ = std::move(pair.coordinator_end);
  return Status::OK();
}

StatusOr<std::unique_ptr<Transport>> InProcessHost::Connect(
    const Deadline& /*deadline*/) {
  if (coordinator_end_ == nullptr) {
    return Status::FailedPrecondition(
        "in-process channel already taken; respawn the worker to reconnect");
  }
  return std::move(coordinator_end_);
}

void InProcessHost::Kill() {
  if (worker_ != nullptr) worker_->Kill();
  worker_.reset();
  coordinator_end_.reset();
}

bool InProcessHost::Alive() { return worker_ != nullptr && worker_->alive(); }

// --- SocketThreadHost ------------------------------------------------------

SocketThreadHost::SocketThreadHost(size_t index, const EventCatalog* catalog,
                                   const EventWeightModel* weights,
                                   StreamingCdiOptions options,
                                   std::string socket_path,
                                   SocketTransportOptions transport_options,
                                   SocketDecorator decorator)
    : index_(index),
      socket_path_(std::move(socket_path)),
      transport_options_(transport_options),
      decorator_(std::move(decorator)),
      service_(std::make_unique<ShardService>(index, catalog, weights,
                                              std::move(options))) {}

SocketThreadHost::~SocketThreadHost() { Kill(); }

Status SocketThreadHost::Respawn() {
  Kill();
  CDIBOT_ASSIGN_OR_RETURN(SocketListener listener,
                          SocketListener::BindUnix(socket_path_));
  server_ = std::make_unique<ShardServer>(service_.get(), std::move(listener),
                                          transport_options_);
  server_->Start();
  return Status::OK();
}

StatusOr<std::unique_ptr<Transport>> SocketThreadHost::Connect(
    const Deadline& deadline) {
  return Decorate(ConnectUnix(socket_path_, deadline, transport_options_),
                  decorator_, index_);
}

void SocketThreadHost::Kill() {
  if (server_ == nullptr) return;
  server_->Kill();  // stop + engine reset: the "process" died
  server_.reset();
}

bool SocketThreadHost::Alive() {
  return server_ != nullptr && server_->running();
}

// --- ProcessHost -----------------------------------------------------------

ProcessHost::ProcessHost(size_t index, std::string binary,
                         std::string socket_path,
                         SocketTransportOptions transport_options,
                         SocketDecorator decorator)
    : index_(index),
      binary_(std::move(binary)),
      socket_path_(std::move(socket_path)),
      transport_options_(transport_options),
      decorator_(std::move(decorator)) {}

ProcessHost::~ProcessHost() { Kill(); }

Status ProcessHost::Respawn() {
  Kill();
  // The child binds the listener itself; clear any stale socket file so a
  // respawn at the same address cannot dial the previous incarnation.
  ::unlink(socket_path_.c_str());

  const std::string index_arg = std::to_string(index_);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary_.c_str()));
  argv.push_back(const_cast<char*>("--listen"));
  argv.push_back(const_cast<char*>(socket_path_.c_str()));
  argv.push_back(const_cast<char*>("--index"));
  argv.push_back(const_cast<char*>(index_arg.c_str()));
  argv.push_back(nullptr);

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, binary_.c_str(), nullptr, nullptr, argv.data(),
                    environ);
  if (rc != 0) {
    return Status::Internal("posix_spawn " + binary_ + ": " +
                            std::strerror(rc));
  }
  pid_ = static_cast<int>(pid);
  return Status::OK();
}

StatusOr<std::unique_ptr<Transport>> ProcessHost::Connect(
    const Deadline& deadline) {
  if (!Alive()) return Status::Unavailable("shard worker process not running");
  return Decorate(ConnectUnix(socket_path_, deadline, transport_options_),
                  decorator_, index_);
}

void ProcessHost::Kill() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  ::waitpid(pid_, nullptr, 0);
  pid_ = -1;
  ::unlink(socket_path_.c_str());
}

bool ProcessHost::Alive() {
  if (pid_ <= 0) return false;
  int wstatus = 0;
  const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == 0) return true;  // still running
  // Exited (reaped now) or unreachable: either way, dead.
  pid_ = -1;
  return false;
}

}  // namespace cdibot::shard
