#ifndef CDIBOT_ABTEST_EXPERIMENT_H_
#define CDIBOT_ABTEST_EXPERIMENT_H_

#include <array>
#include <string>
#include <vector>

#include "cdi/vm_cdi.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "stats/workflow.h"

namespace cdibot {

/// One experiment arm: a candidate operation action and its assignment
/// probability (Sec. VI-D: "randomly carry out one of the potential
/// actions, following a predefined probability distribution").
struct AbArm {
  std::string action_name;
  double probability = 0.0;
};

/// The analyzed outcome of an A/B test: one Fig.-10 workflow run per CDI
/// sub-metric (Table V has one row per sub-metric), plus per-arm summary
/// statistics of the Performance-Indicator distributions (Fig. 11).
struct AbTestReport {
  /// Indexed by StabilityCategory.
  std::array<stats::WorkflowResult, kNumStabilityCategories> per_metric;
  /// Arm x category mean CDI.
  std::vector<std::array<double, kNumStabilityCategories>> arm_means;
  /// Observations per arm.
  std::vector<size_t> arm_counts;
  /// Arm action names, aligned with arm_means.
  std::vector<std::string> arm_names;

  /// Renders the Table-V layout (omnibus p-value and significance per
  /// sub-metric, post-hoc pairs where run).
  std::string ToTableString(double alpha = 0.05) const;
};

/// A/B experiment for operation-action optimization (Sec. VI-D / Case 8).
/// VMs hit by the rule under study are randomly assigned an arm; the CDI of
/// each VM over the following observation window becomes one observation in
/// that arm's sequence; hypothesis testing then compares arms per
/// sub-metric.
class AbTestExperiment {
 public:
  /// Requires >= 2 arms with positive probabilities summing to 1 (+-1e-9).
  static StatusOr<AbTestExperiment> Create(std::vector<AbArm> arms,
                                           uint64_t seed);

  size_t num_arms() const { return arms_.size(); }
  const std::vector<AbArm>& arms() const { return arms_; }

  /// Randomly assigns the next VM to an arm (by the configured
  /// probabilities) and returns the arm index.
  size_t Assign();

  /// Records one VM's post-action CDI under arm `arm`.
  Status AddObservation(size_t arm, const VmCdi& cdi);

  size_t ObservationCount(size_t arm) const;

  /// Runs the Fig.-10 workflow for each sub-metric across arms. Requires
  /// every arm to have >= 3 observations.
  StatusOr<AbTestReport> Analyze(
      const stats::WorkflowOptions& options = {}) const;

  /// Sec. VI-D's alternative: "aggregate the three sub-metrics into a
  /// single one using techniques like weighted summation before proceeding
  /// with the test" — one hypothesis workflow over the scalarized CDI
  /// w_u*U + w_p*P + w_c*C per VM. Requires non-negative weights with a
  /// positive sum and >= 3 observations per arm.
  StatusOr<stats::WorkflowResult> AnalyzeComposite(
      double w_u, double w_p, double w_c,
      const stats::WorkflowOptions& options = {}) const;

 private:
  AbTestExperiment(std::vector<AbArm> arms, uint64_t seed)
      : arms_(std::move(arms)), rng_(seed) {
    observations_.resize(arms_.size());
  }

  std::vector<AbArm> arms_;
  Rng rng_;
  // observations_[arm][category] is the CDI sequence for that sub-metric.
  std::vector<std::array<std::vector<double>, kNumStabilityCategories>>
      observations_;
};

}  // namespace cdibot

#endif  // CDIBOT_ABTEST_EXPERIMENT_H_
