#include "abtest/experiment.h"

#include <cmath>

#include "common/strings.h"

namespace cdibot {

StatusOr<AbTestExperiment> AbTestExperiment::Create(std::vector<AbArm> arms,
                                                    uint64_t seed) {
  if (arms.size() < 2) {
    return Status::InvalidArgument("A/B test needs >= 2 arms");
  }
  double total = 0.0;
  for (const AbArm& arm : arms) {
    if (arm.action_name.empty()) {
      return Status::InvalidArgument("arm needs an action name");
    }
    if (!(arm.probability > 0.0)) {
      return Status::InvalidArgument("arm probabilities must be positive");
    }
    total += arm.probability;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("arm probabilities must sum to 1");
  }
  return AbTestExperiment(std::move(arms), seed);
}

size_t AbTestExperiment::Assign() {
  std::vector<double> probs;
  probs.reserve(arms_.size());
  for (const AbArm& arm : arms_) probs.push_back(arm.probability);
  return rng_.Categorical(probs);
}

Status AbTestExperiment::AddObservation(size_t arm, const VmCdi& cdi) {
  if (arm >= arms_.size()) {
    return Status::OutOfRange("arm index out of range");
  }
  auto& obs = observations_[arm];
  obs[static_cast<int>(StabilityCategory::kUnavailability)].push_back(
      cdi.unavailability);
  obs[static_cast<int>(StabilityCategory::kPerformance)].push_back(
      cdi.performance);
  obs[static_cast<int>(StabilityCategory::kControlPlane)].push_back(
      cdi.control_plane);
  return Status::OK();
}

size_t AbTestExperiment::ObservationCount(size_t arm) const {
  if (arm >= observations_.size()) return 0;
  return observations_[arm][0].size();
}

StatusOr<AbTestReport> AbTestExperiment::Analyze(
    const stats::WorkflowOptions& options) const {
  for (size_t a = 0; a < arms_.size(); ++a) {
    if (ObservationCount(a) < 3) {
      return Status::FailedPrecondition(
          "arm " + arms_[a].action_name + " has < 3 observations");
    }
  }

  AbTestReport report;
  report.arm_names.reserve(arms_.size());
  for (const AbArm& arm : arms_) report.arm_names.push_back(arm.action_name);
  report.arm_counts.resize(arms_.size());
  report.arm_means.resize(arms_.size());
  for (size_t a = 0; a < arms_.size(); ++a) {
    report.arm_counts[a] = ObservationCount(a);
    for (int c = 0; c < kNumStabilityCategories; ++c) {
      CDIBOT_ASSIGN_OR_RETURN(report.arm_means[a][c],
                              stats::Mean(observations_[a][c]));
    }
  }

  for (int c = 0; c < kNumStabilityCategories; ++c) {
    std::vector<stats::Sample> groups;
    groups.reserve(arms_.size());
    bool all_identical = true;
    for (size_t a = 0; a < arms_.size(); ++a) {
      groups.push_back(observations_[a][c]);
      for (double v : observations_[a][c]) {
        if (v != observations_[0][c][0]) all_identical = false;
      }
    }
    if (all_identical) {
      // Common in production: a sub-metric with zero damage everywhere
      // (e.g. no unavailability during the test). No difference to find.
      stats::WorkflowResult degenerate;
      degenerate.omnibus = stats::TestResult{
          .method = "degenerate (all observations identical)",
          .statistic = 0.0,
          .p_value = 1.0};
      report.per_metric[c] = std::move(degenerate);
      continue;
    }
    CDIBOT_ASSIGN_OR_RETURN(report.per_metric[c],
                            stats::RunHypothesisWorkflow(groups, options));
  }
  return report;
}

StatusOr<stats::WorkflowResult> AbTestExperiment::AnalyzeComposite(
    double w_u, double w_p, double w_c,
    const stats::WorkflowOptions& options) const {
  if (w_u < 0.0 || w_p < 0.0 || w_c < 0.0 || !(w_u + w_p + w_c > 0.0)) {
    return Status::InvalidArgument(
        "composite weights must be non-negative with a positive sum");
  }
  std::vector<stats::Sample> groups;
  groups.reserve(arms_.size());
  for (size_t a = 0; a < arms_.size(); ++a) {
    if (ObservationCount(a) < 3) {
      return Status::FailedPrecondition(
          "arm " + arms_[a].action_name + " has < 3 observations");
    }
    const auto& obs = observations_[a];
    stats::Sample composite;
    composite.reserve(obs[0].size());
    for (size_t i = 0; i < obs[0].size(); ++i) {
      composite.push_back(w_u * obs[0][i] + w_p * obs[1][i] +
                          w_c * obs[2][i]);
    }
    groups.push_back(std::move(composite));
  }
  return stats::RunHypothesisWorkflow(groups, options);
}

std::string AbTestReport::ToTableString(double alpha) const {
  static constexpr const char* kMetricNames[] = {"Unavailability",
                                                 "Performance",
                                                 "Control-plane"};
  // Table V order: Unavailability, Control-plane, Performance.
  static constexpr int kOrder[] = {0, 2, 1};
  std::string out;
  out += StrFormat("%-15s %-24s %10s %6s   %s\n", "Sub-metric", "Omnibus",
                   "P-value", "Sign.", "Post-hoc pairs (p, sign.)");
  for (int idx : kOrder) {
    const stats::WorkflowResult& wf = per_metric[idx];
    out += StrFormat("%-15s %-24s %10.3g %6s   ", kMetricNames[idx],
                     wf.omnibus.method.c_str(), wf.omnibus.p_value,
                     wf.omnibus_significant ? "True" : "False");
    if (wf.posthoc.empty()) {
      out += "-";
    } else {
      std::vector<std::string> pairs;
      for (const stats::PairwiseResult& pr : wf.posthoc) {
        pairs.push_back(StrFormat(
            "%s-%s (%.3g, %s)", arm_names[pr.group_a].c_str(),
            arm_names[pr.group_b].c_str(), pr.p_value,
            pr.SignificantAt(alpha) ? "True" : "False"));
      }
      out += StrJoin(pairs, "; ");
    }
    out += "\n";
  }
  out += "\nPer-arm mean CDI:\n";
  out += StrFormat("%-12s %8s %14s %14s %14s\n", "Arm", "n", "CDI-U",
                   "CDI-P", "CDI-C");
  for (size_t a = 0; a < arm_names.size(); ++a) {
    out += StrFormat("%-12s %8zu %14.4g %14.4g %14.4g\n",
                     arm_names[a].c_str(), arm_counts[a], arm_means[a][0],
                     arm_means[a][1], arm_means[a][2]);
  }
  return out;
}

}  // namespace cdibot
