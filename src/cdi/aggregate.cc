#include "cdi/aggregate.h"

#include <algorithm>

namespace cdibot {

void CdiAccumulator::Add(Duration service_time, double cdi) {
  weighted_sum_ += static_cast<double>(service_time.millis()) * cdi;
  total_service_ms_ += service_time.millis();
}

void CdiAccumulator::Remove(Duration service_time, double cdi) {
  weighted_sum_ -= static_cast<double>(service_time.millis()) * cdi;
  total_service_ms_ -= service_time.millis();
}

void CdiAccumulator::Merge(const CdiAccumulator& other) {
  weighted_sum_ += other.weighted_sum_;
  total_service_ms_ += other.total_service_ms_;
}

double CdiAccumulator::Value() const {
  if (total_service_ms_ == 0) return 0.0;
  return weighted_sum_ / static_cast<double>(total_service_ms_);
}

void FleetCdiPartial::AddVm(const VmCdi& vm) {
  u_.Add(vm.service_time, vm.unavailability);
  p_.Add(vm.service_time, vm.performance);
  c_.Add(vm.service_time, vm.control_plane);
}

void FleetCdiPartial::RemoveVm(const VmCdi& vm) {
  u_.Remove(vm.service_time, vm.unavailability);
  p_.Remove(vm.service_time, vm.performance);
  c_.Remove(vm.service_time, vm.control_plane);
}

void FleetCdiPartial::Merge(const FleetCdiPartial& other) {
  u_.Merge(other.u_);
  p_.Merge(other.p_);
  c_.Merge(other.c_);
}

VmCdi FleetCdiPartial::Finalize() const {
  return VmCdi{.unavailability = u_.Value(),
               .performance = p_.Value(),
               .control_plane = c_.Value(),
               .service_time = u_.total_service_time()};
}

VmCdi AggregateVmCdi(const std::vector<VmCdi>& vms) {
  FleetCdiPartial partial;
  for (const VmCdi& vm : vms) partial.AddVm(vm);
  return partial.Finalize();
}

void CanonicalCdiFold::Add(std::string_view vm_id, const VmCdi& cdi) {
  terms_.emplace_back(std::string(vm_id), cdi);
}

VmCdi CanonicalCdiFold::Finalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  FleetCdiPartial fold;
  for (const auto& [vm_id, cdi] : terms_) fold.AddVm(cdi);
  return fold.Finalize();
}

}  // namespace cdibot
