#include "cdi/aggregate.h"

namespace cdibot {

void CdiAccumulator::Add(Duration service_time, double cdi) {
  weighted_sum_ += static_cast<double>(service_time.millis()) * cdi;
  total_service_ms_ += service_time.millis();
}

void CdiAccumulator::Merge(const CdiAccumulator& other) {
  weighted_sum_ += other.weighted_sum_;
  total_service_ms_ += other.total_service_ms_;
}

double CdiAccumulator::Value() const {
  if (total_service_ms_ == 0) return 0.0;
  return weighted_sum_ / static_cast<double>(total_service_ms_);
}

VmCdi AggregateVmCdi(const std::vector<VmCdi>& vms) {
  CdiAccumulator u, p, c;
  Duration total;
  for (const VmCdi& vm : vms) {
    u.Add(vm.service_time, vm.unavailability);
    p.Add(vm.service_time, vm.performance);
    c.Add(vm.service_time, vm.control_plane);
    total += vm.service_time;
  }
  return VmCdi{.unavailability = u.Value(),
               .performance = p.Value(),
               .control_plane = c.Value(),
               .service_time = total};
}

}  // namespace cdibot
