#include "cdi/pipeline.h"

#include <algorithm>
#include <set>

#include "cdi/indicator.h"
#include "cdi/vm_cdi.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {

dataflow::Table DailyCdiResult::ToVmTable() const {
  using dataflow::Field;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Table table(dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"region", ValueType::kString},
       Field{"az", ValueType::kString}, Field{"cluster", ValueType::kString},
       Field{"cdi_u", ValueType::kDouble}, Field{"cdi_p", ValueType::kDouble},
       Field{"cdi_c", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}}));
  auto dim = [](const VmCdiRecord& rec, const char* key) {
    auto it = rec.dims.find(key);
    return it == rec.dims.end() ? std::string() : it->second;
  };
  for (const VmCdiRecord& rec : per_vm) {
    table.AppendUnchecked(
        {Value(rec.vm_id), Value(dim(rec, "region")), Value(dim(rec, "az")),
         Value(dim(rec, "cluster")), Value(rec.cdi.unavailability),
         Value(rec.cdi.performance), Value(rec.cdi.control_plane),
         Value(rec.cdi.service_time.minutes())});
  }
  return table;
}

dataflow::Table DailyCdiResult::ToEventTable() const {
  using dataflow::Field;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Table table(dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"event", ValueType::kString},
       Field{"category", ValueType::kString},
       Field{"damage_minutes", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}}));
  for (const EventCdiRecord& rec : per_event) {
    table.AppendUnchecked(
        {Value(rec.vm_id), Value(rec.event_name),
         Value(std::string(StabilityCategoryToString(rec.category))),
         Value(rec.damage_minutes), Value(rec.service_time.minutes())});
  }
  return table;
}

StatusOr<VmDailyOutput> ComputeVmDailyCdi(const EventSpan& events,
                                          const VmServiceInfo& vm,
                                          const Interval& day,
                                          const PeriodResolver& resolver,
                                          const EventWeightModel& weights,
                                          chaos::QuarantineSink* quarantine,
                                          VmDailyError* error) {
  TRACE_SPAN("cdi.compute_vm");
  static obs::Histogram* vm_compute_ns =
      obs::MetricsRegistry::Global().GetHistogram("cdi.vm_compute_ns");
  obs::ScopedTimer timer(vm_compute_ns);
  VmDailyOutput out;
  // On failure, the counters of the stages that ran move into the error
  // payload so the caller can still aggregate them.
  auto fail = [&](const Status& st) {
    if (error != nullptr) {
      error->status = st;
      error->resolve_stats = out.resolve_stats;
      error->quality = out.quality;
    }
    return st;
  };
  const Interval service = vm.service_period.ClampTo(day);
  if (service.empty()) {
    out.skipped = true;
    return out;
  }

  // Sanitize at the edge: a structurally broken event is diverted once,
  // here, instead of failing an arbitrary downstream stage (one bad
  // severity ordinal used to abort the whole VM's day inside
  // AttachWeights). The survivors stay non-owning refs — a malformed
  // event is only materialized if it is actually diverted.
  std::vector<EventRef> kept;
  kept.reserve(events.UpperBound());
  events.ForEach([&](const EventRef& ev) {
    const auto reason = chaos::ValidateEventView(ev);
    if (reason.has_value()) {
      ++out.quality.events_quarantined;
      if (quarantine != nullptr) {
        quarantine->Quarantine(ev.Materialize(), *reason);
      }
      return;
    }
    kept.push_back(ev);
  });
  out.quality.Refresh();

  auto resolved_or = resolver.ResolveRefs(kept, service, &out.resolve_stats);
  if (!resolved_or.ok()) return fail(resolved_or.status());
  const std::vector<ResolvedEventView>& resolved = resolved_or.value();

  auto weighted_or = AttachWeights(resolved, weights);
  if (!weighted_or.ok()) return fail(weighted_or.status());
  const std::vector<WeightedEventView>& weighted = weighted_or.value();

  auto cdi_or = ComputeVmCdi(weighted, service);
  if (!cdi_or.ok()) return fail(cdi_or.status());
  out.record = VmCdiRecord{.vm_id = vm.vm_id,
                           .dims = vm.dims,
                           .cdi = cdi_or.value(),
                           .quality = out.quality};

  auto baseline_or = ComputeUnavailabilityStats(resolved, service);
  if (!baseline_or.ok()) return fail(baseline_or.status());
  out.baseline = baseline_or.value();

  // Event-level rows: damage of each event name in isolation. Rows are
  // emitted in lexicographic name order — the iteration order of the
  // std::map the pre-view implementation grouped by — so the redesign
  // cannot reorder output tables.
  const StringInterner& interner = GlobalInterner();
  std::vector<uint32_t> names;
  for (const WeightedEventView& ev : weighted) {
    if (std::find(names.begin(), names.end(), ev.name_id) == names.end()) {
      names.push_back(ev.name_id);
    }
  }
  std::sort(names.begin(), names.end(), [&](uint32_t a, uint32_t b) {
    return interner.NameOf(a) < interner.NameOf(b);
  });
  std::vector<WeightedEventView> group;
  for (const uint32_t name_id : names) {
    group.clear();
    for (const WeightedEventView& ev : weighted) {
      if (ev.name_id == name_id) group.push_back(ev);
    }
    auto damage_or = ComputeDamageMinutes(group, service);
    if (!damage_or.ok()) return fail(damage_or.status());
    if (damage_or.value() <= 0.0) continue;
    out.events.push_back(
        EventCdiRecord{.vm_id = vm.vm_id,
                       .event_name = std::string(interner.NameOf(name_id)),
                       .category = group.front().category,
                       .damage_minutes = damage_or.value(),
                       .service_time = service.length(),
                       .dims = vm.dims});
  }
  return out;
}

StatusOr<DailyCdiResult> DailyCdiJob::Run(
    const std::vector<VmServiceInfo>& vms, const Interval& day) const {
  TRACE_SPAN("cdi.daily_job");
  static obs::Histogram* run_ns =
      obs::MetricsRegistry::Global().GetHistogram("cdi.daily_job_ns");
  obs::ScopedTimer timer(run_ns);
  if (day.empty()) {
    return Status::InvalidArgument("evaluation window must be non-empty");
  }
  PeriodResolver resolver(catalog_);

  struct VmSlot {
    VmDailyOutput out;
    bool deferred = false;
    bool failed = false;
    Status error;
    /// The undecorated failure reason, for distinct-reason sampling.
    std::string reason;
    /// Partial counters of a failed computation.
    VmDailyError verr;
  };
  std::vector<VmSlot> slots(vms.size());

  auto process_vm = [&](size_t i) {
    const VmServiceInfo& vm = vms[i];
    VmSlot& slot = slots[i];
    // Budget check per VM, not per job: an expired deadline defers every
    // VM that has not started yet while the ones already in flight finish,
    // so the result is a consistent prefix of the fleet.
    if (deadline_.Expired()) {
      slot.deferred = true;
      return;
    }
    const Interval service = vm.service_period.ClampTo(day);
    if (service.empty()) {
      slot.out.skipped = true;
      return;
    }
    // The zero-copy read path: a VM never appended to the log was never
    // interned, so Lookup yields kInvalidId and Query an empty span —
    // no fallback string search needed.
    const EventSpan span =
        log_->Query(EventQuery{.interval = service,
                               .target_id = GlobalInterner().Lookup(vm.vm_id),
                               .margin = kEventSearchMargin});
    auto out_or = ComputeVmDailyCdi(span, vm, day, resolver, *weights_,
                                    quarantine_, &slot.verr);
    if (out_or.ok()) {
      slot.out = std::move(out_or).value();
    } else {
      slot.failed = true;
      slot.reason = out_or.status().ToString();
      slot.error = Status::Internal("vm " + vm.vm_id + ": " + slot.reason);
    }
  };

  if (pool_ != nullptr && vms.size() > 1 &&
      vms.size() >= min_parallel_rows_) {
    pool_->ParallelFor(vms.size(), process_vm);
  } else {
    for (size_t i = 0; i < vms.size(); ++i) process_vm(i);
  }

  DailyCdiResult result;
  // Fleet CDI uses the canonical ascending-vm_id fold so the batch job,
  // the streaming engine, and the shard coordinator produce bit-identical
  // fleet values over the same per-VM rows (FP addition is not
  // associative; slot order here is input order, not canonical order).
  // The baseline partial is all-integer and order-insensitive.
  CanonicalCdiFold fleet_fold;
  UnavailabilityPartial baseline_partial;
  std::set<std::string> sampled_reasons;
  for (VmSlot& slot : slots) {
    if (slot.deferred) {
      ++result.vms_deferred;
      continue;
    }
    if (slot.failed) {
      ++result.vms_failed;
      result.resolve_stats.Merge(slot.verr.resolve_stats);
      result.quality.Merge(slot.verr.quality);
      if (result.first_vm_error.ok()) result.first_vm_error = slot.error;
      if (result.vm_error_samples.size() <
              DailyCdiResult::kMaxVmErrorSamples &&
          sampled_reasons.insert(slot.reason).second) {
        result.vm_error_samples.push_back(slot.error.message());
      }
      continue;
    }
    VmDailyOutput& out = slot.out;
    if (out.skipped) {
      ++result.vms_skipped;
      continue;
    }
    ++result.vms_evaluated;
    if (out.quality.degraded) ++result.vms_degraded;
    result.quality.Merge(out.quality);
    fleet_fold.Add(out.record.vm_id, out.record.cdi);
    baseline_partial.AddVm(out.baseline, out.record.cdi.service_time);
    result.fleet_service_time += out.record.cdi.service_time;
    result.resolve_stats.Merge(out.resolve_stats);
    result.per_vm.push_back(std::move(out.record));
    for (EventCdiRecord& rec : out.events) {
      result.per_event.push_back(std::move(rec));
    }
  }
  result.fleet = fleet_fold.Finalize();
  result.fleet_baseline = baseline_partial.Finalize();

  // The result struct's ad-hoc counters stay (callers consume them per
  // run); the registry carries the same counts process-wide so a statusz
  // snapshot sees every job that ever ran.
  static obs::Counter* runs =
      obs::MetricsRegistry::Global().GetCounter("cdi.jobs");
  static obs::Counter* evaluated =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_evaluated");
  static obs::Counter* skipped =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_skipped");
  static obs::Counter* failed =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_failed");
  static obs::Counter* degraded =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_degraded");
  static obs::Counter* deferred =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_deferred");
  runs->Increment();
  evaluated->Add(result.vms_evaluated);
  skipped->Add(result.vms_skipped);
  failed->Add(result.vms_failed);
  degraded->Add(result.vms_degraded);
  deferred->Add(result.vms_deferred);
  return result;
}

}  // namespace cdibot
