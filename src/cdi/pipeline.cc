#include "cdi/pipeline.h"

#include <set>

#include "cdi/indicator.h"
#include "cdi/vm_cdi.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {

dataflow::Table DailyCdiResult::ToVmTable() const {
  using dataflow::Field;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Table table(dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"region", ValueType::kString},
       Field{"az", ValueType::kString}, Field{"cluster", ValueType::kString},
       Field{"cdi_u", ValueType::kDouble}, Field{"cdi_p", ValueType::kDouble},
       Field{"cdi_c", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}}));
  auto dim = [](const VmCdiRecord& rec, const char* key) {
    auto it = rec.dims.find(key);
    return it == rec.dims.end() ? std::string() : it->second;
  };
  for (const VmCdiRecord& rec : per_vm) {
    table.AppendUnchecked(
        {Value(rec.vm_id), Value(dim(rec, "region")), Value(dim(rec, "az")),
         Value(dim(rec, "cluster")), Value(rec.cdi.unavailability),
         Value(rec.cdi.performance), Value(rec.cdi.control_plane),
         Value(rec.cdi.service_time.minutes())});
  }
  return table;
}

dataflow::Table DailyCdiResult::ToEventTable() const {
  using dataflow::Field;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Table table(dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"event", ValueType::kString},
       Field{"category", ValueType::kString},
       Field{"damage_minutes", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}}));
  for (const EventCdiRecord& rec : per_event) {
    table.AppendUnchecked(
        {Value(rec.vm_id), Value(rec.event_name),
         Value(std::string(StabilityCategoryToString(rec.category))),
         Value(rec.damage_minutes), Value(rec.service_time.minutes())});
  }
  return table;
}

Status ComputeVmDailyCdi(std::vector<RawEvent> raw, const VmServiceInfo& vm,
                         const Interval& day, const PeriodResolver& resolver,
                         const EventWeightModel& weights, VmDailyOutput* out,
                         chaos::QuarantineSink* quarantine) {
  TRACE_SPAN("cdi.compute_vm");
  static obs::Histogram* vm_compute_ns =
      obs::MetricsRegistry::Global().GetHistogram("cdi.vm_compute_ns");
  obs::ScopedTimer timer(vm_compute_ns);
  *out = VmDailyOutput{};
  const Interval service = vm.service_period.ClampTo(day);
  if (service.empty()) {
    out->skipped = true;
    return Status::OK();
  }

  // Sanitize at the edge: a structurally broken event is diverted once,
  // here, instead of failing an arbitrary downstream stage (one bad
  // severity ordinal used to abort the whole VM's day inside
  // AttachWeights). The surviving events proceed normally and the VM's
  // output carries the accounting.
  size_t kept = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    const auto reason = chaos::ValidateRawEvent(raw[i]);
    if (reason.has_value()) {
      ++out->quality.events_quarantined;
      if (quarantine != nullptr) quarantine->Quarantine(raw[i], *reason);
      continue;
    }
    if (kept != i) raw[kept] = std::move(raw[i]);  // no self-move
    ++kept;
  }
  raw.resize(kept);
  out->quality.Refresh();

  auto resolved_or =
      resolver.Resolve(std::move(raw), service, &out->resolve_stats);
  if (!resolved_or.ok()) return resolved_or.status();
  const std::vector<ResolvedEvent>& resolved = resolved_or.value();

  auto weighted_or = AttachWeights(resolved, weights);
  if (!weighted_or.ok()) return weighted_or.status();
  const std::vector<WeightedEvent>& weighted = weighted_or.value();

  auto cdi_or = ComputeVmCdi(weighted, service);
  if (!cdi_or.ok()) return cdi_or.status();
  out->record = VmCdiRecord{.vm_id = vm.vm_id,
                            .dims = vm.dims,
                            .cdi = cdi_or.value(),
                            .quality = out->quality};

  auto baseline_or = ComputeUnavailabilityStats(resolved, service);
  if (!baseline_or.ok()) return baseline_or.status();
  out->baseline = baseline_or.value();

  // Event-level rows: damage of each event name in isolation.
  std::map<std::string, std::vector<WeightedEvent>> by_name;
  for (const WeightedEvent& ev : weighted) by_name[ev.name].push_back(ev);
  for (const auto& [name, evs] : by_name) {
    auto damage_or = ComputeDamageMinutes(evs, service);
    if (!damage_or.ok()) return damage_or.status();
    if (damage_or.value() <= 0.0) continue;
    out->events.push_back(EventCdiRecord{.vm_id = vm.vm_id,
                                         .event_name = name,
                                         .category = evs.front().category,
                                         .damage_minutes = damage_or.value(),
                                         .service_time = service.length(),
                                         .dims = vm.dims});
  }
  return Status::OK();
}

StatusOr<DailyCdiResult> DailyCdiJob::Run(
    const std::vector<VmServiceInfo>& vms, const Interval& day) const {
  TRACE_SPAN("cdi.daily_job");
  static obs::Histogram* run_ns =
      obs::MetricsRegistry::Global().GetHistogram("cdi.daily_job_ns");
  obs::ScopedTimer timer(run_ns);
  if (day.empty()) {
    return Status::InvalidArgument("evaluation window must be non-empty");
  }
  PeriodResolver resolver(catalog_);

  struct VmSlot {
    VmDailyOutput out;
    bool failed = false;
    Status error;
    /// The undecorated failure reason, for distinct-reason sampling.
    std::string reason;
  };
  std::vector<VmSlot> slots(vms.size());

  auto process_vm = [&](size_t i) {
    const VmServiceInfo& vm = vms[i];
    VmSlot& slot = slots[i];
    const Interval service = vm.service_period.ClampTo(day);
    if (service.empty()) {
      slot.out.skipped = true;
      return;
    }
    const Interval search(service.start - kEventSearchMargin,
                          service.end + kEventSearchMargin);
    std::vector<RawEvent> raw = log_->SearchTarget(search, vm.vm_id);
    Status st = ComputeVmDailyCdi(std::move(raw), vm, day, resolver,
                                  *weights_, &slot.out, quarantine_);
    if (!st.ok()) {
      slot.failed = true;
      slot.reason = st.ToString();
      slot.error = Status::Internal("vm " + vm.vm_id + ": " + slot.reason);
    }
  };

  if (ctx_.pool != nullptr && vms.size() > 1) {
    ctx_.pool->ParallelFor(vms.size(), process_vm);
  } else {
    for (size_t i = 0; i < vms.size(); ++i) process_vm(i);
  }

  DailyCdiResult result;
  FleetCdiPartial fleet_partial;
  UnavailabilityPartial baseline_partial;
  std::set<std::string> sampled_reasons;
  for (VmSlot& slot : slots) {
    if (slot.failed) {
      ++result.vms_failed;
      result.resolve_stats.Merge(slot.out.resolve_stats);
      result.quality.Merge(slot.out.quality);
      if (result.first_vm_error.ok()) result.first_vm_error = slot.error;
      if (result.vm_error_samples.size() <
              DailyCdiResult::kMaxVmErrorSamples &&
          sampled_reasons.insert(slot.reason).second) {
        result.vm_error_samples.push_back(slot.error.message());
      }
      continue;
    }
    VmDailyOutput& out = slot.out;
    if (out.skipped) {
      ++result.vms_skipped;
      continue;
    }
    ++result.vms_evaluated;
    if (out.quality.degraded) ++result.vms_degraded;
    result.quality.Merge(out.quality);
    fleet_partial.AddVm(out.record.cdi);
    baseline_partial.AddVm(out.baseline, out.record.cdi.service_time);
    result.fleet_service_time += out.record.cdi.service_time;
    result.resolve_stats.Merge(out.resolve_stats);
    result.per_vm.push_back(std::move(out.record));
    for (EventCdiRecord& rec : out.events) {
      result.per_event.push_back(std::move(rec));
    }
  }
  result.fleet = fleet_partial.Finalize();
  result.fleet_baseline = baseline_partial.Finalize();

  // The result struct's ad-hoc counters stay (callers consume them per
  // run); the registry carries the same counts process-wide so a statusz
  // snapshot sees every job that ever ran.
  static obs::Counter* runs =
      obs::MetricsRegistry::Global().GetCounter("cdi.jobs");
  static obs::Counter* evaluated =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_evaluated");
  static obs::Counter* skipped =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_skipped");
  static obs::Counter* failed =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_failed");
  static obs::Counter* degraded =
      obs::MetricsRegistry::Global().GetCounter("cdi.vms_degraded");
  runs->Increment();
  evaluated->Add(result.vms_evaluated);
  skipped->Add(result.vms_skipped);
  failed->Add(result.vms_failed);
  degraded->Add(result.vms_degraded);
  return result;
}

}  // namespace cdibot
