#include "cdi/pipeline.h"

#include <atomic>
#include <mutex>

#include "cdi/indicator.h"
#include "cdi/vm_cdi.h"
#include "common/strings.h"

namespace cdibot {

dataflow::Table DailyCdiResult::ToVmTable() const {
  using dataflow::Field;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Table table(dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"region", ValueType::kString},
       Field{"az", ValueType::kString}, Field{"cluster", ValueType::kString},
       Field{"cdi_u", ValueType::kDouble}, Field{"cdi_p", ValueType::kDouble},
       Field{"cdi_c", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}}));
  auto dim = [](const VmCdiRecord& rec, const char* key) {
    auto it = rec.dims.find(key);
    return it == rec.dims.end() ? std::string() : it->second;
  };
  for (const VmCdiRecord& rec : per_vm) {
    table.AppendUnchecked(
        {Value(rec.vm_id), Value(dim(rec, "region")), Value(dim(rec, "az")),
         Value(dim(rec, "cluster")), Value(rec.cdi.unavailability),
         Value(rec.cdi.performance), Value(rec.cdi.control_plane),
         Value(rec.cdi.service_time.minutes())});
  }
  return table;
}

dataflow::Table DailyCdiResult::ToEventTable() const {
  using dataflow::Field;
  using dataflow::Value;
  using dataflow::ValueType;
  dataflow::Table table(dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"event", ValueType::kString},
       Field{"category", ValueType::kString},
       Field{"damage_minutes", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}}));
  for (const EventCdiRecord& rec : per_event) {
    table.AppendUnchecked(
        {Value(rec.vm_id), Value(rec.event_name),
         Value(std::string(StabilityCategoryToString(rec.category))),
         Value(rec.damage_minutes), Value(rec.service_time.minutes())});
  }
  return table;
}

StatusOr<DailyCdiResult> DailyCdiJob::Run(
    const std::vector<VmServiceInfo>& vms, const Interval& day) const {
  if (day.empty()) {
    return Status::InvalidArgument("evaluation window must be non-empty");
  }
  PeriodResolver resolver(catalog_);

  struct VmOutput {
    VmCdiRecord record;
    std::vector<EventCdiRecord> events;
    UnavailabilityStats baseline;
    ResolveStats resolve_stats;
    bool skipped = false;
  };
  std::vector<VmOutput> outputs(vms.size());
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_error;

  auto process_vm = [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    const VmServiceInfo& vm = vms[i];
    VmOutput& out = outputs[i];
    const Interval service = vm.service_period.ClampTo(day);
    if (service.empty()) {
      out.skipped = true;
      return;
    }
    auto fail = [&](const Status& st) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) {
        first_error = Status::Internal("vm " + vm.vm_id + ": " +
                                       st.ToString());
      }
      failed.store(true, std::memory_order_relaxed);
    };

    // Events extracted up to one day past the window can still describe
    // periods inside it (stateless events trace backward); the clamp below
    // discards anything outside the service window.
    const Interval search(service.start - Duration::Days(1),
                          service.end + Duration::Days(1));
    std::vector<RawEvent> raw = log_->SearchTarget(search, vm.vm_id);

    auto resolved_or = resolver.Resolve(std::move(raw), service,
                                        &out.resolve_stats);
    if (!resolved_or.ok()) return fail(resolved_or.status());
    const std::vector<ResolvedEvent>& resolved = resolved_or.value();

    auto weighted_or = AttachWeights(resolved, *weights_);
    if (!weighted_or.ok()) return fail(weighted_or.status());
    const std::vector<WeightedEvent>& weighted = weighted_or.value();

    auto cdi_or = ComputeVmCdi(weighted, service);
    if (!cdi_or.ok()) return fail(cdi_or.status());
    out.record =
        VmCdiRecord{.vm_id = vm.vm_id, .dims = vm.dims, .cdi = cdi_or.value()};

    auto baseline_or = ComputeUnavailabilityStats(resolved, service);
    if (!baseline_or.ok()) return fail(baseline_or.status());
    out.baseline = baseline_or.value();

    // Event-level rows: damage of each event name in isolation.
    std::map<std::string, std::vector<WeightedEvent>> by_name;
    for (const WeightedEvent& ev : weighted) by_name[ev.name].push_back(ev);
    for (const auto& [name, evs] : by_name) {
      auto damage_or = ComputeDamageMinutes(evs, service);
      if (!damage_or.ok()) return fail(damage_or.status());
      if (damage_or.value() <= 0.0) continue;
      out.events.push_back(
          EventCdiRecord{.vm_id = vm.vm_id,
                         .event_name = name,
                         .category = evs.front().category,
                         .damage_minutes = damage_or.value(),
                         .service_time = service.length(),
                         .dims = vm.dims});
    }
  };

  if (ctx_.pool != nullptr && vms.size() > 1) {
    ctx_.pool->ParallelFor(vms.size(), process_vm);
  } else {
    for (size_t i = 0; i < vms.size(); ++i) process_vm(i);
  }
  if (failed.load()) return first_error;

  DailyCdiResult result;
  std::vector<VmCdi> all_cdi;
  std::vector<UnavailabilityStats> all_baselines;
  std::vector<Duration> all_service;
  for (VmOutput& out : outputs) {
    if (out.skipped) continue;
    all_cdi.push_back(out.record.cdi);
    all_baselines.push_back(out.baseline);
    all_service.push_back(out.record.cdi.service_time);
    result.fleet_service_time += out.record.cdi.service_time;
    result.resolve_stats.resolved += out.resolve_stats.resolved;
    result.resolve_stats.unknown_dropped += out.resolve_stats.unknown_dropped;
    result.resolve_stats.duplicate_details_dropped +=
        out.resolve_stats.duplicate_details_dropped;
    result.resolve_stats.dangling_end_dropped +=
        out.resolve_stats.dangling_end_dropped;
    result.resolve_stats.unpaired_start_closed +=
        out.resolve_stats.unpaired_start_closed;
    result.per_vm.push_back(std::move(out.record));
    for (EventCdiRecord& rec : out.events) {
      result.per_event.push_back(std::move(rec));
    }
  }
  result.fleet = AggregateVmCdi(all_cdi);
  result.fleet_baseline =
      AggregateUnavailabilityStats(all_baselines, all_service);
  return result;
}

}  // namespace cdibot
