#ifndef CDIBOT_CDI_DRILLDOWN_H_
#define CDIBOT_CDI_DRILLDOWN_H_

#include <map>
#include <string>
#include <vector>

#include "cdi/aggregate.h"
#include "cdi/vm_cdi.h"
#include "common/statusor.h"

namespace cdibot {

/// Per-VM output row of the daily CDI job (first MaxCompute table of
/// Sec. V): the three indicators, the service time, and the VM's placement
/// dimensions for BI drill-down (region, availability zone, cluster, NC,
/// deployment architecture, ...).
struct VmCdiRecord {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  VmCdi cdi;
};

/// Per-(VM, event-name) output row (second table of Sec. V): the damage an
/// event name contributed on one VM. Event-level CDI curves (Sec. VI-C)
/// re-aggregate these rows.
struct EventCdiRecord {
  std::string vm_id;
  std::string event_name;
  StabilityCategory category = StabilityCategory::kPerformance;
  /// Max-overlap weighted damage of this event name on this VM, in minutes.
  double damage_minutes = 0.0;
  /// The VM's service time (denominator for event-level CDI).
  Duration service_time;
  std::map<std::string, std::string> dims;
};

/// One drill-down group: the dimension value and its Eq.-4 aggregate.
struct GroupCdi {
  std::string key;
  VmCdi cdi;
  size_t vm_count = 0;
};

/// Aggregates per-VM records along one placement dimension (Sec. V: "drill
/// down to the region, availability zone, or even the cluster level").
/// Records missing the dimension group under "". Output sorted by key.
std::vector<GroupCdi> DrillDownBy(const std::vector<VmCdiRecord>& records,
                                  const std::string& dimension);

/// Event-level CDI per event name (Sec. VI-C: Algorithm 1 with the input
/// narrowed to specific events, aggregated with Eq. 4 over the whole
/// fleet): total damage of the event divided by `fleet_service_time`, the
/// summed service time of ALL evaluated VMs — unaffected VMs contribute
/// zero damage but full service time, exactly as in the paper's drill-down
/// curves. Requires a positive fleet service time.
StatusOr<std::map<std::string, double>> EventLevelCdi(
    const std::vector<EventCdiRecord>& records, Duration fleet_service_time);

/// Event-level CDI restricted to one event name; 0 when absent.
StatusOr<double> EventLevelCdiFor(const std::vector<EventCdiRecord>& records,
                                  const std::string& event_name,
                                  Duration fleet_service_time);

}  // namespace cdibot

#endif  // CDIBOT_CDI_DRILLDOWN_H_
