#ifndef CDIBOT_CDI_DRILLDOWN_H_
#define CDIBOT_CDI_DRILLDOWN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdi/aggregate.h"
#include "cdi/vm_cdi.h"
#include "common/statusor.h"

namespace cdibot {

/// Data-quality annotation attached to CDI output. A CDI computed from an
/// impaired telemetry stream is still emitted — the paper's position is
/// that a stability metric must keep working through instability — but it
/// carries this annotation so a consumer can tell a confident number from
/// a best-effort one. The counters cover the three ways input integrity
/// degrades: events that arrived broken (quarantined), events that a
/// collector announced but that never arrived (missing), and events that
/// admission control deliberately shed under overload.
struct DataQuality {
  /// Malformed events diverted to quarantine instead of entering the
  /// pipeline (empty name/target, impossible severity, ...).
  uint64_t events_quarantined = 0;
  /// Events announced by the collector's delivery manifest that were never
  /// received — the silent-gap signature of the paper's Case 7.
  uint64_t events_missing = 0;
  /// Events shed by overload admission control before reaching the engine
  /// (flow::BackpressureQueue). Never unavailability-class — the shed
  /// policy protects CDI-U inputs absolutely — so a degraded-by-shedding
  /// CDI can understate CDI-P/CDI-C damage but never downtime.
  uint64_t events_shed = 0;
  /// True when any counter is non-zero: this CDI was computed from
  /// impaired input and may deviate from ground truth.
  bool degraded = false;

  /// Recomputes `degraded` from the counters.
  void Refresh() {
    degraded =
        events_quarantined > 0 || events_missing > 0 || events_shed > 0;
  }

  void Merge(const DataQuality& o) {
    events_quarantined += o.events_quarantined;
    events_missing += o.events_missing;
    events_shed += o.events_shed;
    degraded = degraded || o.degraded;
  }
};

/// Per-VM output row of the daily CDI job (first MaxCompute table of
/// Sec. V): the three indicators, the service time, and the VM's placement
/// dimensions for BI drill-down (region, availability zone, cluster, NC,
/// deployment architecture, ...).
struct VmCdiRecord {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  VmCdi cdi;
  /// Integrity of the input this row was computed from.
  DataQuality quality;
};

/// Per-(VM, event-name) output row (second table of Sec. V): the damage an
/// event name contributed on one VM. Event-level CDI curves (Sec. VI-C)
/// re-aggregate these rows.
struct EventCdiRecord {
  std::string vm_id;
  std::string event_name;
  StabilityCategory category = StabilityCategory::kPerformance;
  /// Max-overlap weighted damage of this event name on this VM, in minutes.
  double damage_minutes = 0.0;
  /// The VM's service time (denominator for event-level CDI).
  Duration service_time;
  std::map<std::string, std::string> dims;
};

/// One drill-down group: the dimension value and its Eq.-4 aggregate.
struct GroupCdi {
  std::string key;
  VmCdi cdi;
  size_t vm_count = 0;
};

/// A drill-down request. Supersedes the free-function `DrillDownBy`: it
/// follows the `DailyCdiJob::Options` + `StatusOr` conventions (explicit
/// request struct, validated up front, errors as Status instead of silent
/// empty output) and supports composite group-bys — the paper's Sec. V
/// "region, availability zone, or even the cluster level" drill-down is a
/// one-dimension query; region × az × arch is three.
struct DrilldownQuery {
  /// Group-by dimensions, most-significant first. Must be non-empty, with
  /// no duplicates and no empty names. Records missing a dimension group
  /// under "" for that slot (same convention as `DrillDownBy`).
  std::vector<std::string> dimensions;
  /// Exact-match pre-filter on record dims: a record participates only if
  /// every (dim, value) pair here matches. Empty = all records.
  std::map<std::string, std::string> filter;
};

/// One group of a `RunDrilldown` answer.
struct DrilldownGroup {
  /// Dimension values, parallel to `DrilldownQuery::dimensions`.
  std::vector<std::string> values;
  /// Human-readable composite key: `values` joined with '/'.
  std::string key;
  /// Eq.-4 service-time-weighted aggregate over the group's member VMs.
  VmCdi cdi;
  size_t vm_count = 0;
  /// Merged input-integrity annotation of the member rows.
  DataQuality quality;
};

struct DrilldownResult {
  /// Groups sorted by `values` (lexicographic, slot by slot).
  std::vector<DrilldownGroup> groups;
  /// Records inspected / rejected by `DrilldownQuery::filter`.
  size_t records_scanned = 0;
  size_t records_filtered = 0;
  /// Merged quality over all participating records.
  DataQuality quality;
};

/// Aggregates per-VM records along one or more placement dimensions with
/// Eq. 4. For a single dimension and empty filter the per-group folds are
/// performed in exactly the order `DrillDownBy` used (input record order,
/// key-sorted groups), so results are bit-identical to the legacy call.
///
/// Errors: InvalidArgument when `query.dimensions` is empty, contains an
/// empty name, or contains duplicates.
StatusOr<DrilldownResult> RunDrilldown(const std::vector<VmCdiRecord>& records,
                                       const DrilldownQuery& query);

/// DEPRECATED — thin wrapper over `RunDrilldown` kept for source
/// compatibility; new code should build a `DrilldownQuery`. Aggregates
/// along one placement dimension; records missing the dimension group
/// under "". Output sorted by key. Migration:
///   DrillDownBy(rows, "region")
///     -> RunDrilldown(rows, {.dimensions = {"region"}})
std::vector<GroupCdi> DrillDownBy(const std::vector<VmCdiRecord>& records,
                                  const std::string& dimension);

/// Event-level CDI per event name (Sec. VI-C: Algorithm 1 with the input
/// narrowed to specific events, aggregated with Eq. 4 over the whole
/// fleet): total damage of the event divided by `fleet_service_time`, the
/// summed service time of ALL evaluated VMs — unaffected VMs contribute
/// zero damage but full service time, exactly as in the paper's drill-down
/// curves. Requires a positive fleet service time.
StatusOr<std::map<std::string, double>> EventLevelCdi(
    const std::vector<EventCdiRecord>& records, Duration fleet_service_time);

/// Event-level CDI restricted to one event name; 0 when absent.
StatusOr<double> EventLevelCdiFor(const std::vector<EventCdiRecord>& records,
                                  const std::string& event_name,
                                  Duration fleet_service_time);

}  // namespace cdibot

#endif  // CDIBOT_CDI_DRILLDOWN_H_
