#include "cdi/customer_indicator.h"

namespace cdibot {

CustomerEventFilter CustomerEventFilter::BuiltIn() {
  return CustomerEventFilter({
      // Data-plane symptoms the customer observes directly or through
      // instance health diagnosis.
      "vm_crash", "vm_hang", "vm_reboot", "nc_down", "ddos_blackhole",
      "disk_unavailable", "slow_io", "packet_loss", "gpu_drop",
      // Control operations the customer initiated and saw fail.
      "vm_start_failed", "vm_stop_failed", "vm_release_failed",
      "vm_resize_failed", "vm_create_failed", "api_error",
      "console_unavailable",
      // NOT disclosed: vcpu_high (contention diagnostics),
      // inspect_cpu_power_tdp, vm_allocation_failed, mem_bw_contention,
      // nic_flapping, qemu_live_upgrade, live_migration, monitoring_loss.
  });
}

std::vector<ResolvedEvent> CustomerEventFilter::Filter(
    const std::vector<ResolvedEvent>& events) const {
  std::vector<ResolvedEvent> out;
  out.reserve(events.size());
  for (const ResolvedEvent& ev : events) {
    if (IsDisclosed(ev.name)) out.push_back(ev);
  }
  return out;
}

StatusOr<VmCdi> ComputeCustomerCdi(const std::vector<ResolvedEvent>& events,
                                   const EventWeightModel& weights,
                                   const CustomerEventFilter& filter,
                                   const Interval& service_period) {
  return ComputeVmCdi(filter.Filter(events), weights, service_period);
}

StatusOr<CdiCpiComparison> CompareCdiAndCpi(
    const std::vector<ResolvedEvent>& events, const EventWeightModel& weights,
    const CustomerEventFilter& filter, const Interval& service_period) {
  CdiCpiComparison result;
  CDIBOT_ASSIGN_OR_RETURN(result.internal,
                          ComputeVmCdi(events, weights, service_period));
  CDIBOT_ASSIGN_OR_RETURN(
      result.customer,
      ComputeCustomerCdi(events, weights, filter, service_period));
  return result;
}

}  // namespace cdibot
