#ifndef CDIBOT_CDI_HISTORY_H_
#define CDIBOT_CDI_HISTORY_H_

#include <set>
#include <vector>

#include "cdi/vm_cdi.h"
#include "common/statusor.h"

namespace cdibot {

/// Per-category reduction between two periods, as fractions in (-inf, 1]:
/// 0.4 means "40% lower" (Case 4's headline numbers).
struct CdiReduction {
  double unavailability = 0.0;
  double performance = 0.0;
  double control_plane = 0.0;
};

/// CdiHistory is the longitudinal store behind Fig. 6 / Case 4: one fleet
/// CDI record per evaluation day, appended chronologically, with incident
/// days excludable from trend computations (the paper's annual curve "has
/// been adjusted to exclude the impact of particularly significant
/// incidents").
class CdiHistory {
 public:
  CdiHistory() = default;

  /// Appends one day's fleet CDI. Days must be strictly increasing.
  Status Append(TimePoint day, const VmCdi& fleet_cdi);

  size_t size() const { return days_.size(); }
  bool empty() const { return days_.empty(); }

  /// Marks a day as an excluded incident day (it stays stored but is
  /// skipped by SmoothedSeries and ReductionBetween). NotFound for days
  /// never appended.
  Status ExcludeDay(TimePoint day);

  /// The fleet CDI recorded for `day`. NotFound if absent.
  StatusOr<VmCdi> At(TimePoint day) const;

  /// The non-excluded daily values of one sub-metric, EWMA-smoothed with
  /// `alpha` (the paper displays smoothed annual curves). alpha in (0, 1].
  StatusOr<std::vector<double>> SmoothedSeries(StabilityCategory category,
                                               double alpha = 0.1) const;

  /// Case 4's computation: per-category reduction of the mean level of the
  /// last `tail_days` non-excluded days relative to the first `head_days`
  /// non-excluded days. Requires both windows non-empty and a positive
  /// head level in each category.
  StatusOr<CdiReduction> ReductionBetween(size_t head_days,
                                          size_t tail_days) const;

 private:
  std::vector<double> FilteredSeries(StabilityCategory category) const;

  std::vector<TimePoint> days_;
  std::vector<VmCdi> values_;
  std::set<int64_t> excluded_;  // day millis
};

}  // namespace cdibot

#endif  // CDIBOT_CDI_HISTORY_H_
