#include "cdi/drilldown.h"

#include <algorithm>

namespace cdibot {

namespace {

std::string JoinKey(const std::vector<std::string>& values) {
  std::string key;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) key += '/';
    key += values[i];
  }
  return key;
}

}  // namespace

StatusOr<DrilldownResult> RunDrilldown(const std::vector<VmCdiRecord>& records,
                                       const DrilldownQuery& query) {
  if (query.dimensions.empty()) {
    return Status::InvalidArgument("drill-down needs at least one dimension");
  }
  for (size_t i = 0; i < query.dimensions.size(); ++i) {
    if (query.dimensions[i].empty()) {
      return Status::InvalidArgument("drill-down dimension name is empty");
    }
    for (size_t j = i + 1; j < query.dimensions.size(); ++j) {
      if (query.dimensions[i] == query.dimensions[j]) {
        return Status::InvalidArgument("duplicate drill-down dimension: " +
                                       query.dimensions[i]);
      }
    }
  }

  struct Accums {
    CdiAccumulator u, p, c;
    Duration service;
    size_t count = 0;
    DataQuality quality;
  };
  // std::map over the composite value vector: groups come out sorted slot
  // by slot, and each group's accumulators are folded in input record
  // order — the exact fold `DrillDownBy` performed, so single-dimension
  // queries are bit-identical to the legacy call.
  std::map<std::vector<std::string>, Accums> groups;
  DrilldownResult result;
  std::vector<std::string> values(query.dimensions.size());
  for (const VmCdiRecord& rec : records) {
    ++result.records_scanned;
    bool matches = true;
    for (const auto& [dim, want] : query.filter) {
      auto it = rec.dims.find(dim);
      if (it == rec.dims.end() || it->second != want) {
        matches = false;
        break;
      }
    }
    if (!matches) {
      ++result.records_filtered;
      continue;
    }
    for (size_t i = 0; i < query.dimensions.size(); ++i) {
      auto it = rec.dims.find(query.dimensions[i]);
      values[i] = it == rec.dims.end() ? "" : it->second;
    }
    Accums& acc = groups[values];
    acc.u.Add(rec.cdi.service_time, rec.cdi.unavailability);
    acc.p.Add(rec.cdi.service_time, rec.cdi.performance);
    acc.c.Add(rec.cdi.service_time, rec.cdi.control_plane);
    acc.service += rec.cdi.service_time;
    ++acc.count;
    acc.quality.Merge(rec.quality);
    result.quality.Merge(rec.quality);
  }
  result.groups.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    result.groups.push_back(DrilldownGroup{
        .values = key,
        .key = JoinKey(key),
        .cdi = VmCdi{.unavailability = acc.u.Value(),
                     .performance = acc.p.Value(),
                     .control_plane = acc.c.Value(),
                     .service_time = acc.service},
        .vm_count = acc.count,
        .quality = acc.quality});
  }
  return result;
}

std::vector<GroupCdi> DrillDownBy(const std::vector<VmCdiRecord>& records,
                                  const std::string& dimension) {
  // Legacy shim: a one-dimension unfiltered DrilldownQuery performs the
  // same per-group folds in the same order, so the doubles match bitwise.
  std::vector<GroupCdi> out;
  if (dimension.empty()) {
    // The legacy call grouped every record under "" for an empty dimension
    // name (no record carries it). RunDrilldown rejects empty names, so
    // reproduce that degenerate fold here.
    if (records.empty()) return out;
    CdiAccumulator u, p, c;
    Duration service;
    for (const VmCdiRecord& rec : records) {
      u.Add(rec.cdi.service_time, rec.cdi.unavailability);
      p.Add(rec.cdi.service_time, rec.cdi.performance);
      c.Add(rec.cdi.service_time, rec.cdi.control_plane);
      service += rec.cdi.service_time;
    }
    out.push_back(GroupCdi{.key = "",
                           .cdi = VmCdi{.unavailability = u.Value(),
                                        .performance = p.Value(),
                                        .control_plane = c.Value(),
                                        .service_time = service},
                           .vm_count = records.size()});
    return out;
  }
  auto result = RunDrilldown(records, DrilldownQuery{.dimensions = {dimension}});
  if (!result.ok()) return out;  // unreachable: single non-empty dimension
  out.reserve(result->groups.size());
  for (const DrilldownGroup& g : result->groups) {
    out.push_back(
        GroupCdi{.key = g.values[0], .cdi = g.cdi, .vm_count = g.vm_count});
  }
  return out;
}

StatusOr<std::map<std::string, double>> EventLevelCdi(
    const std::vector<EventCdiRecord>& records, Duration fleet_service_time) {
  if (fleet_service_time.millis() <= 0) {
    return Status::InvalidArgument("fleet service time must be positive");
  }
  const double service_minutes = fleet_service_time.minutes();
  std::map<std::string, double> out;
  for (const EventCdiRecord& rec : records) {
    out[rec.event_name] += rec.damage_minutes / service_minutes;
  }
  return out;
}

StatusOr<double> EventLevelCdiFor(const std::vector<EventCdiRecord>& records,
                                  const std::string& event_name,
                                  Duration fleet_service_time) {
  if (fleet_service_time.millis() <= 0) {
    return Status::InvalidArgument("fleet service time must be positive");
  }
  double damage = 0.0;
  for (const EventCdiRecord& rec : records) {
    if (rec.event_name == event_name) damage += rec.damage_minutes;
  }
  return damage / fleet_service_time.minutes();
}

}  // namespace cdibot
