#include "cdi/drilldown.h"

#include <algorithm>

namespace cdibot {

std::vector<GroupCdi> DrillDownBy(const std::vector<VmCdiRecord>& records,
                                  const std::string& dimension) {
  struct Accums {
    CdiAccumulator u, p, c;
    Duration service;
    size_t count = 0;
  };
  std::map<std::string, Accums> groups;
  for (const VmCdiRecord& rec : records) {
    auto it = rec.dims.find(dimension);
    const std::string key = it == rec.dims.end() ? "" : it->second;
    Accums& acc = groups[key];
    acc.u.Add(rec.cdi.service_time, rec.cdi.unavailability);
    acc.p.Add(rec.cdi.service_time, rec.cdi.performance);
    acc.c.Add(rec.cdi.service_time, rec.cdi.control_plane);
    acc.service += rec.cdi.service_time;
    ++acc.count;
  }
  std::vector<GroupCdi> out;
  out.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    out.push_back(GroupCdi{
        .key = key,
        .cdi = VmCdi{.unavailability = acc.u.Value(),
                     .performance = acc.p.Value(),
                     .control_plane = acc.c.Value(),
                     .service_time = acc.service},
        .vm_count = acc.count});
  }
  return out;  // std::map iteration is already key-sorted
}

StatusOr<std::map<std::string, double>> EventLevelCdi(
    const std::vector<EventCdiRecord>& records, Duration fleet_service_time) {
  if (fleet_service_time.millis() <= 0) {
    return Status::InvalidArgument("fleet service time must be positive");
  }
  const double service_minutes = fleet_service_time.minutes();
  std::map<std::string, double> out;
  for (const EventCdiRecord& rec : records) {
    out[rec.event_name] += rec.damage_minutes / service_minutes;
  }
  return out;
}

StatusOr<double> EventLevelCdiFor(const std::vector<EventCdiRecord>& records,
                                  const std::string& event_name,
                                  Duration fleet_service_time) {
  if (fleet_service_time.millis() <= 0) {
    return Status::InvalidArgument("fleet service time must be positive");
  }
  double damage = 0.0;
  for (const EventCdiRecord& rec : records) {
    if (rec.event_name == event_name) damage += rec.damage_minutes;
  }
  return damage / fleet_service_time.minutes();
}

}  // namespace cdibot
