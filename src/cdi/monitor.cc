#include "cdi/monitor.h"

#include "cdi/drilldown.h"

namespace cdibot {

StatusOr<CdiMonitor> CdiMonitor::Create(Options options) {
  if (options.window < 3) {
    return Status::InvalidArgument("window must be >= 3");
  }
  if (!(options.k > 0.0)) return Status::InvalidArgument("k must be > 0");
  if (options.top_k_causes < 1) {
    return Status::InvalidArgument("top_k_causes must be >= 1");
  }
  return CdiMonitor(options);
}

StatusOr<std::vector<PotentialProblem>> CdiMonitor::IngestDay(
    TimePoint day, const DailyCdiResult& result) {
  // Today's event-level CDI values and dimensioned damage.
  auto today_or = EventLevelCdi(result.per_event, result.fleet_service_time);
  if (!today_or.ok()) return today_or.status();
  const std::map<std::string, double>& today = today_or.value();
  std::map<std::string, std::vector<DimensionedRecord>> today_damage;
  for (const EventCdiRecord& rec : result.per_event) {
    today_damage[rec.event_name].push_back(
        DimensionedRecord{.dims = rec.dims, .measure = rec.damage_minutes});
  }

  // New event names start a curve backfilled with the zeros of the days
  // before the event first appeared, so their baseline is correct.
  for (const auto& [name, value] : today) {
    if (curves_.count(name) > 0) continue;
    CDIBOT_ASSIGN_OR_RETURN(KSigmaDetector det,
                            KSigmaDetector::Create(options_.window,
                                                   options_.k));
    Curve curve{.series = {}, .detector = std::move(det)};
    for (size_t d = 0; d < days_; ++d) {
      curve.series.push_back(0.0);
      (void)curve.detector.Observe(0.0);
    }
    curves_.emplace(name, std::move(curve));
  }

  std::vector<PotentialProblem> problems;
  for (auto& [name, curve] : curves_) {
    const auto it = today.find(name);
    const double value = it == today.end() ? 0.0 : it->second;
    // Baseline before observing today's point.
    double baseline = 0.0;
    if (!curve.series.empty()) {
      const size_t w = std::min(options_.window, curve.series.size());
      for (size_t i = curve.series.size() - w; i < curve.series.size(); ++i) {
        baseline += curve.series[i];
      }
      baseline /= static_cast<double>(w);
    }
    const AnomalyDirection direction = curve.detector.Observe(value);
    curve.series.push_back(value);
    if (direction == AnomalyDirection::kNone) continue;

    PotentialProblem problem;
    problem.day = day;
    problem.event_name = name;
    problem.direction = direction;
    problem.value = value;
    problem.baseline = baseline;
    // Localize against yesterday's damage distribution; a failed
    // localization (e.g. no change in the dimensioned measure) simply
    // leaves the candidate list empty.
    auto prev_it = previous_damage_.find(name);
    const std::vector<DimensionedRecord> empty;
    auto causes = LocalizeRootCause(
        prev_it == previous_damage_.end() ? empty : prev_it->second,
        today_damage.count(name) > 0 ? today_damage[name] : empty,
        options_.top_k_causes);
    if (causes.ok()) problem.root_causes = std::move(causes).value();
    problems.push_back(std::move(problem));
  }

  previous_damage_ = std::move(today_damage);
  ++days_;
  return problems;
}

StatusOr<std::vector<PotentialProblem>> CdiMonitor::Preview(
    TimePoint day, const DailyCdiResult& result) const {
  auto today_or = EventLevelCdi(result.per_event, result.fleet_service_time);
  if (!today_or.ok()) return today_or.status();
  const std::map<std::string, double>& today = today_or.value();
  std::map<std::string, std::vector<DimensionedRecord>> today_damage;
  for (const EventCdiRecord& rec : result.per_event) {
    today_damage[rec.event_name].push_back(
        DimensionedRecord{.dims = rec.dims, .measure = rec.damage_minutes});
  }

  std::vector<PotentialProblem> problems;
  auto judge = [&](const std::string& name, double value,
                   AnomalyDirection direction,
                   double baseline) -> Status {
    if (direction == AnomalyDirection::kNone) return Status::OK();
    PotentialProblem problem;
    problem.day = day;
    problem.event_name = name;
    problem.direction = direction;
    problem.value = value;
    problem.baseline = baseline;
    auto prev_it = previous_damage_.find(name);
    auto today_it = today_damage.find(name);
    const std::vector<DimensionedRecord> empty;
    auto causes = LocalizeRootCause(
        prev_it == previous_damage_.end() ? empty : prev_it->second,
        today_it == today_damage.end() ? empty : today_it->second,
        options_.top_k_causes);
    if (causes.ok()) problem.root_causes = std::move(causes).value();
    problems.push_back(std::move(problem));
    return Status::OK();
  };

  // Known curves: peek at the committed detector.
  for (const auto& [name, curve] : curves_) {
    const auto it = today.find(name);
    const double value = it == today.end() ? 0.0 : it->second;
    double baseline = 0.0;
    if (!curve.series.empty()) {
      const size_t w = std::min(options_.window, curve.series.size());
      for (size_t i = curve.series.size() - w; i < curve.series.size(); ++i) {
        baseline += curve.series[i];
      }
      baseline /= static_cast<double>(w);
    }
    CDIBOT_RETURN_IF_ERROR(
        judge(name, value, curve.detector.Classify(value), baseline));
  }
  // Never-seen events: judge against the all-zero history they would be
  // backfilled with on ingestion.
  for (const auto& [name, value] : today) {
    if (curves_.count(name) > 0) continue;
    CDIBOT_ASSIGN_OR_RETURN(KSigmaDetector det,
                            KSigmaDetector::Create(options_.window,
                                                   options_.k));
    for (size_t d = 0; d < days_; ++d) (void)det.Observe(0.0);
    CDIBOT_RETURN_IF_ERROR(judge(name, value, det.Classify(value), 0.0));
  }
  return problems;
}

std::vector<double> CdiMonitor::SeriesFor(const std::string& event_name) const {
  auto it = curves_.find(event_name);
  return it == curves_.end() ? std::vector<double>{} : it->second.series;
}

}  // namespace cdibot
