#include "cdi/baselines.h"

#include <algorithm>

namespace cdibot {
namespace {

constexpr double kMillisPerYear = 365.0 * 86400.0 * 1000.0;

}  // namespace

StatusOr<UnavailabilityStats> ComputeUnavailabilityStats(
    const std::vector<ResolvedEvent>& events, const Interval& service_period) {
  if (service_period.empty()) {
    return Status::InvalidArgument("service period must be non-empty");
  }
  std::vector<Interval> episodes;
  for (const ResolvedEvent& ev : events) {
    if (ev.category != StabilityCategory::kUnavailability) continue;
    const Interval clamped = ev.period.ClampTo(service_period);
    if (!clamped.empty()) episodes.push_back(clamped);
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  // Coalesce overlapping or touching intervals: a continuous stretch of
  // unavailability is one interruption from the customer's point of view.
  std::vector<Interval> merged;
  for (const Interval& ep : episodes) {
    if (!merged.empty() && ep.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, ep.end);
    } else {
      merged.push_back(ep);
    }
  }

  UnavailabilityStats stats;
  stats.interruption_count = merged.size();
  Duration down;
  for (const Interval& ep : merged) down += ep.length();
  stats.downtime = down;

  const auto service_ms = static_cast<double>(service_period.length().millis());
  stats.downtime_percentage =
      static_cast<double>(down.millis()) / service_ms;
  stats.annual_interruption_rate =
      static_cast<double>(merged.size()) * kMillisPerYear / service_ms;
  stats.mtbf = merged.empty()
                   ? service_period.length()
                   : Duration::Millis(service_period.length().millis() /
                                      static_cast<int64_t>(merged.size()));
  stats.mttr = merged.empty()
                   ? Duration::Zero()
                   : Duration::Millis(down.millis() /
                                      static_cast<int64_t>(merged.size()));
  return stats;
}

UnavailabilityStats AggregateUnavailabilityStats(
    const std::vector<UnavailabilityStats>& per_vm,
    const std::vector<Duration>& service_times) {
  UnavailabilityStats total;
  Duration service_total;
  for (size_t i = 0; i < per_vm.size(); ++i) {
    total.interruption_count += per_vm[i].interruption_count;
    total.downtime += per_vm[i].downtime;
    if (i < service_times.size()) service_total += service_times[i];
  }
  const auto service_ms = static_cast<double>(service_total.millis());
  if (service_ms > 0) {
    total.downtime_percentage =
        static_cast<double>(total.downtime.millis()) / service_ms;
    total.annual_interruption_rate =
        static_cast<double>(total.interruption_count) * kMillisPerYear /
        service_ms;
    total.mtbf =
        total.interruption_count == 0
            ? service_total
            : Duration::Millis(service_total.millis() /
                               static_cast<int64_t>(total.interruption_count));
    total.mttr =
        total.interruption_count == 0
            ? Duration::Zero()
            : Duration::Millis(total.downtime.millis() /
                               static_cast<int64_t>(total.interruption_count));
  }
  return total;
}

}  // namespace cdibot
