#include "cdi/baselines.h"

#include <algorithm>

namespace cdibot {
namespace {

constexpr double kMillisPerYear = 365.0 * 86400.0 * 1000.0;

// ResolvedEvent and ResolvedEventView both expose `.category` and
// `.period`, which is all the classic metrics need; one shared template
// keeps the owning and zero-copy overloads bit-identical.
template <typename Event>
StatusOr<UnavailabilityStats> ComputeUnavailabilityStatsImpl(
    const std::vector<Event>& events, const Interval& service_period) {
  if (service_period.empty()) {
    return Status::InvalidArgument("service period must be non-empty");
  }
  std::vector<Interval> episodes;
  for (const Event& ev : events) {
    if (ev.category != StabilityCategory::kUnavailability) continue;
    const Interval clamped = ev.period.ClampTo(service_period);
    if (!clamped.empty()) episodes.push_back(clamped);
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  // Coalesce overlapping or touching intervals: a continuous stretch of
  // unavailability is one interruption from the customer's point of view.
  std::vector<Interval> merged;
  for (const Interval& ep : episodes) {
    if (!merged.empty() && ep.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, ep.end);
    } else {
      merged.push_back(ep);
    }
  }

  UnavailabilityStats stats;
  stats.interruption_count = merged.size();
  Duration down;
  for (const Interval& ep : merged) down += ep.length();
  stats.downtime = down;

  const auto service_ms = static_cast<double>(service_period.length().millis());
  stats.downtime_percentage =
      static_cast<double>(down.millis()) / service_ms;
  stats.annual_interruption_rate =
      static_cast<double>(merged.size()) * kMillisPerYear / service_ms;
  stats.mtbf = merged.empty()
                   ? service_period.length()
                   : Duration::Millis(service_period.length().millis() /
                                      static_cast<int64_t>(merged.size()));
  stats.mttr = merged.empty()
                   ? Duration::Zero()
                   : Duration::Millis(down.millis() /
                                      static_cast<int64_t>(merged.size()));
  return stats;
}

}  // namespace

StatusOr<UnavailabilityStats> ComputeUnavailabilityStats(
    const std::vector<ResolvedEvent>& events, const Interval& service_period) {
  return ComputeUnavailabilityStatsImpl(events, service_period);
}

StatusOr<UnavailabilityStats> ComputeUnavailabilityStats(
    const std::vector<ResolvedEventView>& events,
    const Interval& service_period) {
  return ComputeUnavailabilityStatsImpl(events, service_period);
}

void UnavailabilityPartial::AddVm(const UnavailabilityStats& vm,
                                  Duration service_time) {
  interruption_count_ += vm.interruption_count;
  downtime_ += vm.downtime;
  service_total_ += service_time;
}

void UnavailabilityPartial::RemoveVm(const UnavailabilityStats& vm,
                                     Duration service_time) {
  interruption_count_ -= vm.interruption_count;
  downtime_ -= vm.downtime;
  service_total_ -= service_time;
}

UnavailabilityPartial UnavailabilityPartial::FromRaw(
    size_t interruption_count, Duration downtime, Duration service_total) {
  UnavailabilityPartial p;
  p.interruption_count_ = interruption_count;
  p.downtime_ = downtime;
  p.service_total_ = service_total;
  return p;
}

void UnavailabilityPartial::Merge(const UnavailabilityPartial& other) {
  interruption_count_ += other.interruption_count_;
  downtime_ += other.downtime_;
  service_total_ += other.service_total_;
}

UnavailabilityStats UnavailabilityPartial::Finalize() const {
  UnavailabilityStats total;
  total.interruption_count = interruption_count_;
  total.downtime = downtime_;
  const auto service_ms = static_cast<double>(service_total_.millis());
  if (service_ms > 0) {
    total.downtime_percentage =
        static_cast<double>(downtime_.millis()) / service_ms;
    total.annual_interruption_rate =
        static_cast<double>(interruption_count_) * kMillisPerYear / service_ms;
    total.mtbf =
        interruption_count_ == 0
            ? service_total_
            : Duration::Millis(service_total_.millis() /
                               static_cast<int64_t>(interruption_count_));
    total.mttr =
        interruption_count_ == 0
            ? Duration::Zero()
            : Duration::Millis(downtime_.millis() /
                               static_cast<int64_t>(interruption_count_));
  }
  return total;
}

UnavailabilityStats AggregateUnavailabilityStats(
    const std::vector<UnavailabilityStats>& per_vm,
    const std::vector<Duration>& service_times) {
  UnavailabilityPartial partial;
  for (size_t i = 0; i < per_vm.size(); ++i) {
    partial.AddVm(per_vm[i], i < service_times.size() ? service_times[i]
                                                      : Duration::Zero());
  }
  return partial.Finalize();
}

}  // namespace cdibot
