#include "cdi/history.h"

#include "stats/descriptive.h"

namespace cdibot {

Status CdiHistory::Append(TimePoint day, const VmCdi& fleet_cdi) {
  if (!days_.empty() && !(days_.back() < day)) {
    return Status::InvalidArgument(
        "days must be appended in strictly increasing order");
  }
  days_.push_back(day);
  values_.push_back(fleet_cdi);
  return Status::OK();
}

Status CdiHistory::ExcludeDay(TimePoint day) {
  for (const TimePoint& d : days_) {
    if (d == day) {
      excluded_.insert(day.millis());
      return Status::OK();
    }
  }
  return Status::NotFound("day not in history: " + day.ToDateString());
}

StatusOr<VmCdi> CdiHistory::At(TimePoint day) const {
  for (size_t i = 0; i < days_.size(); ++i) {
    if (days_[i] == day) return values_[i];
  }
  return Status::NotFound("day not in history: " + day.ToDateString());
}

std::vector<double> CdiHistory::FilteredSeries(
    StabilityCategory category) const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    if (excluded_.count(days_[i].millis()) > 0) continue;
    out.push_back(values_[i].ForCategory(category));
  }
  return out;
}

StatusOr<std::vector<double>> CdiHistory::SmoothedSeries(
    StabilityCategory category, double alpha) const {
  return stats::Ewma(FilteredSeries(category), alpha);
}

StatusOr<CdiReduction> CdiHistory::ReductionBetween(size_t head_days,
                                                    size_t tail_days) const {
  if (head_days == 0 || tail_days == 0) {
    return Status::InvalidArgument("window sizes must be >= 1");
  }
  const std::vector<double> u =
      FilteredSeries(StabilityCategory::kUnavailability);
  if (u.size() < head_days + tail_days) {
    return Status::FailedPrecondition(
        "history shorter than head + tail windows");
  }
  auto reduction_of = [&](StabilityCategory category) -> StatusOr<double> {
    const std::vector<double> series = FilteredSeries(category);
    double head = 0.0, tail = 0.0;
    for (size_t i = 0; i < head_days; ++i) head += series[i];
    for (size_t i = series.size() - tail_days; i < series.size(); ++i) {
      tail += series[i];
    }
    head /= static_cast<double>(head_days);
    tail /= static_cast<double>(tail_days);
    if (!(head > 0.0)) {
      return Status::FailedPrecondition(
          "head-window level is zero; reduction undefined");
    }
    return 1.0 - tail / head;
  };
  CdiReduction out;
  CDIBOT_ASSIGN_OR_RETURN(out.unavailability,
                          reduction_of(StabilityCategory::kUnavailability));
  CDIBOT_ASSIGN_OR_RETURN(out.performance,
                          reduction_of(StabilityCategory::kPerformance));
  CDIBOT_ASSIGN_OR_RETURN(out.control_plane,
                          reduction_of(StabilityCategory::kControlPlane));
  return out;
}

}  // namespace cdibot
