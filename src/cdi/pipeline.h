#ifndef CDIBOT_CDI_PIPELINE_H_
#define CDIBOT_CDI_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "cdi/baselines.h"
#include "cdi/drilldown.h"
#include "common/statusor.h"
#include "dataflow/engine.h"
#include "event/catalog.h"
#include "event/period_resolver.h"
#include "storage/event_log.h"
#include "weights/event_weights.h"

namespace cdibot {

/// Per-VM input to the daily job: identity, placement dimensions, and the
/// VM's service window within the evaluation day (VMs created or released
/// mid-day have partial windows).
struct VmServiceInfo {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  Interval service_period;
};

/// Full output of one daily CDI computation — the two MaxCompute tables of
/// Sec. V plus fleet-level aggregates and the classic baselines for
/// comparison.
struct DailyCdiResult {
  /// First table: one row per VM.
  std::vector<VmCdiRecord> per_vm;
  /// Second table: one row per (VM, event name) with damage.
  std::vector<EventCdiRecord> per_event;
  /// Eq.-4 aggregate over every VM.
  VmCdi fleet;
  /// Downtime Percentage / AIR / MTBF / MTTR over the same inputs.
  UnavailabilityStats fleet_baseline;
  /// Total service time across the fleet (denominator for event-level CDI).
  Duration fleet_service_time;
  /// Data-quality counters from period resolution.
  ResolveStats resolve_stats;

  /// Exports per_vm as a table (vm_id, region, az, cluster, cdi_u, cdi_p,
  /// cdi_c, service_minutes) for the BI layer.
  dataflow::Table ToVmTable() const;
  /// Exports per_event as a table (vm_id, event, category, damage_minutes,
  /// service_minutes).
  dataflow::Table ToEventTable() const;
};

/// The daily CDI job of Sec. V: reads raw events from the event log, resolves
/// periods, attaches weights, runs Algorithm 1 per VM and category, and
/// emits the two result tables. VM computations run in parallel on the
/// ExecContext's pool (the Spark-executor stand-in).
class DailyCdiJob {
 public:
  /// All referenced objects must outlive the job.
  DailyCdiJob(const EventLog* log, const EventCatalog* catalog,
              const EventWeightModel* weights, dataflow::ExecContext ctx)
      : log_(log), catalog_(catalog), weights_(weights), ctx_(ctx) {}

  /// Runs the job for `vms` over the evaluation window `day` (typically one
  /// UTC day; any window works). Service periods are clamped into `day`.
  StatusOr<DailyCdiResult> Run(const std::vector<VmServiceInfo>& vms,
                               const Interval& day) const;

 private:
  const EventLog* log_;
  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  dataflow::ExecContext ctx_;
};

}  // namespace cdibot

#endif  // CDIBOT_CDI_PIPELINE_H_
