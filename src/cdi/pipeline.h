#ifndef CDIBOT_CDI_PIPELINE_H_
#define CDIBOT_CDI_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "cdi/baselines.h"
#include "cdi/drilldown.h"
#include "chaos/quarantine.h"
#include "common/statusor.h"
#include "dataflow/engine.h"
#include "event/catalog.h"
#include "event/period_resolver.h"
#include "storage/event_log.h"
#include "weights/event_weights.h"

namespace cdibot {

/// Per-VM input to the daily job: identity, placement dimensions, and the
/// VM's service window within the evaluation day (VMs created or released
/// mid-day have partial windows).
struct VmServiceInfo {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  Interval service_period;
};

/// Events extracted up to this margin outside the evaluation window can
/// still describe periods inside it (stateless events trace backward and
/// stateful pairs straddle the boundary), so both the batch job's log
/// search and the streaming engine's retention window extend the service
/// window by this much on each side. Period clamping discards anything
/// that lands outside the service window after resolution.
inline constexpr Duration kEventSearchMargin = Duration::Days(1);

/// Everything the daily job derives from one VM: the per-VM row, the
/// per-event drill-down rows, the classic baseline, and the resolver's
/// data-quality counters. Shared by the batch job and the streaming
/// engine so both paths run the identical per-VM math.
struct VmDailyOutput {
  VmCdiRecord record;
  std::vector<EventCdiRecord> events;
  UnavailabilityStats baseline;
  ResolveStats resolve_stats;
  /// Input-integrity accounting for this VM (mirrored into record.quality).
  DataQuality quality;
  /// True when the VM's service period does not intersect the window.
  bool skipped = false;
};

/// Runs the full per-VM slice of the daily job: clamps the service window
/// into `day`, sanitizes `raw` (structurally malformed events are diverted
/// to quarantine and counted in out->quality instead of failing the VM),
/// resolves the survivors (which must cover at least the service window
/// extended by kEventSearchMargin), attaches weights, computes the three
/// indicators, the baseline stats, and the per-event damage rows. On
/// failure `out` keeps whatever was computed before the failing stage — in
/// particular out->resolve_stats — so callers can still account for the
/// data quality of work that actually ran. `quarantine`, when non-null,
/// additionally receives every diverted event for fleet-level accounting.
Status ComputeVmDailyCdi(std::vector<RawEvent> raw, const VmServiceInfo& vm,
                         const Interval& day, const PeriodResolver& resolver,
                         const EventWeightModel& weights, VmDailyOutput* out,
                         chaos::QuarantineSink* quarantine = nullptr);

/// Full output of one daily CDI computation — the two MaxCompute tables of
/// Sec. V plus fleet-level aggregates and the classic baselines for
/// comparison.
struct DailyCdiResult {
  /// First table: one row per VM.
  std::vector<VmCdiRecord> per_vm;
  /// Second table: one row per (VM, event name) with damage.
  std::vector<EventCdiRecord> per_event;
  /// Eq.-4 aggregate over every VM.
  VmCdi fleet;
  /// Downtime Percentage / AIR / MTBF / MTTR over the same inputs.
  UnavailabilityStats fleet_baseline;
  /// Total service time across the fleet (denominator for event-level CDI).
  Duration fleet_service_time;
  /// Data-quality counters from period resolution. Includes the counters of
  /// VMs that later failed mid-computation — they reflect what actually ran.
  ResolveStats resolve_stats;
  /// VMs whose computation completed and contributed to the aggregates.
  size_t vms_evaluated = 0;
  /// VMs whose service period missed the window entirely.
  size_t vms_skipped = 0;
  /// VMs that failed mid-computation; excluded from per_vm and the fleet
  /// aggregates but counted here so data-quality reporting matches reality.
  size_t vms_failed = 0;
  /// The first per-VM failure (ok when vms_failed == 0).
  Status first_vm_error;
  /// Up to kMaxVmErrorSamples samples of DISTINCT failure reasons across
  /// the failed VMs ("vm <id>: <error>", one VM per distinct reason). A
  /// fleet-wide incident produces thousands of identical failures; keeping
  /// one exemplar per reason is what an operator actually needs.
  std::vector<std::string> vm_error_samples;
  static constexpr size_t kMaxVmErrorSamples = 10;
  /// Aggregate input-integrity counters over the evaluated VMs.
  DataQuality quality;
  /// Evaluated VMs whose per-VM quality is degraded; their rows are in
  /// per_vm (flagged), not dropped.
  size_t vms_degraded = 0;

  /// Exports per_vm as a table (vm_id, region, az, cluster, cdi_u, cdi_p,
  /// cdi_c, service_minutes) for the BI layer.
  dataflow::Table ToVmTable() const;
  /// Exports per_event as a table (vm_id, event, category, damage_minutes,
  /// service_minutes).
  dataflow::Table ToEventTable() const;
};

/// The daily CDI job of Sec. V: reads raw events from the event log, resolves
/// periods, attaches weights, runs Algorithm 1 per VM and category, and
/// emits the two result tables. VM computations run in parallel on the
/// ExecContext's pool (the Spark-executor stand-in).
class DailyCdiJob {
 public:
  /// All referenced objects must outlive the job.
  DailyCdiJob(const EventLog* log, const EventCatalog* catalog,
              const EventWeightModel* weights, dataflow::ExecContext ctx)
      : log_(log), catalog_(catalog), weights_(weights), ctx_(ctx) {}

  /// Optional fleet-level sink for events the per-VM sanitation diverts.
  /// Borrowed; must outlive Run.
  void set_quarantine(chaos::QuarantineSink* sink) { quarantine_ = sink; }

  /// Runs the job for `vms` over the evaluation window `day` (typically one
  /// UTC day; any window works). Service periods are clamped into `day`.
  /// Per-VM failures do not abort the job: the failing VM is dropped from
  /// per_vm, counted in vms_failed, its resolver counters are still
  /// aggregated, the first error is reported in first_vm_error, and up to
  /// kMaxVmErrorSamples distinct failure reasons land in vm_error_samples.
  StatusOr<DailyCdiResult> Run(const std::vector<VmServiceInfo>& vms,
                               const Interval& day) const;

 private:
  const EventLog* log_;
  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  dataflow::ExecContext ctx_;
  chaos::QuarantineSink* quarantine_ = nullptr;
};

}  // namespace cdibot

#endif  // CDIBOT_CDI_PIPELINE_H_
