#ifndef CDIBOT_CDI_PIPELINE_H_
#define CDIBOT_CDI_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "cdi/baselines.h"
#include "cdi/drilldown.h"
#include "chaos/quarantine.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "dataflow/engine.h"
#include "event/catalog.h"
#include "event/period_resolver.h"
#include "storage/event_log.h"
#include "weights/event_weights.h"

namespace cdibot {

/// Per-VM input to the daily job: identity, placement dimensions, and the
/// VM's service window within the evaluation day (VMs created or released
/// mid-day have partial windows).
struct VmServiceInfo {
  std::string vm_id;
  std::map<std::string, std::string> dims;
  Interval service_period;
};

/// Events extracted up to this margin outside the evaluation window can
/// still describe periods inside it (stateless events trace backward and
/// stateful pairs straddle the boundary), so both the batch job's log
/// search and the streaming engine's retention window extend the service
/// window by this much on each side. Period clamping discards anything
/// that lands outside the service window after resolution.
inline constexpr Duration kEventSearchMargin = Duration::Days(1);

/// Everything the daily job derives from one VM: the per-VM row, the
/// per-event drill-down rows, the classic baseline, and the resolver's
/// data-quality counters. Shared by the batch job and the streaming
/// engine so both paths run the identical per-VM math.
struct VmDailyOutput {
  VmCdiRecord record;
  std::vector<EventCdiRecord> events;
  UnavailabilityStats baseline;
  ResolveStats resolve_stats;
  /// Input-integrity accounting for this VM (mirrored into record.quality).
  DataQuality quality;
  /// True when the VM's service period does not intersect the window.
  bool skipped = false;
};

/// Partial-failure payload of ComputeVmDailyCdi: when the computation
/// fails mid-stage, the counters describing the work that DID run land
/// here, so callers can still account for data quality (the old contract
/// left them inside a half-filled out-param; the StatusOr return needs an
/// explicit home for them).
struct VmDailyError {
  Status status;
  /// Resolver counters of the stages that ran before the failure.
  ResolveStats resolve_stats;
  /// Input-integrity counters accumulated before the failure.
  DataQuality quality;
};

/// Runs the full per-VM slice of the daily job over a zero-copy event
/// span (typically EventLog::Query(..) or the streaming engine's
/// retention buffer): clamps the service window into `day`, sanitizes the
/// span (structurally malformed events are diverted to quarantine and
/// counted in the output's quality instead of failing the VM), resolves
/// the survivors (the span must cover at least the service window
/// extended by kEventSearchMargin), attaches weights, computes the three
/// indicators, the baseline stats, and the per-event damage rows.
///
/// On success the full VmDailyOutput is returned by value. On failure the
/// error status is returned and — when `error` is non-null — the partial
/// counters of the stages that ran are preserved in `*error`.
/// `quarantine`, when non-null, additionally receives every diverted
/// event for fleet-level accounting.
///
/// The hot path is allocation-light by design: events are consumed as
/// EventRefs, resolution and weighting run on interned ids, and an
/// event-free VM computes without touching the heap at all (pinned by
/// tests/alloc_regression_test.cc).
StatusOr<VmDailyOutput> ComputeVmDailyCdi(const EventSpan& events,
                                          const VmServiceInfo& vm,
                                          const Interval& day,
                                          const PeriodResolver& resolver,
                                          const EventWeightModel& weights,
                                          chaos::QuarantineSink* quarantine =
                                              nullptr,
                                          VmDailyError* error = nullptr);

/// Full output of one daily CDI computation — the two MaxCompute tables of
/// Sec. V plus fleet-level aggregates and the classic baselines for
/// comparison.
struct DailyCdiResult {
  /// First table: one row per VM.
  std::vector<VmCdiRecord> per_vm;
  /// Second table: one row per (VM, event name) with damage.
  std::vector<EventCdiRecord> per_event;
  /// Eq.-4 aggregate over every VM.
  VmCdi fleet;
  /// Downtime Percentage / AIR / MTBF / MTTR over the same inputs.
  UnavailabilityStats fleet_baseline;
  /// Total service time across the fleet (denominator for event-level CDI).
  Duration fleet_service_time;
  /// Data-quality counters from period resolution. Includes the counters of
  /// VMs that later failed mid-computation — they reflect what actually ran.
  ResolveStats resolve_stats;
  /// VMs whose computation completed and contributed to the aggregates.
  size_t vms_evaluated = 0;
  /// VMs whose service period missed the window entirely.
  size_t vms_skipped = 0;
  /// VMs that failed mid-computation; excluded from per_vm and the fleet
  /// aggregates but counted here so data-quality reporting matches reality.
  size_t vms_failed = 0;
  /// VMs never started because the job's deadline expired first. A
  /// non-zero count marks this result as partial: the fleet aggregates
  /// cover only the VMs that ran.
  size_t vms_deferred = 0;
  /// The first per-VM failure (ok when vms_failed == 0).
  Status first_vm_error;
  /// Up to kMaxVmErrorSamples samples of DISTINCT failure reasons across
  /// the failed VMs ("vm <id>: <error>", one VM per distinct reason). A
  /// fleet-wide incident produces thousands of identical failures; keeping
  /// one exemplar per reason is what an operator actually needs.
  std::vector<std::string> vm_error_samples;
  static constexpr size_t kMaxVmErrorSamples = 10;
  /// Aggregate input-integrity counters over the evaluated VMs.
  DataQuality quality;
  /// Evaluated VMs whose per-VM quality is degraded; their rows are in
  /// per_vm (flagged), not dropped.
  size_t vms_degraded = 0;

  /// Exports per_vm as a table (vm_id, region, az, cluster, cdi_u, cdi_p,
  /// cdi_c, service_minutes) for the BI layer.
  dataflow::Table ToVmTable() const;
  /// Exports per_event as a table (vm_id, event, category, damage_minutes,
  /// service_minutes).
  dataflow::Table ToEventTable() const;
};

/// The daily CDI job of Sec. V: reads raw events from the event log, resolves
/// periods, attaches weights, runs Algorithm 1 per VM and category, and
/// emits the two result tables. VM computations run in parallel on the
/// ExecContext's pool (the Spark-executor stand-in).
class DailyCdiJob {
 public:
  /// Everything a job borrows, in one place. All referenced objects must
  /// outlive the job; `log`, `catalog` and `weights` are required.
  struct Options {
    const EventLog* log = nullptr;
    const EventCatalog* catalog = nullptr;
    const EventWeightModel* weights = nullptr;
    /// Worker pool for per-VM parallelism (the Spark-executor stand-in);
    /// nullptr runs VMs serially.
    ThreadPool* pool = nullptr;
    /// Below this VM count the job stays single-threaded even with a pool
    /// (task overhead dominates otherwise). Mirrors
    /// dataflow::ExecContext::min_parallel_rows.
    size_t min_parallel_rows = 2;
    /// Optional fleet-level sink for events the per-VM sanitation diverts.
    chaos::QuarantineSink* quarantine = nullptr;
    /// Execution budget. VMs not yet started when the deadline expires are
    /// deferred (counted in DailyCdiResult::vms_deferred) instead of
    /// computed, so an overloaded job returns a partial-but-honest result
    /// quickly rather than a complete one late. Default: infinite.
    Deadline deadline = {};
  };

  explicit DailyCdiJob(const Options& options)
      : log_(options.log),
        catalog_(options.catalog),
        weights_(options.weights),
        pool_(options.pool),
        min_parallel_rows_(options.min_parallel_rows),
        quarantine_(options.quarantine),
        deadline_(options.deadline) {}

  /// Compatibility constructor predating Options; prefer
  /// DailyCdiJob(Options{...}), which can also wire a quarantine sink.
  DailyCdiJob(const EventLog* log, const EventCatalog* catalog,
              const EventWeightModel* weights, dataflow::ExecContext ctx)
      : DailyCdiJob(Options{.log = log,
                            .catalog = catalog,
                            .weights = weights,
                            .pool = ctx.pool}) {}

  /// Runs the job for `vms` over the evaluation window `day` (typically one
  /// UTC day; any window works). Service periods are clamped into `day`.
  /// Per-VM failures do not abort the job: the failing VM is dropped from
  /// per_vm, counted in vms_failed, its resolver counters are still
  /// aggregated, the first error is reported in first_vm_error, and up to
  /// kMaxVmErrorSamples distinct failure reasons land in vm_error_samples.
  StatusOr<DailyCdiResult> Run(const std::vector<VmServiceInfo>& vms,
                               const Interval& day) const;

 private:
  const EventLog* log_;
  const EventCatalog* catalog_;
  const EventWeightModel* weights_;
  ThreadPool* pool_;
  size_t min_parallel_rows_;
  chaos::QuarantineSink* quarantine_;
  Deadline deadline_;
};

}  // namespace cdibot

#endif  // CDIBOT_CDI_PIPELINE_H_
