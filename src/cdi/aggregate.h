#ifndef CDIBOT_CDI_AGGREGATE_H_
#define CDIBOT_CDI_AGGREGATE_H_

#include <vector>

#include "cdi/vm_cdi.h"
#include "common/statusor.h"
#include "common/time.h"

namespace cdibot {

/// Service-time-weighted mean of per-VM CDI values — Eq. 4:
///
///   Q = sum_i(T_i * Q_i) / sum_i(T_i)
///
/// Usable incrementally (the BI drill-down of Sec. V re-aggregates the same
/// records along different dimensions). Merging two accumulators yields the
/// same result as accumulating their union.
class CdiAccumulator {
 public:
  CdiAccumulator() = default;

  /// Adds one VM's indicator value with its service time.
  void Add(Duration service_time, double cdi);

  /// Merges another accumulator into this one.
  void Merge(const CdiAccumulator& other);

  /// The aggregated Q. Returns 0 when no service time has been added.
  double Value() const;

  Duration total_service_time() const {
    return Duration::Millis(total_service_ms_);
  }
  bool empty() const { return total_service_ms_ == 0; }

 private:
  double weighted_sum_ = 0.0;  // sum of T_i (ms) * Q_i
  int64_t total_service_ms_ = 0;
};

/// Aggregates full per-VM results into one fleet-level VmCdi via Eq. 4,
/// applied independently to each sub-metric.
VmCdi AggregateVmCdi(const std::vector<VmCdi>& vms);

}  // namespace cdibot

#endif  // CDIBOT_CDI_AGGREGATE_H_
