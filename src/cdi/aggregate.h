#ifndef CDIBOT_CDI_AGGREGATE_H_
#define CDIBOT_CDI_AGGREGATE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cdi/vm_cdi.h"
#include "common/statusor.h"
#include "common/time.h"

namespace cdibot {

/// Service-time-weighted mean of per-VM CDI values — Eq. 4:
///
///   Q = sum_i(T_i * Q_i) / sum_i(T_i)
///
/// Usable incrementally (the BI drill-down of Sec. V re-aggregates the same
/// records along different dimensions). Merging two accumulators yields the
/// same result as accumulating their union.
class CdiAccumulator {
 public:
  CdiAccumulator() = default;

  /// Adds one VM's indicator value with its service time.
  void Add(Duration service_time, double cdi);

  /// Retracts a previously added sample — the streaming engine replaces a
  /// VM's contribution in place when late events change its indicator.
  /// Floating-point retraction is exact in the weight sum (int64) and
  /// accurate to rounding in the weighted sum.
  void Remove(Duration service_time, double cdi);

  /// Merges another accumulator into this one.
  void Merge(const CdiAccumulator& other);

  /// The aggregated Q. Returns 0 when no service time has been added.
  double Value() const;

  Duration total_service_time() const {
    return Duration::Millis(total_service_ms_);
  }
  bool empty() const { return total_service_ms_ == 0; }

 private:
  double weighted_sum_ = 0.0;  // sum of T_i (ms) * Q_i
  int64_t total_service_ms_ = 0;
};

/// Mergeable partial form of the Eq.-4 fleet rollup: one accumulator per
/// sub-metric. Each shard of the streaming engine (and each executor of the
/// batch job, conceptually) folds its VMs into a partial; partials merge
/// associatively and finalize into the fleet VmCdi. Merging partials yields
/// the same result as folding the union of their VMs.
class FleetCdiPartial {
 public:
  FleetCdiPartial() = default;

  /// Folds one VM's indicators in.
  void AddVm(const VmCdi& vm);

  /// Retracts one VM's previously folded indicators.
  void RemoveVm(const VmCdi& vm);

  /// Merges another partial into this one.
  void Merge(const FleetCdiPartial& other);

  /// The fleet-level VmCdi over everything folded so far.
  VmCdi Finalize() const;

  Duration total_service_time() const { return u_.total_service_time(); }
  bool empty() const { return u_.empty(); }

 private:
  CdiAccumulator u_, p_, c_;
};

/// Aggregates full per-VM results into one fleet-level VmCdi via Eq. 4,
/// applied independently to each sub-metric.
VmCdi AggregateVmCdi(const std::vector<VmCdi>& vms);

/// The canonical Eq.-4 fleet fold: accumulates per-VM terms in ascending
/// vm_id order as a single left fold, regardless of the order they were
/// Add()ed in.
///
/// Why this exists: FP addition is commutative but not associative, so two
/// topologies that group the same per-VM terms differently (batch slot
/// order, streaming hash shards, scatter/gather over N shard workers) can
/// finalize to fleet values differing in the last ulp. Every path that
/// promises BIT-identical fleet CDI across topologies folds through this
/// class instead of merging grouped partials; the mergeable partials remain
/// the right tool for cheap incremental reads (FleetCdi()), where last-ulp
/// grouping sensitivity is acceptable and documented.
class CanonicalCdiFold {
 public:
  /// Records one VM's term. vm_id must be unique across Add calls (the
  /// callers fold map-keyed rows, which guarantees it).
  void Add(std::string_view vm_id, const VmCdi& cdi);

  /// Sorts the recorded terms by vm_id and left-folds them into the fleet
  /// VmCdi. Deterministic: same (vm_id, cdi) set in any insertion order
  /// yields the same bits.
  VmCdi Finalize();

  bool empty() const { return terms_.empty(); }

 private:
  std::vector<std::pair<std::string, VmCdi>> terms_;
};

}  // namespace cdibot

#endif  // CDIBOT_CDI_AGGREGATE_H_
