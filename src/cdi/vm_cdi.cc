#include "cdi/vm_cdi.h"

#include "cdi/indicator.h"

namespace cdibot {

StatusOr<std::vector<WeightedEvent>> AttachWeights(
    const std::vector<ResolvedEvent>& events, const EventWeightModel& model) {
  std::vector<WeightedEvent> out;
  out.reserve(events.size());
  for (const ResolvedEvent& ev : events) {
    CDIBOT_ASSIGN_OR_RETURN(const double w, model.WeightFor(ev));
    out.push_back(WeightedEvent{.period = ev.period,
                                .weight = w,
                                .name = ev.name,
                                .target = ev.target,
                                .category = ev.category});
  }
  return out;
}

StatusOr<std::vector<WeightedEventView>> AttachWeights(
    const std::vector<ResolvedEventView>& events,
    const EventWeightModel& model) {
  std::vector<WeightedEventView> out;
  out.reserve(events.size());
  for (const ResolvedEventView& ev : events) {
    CDIBOT_ASSIGN_OR_RETURN(const double w, model.WeightFor(ev));
    out.push_back(WeightedEventView{.period = ev.period,
                                    .weight = w,
                                    .name_id = ev.name_id,
                                    .category = ev.category});
  }
  return out;
}

namespace {

// The category split + per-category Algorithm 1, shared by the owning and
// zero-copy overloads (both event types expose `.category`).
template <typename Event>
StatusOr<VmCdi> ComputeVmCdiImpl(const std::vector<Event>& events,
                                 const Interval& service_period) {
  if (service_period.empty()) {
    return Status::InvalidArgument("service period must be non-empty");
  }
  std::vector<Event> by_cat[kNumStabilityCategories];
  for (const Event& ev : events) {
    by_cat[static_cast<int>(ev.category)].push_back(ev);
  }
  VmCdi result;
  result.service_time = service_period.length();
  CDIBOT_ASSIGN_OR_RETURN(
      result.unavailability,
      ComputeCdi(by_cat[static_cast<int>(StabilityCategory::kUnavailability)],
                 service_period));
  CDIBOT_ASSIGN_OR_RETURN(
      result.performance,
      ComputeCdi(by_cat[static_cast<int>(StabilityCategory::kPerformance)],
                 service_period));
  CDIBOT_ASSIGN_OR_RETURN(
      result.control_plane,
      ComputeCdi(by_cat[static_cast<int>(StabilityCategory::kControlPlane)],
                 service_period));
  return result;
}

}  // namespace

StatusOr<VmCdi> ComputeVmCdi(const std::vector<WeightedEvent>& events,
                             const Interval& service_period) {
  return ComputeVmCdiImpl(events, service_period);
}

StatusOr<VmCdi> ComputeVmCdi(const std::vector<WeightedEventView>& events,
                             const Interval& service_period) {
  return ComputeVmCdiImpl(events, service_period);
}

StatusOr<VmCdi> ComputeVmCdi(const std::vector<ResolvedEvent>& events,
                             const EventWeightModel& model,
                             const Interval& service_period) {
  CDIBOT_ASSIGN_OR_RETURN(const std::vector<WeightedEvent> weighted,
                          AttachWeights(events, model));
  return ComputeVmCdi(weighted, service_period);
}

}  // namespace cdibot
