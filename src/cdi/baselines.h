#ifndef CDIBOT_CDI_BASELINES_H_
#define CDIBOT_CDI_BASELINES_H_

#include <initializer_list>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"
#include "event/event_view.h"

namespace cdibot {

/// The traditional unavailability-only metrics CDI is compared against in
/// Sec. III-A and Fig. 5. All of them look exclusively at unavailability
/// events, which is exactly why they miss performance and control-plane
/// damage.
struct UnavailabilityStats {
  /// Downtime Percentage: unavailable time / total service time.
  double downtime_percentage = 0.0;
  /// Interruption episodes per year of service time (Azure's Annual
  /// Interruption Rate, ref. [4]: frequency rather than duration).
  double annual_interruption_rate = 0.0;
  /// Mean time between failures (service time / episode count); zero
  /// episodes reports the whole service time.
  Duration mtbf;
  /// Mean time to repair (mean episode length); zero when no episodes.
  Duration mttr;
  /// Number of merged unavailability episodes.
  size_t interruption_count = 0;
  /// Total unavailable time after merging overlaps.
  Duration downtime;
};

/// Merges the unavailability events in `events` into disjoint episodes
/// (overlapping or touching intervals coalesce into one interruption) and
/// derives the classic metrics over `service_period`. Non-unavailability
/// events are ignored — by construction, mirroring industry practice.
StatusOr<UnavailabilityStats> ComputeUnavailabilityStats(
    const std::vector<ResolvedEvent>& events, const Interval& service_period);

/// Zero-copy overload over resolved-event views. Shares one implementation
/// with the owning overload, so identical (category, period) sequences
/// yield bit-identical stats.
StatusOr<UnavailabilityStats> ComputeUnavailabilityStats(
    const std::vector<ResolvedEventView>& events,
    const Interval& service_period);

/// Braced-list convenience (`ComputeUnavailabilityStats({}, day)`): without
/// it an empty list is ambiguous between the owning and view overloads.
inline StatusOr<UnavailabilityStats> ComputeUnavailabilityStats(
    std::initializer_list<ResolvedEvent> events,
    const Interval& service_period) {
  return ComputeUnavailabilityStats(std::vector<ResolvedEvent>(events),
                                    service_period);
}

/// Mergeable partial form of the classic-metrics fleet rollup: episode
/// counts, downtime, and service time are plain sums, so per-shard partials
/// merge associatively and the rates re-derive at finalize time. The
/// streaming engine keeps one partial per shard and retracts a VM's old
/// contribution when late events revise it.
class UnavailabilityPartial {
 public:
  UnavailabilityPartial() = default;

  void AddVm(const UnavailabilityStats& vm, Duration service_time);
  void RemoveVm(const UnavailabilityStats& vm, Duration service_time);
  void Merge(const UnavailabilityPartial& other);

  /// Fleet-level stats over everything folded so far.
  UnavailabilityStats Finalize() const;

  bool empty() const { return service_total_.IsZero(); }

  /// Reconstructs a partial from its raw sums. All three components are
  /// integers (episode count plus two millisecond durations), so a partial
  /// round-trips through FromRaw(raw fields) — and therefore across a wire
  /// encoding — exactly, and partials reconstructed on different shards
  /// merge bit-identically in any order. The shard coordinator relies on
  /// this to gather per-shard baselines without shipping per-VM stats.
  static UnavailabilityPartial FromRaw(size_t interruption_count,
                                       Duration downtime,
                                       Duration service_total);
  size_t raw_interruption_count() const { return interruption_count_; }
  Duration raw_downtime() const { return downtime_; }
  Duration raw_service_total() const { return service_total_; }

 private:
  size_t interruption_count_ = 0;
  Duration downtime_;
  Duration service_total_;
};

/// Fleet-level aggregation of the classic metrics: durations and episode
/// counts add; rates re-normalize by total service time.
UnavailabilityStats AggregateUnavailabilityStats(
    const std::vector<UnavailabilityStats>& per_vm,
    const std::vector<Duration>& service_times);

}  // namespace cdibot

#endif  // CDIBOT_CDI_BASELINES_H_
