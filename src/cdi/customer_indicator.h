#ifndef CDIBOT_CDI_CUSTOMER_INDICATOR_H_
#define CDIBOT_CDI_CUSTOMER_INDICATOR_H_

#include <set>
#include <string>
#include <vector>

#include "cdi/vm_cdi.h"
#include "common/statusor.h"

namespace cdibot {

/// The Customer-Perspective Indicator of Sec. VIII-B: the CDI framework
/// applied to only the event subset disclosed to customers through ECS
/// instance health diagnosis (ref. [2]). Internally detected issues the
/// customer cannot see (e.g. TDP inspection, allocation-data errors) are
/// excluded, so the CPI answers "how unstable did this VM look *to its
/// owner*" — a lower bound on the internal CDI.
class CustomerEventFilter {
 public:
  /// Builds a filter over an explicit disclosed-event allowlist.
  explicit CustomerEventFilter(std::set<std::string> disclosed_events)
      : disclosed_(std::move(disclosed_events)) {}

  /// The default disclosure set modeled on instance health diagnosis:
  /// customer-visible symptoms (crash, hang, reboot, blackhole, slow IO,
  /// packet loss, failed control operations) but not internal inspection
  /// events.
  static CustomerEventFilter BuiltIn();

  bool IsDisclosed(const std::string& event_name) const {
    return disclosed_.count(event_name) > 0;
  }

  /// The disclosed subset of `events`.
  std::vector<ResolvedEvent> Filter(
      const std::vector<ResolvedEvent>& events) const;

  const std::set<std::string>& disclosed_events() const { return disclosed_; }

 private:
  std::set<std::string> disclosed_;
};

/// Internal CDI and customer-perspective CPI for the same VM and period,
/// plus the "hidden damage" the customer cannot observe.
struct CdiCpiComparison {
  VmCdi internal;
  VmCdi customer;

  /// Per-category damage visible internally but not to the customer
  /// (internal - customer; >= 0 by construction).
  double HiddenUnavailability() const {
    return internal.unavailability - customer.unavailability;
  }
  double HiddenPerformance() const {
    return internal.performance - customer.performance;
  }
  double HiddenControlPlane() const {
    return internal.control_plane - customer.control_plane;
  }
};

/// Computes the CPI: ComputeVmCdi restricted to disclosed events.
StatusOr<VmCdi> ComputeCustomerCdi(const std::vector<ResolvedEvent>& events,
                                   const EventWeightModel& weights,
                                   const CustomerEventFilter& filter,
                                   const Interval& service_period);

/// Computes both perspectives at once.
StatusOr<CdiCpiComparison> CompareCdiAndCpi(
    const std::vector<ResolvedEvent>& events, const EventWeightModel& weights,
    const CustomerEventFilter& filter, const Interval& service_period);

}  // namespace cdibot

#endif  // CDIBOT_CDI_CUSTOMER_INDICATOR_H_
