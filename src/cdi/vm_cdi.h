#ifndef CDIBOT_CDI_VM_CDI_H_
#define CDIBOT_CDI_VM_CDI_H_

#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"
#include "event/event_view.h"
#include "weights/event_weights.h"

namespace cdibot {

/// The three CDI sub-metrics of one VM (or one aggregate of VMs) over a
/// service period (Sec. IV-A). Each lies in [0, 1]; 0 is a perfectly stable
/// period.
struct VmCdi {
  /// CDI-U: ratio of unavailability duration to service time (unweighted).
  double unavailability = 0.0;
  /// CDI-P: ratio of weighted performance-impact duration to service time.
  double performance = 0.0;
  /// CDI-C: ratio of weighted uncontrollability duration to service time.
  double control_plane = 0.0;
  /// T_i in Eq. 4: the VM's service time within the evaluation window.
  Duration service_time;

  /// Sub-metric accessor by category.
  double ForCategory(StabilityCategory c) const {
    switch (c) {
      case StabilityCategory::kUnavailability:
        return unavailability;
      case StabilityCategory::kPerformance:
        return performance;
      case StabilityCategory::kControlPlane:
        return control_plane;
    }
    return 0.0;
  }
};

/// Applies the weight model to resolved events, producing Algorithm-1 inputs.
/// Events whose weight lookup fails propagate the error.
StatusOr<std::vector<WeightedEvent>> AttachWeights(
    const std::vector<ResolvedEvent>& events, const EventWeightModel& model);

/// Zero-copy twin: attaches weights to resolved-event views without
/// copying any strings. The weight arithmetic is shared with the owning
/// path, so identical event sequences get bit-identical weights.
StatusOr<std::vector<WeightedEventView>> AttachWeights(
    const std::vector<ResolvedEventView>& events,
    const EventWeightModel& model);

/// Computes the three sub-metrics for one VM: splits `events` by category and
/// runs Algorithm 1 per category over `service_period` (Sec. IV-A: "the
/// calculation process for each is identical, and the only difference lies in
/// the specific events they rely on").
StatusOr<VmCdi> ComputeVmCdi(const std::vector<WeightedEvent>& events,
                             const Interval& service_period);

/// Zero-copy overload over weighted views (same per-category Algorithm 1).
StatusOr<VmCdi> ComputeVmCdi(const std::vector<WeightedEventView>& events,
                             const Interval& service_period);

/// Convenience: resolve weights then compute.
StatusOr<VmCdi> ComputeVmCdi(const std::vector<ResolvedEvent>& events,
                             const EventWeightModel& model,
                             const Interval& service_period);

}  // namespace cdibot

#endif  // CDIBOT_CDI_VM_CDI_H_
