#include "cdi/indicator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

namespace cdibot {
namespace {

// WeightedEvent and WeightedEventView both expose `.period` and `.weight`;
// templating keeps the owning and zero-copy entry points on one
// implementation, so identical (period, weight) sequences produce
// bit-identical results regardless of which container carried them.
template <typename Event>
Status ValidateInputs(const std::vector<Event>& events,
                      const Interval& service_period) {
  if (service_period.empty()) {
    return Status::InvalidArgument("service period must be non-empty");
  }
  for (const Event& ev : events) {
    if (ev.weight < 0.0 || !std::isfinite(ev.weight)) {
      return Status::InvalidArgument("event weight must be finite and >= 0");
    }
  }
  return Status::OK();
}

// Computes integral over the service period of the per-instant maximum
// weight, in milliseconds-weight units.
template <typename Event>
StatusOr<double> MaxOverlapIntegralMillis(const std::vector<Event>& events,
                                          const Interval& service_period) {
  CDIBOT_RETURN_IF_ERROR(ValidateInputs(events, service_period));

  // Clamp and drop empty.
  struct Seg {
    int64_t start;
    int64_t end;
    double weight;
  };
  std::vector<Seg> segs;
  segs.reserve(events.size());
  for (const Event& ev : events) {
    const Interval clamped = ev.period.ClampTo(service_period);
    if (clamped.empty() || ev.weight == 0.0) continue;
    segs.push_back(
        {clamped.start.millis(), clamped.end.millis(), ev.weight});
  }
  if (segs.empty()) return 0.0;

  std::sort(segs.begin(), segs.end(),
            [](const Seg& a, const Seg& b) { return a.start < b.start; });

  // Elementary-interval sweep: the boundary points split time into pieces on
  // which the active segment set is constant. A max-heap of (weight, end)
  // with lazy deletion yields the per-piece maximum in O(n log n) total.
  std::vector<int64_t> boundaries;
  boundaries.reserve(segs.size() * 2);
  for (const Seg& s : segs) {
    boundaries.push_back(s.start);
    boundaries.push_back(s.end);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::priority_queue<std::pair<double, int64_t>> heap;  // (weight, end)
  double integral = 0.0;
  size_t next = 0;
  for (size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const int64_t lo = boundaries[b];
    const int64_t hi = boundaries[b + 1];
    while (next < segs.size() && segs[next].start <= lo) {
      heap.emplace(segs[next].weight, segs[next].end);
      ++next;
    }
    while (!heap.empty() && heap.top().second <= lo) heap.pop();
    if (!heap.empty()) {
      integral += heap.top().first * static_cast<double>(hi - lo);
    }
  }
  return integral;
}

}  // namespace

StatusOr<double> ComputeCdi(const std::vector<WeightedEvent>& events,
                            const Interval& service_period) {
  CDIBOT_ASSIGN_OR_RETURN(const double integral,
                          MaxOverlapIntegralMillis(events, service_period));
  return integral /
         static_cast<double>(service_period.length().millis());
}

StatusOr<double> ComputeCdi(const std::vector<WeightedEventView>& events,
                            const Interval& service_period) {
  CDIBOT_ASSIGN_OR_RETURN(const double integral,
                          MaxOverlapIntegralMillis(events, service_period));
  return integral /
         static_cast<double>(service_period.length().millis());
}

StatusOr<double> ComputeDamageMinutes(
    const std::vector<WeightedEvent>& events, const Interval& service_period) {
  CDIBOT_ASSIGN_OR_RETURN(const double integral,
                          MaxOverlapIntegralMillis(events, service_period));
  return integral / 60000.0;
}

StatusOr<double> ComputeDamageMinutes(
    const std::vector<WeightedEventView>& events,
    const Interval& service_period) {
  CDIBOT_ASSIGN_OR_RETURN(const double integral,
                          MaxOverlapIntegralMillis(events, service_period));
  return integral / 60000.0;
}

StatusOr<double> ComputeCdiNaive(const std::vector<WeightedEvent>& events,
                                 const Interval& service_period) {
  CDIBOT_RETURN_IF_ERROR(ValidateInputs(events, service_period));
  constexpr int64_t kSlotMs = 60000;  // one-minute slots, as in the paper
  const int64_t t0 = service_period.start.millis();
  const int64_t t1 = service_period.end.millis();
  const auto slots = static_cast<size_t>((t1 - t0 + kSlotMs - 1) / kSlotMs);
  if (slots > (1u << 26)) {
    return Status::ResourceExhausted(
        "naive CDI array too large; use ComputeCdi");
  }
  // Line 1: W[T_s..T_e] <- 0.
  std::vector<double> w(slots, 0.0);
  // Lines 2-5: per-event max-paint.
  for (const WeightedEvent& ev : events) {
    const Interval clamped = ev.period.ClampTo(service_period);
    if (clamped.empty()) continue;
    const auto first =
        static_cast<size_t>((clamped.start.millis() - t0) / kSlotMs);
    // End-exclusive: a slot is covered if the event overlaps any part of it.
    const auto last = static_cast<size_t>(
        (clamped.end.millis() - t0 + kSlotMs - 1) / kSlotMs);
    for (size_t i = first; i < std::min(last, slots); ++i) {
      w[i] = std::max(w[i], ev.weight);
    }
  }
  // Line 6: Q = (1 / (T_e - T_s)) * sum W[t] * dt.
  double sum = 0.0;
  for (size_t i = 0; i < slots; ++i) {
    const int64_t slot_start = t0 + static_cast<int64_t>(i) * kSlotMs;
    const int64_t slot_end = std::min(t1, slot_start + kSlotMs);
    sum += w[i] * static_cast<double>(slot_end - slot_start);
  }
  return sum / static_cast<double>(t1 - t0);
}

StatusOr<double> ComputeCdiSumOverlap(
    const std::vector<WeightedEvent>& events, const Interval& service_period) {
  CDIBOT_RETURN_IF_ERROR(ValidateInputs(events, service_period));
  // Boundary sweep summing active weights, capped at 1.
  struct Edge {
    int64_t t;
    double delta;
  };
  std::vector<Edge> edges;
  edges.reserve(events.size() * 2);
  for (const WeightedEvent& ev : events) {
    const Interval clamped = ev.period.ClampTo(service_period);
    if (clamped.empty() || ev.weight == 0.0) continue;
    edges.push_back({clamped.start.millis(), ev.weight});
    edges.push_back({clamped.end.millis(), -ev.weight});
  }
  if (edges.empty()) return 0.0;
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.t < b.t; });
  double integral = 0.0;
  double level = 0.0;
  int64_t prev = edges.front().t;
  for (const Edge& e : edges) {
    if (e.t > prev) {
      integral += std::min(1.0, level) * static_cast<double>(e.t - prev);
      prev = e.t;
    }
    level += e.delta;
  }
  return integral / static_cast<double>(service_period.length().millis());
}

}  // namespace cdibot
