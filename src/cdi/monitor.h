#ifndef CDIBOT_CDI_MONITOR_H_
#define CDIBOT_CDI_MONITOR_H_

#include <map>
#include <string>
#include <vector>

#include "anomaly/ksigma.h"
#include "anomaly/root_cause.h"
#include "cdi/pipeline.h"
#include "common/statusor.h"

namespace cdibot {

/// A potential problem surfaced by the monitor: one event-level CDI curve
/// moved sharply (Sec. VI-C — spikes AND dips both warrant investigation),
/// with root-cause candidates to aim the investigation.
struct PotentialProblem {
  TimePoint day;
  std::string event_name;
  AnomalyDirection direction = AnomalyDirection::kNone;
  /// Today's event-level CDI and the trailing-window mean it broke from.
  double value = 0.0;
  double baseline = 0.0;
  /// (dimension, value) slices explaining the change, best first.
  std::vector<RootCauseCandidate> root_causes;
};

/// CdiMonitor is the daily watchdog of Sec. VI-C: it ingests each day's
/// DailyCdiResult, maintains the event-level drill-down curves, flags
/// sudden spikes or dips with K-Sigma, and localizes each flag to the
/// placement dimensions (region / az / cluster / arch / model) whose damage
/// moved the most against the previous day.
class CdiMonitor {
 public:
  struct Options {
    /// Trailing window (days) for the per-curve detector. >= 3.
    size_t window = 7;
    /// K-Sigma threshold.
    double k = 3.0;
    /// Root-cause candidates reported per problem.
    size_t top_k_causes = 3;
  };

  static StatusOr<CdiMonitor> Create(Options options);
  static StatusOr<CdiMonitor> Create() { return Create(Options()); }

  /// Ingests one day's job output; returns the problems detected that day.
  /// Days must be ingested in chronological order.
  StatusOr<std::vector<PotentialProblem>> IngestDay(
      TimePoint day, const DailyCdiResult& result);

  /// Judges a provisional result against the committed history WITHOUT
  /// mutating the monitor: no curve point is recorded and the detectors do
  /// not advance. This is the live-watchdog path — a streaming engine's
  /// intra-day snapshots can be previewed every few minutes while the day
  /// is still accumulating, and IngestDay commits only the final result.
  /// Events never seen before produce problems only when damage is
  /// non-zero (their baseline is all-zero history).
  StatusOr<std::vector<PotentialProblem>> Preview(
      TimePoint day, const DailyCdiResult& result) const;

  /// The stored event-level CDI series for one event (ingestion order);
  /// empty if the event has produced no damage yet.
  std::vector<double> SeriesFor(const std::string& event_name) const;

  size_t days_ingested() const { return days_; }

 private:
  explicit CdiMonitor(Options options) : options_(options) {}

  struct Curve {
    std::vector<double> series;
    KSigmaDetector detector;
  };

  Options options_;
  size_t days_ = 0;
  std::map<std::string, Curve> curves_;
  // Yesterday's per-event dimensioned damage, for root-cause deltas.
  std::map<std::string, std::vector<DimensionedRecord>> previous_damage_;
};

}  // namespace cdibot

#endif  // CDIBOT_CDI_MONITOR_H_
