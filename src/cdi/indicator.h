#ifndef CDIBOT_CDI_INDICATOR_H_
#define CDIBOT_CDI_INDICATOR_H_

#include <initializer_list>
#include <vector>

#include "common/statusor.h"
#include "common/time.h"
#include "event/event.h"
#include "event/event_view.h"

namespace cdibot {

/// Algorithm 1 of the paper: the CDI of one VM over a service period.
///
/// Each weighted event paints its weight onto [t_s, t_e); where events
/// overlap, the segment takes the maximum weight (Sec. IV-D). The CDI is the
/// weight-integral divided by the service-period length, so it lies in
/// [0, 1] whenever all weights do.
///
/// This is the production implementation: an O(n log n) boundary sweep, not
/// the per-timestep array of the pseudo-code (see ComputeCdiNaive for that
/// literal version, kept for differential testing and the sweep ablation).
///
/// Events are clamped into `service_period`; events entirely outside it are
/// ignored. Requires a non-empty service period and weights >= 0.
StatusOr<double> ComputeCdi(const std::vector<WeightedEvent>& events,
                            const Interval& service_period);

/// Zero-copy overload: same sweep over WeightedEventViews. Both overloads
/// instantiate one shared implementation, so identical (period, weight)
/// sequences yield bit-identical results.
StatusOr<double> ComputeCdi(const std::vector<WeightedEventView>& events,
                            const Interval& service_period);

/// Braced-list convenience (`ComputeCdi({}, day)`): without it an empty
/// list is ambiguous between the owning and view overloads.
inline StatusOr<double> ComputeCdi(std::initializer_list<WeightedEvent> events,
                                   const Interval& service_period) {
  return ComputeCdi(std::vector<WeightedEvent>(events), service_period);
}

/// The literal Algorithm 1: materializes a per-minute weight array
/// W[T_s..T_e], takes per-slot maxima, and averages. Time and memory are
/// proportional to the service period length in minutes. Event boundaries
/// are effectively rounded to the minute grid, so results can differ from
/// ComputeCdi by at most one slot per event boundary; with minute-aligned
/// events (the common case — detection windows are whole minutes) the two
/// agree exactly.
StatusOr<double> ComputeCdiNaive(const std::vector<WeightedEvent>& events,
                                 const Interval& service_period);

/// A variant for the aggregation-semantics ablation: overlapping events sum
/// (capped at 1.0) instead of taking the max. Not used by the CDI proper.
StatusOr<double> ComputeCdiSumOverlap(const std::vector<WeightedEvent>& events,
                                      const Interval& service_period);

/// The damage integral (numerator of the CDI): sum over time of the maximum
/// active weight, expressed as a Duration-weighted value in minutes. Exposed
/// for event-level drill-down tables, which store per-event damage.
StatusOr<double> ComputeDamageMinutes(const std::vector<WeightedEvent>& events,
                                      const Interval& service_period);

/// Zero-copy overload (see ComputeCdi note on bit-identity).
StatusOr<double> ComputeDamageMinutes(
    const std::vector<WeightedEventView>& events,
    const Interval& service_period);

/// Braced-list convenience (see ComputeCdi).
inline StatusOr<double> ComputeDamageMinutes(
    std::initializer_list<WeightedEvent> events,
    const Interval& service_period) {
  return ComputeDamageMinutes(std::vector<WeightedEvent>(events),
                              service_period);
}

}  // namespace cdibot

#endif  // CDIBOT_CDI_INDICATOR_H_
