#ifndef CDIBOT_WEIGHTS_AHP_H_
#define CDIBOT_WEIGHTS_AHP_H_

#include <vector>

#include "common/statusor.h"

namespace cdibot {

/// Result of an Analytic Hierarchy Process evaluation: the priority (weight)
/// of each criterion plus the consistency diagnostics of the judgment matrix.
struct AhpResult {
  /// Normalized priority weights, one per criterion; sums to 1.
  std::vector<double> priorities;
  /// Principal eigenvalue of the judgment matrix.
  double lambda_max = 0.0;
  /// Consistency index CI = (lambda_max - k) / (k - 1).
  double consistency_index = 0.0;
  /// Consistency ratio CR = CI / RI(k). Judgments with CR <= 0.1 are
  /// conventionally acceptable.
  double consistency_ratio = 0.0;
};

/// Analytic Hierarchy Process (Forman & Gass; ref. [3] in the paper):
/// converts a pairwise qualitative comparison matrix of criteria importance
/// into a normalized weight vector, used by Sec. IV-C to mix the expert and
/// customer perspectives of event severity.
class AhpMatrix {
 public:
  /// Builds from a full k x k judgment matrix. Entries use Saaty's 1–9
  /// scale; a[i][j] states how much more important criterion i is than j.
  /// Requires a square matrix with positive entries, unit diagonal, and
  /// reciprocal symmetry a[j][i] = 1 / a[i][j] (within 1e-6).
  static StatusOr<AhpMatrix> FromJudgments(
      std::vector<std::vector<double>> judgments);

  /// Builds a 2-criteria matrix from a single comparison value: how much
  /// more important criterion 0 is than criterion 1.
  static StatusOr<AhpMatrix> FromSingleComparison(double importance_0_over_1);

  size_t size() const { return judgments_.size(); }

  /// Computes priorities via power iteration on the judgment matrix and the
  /// consistency diagnostics. Fails with Internal if iteration does not
  /// converge (does not happen for valid reciprocal matrices).
  StatusOr<AhpResult> Evaluate() const;

 private:
  explicit AhpMatrix(std::vector<std::vector<double>> judgments)
      : judgments_(std::move(judgments)) {}

  std::vector<std::vector<double>> judgments_;
};

/// Saaty's random consistency index RI for matrix sizes 1..10; used to form
/// the consistency ratio. Sizes outside the table clamp to the last entry.
double AhpRandomIndex(size_t k);

}  // namespace cdibot

#endif  // CDIBOT_WEIGHTS_AHP_H_
