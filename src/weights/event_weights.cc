#include "weights/event_weights.h"

#include <algorithm>

#include "common/strings.h"

namespace cdibot {

StatusOr<double> ExpertLevelWeight(Severity level, int num_levels) {
  const int i = static_cast<int>(level);
  if (num_levels < 1) {
    return Status::InvalidArgument("num_levels must be >= 1");
  }
  if (i < 1 || i > num_levels) {
    return Status::OutOfRange(
        StrFormat("severity ordinal %d outside [1, %d]", i, num_levels));
  }
  return static_cast<double>(i) / static_cast<double>(num_levels);
}

StatusOr<TicketRankModel> TicketRankModel::FromCounts(
    const std::map<std::string, int64_t>& counts, int num_levels) {
  if (num_levels < 1) {
    return Status::InvalidArgument("num_levels must be >= 1");
  }
  if (counts.empty()) {
    return Status::InvalidArgument("ticket counts must be non-empty");
  }
  for (const auto& [name, count] : counts) {
    if (count < 0) {
      return Status::InvalidArgument("negative ticket count for " + name);
    }
  }

  // Rank ascending by ticket count; ties break by name for determinism
  // (std::map iteration is already name-ordered).
  std::vector<std::pair<std::string, int64_t>> ranked(counts.begin(),
                                                      counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second < b.second;
                   });

  // Distribute ranking positions proportionally into n levels: the event at
  // ascending rank r (1-based) of N falls into level ceil(r * n / N).
  // Example 3: an event with more tickets than 43% of events has rank
  // percentile 0.43+ and lands in level 2 of 4.
  const auto n = static_cast<int64_t>(num_levels);
  const auto total = static_cast<int64_t>(ranked.size());
  std::unordered_map<std::string, int> levels;
  std::unordered_map<uint32_t, int> levels_by_id;
  levels.reserve(ranked.size());
  levels_by_id.reserve(ranked.size());
  for (int64_t r = 1; r <= total; ++r) {
    const int level = static_cast<int>((r * n + total - 1) / total);
    const std::string& name = ranked[static_cast<size_t>(r - 1)].first;
    levels[name] = level;
    levels_by_id[GlobalInterner().Intern(name)] = level;
  }
  return TicketRankModel(num_levels, std::move(levels),
                         std::move(levels_by_id));
}

int TicketRankModel::LevelFor(const std::string& event_name) const {
  auto it = levels_.find(event_name);
  return it == levels_.end() ? 1 : it->second;
}

int TicketRankModel::LevelForId(uint32_t name_id) const {
  auto it = levels_by_id_.find(name_id);
  return it == levels_by_id_.end() ? 1 : it->second;
}

double TicketRankModel::WeightFor(const std::string& event_name) const {
  return static_cast<double>(LevelFor(event_name)) /
         static_cast<double>(num_levels_);
}

double TicketRankModel::WeightForId(uint32_t name_id) const {
  return static_cast<double>(LevelForId(name_id)) /
         static_cast<double>(num_levels_);
}

StatusOr<EventWeightModel> EventWeightModel::Build(
    TicketRankModel ticket_model, EventWeightOptions options) {
  if (options.alpha_expert <= 0.0 || options.alpha_ticket <= 0.0) {
    return Status::InvalidArgument("AHP proportions must be positive");
  }
  if (options.expert_levels < 1 || options.ticket_levels < 1) {
    return Status::InvalidArgument("level counts must be >= 1");
  }
  if (ticket_model.num_levels() != options.ticket_levels) {
    return Status::InvalidArgument(
        "ticket model level count disagrees with options");
  }
  return EventWeightModel(std::move(ticket_model), options);
}

StatusOr<double> EventWeightModel::WeightFor(
    const std::string& event_name, Severity level,
    StabilityCategory category) const {
  // Unavailability is total loss of compute: unweighted duration ratio.
  if (category == StabilityCategory::kUnavailability) return 1.0;

  auto ov = overrides_.find(event_name);
  if (ov != overrides_.end()) return ov->second;

  CDIBOT_ASSIGN_OR_RETURN(const double l_i,
                          ExpertLevelWeight(level, options_.expert_levels));
  const double p_j = ticket_model_.WeightFor(event_name);
  return (options_.alpha_expert * l_i + options_.alpha_ticket * p_j) /
         (options_.alpha_expert + options_.alpha_ticket);
}

StatusOr<double> EventWeightModel::WeightForId(
    uint32_t name_id, Severity level, StabilityCategory category) const {
  if (category == StabilityCategory::kUnavailability) return 1.0;

  auto ov = overrides_by_id_.find(name_id);
  if (ov != overrides_by_id_.end()) return ov->second;

  CDIBOT_ASSIGN_OR_RETURN(const double l_i,
                          ExpertLevelWeight(level, options_.expert_levels));
  const double p_j = ticket_model_.WeightForId(name_id);
  return (options_.alpha_expert * l_i + options_.alpha_ticket * p_j) /
         (options_.alpha_expert + options_.alpha_ticket);
}

Status EventWeightModel::SetOverride(const std::string& event_name,
                                     double weight) {
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("weight override must be in [0, 1]");
  }
  overrides_[event_name] = weight;
  overrides_by_id_[GlobalInterner().Intern(event_name)] = weight;
  return Status::OK();
}

}  // namespace cdibot
