#ifndef CDIBOT_WEIGHTS_EVENT_WEIGHTS_H_
#define CDIBOT_WEIGHTS_EVENT_WEIGHTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/statusor.h"
#include "event/event.h"
#include "event/event_view.h"

namespace cdibot {

/// Eq. 1: the expert-perspective weight of the i-th severity level among m
/// increasing levels, l_i = i / m. `level` maps to its ordinal (info=1 ..
/// fatal=4). Requires 1 <= ordinal <= num_levels.
StatusOr<double> ExpertLevelWeight(Severity level,
                                   int num_levels = kNumSeverityLevels);

/// TicketRankModel implements Eq. 2: events are ranked by the number of
/// related customer tickets gathered over the previous year, distributed
/// proportionally into n levels by ranking position (ascending ticket
/// counts), and the j-th level receives weight p_j = j / n.
class TicketRankModel {
 public:
  /// Builds from per-event ticket counts. Events absent from `counts` later
  /// query as level 1 (fewest complaints). Requires num_levels >= 1 and at
  /// least one event.
  static StatusOr<TicketRankModel> FromCounts(
      const std::map<std::string, int64_t>& counts, int num_levels);

  int num_levels() const { return num_levels_; }

  /// The 1-based customer level j of `event_name`; 1 for unknown events.
  int LevelFor(const std::string& event_name) const;

  /// Id-keyed twin of LevelFor for the zero-copy path. `name_id` must be a
  /// GlobalInterner id (FromCounts interns every counted name there, so
  /// the two lookups always agree).
  int LevelForId(uint32_t name_id) const;

  /// Eq. 2: p_j = j / n for the event's level.
  double WeightFor(const std::string& event_name) const;
  double WeightForId(uint32_t name_id) const;

 private:
  TicketRankModel(int num_levels,
                  std::unordered_map<std::string, int> levels,
                  std::unordered_map<uint32_t, int> levels_by_id)
      : num_levels_(num_levels),
        levels_(std::move(levels)),
        levels_by_id_(std::move(levels_by_id)) {}

  int num_levels_;
  std::unordered_map<std::string, int> levels_;
  /// Same mapping keyed by GlobalInterner id — the hot-path lookup hashes
  /// a uint32 instead of a string.
  std::unordered_map<uint32_t, int> levels_by_id_;
};

/// Options for the composite model of Eq. 3.
struct EventWeightOptions {
  /// m in Eq. 1.
  int expert_levels = kNumSeverityLevels;
  /// n in Eq. 2.
  int ticket_levels = 4;
  /// AHP-derived proportions alpha_1 (expert) and alpha_2 (customer).
  double alpha_expert = 0.5;
  double alpha_ticket = 0.5;
};

/// EventWeightModel produces the final per-event weight w of Eq. 3:
///
///   w = (alpha_1 * l_i + alpha_2 * p_j) / (alpha_1 + alpha_2)
///
/// with one paper-mandated exception: unavailability events always weigh 1.0
/// because the VM is completely unable to provide compute (Sec. IV-A: the
/// Unavailability Indicator is an unweighted duration ratio).
class EventWeightModel {
 public:
  /// Builds the model from the customer ticket model and options. Requires
  /// positive alphas.
  static StatusOr<EventWeightModel> Build(TicketRankModel ticket_model,
                                          EventWeightOptions options);

  /// The composite weight for an event occurrence.
  StatusOr<double> WeightFor(const std::string& event_name,
                             Severity level,
                             StabilityCategory category) const;

  /// Id-keyed twin for the zero-copy path; `name_id` must be a
  /// GlobalInterner id (ResolvedEventView::name_id always is). Computes
  /// the identical arithmetic on identical inputs, so the two paths
  /// produce bit-identical weights.
  StatusOr<double> WeightForId(uint32_t name_id, Severity level,
                               StabilityCategory category) const;

  /// Convenience overload for a resolved event.
  StatusOr<double> WeightFor(const ResolvedEvent& event) const {
    return WeightFor(event.name, event.level, event.category);
  }

  /// Convenience overload for a resolved-event view.
  StatusOr<double> WeightFor(const ResolvedEventView& event) const {
    return WeightForId(event.name_id, event.level, event.category);
  }

  /// Overrides the weight of a specific event name (the MySQL-backed
  /// configuration adjustments of Fig. 4 / Sec. V). Requires weight in
  /// [0, 1].
  Status SetOverride(const std::string& event_name, double weight);

  const EventWeightOptions& options() const { return options_; }

 private:
  EventWeightModel(TicketRankModel ticket_model, EventWeightOptions options)
      : ticket_model_(std::move(ticket_model)), options_(options) {}

  TicketRankModel ticket_model_;
  EventWeightOptions options_;
  std::unordered_map<std::string, double> overrides_;
  /// Same overrides keyed by GlobalInterner id (SetOverride maintains
  /// both in lockstep).
  std::unordered_map<uint32_t, double> overrides_by_id_;
};

}  // namespace cdibot

#endif  // CDIBOT_WEIGHTS_EVENT_WEIGHTS_H_
