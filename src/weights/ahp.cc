#include "weights/ahp.h"

#include <cmath>

namespace cdibot {

double AhpRandomIndex(size_t k) {
  // Saaty's RI values for k = 1..10.
  static constexpr double kRi[] = {0.0,  0.0,  0.0,  0.58, 0.90, 1.12,
                                   1.24, 1.32, 1.41, 1.45, 1.49};
  if (k == 0) return 0.0;
  if (k > 10) k = 10;
  return kRi[k];
}

StatusOr<AhpMatrix> AhpMatrix::FromJudgments(
    std::vector<std::vector<double>> judgments) {
  const size_t k = judgments.size();
  if (k == 0) return Status::InvalidArgument("empty judgment matrix");
  for (const auto& row : judgments) {
    if (row.size() != k) {
      return Status::InvalidArgument("judgment matrix must be square");
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (std::abs(judgments[i][i] - 1.0) > 1e-9) {
      return Status::InvalidArgument("judgment matrix diagonal must be 1");
    }
    for (size_t j = 0; j < k; ++j) {
      if (!(judgments[i][j] > 0.0)) {
        return Status::InvalidArgument("judgment entries must be positive");
      }
      if (std::abs(judgments[i][j] * judgments[j][i] - 1.0) > 1e-6) {
        return Status::InvalidArgument(
            "judgment matrix must be reciprocal: a[j][i] == 1/a[i][j]");
      }
    }
  }
  return AhpMatrix(std::move(judgments));
}

StatusOr<AhpMatrix> AhpMatrix::FromSingleComparison(
    double importance_0_over_1) {
  if (!(importance_0_over_1 > 0.0)) {
    return Status::InvalidArgument("importance must be positive");
  }
  return FromJudgments(
      {{1.0, importance_0_over_1}, {1.0 / importance_0_over_1, 1.0}});
}

StatusOr<AhpResult> AhpMatrix::Evaluate() const {
  const size_t k = judgments_.size();
  // Power iteration for the principal eigenvector. Reciprocal positive
  // matrices have a dominant positive eigenvalue (Perron–Frobenius), so this
  // converges quickly.
  std::vector<double> v(k, 1.0 / static_cast<double>(k));
  std::vector<double> next(k, 0.0);
  double lambda = 0.0;
  constexpr int kMaxIters = 500;
  constexpr double kTol = 1e-12;
  for (int iter = 0; iter < kMaxIters; ++iter) {
    for (size_t i = 0; i < k; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < k; ++j) s += judgments_[i][j] * v[j];
      next[i] = s;
    }
    double norm = 0.0;
    for (double x : next) norm += x;
    if (norm <= 0.0) return Status::Internal("AHP power iteration degenerate");
    double delta = 0.0;
    for (size_t i = 0; i < k; ++i) {
      next[i] /= norm;
      delta += std::abs(next[i] - v[i]);
    }
    v = next;
    // Rayleigh-style estimate: lambda_max = mean over i of (Av)_i / v_i.
    double est = 0.0;
    for (size_t i = 0; i < k; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < k; ++j) s += judgments_[i][j] * v[j];
      est += s / v[i];
    }
    lambda = est / static_cast<double>(k);
    if (delta < kTol) break;
  }

  AhpResult result;
  result.priorities = v;
  result.lambda_max = lambda;
  if (k > 1) {
    result.consistency_index =
        (lambda - static_cast<double>(k)) / (static_cast<double>(k) - 1.0);
    const double ri = AhpRandomIndex(k);
    result.consistency_ratio =
        ri > 0.0 ? result.consistency_index / ri : 0.0;
  }
  return result;
}

}  // namespace cdibot
