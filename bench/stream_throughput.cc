// Streaming vs batch update cost. The point of the incremental engine is
// that folding one new event into the fleet CDI costs O(dirty VMs + shards)
// — independent of fleet size — while the batch answer to "what is the CDI
// now?" is a full DailyCdiJob rerun, O(fleet). BM_StreamUpdate should stay
// flat as the fleet grows; BM_BatchRerun should scale linearly. The
// counters report per-update events and fleet size for eyeballing the gap.
#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "cdi/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "storage/event_log.h"
#include "stream/streaming_engine.h"
#include "weights/event_weights.h"

namespace cdibot {
namespace {

const TimePoint kDayStart = TimePoint::FromMillis(1767225600000);  // 2026-01-01
const Interval kDay(kDayStart, kDayStart + Duration::Days(1));

Fleet MakeFleet(int target_vms) {
  const int vms_per_nc = 8;
  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 1;
  spec.clusters_per_az = 1;
  spec.ncs_per_cluster = std::max(1, target_vms / vms_per_nc);
  spec.vms_per_nc = vms_per_nc;
  return Fleet::Build(spec).value();
}

EventWeightModel MakeWeights() {
  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230}}, 4);
  return EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
}

// A primed engine plus the day's event stream it was fed.
struct StreamFixture {
  EventCatalog catalog = EventCatalog::BuiltIn();
  EventWeightModel weights = MakeWeights();
  Fleet fleet;
  std::vector<VmServiceInfo> vms;
  std::vector<RawEvent> day_events;

  explicit StreamFixture(int target_vms) : fleet(MakeFleet(target_vms)) {
    vms = fleet.ServiceInfos(kDay).value();
    Rng rng(17);
    FaultInjector injector(&catalog, &rng);
    EventLog log;
    (void)injector.InjectDay(fleet, kDayStart, BaselineRates().Scaled(20.0),
                             &log);
    day_events = log.Search(Interval(kDayStart - Duration::Days(1),
                                     kDay.end + Duration::Days(1)));
  }

  StreamingCdiEngine MakeEngine(ThreadPool* pool) const {
    StreamingCdiOptions opts;
    opts.window = kDay;
    opts.pool = pool;
    auto engine = StreamingCdiEngine::Create(&catalog, &weights, opts).value();
    for (const VmServiceInfo& vm : vms) (void)engine.RegisterVm(vm);
    (void)engine.IngestBatch(day_events);
    (void)engine.FleetCdi();  // settle: everything computed, nothing dirty
    return engine;
  }
};

// Steady-state incremental update: one new event lands on one VM, then the
// fleet CDI is refreshed. Only that VM is recomputed; the rest of the fleet
// is merged from resident shard partials, so time/op should not grow with
// the fleet.
void BM_StreamUpdate(benchmark::State& state) {
  const StreamFixture fx(static_cast<int>(state.range(0)));
  StreamingCdiEngine engine = fx.MakeEngine(nullptr);
  Rng rng(23);
  size_t updates = 0;
  // Per-iteration latency histogram: the BENCH json gets p50/p99 of a
  // single incremental update, not just the mean the console prints.
  obs::Histogram* update_ns =
      obs::MetricsRegistry::Global().GetHistogram("bench.stream_update_ns");
  for (auto _ : state) {
    obs::ScopedTimer timer(update_ns);
    RawEvent ev;
    ev.name = "slow_io";
    ev.time = kDayStart + Duration::Minutes(rng.UniformInt(0, 1439));
    ev.target =
        fx.vms[static_cast<size_t>(rng.UniformInt(
                   0, static_cast<int64_t>(fx.vms.size()) - 1))]
            .vm_id;
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(1);
    (void)engine.Ingest(ev);
    auto fleet_cdi = engine.FleetCdi();
    benchmark::DoNotOptimize(fleet_cdi);
    ++updates;
  }
  state.SetItemsProcessed(static_cast<int64_t>(updates));
  state.counters["vms"] =
      benchmark::Counter(static_cast<double>(fx.vms.size()));
}
BENCHMARK(BM_StreamUpdate)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// The batch answer to the same question: rerun the whole daily job because
// one event arrived. O(fleet) by construction.
void BM_BatchRerun(benchmark::State& state) {
  const StreamFixture fx(static_cast<int>(state.range(0)));
  EventLog log;
  log.AppendBatch(fx.day_events);
  DailyCdiJob job(DailyCdiJob::Options{
      .log = &log, .catalog = &fx.catalog, .weights = &fx.weights});
  obs::Histogram* rerun_ns =
      obs::MetricsRegistry::Global().GetHistogram("bench.batch_rerun_ns");
  for (auto _ : state) {
    obs::ScopedTimer timer(rerun_ns);
    auto result = job.Run(fx.vms, kDay);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["vms"] =
      benchmark::Counter(static_cast<double>(fx.vms.size()));
}
BENCHMARK(BM_BatchRerun)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// Raw ingest cost (buffer + dirty-mark only; no recomputation).
void BM_StreamIngest(benchmark::State& state) {
  const StreamFixture fx(static_cast<int>(state.range(0)));
  StreamingCdiEngine engine = fx.MakeEngine(nullptr);
  Rng rng(29);
  for (auto _ : state) {
    RawEvent ev;
    ev.name = "packet_loss";
    ev.time = kDayStart + Duration::Minutes(rng.UniformInt(0, 1439));
    ev.target =
        fx.vms[static_cast<size_t>(rng.UniformInt(
                   0, static_cast<int64_t>(fx.vms.size()) - 1))]
            .vm_id;
    ev.level = Severity::kWarning;
    ev.expire_interval = Duration::Hours(1);
    (void)engine.Ingest(ev);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["vms"] =
      benchmark::Counter(static_cast<double>(fx.vms.size()));
}
BENCHMARK(BM_StreamIngest)->Arg(64)->Arg(1024);

// Parallel drain: a burst touches many VMs, then one snapshot refresh
// recomputes the dirty set on the pool.
void BM_StreamBurstDrain(benchmark::State& state) {
  const StreamFixture fx(256);
  ThreadPool pool(std::thread::hardware_concurrency());
  StreamingCdiEngine engine = fx.MakeEngine(&pool);
  Rng rng(31);
  const auto burst = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    for (size_t i = 0; i < burst; ++i) {
      RawEvent ev;
      ev.name = "slow_io";
      ev.time = kDayStart + Duration::Minutes(rng.UniformInt(0, 1439));
      ev.target =
          fx.vms[static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(fx.vms.size()) - 1))]
              .vm_id;
      ev.level = Severity::kCritical;
      ev.expire_interval = Duration::Hours(1);
      (void)engine.Ingest(ev);
    }
    auto fleet_cdi = engine.FleetCdi();
    benchmark::DoNotOptimize(fleet_cdi);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(burst));
}
BENCHMARK(BM_StreamBurstDrain)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cdibot

CDIBOT_BENCHMARK_MAIN("stream_throughput");
