// Regenerates Fig. 6 + Case 4 ("Overall CDI from April 2023 to March
// 2024"): a fiscal year of daily CDI under stability programs that reduce
// fault rates over the year. The paper reports reductions of ~40% (CDI-U),
// ~80% (CDI-P), and ~35% (CDI-C); the performance program starts from an
// untreated baseline so it improves the most.
//
// One simulated day per 3 calendar days keeps the bench fast; the smoothed
// curves and the start-to-end reductions are what the figure shows.
#include <cstdio>
#include <cmath>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/scenario.h"
#include "stats/descriptive.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(2023);
  FaultInjector injector(&catalog, &rng);

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 3;
  fspec.ncs_per_cluster = 8;
  fspec.vms_per_nc = 10;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230},
       {"api_error", 90}, {"vm_start_failed", 60}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);

  // Target fiscal-year reductions per category (Case 4).
  constexpr double kTargetU = 0.40;
  constexpr double kTargetP = 0.80;
  constexpr double kTargetC = 0.35;

  const TimePoint fy_start = TimePoint::Parse("2023-04-01 00:00").value();
  constexpr int kSamples = 122;  // every 3rd day of the fiscal year
  std::vector<double> u, p, c;

  // Per-category rate multipliers decay linearly to (1 - target). The
  // performance program ships mid-year optimizations, so its decay is
  // steeper in the second half — matching the figure's long slide.
  const FaultRates base = BaselineRates();
  for (int s = 0; s < kSamples; ++s) {
    // Linear decay reaching the program's floor by ~85% of the year, then
    // holding — so the year-end level reflects the full reduction.
    const double t = static_cast<double>(s) / (kSamples - 1);
    const double ramp = std::min(1.0, t / 0.85);
    const double fu = 1.0 - kTargetU * ramp;
    const double fp = 1.0 - kTargetP * (t < 0.4 ? 0.5 * ramp : ramp);
    const double fc = 1.0 - kTargetC * ramp;
    FaultRates rates;
    for (const auto& [name, rate] : base.episodes_per_vm_day) {
      const auto spec = catalog.Find(name).value();
      double factor = 1.0;
      switch (spec.category) {
        case StabilityCategory::kUnavailability:
          factor = fu;
          break;
        case StabilityCategory::kPerformance:
          factor = fp;
          break;
        case StabilityCategory::kControlPlane:
          factor = fc;
          break;
      }
      // Heavier baseline so daily values are well resolved.
      rates.episodes_per_vm_day[name] = rate * 12.0 * factor;
    }
    EventLog log;  // per-day log keeps the search cheap
    const TimePoint day_start = fy_start + Duration::Days(3 * s);
    const Interval day(day_start, day_start + Duration::Days(1));
    if (!injector.InjectDay(fleet, day_start, rates, &log).ok()) return 1;
    DailyCdiJob job(&log, &catalog, &weights,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    u.push_back(result->fleet.unavailability);
    p.push_back(result->fleet.performance);
    c.push_back(result->fleet.control_plane);
  }

  // The paper displays annual *smoothed* curves.
  const auto su = stats::Ewma(u, 0.08).value();
  const auto sp = stats::Ewma(p, 0.08).value();
  const auto sc = stats::Ewma(c, 0.08).value();

  std::printf("Fig. 6: smoothed overall CDI, FY2024 (one sample per 3 days)\n");
  std::printf("%-12s %12s %12s %12s\n", "date", "CDI-U", "CDI-P", "CDI-C");
  for (int s = 0; s < kSamples; s += 8) {
    const TimePoint day = fy_start + Duration::Days(3 * s);
    std::printf("%-12s %12.6f %12.6f %12.6f\n", day.ToDateString().c_str(),
                su[s], sp[s], sc[s]);
  }

  // Start/end levels from the smoothed curve's first and last eighths.
  auto window_mean = [](const std::vector<double>& v, bool head) {
    const size_t w = v.size() / 12;
    double sum = 0.0;
    for (size_t i = 0; i < w; ++i) sum += head ? v[i] : v[v.size() - 1 - i];
    return sum / static_cast<double>(w);
  };
  const double ru = 1.0 - window_mean(su, false) / window_mean(su, true);
  const double rp = 1.0 - window_mean(sp, false) / window_mean(sp, true);
  const double rc = 1.0 - window_mean(sc, false) / window_mean(sc, true);

  std::printf("\nfiscal-year reductions (measured vs paper):\n");
  std::printf("  Unavailability Indicator : %4.0f%%  (paper ~40%%)\n",
              100 * ru);
  std::printf("  Performance Indicator    : %4.0f%%  (paper ~80%%)\n",
              100 * rp);
  std::printf("  Control-plane Indicator  : %4.0f%%  (paper ~35%%)\n",
              100 * rc);

  const bool ok = std::abs(ru - kTargetU) < 0.15 &&
                  std::abs(rp - kTargetP) < 0.15 &&
                  std::abs(rc - kTargetC) < 0.15 && rp > ru && rp > rc;
  std::printf("%s\n", ok ? "REPRODUCED: shape holds — all three decline, "
                           "performance falls the most."
                         : "MISMATCH: reductions off by > 15pp.");
  return ok ? 0 : 1;
}
