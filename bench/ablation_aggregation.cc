// Ablation of Algorithm 1's overlap semantics: the paper takes the MAXIMUM
// weight where events coincide (Sec. IV-D); an additive alternative would
// double-count concurrent symptoms of one root cause. This bench sweeps the
// overlap density of a synthetic workload and prints both variants.
#include <cstdio>

#include "cdi/indicator.h"
#include "common/rng.h"

using namespace cdibot;

int main() {
  const TimePoint day_start = TimePoint::Parse("2026-01-01 00:00").value();
  const Interval day(day_start, day_start + Duration::Days(1));

  std::printf("Overlap-semantics ablation: max-overlap (paper) vs "
              "sum-overlap (capped at 1)\n\n");
  std::printf("%-18s %12s %12s %10s\n", "workload", "max-overlap",
              "sum-overlap", "inflation");

  // `spread` controls how much the events pile onto the same minutes:
  // spread = 1.0 scatters them across the day; spread = 0.02 crams them
  // into a 30-minute storm (one root cause, many symptoms).
  for (double spread : {1.0, 0.5, 0.2, 0.05, 0.02}) {
    Rng rng(7);
    std::vector<WeightedEvent> events;
    const auto window_ms =
        static_cast<int64_t>(spread * static_cast<double>(day.length().millis()));
    for (int i = 0; i < 120; ++i) {
      const auto len = Duration::Minutes(rng.UniformInt(2, 15));
      const int64_t latest = window_ms - len.millis() - 1;
      if (latest <= 0) continue;
      const TimePoint start =
          day_start + Duration::Millis(rng.UniformInt(0, latest));
      events.push_back(WeightedEvent{.period = Interval(start, start + len),
                                     .weight = rng.Uniform(0.2, 0.8)});
    }
    const double q_max = ComputeCdi(events, day).value();
    const double q_sum = ComputeCdiSumOverlap(events, day).value();
    char label[32];
    std::snprintf(label, sizeof(label), "spread=%.2f", spread);
    std::printf("%-18s %12.6f %12.6f %9.2fx\n", label, q_max, q_sum,
                q_sum / q_max);
  }

  std::printf(
      "\nReading: when symptoms of one issue overlap (small spread), the "
      "additive\nvariant inflates damage well beyond the max-overlap value, "
      "even though the VM\ncannot be 'more than fully' degraded — the paper's "
      "max semantics keep the\nindicator interpretable as a weighted fraction "
      "of service time.\n");
  return 0;
}
