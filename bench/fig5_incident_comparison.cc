// Regenerates Fig. 5 ("Stability evaluation on selected incidents"):
// CDI-U/P/C vs Annual Interruption Rate (AIR) and Downtime Percentage (DP)
// on three incident replays against a quiet baseline day.
//
//   20240425  AZ outage (Singapore zone C analogue)         -> U + AIR + DP
//   20240702  network access abnormality (Shanghai zone N)  -> U/P + AIR + DP
//   20250107  purchase/modify control-plane outage          -> ONLY CDI-C
//
// The paper's point: AIR and DP are blind to the third incident; the CDI's
// control-plane sub-metric captures it. Values are normalized to the Daily
// row, as in the paper.
#include <cstdio>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/incidents.h"

using namespace cdibot;

namespace {

struct Scenario {
  const char* name;
  int kind;  // 0 = daily, 1 = az outage, 2 = network, 3 = control-plane
};

struct Measured {
  double cdi_u, cdi_p, cdi_c, air, dp;
};

}  // namespace

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  FleetSpec fspec;
  fspec.regions = 2;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230},
       {"api_error", 90}, {"vm_create_failed", 70}, {"vm_resize_failed", 50}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);

  const Scenario scenarios[] = {
      {"Daily", 0}, {"20240425", 1}, {"20240702", 2}, {"20250107", 3}};
  std::vector<Measured> measured;

  for (const Scenario& sc : scenarios) {
    Rng rng(1000 + sc.kind);
    FaultInjector injector(&catalog, &rng);
    EventLog log;
    const TimePoint day_start = TimePoint::Parse("2026-01-01 00:00").value();
    const Interval day(day_start, day_start + Duration::Days(1));
    // Every day carries the normal background noise.
    (void)injector.InjectDay(fleet, day_start, BaselineRates(), &log);
    const Interval peak(day_start + Duration::Hours(17),
                        day_start + Duration::Hours(20));
    Status st = Status::OK();
    switch (sc.kind) {
      case 1:
        st = InjectAzOutage(fleet, "r0-az0", peak, &injector, &log);
        break;
      case 2:
        st = InjectNetworkOutage(fleet, "r1-az0", peak, 0.25, &injector,
                                 &log, &rng);
        break;
      case 3:
        st = InjectControlPlaneOutage(fleet, "r0", peak, &injector, &log);
        break;
      default:
        break;
    }
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    DailyCdiJob job(&log, &catalog, &weights,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    measured.push_back(
        Measured{result->fleet.unavailability, result->fleet.performance,
                 result->fleet.control_plane,
                 result->fleet_baseline.annual_interruption_rate,
                 result->fleet_baseline.downtime_percentage});
  }

  auto norm = [](double v, double base) {
    return base > 0 ? v / base : (v > 0 ? 99.9 : 1.0);
  };
  const Measured& base = measured[0];

  std::printf("Fig. 5: incident-day metrics normalized to the Daily row\n\n");
  std::printf("%-10s %8s %8s %8s %8s %8s\n", "day", "CDI-U", "CDI-P", "CDI-C",
              "AIR", "DP");
  for (size_t i = 0; i < measured.size(); ++i) {
    const Measured& m = measured[i];
    std::printf("%-10s %8.2f %8.2f %8.2f %8.2f %8.2f\n", scenarios[i].name,
                norm(m.cdi_u, base.cdi_u), norm(m.cdi_p, base.cdi_p),
                norm(m.cdi_c, base.cdi_c), norm(m.air, base.air),
                norm(m.dp, base.dp));
  }

  std::printf("\nraw values\n%-10s %10s %10s %10s %10s %10s\n", "day",
              "CDI-U", "CDI-P", "CDI-C", "AIR", "DP");
  for (size_t i = 0; i < measured.size(); ++i) {
    const Measured& m = measured[i];
    std::printf("%-10s %10.6f %10.6f %10.6f %10.2f %10.6f\n",
                scenarios[i].name, m.cdi_u, m.cdi_p, m.cdi_c, m.air, m.dp);
  }

  // Shape checks from the paper's reading of the figure.
  const bool first_two_in_air_dp = measured[1].air > 2 * base.air &&
                                   measured[1].dp > 2 * base.dp &&
                                   measured[2].air > 2 * base.air &&
                                   measured[2].dp > 2 * base.dp;
  const bool third_invisible_to_air_dp =
      measured[3].air <= base.air * 1.2 && measured[3].dp <= base.dp * 1.2 &&
      measured[3].cdi_u <= base.cdi_u * 1.2;
  const bool third_visible_to_cdi_c = measured[3].cdi_c > 3 * base.cdi_c;
  std::printf("\nshape checks:\n");
  std::printf("  20240425/20240702 spike AIR & DP ........ %s\n",
              first_two_in_air_dp ? "yes" : "NO");
  std::printf("  20250107 invisible to AIR/DP/CDI-U ...... %s\n",
              third_invisible_to_air_dp ? "yes" : "NO");
  std::printf("  20250107 captured by CDI-C .............. %s\n",
              third_visible_to_cdi_c ? "yes" : "NO");
  const bool ok =
      first_two_in_air_dp && third_invisible_to_air_dp && third_visible_to_cdi_c;
  std::printf("%s\n", ok ? "REPRODUCED: CDI evaluates all three incidents; "
                           "downtime metrics miss the control-plane one."
                         : "MISMATCH: see checks above.");
  return ok ? 0 : 1;
}
