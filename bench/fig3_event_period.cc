// Regenerates Fig. 3 / Example 2 ("Example of event period"): a slow_io
// event resolved by back-tracing its detection window, and a stateful
// ddos_blackhole with redundant add/del details deduplicated and paired.
// Prints the resolved timeline plus the resolver's data-quality counters.
#include <cstdio>

#include "event/period_resolver.h"

using namespace cdibot;

namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Raw(const char* name, const char* time) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = "vm-fig3";
  ev.level = Severity::kFatal;
  ev.expire_interval = Duration::Hours(24);
  return ev;
}

}  // namespace

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const PeriodResolver resolver(&catalog);

  // The raw stream of Fig. 3: e1 = slow_io at t1; ddos_blackhole_add at t2
  // and t3 (t3 redundant); ddos_blackhole_del at t4 and t5 (t5 redundant).
  std::vector<RawEvent> raw = {
      Raw("slow_io", "2024-01-01 09:30"),             // t1
      Raw("ddos_blackhole_add", "2024-01-01 10:00"),  // t2
      Raw("ddos_blackhole_add", "2024-01-01 10:20"),  // t3 (discarded)
      Raw("ddos_blackhole_del", "2024-01-01 11:00"),  // t4
      Raw("ddos_blackhole_del", "2024-01-01 11:30"),  // t5 (discarded)
  };
  std::printf("Fig. 3 raw event stream:\n");
  for (const RawEvent& ev : raw) {
    std::printf("  %s  %s\n", ev.time.ToString().c_str(), ev.name.c_str());
  }

  ResolveStats stats;
  auto resolved = resolver.Resolve(raw, std::nullopt, &stats);
  if (!resolved.ok()) {
    std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
    return 1;
  }

  std::printf("\nResolved periods (Sec. IV-B):\n");
  for (const ResolvedEvent& ev : *resolved) {
    std::printf("  %-16s [%s .. %s)  duration %s\n", ev.name.c_str(),
                ev.period.start.ToString().c_str(),
                ev.period.end.ToString().c_str(),
                ev.period.length().ToString().c_str());
  }
  std::printf("\nResolver counters: resolved=%zu duplicate_details_dropped=%zu"
              " dangling_end_dropped=%zu unpaired_start_closed=%zu\n",
              stats.resolved, stats.duplicate_details_dropped,
              stats.dangling_end_dropped, stats.unpaired_start_closed);

  bool ok = resolved->size() == 2 && stats.duplicate_details_dropped == 2;
  for (const ResolvedEvent& ev : *resolved) {
    if (ev.name == "ddos_blackhole") {
      ok = ok && ev.period == Interval(T("2024-01-01 10:00"),
                                       T("2024-01-01 11:00"));
    } else if (ev.name == "slow_io") {
      ok = ok && ev.period.length() == Duration::Minutes(1);
    } else {
      ok = false;
    }
  }
  std::printf("\n%s\n",
              ok ? "REPRODUCED: e1 spans one detection window; e2 = [t2, t4) "
                   "with t3/t5 discarded."
                 : "MISMATCH: resolution differs from Example 2.");
  return ok ? 0 : 1;
}
