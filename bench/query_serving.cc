// Query-serving closed loop: N clients hammer one CdiQueryService in a
// closed loop (each client issues its next query the moment the previous
// answer lands), sweeping the client count to trace the p99-vs-QPS curve
// for the two serving arms:
//
//   BM_QueryServingCached/N — the production configuration (ARC result
//     cache + materialized cube). After warm-up, the dashboard battery is
//     answered from the cache: p99 is a map lookup + shared_ptr copy.
//   BM_QueryServingCold/N — cache and cube disabled, every query a full
//     source pull + RunDrilldown recompute. This is what serving would
//     cost without the layer, and the floor the admission controller
//     protects (expensive ad-hoc shapes degrade to this path).
//
// The acceptance bar this bench pins: at saturation (the largest client
// arm), cached p99 must sit >=10x below cold p99. Both arms' p50/p99/qps
// land as counters in BENCH_query_serving.json via bench_report.h; the
// committed curve lives at bench/trajectory/query_serving.baseline.json
// (BENCH_*.json outputs are gitignored; refresh the baseline when a PR
// legitimately moves it).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/query.h"
#include "serve/service.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "storage/event_log.h"
#include "stream/streaming_engine.h"
#include "weights/event_weights.h"

namespace cdibot {
namespace {

const TimePoint kDayStart = TimePoint::FromMillis(1767225600000);  // 2026-01-01
const Interval kDay(kDayStart, kDayStart + Duration::Days(1));

EventWeightModel MakeWeights() {
  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230}}, 4);
  return EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
}

// A primed single-node engine (512 VMs, one injected day) behind the
// serving facade. Both arms share the fixture shape so the only variable
// is the serving configuration.
struct ServeFixture {
  EventCatalog catalog = EventCatalog::BuiltIn();
  EventWeightModel weights = MakeWeights();
  ThreadPool pool{4};
  std::unique_ptr<StreamingCdiEngine> engine;
  std::unique_ptr<serve::EngineSource> source;
  std::unique_ptr<serve::CdiQueryService> service;

  explicit ServeFixture(const serve::CdiQueryServiceOptions& options) {
    const int vms_per_nc = 8;
    FleetSpec spec;
    spec.regions = 2;
    spec.azs_per_region = 2;
    spec.clusters_per_az = 1;
    spec.ncs_per_cluster = 512 / (2 * 2 * vms_per_nc);
    spec.vms_per_nc = vms_per_nc;
    Fleet fleet = Fleet::Build(spec).value();

    StreamingCdiOptions eng;
    eng.window = kDay;
    eng.pool = &pool;
    engine = std::make_unique<StreamingCdiEngine>(
        StreamingCdiEngine::Create(&catalog, &weights, eng).value());
    const std::vector<VmServiceInfo> vms = fleet.ServiceInfos(kDay).value();
    for (const VmServiceInfo& vm : vms) {
      (void)engine->RegisterVm(vm);
    }

    Rng rng(17);
    FaultInjector injector(&catalog, &rng);
    EventLog log;
    (void)injector.InjectDay(fleet, kDayStart, BaselineRates().Scaled(20.0),
                             &log);
    (void)engine->IngestBatch(log.Search(
        Interval(kDayStart - Duration::Days(1), kDay.end + Duration::Days(1))));

    source = std::make_unique<serve::EngineSource>(engine.get());
    service = std::make_unique<serve::CdiQueryService>(source.get(), options);
  }
};

// The dashboard battery: the handful of shapes a monitoring UI refreshes
// over and over (fleet tile, two drill-downs, one filtered view). A small
// hot set is exactly the workload the ARC cache's T2 list is for.
std::vector<serve::CdiQuery> DashboardBattery(serve::Consistency mode) {
  std::vector<serve::CdiQuery> battery;
  {
    serve::CdiQuery q;
    q.consistency = mode;
    battery.push_back(q);
  }
  {
    serve::CdiQuery q;
    q.consistency = mode;
    q.group_by = {"region"};
    battery.push_back(q);
  }
  {
    serve::CdiQuery q;
    q.consistency = mode;
    q.group_by = {"region", "az"};
    battery.push_back(q);
  }
  {
    serve::CdiQuery q;
    q.consistency = mode;
    q.group_by = {"az"};
    q.filter = {{"region", "r0"}};
    battery.push_back(q);
  }
  return battery;
}

// One closed-loop arm: `clients` threads, each issuing `per_client`
// queries back to back from the battery. Latencies (microseconds) are
// appended to `lat_us`; returns total queries completed.
size_t RunClosedLoop(serve::CdiQueryService& service,
                     const std::vector<serve::CdiQuery>& battery, int clients,
                     int per_client, std::vector<double>* lat_us) {
  std::mutex mu;
  std::vector<std::thread> threads;
  std::atomic<size_t> completed{0};
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(static_cast<size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const serve::CdiQuery& q =
            battery[static_cast<size_t>(c + i) % battery.size()];
        const auto t0 = std::chrono::steady_clock::now();
        auto resp = service.Query(q);
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(resp);
        if (resp.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
          local.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      lat_us->insert(lat_us->end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  return completed.load();
}

double Percentile(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0.0;
  const size_t idx = std::min(
      lat->size() - 1,
      static_cast<size_t>(p * static_cast<double>(lat->size() - 1)));
  std::nth_element(lat->begin(),
                   lat->begin() + static_cast<std::ptrdiff_t>(idx), lat->end());
  return (*lat)[idx];
}

void RunArm(benchmark::State& state, const serve::CdiQueryServiceOptions& opts,
            serve::Consistency mode, int per_client) {
  ServeFixture fx(opts);
  const int clients = static_cast<int>(state.range(0));
  const std::vector<serve::CdiQuery> battery = DashboardBattery(mode);
  // Warm-up pass (also the cache/cube priming for the cached arm).
  std::vector<double> warm;
  RunClosedLoop(*fx.service, battery, 1, static_cast<int>(battery.size()),
                &warm);

  std::vector<double> lat_us;
  size_t total = 0;
  double seconds = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    total += RunClosedLoop(*fx.service, battery, clients, per_client, &lat_us);
    const auto t1 = std::chrono::steady_clock::now();
    seconds += std::chrono::duration<double>(t1 - t0).count();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["qps"] = seconds > 0 ? static_cast<double>(total) / seconds : 0;
  state.counters["p50_us"] = Percentile(&lat_us, 0.50);
  state.counters["p99_us"] = Percentile(&lat_us, 0.99);
  const auto cs = fx.service->cache_stats();
  state.counters["cache_hit_rate"] =
      cs.lookups > 0
          ? static_cast<double>(cs.hits) / static_cast<double>(cs.lookups)
          : 0;
}

// Production arm: ARC cache + cube on, dashboard battery served kCached.
// After warm-up every query is a cache hit (the watermark never moves —
// no ingest during the loop), so the curve is the serving layer's ceiling.
void BM_QueryServingCached(benchmark::State& state) {
  serve::CdiQueryServiceOptions opts;
  opts.metric_prefix = "bench_serve_cached";
  RunArm(state, opts, serve::Consistency::kCached, /*per_client=*/512);
}
BENCHMARK(BM_QueryServingCached)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Cold arm: cache and cube off, every query a kFresh full pull +
// RunDrilldown over the 512-VM day. The 10x acceptance bar compares this
// arm's p99 at the largest client count against the cached arm's.
void BM_QueryServingCold(benchmark::State& state) {
  serve::CdiQueryServiceOptions opts;
  opts.cache_entries = 0;
  opts.materialize_cubes = false;
  opts.metric_prefix = "bench_serve_cold";
  RunArm(state, opts, serve::Consistency::kFresh, /*per_client=*/16);
}
BENCHMARK(BM_QueryServingCold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace cdibot

CDIBOT_BENCHMARK_MAIN("query_serving")
