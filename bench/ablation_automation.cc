// Ablation of the CloudBot closed loop itself (Sec. II: "CloudBot ...
// automatically executes operation actions to ensure the stability of
// cloud services"): the same fault workload evaluated with the Rule Engine
// + Operation Platform acting vs monitor-only, across rule-evaluation
// cadences. Shows (a) how much CDI the automation removes, and (b) that
// the CDI honestly charges the migration brown-outs automation causes.
#include <cstdio>

#include "common/thread_pool.h"
#include "sim/cloudbot_loop.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"nic_flapping", 80}, {"live_migration", 10}}, 4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);
  const TimePoint day = TimePoint::Parse("2026-04-01 00:00").value();

  std::printf("CloudBot automation ablation (NIC incidents, Example 1 rule)\n\n");
  std::printf("%-22s %10s %10s %12s %14s %14s\n", "configuration",
              "incidents", "migrated", "CDI-P", "damage avoided",
              "vs no-automation");

  // Baseline: automation off.
  AutomationLoopOptions off;
  off.automation_enabled = false;
  Rng rng_off(2026);
  auto baseline = RunAutomationDay(fleet, day, catalog, weights, off,
                                   &rng_off, {.pool = &pool});
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s %10zu %10zu %12.6f %14s %14s\n", "no automation",
              baseline->incidents, baseline->migrations_executed,
              baseline->fleet_cdi.performance, "-", "1.00x");

  bool all_better = true;
  for (int tick_minutes : {1, 5, 15, 60}) {
    AutomationLoopOptions on;
    on.automation_enabled = true;
    on.tick = Duration::Minutes(tick_minutes);
    Rng rng(2026);  // identical incident plan
    auto result = RunAutomationDay(fleet, day, catalog, weights, on, &rng,
                                   {.pool = &pool});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const double improvement = baseline->fleet_cdi.performance /
                               std::max(1e-12,
                                        result->fleet_cdi.performance);
    char label[40];
    std::snprintf(label, sizeof(label), "automation, tick=%dm", tick_minutes);
    char avoided[32];
    std::snprintf(avoided, sizeof(avoided), "%.0f min",
                  result->damage_avoided.minutes());
    char factor[16];
    std::snprintf(factor, sizeof(factor), "%.1fx", improvement);
    std::printf("%-22s %10zu %10zu %12.6f %14s %14s\n", label,
                result->incidents, result->migrations_executed,
                result->fleet_cdi.performance, avoided, factor);
    all_better &= result->fleet_cdi.performance <
                  baseline->fleet_cdi.performance;
  }

  std::printf(
      "\nReading: every automated configuration beats monitor-only; faster "
      "rule ticks\ntruncate incidents sooner, and the residual CDI-P is the "
      "honest cost of the\nincidents' first minutes plus the migration "
      "brown-outs.\n");
  std::printf("%s\n", all_better
                          ? "REPRODUCED: the closed loop pays for itself at "
                            "every cadence."
                          : "MISMATCH: some cadence did not improve CDI.");
  return all_better ? 0 : 1;
}
