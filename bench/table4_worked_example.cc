// Regenerates Table IV ("Example of CDI Calculation") from the library:
// three VMs with packet_loss / vcpu_high / slow_io events, per-VM CDI via
// Algorithm 1 and the fleet row via Eq. 4. Values must match the paper
// exactly (this is the deterministic worked example).
#include <cstdio>
#include <cmath>

#include "cdi/aggregate.h"
#include "cdi/indicator.h"

using namespace cdibot;

namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

WeightedEvent Ev(const char* name, const char* start, const char* end,
                 double w) {
  return WeightedEvent{.period = Interval(T(start), T(end)),
                       .weight = w,
                       .name = name};
}

struct Row {
  const char* vm;
  double service_minutes;
  std::vector<WeightedEvent> events;
  Interval service;
  double paper_cdi;
};

}  // namespace

int main() {
  std::vector<Row> rows = {
      {"1", 60,
       {Ev("packet_loss", "2024-01-01 10:08", "2024-01-01 10:10", 0.3),
        Ev("packet_loss", "2024-01-01 10:10", "2024-01-01 10:12", 0.3)},
       Interval(T("2024-01-01 10:00"), T("2024-01-01 11:00")), 0.020},
      {"2", 1440,
       {Ev("vcpu_high", "2024-01-01 13:25", "2024-01-01 13:30", 0.6)},
       Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")), 0.002},
      {"3", 1000,
       {Ev("slow_io", "2024-01-01 08:08", "2024-01-01 08:10", 0.5),
        Ev("slow_io", "2024-01-01 08:10", "2024-01-01 08:12", 0.5),
        Ev("vcpu_high", "2024-01-01 08:10", "2024-01-01 08:15", 0.6)},
       Interval(T("2024-01-01 08:00"),
                T("2024-01-01 08:00") + Duration::Minutes(1000)),
       0.004},
  };

  std::printf("TABLE IV: Example of CDI Calculation (measured vs paper)\n");
  std::printf("%-4s %-13s %-28s %-8s %-10s %-8s\n", "VM", "Service Time",
              "Events", "Weights", "measured", "paper");
  CdiAccumulator all;
  bool exact = true;
  for (const Row& row : rows) {
    auto q = ComputeCdi(row.events, row.service);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    all.Add(Duration::Minutes(static_cast<int64_t>(row.service_minutes)),
            q.value());
    std::string names, ws;
    for (const WeightedEvent& ev : row.events) {
      if (!names.empty()) names += ",";
      names += ev.name;
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f", ev.weight);
      if (!ws.empty()) ws += ",";
      ws += buf;
    }
    std::printf("%-4s %8.0fmin  %-28s %-8s %10.4f %8.3f\n", row.vm,
                row.service_minutes, names.c_str(), ws.c_str(), q.value(),
                row.paper_cdi);
    if (std::abs(q.value() - row.paper_cdi) > 5e-4) exact = false;
  }
  std::printf("%-4s %8.0fmin  %-28s %-8s %10.4f %8.3f\n", "All", 2500.0, "-",
              "-", all.Value(), 0.003);
  if (std::abs(all.Value() - 0.003) > 5e-4) exact = false;

  std::printf("\n%s\n", exact
                            ? "REPRODUCED: all rows match the paper (within "
                              "its printed precision)."
                            : "MISMATCH: see rows above.");
  return exact ? 0 : 1;
}
