// Overload behavior of the flow-control layer. The headline benches drive a
// 10x (and worse) telemetry surge into a BackpressureQueue with a consumer
// that cannot keep up and report, per surge factor: goodput (delivered /
// offered), shed fraction, and the queue's peak depth. The acceptance
// property is visible directly in the counters — peak_depth never exceeds
// the configured capacity no matter the surge factor (bounded memory), and
// goodput decays gracefully instead of collapsing (unavailability events
// are never among the shed). The micro benches price the steady-state
// admission path and the circuit breaker's fast-fail, the two costs that
// sit on hot paths even when nothing is overloaded.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_report.h"
#include "flow/backpressure_queue.h"
#include "flow/circuit_breaker.h"

namespace cdibot {
namespace {

using flow::BackpressureQueue;
using flow::FlowClass;
using flow::FlowOptions;
using flow::ShedStats;

struct ClassedEvent {
  RawEvent event;
  FlowClass klass = FlowClass::kPerformance;
};

// A day-like mix: mostly performance telemetry, a control-plane minority,
// and a thin stream of unavailability events (the ones that must survive).
std::vector<ClassedEvent> MakeStream(size_t n) {
  const TimePoint start = TimePoint::FromMillis(1767225600000);  // 2026-01-01
  std::vector<ClassedEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ClassedEvent ce;
    ce.event.time = start + Duration::Minutes(static_cast<int64_t>(i));
    ce.event.target = "vm-" + std::to_string(i % 64);
    ce.event.expire_interval = Duration::Hours(1);
    if (i % 20 == 0) {  // 5% unavailability
      ce.event.name = "vm_down";
      ce.event.level = Severity::kFatal;
      ce.klass = FlowClass::kUnavailability;
    } else if (i % 4 == 0) {  // 25% control plane
      ce.event.name = "api_error";
      ce.event.level = Severity::kWarning;
      ce.klass = FlowClass::kControlPlane;
    } else {  // the rest performance
      ce.event.name = "slow_io";
      ce.event.level = Severity::kCritical;
      ce.klass = FlowClass::kPerformance;
    }
    events.push_back(std::move(ce));
  }
  return events;
}

// Steady-state price of the admission path: push+pop pairs with the queue
// essentially empty, i.e. the cost every event pays when nothing is wrong.
void BM_QueueAdmitPop(benchmark::State& state) {
  const std::vector<ClassedEvent> stream = MakeStream(1024);
  BackpressureQueue queue(FlowOptions{.capacity = 4096});
  RawEvent out;
  size_t i = 0;
  for (auto _ : state) {
    const ClassedEvent& ce = stream[i++ & 1023];
    queue.TryPush(ce.event, ce.klass);
    queue.TryPop(&out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueueAdmitPop);

// The surge: each base event is offered `factor` times (the SurgeBurstPlan
// model) against a consumer that drains at half the BASE production rate,
// so even factor=1 trails slightly and factor=10 is a 20x overcommit.
// Goodput decays with the surge while peak depth stays pinned at or below
// capacity — the queue, not the heap, absorbs the overload.
void BM_SurgeGoodput(benchmark::State& state) {
  const size_t factor = static_cast<size_t>(state.range(0));
  const std::vector<ClassedEvent> stream = MakeStream(4096);
  constexpr size_t kCapacity = 1024;
  constexpr size_t kProduceBatch = 256;  // base-rate production quantum
  constexpr size_t kDrainBatch = 128;    // consumer is half as fast
  ShedStats last;
  uint64_t offered = 0;
  for (auto _ : state) {
    BackpressureQueue queue(FlowOptions{.capacity = kCapacity});
    RawEvent out;
    size_t since_drain = 0;
    for (const ClassedEvent& ce : stream) {
      for (size_t copy = 0; copy < factor; ++copy) {
        queue.TryPush(ce.event, ce.klass);
        ++offered;
      }
      since_drain += factor;
      if (since_drain >= kProduceBatch) {
        since_drain = 0;
        for (size_t d = 0; d < kDrainBatch && queue.TryPop(&out); ++d) {
        }
      }
    }
    while (queue.TryPop(&out)) {
    }
    last = queue.stats();
    benchmark::DoNotOptimize(&last);
  }
  state.SetItemsProcessed(static_cast<int64_t>(offered));
  const double total =
      last.pushed > 0 ? static_cast<double>(last.pushed) : 1.0;
  state.counters["goodput_pct"] =
      100.0 * static_cast<double>(last.popped) / total;
  state.counters["shed_pct"] =
      100.0 * static_cast<double>(last.shed_total) / total;
  state.counters["peak_depth"] = static_cast<double>(last.peak_depth);
  state.counters["capacity"] = static_cast<double>(kCapacity);
  state.counters["shed_unavailability"] = static_cast<double>(
      last.shed_by_class[static_cast<int>(FlowClass::kUnavailability)]);
}
BENCHMARK(BM_SurgeGoodput)->Arg(1)->Arg(2)->Arg(10)->Arg(20);

// Fast-fail price while the breaker is open: what a caller pays to be told
// "no" instead of burning a retry schedule against a dead disk.
void BM_BreakerOpenAllow(benchmark::State& state) {
  flow::CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.cooldown = Duration::Hours(1);  // stays open for the whole bench
  flow::CircuitBreaker breaker("bench_open", opts);
  breaker.RecordFailure();  // trip it
  for (auto _ : state) {
    bool admitted = breaker.Allow();
    benchmark::DoNotOptimize(admitted);
  }
}
BENCHMARK(BM_BreakerOpenAllow);

// Pass-through price when healthy: the per-attempt cost the checkpoint
// store pays for carrying a breaker at all.
void BM_BreakerClosedRoundTrip(benchmark::State& state) {
  flow::CircuitBreakerOptions opts;
  opts.failure_threshold = 5;
  flow::CircuitBreaker breaker("bench_closed", opts);
  for (auto _ : state) {
    bool admitted = breaker.Allow();
    benchmark::DoNotOptimize(admitted);
    breaker.RecordSuccess();
  }
}
BENCHMARK(BM_BreakerClosedRoundTrip);

}  // namespace
}  // namespace cdibot

CDIBOT_BENCHMARK_MAIN("overload_throughput");
