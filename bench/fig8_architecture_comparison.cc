// Regenerates Fig. 8 + Case 5 ("Performance Indicator of deployment
// architectures"): daily CDI-P of homogeneous-deployment vs hybrid-
// deployment VM pools over 28 days. The hybrid pool diverges from Day 13
// (virtualization incompatibility on one machine model causes CPU
// contention on overlapping core ranges) and the curves reconverge by Day
// 28 after the staged rollback.
#include <cstdio>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/incidents.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(88);
  FaultInjector injector(&catalog, &rng);

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 6;
  fspec.vms_per_nc = 8;
  fspec.hybrid_fraction = 0.5;
  fspec.gen2_fraction = 0.4;  // Case 5's defect hits only this model
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"vcpu_high", 230}, {"slow_io", 420}, {"packet_loss", 160},
       {"api_error", 90}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);

  constexpr int kDays = 28;
  constexpr int kDefectDay = 13;    // divergence starts (paper: Day 13)
  constexpr int kRollbackStart = 20;  // staged rollback ramps the defect down
  constexpr int kConverged = 25;    // curves converge by Day 26

  const TimePoint start = TimePoint::Parse("2026-02-01 00:00").value();
  std::vector<double> homog(kDays), hybrid(kDays);

  std::printf("Fig. 8: Performance Indicator per deployment architecture\n");
  std::printf("%4s %14s %14s  %s\n", "day", "homogeneous", "hybrid", "phase");
  for (int d = 0; d < kDays; ++d) {
    const TimePoint day_start = start + Duration::Days(d);
    const Interval day(day_start, day_start + Duration::Days(1));
    EventLog log;
    (void)injector.InjectDay(fleet, day_start, BaselineRates().Scaled(4.0),
                             &log);
    double intensity = 0.0;
    if (d >= kDefectDay && d < kRollbackStart) {
      intensity = 2.5;  // defect fully active
    } else if (d >= kRollbackStart && d < kConverged) {
      // staged rollback: affected machines drain over the week
      intensity = 2.5 *
                  (1.0 - static_cast<double>(d - kRollbackStart + 1) /
                             (kConverged - kRollbackStart));
    }
    if (intensity > 0.0) {
      if (!InjectHybridContentionDefect(fleet, day_start, "gen2", intensity,
                                        &injector, &log, &rng)
               .ok()) {
        return 1;
      }
    }
    DailyCdiJob job(&log, &catalog, &weights,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const DrilldownGroup& g :
         RunDrilldown(result->per_vm, {.dimensions = {"arch"}})->groups) {
      if (g.key == "homogeneous") homog[d] = g.cdi.performance;
      if (g.key == "hybrid") hybrid[d] = g.cdi.performance;
    }
    const char* phase = d < kDefectDay            ? "parity"
                        : d < kRollbackStart      ? "DEFECT"
                        : d < kConverged          ? "rollback"
                                                  : "converged";
    std::printf("%4d %14.6f %14.6f  %s\n", d + 1, homog[d], hybrid[d], phase);
  }

  // Shape checks: parity before Day 13, clear divergence during the defect,
  // reconvergence at the end.
  auto mean_ratio = [&](int lo, int hi) {
    double h = 0.0, y = 0.0;
    for (int d = lo; d < hi; ++d) {
      h += homog[d];
      y += hybrid[d];
    }
    return y / h;
  };
  const double before = mean_ratio(0, kDefectDay);
  const double during = mean_ratio(kDefectDay, kRollbackStart);
  const double after = mean_ratio(kConverged, kDays);
  std::printf("\nhybrid/homogeneous CDI-P ratio: before %.2f, during defect "
              "%.2f, after rollback %.2f\n",
              before, during, after);
  const bool ok = before < 1.35 && during > 2.0 && after < 1.35;
  std::printf("%s\n", ok ? "REPRODUCED: minimal variance, divergence from Day "
                           "13, reconvergence by Day 28."
                         : "MISMATCH: see ratios above.");
  return ok ? 0 : 1;
}
