// Regenerates Fig. 2 ("Distribution of tickets related to ECS stability"):
// 18 months of synthetic stability tickets (January 2023 - June 2024)
// classified into the three categories. The paper reports 27% / 44% / 29%.
#include <cstdio>
#include <cmath>

#include "telemetry/tickets.h"

using namespace cdibot;

int main() {
  Rng rng(20230101);
  TicketWorkloadSpec spec;
  spec.window = Interval(TimePoint::Parse("2023-01-01 00:00").value(),
                         TimePoint::Parse("2024-07-01 00:00").value());
  spec.count = 50000;
  // Category mix matches production ground truth; the classifier must
  // recover it from ticket text alone.
  auto tickets = GenerateTickets(spec, &rng);
  if (!tickets.ok()) {
    std::fprintf(stderr, "%s\n", tickets.status().ToString().c_str());
    return 1;
  }

  TicketClassifier classifier;
  auto hist = classifier.Histogram(*tickets);
  const double n = static_cast<double>(tickets->size());

  struct Row {
    StabilityCategory cat;
    const char* label;
    double paper;
  };
  const Row rows[] = {
      {StabilityCategory::kUnavailability, "unavailability", 0.27},
      {StabilityCategory::kPerformance, "performance", 0.44},
      {StabilityCategory::kControlPlane, "control-plane", 0.29},
  };

  std::printf("Fig. 2: distribution of tickets related to ECS stability\n");
  std::printf("(%zu tickets, %s .. %s)\n\n", tickets->size(),
              spec.window.start.ToDateString().c_str(),
              spec.window.end.ToDateString().c_str());
  std::printf("%-16s %10s %10s %8s\n", "category", "tickets", "measured",
              "paper");
  bool shape_holds = true;
  for (const Row& row : rows) {
    const double share = static_cast<double>(hist[row.cat]) / n;
    std::printf("%-16s %10zu %9.1f%% %7.0f%%\n", row.label, hist[row.cat],
                100.0 * share, 100.0 * row.paper);
    if (std::abs(share - row.paper) > 0.02) shape_holds = false;
  }
  std::printf("\nKey takeaway (Sec. III-B): unavailability is only ~27%% of "
              "stability tickets —\ndowntime-based metrics miss the other "
              "~73%%.\n");
  std::printf("%s\n", shape_holds ? "REPRODUCED: within 2pp of the paper."
                                  : "MISMATCH: shares deviate > 2pp.");
  return shape_holds ? 0 : 1;
}
