// Ablation of the Algorithm-1 implementation: the literal pseudo-code
// materializes a per-minute weight array W[T_s..T_e] (O(minutes + events *
// span)), while the production implementation uses an event-boundary sweep
// (O(n log n), independent of the service-period length). Both compute the
// same value (see indicator_test.cc); this bench quantifies the cost gap
// that justifies the sweep.
#include <benchmark/benchmark.h>

#include "cdi/indicator.h"
#include "common/rng.h"

namespace cdibot {
namespace {

const TimePoint kDayStart = TimePoint::FromMillis(1767225600000);  // 2026-01-01

std::vector<WeightedEvent> MinuteAlignedEvents(size_t n, int64_t span_minutes,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t len = rng.UniformInt(1, 45);
    const int64_t start = rng.UniformInt(0, span_minutes - len - 1);
    events.push_back(WeightedEvent{
        .period = Interval(kDayStart + Duration::Minutes(start),
                           kDayStart + Duration::Minutes(start + len)),
        .weight = rng.Uniform(0.1, 1.0)});
  }
  return events;
}

void BM_Sweep(benchmark::State& state) {
  const int64_t span = state.range(1);
  const Interval period(kDayStart, kDayStart + Duration::Minutes(span));
  const auto events =
      MinuteAlignedEvents(static_cast<size_t>(state.range(0)), span, 3);
  for (auto _ : state) {
    auto q = ComputeCdi(events, period);
    benchmark::DoNotOptimize(q);
  }
}

void BM_NaiveArray(benchmark::State& state) {
  const int64_t span = state.range(1);
  const Interval period(kDayStart, kDayStart + Duration::Minutes(span));
  const auto events =
      MinuteAlignedEvents(static_cast<size_t>(state.range(0)), span, 3);
  for (auto _ : state) {
    auto q = ComputeCdiNaive(events, period);
    benchmark::DoNotOptimize(q);
  }
}

// (events, service-period minutes): one day, one month, one year.
BENCHMARK(BM_Sweep)->Args({64, 1440})->Args({64, 43200})->Args({64, 525600})
    ->Args({4096, 1440})->Args({4096, 525600});
BENCHMARK(BM_NaiveArray)->Args({64, 1440})->Args({64, 43200})
    ->Args({64, 525600})->Args({4096, 1440})->Args({4096, 525600});

}  // namespace
}  // namespace cdibot

BENCHMARK_MAIN();
