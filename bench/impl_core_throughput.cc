// Implementation-cost benchmark (Sec. V): the paper's Spark job spends
// ~500 s of core CDI computation on a day of production events (10 GB in,
// 100 executors x 8 cores). This google-benchmark binary measures the same
// core computation on the C++ engine: Algorithm 1 throughput, period
// resolution, and the end-to-end daily job at several fleet scales, with
// events/second counters for comparison against the paper's scale.
#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "cdi/indicator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "cdi/pipeline.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "rules/rule_engine.h"
#include "sim/scenario.h"

namespace cdibot {
namespace {

const TimePoint kDayStart = TimePoint::FromMillis(1767225600000);  // 2026-01-01
const Interval kDay(kDayStart, kDayStart + Duration::Days(1));

std::vector<WeightedEvent> RandomEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto len = Duration::Minutes(rng.UniformInt(1, 30));
    const TimePoint start = kDayStart + Duration::Millis(rng.UniformInt(
                                0, kDay.length().millis() - len.millis()));
    events.push_back(WeightedEvent{.period = Interval(start, start + len),
                                   .weight = rng.Uniform(0.1, 1.0)});
  }
  return events;
}

// Algorithm 1 (boundary sweep) on one VM's event set.
void BM_ComputeCdi(benchmark::State& state) {
  const auto events = RandomEvents(static_cast<size_t>(state.range(0)), 11);
  for (auto _ : state) {
    auto q = ComputeCdi(events, kDay);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_ComputeCdi)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// Period resolution of a day's raw stream for one VM.
void BM_PeriodResolve(benchmark::State& state) {
  EventCatalog catalog = EventCatalog::BuiltIn();
  PeriodResolver resolver(&catalog);
  Rng rng(13);
  std::vector<RawEvent> raw;
  const char* names[] = {"slow_io", "packet_loss", "vcpu_high"};
  for (int64_t i = 0; i < state.range(0); ++i) {
    RawEvent ev;
    ev.name = names[rng.UniformInt(0, 2)];
    ev.time = kDayStart + Duration::Millis(
                  rng.UniformInt(0, kDay.length().millis() - 1));
    ev.target = "vm-1";
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(24);
    raw.push_back(std::move(ev));
  }
  for (auto _ : state) {
    auto resolved = resolver.Resolve(raw, kDay);
    benchmark::DoNotOptimize(resolved);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PeriodResolve)->Arg(1024)->Arg(16384);

// Rule-engine matching over an active event set: the per-tick cost of the
// CloudBot control loop.
void BM_RuleMatch(benchmark::State& state) {
  RuleEngine engine;
  // A realistic rule set: the built-in rules plus generated two-event
  // conjunctions.
  {
    auto built_in = RuleEngine::BuiltIn().value();
    engine = std::move(built_in);
  }
  const char* names[] = {"slow_io",    "packet_loss", "vcpu_high",
                         "nic_flapping", "vm_hang",   "api_error"};
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const std::string expr = std::string(names[i % 6]) + " && " +
                             names[(i + 1) % 6] + " && !" +
                             names[(i + 2) % 6];
    (void)engine.Register("gen_rule_" + std::to_string(i), expr,
                          {{"repair_request", 1}});
  }
  const std::set<std::string> active = {"slow_io", "nic_flapping",
                                        "api_error"};
  const TimePoint now = kDayStart + Duration::Hours(12);
  for (auto _ : state) {
    auto matches = engine.Match(active, "vm-1", now);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(engine.num_rules()));
}
BENCHMARK(BM_RuleMatch)->Arg(8)->Arg(128)->Arg(1024);

// End-to-end daily job: fleet of N VMs with production-like event volume,
// run on a thread pool (the "executor" analogue). items/s = raw events/s.
void BM_DailyJob(benchmark::State& state) {
  const int vms_per_nc = 8;
  const auto target_vms = static_cast<int>(state.range(0));
  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 1;
  spec.clusters_per_az = 1;
  spec.ncs_per_cluster = std::max(1, target_vms / vms_per_nc);
  spec.vms_per_nc = vms_per_nc;
  const Fleet fleet = Fleet::Build(spec).value();

  EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(17);
  FaultInjector injector(&catalog, &rng);
  EventLog log;
  // Heavy day: ~25 episodes per VM so the job is compute-bound.
  (void)injector.InjectDay(fleet, kDayStart, BaselineRates().Scaled(150.0),
                           &log);

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230}}, 4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(std::thread::hardware_concurrency());
  DailyCdiJob job(DailyCdiJob::Options{.log = &log,
                                       .catalog = &catalog,
                                       .weights = &weights,
                                       .pool = &pool,
                                       .min_parallel_rows = 1});
  const auto vms = fleet.ServiceInfos(kDay).value();

  obs::Histogram* job_ns =
      obs::MetricsRegistry::Global().GetHistogram("bench.daily_job_ns");
  for (auto _ : state) {
    obs::ScopedTimer timer(job_ns);
    auto result = job.Run(vms, kDay);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(log.size()));
  state.counters["raw_events"] =
      benchmark::Counter(static_cast<double>(log.size()));
  state.counters["vms"] = benchmark::Counter(static_cast<double>(vms.size()));
}
BENCHMARK(BM_DailyJob)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cdibot

CDIBOT_BENCHMARK_MAIN("impl_core_throughput");
