// Ablation of the Sec. IV-C weight design: evaluate the same incident day
// under (1) expert-only weights, (2) ticket-only (customer) weights, and
// (3) the paper's AHP-composited weights. Shows how the composition changes
// both the absolute Performance Indicator and the relative ranking of the
// event-level drill-down — the reason the paper mixes both perspectives.
#include <cstdio>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/scenario.h"
#include "weights/ahp.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(31);
  FaultInjector injector(&catalog, &rng);
  EventLog log;

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  const TimePoint day_start = TimePoint::Parse("2026-03-15 00:00").value();
  const Interval day(day_start, day_start + Duration::Days(1));
  // A day dominated by two performance signals with an expert/customer
  // mismatch: packet_loss is low-severity to experts but generates many
  // tickets; inspect_cpu_power_tdp is the reverse.
  FaultRates rates;
  rates.episodes_per_vm_day = {{"packet_loss", 2.0},
                               {"inspect_cpu_power_tdp", 2.0},
                               {"slow_io", 0.5}};
  if (!injector.InjectDay(fleet, day_start, rates, &log).ok()) return 1;

  // Customer ticket counts: packet_loss dominates complaints.
  const std::map<std::string, int64_t> tickets = {
      {"packet_loss", 500}, {"inspect_cpu_power_tdp", 5}, {"slow_io", 120},
      {"vcpu_high", 80}};

  // AHP: experts judged the two perspectives equally important.
  const auto ahp =
      AhpMatrix::FromSingleComparison(1.0).value().Evaluate().value();

  struct Config {
    const char* name;
    double alpha_expert;
    double alpha_ticket;
  };
  const Config configs[] = {
      {"expert-only", 1.0, 1e-9},
      {"ticket-only", 1e-9, 1.0},
      {"AHP-composite", ahp.priorities[0], ahp.priorities[1]},
  };

  ThreadPool pool(8);
  std::printf("Weight-design ablation on one incident day (%zu VMs)\n\n",
              fleet.num_vms());
  std::printf("%-14s %12s | per-event CDI drill-down\n", "config", "CDI-P");
  for (const Config& cfg : configs) {
    EventWeightOptions options;
    options.alpha_expert = cfg.alpha_expert;
    options.alpha_ticket = cfg.alpha_ticket;
    auto model = EventWeightModel::Build(
        TicketRankModel::FromCounts(tickets, options.ticket_levels).value(),
        options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    DailyCdiJob job(&log, &catalog, &*model,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    auto by_event =
        EventLevelCdi(result->per_event, result->fleet_service_time).value();
    std::printf("%-14s %12.6f |", cfg.name, result->fleet.performance);
    for (const char* name :
         {"packet_loss", "inspect_cpu_power_tdp", "slow_io"}) {
      auto it = by_event.find(name);
      std::printf(" %s=%.6f", name, it == by_event.end() ? 0.0 : it->second);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: expert-only underweights the customer-visible packet_loss; "
      "ticket-only\noverweights it and underweights the engineering-risk TDP "
      "signal; the AHP\ncomposite balances both, which is why Sec. IV-C "
      "composes Eq. 1 and Eq. 2.\n");
  return 0;
}
