// Regenerates Table V + Fig. 11 + Case 8: the A/B test that selects the
// operation action for the nc_down_prediction rule.
//
// Three candidate actions (all live-migrate every VM off the predicted-
// failing host, with different migration parameters/sequences) are randomly
// assigned per hit VM. Each VM's post-action damage is injected into the
// event log as real events, the daily CDI job computes its 2-day CDI, and
// the Fig.-10 hypothesis workflow compares the arms per sub-metric.
//
// Paper's outcome: omnibus non-significant for Unavailability (p=0.47) and
// Control-plane (p=0.89); significant for Performance with all three
// post-hoc pairs significant (A-B p~0, A-C p~0.03, B-C p~0); arm means
// 0.40 / 0.08 / 0.42 -> Action B wins.
#include <algorithm>
#include <cstdio>

#include "abtest/experiment.h"
#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/scenario.h"

using namespace cdibot;

namespace {

double Quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double h = q * (static_cast<double>(v.size()) - 1.0);
  const auto lo = static_cast<size_t>(h);
  const auto hi = std::min(v.size() - 1, lo + 1);
  return v[lo] + (h - static_cast<double>(lo)) * (v[hi] - v[lo]);
}

}  // namespace

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(20268);
  FaultInjector injector(&catalog, &rng);
  EventLog log;

  // 360 VMs hit by nc_down_prediction over the 3-month test; evaluated over
  // a common 2-day post-action window for simplicity.
  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 3;
  fspec.clusters_per_az = 3;
  fspec.ncs_per_cluster = 5;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230},
       {"vm_resize_failed", 60}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();

  auto experiment = AbTestExperiment::Create(
      {{"A", 1.0 / 3}, {"B", 1.0 / 3}, {"C", 1.0 / 3}}, 7).value();

  const TimePoint window_start = TimePoint::Parse("2026-06-01 00:00").value();
  const Interval window(window_start, window_start + Duration::Days(2));

  // Post-action performance damage per arm, as a fraction of the window the
  // VM runs degraded (slow_io at critical weighs 0.875 under this model, so
  // fractions 0.457/0.091/0.48 land the paper's 0.40/0.08/0.42 means).
  // Variant B's gentler parameters also make its impact more consistent
  // (smaller spread) — heteroscedasticity the Fig.-10 workflow must route
  // through Welch's ANOVA + Games-Howell.
  const double kDamagedFraction[3] = {0.457, 0.0914, 0.480};
  const double kDamagedSpread[3] = {0.07, 0.025, 0.07};

  std::vector<VmServiceInfo> trial_vms =
      fleet.ServiceInfos(window).value();
  trial_vms.resize(360);
  std::vector<size_t> assigned_arm(trial_vms.size());

  for (size_t i = 0; i < trial_vms.size(); ++i) {
    const size_t arm = experiment.Assign();
    assigned_arm[i] = arm;
    const std::string& vm = trial_vms[i].vm_id;
    // Performance damage: one long degradation episode whose length depends
    // on the migration variant.
    double f = rng.Normal(kDamagedFraction[arm], kDamagedSpread[arm]);
    f = std::clamp(f, 0.005, 0.95);
    const auto dur = Duration::Millis(
        static_cast<int64_t>(f * window.length().millis()));
    const TimePoint ep_start =
        window_start + Duration::Millis(rng.UniformInt(
                           0, window.length().millis() - dur.millis() - 1));
    if (!injector
             .InjectEpisode(vm, "slow_io", Interval(ep_start, ep_start + dur),
                            &log, Severity::kCritical)
             .ok()) {
      return 1;
    }
    // Arm-independent unavailability (the brief migration blackout) and
    // control-plane noise: identical distributions across arms.
    const auto blackout = Duration::Seconds(rng.UniformInt(20, 60));
    const TimePoint bs = window_start + Duration::Minutes(rng.UniformInt(1, 60));
    (void)injector.InjectEpisode(vm, "vm_reboot",
                                 Interval(bs, bs + blackout), &log);
    if (rng.Bernoulli(0.5)) {
      const TimePoint cs =
          window_start + Duration::Hours(rng.UniformInt(1, 40));
      (void)injector.InjectEpisode(vm, "vm_resize_failed",
                                   Interval(cs, cs + Duration::Minutes(5)),
                                   &log);
    }
  }

  ThreadPool pool(8);
  DailyCdiJob job(&log, &catalog, &weights,
                  {.pool = &pool, .min_parallel_rows = 1});
  auto result = job.Run(trial_vms, window);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Feed each VM's CDI into its arm's sequence.
  std::vector<std::vector<double>> perf_by_arm(3);
  {
    std::map<std::string, size_t> arm_of;
    for (size_t i = 0; i < trial_vms.size(); ++i) {
      arm_of[trial_vms[i].vm_id] = assigned_arm[i];
    }
    for (const VmCdiRecord& rec : result->per_vm) {
      const size_t arm = arm_of.at(rec.vm_id);
      if (!experiment.AddObservation(arm, rec.cdi).ok()) return 1;
      perf_by_arm[arm].push_back(rec.cdi.performance);
    }
  }

  auto report = experiment.Analyze();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("TABLE V: Hypothesis Test Results\n\n%s\n",
              report->ToTableString().c_str());

  std::printf("Fig. 11: Performance Indicator distribution per action\n");
  std::printf("%-6s %6s %8s %8s %8s %8s %8s\n", "action", "n", "min", "q1",
              "median", "q3", "max");
  for (size_t a = 0; a < 3; ++a) {
    const auto& v = perf_by_arm[a];
    std::printf("%-6s %6zu %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                report->arm_names[a].c_str(), v.size(), Quantile(v, 0.0),
                Quantile(v, 0.25), Quantile(v, 0.5), Quantile(v, 0.75),
                Quantile(v, 1.0));
  }

  // Shape checks against the paper.
  const auto& u = report->per_metric[0];
  const auto& p = report->per_metric[1];
  const auto& c = report->per_metric[2];
  bool all_pairs_significant = !p.posthoc.empty();
  for (const auto& pr : p.posthoc) {
    all_pairs_significant &= pr.SignificantAt(0.05);
  }
  const bool b_wins = report->arm_means[1][1] < report->arm_means[0][1] &&
                      report->arm_means[1][1] < report->arm_means[2][1];
  std::printf("\nshape checks:\n");
  std::printf("  Unavailability omnibus not significant ... %s (p=%.2f)\n",
              !u.omnibus_significant ? "yes" : "NO", u.omnibus.p_value);
  std::printf("  Control-plane omnibus not significant .... %s (p=%.2f)\n",
              !c.omnibus_significant ? "yes" : "NO", c.omnibus.p_value);
  std::printf("  Performance omnibus significant .......... %s (p=%.3g)\n",
              p.omnibus_significant ? "yes" : "NO", p.omnibus.p_value);
  std::printf("  All performance pairs significant ........ %s\n",
              all_pairs_significant ? "yes" : "NO");
  std::printf("  Action B has the lowest mean ............. %s "
              "(%.2f / %.2f / %.2f vs paper 0.40 / 0.08 / 0.42)\n",
              b_wins ? "yes" : "NO", report->arm_means[0][1],
              report->arm_means[1][1], report->arm_means[2][1]);
  const bool ok = !u.omnibus_significant && !c.omnibus_significant &&
                  p.omnibus_significant && all_pairs_significant && b_wins;
  std::printf("%s\n",
              ok ? "REPRODUCED: Action B is selected for nc_down_prediction."
                 : "MISMATCH: see checks above.");
  return ok ? 0 : 1;
}
