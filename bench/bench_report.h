// Drop-in replacement for BENCHMARK_MAIN() that, in addition to the normal
// console output, writes BENCH_<name>.json into the working directory:
// per-benchmark iteration counts, per-iteration real/cpu time in
// nanoseconds, rate counters (items_per_second where SetItemsProcessed was
// used), and the full observability snapshot (counters + histograms with
// p50/p95/p99 + span aggregates) accumulated over the run. Machine-diffable
// perf numbers per commit, next to the human-readable table.
#ifndef CDIBOT_BENCH_BENCH_REPORT_H_
#define CDIBOT_BENCH_BENCH_REPORT_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/statusz.h"

namespace cdibot::benchio {

struct RunResult {
  std::string name;
  int64_t iterations = 0;
  double real_ns_per_iter = 0;
  double cpu_ns_per_iter = 0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Console output as usual, plus a copy of every finished run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      RunResult r;
      r.name = run.benchmark_name();
      r.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      r.real_ns_per_iter = run.real_accumulated_time / iters * 1e9;
      r.cpu_ns_per_iter = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [cname, counter] : run.counters) {
        r.counters.emplace_back(cname, static_cast<double>(counter.value));
      }
      results.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<RunResult> results;
};

inline void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline std::string RenderReport(const std::vector<RunResult>& results) {
  std::string out = "{\"benchmarks\":[";
  char buf[160];
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(r.name, &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"iterations\":%lld,\"real_ns_per_iter\":%.3f"
                  ",\"cpu_ns_per_iter\":%.3f",
                  static_cast<long long>(r.iterations), r.real_ns_per_iter,
                  r.cpu_ns_per_iter);
    out += buf;
    for (const auto& [name, value] : r.counters) {
      out.push_back(',');
      AppendJsonString(name, &out);
      std::snprintf(buf, sizeof(buf), ":%.6g", value);
      out += buf;
    }
    out.push_back('}');
  }
  out += "],\"obs\":";
  out += obs::RenderStatuszJson(obs::CaptureObsSnapshot());
  out += "}\n";
  return out;
}

/// Runs the registered benchmarks and writes BENCH_<bench_name>.json.
inline int RunAndReport(int argc, char** argv, const char* bench_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const std::string path = std::string("BENCH_") + bench_name + ".json";
  const std::string report = RenderReport(reporter.results);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(report.data(), 1, report.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace cdibot::benchio

/// Use instead of BENCHMARK_MAIN() to also emit BENCH_<name>.json.
#define CDIBOT_BENCHMARK_MAIN(name)                               \
  int main(int argc, char** argv) {                               \
    return ::cdibot::benchio::RunAndReport(argc, argv, name);     \
  }

#endif  // CDIBOT_BENCH_BENCH_REPORT_H_
