// Shard-topology scaling: how fleet gathers and routed ingest behave as
// the shard count grows. BM_ShardGather pins the scatter/gather cost of a
// settled Snapshot (the per-shard work shrinks with N, the merge grows),
// BM_ShardIngestAndGather measures the steady-state loop the sharded
// cloudbot mode runs (route a burst, gather), and BM_ShardRebalance prices
// a full recut+handoff. items_per_second across the N arms is the scaling
// curve; the shard.gather_ns histogram (p50/p95/p99) lands in the obs
// snapshot section of BENCH_shard_scaling.json via bench_report.h. The
// committed scaling baseline lives at
// bench/trajectory/shard_scaling.baseline.json (BENCH_*.json outputs are
// gitignored; refresh the baseline when a PR legitimately moves it).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_report.h"
#include "common/rng.h"
#include "obs/fleet.h"
#include "common/thread_pool.h"
#include "shard/coordinator.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "storage/event_log.h"
#include "weights/event_weights.h"

namespace cdibot {
namespace {

const TimePoint kDayStart = TimePoint::FromMillis(1767225600000);  // 2026-01-01
const Interval kDay(kDayStart, kDayStart + Duration::Days(1));

EventWeightModel MakeWeights() {
  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230}}, 4);
  return EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
}

// A registered, primed sharded fleet plus the day's event stream.
// `transport` picks the worker topology: in-process channels (the PR-6
// default) or worker threads behind real Unix-domain sockets, which prices
// the wire — framing, CRC trailer, syscalls — against the same workload.
struct ShardFixture {
  EventCatalog catalog = EventCatalog::BuiltIn();
  EventWeightModel weights = MakeWeights();
  std::vector<VmServiceInfo> vms;
  std::vector<RawEvent> day_events;
  std::unique_ptr<shard::ShardCoordinator> coord;

  ShardFixture(size_t num_shards, int target_vms, ThreadPool* pool,
               shard::ShardTransportMode transport =
                   shard::ShardTransportMode::kInProcess) {
    const int vms_per_nc = 8;
    FleetSpec spec;
    spec.regions = 1;
    spec.azs_per_region = 1;
    spec.clusters_per_az = 1;
    spec.ncs_per_cluster = std::max(1, target_vms / vms_per_nc);
    spec.vms_per_nc = vms_per_nc;
    Fleet fleet = Fleet::Build(spec).value();
    vms = fleet.ServiceInfos(kDay).value();

    Rng rng(17);
    FaultInjector injector(&catalog, &rng);
    EventLog log;
    (void)injector.InjectDay(fleet, kDayStart, BaselineRates().Scaled(20.0),
                             &log);
    day_events = log.Search(
        Interval(kDayStart - Duration::Days(1), kDay.end + Duration::Days(1)));

    shard::ShardTopologyOptions topo;
    topo.num_shards = num_shards;
    topo.engine.window = kDay;
    topo.engine.pool = pool;
    topo.transport = transport;
    coord = shard::ShardCoordinator::Create(&catalog, &weights, topo).value();
    (void)coord->RegisterVms(vms);
    (void)coord->IngestBatch(day_events);
    (void)coord->Flush();
  }
};

// Settled fleet gather over a primed day: scatter to N shards, merge the
// wire snapshots through the canonical fold.
void BM_ShardGather(benchmark::State& state) {
  ThreadPool pool(4);
  ShardFixture fx(static_cast<size_t>(state.range(0)), 512, &pool);
  for (auto _ : state) {
    auto snap = fx.coord->Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.vms.size()));
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["fleet_vms"] = static_cast<double>(fx.vms.size());
}
BENCHMARK(BM_ShardGather)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Steady-state sharded monitoring loop: route a burst of fresh events to
// their owner shards, then gather the fleet answer.
void BM_ShardIngestAndGather(benchmark::State& state) {
  ThreadPool pool(4);
  ShardFixture fx(static_cast<size_t>(state.range(0)), 512, &pool);
  Rng rng(31);
  constexpr size_t kBurst = 128;
  for (auto _ : state) {
    for (size_t i = 0; i < kBurst; ++i) {
      RawEvent ev;
      ev.name = "slow_io";
      ev.time = kDayStart + Duration::Minutes(rng.UniformInt(0, 1439));
      ev.target =
          fx.vms[static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(fx.vms.size()) - 1))]
              .vm_id;
      ev.level = Severity::kCritical;
      ev.expire_interval = Duration::Hours(1);
      (void)fx.coord->Ingest(ev);
    }
    auto snap = fx.coord->Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBurst));
  state.counters["shards"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ShardIngestAndGather)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The same settled gather, but over the socket transport: every frame now
// crosses a Unix-domain socket with length-prefix + CRC32 framing. The
// delta against BM_ShardGather is the wire tax on the scatter/gather path;
// the shard.gather_ns histogram (p50/p95/p99) in the report's obs section
// covers both variants' gathers.
void BM_ShardGatherSocket(benchmark::State& state) {
  ThreadPool pool(4);
  ShardFixture fx(static_cast<size_t>(state.range(0)), 512, &pool,
                  shard::ShardTransportMode::kSocketThread);
  for (auto _ : state) {
    auto snap = fx.coord->Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.vms.size()));
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["fleet_vms"] = static_cast<double>(fx.vms.size());
}
BENCHMARK(BM_ShardGatherSocket)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Steady-state loop over sockets: routed ingest throughput + gather when
// every batch is serialized onto a real wire.
void BM_ShardIngestAndGatherSocket(benchmark::State& state) {
  ThreadPool pool(4);
  ShardFixture fx(static_cast<size_t>(state.range(0)), 512, &pool,
                  shard::ShardTransportMode::kSocketThread);
  Rng rng(31);
  constexpr size_t kBurst = 128;
  for (auto _ : state) {
    for (size_t i = 0; i < kBurst; ++i) {
      RawEvent ev;
      ev.name = "slow_io";
      ev.time = kDayStart + Duration::Minutes(rng.UniformInt(0, 1439));
      ev.target =
          fx.vms[static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(fx.vms.size()) - 1))]
              .vm_id;
      ev.level = Severity::kCritical;
      ev.expire_interval = Duration::Hours(1);
      (void)fx.coord->Ingest(ev);
    }
    auto snap = fx.coord->Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBurst));
  state.counters["shards"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ShardIngestAndGatherSocket)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Fleet obs pull over the socket transport: scatter an obs-snapshot
// request to N workers, decode each wire snapshot (raw histogram buckets,
// span stats, drained spans), and fold them into one fleet view. This is
// the cost of a fleet statusz refresh; spans are drained each pull so the
// per-iteration payload stays representative of a steady polling loop.
// statusz_bytes tracks the rendered fleet JSON size as shard count grows.
void BM_ShardObsPull(benchmark::State& state) {
  ThreadPool pool(4);
  ShardFixture fx(static_cast<size_t>(state.range(0)), 512, &pool,
                  shard::ShardTransportMode::kSocketThread);
  size_t statusz_bytes = 0;
  for (auto _ : state) {
    auto procs = fx.coord->PullWorkerObs(/*include_spans=*/true);
    auto fleet = obs::CaptureFleetObsSnapshot(std::move(procs).value());
    statusz_bytes = obs::RenderFleetStatuszJson(fleet).size();
    benchmark::DoNotOptimize(fleet);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["statusz_bytes"] = static_cast<double>(statusz_bytes);
}
BENCHMARK(BM_ShardObsPull)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Full recut + range handoff under churn: register an extra VM (skewing
// the balance), then rebalance. Prices the extract/install/checkpoint
// cycle, which bounds how often a deployment can afford to recut.
void BM_ShardRebalance(benchmark::State& state) {
  ThreadPool pool(4);
  ShardFixture fx(static_cast<size_t>(state.range(0)), 256, &pool);
  int next_id = 0;
  for (auto _ : state) {
    VmServiceInfo vm;
    vm.vm_id = "churn-" + std::to_string(next_id++);
    vm.service_period = kDay;
    (void)fx.coord->RegisterVm(vm);
    auto st = fx.coord->Rebalance();
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["vms_moved"] =
      static_cast<double>(fx.coord->stats().vms_moved);
}
BENCHMARK(BM_ShardRebalance)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cdibot

CDIBOT_BENCHMARK_MAIN("shard_scaling");
