// Cost of leaving the chaos layer compiled in. The injector sits on the
// telemetry hot path (every event, every storage I/O), so a disabled plan
// must be a structural no-op: BM_DisabledInjector should match
// BM_CopyPlusManifest to within noise, and a disabled MaybeFailIo should
// cost a branch. BM_EnabledMixedLossless shows what a live fault plan
// adds, for contrast — that price is only ever paid inside chaos tests.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_report.h"
#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "chaos/quarantine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdibot {
namespace {

std::vector<RawEvent> MakeStream(size_t n) {
  const TimePoint start = TimePoint::FromMillis(1767225600000);  // 2026-01-01
  std::vector<RawEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RawEvent ev;
    ev.name = "slow_io";
    ev.time = start + Duration::Minutes(static_cast<int64_t>(i));
    ev.target = "vm-" + std::to_string(i % 64);
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(1);
    events.push_back(std::move(ev));
  }
  return events;
}

// Baseline 1: what moving the stream through a copy costs with no chaos
// layer and no delivery accounting in the picture at all.
void BM_CopyOnly(benchmark::State& state) {
  const std::vector<RawEvent> clean = MakeStream(1024);
  for (auto _ : state) {
    std::vector<RawEvent> arrivals = clean;
    benchmark::DoNotOptimize(arrivals.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_CopyOnly);

// Baseline 2: copy plus hand-rolled per-target delivery manifest. Any
// collector announces its counts whether or not chaos exists (that is the
// gap-detection mechanism ExpectDelivery consumes), so this — not the bare
// copy — is the fair baseline for the injector's own overhead.
void BM_CopyPlusManifest(benchmark::State& state) {
  const std::vector<RawEvent> clean = MakeStream(1024);
  for (auto _ : state) {
    std::vector<RawEvent> arrivals = clean;
    std::map<std::string, uint64_t> announced;
    for (const RawEvent& ev : arrivals) ++announced[ev.target];
    benchmark::DoNotOptimize(arrivals.data());
    benchmark::DoNotOptimize(&announced);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_CopyPlusManifest);

// The same work routed through a disabled injector: the overhead under
// test. Should match BM_CopyPlusManifest to within noise.
void BM_DisabledInjector(benchmark::State& state) {
  const std::vector<RawEvent> clean = MakeStream(1024);
  chaos::ChaosInjector injector(chaos::CleanPlan());
  for (auto _ : state) {
    chaos::InjectedStream out = injector.ApplyToEvents(clean);
    benchmark::DoNotOptimize(out.arrivals.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_DisabledInjector);

// A live lossless plan (duplicate + reorder + delay), for contrast.
void BM_EnabledMixedLossless(benchmark::State& state) {
  const std::vector<RawEvent> clean = MakeStream(1024);
  chaos::ChaosInjector injector(chaos::MixedLosslessPlan(7));
  for (auto _ : state) {
    chaos::InjectedStream out = injector.ApplyToEvents(clean);
    benchmark::DoNotOptimize(out.arrivals.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_EnabledMixedLossless);

// Storage layers call MaybeFailIo before every physical I/O; disabled it
// must be one branch on an empty plan.
void BM_DisabledMaybeFailIo(benchmark::State& state) {
  chaos::ChaosInjector injector(chaos::CleanPlan());
  for (auto _ : state) {
    Status st = injector.MaybeFailIo("save");
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_DisabledMaybeFailIo);

// The edge validator runs on every ingested event whether or not chaos is
// anywhere near the build — this is its steady-state cost on clean input.
void BM_ValidateCleanEvent(benchmark::State& state) {
  const std::vector<RawEvent> clean = MakeStream(1024);
  size_t i = 0;
  for (auto _ : state) {
    auto verdict = chaos::ValidateRawEvent(clean[i++ & 1023]);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_ValidateCleanEvent);

// --- Observability layer overhead ------------------------------------------
// The same discipline the chaos layer is held to: instrumentation that is
// compiled in everywhere must cost nothing measurable when idle. The pairs
// below isolate each obs primitive; scripts/check.sh additionally gates
// BM_DisabledInjector (which crosses a TRACE_SPAN + counter on every call)
// against BM_CopyPlusManifest.

// A relaxed fetch_add on a cached counter handle — the cost every
// instrumented hot-path site pays per event.
void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.obs_counter");
  for (auto _ : state) {
    counter->Increment();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsCounterAdd);

// Histogram record: bucket index computation plus three relaxed adds.
void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("bench.obs_histogram");
  uint64_t v = 1;
  for (auto _ : state) {
    hist->Record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
    v &= (1ULL << 32) - 1;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsHistogramRecord);

// A TRACE_SPAN with the tracer disabled: one relaxed load and a branch.
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().Disable();
  for (auto _ : state) {
    TRACE_SPAN("bench.disabled_span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

// The enabled price, for contrast: two clock reads plus a buffered record.
void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer::Global().Enable();
  for (auto _ : state) {
    TRACE_SPAN("bench.enabled_span");
    benchmark::ClobberMemory();
  }
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Clear();
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace
}  // namespace cdibot

CDIBOT_BENCHMARK_MAIN("chaos_overhead");
