// Regenerates Fig. 9 + Cases 6-7 ("Event-level CDI for potential problem
// detection"), one month of daily event-level CDI with K-Sigma detection:
//
//  (a) vm_allocation_failed: a scheduling-data bug spikes the curve on Day
//      14; the data is corrected and Day 15 returns to normal.
//  (b) inspect_cpu_power_tdp: a power-collection bug zeroes the measured
//      power from Day 13, the curve DIPS far below expectation until the
//      fix on Day 18 — dips deserve the same scrutiny as spikes.
#include <cstdio>

#include "anomaly/ksigma.h"
#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/incidents.h"

using namespace cdibot;

namespace {

const char* Mark(AnomalyDirection d) {
  switch (d) {
    case AnomalyDirection::kSpike:
      return "<<< SPIKE";
    case AnomalyDirection::kDip:
      return "<<< DIP";
    default:
      return "";
  }
}

}  // namespace

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(9);
  FaultInjector injector(&catalog, &rng);

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"vm_allocation_failed", 140}, {"inspect_cpu_power_tdp", 30},
       {"slow_io", 420}, {"vcpu_high", 230}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);

  constexpr int kDays = 30;
  const TimePoint start = TimePoint::Parse("2026-05-01 00:00").value();
  std::vector<double> alloc_series, tdp_series;

  for (int d = 0; d < kDays; ++d) {
    const TimePoint day_start = start + Duration::Days(d);
    const Interval day(day_start, day_start + Duration::Days(1));
    EventLog log;
    // Background: a steady trickle of allocation failures from routine
    // capacity churn (so the curve has a non-zero normal level).
    FaultRates background;
    background.episodes_per_vm_day["vm_allocation_failed"] = 0.05;
    (void)injector.InjectDay(fleet, day_start, background, &log);
    // Case 6: scheduling-system bug on Day 14 only (index 13).
    if (d == 13) {
      (void)InjectAllocationBug(fleet, "r0-az0-c0", day_start, 0.7, &injector,
                                &log, &rng);
    }
    // Case 7: TDP monitoring emits at a steady rate until the collector
    // breaks (Days 13-17, indexes 12-16), then resumes on Day 18.
    const double tdp_rate = (d >= 12 && d < 17) ? 0.0 : 0.6;
    (void)InjectTdpMonitoring(fleet, day_start, tdp_rate, &injector, &log);

    DailyCdiJob job(&log, &catalog, &weights,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    alloc_series.push_back(
        EventLevelCdiFor(result->per_event, "vm_allocation_failed",
                         result->fleet_service_time)
            .value());
    tdp_series.push_back(
        EventLevelCdiFor(result->per_event, "inspect_cpu_power_tdp",
                         result->fleet_service_time)
            .value());
  }

  auto alloc_scan = KSigmaScan(alloc_series, 8, 3.0).value();
  auto tdp_scan = KSigmaScan(tdp_series, 8, 3.0).value();

  std::printf("Fig. 9(a): event-level CDI of vm_allocation_failed (Case 6)\n");
  std::printf("%4s %14s  %s\n", "day", "CDI(event)", "K-Sigma");
  for (int d = 0; d < kDays; ++d) {
    std::printf("%4d %14.6f  %s\n", d + 1, alloc_series[d],
                Mark(alloc_scan[d]));
  }

  std::printf("\nFig. 9(b): event-level CDI of inspect_cpu_power_tdp "
              "(Case 7)\n");
  std::printf("%4s %14s  %s\n", "day", "CDI(event)", "K-Sigma");
  for (int d = 0; d < kDays; ++d) {
    std::printf("%4d %14.6f  %s\n", d + 1, tdp_series[d], Mark(tdp_scan[d]));
  }

  const bool spike_found = alloc_scan[13] == AnomalyDirection::kSpike;
  const bool recovered = alloc_series[14] < alloc_series[13] / 3.0;
  bool dip_found = false;
  for (int d = 12; d < 17; ++d) {
    dip_found |= tdp_scan[d] == AnomalyDirection::kDip;
  }
  const bool tdp_recovers = tdp_series[17] > 0.0;
  std::printf("\nshape checks:\n");
  std::printf("  Day-14 allocation spike detected ........ %s\n",
              spike_found ? "yes" : "NO");
  std::printf("  Day-15 back to expected levels .......... %s\n",
              recovered ? "yes" : "NO");
  std::printf("  TDP dip flagged during collector bug ..... %s\n",
              dip_found ? "yes" : "NO");
  std::printf("  TDP curve recovers from Day 18 ........... %s\n",
              tdp_recovers ? "yes" : "NO");
  const bool ok = spike_found && recovered && dip_found && tdp_recovers;
  std::printf("%s\n", ok ? "REPRODUCED: both the spike and the dip are "
                           "caught, as Cases 6-7 require."
                         : "MISMATCH: see checks above.");
  return ok ? 0 : 1;
}
