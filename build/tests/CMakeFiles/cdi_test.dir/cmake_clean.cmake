file(REMOVE_RECURSE
  "CMakeFiles/cdi_test.dir/aggregate_test.cc.o"
  "CMakeFiles/cdi_test.dir/aggregate_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/baselines_test.cc.o"
  "CMakeFiles/cdi_test.dir/baselines_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/customer_indicator_test.cc.o"
  "CMakeFiles/cdi_test.dir/customer_indicator_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/drilldown_test.cc.o"
  "CMakeFiles/cdi_test.dir/drilldown_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/history_test.cc.o"
  "CMakeFiles/cdi_test.dir/history_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/indicator_test.cc.o"
  "CMakeFiles/cdi_test.dir/indicator_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/monitor_test.cc.o"
  "CMakeFiles/cdi_test.dir/monitor_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/pipeline_test.cc.o"
  "CMakeFiles/cdi_test.dir/pipeline_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/table4_golden_test.cc.o"
  "CMakeFiles/cdi_test.dir/table4_golden_test.cc.o.d"
  "CMakeFiles/cdi_test.dir/vm_cdi_test.cc.o"
  "CMakeFiles/cdi_test.dir/vm_cdi_test.cc.o.d"
  "cdi_test"
  "cdi_test.pdb"
  "cdi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
