file(REMOVE_RECURSE
  "CMakeFiles/event_test.dir/event_catalog_test.cc.o"
  "CMakeFiles/event_test.dir/event_catalog_test.cc.o.d"
  "CMakeFiles/event_test.dir/event_store_test.cc.o"
  "CMakeFiles/event_test.dir/event_store_test.cc.o.d"
  "CMakeFiles/event_test.dir/overrides_test.cc.o"
  "CMakeFiles/event_test.dir/overrides_test.cc.o.d"
  "CMakeFiles/event_test.dir/period_resolver_test.cc.o"
  "CMakeFiles/event_test.dir/period_resolver_test.cc.o.d"
  "event_test"
  "event_test.pdb"
  "event_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
