file(REMOVE_RECURSE
  "CMakeFiles/rules_test.dir/coverage_test.cc.o"
  "CMakeFiles/rules_test.dir/coverage_test.cc.o.d"
  "CMakeFiles/rules_test.dir/expression_test.cc.o"
  "CMakeFiles/rules_test.dir/expression_test.cc.o.d"
  "CMakeFiles/rules_test.dir/mining_test.cc.o"
  "CMakeFiles/rules_test.dir/mining_test.cc.o.d"
  "CMakeFiles/rules_test.dir/rule_engine_test.cc.o"
  "CMakeFiles/rules_test.dir/rule_engine_test.cc.o.d"
  "rules_test"
  "rules_test.pdb"
  "rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
