file(REMOVE_RECURSE
  "CMakeFiles/ops_test.dir/actions_test.cc.o"
  "CMakeFiles/ops_test.dir/actions_test.cc.o.d"
  "CMakeFiles/ops_test.dir/operation_platform_test.cc.o"
  "CMakeFiles/ops_test.dir/operation_platform_test.cc.o.d"
  "CMakeFiles/ops_test.dir/placement_test.cc.o"
  "CMakeFiles/ops_test.dir/placement_test.cc.o.d"
  "CMakeFiles/ops_test.dir/prioritizer_test.cc.o"
  "CMakeFiles/ops_test.dir/prioritizer_test.cc.o.d"
  "ops_test"
  "ops_test.pdb"
  "ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
