file(REMOVE_RECURSE
  "CMakeFiles/stats_test.dir/descriptive_test.cc.o"
  "CMakeFiles/stats_test.dir/descriptive_test.cc.o.d"
  "CMakeFiles/stats_test.dir/distributions_test.cc.o"
  "CMakeFiles/stats_test.dir/distributions_test.cc.o.d"
  "CMakeFiles/stats_test.dir/posthoc_test.cc.o"
  "CMakeFiles/stats_test.dir/posthoc_test.cc.o.d"
  "CMakeFiles/stats_test.dir/shapiro_wilk_test.cc.o"
  "CMakeFiles/stats_test.dir/shapiro_wilk_test.cc.o.d"
  "CMakeFiles/stats_test.dir/special_functions_test.cc.o"
  "CMakeFiles/stats_test.dir/special_functions_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats_tests_test.cc.o"
  "CMakeFiles/stats_test.dir/stats_tests_test.cc.o.d"
  "CMakeFiles/stats_test.dir/workflow_test.cc.o"
  "CMakeFiles/stats_test.dir/workflow_test.cc.o.d"
  "stats_test"
  "stats_test.pdb"
  "stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
