file(REMOVE_RECURSE
  "CMakeFiles/extract_test.dir/log_rules_test.cc.o"
  "CMakeFiles/extract_test.dir/log_rules_test.cc.o.d"
  "CMakeFiles/extract_test.dir/metric_rules_test.cc.o"
  "CMakeFiles/extract_test.dir/metric_rules_test.cc.o.d"
  "CMakeFiles/extract_test.dir/statistical_test.cc.o"
  "CMakeFiles/extract_test.dir/statistical_test.cc.o.d"
  "CMakeFiles/extract_test.dir/surge_test.cc.o"
  "CMakeFiles/extract_test.dir/surge_test.cc.o.d"
  "extract_test"
  "extract_test.pdb"
  "extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
