# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/weights_test[1]_include.cmake")
include("/root/repo/build/tests/cdi_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/anomaly_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/abtest_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
