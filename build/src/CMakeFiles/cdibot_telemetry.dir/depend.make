# Empty dependencies file for cdibot_telemetry.
# This may be replaced when dependencies are built.
