file(REMOVE_RECURSE
  "libcdibot_telemetry.a"
)
