
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/log_stream.cc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/log_stream.cc.o" "gcc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/log_stream.cc.o.d"
  "/root/repo/src/telemetry/metric_series.cc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/metric_series.cc.o" "gcc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/metric_series.cc.o.d"
  "/root/repo/src/telemetry/tickets.cc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/tickets.cc.o" "gcc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/tickets.cc.o.d"
  "/root/repo/src/telemetry/topology.cc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/topology.cc.o" "gcc" "src/CMakeFiles/cdibot_telemetry.dir/telemetry/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
