file(REMOVE_RECURSE
  "CMakeFiles/cdibot_telemetry.dir/telemetry/log_stream.cc.o"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/log_stream.cc.o.d"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/metric_series.cc.o"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/metric_series.cc.o.d"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/tickets.cc.o"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/tickets.cc.o.d"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/topology.cc.o"
  "CMakeFiles/cdibot_telemetry.dir/telemetry/topology.cc.o.d"
  "libcdibot_telemetry.a"
  "libcdibot_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
