
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/log_rules.cc" "src/CMakeFiles/cdibot_extract.dir/extract/log_rules.cc.o" "gcc" "src/CMakeFiles/cdibot_extract.dir/extract/log_rules.cc.o.d"
  "/root/repo/src/extract/metric_rules.cc" "src/CMakeFiles/cdibot_extract.dir/extract/metric_rules.cc.o" "gcc" "src/CMakeFiles/cdibot_extract.dir/extract/metric_rules.cc.o.d"
  "/root/repo/src/extract/statistical.cc" "src/CMakeFiles/cdibot_extract.dir/extract/statistical.cc.o" "gcc" "src/CMakeFiles/cdibot_extract.dir/extract/statistical.cc.o.d"
  "/root/repo/src/extract/surge.cc" "src/CMakeFiles/cdibot_extract.dir/extract/surge.cc.o" "gcc" "src/CMakeFiles/cdibot_extract.dir/extract/surge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
