file(REMOVE_RECURSE
  "CMakeFiles/cdibot_extract.dir/extract/log_rules.cc.o"
  "CMakeFiles/cdibot_extract.dir/extract/log_rules.cc.o.d"
  "CMakeFiles/cdibot_extract.dir/extract/metric_rules.cc.o"
  "CMakeFiles/cdibot_extract.dir/extract/metric_rules.cc.o.d"
  "CMakeFiles/cdibot_extract.dir/extract/statistical.cc.o"
  "CMakeFiles/cdibot_extract.dir/extract/statistical.cc.o.d"
  "CMakeFiles/cdibot_extract.dir/extract/surge.cc.o"
  "CMakeFiles/cdibot_extract.dir/extract/surge.cc.o.d"
  "libcdibot_extract.a"
  "libcdibot_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
