# Empty dependencies file for cdibot_extract.
# This may be replaced when dependencies are built.
