file(REMOVE_RECURSE
  "libcdibot_extract.a"
)
