# Empty dependencies file for cdibot_stats.
# This may be replaced when dependencies are built.
