file(REMOVE_RECURSE
  "CMakeFiles/cdibot_stats.dir/stats/descriptive.cc.o"
  "CMakeFiles/cdibot_stats.dir/stats/descriptive.cc.o.d"
  "CMakeFiles/cdibot_stats.dir/stats/distributions.cc.o"
  "CMakeFiles/cdibot_stats.dir/stats/distributions.cc.o.d"
  "CMakeFiles/cdibot_stats.dir/stats/posthoc.cc.o"
  "CMakeFiles/cdibot_stats.dir/stats/posthoc.cc.o.d"
  "CMakeFiles/cdibot_stats.dir/stats/special_functions.cc.o"
  "CMakeFiles/cdibot_stats.dir/stats/special_functions.cc.o.d"
  "CMakeFiles/cdibot_stats.dir/stats/tests.cc.o"
  "CMakeFiles/cdibot_stats.dir/stats/tests.cc.o.d"
  "CMakeFiles/cdibot_stats.dir/stats/workflow.cc.o"
  "CMakeFiles/cdibot_stats.dir/stats/workflow.cc.o.d"
  "libcdibot_stats.a"
  "libcdibot_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
