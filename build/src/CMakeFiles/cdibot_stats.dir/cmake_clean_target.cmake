file(REMOVE_RECURSE
  "libcdibot_stats.a"
)
