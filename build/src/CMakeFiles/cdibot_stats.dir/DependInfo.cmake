
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/cdibot_stats.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/cdibot_stats.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/CMakeFiles/cdibot_stats.dir/stats/distributions.cc.o" "gcc" "src/CMakeFiles/cdibot_stats.dir/stats/distributions.cc.o.d"
  "/root/repo/src/stats/posthoc.cc" "src/CMakeFiles/cdibot_stats.dir/stats/posthoc.cc.o" "gcc" "src/CMakeFiles/cdibot_stats.dir/stats/posthoc.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/CMakeFiles/cdibot_stats.dir/stats/special_functions.cc.o" "gcc" "src/CMakeFiles/cdibot_stats.dir/stats/special_functions.cc.o.d"
  "/root/repo/src/stats/tests.cc" "src/CMakeFiles/cdibot_stats.dir/stats/tests.cc.o" "gcc" "src/CMakeFiles/cdibot_stats.dir/stats/tests.cc.o.d"
  "/root/repo/src/stats/workflow.cc" "src/CMakeFiles/cdibot_stats.dir/stats/workflow.cc.o" "gcc" "src/CMakeFiles/cdibot_stats.dir/stats/workflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
