# Empty dependencies file for cdibot_storage.
# This may be replaced when dependencies are built.
