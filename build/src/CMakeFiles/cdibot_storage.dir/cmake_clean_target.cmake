file(REMOVE_RECURSE
  "libcdibot_storage.a"
)
