file(REMOVE_RECURSE
  "CMakeFiles/cdibot_storage.dir/storage/atomic_io.cc.o"
  "CMakeFiles/cdibot_storage.dir/storage/atomic_io.cc.o.d"
  "CMakeFiles/cdibot_storage.dir/storage/catalog_config.cc.o"
  "CMakeFiles/cdibot_storage.dir/storage/catalog_config.cc.o.d"
  "CMakeFiles/cdibot_storage.dir/storage/checkpoint_store.cc.o"
  "CMakeFiles/cdibot_storage.dir/storage/checkpoint_store.cc.o.d"
  "CMakeFiles/cdibot_storage.dir/storage/config_store.cc.o"
  "CMakeFiles/cdibot_storage.dir/storage/config_store.cc.o.d"
  "CMakeFiles/cdibot_storage.dir/storage/event_log.cc.o"
  "CMakeFiles/cdibot_storage.dir/storage/event_log.cc.o.d"
  "CMakeFiles/cdibot_storage.dir/storage/stream_checkpoint.cc.o"
  "CMakeFiles/cdibot_storage.dir/storage/stream_checkpoint.cc.o.d"
  "libcdibot_storage.a"
  "libcdibot_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
