
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/atomic_io.cc" "src/CMakeFiles/cdibot_storage.dir/storage/atomic_io.cc.o" "gcc" "src/CMakeFiles/cdibot_storage.dir/storage/atomic_io.cc.o.d"
  "/root/repo/src/storage/catalog_config.cc" "src/CMakeFiles/cdibot_storage.dir/storage/catalog_config.cc.o" "gcc" "src/CMakeFiles/cdibot_storage.dir/storage/catalog_config.cc.o.d"
  "/root/repo/src/storage/checkpoint_store.cc" "src/CMakeFiles/cdibot_storage.dir/storage/checkpoint_store.cc.o" "gcc" "src/CMakeFiles/cdibot_storage.dir/storage/checkpoint_store.cc.o.d"
  "/root/repo/src/storage/config_store.cc" "src/CMakeFiles/cdibot_storage.dir/storage/config_store.cc.o" "gcc" "src/CMakeFiles/cdibot_storage.dir/storage/config_store.cc.o.d"
  "/root/repo/src/storage/event_log.cc" "src/CMakeFiles/cdibot_storage.dir/storage/event_log.cc.o" "gcc" "src/CMakeFiles/cdibot_storage.dir/storage/event_log.cc.o.d"
  "/root/repo/src/storage/stream_checkpoint.cc" "src/CMakeFiles/cdibot_storage.dir/storage/stream_checkpoint.cc.o" "gcc" "src/CMakeFiles/cdibot_storage.dir/storage/stream_checkpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
