file(REMOVE_RECURSE
  "CMakeFiles/cdibot_cdi.dir/cdi/aggregate.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/aggregate.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/baselines.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/baselines.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/customer_indicator.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/customer_indicator.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/drilldown.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/drilldown.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/history.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/history.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/indicator.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/indicator.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/monitor.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/monitor.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/pipeline.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/pipeline.cc.o.d"
  "CMakeFiles/cdibot_cdi.dir/cdi/vm_cdi.cc.o"
  "CMakeFiles/cdibot_cdi.dir/cdi/vm_cdi.cc.o.d"
  "libcdibot_cdi.a"
  "libcdibot_cdi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_cdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
