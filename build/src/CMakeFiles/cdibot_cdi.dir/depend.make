# Empty dependencies file for cdibot_cdi.
# This may be replaced when dependencies are built.
