
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdi/aggregate.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/aggregate.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/aggregate.cc.o.d"
  "/root/repo/src/cdi/baselines.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/baselines.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/baselines.cc.o.d"
  "/root/repo/src/cdi/customer_indicator.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/customer_indicator.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/customer_indicator.cc.o.d"
  "/root/repo/src/cdi/drilldown.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/drilldown.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/drilldown.cc.o.d"
  "/root/repo/src/cdi/history.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/history.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/history.cc.o.d"
  "/root/repo/src/cdi/indicator.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/indicator.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/indicator.cc.o.d"
  "/root/repo/src/cdi/monitor.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/monitor.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/monitor.cc.o.d"
  "/root/repo/src/cdi/pipeline.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/pipeline.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/pipeline.cc.o.d"
  "/root/repo/src/cdi/vm_cdi.cc" "src/CMakeFiles/cdibot_cdi.dir/cdi/vm_cdi.cc.o" "gcc" "src/CMakeFiles/cdibot_cdi.dir/cdi/vm_cdi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_chaos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_weights.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
