file(REMOVE_RECURSE
  "libcdibot_cdi.a"
)
