# Empty dependencies file for cdibot_weights.
# This may be replaced when dependencies are built.
