file(REMOVE_RECURSE
  "CMakeFiles/cdibot_weights.dir/weights/ahp.cc.o"
  "CMakeFiles/cdibot_weights.dir/weights/ahp.cc.o.d"
  "CMakeFiles/cdibot_weights.dir/weights/event_weights.cc.o"
  "CMakeFiles/cdibot_weights.dir/weights/event_weights.cc.o.d"
  "libcdibot_weights.a"
  "libcdibot_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
