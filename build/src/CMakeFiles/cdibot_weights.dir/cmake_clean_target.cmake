file(REMOVE_RECURSE
  "libcdibot_weights.a"
)
