file(REMOVE_RECURSE
  "CMakeFiles/cdibot_dataflow.dir/dataflow/csv.cc.o"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/csv.cc.o.d"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/engine.cc.o"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/engine.cc.o.d"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/query.cc.o"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/query.cc.o.d"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/table.cc.o"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/table.cc.o.d"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/value.cc.o"
  "CMakeFiles/cdibot_dataflow.dir/dataflow/value.cc.o.d"
  "libcdibot_dataflow.a"
  "libcdibot_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
