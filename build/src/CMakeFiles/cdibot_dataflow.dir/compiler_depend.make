# Empty compiler generated dependencies file for cdibot_dataflow.
# This may be replaced when dependencies are built.
