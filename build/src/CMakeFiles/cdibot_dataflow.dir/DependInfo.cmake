
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/csv.cc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/csv.cc.o" "gcc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/csv.cc.o.d"
  "/root/repo/src/dataflow/engine.cc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/engine.cc.o" "gcc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/engine.cc.o.d"
  "/root/repo/src/dataflow/query.cc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/query.cc.o" "gcc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/query.cc.o.d"
  "/root/repo/src/dataflow/table.cc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/table.cc.o" "gcc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/table.cc.o.d"
  "/root/repo/src/dataflow/value.cc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/value.cc.o" "gcc" "src/CMakeFiles/cdibot_dataflow.dir/dataflow/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
