file(REMOVE_RECURSE
  "libcdibot_dataflow.a"
)
