file(REMOVE_RECURSE
  "libcdibot_anomaly.a"
)
