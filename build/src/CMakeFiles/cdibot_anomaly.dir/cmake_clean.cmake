file(REMOVE_RECURSE
  "CMakeFiles/cdibot_anomaly.dir/anomaly/dspot.cc.o"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/dspot.cc.o.d"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/evt.cc.o"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/evt.cc.o.d"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/ksigma.cc.o"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/ksigma.cc.o.d"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/root_cause.cc.o"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/root_cause.cc.o.d"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/stl.cc.o"
  "CMakeFiles/cdibot_anomaly.dir/anomaly/stl.cc.o.d"
  "libcdibot_anomaly.a"
  "libcdibot_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
