
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/dspot.cc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/dspot.cc.o" "gcc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/dspot.cc.o.d"
  "/root/repo/src/anomaly/evt.cc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/evt.cc.o" "gcc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/evt.cc.o.d"
  "/root/repo/src/anomaly/ksigma.cc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/ksigma.cc.o" "gcc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/ksigma.cc.o.d"
  "/root/repo/src/anomaly/root_cause.cc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/root_cause.cc.o" "gcc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/root_cause.cc.o.d"
  "/root/repo/src/anomaly/stl.cc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/stl.cc.o" "gcc" "src/CMakeFiles/cdibot_anomaly.dir/anomaly/stl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
