# Empty compiler generated dependencies file for cdibot_anomaly.
# This may be replaced when dependencies are built.
