
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/catalog.cc" "src/CMakeFiles/cdibot_event.dir/event/catalog.cc.o" "gcc" "src/CMakeFiles/cdibot_event.dir/event/catalog.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/cdibot_event.dir/event/event.cc.o" "gcc" "src/CMakeFiles/cdibot_event.dir/event/event.cc.o.d"
  "/root/repo/src/event/event_store.cc" "src/CMakeFiles/cdibot_event.dir/event/event_store.cc.o" "gcc" "src/CMakeFiles/cdibot_event.dir/event/event_store.cc.o.d"
  "/root/repo/src/event/overrides.cc" "src/CMakeFiles/cdibot_event.dir/event/overrides.cc.o" "gcc" "src/CMakeFiles/cdibot_event.dir/event/overrides.cc.o.d"
  "/root/repo/src/event/period_resolver.cc" "src/CMakeFiles/cdibot_event.dir/event/period_resolver.cc.o" "gcc" "src/CMakeFiles/cdibot_event.dir/event/period_resolver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
