file(REMOVE_RECURSE
  "CMakeFiles/cdibot_event.dir/event/catalog.cc.o"
  "CMakeFiles/cdibot_event.dir/event/catalog.cc.o.d"
  "CMakeFiles/cdibot_event.dir/event/event.cc.o"
  "CMakeFiles/cdibot_event.dir/event/event.cc.o.d"
  "CMakeFiles/cdibot_event.dir/event/event_store.cc.o"
  "CMakeFiles/cdibot_event.dir/event/event_store.cc.o.d"
  "CMakeFiles/cdibot_event.dir/event/overrides.cc.o"
  "CMakeFiles/cdibot_event.dir/event/overrides.cc.o.d"
  "CMakeFiles/cdibot_event.dir/event/period_resolver.cc.o"
  "CMakeFiles/cdibot_event.dir/event/period_resolver.cc.o.d"
  "libcdibot_event.a"
  "libcdibot_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
