file(REMOVE_RECURSE
  "libcdibot_event.a"
)
