# Empty dependencies file for cdibot_event.
# This may be replaced when dependencies are built.
