# Empty dependencies file for cdibot_common.
# This may be replaced when dependencies are built.
