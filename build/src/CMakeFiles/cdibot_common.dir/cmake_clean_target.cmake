file(REMOVE_RECURSE
  "libcdibot_common.a"
)
