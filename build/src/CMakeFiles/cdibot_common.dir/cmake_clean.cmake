file(REMOVE_RECURSE
  "CMakeFiles/cdibot_common.dir/common/crc32.cc.o"
  "CMakeFiles/cdibot_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/logging.cc.o"
  "CMakeFiles/cdibot_common.dir/common/logging.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/retry.cc.o"
  "CMakeFiles/cdibot_common.dir/common/retry.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/rng.cc.o"
  "CMakeFiles/cdibot_common.dir/common/rng.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/status.cc.o"
  "CMakeFiles/cdibot_common.dir/common/status.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/strings.cc.o"
  "CMakeFiles/cdibot_common.dir/common/strings.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/cdibot_common.dir/common/thread_pool.cc.o.d"
  "CMakeFiles/cdibot_common.dir/common/time.cc.o"
  "CMakeFiles/cdibot_common.dir/common/time.cc.o.d"
  "libcdibot_common.a"
  "libcdibot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
