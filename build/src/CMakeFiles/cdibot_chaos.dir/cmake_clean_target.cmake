file(REMOVE_RECURSE
  "libcdibot_chaos.a"
)
