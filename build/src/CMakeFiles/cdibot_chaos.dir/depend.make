# Empty dependencies file for cdibot_chaos.
# This may be replaced when dependencies are built.
