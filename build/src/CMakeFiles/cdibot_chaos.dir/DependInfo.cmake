
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaos/fault_injector.cc" "src/CMakeFiles/cdibot_chaos.dir/chaos/fault_injector.cc.o" "gcc" "src/CMakeFiles/cdibot_chaos.dir/chaos/fault_injector.cc.o.d"
  "/root/repo/src/chaos/fault_plan.cc" "src/CMakeFiles/cdibot_chaos.dir/chaos/fault_plan.cc.o" "gcc" "src/CMakeFiles/cdibot_chaos.dir/chaos/fault_plan.cc.o.d"
  "/root/repo/src/chaos/quarantine.cc" "src/CMakeFiles/cdibot_chaos.dir/chaos/quarantine.cc.o" "gcc" "src/CMakeFiles/cdibot_chaos.dir/chaos/quarantine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
