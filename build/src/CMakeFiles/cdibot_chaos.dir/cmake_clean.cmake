file(REMOVE_RECURSE
  "CMakeFiles/cdibot_chaos.dir/chaos/fault_injector.cc.o"
  "CMakeFiles/cdibot_chaos.dir/chaos/fault_injector.cc.o.d"
  "CMakeFiles/cdibot_chaos.dir/chaos/fault_plan.cc.o"
  "CMakeFiles/cdibot_chaos.dir/chaos/fault_plan.cc.o.d"
  "CMakeFiles/cdibot_chaos.dir/chaos/quarantine.cc.o"
  "CMakeFiles/cdibot_chaos.dir/chaos/quarantine.cc.o.d"
  "libcdibot_chaos.a"
  "libcdibot_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
