file(REMOVE_RECURSE
  "CMakeFiles/cdibot_abtest.dir/abtest/experiment.cc.o"
  "CMakeFiles/cdibot_abtest.dir/abtest/experiment.cc.o.d"
  "libcdibot_abtest.a"
  "libcdibot_abtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_abtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
