# Empty compiler generated dependencies file for cdibot_abtest.
# This may be replaced when dependencies are built.
