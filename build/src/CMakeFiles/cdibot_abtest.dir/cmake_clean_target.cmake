file(REMOVE_RECURSE
  "libcdibot_abtest.a"
)
