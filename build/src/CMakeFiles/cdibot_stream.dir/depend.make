# Empty dependencies file for cdibot_stream.
# This may be replaced when dependencies are built.
