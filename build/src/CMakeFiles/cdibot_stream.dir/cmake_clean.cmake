file(REMOVE_RECURSE
  "CMakeFiles/cdibot_stream.dir/stream/streaming_engine.cc.o"
  "CMakeFiles/cdibot_stream.dir/stream/streaming_engine.cc.o.d"
  "libcdibot_stream.a"
  "libcdibot_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
