file(REMOVE_RECURSE
  "libcdibot_stream.a"
)
