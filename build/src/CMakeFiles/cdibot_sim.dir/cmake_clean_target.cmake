file(REMOVE_RECURSE
  "libcdibot_sim.a"
)
