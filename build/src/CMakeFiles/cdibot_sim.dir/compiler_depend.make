# Empty compiler generated dependencies file for cdibot_sim.
# This may be replaced when dependencies are built.
