file(REMOVE_RECURSE
  "CMakeFiles/cdibot_sim.dir/sim/churn.cc.o"
  "CMakeFiles/cdibot_sim.dir/sim/churn.cc.o.d"
  "CMakeFiles/cdibot_sim.dir/sim/cloudbot_loop.cc.o"
  "CMakeFiles/cdibot_sim.dir/sim/cloudbot_loop.cc.o.d"
  "CMakeFiles/cdibot_sim.dir/sim/fleet.cc.o"
  "CMakeFiles/cdibot_sim.dir/sim/fleet.cc.o.d"
  "CMakeFiles/cdibot_sim.dir/sim/incidents.cc.o"
  "CMakeFiles/cdibot_sim.dir/sim/incidents.cc.o.d"
  "CMakeFiles/cdibot_sim.dir/sim/scenario.cc.o"
  "CMakeFiles/cdibot_sim.dir/sim/scenario.cc.o.d"
  "libcdibot_sim.a"
  "libcdibot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
