# Empty dependencies file for cdibot_ops.
# This may be replaced when dependencies are built.
