file(REMOVE_RECURSE
  "libcdibot_ops.a"
)
