file(REMOVE_RECURSE
  "CMakeFiles/cdibot_ops.dir/ops/actions.cc.o"
  "CMakeFiles/cdibot_ops.dir/ops/actions.cc.o.d"
  "CMakeFiles/cdibot_ops.dir/ops/operation_platform.cc.o"
  "CMakeFiles/cdibot_ops.dir/ops/operation_platform.cc.o.d"
  "CMakeFiles/cdibot_ops.dir/ops/placement.cc.o"
  "CMakeFiles/cdibot_ops.dir/ops/placement.cc.o.d"
  "CMakeFiles/cdibot_ops.dir/ops/prioritizer.cc.o"
  "CMakeFiles/cdibot_ops.dir/ops/prioritizer.cc.o.d"
  "libcdibot_ops.a"
  "libcdibot_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
