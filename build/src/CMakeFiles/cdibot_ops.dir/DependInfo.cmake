
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/actions.cc" "src/CMakeFiles/cdibot_ops.dir/ops/actions.cc.o" "gcc" "src/CMakeFiles/cdibot_ops.dir/ops/actions.cc.o.d"
  "/root/repo/src/ops/operation_platform.cc" "src/CMakeFiles/cdibot_ops.dir/ops/operation_platform.cc.o" "gcc" "src/CMakeFiles/cdibot_ops.dir/ops/operation_platform.cc.o.d"
  "/root/repo/src/ops/placement.cc" "src/CMakeFiles/cdibot_ops.dir/ops/placement.cc.o" "gcc" "src/CMakeFiles/cdibot_ops.dir/ops/placement.cc.o.d"
  "/root/repo/src/ops/prioritizer.cc" "src/CMakeFiles/cdibot_ops.dir/ops/prioritizer.cc.o" "gcc" "src/CMakeFiles/cdibot_ops.dir/ops/prioritizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_weights.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
