file(REMOVE_RECURSE
  "libcdibot_rules.a"
)
