
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/coverage.cc" "src/CMakeFiles/cdibot_rules.dir/rules/coverage.cc.o" "gcc" "src/CMakeFiles/cdibot_rules.dir/rules/coverage.cc.o.d"
  "/root/repo/src/rules/expression.cc" "src/CMakeFiles/cdibot_rules.dir/rules/expression.cc.o" "gcc" "src/CMakeFiles/cdibot_rules.dir/rules/expression.cc.o.d"
  "/root/repo/src/rules/meta_events.cc" "src/CMakeFiles/cdibot_rules.dir/rules/meta_events.cc.o" "gcc" "src/CMakeFiles/cdibot_rules.dir/rules/meta_events.cc.o.d"
  "/root/repo/src/rules/mining.cc" "src/CMakeFiles/cdibot_rules.dir/rules/mining.cc.o" "gcc" "src/CMakeFiles/cdibot_rules.dir/rules/mining.cc.o.d"
  "/root/repo/src/rules/rule_engine.cc" "src/CMakeFiles/cdibot_rules.dir/rules/rule_engine.cc.o" "gcc" "src/CMakeFiles/cdibot_rules.dir/rules/rule_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
