file(REMOVE_RECURSE
  "CMakeFiles/cdibot_rules.dir/rules/coverage.cc.o"
  "CMakeFiles/cdibot_rules.dir/rules/coverage.cc.o.d"
  "CMakeFiles/cdibot_rules.dir/rules/expression.cc.o"
  "CMakeFiles/cdibot_rules.dir/rules/expression.cc.o.d"
  "CMakeFiles/cdibot_rules.dir/rules/meta_events.cc.o"
  "CMakeFiles/cdibot_rules.dir/rules/meta_events.cc.o.d"
  "CMakeFiles/cdibot_rules.dir/rules/mining.cc.o"
  "CMakeFiles/cdibot_rules.dir/rules/mining.cc.o.d"
  "CMakeFiles/cdibot_rules.dir/rules/rule_engine.cc.o"
  "CMakeFiles/cdibot_rules.dir/rules/rule_engine.cc.o.d"
  "libcdibot_rules.a"
  "libcdibot_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
