# Empty compiler generated dependencies file for cdibot_rules.
# This may be replaced when dependencies are built.
