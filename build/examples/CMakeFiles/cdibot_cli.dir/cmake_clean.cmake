file(REMOVE_RECURSE
  "CMakeFiles/cdibot_cli.dir/cdibot_cli.cpp.o"
  "CMakeFiles/cdibot_cli.dir/cdibot_cli.cpp.o.d"
  "cdibot_cli"
  "cdibot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdibot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
