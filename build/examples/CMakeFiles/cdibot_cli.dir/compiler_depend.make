# Empty compiler generated dependencies file for cdibot_cli.
# This may be replaced when dependencies are built.
