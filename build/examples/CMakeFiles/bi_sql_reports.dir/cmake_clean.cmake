file(REMOVE_RECURSE
  "CMakeFiles/bi_sql_reports.dir/bi_sql_reports.cpp.o"
  "CMakeFiles/bi_sql_reports.dir/bi_sql_reports.cpp.o.d"
  "bi_sql_reports"
  "bi_sql_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bi_sql_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
