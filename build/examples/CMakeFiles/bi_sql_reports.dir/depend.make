# Empty dependencies file for bi_sql_reports.
# This may be replaced when dependencies are built.
