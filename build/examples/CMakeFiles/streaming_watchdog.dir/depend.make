# Empty dependencies file for streaming_watchdog.
# This may be replaced when dependencies are built.
