file(REMOVE_RECURSE
  "CMakeFiles/streaming_watchdog.dir/streaming_watchdog.cpp.o"
  "CMakeFiles/streaming_watchdog.dir/streaming_watchdog.cpp.o.d"
  "streaming_watchdog"
  "streaming_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
