# Empty dependencies file for stability_watchdog.
# This may be replaced when dependencies are built.
