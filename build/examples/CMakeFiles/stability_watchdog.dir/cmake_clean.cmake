file(REMOVE_RECURSE
  "CMakeFiles/stability_watchdog.dir/stability_watchdog.cpp.o"
  "CMakeFiles/stability_watchdog.dir/stability_watchdog.cpp.o.d"
  "stability_watchdog"
  "stability_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
