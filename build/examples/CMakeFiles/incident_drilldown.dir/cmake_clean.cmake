file(REMOVE_RECURSE
  "CMakeFiles/incident_drilldown.dir/incident_drilldown.cpp.o"
  "CMakeFiles/incident_drilldown.dir/incident_drilldown.cpp.o.d"
  "incident_drilldown"
  "incident_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
