# Empty compiler generated dependencies file for incident_drilldown.
# This may be replaced when dependencies are built.
