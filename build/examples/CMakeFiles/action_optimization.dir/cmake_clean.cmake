file(REMOVE_RECURSE
  "CMakeFiles/action_optimization.dir/action_optimization.cpp.o"
  "CMakeFiles/action_optimization.dir/action_optimization.cpp.o.d"
  "action_optimization"
  "action_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
