# Empty compiler generated dependencies file for action_optimization.
# This may be replaced when dependencies are built.
