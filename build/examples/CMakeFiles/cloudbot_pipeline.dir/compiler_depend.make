# Empty compiler generated dependencies file for cloudbot_pipeline.
# This may be replaced when dependencies are built.
