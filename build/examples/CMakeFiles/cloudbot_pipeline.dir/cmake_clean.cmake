file(REMOVE_RECURSE
  "CMakeFiles/cloudbot_pipeline.dir/cloudbot_pipeline.cpp.o"
  "CMakeFiles/cloudbot_pipeline.dir/cloudbot_pipeline.cpp.o.d"
  "cloudbot_pipeline"
  "cloudbot_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudbot_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
