# Empty dependencies file for chaos_overhead.
# This may be replaced when dependencies are built.
