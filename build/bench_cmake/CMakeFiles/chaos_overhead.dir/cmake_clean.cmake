file(REMOVE_RECURSE
  "../bench/chaos_overhead"
  "../bench/chaos_overhead.pdb"
  "CMakeFiles/chaos_overhead.dir/chaos_overhead.cc.o"
  "CMakeFiles/chaos_overhead.dir/chaos_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
