file(REMOVE_RECURSE
  "../bench/fig6_annual_trend"
  "../bench/fig6_annual_trend.pdb"
  "CMakeFiles/fig6_annual_trend.dir/fig6_annual_trend.cc.o"
  "CMakeFiles/fig6_annual_trend.dir/fig6_annual_trend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_annual_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
