# Empty dependencies file for fig6_annual_trend.
# This may be replaced when dependencies are built.
