file(REMOVE_RECURSE
  "../bench/fig2_ticket_distribution"
  "../bench/fig2_ticket_distribution.pdb"
  "CMakeFiles/fig2_ticket_distribution.dir/fig2_ticket_distribution.cc.o"
  "CMakeFiles/fig2_ticket_distribution.dir/fig2_ticket_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ticket_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
