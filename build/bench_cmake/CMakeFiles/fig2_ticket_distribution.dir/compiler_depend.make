# Empty compiler generated dependencies file for fig2_ticket_distribution.
# This may be replaced when dependencies are built.
