file(REMOVE_RECURSE
  "../bench/ablation_sweep"
  "../bench/ablation_sweep.pdb"
  "CMakeFiles/ablation_sweep.dir/ablation_sweep.cc.o"
  "CMakeFiles/ablation_sweep.dir/ablation_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
