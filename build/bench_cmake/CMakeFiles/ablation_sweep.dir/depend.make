# Empty dependencies file for ablation_sweep.
# This may be replaced when dependencies are built.
