file(REMOVE_RECURSE
  "../bench/ablation_automation"
  "../bench/ablation_automation.pdb"
  "CMakeFiles/ablation_automation.dir/ablation_automation.cc.o"
  "CMakeFiles/ablation_automation.dir/ablation_automation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
