file(REMOVE_RECURSE
  "../bench/ablation_aggregation"
  "../bench/ablation_aggregation.pdb"
  "CMakeFiles/ablation_aggregation.dir/ablation_aggregation.cc.o"
  "CMakeFiles/ablation_aggregation.dir/ablation_aggregation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
