# Empty compiler generated dependencies file for fig5_incident_comparison.
# This may be replaced when dependencies are built.
