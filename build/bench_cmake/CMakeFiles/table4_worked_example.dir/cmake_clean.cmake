file(REMOVE_RECURSE
  "../bench/table4_worked_example"
  "../bench/table4_worked_example.pdb"
  "CMakeFiles/table4_worked_example.dir/table4_worked_example.cc.o"
  "CMakeFiles/table4_worked_example.dir/table4_worked_example.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_worked_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
