# Empty dependencies file for table4_worked_example.
# This may be replaced when dependencies are built.
