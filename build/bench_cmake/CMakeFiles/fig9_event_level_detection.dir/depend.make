# Empty dependencies file for fig9_event_level_detection.
# This may be replaced when dependencies are built.
