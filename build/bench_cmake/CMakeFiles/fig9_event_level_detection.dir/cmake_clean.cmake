file(REMOVE_RECURSE
  "../bench/fig9_event_level_detection"
  "../bench/fig9_event_level_detection.pdb"
  "CMakeFiles/fig9_event_level_detection.dir/fig9_event_level_detection.cc.o"
  "CMakeFiles/fig9_event_level_detection.dir/fig9_event_level_detection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_event_level_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
