# Empty dependencies file for fig11_table5_abtest.
# This may be replaced when dependencies are built.
