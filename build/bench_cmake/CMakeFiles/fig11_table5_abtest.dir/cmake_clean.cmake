file(REMOVE_RECURSE
  "../bench/fig11_table5_abtest"
  "../bench/fig11_table5_abtest.pdb"
  "CMakeFiles/fig11_table5_abtest.dir/fig11_table5_abtest.cc.o"
  "CMakeFiles/fig11_table5_abtest.dir/fig11_table5_abtest.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_table5_abtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
