file(REMOVE_RECURSE
  "../bench/fig8_architecture_comparison"
  "../bench/fig8_architecture_comparison.pdb"
  "CMakeFiles/fig8_architecture_comparison.dir/fig8_architecture_comparison.cc.o"
  "CMakeFiles/fig8_architecture_comparison.dir/fig8_architecture_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_architecture_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
