file(REMOVE_RECURSE
  "../bench/impl_core_throughput"
  "../bench/impl_core_throughput.pdb"
  "CMakeFiles/impl_core_throughput.dir/impl_core_throughput.cc.o"
  "CMakeFiles/impl_core_throughput.dir/impl_core_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_core_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
