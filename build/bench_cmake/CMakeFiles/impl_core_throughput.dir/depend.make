# Empty dependencies file for impl_core_throughput.
# This may be replaced when dependencies are built.
