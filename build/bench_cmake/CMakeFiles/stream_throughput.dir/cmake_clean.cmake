file(REMOVE_RECURSE
  "../bench/stream_throughput"
  "../bench/stream_throughput.pdb"
  "CMakeFiles/stream_throughput.dir/stream_throughput.cc.o"
  "CMakeFiles/stream_throughput.dir/stream_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
