
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/stream_throughput.cc" "bench_cmake/CMakeFiles/stream_throughput.dir/stream_throughput.cc.o" "gcc" "bench_cmake/CMakeFiles/stream_throughput.dir/stream_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdibot_abtest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_cdi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_chaos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_weights.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cdibot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
