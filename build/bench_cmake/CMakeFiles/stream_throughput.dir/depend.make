# Empty dependencies file for stream_throughput.
# This may be replaced when dependencies are built.
