file(REMOVE_RECURSE
  "../bench/fig3_event_period"
  "../bench/fig3_event_period.pdb"
  "CMakeFiles/fig3_event_period.dir/fig3_event_period.cc.o"
  "CMakeFiles/fig3_event_period.dir/fig3_event_period.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_event_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
