# Empty compiler generated dependencies file for fig3_event_period.
# This may be replaced when dependencies are built.
