#!/usr/bin/env bash
# Tier-1 gate: full build + ctest, then the chaos differential/recovery
# suite on its own (the robustness gate), then the observability stage
# (obs unit tests + a disabled-instrumentation overhead gate), then an
# ASan/UBSan pass over the concurrency-heavy and fault-handling tests
# (thread pool, streaming engine, chaos suite, crash-safe storage, obs)
# and a TSan pass over the lock-free metrics/tracer hammering tests, where
# memory and ordering bugs actually live. Run from the repo root:
#
#   scripts/check.sh                 # everything
#   SKIP_SAN=1 scripts/check.sh      # skip ASan/UBSan + TSan stages
#   SKIP_CHAOS=1 scripts/check.sh    # skip the standalone chaos stage
#   SKIP_OBS=1 scripts/check.sh      # skip the observability stage
#   SKIP_PERF=1 scripts/check.sh     # skip the throughput-regression stage
#   SKIP_OVERLOAD=1 scripts/check.sh # skip the standalone overload stage
#   SKIP_SHARD=1 scripts/check.sh    # skip the standalone shard stage
#   SKIP_SOCKET=1 scripts/check.sh   # skip the standalone socket stage
#   SKIP_OBSFLEET=1 scripts/check.sh # skip the fleet-observability stage
#   SKIP_SERVE=1 scripts/check.sh    # skip the query-serving stage
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${SKIP_CHAOS:-0}" == "1" ]]; then
  echo "== chaos suite skipped (SKIP_CHAOS=1) =="
else
  # Redundant with ctest above but isolated on purpose: a chaos failure
  # should be reported as "the pipeline breaks under fault X", not lost in
  # a thousand-test run. This is the stage CI gates robustness PRs on.
  echo "== chaos: fault-injection differential + recovery =="
  ./build/tests/chaos_test
fi

if [[ "${SKIP_OVERLOAD:-0}" == "1" ]]; then
  echo "== overload stage skipped (SKIP_OVERLOAD=1) =="
else
  # Same isolation rationale as the chaos stage: "the pipeline sheds the
  # wrong class under surge" or "the breaker never recovers" must fail
  # loudly by name. flow_test covers the queue/breaker/watchdog units;
  # overload_test drives the integrated pipeline through surge bursts,
  # flapping checkpoint sinks, and watchdog-led restores, and pins the
  # shed-free differential (flow path bit-identical to direct ingest
  # across 24 seeds). The surge tests assert their own RSS ceiling via
  # getrusage, so a queue that stops bounding memory fails here too.
  echo "== overload: flow-control units + surge/breaker/watchdog suite =="
  ./build/tests/flow_test
  ./build/tests/overload_test
fi

if [[ "${SKIP_SHARD:-0}" == "1" ]]; then
  echo "== shard stage skipped (SKIP_SHARD=1) =="
else
  # The sharded-equivalence gate: scatter/gather over N shard workers must
  # be BIT-identical to the single-node engines (24 seeds x N in {1,2,4,7},
  # including a mid-day rebalance and an injected shard failure), the
  # partial-merge algebra the gather relies on must hold, and the
  # coordinator's degraded/recovery semantics must match the documented
  # failure model. A wrong-numbers bug here is silent corruption at fleet
  # scale, so it fails loudly by name like the chaos stage.
  echo "== shard: partial-merge algebra + coordinator + equivalence =="
  ./build/tests/shard_test
fi

if [[ "${SKIP_SOCKET:-0}" == "1" ]]; then
  echo "== socket stage skipped (SKIP_SOCKET=1) =="
else
  # The socket-transport gate: wire framing + transport semantics + the
  # decoder fuzz corpus (shard_socket_test), then the equivalence suite
  # over real Unix sockets and real shard_worker child processes — every
  # run of the hostile-network arm tears frames, flips bits, resets
  # connections mid-frame, and kill -9s a worker mid-day, and the gather
  # must STILL be bit-identical to single-node. A failure here means the
  # session layer (reconnect, outbox replay, worker dedup) can corrupt
  # numbers under network faults, so it fails loudly by name.
  echo "== socket: framing/transport units + decoder fuzz corpus =="
  ./build/tests/shard_socket_test

  echo "== socket: equivalence over sockets + processes + network chaos =="
  ./build/tests/shard_socket_equivalence_test
fi

if [[ "${SKIP_OBSFLEET:-0}" == "1" ]]; then
  echo "== fleet-observability stage skipped (SKIP_OBSFLEET=1) =="
else
  # The fleet-observability gate: obs scatter/gather over real shard_worker
  # child processes. Fleet statusz counters must equal the sum of the
  # per-shard rows EXACTLY (bucket-exact histogram merge, no quantile
  # re-estimation), worker RPC spans must land in the merged Chrome trace
  # under the coordinator's trace ids, spans must drain exactly once across
  # pulls, and a worker kill -9'd mid-day must drop out of the fleet view
  # and rejoin after recovery. Wrong numbers here mean the fleet dashboard
  # lies, so it fails loudly by name.
  echo "== obsfleet: fleet statusz + merged trace over worker processes =="
  ./build/tests/fleet_obs_test
fi

if [[ "${SKIP_SERVE:-0}" == "1" ]]; then
  echo "== serve stage skipped (SKIP_SERVE=1) =="
else
  # The query-serving gate: serving-layer units (canonical key, ARC cache,
  # cube reuse, heatmap math, facade, admission) plus the differential
  # suite — cache/cube ON must be BIT-identical to cache/cube OFF over 24
  # adversarial seeds, across watermark advances, churn, and a mid-day
  # shard rebalance. A wrong-numbers bug here means the dashboard serves
  # stale or corrupt CDI, so it fails loudly by name. Then the closed-loop
  # bench: at the largest client arm, cached p99 must sit >= 10x below the
  # cold (cache/cube off, full recompute) p99 — the layer's whole reason
  # to exist.
  echo "== serve: serving-layer units + heatmaps + admission =="
  ./build/tests/serve_test

  echo "== serve: cache-on == cache-off differential (24 seeds) =="
  ./build/tests/serve_equivalence_test

  echo "== serve: closed-loop p99 separation (cached vs cold) =="
  ./build/bench/query_serving --benchmark_min_time=0.05 >/dev/null 2>&1
  python3 - <<'EOF_SERVE'
import json, sys
runs = {b["name"]: b for b in
        json.load(open("BENCH_query_serving.json"))["benchmarks"]}
def p99(prefix):
    arms = {n: b for n, b in runs.items() if n.startswith(prefix)}
    name = max(arms, key=lambda n: arms[n].get("clients", 0))
    return arms[name]["p99_us"], name
cached, cname = p99("BM_QueryServingCached")
cold, fname = p99("BM_QueryServingCold")
ratio = cold / cached if cached > 0 else float("inf")
print(f"   {cname}: p99 {cached:.3f}us; {fname}: p99 {cold:.3f}us "
      f"({ratio:.0f}x separation)")
if ratio < 10.0:
    print(f"FAIL: cached p99 only {ratio:.1f}x below cold p99 (need >= 10x)")
    sys.exit(1)
EOF_SERVE
  rm -f BENCH_query_serving.json
fi

if [[ "${SKIP_OBS:-0}" == "1" ]]; then
  echo "== observability stage skipped (SKIP_OBS=1) =="
else
  # The metrics/tracing layer claims "near-zero overhead when idle"; hold
  # it to that. BM_DisabledInjector runs the full validation pipeline with
  # chaos and tracing off — i.e. every instrumented call site taking its
  # disabled branch — and must stay within noise of BM_CopyPlusManifest,
  # the uninstrumented copy+bookkeeping baseline. Typical overhead is < 3%;
  # the 1.15 ratio gate is a flake guard (CPU time, not wall time, so a
  # noisy-neighbor core doesn't fail the build), catching only real
  # regressions like a metric added to a per-event hot loop.
  echo "== obs: unit tests =="
  ./build/tests/obs_test

  echo "== obs: disabled-instrumentation overhead gate =="
  ./build/bench/chaos_overhead \
      --benchmark_filter='BM_CopyPlusManifest|BM_DisabledInjector' \
      --benchmark_min_time=0.2 >/dev/null 2>&1
  RATIO="$(python3 - <<'EOF'
import json
runs = {b["name"]: b["cpu_ns_per_iter"]
        for b in json.load(open("BENCH_chaos_overhead.json"))["benchmarks"]}
base = next(v for k, v in runs.items() if k.startswith("BM_CopyPlusManifest"))
instr = next(v for k, v in runs.items() if k.startswith("BM_DisabledInjector"))
print(f"{instr / base:.3f}")
EOF
)"
  echo "   disabled-instrumentation / baseline cpu ratio: ${RATIO}"
  awk -v r="$RATIO" 'BEGIN { exit !(r <= 1.15) }' || {
    echo "FAIL: disabled observability overhead ratio ${RATIO} > 1.15"
    exit 1
  }
fi

if [[ "${SKIP_PERF:-0}" == "1" ]]; then
  echo "== perf stage skipped (SKIP_PERF=1) =="
else
  # Throughput-regression gate: both end-to-end benches against the
  # committed baseline (bench/baseline.json, refreshed whenever a PR
  # legitimately moves the numbers). Each benchmark's items_per_second
  # must stay >= 0.85x its baseline — loose enough for shared-runner
  # noise, tight enough that an accidental per-event allocation or a
  # quadratic sneaking into the daily job fails the build rather than
  # landing silently.
  echo "== perf: core + streaming throughput vs bench/baseline.json =="
  ./build/bench/impl_core_throughput --benchmark_min_time=0.2 >/dev/null 2>&1
  ./build/bench/stream_throughput --benchmark_min_time=0.2 >/dev/null 2>&1
  python3 - <<'EOF'
import json, sys
baseline = json.load(open("bench/baseline.json"))
current = {}
for f in ["BENCH_impl_core_throughput.json", "BENCH_stream_throughput.json"]:
    for b in json.load(open(f))["benchmarks"]:
        if "items_per_second" in b:
            current[b["name"]] = b["items_per_second"]
failed = False
for name, base in sorted(baseline.items()):
    now = current.get(name)
    if now is None:
        print(f"FAIL: benchmark {name} is in the baseline but did not run")
        failed = True
        continue
    ratio = now / base
    flag = "" if ratio >= 0.85 else "  <-- FAIL (< 0.85x baseline)"
    print(f"   {name}: {now:,.0f} vs {base:,.0f} items/s ({ratio:.2f}x){flag}")
    failed |= ratio < 0.85
sys.exit(1 if failed else 0)
EOF
  rm -f BENCH_impl_core_throughput.json BENCH_stream_throughput.json
fi

if [[ "${SKIP_SAN:-0}" == "1" ]]; then
  echo "== sanitizers skipped (SKIP_SAN=1) =="
  exit 0
fi

echo "== asan+ubsan: build =="
cmake -B build-asan -S . -DCDIBOT_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target common_test stream_test chaos_test storage_test obs_test \
           flow_test overload_test shard_test shard_socket_test \
           shard_socket_equivalence_test fleet_obs_test serve_test \
           serve_equivalence_test

echo "== asan+ubsan: thread pool + retry + streaming engine =="
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"
./build-asan/tests/common_test --gtest_filter='ThreadPool*:Retry*'
./build-asan/tests/stream_test

echo "== asan+ubsan: chaos + crash-safe storage + observability =="
./build-asan/tests/chaos_test
./build-asan/tests/storage_test
./build-asan/tests/obs_test

echo "== asan+ubsan: flow control + surge preset (in-test RSS ceiling) =="
./build-asan/tests/flow_test
./build-asan/tests/overload_test --gtest_filter='*SurgeOverload*:*Flapping*'

echo "== asan+ubsan: shard coordinator + wire codecs + failure/recovery =="
./build-asan/tests/shard_test --gtest_filter='-Seeds/*'
./build-asan/tests/shard_test \
    --gtest_filter='Seeds/ShardEquivalenceTest.FailureAndRecoveryPreserveBitIdentity/*'

echo "== asan+ubsan: socket framing/transport units + decoder fuzz corpus =="
# The fuzz corpus (every truncation + single-byte corruption of every frame
# kind) gets its memory-safety teeth from this stage: any decoder overread
# is an ASan failure, any signed overflow a UBSan one. The equivalence arm
# runs one representative hostile-network seed per shard count — the full
# sweep runs unsanitized in the socket stage above.
./build-asan/tests/shard_socket_test
./build-asan/tests/shard_socket_equivalence_test \
    --gtest_filter='Seeds/SocketShardEquivalenceTest.ProcessWorkersKill9UnderHostileNetwork/7'

echo "== asan+ubsan: serving layer + one differential seed =="
# The ARC cache moves shared_ptr payloads between resident and ghost
# lists and the cube rebinds snapshot storage on every refresh; any
# use-after-demote or overread in the row fold is an ASan failure here.
# One engine-arm differential seed rides along; the full 24-seed sweep
# runs unsanitized in the serve stage above.
./build-asan/tests/serve_test
./build-asan/tests/serve_equivalence_test \
    --gtest_filter='Seeds/ServeEquivalenceTest.EngineCacheOnMatchesCacheOff/7'

echo "== asan+ubsan: fleet obs scatter/gather over worker processes =="
# The obs-snapshot codec moves raw histogram buckets and drained spans
# across the wire; any overread in the decode or the bucket merge is an
# ASan failure here. Includes the kill-9 rejoin scenario.
./build-asan/tests/fleet_obs_test

if [[ "${SKIP_OBS:-0}" == "1" ]]; then
  echo "== tsan skipped (SKIP_OBS=1) =="
else
  # The whole point of the sharded counters / per-thread span buffers is
  # safe unsynchronized use; the obs_test hammering tests are written to
  # race if the implementation does. TSan is the referee.
  echo "== tsan: build =="
  cmake -B build-tsan -S . -DCDIBOT_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target obs_test flow_test shard_test shard_socket_test fleet_obs_test \
             serve_test

  echo "== tsan: concurrent metrics + tracer hammering =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test \
      --gtest_filter='*Concurrent*:*Hammer*:ObsTracer*'

  # The backpressure queue is the one new lock-based hot path: producers,
  # consumers, and a watermark-flipping reader all contend on it. The
  # Concurrent suite is written to race if the implementation does.
  echo "== tsan: backpressure queue producer/consumer hammering =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/flow_test \
      --gtest_filter='*Concurrent*'

  # Concurrent gathers race ingest, rebalance, shard failure and recovery:
  # the coordinator's shared/exclusive topology locking plus per-handle
  # channel serialization is exactly the kind of layered locking TSan
  # referees. The tests are written to race if the implementation does.
  echo "== tsan: shard coordinator gather/rebalance/failure racing =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/shard_test \
      --gtest_filter='*Concurrent*'

  # Close-while-blocked-in-Recv under concurrent Send/Close, for both the
  # in-process channel and the socket transport: the drain-then-Unavailable
  # contract involves a closer thread racing a blocked receiver, which is
  # precisely the ordering TSan referees.
  # Concurrent Submits race the worker pool, the ARC cache's single
  # mutex, and the cube refresh lock; the ConcurrentSubmitsAllResolve
  # hammer is written to race if the layering does.
  echo "== tsan: query server submit/worker/cache racing =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/serve_test \
      --gtest_filter='*Concurrent*'

  echo "== tsan: transport close-while-blocked-in-Recv racing =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/shard_socket_test \
      --gtest_filter='*Concurrent*'

  # Obs pulls race gathers, shard failure, and recovery on a live fleet:
  # the pull walks the same per-handle channels the gather serializes on
  # while the registry and tracer keep mutating underneath. The test is
  # written to race if the snapshot path does.
  echo "== tsan: fleet obs pulls racing gathers + failure/recovery =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/fleet_obs_test \
      --gtest_filter='*Concurrent*'
fi

echo "== all checks passed =="
