#!/usr/bin/env bash
# Tier-1 gate: full build + ctest, then an ASan/UBSan pass over the
# concurrency-heavy tests (thread pool, streaming engine, and the
# stream-vs-batch differential suite), where memory and ordering bugs
# actually live. Run from the repo root:
#
#   scripts/check.sh            # everything
#   SKIP_SAN=1 scripts/check.sh # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${SKIP_SAN:-0}" == "1" ]]; then
  echo "== sanitizers skipped (SKIP_SAN=1) =="
  exit 0
fi

echo "== asan+ubsan: build =="
cmake -B build-asan -S . -DCDIBOT_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" --target common_test stream_test

echo "== asan+ubsan: thread pool + streaming engine =="
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"
./build-asan/tests/common_test --gtest_filter='ThreadPool*'
./build-asan/tests/stream_test

echo "== all checks passed =="
