#!/usr/bin/env bash
# Tier-1 gate: full build + ctest, then the chaos differential/recovery
# suite on its own (the robustness gate), then an ASan/UBSan pass over the
# concurrency-heavy and fault-handling tests (thread pool, streaming
# engine, chaos suite, crash-safe storage), where memory and ordering bugs
# actually live. Run from the repo root:
#
#   scripts/check.sh              # everything
#   SKIP_SAN=1 scripts/check.sh   # tier-1 + chaos only
#   SKIP_CHAOS=1 scripts/check.sh # tier-1 + sanitizers only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${SKIP_CHAOS:-0}" == "1" ]]; then
  echo "== chaos suite skipped (SKIP_CHAOS=1) =="
else
  # Redundant with ctest above but isolated on purpose: a chaos failure
  # should be reported as "the pipeline breaks under fault X", not lost in
  # a thousand-test run. This is the stage CI gates robustness PRs on.
  echo "== chaos: fault-injection differential + recovery =="
  ./build/tests/chaos_test
fi

if [[ "${SKIP_SAN:-0}" == "1" ]]; then
  echo "== sanitizers skipped (SKIP_SAN=1) =="
  exit 0
fi

echo "== asan+ubsan: build =="
cmake -B build-asan -S . -DCDIBOT_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target common_test stream_test chaos_test storage_test

echo "== asan+ubsan: thread pool + retry + streaming engine =="
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"
./build-asan/tests/common_test --gtest_filter='ThreadPool*:Retry*'
./build-asan/tests/stream_test

echo "== asan+ubsan: chaos + crash-safe storage =="
./build-asan/tests/chaos_test
./build-asan/tests/storage_test

echo "== all checks passed =="
