// BI-layer walkthrough (Sec. V + Sec. VIII-B): run the daily CDI job on a
// simulated fleet, register the two result tables with the SQL query
// engine, answer the drill-down questions a stability engineer would ask,
// export a report to CSV, and compute the Customer-Perspective Indicator
// to show how much damage the customer never sees.
#include <cstdio>

#include "cdi/customer_indicator.h"
#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "dataflow/csv.h"
#include "dataflow/query.h"
#include "event/period_resolver.h"
#include "sim/incidents.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(99);
  FaultInjector injector(&catalog, &rng);
  EventLog log;

  FleetSpec fspec;
  fspec.regions = 2;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 6;
  const Fleet fleet = Fleet::Build(fspec).value();

  const TimePoint day_start = TimePoint::Parse("2026-07-06 00:00").value();
  const Interval day(day_start, day_start + Duration::Days(1));
  (void)injector.InjectDay(fleet, day_start, BaselineRates().Scaled(8.0),
                           &log);
  (void)InjectAllocationBug(fleet, "r1-az0-c0", day_start, 0.4, &injector,
                            &log, &rng);

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230},
       {"vm_allocation_failed", 140}, {"api_error", 90}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();

  ThreadPool pool(8);
  DailyCdiJob job(&log, &catalog, &weights,
                  {.pool = &pool, .min_parallel_rows = 1});
  auto result = job.Run(fleet.ServiceInfos(day).value(), day);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // --- Register the two Sec.-V tables with the BI engine --------------------
  dataflow::QueryEngine bi({.pool = &pool, .min_parallel_rows = 1});
  bi.RegisterTable("vm_cdi", result->ToVmTable());
  bi.RegisterTable("event_cdi", result->ToEventTable());

  const char* queries[] = {
      // Eq.-4 re-aggregation by AZ.
      "SELECT az, WAVG(cdi_p, service_minutes) AS cdi_p, "
      "WAVG(cdi_u, service_minutes) AS cdi_u, COUNT(*) AS vms "
      "FROM vm_cdi GROUP BY az ORDER BY cdi_p DESC",
      // Worst VMs by performance damage.
      "SELECT vm_id, cluster, cdi_p FROM vm_cdi "
      "WHERE cdi_p > 0 ORDER BY cdi_p DESC LIMIT 5",
      // Event-level drill-down: total damage minutes per event.
      "SELECT event, SUM(damage_minutes) AS damage, COUNT(*) AS vms "
      "FROM event_cdi GROUP BY event ORDER BY damage DESC LIMIT 6",
  };
  for (const char* sql : queries) {
    std::printf("\nSQL> %s\n", sql);
    auto table = bi.Execute(sql);
    if (!table.ok()) {
      std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", table->ToPrettyString(10).c_str());
  }

  // --- CSV export (the downstream-report path) -------------------------------
  const std::string report_path = "/tmp/cdibot_az_report.csv";
  auto az_report = bi.Execute(
      "SELECT az, WAVG(cdi_p, service_minutes) AS cdi_p FROM vm_cdi "
      "GROUP BY az ORDER BY az");
  if (!az_report.ok() ||
      !dataflow::WriteCsvFile(*az_report, report_path).ok()) {
    std::fprintf(stderr, "report export failed\n");
    return 1;
  }
  std::printf("\nwrote %zu-row AZ report to %s\n", az_report->num_rows(),
              report_path.c_str());

  // --- Customer-Perspective Indicator (Sec. VIII-B) --------------------------
  const CustomerEventFilter filter = CustomerEventFilter::BuiltIn();
  const PeriodResolver resolver(&catalog);
  CdiAccumulator internal_p, customer_p;
  for (const VmCdiRecord& rec : result->per_vm) {
    auto raw = log.SearchTarget(day, rec.vm_id);
    auto resolved = resolver.Resolve(std::move(raw), day);
    if (!resolved.ok()) return 1;
    auto cmp = CompareCdiAndCpi(*resolved, weights, filter, day);
    if (!cmp.ok()) return 1;
    internal_p.Add(day.length(), cmp->internal.performance);
    customer_p.Add(day.length(), cmp->customer.performance);
  }
  std::printf("\nCustomer-Perspective Indicator (performance):\n");
  std::printf("  internal CDI-P : %.6f\n", internal_p.Value());
  std::printf("  customer CPI-P : %.6f\n", customer_p.Value());
  std::printf("  hidden damage  : %.6f (%.0f%% of internal) — issues like "
              "vm_allocation_failed\n  are detected and fixed before the "
              "customer ever observes them.\n",
              internal_p.Value() - customer_p.Value(),
              100.0 * (internal_p.Value() - customer_p.Value()) /
                  internal_p.Value());
  return 0;
}
