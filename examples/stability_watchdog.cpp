// The stability engineer's daily loop (Sec. VI-A + VI-C + Sec. II-F2):
// run 30 simulated days through the CDI pipeline; the watchdog maintains
// the fleet trend (CdiHistory), watches every event-level drill-down curve
// for spikes and dips with root-cause localization (CdiMonitor), and the
// surge monitor guards against event floods that may indicate batch missed
// operations. Scripted anomalies: a Case-6 allocation bug on day 14, a
// Case-7 collector outage days 20-23, and a packet_loss flood on day 26.
#include <cstdio>

#include "cdi/history.h"
#include "cdi/monitor.h"
#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "extract/surge.h"
#include "sim/incidents.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(30);
  FaultInjector injector(&catalog, &rng);

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  fspec.hybrid_fraction = 0.5;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230},
       {"vm_allocation_failed", 140}, {"inspect_cpu_power_tdp", 30}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);

  auto monitor = CdiMonitor::Create().value();
  auto surge = SurgeDetector::Create().value();
  CdiHistory history;

  const TimePoint start = TimePoint::Parse("2026-06-01 00:00").value();
  std::printf("30-day stability watch over %zu VMs\n\n", fleet.num_vms());
  for (int d = 0; d < 30; ++d) {
    const TimePoint day_start = start + Duration::Days(d);
    const Interval day(day_start, day_start + Duration::Days(1));
    EventLog log;
    FaultRates rates = BaselineRates().Scaled(6.0);
    if (d == 26) rates.episodes_per_vm_day["packet_loss"] *= 30.0;
    (void)injector.InjectDay(fleet, day_start, rates, &log);
    if (d == 13) {
      (void)InjectAllocationBug(fleet, "r0-az0-c0", day_start, 0.6,
                                &injector, &log, &rng);
    }
    const double tdp_rate = (d >= 19 && d < 23) ? 0.0 : 0.5;
    (void)InjectTdpMonitoring(fleet, day_start, tdp_rate, &injector, &log);

    DailyCdiJob job(&log, &catalog, &weights,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    (void)history.Append(day_start, result->fleet);

    auto problems = monitor.IngestDay(day_start, *result);
    if (!problems.ok()) return 1;
    for (const PotentialProblem& p : *problems) {
      std::printf("[day %2d] %-5s %-24s cdi=%.2e baseline=%.2e", d + 1,
                  p.direction == AnomalyDirection::kSpike ? "SPIKE" : "DIP",
                  p.event_name.c_str(), p.value, p.baseline);
      if (!p.root_causes.empty()) {
        std::printf("  -> %s=%s explains %.0f%%",
                    p.root_causes[0].dimension.c_str(),
                    p.root_causes[0].value.c_str(),
                    100.0 * p.root_causes[0].explanatory_power);
      }
      std::printf("\n");
    }

    for (const SurgeAlert& alert :
         surge.ObserveDay(day_start, log.Search(day))) {
      std::printf("[day %2d] SURGE %-24s count=%zu baseline=%.0f "
                  "targets=%zu -> engineers paged\n",
                  d + 1, alert.event_name.c_str(), alert.count,
                  alert.baseline_mean, alert.affected_targets);
    }
  }

  auto reduction = history.ReductionBetween(5, 5);
  std::printf("\nmonth-over-month level change (first 5 vs last 5 days):\n");
  if (reduction.ok()) {
    std::printf("  CDI-U %+.0f%%   CDI-P %+.0f%%   CDI-C %+.0f%%\n",
                -100 * reduction->unavailability,
                -100 * reduction->performance,
                -100 * reduction->control_plane);
  } else {
    std::printf("  (%s)\n", reduction.status().ToString().c_str());
  }
  return 0;
}
