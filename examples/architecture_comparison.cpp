// Architecture comparison (Case 5 / Fig. 8): track the Performance
// Indicator of the homogeneous and hybrid deployment pools day by day, with
// the hybrid-only CPU-contention defect appearing mid-experiment and a
// rollback restoring parity.
#include <cstdio>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/incidents.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(5);
  FaultInjector injector(&catalog, &rng);
  EventLog log;

  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 2;
  spec.clusters_per_az = 2;
  spec.ncs_per_cluster = 6;
  spec.vms_per_nc = 8;
  spec.hybrid_fraction = 0.5;
  spec.gen2_fraction = 0.4;  // the defective machine model
  const Fleet fleet = Fleet::Build(spec).value();

  auto ticket_model =
      TicketRankModel::FromCounts({{"vcpu_high", 230}, {"slow_io", 420},
                                   {"packet_loss", 160}, {"api_error", 90}},
                                  4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();
  ThreadPool pool(8);
  DailyCdiJob job(&log, &catalog, &weights,
                  {.pool = &pool, .min_parallel_rows = 1});

  const TimePoint start = TimePoint::Parse("2026-03-01 00:00").value();
  constexpr int kDays = 20;
  constexpr int kDefectStart = 8;   // defect manifests from day 8
  constexpr int kRollbackDay = 14;  // affected hosts rolled back on day 14

  std::printf("%4s %18s %18s  %s\n", "day", "homogeneous CDI-P",
              "hybrid CDI-P", "note");
  for (int d = 0; d < kDays; ++d) {
    const TimePoint day_start = start + Duration::Days(d);
    const Interval day(day_start, day_start + Duration::Days(1));
    (void)injector.InjectDay(fleet, day_start, BaselineRates(), &log);
    const bool defect_active = d >= kDefectStart && d < kRollbackDay;
    if (defect_active) {
      (void)InjectHybridContentionDefect(fleet, day_start, "gen2",
                                         /*intensity=*/2.0, &injector, &log,
                                         &rng);
    }
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    double homog = 0.0, hybrid = 0.0;
    for (const DrilldownGroup& g :
         RunDrilldown(result->per_vm, {.dimensions = {"arch"}})->groups) {
      if (g.key == "homogeneous") homog = g.cdi.performance;
      if (g.key == "hybrid") hybrid = g.cdi.performance;
    }
    const char* note = "";
    if (d == kDefectStart) note = "<- defect ships";
    if (d == kRollbackDay) note = "<- rollback complete";
    std::printf("%4d %18.6f %18.6f  %s\n", d, homog, hybrid, note);
  }
  std::printf(
      "\nReading the curves as the paper's stability engineers did: parity "
      "before the\nchange, hybrid divergence while the defective model runs "
      "the new architecture,\nand reconvergence after the rollback (Fig. "
      "8).\n");
  return 0;
}
