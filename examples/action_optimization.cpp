// Operation-action optimization via A/B testing (Sec. VI-D / Case 8):
// three candidate live-migration variants serve the nc_down_prediction
// rule; per-VM post-action CDI feeds the Fig.-10 hypothesis-test workflow,
// producing a Table-V style report that singles out the best action.
#include <cstdio>

#include "abtest/experiment.h"
#include "cdi/vm_cdi.h"
#include "common/rng.h"

using namespace cdibot;

namespace {

// Simulates the 2-day post-action CDI of one VM under a migration variant.
// Action B uses gentler migration parameters, so its performance brown-out
// is far smaller; unavailability and control-plane damage do not depend on
// the variant (exactly the Table V structure).
VmCdi SimulatePostActionCdi(size_t arm, Rng* rng) {
  const double p_mean = arm == 1 ? 0.08 : (arm == 0 ? 0.40 : 0.42);
  auto clamp01 = [](double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); };
  return VmCdi{
      .unavailability = clamp01(rng->Normal(0.010, 0.004)),
      .performance = clamp01(rng->Normal(p_mean, 0.06)),
      .control_plane = clamp01(rng->Normal(0.015, 0.006)),
      .service_time = Duration::Days(2)};
}

}  // namespace

int main() {
  auto experiment = AbTestExperiment::Create(
      {{"action_A", 1.0 / 3}, {"action_B", 1.0 / 3}, {"action_C", 1.0 / 3}},
      /*seed=*/8);
  if (!experiment.ok()) return 1;

  // Three months of nc_down_prediction hits: each predicted-failing host
  // triggers one action on its VMs; we track 300 VMs.
  Rng rng(88);
  for (int vm = 0; vm < 300; ++vm) {
    const size_t arm = experiment->Assign();
    if (!experiment->AddObservation(arm, SimulatePostActionCdi(arm, &rng))
             .ok()) {
      return 1;
    }
  }
  std::printf("observations per arm: %zu / %zu / %zu\n",
              experiment->ObservationCount(0), experiment->ObservationCount(1),
              experiment->ObservationCount(2));

  auto report = experiment->Analyze();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", report->ToTableString().c_str());

  // Pick the winner on the significant sub-metric.
  const auto& perf =
      report->per_metric[static_cast<int>(StabilityCategory::kPerformance)];
  if (perf.omnibus_significant) {
    size_t best = 0;
    for (size_t a = 1; a < report->arm_means.size(); ++a) {
      if (report->arm_means[a][1] < report->arm_means[best][1]) best = a;
    }
    std::printf("Selected action for nc_down_prediction: %s\n",
                report->arm_names[best].c_str());
  } else {
    std::printf("No significant difference; keeping the incumbent action.\n");
  }
  return 0;
}
