// Observability tour of the telemetry -> CDI pipeline. One supervised
// streaming CloudBot day runs with tracing on; the final statusz report
// shows every instrumented subsystem (telemetry generation, rule matching,
// operations, event resolution, CDI jobs, the streaming engine, checkpoint
// storage, chaos quarantine, the thread pool), and the run's scoped spans
// land in a Chrome-trace JSON loadable in Perfetto or chrome://tracing.
#include <cstdio>

#include "obs/statusz.h"
#include "sim/cloudbot_loop.h"
#include "sim/fleet.h"
#include "weights/event_weights.h"

using namespace cdibot;

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "observability_trace.json";

  const EventCatalog catalog = EventCatalog::BuiltIn();
  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230}}, 4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  const TimePoint day_start = TimePoint::Parse("2026-06-01 00:00").value();
  Rng rng(7);

  AutomationLoopOptions options;
  options.streaming_cdi = true;
  options.supervise_streaming = true;
  options.checkpoint_dir = "observability_ckpt";
  options.supervisor_crashes = 2;
  options.incident_probability = 0.25;
  options.capture_statusz = true;
  options.statusz_every_incidents = 8;
  options.trace_json_path = trace_path;

  auto result =
      RunAutomationDay(fleet, day_start, catalog, weights, options, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "day failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("incidents=%zu migrations=%zu checkpoints=%zu restores=%zu\n",
              result->incidents, result->migrations_executed,
              result->checkpoints_saved, result->restores_completed);
  std::printf("batch CDI_u=%.4f streaming CDI_u=%.4f\n",
              result->fleet_cdi.unavailability,
              result->fleet_cdi_streaming.unavailability);
  std::printf("\n%s\n", result->statusz_text.c_str());
  std::printf("trace written to %s (open in Perfetto or chrome://tracing)\n",
              trace_path);
  return 0;
}
