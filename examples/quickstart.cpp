// Quickstart: compute the three CDI sub-metrics for a single VM-day.
//
// The flow is the library's minimal happy path:
//   1. describe events with the built-in catalog,
//   2. resolve raw events into periods,
//   3. build an event weight model (Eqs. 1-3),
//   4. run Algorithm 1 per category (ComputeVmCdi).
#include <cstdio>

#include "cdibot.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const PeriodResolver resolver(&catalog);

  // A day's worth of raw events for one VM, as the Event Extractor would
  // emit them: 12 consecutive minutes of slow_io, one 90-second in-place
  // reboot, and a failed resize attempt.
  const TimePoint day_start = TimePoint::Parse("2026-07-06 00:00").value();
  const Interval day(day_start, day_start + Duration::Days(1));

  std::vector<RawEvent> raw;
  for (int m = 1; m <= 12; ++m) {
    raw.push_back(RawEvent{.name = "slow_io",
                           .time = day_start + Duration::Hours(9) +
                                   Duration::Minutes(m),
                           .target = "vm-42",
                           .level = Severity::kCritical});
  }
  raw.push_back(RawEvent{.name = "vm_reboot",
                         .time = day_start + Duration::Hours(14),
                         .target = "vm-42",
                         .level = Severity::kCritical,
                         .attrs = {{"duration_ms", "90000"}}});
  raw.push_back(RawEvent{.name = "vm_resize_failed",
                         .time = day_start + Duration::Hours(18),
                         .target = "vm-42",
                         .level = Severity::kCritical});

  auto resolved = resolver.Resolve(std::move(raw), day);
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve failed: %s\n",
                 resolved.status().ToString().c_str());
    return 1;
  }

  // Weight model: expert severities from the catalog, customer weights from
  // last year's ticket counts per event (Eq. 2), mixed 50/50 (Eq. 3).
  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"vm_resize_failed", 77}, {"packet_loss", 160},
       {"vcpu_high", 230}},
      /*num_levels=*/4);
  auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {});
  if (!weights.ok()) {
    std::fprintf(stderr, "weights failed: %s\n",
                 weights.status().ToString().c_str());
    return 1;
  }

  auto cdi = ComputeVmCdi(*resolved, *weights, day);
  if (!cdi.ok()) {
    std::fprintf(stderr, "cdi failed: %s\n", cdi.status().ToString().c_str());
    return 1;
  }

  std::printf("CDI for vm-42 on %s (service %.0f minutes)\n",
              day_start.ToDateString().c_str(), day.length().minutes());
  std::printf("  Unavailability Indicator : %.6f\n", cdi->unavailability);
  std::printf("  Performance Indicator    : %.6f\n", cdi->performance);
  std::printf("  Control-Plane Indicator  : %.6f\n", cdi->control_plane);
  std::printf("\nResolved events:\n");
  for (const ResolvedEvent& ev : *resolved) {
    std::printf("  %s\n", ev.ToString().c_str());
  }
  return 0;
}
