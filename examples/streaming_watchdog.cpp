// Live intra-day stability watch. The batch watchdog (stability_watchdog)
// only sees a day once it is over; this example runs the streaming engine
// instead: events are ingested as they occur, the fleet CDI is refreshed
// hourly at the cost of recomputing only the VMs that changed, the monitor
// previews each snapshot without committing it, and a mid-day crash is
// survived through a checkpoint/restore round trip. The day ends by
// cross-checking the streaming snapshot against a full batch rerun.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cdi/monitor.h"
#include "cdi/pipeline.h"
#include "sim/incidents.h"
#include "sim/scenario.h"
#include "storage/stream_checkpoint.h"
#include "stream/streaming_engine.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(42);
  FaultInjector injector(&catalog, &rng);

  FleetSpec fspec;
  fspec.regions = 1;
  fspec.azs_per_region = 2;
  fspec.clusters_per_az = 2;
  fspec.ncs_per_cluster = 4;
  fspec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(fspec).value();

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230}}, 4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();

  const TimePoint day_start = TimePoint::Parse("2026-06-01 00:00").value();
  const Interval day(day_start, day_start + Duration::Days(1));
  const auto vms = fleet.ServiceInfos(day).value();

  // Warm the monitor with a week of quiet history so today's preview has a
  // baseline to break from.
  auto monitor = CdiMonitor::Create({.window = 3, .k = 3.0}).value();
  EventLog history_log;
  for (int d = 7; d >= 1; --d) {
    const TimePoint past = day_start - Duration::Days(d);
    EventLog log;
    (void)injector.InjectDay(fleet, past, BaselineRates().Scaled(2.0), &log);
    DailyCdiJob job(&log, &catalog, &weights, {});
    const Interval past_day(past, past + Duration::Days(1));
    auto past_result = job.Run(fleet.ServiceInfos(past_day).value(), past_day);
    if (!past_result.ok()) return 1;
    (void)monitor.IngestDay(past, *past_result);
  }

  // Today is a bad day: 10x the usual fault pressure.
  EventLog log;
  (void)injector.InjectDay(fleet, day_start, BaselineRates().Scaled(20.0),
                           &log);
  std::vector<RawEvent> today = log.Search(
      Interval(day_start - Duration::Days(1), day.end + Duration::Days(1)));
  std::sort(today.begin(), today.end(),
            [](const RawEvent& a, const RawEvent& b) { return a.time < b.time; });

  StreamingCdiOptions sopts;
  sopts.window = day;
  auto engine = StreamingCdiEngine::Create(&catalog, &weights, sopts).value();
  for (const VmServiceInfo& vm : vms) (void)engine.RegisterVm(vm);

  std::printf("streaming %zu events over %zu VMs\n\n", today.size(),
              vms.size());
  size_t fed = 0;
  TimePoint next_report = day_start + Duration::Hours(4);
  const TimePoint crash_at = day_start + Duration::Hours(11);
  bool crashed = false;
  for (const RawEvent& ev : today) {
    // Simulated process crash mid-day: persist, "restart", resume.
    if (!crashed && crash_at < ev.time) {
      crashed = true;
      const StreamCheckpoint ckpt = engine.Checkpoint();
      const Status saved = SaveStreamCheckpoint(ckpt, "/tmp");
      if (!saved.ok()) {
        std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
        return 1;
      }
      auto loaded = LoadStreamCheckpoint("/tmp");
      if (!loaded.ok()) {
        std::fprintf(stderr, "load: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      auto restored =
          StreamingCdiEngine::Restore(*loaded, &catalog, &weights, sopts);
      if (!restored.ok()) {
        std::fprintf(stderr, "restore: %s\n",
                     restored.status().ToString().c_str());
        return 1;
      }
      engine = std::move(*restored);
      std::printf("[%5.1fh] crash + restore from checkpoint "
                  "(%zu events buffered, watermark intact)\n",
                  (crash_at - day_start).hours(), loaded->events.size());
    }
    (void)engine.Ingest(ev);
    ++fed;
    if (next_report < ev.time) {
      auto snap = engine.Snapshot();
      if (!snap.ok()) return 1;
      auto problems = monitor.Preview(day_start, *snap);
      std::printf("[%5.1fh] %6zu events  fleet CDI-P=%.3e  "
                  "recomputed=%zu  previewed problems=%zu\n",
                  (next_report - day_start).hours(), fed,
                  snap->fleet.performance, engine.stats().vms_recomputed,
                  problems.ok() ? problems->size() : 0);
      next_report = next_report + Duration::Hours(4);
    }
  }

  auto final_snap = engine.Snapshot();
  if (!final_snap.ok()) return 1;

  DailyCdiJob job(&log, &catalog, &weights, {});
  auto batch = job.Run(vms, day);
  if (!batch.ok()) return 1;

  std::printf("\nend of day (streaming vs batch rerun):\n");
  std::printf("  CDI-U  %.6e  vs  %.6e\n", final_snap->fleet.unavailability,
              batch->fleet.unavailability);
  std::printf("  CDI-P  %.6e  vs  %.6e\n", final_snap->fleet.performance,
              batch->fleet.performance);
  std::printf("  CDI-C  %.6e  vs  %.6e\n", final_snap->fleet.control_plane,
              batch->fleet.control_plane);
  const double drift =
      std::fabs(final_snap->fleet.performance - batch->fleet.performance);
  std::printf("  drift  %.1e (equivalence bound 1e-9)\n", drift);
  return drift < 1e-9 ? 0 : 1;
}
