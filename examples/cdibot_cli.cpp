// cdibot_cli — a small operational driver over the library:
//
//   cdibot_cli simulate --days N --seed S --out DIR
//       simulate N days of a synthetic fleet, run the daily CDI job, and
//       write vm_cdi.csv / event_cdi.csv per day into DIR
//   cdibot_cli query CSV "SQL"
//       load a vm_cdi.csv produced by `simulate` and run a SQL query
//       against it (table name: vm_cdi)
//   cdibot_cli weights --tickets name=count,name=count,...
//       print the Eq. 1-3 composite weight table for the given last-year
//       ticket counts
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cdi/pipeline.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "dataflow/csv.h"
#include "dataflow/query.h"
#include "sim/scenario.h"

using namespace cdibot;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cdibot_cli simulate [--days N] [--seed S] [--out DIR]\n"
               "  cdibot_cli query CSV \"SQL\"\n"
               "  cdibot_cli weights --tickets name=count[,name=count...]\n");
  return 2;
}

dataflow::Schema VmCdiSchema() {
  using dataflow::Field;
  using dataflow::ValueType;
  return dataflow::Schema(
      {Field{"vm_id", ValueType::kString}, Field{"region", ValueType::kString},
       Field{"az", ValueType::kString}, Field{"cluster", ValueType::kString},
       Field{"cdi_u", ValueType::kDouble}, Field{"cdi_p", ValueType::kDouble},
       Field{"cdi_c", ValueType::kDouble},
       Field{"service_minutes", ValueType::kDouble}});
}

int RunSimulate(int argc, char** argv) {
  int days = 3;
  uint64_t seed = 1;
  std::string out = ".";
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--days") && i + 1 < argc) {
      days = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else {
      return Usage();
    }
  }
  if (days < 1) return Usage();

  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(seed);
  FaultInjector injector(&catalog, &rng);
  const Fleet fleet = Fleet::Build(FleetSpec{.seed = seed}).value();
  auto weights =
      EventWeightModel::Build(
          TicketRankModel::FromCounts({{"slow_io", 420},
                                       {"packet_loss", 160},
                                       {"vcpu_high", 230},
                                       {"api_error", 90}},
                                      4)
              .value(),
          {})
          .value();
  ThreadPool pool(8);
  const TimePoint start = TimePoint::Parse("2026-01-01 00:00").value();

  for (int d = 0; d < days; ++d) {
    const TimePoint day_start = start + Duration::Days(d);
    const Interval day(day_start, day_start + Duration::Days(1));
    EventLog log;
    auto injected =
        injector.InjectDay(fleet, day_start, BaselineRates().Scaled(8.0),
                           &log);
    if (!injected.ok()) {
      std::fprintf(stderr, "%s\n", injected.status().ToString().c_str());
      return 1;
    }
    DailyCdiJob job(&log, &catalog, &weights,
                    {.pool = &pool, .min_parallel_rows = 1});
    auto result = job.Run(fleet.ServiceInfos(day).value(), day);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const std::string date = day_start.ToDateString();
    const std::string vm_path = out + "/vm_cdi_" + date + ".csv";
    const std::string ev_path = out + "/event_cdi_" + date + ".csv";
    Status st = dataflow::WriteCsvFile(result->ToVmTable(), vm_path);
    if (st.ok()) st = dataflow::WriteCsvFile(result->ToEventTable(), ev_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s: %zu events -> CDI-U %.6f  CDI-P %.6f  CDI-C %.6f  "
                "(%s, %s)\n",
                date.c_str(), log.size(), result->fleet.unavailability,
                result->fleet.performance, result->fleet.control_plane,
                vm_path.c_str(), ev_path.c_str());
  }
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc != 2) return Usage();
  auto table = dataflow::ReadCsvFile(argv[0], VmCdiSchema());
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  ThreadPool pool(4);
  dataflow::QueryEngine engine({.pool = &pool, .min_parallel_rows = 1});
  engine.RegisterTable("vm_cdi", std::move(table).value());
  auto result = engine.Execute(argv[1]);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToPrettyString(100).c_str());
  return 0;
}

int RunWeights(int argc, char** argv) {
  std::map<std::string, int64_t> counts;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--tickets") && i + 1 < argc) {
      for (const std::string& pair : StrSplit(argv[++i], ',')) {
        const auto kv = StrSplit(pair, '=');
        if (kv.size() != 2) return Usage();
        counts[kv[0]] = std::atoll(kv[1].c_str());
      }
    } else {
      return Usage();
    }
  }
  if (counts.empty()) return Usage();
  auto ticket_model = TicketRankModel::FromCounts(counts, 4);
  if (!ticket_model.ok()) {
    std::fprintf(stderr, "%s\n", ticket_model.status().ToString().c_str());
    return 1;
  }
  auto model = EventWeightModel::Build(std::move(ticket_model).value(), {});
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("%-24s %8s %8s %8s %8s\n", "event", "info", "warning",
              "critical", "fatal");
  for (const auto& [name, count] : counts) {
    std::printf("%-24s", name.c_str());
    for (Severity s : {Severity::kInfo, Severity::kWarning,
                       Severity::kCritical, Severity::kFatal}) {
      const auto w =
          model->WeightFor(name, s, StabilityCategory::kPerformance);
      std::printf(" %8.4f", w.ok() ? w.value() : -1.0);
    }
    std::printf("   (tickets: %lld)\n", static_cast<long long>(count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "simulate") return RunSimulate(argc - 2, argv + 2);
  if (command == "query") return RunQuery(argc - 2, argv + 2);
  if (command == "weights") return RunWeights(argc - 2, argv + 2);
  return Usage();
}
