// CloudBot end-to-end walkthrough of the paper's Example 1 (Fig. 1):
// a NIC fault on a host degrades a VM's disk IO. Raw telemetry flows
// through the Data Collector -> Event Extractor -> Rule Engine ->
// Operation Platform, ending with a live migration, an IDC repair ticket,
// and the host locked.
#include <cstdio>

#include "common/rng.h"
#include "extract/log_rules.h"
#include "extract/metric_rules.h"
#include "ops/operation_platform.h"
#include "rules/rule_engine.h"
#include "telemetry/log_stream.h"
#include "telemetry/metric_series.h"

using namespace cdibot;

int main() {
  Rng rng(20260706);
  const TimePoint noon = TimePoint::Parse("2026-07-06 12:00").value();

  // --- Data Collector -------------------------------------------------------
  // read_latency of the VM's cloud disk, sampled per minute. The NIC fault
  // at 12:16 pushes latency from ~10ms to ~65ms.
  MetricSpec spec;
  spec.metric = "read_latency";
  spec.target = "vm-7";
  spec.start = noon;
  spec.count = 30;
  spec.base = 10.0;
  spec.diurnal_amplitude = 0.0;
  spec.noise_sigma = 0.8;
  spec.anomalies = {{.begin = 16, .end = 30, .offset = 55.0}};
  const MetricSeries latency = GenerateMetricSeries(spec, &rng).value();

  std::vector<LogLine> logs = GenerateBenignLogs(
      "vm-7", Interval(noon, noon + Duration::Minutes(30)), 30.0, &rng);
  AppendNicFlap("vm-7", noon + Duration::Minutes(16) + Duration::Seconds(28),
                &logs);
  std::printf("[collector] %zu metric samples, %zu log lines\n",
              latency.points.size(), logs.size());

  // --- Event Extractor -------------------------------------------------------
  auto metric_extractor = MetricThresholdExtractor::BuiltIn();
  auto log_extractor = LogRuleExtractor::BuiltIn().value();
  std::vector<RawEvent> events = metric_extractor.Extract(latency);
  for (RawEvent& ev : log_extractor.ExtractAll(logs)) {
    events.push_back(std::move(ev));
  }
  std::printf("[extractor] %zu events extracted (noise discarded):\n",
              events.size());
  size_t shown = 0;
  for (const RawEvent& ev : events) {
    if (++shown <= 3 || ev.name != "slow_io") {
      std::printf("  %s\n", ev.ToString().c_str());
    }
  }

  // --- Rule Engine -----------------------------------------------------------
  auto engine = RuleEngine::BuiltIn().value();
  const TimePoint eval_at = noon + Duration::Minutes(18);
  const auto active = RuleEngine::ActiveEventNames(events, eval_at);
  std::printf("[rules] active events at %s:", eval_at.ToString().c_str());
  for (const auto& name : active) std::printf(" %s", name.c_str());
  std::printf("\n");
  auto matches = engine.Match(active, "vm-7", eval_at);
  for (const RuleMatch& m : matches) {
    std::printf("[rules] matched: %s\n", m.rule_name.c_str());
  }
  if (matches.empty()) {
    std::fprintf(stderr, "no rule matched; unexpected\n");
    return 1;
  }

  // --- Operation Platform ----------------------------------------------------
  OperationPlatform platform;
  auto requests = platform.RequestsFromMatch(matches.front(), "nc-3");
  if (!requests.ok()) {
    std::fprintf(stderr, "%s\n", requests.status().ToString().c_str());
    return 1;
  }
  auto records =
      platform.Submit(std::move(requests).value(), {{"vm-7", "nc-3"}});
  for (const ActionRecord& rec : records) {
    std::printf("[ops] %-16s on %-6s -> %s\n",
                std::string(ActionTypeToString(rec.request.type)).c_str(),
                rec.request.target.c_str(),
                rec.outcome == ActionOutcome::kExecuted ? "executed"
                                                        : "discarded");
  }
  std::printf("[ops] nc-3 locked: %s\n",
              platform.IsLocked("nc-3") ? "yes" : "no");
  std::printf("\nExample 1 reproduced: the VM live-migrates away, the IDC "
              "gets a repair ticket,\nand the host accepts no new VMs until "
              "the repair completes.\n");
  return 0;
}
