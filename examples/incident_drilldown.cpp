// Incident evaluation and BI drill-down (Sec. V + Case 3): replay an
// availability-zone outage on a synthetic fleet, run the daily CDI job, and
// drill the indicators down region -> AZ -> cluster, alongside the classic
// Downtime Percentage and Annual Interruption Rate.
#include <cstdio>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/incidents.h"

using namespace cdibot;

int main() {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(42);
  FaultInjector injector(&catalog, &rng);
  EventLog log;

  FleetSpec spec;
  spec.regions = 2;
  spec.azs_per_region = 2;
  spec.clusters_per_az = 2;
  spec.ncs_per_cluster = 4;
  spec.vms_per_nc = 8;
  const Fleet fleet = Fleet::Build(spec).value();
  std::printf("fleet: %zu VMs on %zu NCs\n", fleet.num_vms(),
              fleet.topology().num_ncs());

  const TimePoint day_start = TimePoint::Parse("2026-04-25 00:00").value();
  const Interval day(day_start, day_start + Duration::Days(1));

  // Background noise plus a 2-hour outage of r0-az0 during the evening
  // business peak (the paper notes Case 2 hit at business peak).
  auto injected = injector.InjectDay(fleet, day_start, BaselineRates(), &log);
  if (!injected.ok()) return 1;
  const Interval outage(day_start + Duration::Hours(17),
                        day_start + Duration::Hours(19));
  if (!InjectAzOutage(fleet, "r0-az0", outage, &injector, &log).ok()) {
    return 1;
  }
  std::printf("injected %zu background episodes + AZ outage %s\n",
              injected.value(), outage.ToString().c_str());

  auto ticket_model = TicketRankModel::FromCounts(
      {{"slow_io", 420}, {"packet_loss", 160}, {"vcpu_high", 230},
       {"api_error", 90}, {"vm_start_failed", 60}},
      4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket_model).value(), {}).value();

  ThreadPool pool(8);
  DailyCdiJob job(&log, &catalog, &weights,
                  {.pool = &pool, .min_parallel_rows = 1});
  auto result = job.Run(fleet.ServiceInfos(day).value(), day);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== fleet-level indicators ===\n");
  std::printf("CDI-U %.6f  CDI-P %.6f  CDI-C %.6f\n",
              result->fleet.unavailability, result->fleet.performance,
              result->fleet.control_plane);
  std::printf("Downtime Percentage %.6f   Annual Interruption Rate %.2f   "
              "MTTR %s\n",
              result->fleet_baseline.downtime_percentage,
              result->fleet_baseline.annual_interruption_rate,
              result->fleet_baseline.mttr.ToString().c_str());

  for (const char* dim : {"region", "az", "cluster"}) {
    std::printf("\n=== drill-down by %s ===\n", dim);
    std::printf("%-14s %6s %12s %12s %12s\n", dim, "VMs", "CDI-U", "CDI-P",
                "CDI-C");
    for (const DrilldownGroup& g :
         RunDrilldown(result->per_vm, {.dimensions = {dim}})->groups) {
      std::printf("%-14s %6zu %12.6f %12.6f %12.6f\n", g.key.c_str(),
                  g.vm_count, g.cdi.unavailability, g.cdi.performance,
                  g.cdi.control_plane);
    }
  }

  std::printf("\n=== top event-level CDI (Sec. VI-C drill-down) ===\n");
  auto by_event =
      EventLevelCdi(result->per_event, result->fleet_service_time).value();
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [name, value] : by_event) ranked.emplace_back(value, name);
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
    std::printf("%-24s %.6f\n", ranked[i].second.c_str(), ranked[i].first);
  }
  return 0;
}
