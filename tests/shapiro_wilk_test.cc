#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/tests.h"
#include "stats/workflow.h"

namespace cdibot::stats {
namespace {

Sample NormalSample(cdibot::Rng* rng, size_t n, double mean, double sd) {
  Sample x;
  x.reserve(n);
  for (size_t i = 0; i < n; ++i) x.push_back(rng->Normal(mean, sd));
  return x;
}

TEST(ShapiroWilkTest, Validation) {
  EXPECT_TRUE(ShapiroWilkTest({1.0, 2.0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      ShapiroWilkTest({5.0, 5.0, 5.0}).status().IsFailedPrecondition());
  Sample big(5001, 0.0);
  EXPECT_TRUE(ShapiroWilkTest(big).status().IsInvalidArgument());
}

TEST(ShapiroWilkTest, WIsInUnitIntervalAndHighForNormal) {
  cdibot::Rng rng(1);
  auto res = ShapiroWilkTest(NormalSample(&rng, 50, 10.0, 2.0));
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->statistic, 0.9);
  EXPECT_LE(res->statistic, 1.0);
  EXPECT_GT(res->p_value, 0.01);
}

TEST(ShapiroWilkTest, TypeIErrorRateRoughlyNominal) {
  cdibot::Rng rng(2);
  int rejections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto res = ShapiroWilkTest(NormalSample(&rng, 12, 0.0, 1.0));
    ASSERT_TRUE(res.ok());
    if (res->SignificantAt(0.05)) ++rejections;
  }
  // Nominal 5% of 200 = 10; allow [1, 25].
  EXPECT_GE(rejections, 1);
  EXPECT_LE(rejections, 25);
}

TEST(ShapiroWilkTest, RejectsExponentialAtSmallN) {
  cdibot::Rng rng(3);
  int rejections = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    Sample x;
    for (int i = 0; i < 15; ++i) x.push_back(rng.Exponential(1.0));
    auto res = ShapiroWilkTest(x);
    ASSERT_TRUE(res.ok());
    if (res->SignificantAt(0.05)) ++rejections;
  }
  // SW has decent power against exponential even at n = 15.
  EXPECT_GT(rejections, 50);
}

TEST(ShapiroWilkTest, RejectsUniformAtModerateN) {
  cdibot::Rng rng(4);
  int rejections = 0;
  for (int t = 0; t < 50; ++t) {
    Sample x;
    for (int i = 0; i < 100; ++i) x.push_back(rng.Uniform(0.0, 1.0));
    auto res = ShapiroWilkTest(x);
    ASSERT_TRUE(res.ok());
    if (res->SignificantAt(0.05)) ++rejections;
  }
  EXPECT_GT(rejections, 25);
}

TEST(ShapiroWilkTest, KnownSmallSampleValue) {
  // Classic reference sample (Royston's paper uses similar): for a clearly
  // skewed n=10 sample, W is well below the 0.05 critical value (~0.842).
  auto res = ShapiroWilkTest(
      {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 2.0, 25.0});
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->statistic, 0.6);
  EXPECT_LT(res->p_value, 0.001);
}

TEST(ShapiroWilkTest, ScaleAndShiftInvariant) {
  cdibot::Rng rng(5);
  const Sample x = NormalSample(&rng, 30, 0.0, 1.0);
  Sample y;
  for (double v : x) y.push_back(100.0 + 5.0 * v);
  auto rx = ShapiroWilkTest(x);
  auto ry = ShapiroWilkTest(y);
  ASSERT_TRUE(rx.ok());
  ASSERT_TRUE(ry.ok());
  EXPECT_NEAR(rx->statistic, ry->statistic, 1e-12);
}

TEST(ShapiroWilkWorkflowTest, SmallNormalGroupsUseAnovaBranch) {
  // n = 12 per group: below the D'Agostino floor of the old behavior but
  // clean normals — Shapiro-Wilk accepts and the parametric branch runs.
  cdibot::Rng rng(6);
  auto res = RunHypothesisWorkflow({NormalSample(&rng, 12, 0.0, 1.0),
                                    NormalSample(&rng, 12, 4.0, 1.0),
                                    NormalSample(&rng, 12, 8.0, 1.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->all_normal);
  EXPECT_EQ(res->omnibus.method, "one-way ANOVA");
  for (const TestResult& t : res->normality) {
    EXPECT_EQ(t.method, "Shapiro-Wilk");
  }
}

TEST(ShapiroWilkWorkflowTest, SmallSkewedGroupsStillGoNonParametric) {
  cdibot::Rng rng(7);
  std::vector<Sample> groups;
  for (int g = 0; g < 2; ++g) {
    Sample x;
    for (int i = 0; i < 15; ++i) {
      x.push_back(std::pow(rng.Exponential(1.0), 2.0) * (g + 1));
    }
    groups.push_back(std::move(x));
  }
  auto res = RunHypothesisWorkflow(groups);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->all_normal);
  EXPECT_EQ(res->omnibus.method, "Kruskal-Wallis H");
}

}  // namespace
}  // namespace cdibot::stats
