// Integration tests for the extension modules working together:
// mined rules feeding the rule engine, the prioritizer driving the
// operation platform, the surge monitor over simulated days, and the BI
// SQL layer over real job output.
#include <gtest/gtest.h>

#include "cdi/pipeline.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "dataflow/csv.h"
#include "dataflow/query.h"
#include "extract/surge.h"
#include "ops/operation_platform.h"
#include "ops/prioritizer.h"
#include "rules/mining.h"
#include "rules/rule_engine.h"
#include "sim/scenario.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(ExtensionsIntegrationTest, MinedRuleRegistersAndMatches) {
  // Build co-occurrence history where nic_flapping and slow_io recur
  // together, mine the rule, register its expression, and match it against
  // a fresh occurrence — the full Sec. II-D discovery loop.
  std::vector<RawEvent> history;
  auto push = [&history](const char* name, const char* time,
                         const char* target) {
    RawEvent ev;
    ev.name = name;
    ev.time = T(time);
    ev.target = target;
    ev.expire_interval = Duration::Hours(1);
    history.push_back(std::move(ev));
  };
  for (int i = 0; i < 12; ++i) {
    const std::string t = StrFormat("2024-01-%02d 10:00", i + 1);
    const std::string t2 = StrFormat("2024-01-%02d 10:02", i + 1);
    const std::string vm = StrFormat("vm-%d", i);
    push("nic_flapping", t.c_str(), vm.c_str());
    push("slow_io", t2.c_str(), vm.c_str());
  }
  for (int i = 0; i < 20; ++i) {
    push("vcpu_high", StrFormat("2024-02-%02d 09:00", i + 1).c_str(),
         StrFormat("vm-x%d", i).c_str());
  }

  const auto txns =
      TransactionsFromEvents(history, Duration::Minutes(10));
  MiningOptions options;
  options.min_support = 8;
  options.min_confidence = 0.8;
  options.min_lift = 1.2;
  auto rules = MineAssociationRules(txns, options).value();
  ASSERT_FALSE(rules.empty());

  // Register the top mined rule; the consequent names the symptom, the
  // antecedent co-occurring with it forms the match expression.
  const AssociationRule& mined = rules.front();
  const std::string expr =
      mined.ToExpression() + " && " + mined.consequent;
  RuleEngine engine;
  ASSERT_TRUE(engine.Register("mined_rule", expr, {{"live_migration", 9}})
                  .ok());

  std::vector<RawEvent> now;
  {
    RawEvent a;
    a.name = "nic_flapping";
    a.time = T("2024-06-01 12:00");
    a.target = "vm-new";
    a.expire_interval = Duration::Hours(1);
    now.push_back(a);
    a.name = "slow_io";
    a.time = T("2024-06-01 12:01");
    now.push_back(a);
  }
  EXPECT_EQ(engine.MatchEvents(now, "vm-new", T("2024-06-01 12:02")).size(),
            1u);
}

TEST(ExtensionsIntegrationTest, PrioritizerFeedsOperationPlatform) {
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"packet_loss", 10}}, 4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket).value(), {}).value();
  auto prioritizer = OperationPrioritizer::Create(&weights).value();

  const Interval period(T("2024-01-01 10:00"), T("2024-01-01 10:10"));
  std::vector<PendingVm> pending = {
      {.vm_id = "vm-crash",
       .active_events = {{.name = "vm_crash", .target = "vm-crash",
                          .period = period, .level = Severity::kFatal,
                          .category = StabilityCategory::kUnavailability}}},
      {.vm_id = "vm-slow",
       .active_events = {{.name = "slow_io", .target = "vm-slow",
                          .period = period, .level = Severity::kCritical,
                          .category = StabilityCategory::kPerformance}}},
  };
  auto ranked = prioritizer.Rank(pending).value();

  // Feed the ranked decisions into the platform; priority encodes rank.
  OperationPlatform platform;
  std::vector<ActionRequest> requests;
  int priority = static_cast<int>(ranked.size());
  for (const PrioritizedOperation& op : ranked) {
    requests.push_back(ActionRequest{.type = op.action,
                                     .target = op.vm_id,
                                     .source_rule = "prioritizer",
                                     .priority = priority--,
                                     .submitted_at = period.end});
  }
  auto records = platform.Submit(std::move(requests),
                                 {{"vm-crash", "nc-1"}, {"vm-slow", "nc-2"}});
  ASSERT_EQ(records.size(), 2u);
  // The fully-down VM cold-migrates first; the degraded one live-migrates.
  EXPECT_EQ(records[0].request.target, "vm-crash");
  EXPECT_EQ(records[0].request.type, ActionType::kColdMigration);
  EXPECT_EQ(records[1].request.type, ActionType::kLiveMigration);
  EXPECT_EQ(records[0].outcome, ActionOutcome::kExecuted);
  EXPECT_EQ(records[1].outcome, ActionOutcome::kExecuted);
}

TEST(ExtensionsIntegrationTest, SurgeMonitorOverSimulatedDays) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(55);
  FaultInjector injector(&catalog, &rng);
  auto fleet = Fleet::Build(FleetSpec{}).value();
  auto detector = SurgeDetector::Create().value();

  const TimePoint start = T("2024-03-01 00:00");
  bool surged_early = false;
  std::vector<SurgeAlert> surge_day_alerts;
  for (int d = 0; d < 12; ++d) {
    EventLog log;
    FaultRates rates = BaselineRates().Scaled(5.0);
    if (d == 10) {
      // A bad rollout floods packet_loss across the fleet.
      rates.episodes_per_vm_day["packet_loss"] *= 40.0;
    }
    ASSERT_TRUE(
        injector.InjectDay(fleet, start + Duration::Days(d), rates, &log)
            .ok());
    const Interval day(start + Duration::Days(d),
                       start + Duration::Days(d + 1));
    auto alerts = detector.ObserveDay(day.start, log.Search(day));
    if (d < 10 && !alerts.empty()) surged_early = true;
    if (d == 10) surge_day_alerts = alerts;
  }
  EXPECT_FALSE(surged_early);
  ASSERT_FALSE(surge_day_alerts.empty());
  bool found = false;
  for (const SurgeAlert& alert : surge_day_alerts) {
    if (alert.event_name == "packet_loss") {
      found = true;
      EXPECT_GE(alert.affected_targets, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExtensionsIntegrationTest, SqlOverRealJobOutputMatchesDrilldown) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(66);
  FaultInjector injector(&catalog, &rng);
  auto fleet = Fleet::Build(FleetSpec{}).value();
  EventLog log;
  const TimePoint day_start = T("2024-04-01 00:00");
  const Interval day(day_start, day_start + Duration::Days(1));
  ASSERT_TRUE(injector
                  .InjectDay(fleet, day_start, BaselineRates().Scaled(10.0),
                             &log)
                  .ok());

  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"packet_loss", 50}, {"vcpu_high", 30}}, 4);
  const auto weights =
      EventWeightModel::Build(std::move(ticket).value(), {}).value();
  ThreadPool pool(4);
  DailyCdiJob job(&log, &catalog, &weights,
                  {.pool = &pool, .min_parallel_rows = 1});
  auto result = job.Run(fleet.ServiceInfos(day).value(), day).value();

  dataflow::QueryEngine bi({.pool = &pool, .min_parallel_rows = 1});
  bi.RegisterTable("vm_cdi", result.ToVmTable());
  auto table = bi.Execute(
      "SELECT region, WAVG(cdi_p, service_minutes) AS q FROM vm_cdi "
      "GROUP BY region ORDER BY region");
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  const auto native = RunDrilldown(result.per_vm, {.dimensions = {"region"}});
  ASSERT_TRUE(native.ok());
  ASSERT_EQ(table->num_rows(), native->groups.size());
  for (size_t i = 0; i < native->groups.size(); ++i) {
    EXPECT_EQ(table->At(i, "region")->AsString().value(),
              native->groups[i].key);
    EXPECT_NEAR(table->At(i, "q")->AsDouble().value(),
                native->groups[i].cdi.performance, 1e-9);
  }

  // CSV round trip of the report preserves it bit-for-bit in value terms.
  const std::string csv = dataflow::ToCsv(*table);
  auto back = dataflow::FromCsv(csv, table->schema());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), table->num_rows());
  for (size_t i = 0; i < table->num_rows(); ++i) {
    EXPECT_NEAR(back->At(i, "q")->AsDouble().value(),
                table->At(i, "q")->AsDouble().value(), 0.0);
  }
}

}  // namespace
}  // namespace cdibot
