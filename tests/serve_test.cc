// Unit tests for the query-serving layer (src/serve/): canonical query
// keys, the ARC result cache, the incrementally maintained drill-down
// cube, the heatmap endpoint, the CdiQueryService facade over a fake
// source, and the QueryServer's admission control. The bit-identity
// contract against live engines is pinned separately by
// serve_equivalence_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cdi/drilldown.h"
#include "event/catalog.h"
#include "serve/cube.h"
#include "serve/heatmap.h"
#include "serve/query.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/service.h"
#include "storage/event_log.h"
#include "strict_json.h"

namespace cdibot::serve {
namespace {

TimePoint At(const char* text) { return TimePoint::Parse(text).value(); }

// ---------------------------------------------------------------------------
// CanonicalQueryKey

TEST(CanonicalQueryKeyTest, DistinguishesAnswerShapingFields) {
  CdiQuery base;
  base.group_by = {"region", "az"};
  base.filter = {{"region", "r0"}};

  CdiQuery reordered = base;
  reordered.group_by = {"az", "region"};
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(reordered))
      << "group-by order changes the cube, so it must change the key";

  CdiQuery other_filter = base;
  other_filter.filter = {{"region", "r1"}};
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(other_filter));

  CdiQuery with_detail = base;
  with_detail.include_detail = true;
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(with_detail));

  CdiQuery partial = base;
  partial.fleet_fidelity = FleetFidelity::kPartialMerge;
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(partial));
}

TEST(CanonicalQueryKeyTest, IgnoresEffortAndFreshnessFields) {
  CdiQuery base;
  base.group_by = {"az"};

  CdiQuery tuned = base;
  tuned.deadline = Deadline::After(Duration::Millis(5));
  tuned.consistency = Consistency::kFresh;
  tuned.max_staleness = Duration::Hours(1);
  EXPECT_EQ(CanonicalQueryKey(base), CanonicalQueryKey(tuned))
      << "deadline/consistency say how hard to try, not what is asked — a "
         "kFresh pull must warm the cache for kCached callers";
}

TEST(CanonicalQueryKeyTest, LengthPrefixingPreventsCollisions) {
  CdiQuery a;
  a.group_by = {"ab", "c"};
  CdiQuery b;
  b.group_by = {"a", "bc"};
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

// ---------------------------------------------------------------------------
// ArcResultCache

ArcResultCache::Entry MakeEntry(double marker, TimePoint as_of) {
  auto response = std::make_shared<CdiQueryResponse>();
  response->fleet.performance = marker;
  return ArcResultCache::Entry{std::move(response), as_of};
}

constexpr auto kAlwaysFresh = [](const ArcResultCache::Entry&) {
  return true;
};

TEST(ArcResultCacheTest, HitReturnsPayloadAndCounts) {
  ArcResultCache cache(4, "serve_test.arc_hit");
  const TimePoint wm = At("2026-03-10 00:00");
  cache.Put("k", MakeEntry(0.25, wm));
  auto entry = cache.Get("k", kAlwaysFresh);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->response->fleet.performance, 0.25);
  EXPECT_EQ(entry->as_of, wm);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.resident, 1u);
}

TEST(ArcResultCacheTest, CapacityZeroDisablesEverything) {
  ArcResultCache cache(0, "serve_test.arc_off");
  cache.Put("k", MakeEntry(1.0, At("2026-03-10 00:00")));
  EXPECT_FALSE(cache.Get("k", kAlwaysFresh).has_value());
  EXPECT_FALSE(cache.Peek("k", kAlwaysFresh));
  EXPECT_EQ(cache.stats().resident, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ArcResultCacheTest, EvictsAtCapacity) {
  ArcResultCache cache(2, "serve_test.arc_evict");
  const TimePoint wm = At("2026-03-10 00:00");
  cache.Put("a", MakeEntry(1.0, wm));
  cache.Put("b", MakeEntry(2.0, wm));
  cache.Put("c", MakeEntry(3.0, wm));
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.resident, 2u);
  EXPECT_GE(stats.evictions, 1u);
  // The newest key is always resident.
  EXPECT_TRUE(cache.Peek("c", kAlwaysFresh));
}

TEST(ArcResultCacheTest, ScanResistanceKeepsHotKeyResident) {
  ArcResultCache cache(4, "serve_test.arc_scan");
  const TimePoint wm = At("2026-03-10 00:00");
  // Make "hot" a frequency citizen: inserted, then hit (T1 -> T2).
  cache.Put("hot", MakeEntry(7.0, wm));
  ASSERT_TRUE(cache.Get("hot", kAlwaysFresh).has_value());
  // One-shot sweep of 8 distinct keys — twice the capacity.
  for (int i = 0; i < 8; ++i) {
    cache.Put("sweep-" + std::to_string(i), MakeEntry(i, wm));
  }
  EXPECT_TRUE(cache.Peek("hot", kAlwaysFresh))
      << "an LRU would have flushed the hot key; ARC's T2 must not";
}

TEST(ArcResultCacheTest, GhostHitAdaptsTarget) {
  ArcResultCache cache(2, "serve_test.arc_ghost");
  const TimePoint wm = At("2026-03-10 00:00");
  // "a" becomes a frequency citizen (T2), so the next capacity overflow
  // demotes the T1 resident "b" to the B1 ghost list instead of dropping
  // it outright (a full all-recency T1 with no ghosts evicts without
  // ghosting — there is no history signal worth keeping there).
  cache.Put("a", MakeEntry(1.0, wm));
  ASSERT_TRUE(cache.Get("a", kAlwaysFresh).has_value());
  cache.Put("b", MakeEntry(2.0, wm));
  cache.Put("c", MakeEntry(3.0, wm));  // evicts "b" to B1
  ASSERT_GE(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Peek("b", kAlwaysFresh));
  const size_t target_before = cache.stats().target_t1;
  cache.Put("b", MakeEntry(2.5, wm));  // B1 ghost hit: recency is winning
  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.ghost_hits, 1u);
  EXPECT_GT(stats.target_t1, target_before) << "a B1 hit must grow p";
  // The returning key is resident again, and as a frequency citizen.
  ASSERT_TRUE(cache.Get("b", kAlwaysFresh).has_value());
}

TEST(ArcResultCacheTest, StaleRejectionDemotesAndRecovers) {
  ArcResultCache cache(4, "serve_test.arc_stale");
  const TimePoint wm = At("2026-03-10 00:00");
  cache.Put("k", MakeEntry(1.0, wm));
  auto stale = cache.Get(
      "k", [](const ArcResultCache::Entry&) { return false; });
  EXPECT_FALSE(stale.has_value());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stale_rejections, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.resident, 0u) << "the stale entry must be dropped";
  // The demoted key is a ghost now: a fresh-predicate Get still misses.
  EXPECT_FALSE(cache.Get("k", kAlwaysFresh).has_value());
  // Re-Put after recompute works and the key serves again.
  cache.Put("k", MakeEntry(2.0, wm + Duration::Minutes(1)));
  auto entry = cache.Get("k", kAlwaysFresh);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->response->fleet.performance, 2.0);
}

TEST(ArcResultCacheTest, PeekDoesNotMutate) {
  ArcResultCache cache(4, "serve_test.arc_peek");
  cache.Put("k", MakeEntry(1.0, At("2026-03-10 00:00")));
  const CacheStats before = cache.stats();
  EXPECT_TRUE(cache.Peek("k", kAlwaysFresh));
  EXPECT_FALSE(cache.Peek("missing", kAlwaysFresh));
  const CacheStats after = cache.stats();
  EXPECT_EQ(before.lookups, after.lookups);
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
}

// ---------------------------------------------------------------------------
// DrilldownCube

std::vector<VmCdiRecord> CubeRows() {
  auto row = [](const std::string& id, const std::string& region,
                const std::string& az, double u, double p, double c,
                int64_t service_minutes) {
    VmCdiRecord rec;
    rec.vm_id = id;
    rec.dims = {{"region", region}, {"az", az}};
    rec.cdi.unavailability = u;
    rec.cdi.performance = p;
    rec.cdi.control_plane = c;
    rec.cdi.service_time = Duration::Minutes(service_minutes);
    return rec;
  };
  // Awkward doubles on purpose: the bit-identity comparison must survive
  // values with no short decimal representation.
  return {row("vm-a", "r0", "z0", 1.0 / 3.0, 2.0 / 7.0, 0.1, 1440),
          row("vm-b", "r0", "z1", 0.0, 1.0 / 9.0, 0.2, 720),
          row("vm-c", "r1", "z0", 1.0 / 11.0, 0.5, 1.0 / 13.0, 960)};
}

void ExpectDrilldownIdentical(const DrilldownResult& want,
                              const DrilldownResult& got,
                              const std::string& what) {
  ASSERT_EQ(want.groups.size(), got.groups.size()) << what;
  for (size_t i = 0; i < want.groups.size(); ++i) {
    const DrilldownGroup& w = want.groups[i];
    const DrilldownGroup& g = got.groups[i];
    EXPECT_EQ(w.values, g.values) << what << " group " << i;
    EXPECT_EQ(w.key, g.key) << what << " group " << i;
    EXPECT_EQ(w.vm_count, g.vm_count) << what << " " << w.key;
    EXPECT_EQ(w.cdi.unavailability, g.cdi.unavailability) << what << " "
                                                          << w.key;
    EXPECT_EQ(w.cdi.performance, g.cdi.performance) << what << " " << w.key;
    EXPECT_EQ(w.cdi.control_plane, g.cdi.control_plane) << what << " "
                                                        << w.key;
    EXPECT_EQ(w.cdi.service_time, g.cdi.service_time) << what << " " << w.key;
    EXPECT_EQ(w.quality.degraded, g.quality.degraded) << what << " " << w.key;
  }
  EXPECT_EQ(want.records_scanned, got.records_scanned) << what;
  EXPECT_EQ(want.records_filtered, got.records_filtered) << what;
}

TEST(DrilldownCubeTest, RequiresLoadedSnapshot) {
  DrilldownCube cube("serve_test.cube_unloaded");
  auto result = cube.Answer(DrilldownQuery{.dimensions = {"region"}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DrilldownCubeTest, PropagatesQueryValidation) {
  DrilldownCube cube("serve_test.cube_invalid");
  cube.Refresh(CubeRows(), At("2026-03-10 00:00"));
  EXPECT_EQ(cube.Answer(DrilldownQuery{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      cube.Answer(DrilldownQuery{.dimensions = {"region", "region"}})
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(cube.Answer(DrilldownQuery{.dimensions = {""}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DrilldownCubeTest, AnswerBitIdenticalToRunDrilldown) {
  DrilldownCube cube("serve_test.cube_bits");
  const std::vector<VmCdiRecord> rows = CubeRows();
  cube.Refresh(rows, At("2026-03-10 00:00"));
  const DrilldownQuery queries[] = {
      {.dimensions = {"region"}},
      {.dimensions = {"region", "az"}},
      {.dimensions = {"az"}, .filter = {{"region", "r0"}}},
      {.dimensions = {"missing_dim"}},
  };
  for (const DrilldownQuery& q : queries) {
    auto from_cube = cube.Answer(q);
    auto reference = RunDrilldown(rows, q);
    ASSERT_TRUE(from_cube.ok()) << from_cube.status().ToString();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ExpectDrilldownIdentical(*reference, *from_cube, "cube vs RunDrilldown");
  }
}

TEST(DrilldownCubeTest, RefreshReusesUnchangedGroups) {
  DrilldownCube cube("serve_test.cube_reuse");
  std::vector<VmCdiRecord> rows = CubeRows();
  cube.Refresh(rows, At("2026-03-10 00:00"));
  const DrilldownQuery query{.dimensions = {"region"}};
  ASSERT_TRUE(cube.Answer(query).ok());
  const CubeStats first = cube.stats();
  EXPECT_EQ(first.groups_recomputed, 2u);  // r0 and r1
  EXPECT_EQ(first.groups_reused, 0u);

  // Identical rows: every group's fold must be reused, none recomputed.
  cube.Refresh(rows, At("2026-03-10 00:05"));
  ASSERT_TRUE(cube.Answer(query).ok());
  const CubeStats second = cube.stats();
  EXPECT_EQ(second.groups_reused, 2u);
  EXPECT_EQ(second.groups_recomputed, 2u);

  // One changed row: only its group refolds, the quiet one is reused.
  rows[2].cdi.performance = 0.75;  // vm-c, the sole member of r1
  cube.Refresh(rows, At("2026-03-10 00:10"));
  auto answer = cube.Answer(query);
  ASSERT_TRUE(answer.ok());
  const CubeStats third = cube.stats();
  EXPECT_EQ(third.groups_reused, 3u);       // +1: r0 survived the change
  EXPECT_EQ(third.groups_recomputed, 3u);   // +1: r1 refolded
  auto reference = RunDrilldown(rows, query);
  ASSERT_TRUE(reference.ok());
  ExpectDrilldownIdentical(*reference, *answer, "post-change refresh");
}

TEST(DrilldownCubeTest, NegativeZeroIsAChange) {
  DrilldownCube cube("serve_test.cube_negzero");
  std::vector<VmCdiRecord> rows = CubeRows();
  rows[1].cdi.unavailability = 0.0;
  cube.Refresh(rows, At("2026-03-10 00:00"));
  const DrilldownQuery query{.dimensions = {"az"}};
  ASSERT_TRUE(cube.Answer(query).ok());
  const uint64_t recomputed = cube.stats().groups_recomputed;
  rows[1].cdi.unavailability = -0.0;  // == under operator==, different bits
  cube.Refresh(rows, At("2026-03-10 00:05"));
  ASSERT_TRUE(cube.Answer(query).ok());
  EXPECT_GT(cube.stats().groups_recomputed, recomputed)
      << "bitwise reuse test must treat -0.0 as a change";
}

// ---------------------------------------------------------------------------
// Heatmap

TEST(HeatmapTest, ValidatesSpec) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  EventLog log;
  const TimePoint start = At("2026-03-10 00:00");
  const Interval day(start, start + Duration::Hours(24));
  const EventSpan span = log.QueryAll(day);

  HeatmapSpec empty_window;
  empty_window.window = Interval(start, start);
  EXPECT_EQ(BuildHeatmap(span, catalog, {}, empty_window).status().code(),
            StatusCode::kInvalidArgument);

  HeatmapSpec zero_buckets{.window = day, .buckets = 0};
  EXPECT_EQ(BuildHeatmap(span, catalog, {}, zero_buckets).status().code(),
            StatusCode::kInvalidArgument);

  HeatmapSpec too_many{.window = day, .buckets = 4097};
  EXPECT_EQ(BuildHeatmap(span, catalog, {}, too_many).status().code(),
            StatusCode::kInvalidArgument);

  HeatmapSpec no_dim{.window = day, .buckets = 24, .group_dim = ""};
  EXPECT_EQ(BuildHeatmap(span, catalog, {}, no_dim).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HeatmapTest, DamageMinutesMath) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const TimePoint start = At("2026-03-10 00:00");
  // 12 one-hour buckets over the first half of the day.
  const Interval window(start, start + Duration::Hours(12));

  EventLog log;
  auto put = [&log, start](const std::string& name, const std::string& target,
                           int64_t minute,
                           std::map<std::string, std::string> attrs = {}) {
    RawEvent ev;
    ev.name = name;
    ev.target = target;
    ev.time = start + Duration::Minutes(minute);
    ev.attrs = std::move(attrs);
    log.Append(ev);
  };
  // slow_io: performance, 1-minute window -> [30, 31) in bucket 0.
  put("slow_io", "vm-a", 30);
  // vm_crash: unavailability, 1-minute window -> bucket 0.
  put("vm_crash", "vm-a", 30);
  // api_error: control plane, 1-minute window -> minute 90, bucket 1.
  put("api_error", "vm-a", 90);
  // vm_reboot is kLoggedDuration: the event stamps the END of impact. With
  // the catalog default of 2 minutes, a stamp at minute 61 means impact
  // [59, 61) — one minute in bucket 0 and one in bucket 1.
  put("vm_reboot", "vm-b", 61);
  // Explicit duration_ms overrides the default: 60s ending at minute 120
  // is [119, 120), entirely in bucket 1.
  put("vm_reboot", "vm-b", 120, {{"duration_ms", "60000"}});
  // Unknown name: counted, contributes nothing.
  put("bogus_event", "vm-a", 30);
  // Unmapped target: lands in the "" row.
  put("slow_io", "vm-x", 30);
  // Outside the 12h window: invisible to the heatmap.
  put("vm_crash", "vm-a", 13 * 60);

  const std::map<std::string, std::map<std::string, std::string>> dims = {
      {"vm-a", {{"region", "rA"}, {"az", "rA-az0"}}},
      {"vm-b", {{"region", "rB"}}},
  };
  HeatmapSpec spec{.window = window, .buckets = 12, .group_dim = "region"};
  auto grid_or = BuildHeatmap(log.QueryAll(window), catalog, dims, spec);
  ASSERT_TRUE(grid_or.ok()) << grid_or.status().ToString();
  const HeatmapGrid& grid = *grid_or;

  ASSERT_EQ(grid.row_keys, (std::vector<std::string>{"", "rA", "rB"}));
  EXPECT_EQ(grid.buckets, 12u);
  EXPECT_EQ(grid.bucket_width_ms, Duration::Hours(1).millis());
  EXPECT_EQ(grid.targets_unmapped, 1u);
  EXPECT_EQ(grid.events_unknown, 1u);

  auto cell = [&grid](const std::vector<double>& plane, size_t row,
                      size_t bucket) {
    return plane[grid.CellIndex(row, bucket)];
  };
  // Row 1 = rA.
  EXPECT_EQ(cell(grid.performance, 1, 0), 1.0);
  EXPECT_EQ(cell(grid.unavailability, 1, 0), 1.0);
  EXPECT_EQ(cell(grid.control_plane, 1, 1), 1.0);
  // Row 2 = rB: the default-duration reboot straddles the bucket edge, the
  // explicit-duration one lands in bucket 1 -> 1.0 + (1.0 + 1.0).
  EXPECT_EQ(cell(grid.unavailability, 2, 0), 1.0);
  EXPECT_EQ(cell(grid.unavailability, 2, 1), 2.0);
  // Row 0 = "" (unmapped vm-x).
  EXPECT_EQ(cell(grid.performance, 0, 0), 1.0);
  // Nothing leaked into later buckets.
  for (size_t b = 2; b < grid.buckets; ++b) {
    for (size_t r = 0; r < grid.rows(); ++r) {
      EXPECT_EQ(cell(grid.unavailability, r, b), 0.0) << r << "," << b;
      EXPECT_EQ(cell(grid.performance, r, b), 0.0) << r << "," << b;
      EXPECT_EQ(cell(grid.control_plane, r, b), 0.0) << r << "," << b;
    }
  }
}

TEST(HeatmapTest, JsonIsStrictAndComplete) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const TimePoint start = At("2026-03-10 00:00");
  const Interval day(start, start + Duration::Hours(24));
  EventLog log;
  RawEvent ev;
  ev.name = "slow_io";
  ev.target = "vm-a";
  ev.time = start + Duration::Minutes(10);
  log.Append(ev);

  const std::map<std::string, std::map<std::string, std::string>> dims = {
      {"vm-a", {{"region", "r\"quoted\""}}}};
  HeatmapSpec spec{.window = day, .buckets = 24, .group_dim = "region"};
  auto grid = BuildHeatmap(log.QueryAll(day), catalog, dims, spec);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();

  const std::string json = RenderHeatmapJson(spec, *grid);
  testjson::JsonValue doc;
  std::string error;
  ASSERT_TRUE(testjson::ParseStrictJson(json, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  const testjson::JsonValue* rows = doc.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_EQ(rows->array[0].str, "r\"quoted\"");
  for (const char* plane : {"unavailability", "performance", "control_plane"}) {
    const testjson::JsonValue* p = doc.Find(plane);
    ASSERT_NE(p, nullptr) << plane;
    ASSERT_TRUE(p->is_array()) << plane;
    ASSERT_EQ(p->array.size(), 1u) << plane;
    EXPECT_EQ(p->array[0].array.size(), 24u) << plane;
  }
  const testjson::JsonValue* spec_echo = doc.Find("spec");
  ASSERT_NE(spec_echo, nullptr);
  EXPECT_EQ(spec_echo->Find("group_dim")->str, "region");
  EXPECT_EQ(doc.Find("targets_unmapped")->number, 0.0);
  EXPECT_EQ(doc.Find("events_unknown")->number, 0.0);
}

// ---------------------------------------------------------------------------
// CdiQueryService over a fake source

/// A CdiReadSource the test controls completely: settable watermark, a
/// canned result, pull/quick counters, and an optional gate that blocks
/// Pull until the test opens it (for QueryServer overload scenarios).
class FakeSource : public CdiReadSource {
 public:
  FakeSource() {
    wm_ = At("2026-03-10 12:00");
    result_.fleet.unavailability = 1.0 / 3.0;
    result_.fleet.performance = 2.0 / 7.0;
    result_.fleet.control_plane = 0.125;
    result_.fleet.service_time = Duration::Minutes(4 * 1440);
    result_.fleet_baseline.interruption_count = 3;
    result_.fleet_baseline.downtime_percentage = 1.0 / 17.0;
    result_.vms_deferred = 0;
    auto row = [](const std::string& id, const std::string& region,
                  const std::string& az, double p) {
      VmCdiRecord rec;
      rec.vm_id = id;
      rec.dims = {{"region", region}, {"az", az}};
      rec.cdi.performance = p;
      rec.cdi.service_time = Duration::Minutes(1440);
      return rec;
    };
    result_.per_vm = {row("vm-a", "r0", "z0", 1.0 / 3.0),
                      row("vm-b", "r0", "z1", 0.25),
                      row("vm-c", "r1", "z0", 1.0 / 7.0),
                      row("vm-d", "r1", "z1", 0.5)};
    result_.vms_evaluated = result_.per_vm.size();
    quick_fleet_.performance = 99.5;  // distinct from the canonical fold
  }

  std::string_view name() const override { return "fake"; }

  TimePoint watermark() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return wm_;
  }

  StatusOr<DailyCdiResult> Pull(const Deadline& deadline) override {
    (void)deadline;
    std::unique_lock<std::mutex> lock(mu_);
    ++pulls_started_;
    started_cv_.notify_all();
    gate_cv_.wait(lock, [this] { return !gate_closed_; });
    ++pulls_;
    DailyCdiResult copy = result_;
    return copy;
  }

  StatusOr<VmCdi> QuickFleetCdi() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++quick_calls_;
    return quick_fleet_;
  }

  void AdvanceWatermark(Duration by) {
    std::lock_guard<std::mutex> lock(mu_);
    wm_ += by;
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    gate_cv_.notify_all();
  }

  /// Blocks until at least `n` Pull calls have started (possibly gated).
  void AwaitPullsStarted(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [this, n] { return pulls_started_ >= n; });
  }

  size_t pulls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pulls_;
  }
  size_t quick_calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return quick_calls_;
  }
  DailyCdiResult result() const {
    std::lock_guard<std::mutex> lock(mu_);
    return result_;
  }
  VmCdi quick_fleet() const {
    std::lock_guard<std::mutex> lock(mu_);
    return quick_fleet_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable started_cv_;
  bool gate_closed_ = false;
  size_t pulls_ = 0;
  size_t pulls_started_ = 0;
  size_t quick_calls_ = 0;
  TimePoint wm_;
  DailyCdiResult result_;
  VmCdi quick_fleet_;
};

TEST(CdiQueryServiceTest, RejectsMalformedQueries) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_bad"});
  CdiQuery dup;
  dup.group_by = {"region", "region"};
  EXPECT_EQ(service.Query(dup).status().code(), StatusCode::kInvalidArgument);
  CdiQuery empty_dim;
  empty_dim.group_by = {""};
  EXPECT_EQ(service.Query(empty_dim).status().code(),
            StatusCode::kInvalidArgument);
  CdiQuery empty_filter;
  empty_filter.filter = {{"", "x"}};
  EXPECT_EQ(service.Query(empty_filter).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(source.pulls(), 0u) << "invalid queries must not reach the source";
}

TEST(CdiQueryServiceTest, FreshAlwaysPulls) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_fresh"});
  CdiQuery q;
  q.consistency = Consistency::kFresh;
  q.group_by = {"az"};
  for (int i = 0; i < 2; ++i) {
    auto response = service.Query(q);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->served_from_cache);
    EXPECT_FALSE(response->served_from_cube);
    EXPECT_EQ(response->staleness, Duration::Zero());
  }
  EXPECT_EQ(source.pulls(), 2u);
  EXPECT_EQ(service.stats().source_pulls, 2u);
}

TEST(CdiQueryServiceTest, CachedHitsUntilWatermarkAdvances) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_cached"});
  CdiQuery q;
  q.consistency = Consistency::kCached;
  q.group_by = {"az"};

  auto first = service.Query(q);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->served_from_cache);
  EXPECT_EQ(source.pulls(), 1u);

  auto second = service.Query(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->served_from_cache);
  EXPECT_EQ(source.pulls(), 1u) << "cache hit must not touch the source";
  EXPECT_EQ(service.stats().cache_hits, 1u);
  // The cached answer is the same bits.
  EXPECT_EQ(first->fleet.unavailability, second->fleet.unavailability);
  EXPECT_EQ(first->fleet.performance, second->fleet.performance);
  ASSERT_EQ(first->drilldown.groups.size(), second->drilldown.groups.size());
  for (size_t i = 0; i < first->drilldown.groups.size(); ++i) {
    EXPECT_EQ(first->drilldown.groups[i].cdi.performance,
              second->drilldown.groups[i].cdi.performance);
  }

  // Watermark advance invalidates: the next kCached query re-pulls.
  source.AdvanceWatermark(Duration::Minutes(1));
  auto third = service.Query(q);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->served_from_cache);
  EXPECT_EQ(source.pulls(), 2u);
  EXPECT_GE(service.cache_stats().stale_rejections, 1u);
}

TEST(CdiQueryServiceTest, StaleOkServesFromCubeWithinBound) {
  FakeSource source;
  // Cache off, cubes on: isolates the cube consistency path.
  CdiQueryService service(&source, {.cache_entries = 0,
                                    .materialize_cubes = true,
                                    .metric_prefix = "serve_test.svc_stale"});
  CdiQuery warm;
  warm.consistency = Consistency::kFresh;
  warm.group_by = {"region"};
  ASSERT_TRUE(service.Query(warm).ok());
  ASSERT_EQ(source.pulls(), 1u);

  source.AdvanceWatermark(Duration::Minutes(2));
  CdiQuery q;
  q.consistency = Consistency::kStaleOk;
  q.max_staleness = Duration::Minutes(5);
  q.group_by = {"region"};
  auto bounded = service.Query(q);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded->served_from_cube);
  EXPECT_EQ(bounded->staleness, Duration::Minutes(2));
  EXPECT_EQ(source.pulls(), 1u) << "lag within the bound must not pull";
  EXPECT_EQ(service.stats().cube_answers, 1u);

  source.AdvanceWatermark(Duration::Minutes(10));
  auto beyond = service.Query(q);
  ASSERT_TRUE(beyond.ok());
  EXPECT_FALSE(beyond->served_from_cube);
  EXPECT_EQ(source.pulls(), 2u) << "lag beyond the bound must re-pull";
}

TEST(CdiQueryServiceTest, PartialMergeKeepsQuickPathBits) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_quick"});
  CdiQuery q;
  q.consistency = Consistency::kFresh;
  q.fleet_fidelity = FleetFidelity::kPartialMerge;
  auto response = service.Query(q);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->fleet.performance, source.quick_fleet().performance);
  EXPECT_EQ(source.quick_calls(), 1u);

  CdiQuery canonical;
  canonical.consistency = Consistency::kFresh;
  auto canon = service.Query(canonical);
  ASSERT_TRUE(canon.ok());
  EXPECT_EQ(canon->fleet.performance, source.result().fleet.performance);
}

TEST(CdiQueryServiceTest, ExpiredDeadlineIsRejectedBeforeServing) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_dl"});
  CdiQuery q;
  q.deadline = Deadline::After(Duration::Zero());
  auto response = service.Query(q);
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().deadline_rejections, 1u);
  EXPECT_EQ(source.pulls(), 0u);
}

TEST(CdiQueryServiceTest, CacheHitSharesDetailPayload) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_detail"});
  CdiQuery q;
  q.consistency = Consistency::kCached;
  q.include_detail = true;
  auto first = service.Query(q);
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->detail, nullptr);
  auto second = service.Query(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->served_from_cache);
  EXPECT_EQ(first->detail.get(), second->detail.get())
      << "a cache hit hands out the same immutable payload";
  EXPECT_EQ(first->detail->per_vm.size(), source.result().per_vm.size());
}

TEST(CdiQueryServiceTest, CubesOffMatchesCubesOnBitwise) {
  FakeSource source;
  CdiQueryService on(&source, {.cache_entries = 8,
                               .materialize_cubes = true,
                               .metric_prefix = "serve_test.svc_on"});
  CdiQueryService off(&source, {.cache_entries = 0,
                                .materialize_cubes = false,
                                .metric_prefix = "serve_test.svc_off"});
  CdiQuery q;
  q.consistency = Consistency::kCached;
  q.group_by = {"region", "az"};
  auto a = on.Query(q);
  auto b = off.Query(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->fleet.unavailability, b->fleet.unavailability);
  EXPECT_EQ(a->fleet.performance, b->fleet.performance);
  EXPECT_EQ(a->fleet.control_plane, b->fleet.control_plane);
  ASSERT_EQ(a->drilldown.groups.size(), b->drilldown.groups.size());
  for (size_t i = 0; i < a->drilldown.groups.size(); ++i) {
    EXPECT_EQ(a->drilldown.groups[i].key, b->drilldown.groups[i].key);
    EXPECT_EQ(a->drilldown.groups[i].cdi.performance,
              b->drilldown.groups[i].cdi.performance);
    EXPECT_EQ(a->drilldown.groups[i].cdi.service_time,
              b->drilldown.groups[i].cdi.service_time);
  }
}

TEST(CdiQueryServiceTest, ProbablyCheapTracksCacheAndCube) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_probe"});
  CdiQuery q;
  q.consistency = Consistency::kCached;
  q.group_by = {"az"};
  EXPECT_FALSE(service.ProbablyCheap(q)) << "nothing warmed yet";
  ASSERT_TRUE(service.Query(q).ok());
  EXPECT_TRUE(service.ProbablyCheap(q));

  CdiQuery fresh = q;
  fresh.consistency = Consistency::kFresh;
  EXPECT_FALSE(service.ProbablyCheap(fresh)) << "kFresh is never cheap";

  CdiQuery invalid;
  invalid.group_by = {"az", "az"};
  EXPECT_FALSE(service.ProbablyCheap(invalid));

  // A different question with the cube warm is still cheap (cube answers
  // without a pull while the watermark is unchanged).
  CdiQuery other;
  other.consistency = Consistency::kCached;
  other.group_by = {"region"};
  EXPECT_TRUE(service.ProbablyCheap(other));

  source.AdvanceWatermark(Duration::Minutes(1));
  EXPECT_FALSE(service.ProbablyCheap(q)) << "watermark advance invalidates";
}

TEST(CdiQueryServiceTest, ResponseJsonIsStrict) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.svc_json"});
  CdiQuery q;
  q.consistency = Consistency::kCached;
  q.group_by = {"region"};
  q.filter = {{"az", "z\"0"}};
  q.include_detail = true;
  auto response = service.Query(q);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const std::string json = RenderResponseJson(q, *response);
  testjson::JsonValue doc;
  std::string error;
  ASSERT_TRUE(testjson::ParseStrictJson(json, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  const testjson::JsonValue* query_echo = doc.Find("query");
  ASSERT_NE(query_echo, nullptr);
  EXPECT_EQ(query_echo->Find("consistency")->str, "cached");
  const testjson::JsonValue* fleet = doc.Find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_TRUE(fleet->Find("cdi_u")->is_number());
  const testjson::JsonValue* groups = doc.Find("groups");
  ASSERT_NE(groups, nullptr);
  EXPECT_EQ(groups->array.size(), response->drilldown.groups.size());
  const testjson::JsonValue* detail = doc.Find("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->Find("per_vm_rows")->number,
            static_cast<double>(response->detail->per_vm.size()));
  EXPECT_EQ(doc.Find("served_from_cache")->kind,
            testjson::JsonValue::Kind::kBool);
}

// ---------------------------------------------------------------------------
// QueryServer

TEST(QueryServerTest, SubmitRoundTrip) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.srv_rt"});
  QueryServer server(&service, {.workers = 2});
  CdiQuery q;
  q.consistency = Consistency::kCached;
  q.group_by = {"az"};
  auto future = server.Submit(q);
  auto response = future.get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->fleet.performance, source.result().fleet.performance);
  server.Shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(QueryServerTest, InvalidQueryStillGetsAnAnswer) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.srv_inv"});
  QueryServer server(&service, {.workers = 1});
  CdiQuery bad;
  bad.group_by = {"az", "az"};
  auto status = server.Submit(bad).get().status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryServerTest, ShutdownRejectsNewQueries) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.srv_down"});
  QueryServer server(&service, {.workers = 1});
  server.Shutdown();
  auto status = server.Submit(CdiQuery{}).get().status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(QueryServerTest, OverloadShedsExpensiveQueriesNotCheapOnes) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.srv_shed"});
  // Warm the cache so a dashboard-style repeat classifies as never-shed.
  CdiQuery warm;
  warm.consistency = Consistency::kCached;
  ASSERT_TRUE(service.Query(warm).ok());

  QueryServerOptions options;
  options.workers = 1;
  options.flow.capacity = 8;
  options.flow.high_watermark = 2;
  options.flow.low_watermark = 1;
  options.flow.metric_prefix = "serve_test.srv_shed.queue";
  QueryServer server(&service, options);

  // Occupy the single worker inside a gated source pull.
  source.CloseGate();
  CdiQuery blocker;
  blocker.consistency = Consistency::kFresh;
  auto blocked = server.Submit(blocker);
  source.AwaitPullsStarted(2);  // warm-up pull + the gated one

  // Two fine-grained queries fill the queue to the high watermark...
  CdiQuery fine;
  fine.consistency = Consistency::kFresh;
  fine.group_by = {"region", "az", "missing_dim"};
  auto queued_a = server.Submit(fine);
  auto queued_b = server.Submit(fine);
  // ...so the next expensive ad-hoc query is shed at admission.
  auto shed = server.Submit(fine);
  auto shed_status = shed.get().status();
  EXPECT_EQ(shed_status.code(), StatusCode::kResourceExhausted);

  // The warm (cache-hit) query is kUnavailability class: admitted even in
  // shedding mode.
  auto cheap = server.Submit(warm);

  source.OpenGate();
  EXPECT_TRUE(blocked.get().ok());
  EXPECT_TRUE(queued_a.get().ok());
  EXPECT_TRUE(queued_b.get().ok());
  auto cheap_response = cheap.get();
  ASSERT_TRUE(cheap_response.ok()) << cheap_response.status().ToString();
  server.Shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_EQ(server.queue_stats().shed_total, 1u);
}

TEST(QueryServerTest, DeadlineExpiredInQueueIsDropped) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.srv_drop"});
  QueryServerOptions options;
  options.workers = 1;
  options.flow.metric_prefix = "serve_test.srv_drop.queue";
  QueryServer server(&service, options);

  source.CloseGate();
  CdiQuery blocker;
  blocker.consistency = Consistency::kFresh;
  auto blocked = server.Submit(blocker);
  source.AwaitPullsStarted(1);

  CdiQuery doomed;
  doomed.consistency = Consistency::kFresh;
  doomed.deadline = Deadline::After(Duration::Zero());
  auto dropped = server.Submit(doomed);

  source.OpenGate();
  EXPECT_TRUE(blocked.get().ok());
  auto status = dropped.get().status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  server.Shutdown();
  EXPECT_EQ(server.stats().deadline_drops, 1u);
}

TEST(QueryServerTest, ConcurrentSubmitsAllResolve) {
  FakeSource source;
  CdiQueryService service(&source, {.metric_prefix = "serve_test.srv_conc"});
  QueryServerOptions options;
  options.workers = 3;
  options.flow.metric_prefix = "serve_test.srv_conc.queue";
  QueryServer server(&service, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        CdiQuery q;
        switch ((t + i) % 3) {
          case 0:
            q.consistency = Consistency::kCached;
            break;
          case 1:
            q.consistency = Consistency::kCached;
            q.group_by = {"az"};
            break;
          default:
            q.consistency = Consistency::kFresh;
            q.group_by = {"region", "az"};
            break;
        }
        auto result = server.Submit(q).get();
        if (result.ok()) {
          ++ok_count;
        } else {
          ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted);
          ++rejected_count;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.Shutdown();
  EXPECT_EQ(ok_count + rejected_count, kThreads * kPerThread)
      << "every future must resolve";
  EXPECT_GT(ok_count, 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.executed + stats.shed + stats.deadline_drops,
            stats.submitted);
}

}  // namespace
}  // namespace cdibot::serve
