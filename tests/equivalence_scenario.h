// Shared randomized-scenario generator for the differential equivalence
// suites (stream-vs-batch and sharded-vs-single-node). Each seed builds one
// day of adversarial input: out-of-order (shuffled) arrivals, VMs with
// partial service windows, mid-day churn (VMs registered late or
// re-registered with a changed window), unknown/duplicate/out-of-window
// events, stateful add/del streams and logged-duration events.
#ifndef CDIBOT_TESTS_EQUIVALENCE_SCENARIO_H_
#define CDIBOT_TESTS_EQUIVALENCE_SCENARIO_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cdi/pipeline.h"
#include "common/rng.h"

namespace cdibot::testutil {

struct Scenario {
  Interval day;
  /// Final service infos — what the batch job is given, and what the
  /// streaming engine ends up with after churn.
  std::vector<VmServiceInfo> vms;
  /// VMs that start the stream with a DIFFERENT (pre-churn) window and are
  /// re-registered with the final one mid-stream.
  std::map<std::string, VmServiceInfo> initial_override;
  /// Ids registered only after some of their events arrived (orphan path).
  std::vector<std::string> late_registered;
  /// Events in arrival order (shuffled; includes junk).
  std::vector<RawEvent> arrivals;
};

inline Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario sc;
  sc.day = Interval(TimePoint::Parse("2026-03-10 00:00").value(),
                    TimePoint::Parse("2026-03-11 00:00").value());

  const int num_vms = static_cast<int>(rng.UniformInt(6, 24));
  for (int v = 0; v < num_vms; ++v) {
    VmServiceInfo vm;
    vm.vm_id = "vm-" + std::to_string(v);
    vm.dims = {{"region", "r0"},
               {"az", rng.Bernoulli(0.5) ? "r0-az0" : "r0-az1"}};
    // ~1/3 of VMs have partial service windows (created or released
    // mid-day); the rest serve the full day. Some windows deliberately
    // start before / end after the day to exercise clamping.
    if (rng.Bernoulli(0.33)) {
      const int64_t a = rng.UniformInt(-6 * 60, 18 * 60);
      const int64_t b = a + rng.UniformInt(2 * 60, 20 * 60);
      vm.service_period = Interval(sc.day.start + Duration::Minutes(a),
                                   sc.day.start + Duration::Minutes(b));
    } else {
      vm.service_period = sc.day;
    }
    // Churn: some VMs first appear with a different window and switch to
    // the final one mid-stream.
    if (rng.Bernoulli(0.25)) {
      VmServiceInfo initial = vm;
      initial.service_period = Interval(
          sc.day.start,
          sc.day.start + Duration::Minutes(rng.UniformInt(60, 12 * 60)));
      sc.initial_override[vm.vm_id] = initial;
    } else if (rng.Bernoulli(0.25)) {
      sc.late_registered.push_back(vm.vm_id);
    }
    sc.vms.push_back(std::move(vm));
  }

  auto put = [&sc](RawEvent ev) { sc.arrivals.push_back(std::move(ev)); };
  auto minute = [&sc](int64_t m) {
    return sc.day.start + Duration::Minutes(m);
  };
  const char* windowed[] = {"slow_io", "packet_loss", "vcpu_high",
                            "vm_start_failed"};
  const Severity levels[] = {Severity::kWarning, Severity::kCritical,
                             Severity::kFatal};

  for (const VmServiceInfo& vm : sc.vms) {
    // Windowed bursts.
    const int bursts = static_cast<int>(rng.UniformInt(0, 4));
    for (int b = 0; b < bursts; ++b) {
      const char* name = windowed[rng.UniformInt(0, 3)];
      const Severity level = levels[rng.UniformInt(0, 2)];
      const int64_t start = rng.UniformInt(-120, 24 * 60 + 60);
      const int len = static_cast<int>(rng.UniformInt(1, 40));
      for (int i = 0; i < len; ++i) {
        RawEvent ev;
        ev.name = name;
        ev.time = minute(start + i);
        ev.target = vm.vm_id;
        ev.level = level;
        ev.expire_interval = Duration::Hours(24);
        // Occasional exact duplicate delivery.
        if (rng.Bernoulli(0.05)) put(ev);
        put(std::move(ev));
      }
    }
    // Stateful ddos stream: add ... del, sometimes dangling or duplicated.
    if (rng.Bernoulli(0.4)) {
      const int64_t a = rng.UniformInt(0, 20 * 60);
      const int64_t b = a + rng.UniformInt(5, 4 * 60);
      RawEvent add;
      add.name = "ddos_blackhole_add";
      add.time = minute(a);
      add.target = vm.vm_id;
      add.level = Severity::kCritical;
      add.expire_interval = Duration::Hours(2);
      put(add);
      if (rng.Bernoulli(0.3)) put(add);  // duplicate add detail
      if (rng.Bernoulli(0.8)) {
        RawEvent del = add;
        del.name = "ddos_blackhole_del";
        del.time = minute(b);
        put(std::move(del));
      }  // else: unpaired start, closed at expire
    }
    // Logged-duration brownout.
    if (rng.Bernoulli(0.3)) {
      RawEvent ev;
      ev.name = "qemu_live_upgrade";
      ev.time = minute(rng.UniformInt(30, 23 * 60));
      ev.target = vm.vm_id;
      ev.level = Severity::kWarning;
      ev.expire_interval = Duration::Hours(1);
      ev.attrs["duration_ms"] =
          std::to_string(rng.UniformInt(1000, 600000));
      put(std::move(ev));
    }
    // Junk both engines must ignore: unknown names, far-out-of-window.
    if (rng.Bernoulli(0.5)) {
      RawEvent ev;
      ev.name = "not_in_catalog";
      ev.time = minute(rng.UniformInt(0, 24 * 60));
      ev.target = vm.vm_id;
      ev.level = Severity::kWarning;
      ev.expire_interval = Duration::Hours(1);
      put(std::move(ev));
    }
    if (rng.Bernoulli(0.3)) {
      RawEvent ev;
      ev.name = "slow_io";
      ev.time = sc.day.start - Duration::Days(3);
      ev.target = vm.vm_id;
      ev.level = Severity::kCritical;
      ev.expire_interval = Duration::Hours(1);
      put(std::move(ev));
    }
  }

  // Out-of-order delivery: shuffle the whole stream.
  for (size_t i = sc.arrivals.size(); i > 1; --i) {
    std::swap(sc.arrivals[i - 1],
              sc.arrivals[static_cast<size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(i) - 1))]);
  }
  return sc;
}

}  // namespace cdibot::testutil

#endif  // CDIBOT_TESTS_EQUIVALENCE_SCENARIO_H_
