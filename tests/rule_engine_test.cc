#include <gtest/gtest.h>

#include "rules/rule_engine.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Make(const char* name, const char* time,
              Duration expire = Duration::Hours(1)) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = "vm-1";
  ev.expire_interval = expire;
  return ev;
}

TEST(RuleEngineTest, RegisterValidation) {
  RuleEngine engine;
  EXPECT_TRUE(engine.Register("", "a", {}).IsInvalidArgument());
  EXPECT_TRUE(engine.Register("bad_expr", "a &&", {}).IsInvalidArgument());
  ASSERT_TRUE(engine.Register("ok", "a", {}).ok());
  EXPECT_TRUE(engine.Register("ok", "b", {}).IsAlreadyExists());
  EXPECT_EQ(engine.num_rules(), 1u);
}

TEST(RuleEngineTest, ActiveEventNamesHonorExpiry) {
  const std::vector<RawEvent> events = {
      Make("slow_io", "2024-01-01 12:00", Duration::Minutes(10)),
      Make("nic_flapping", "2024-01-01 11:00", Duration::Minutes(30)),
  };
  // At 12:05: slow_io active, nic_flapping expired (11:30).
  auto active = RuleEngine::ActiveEventNames(events, T("2024-01-01 12:05"));
  EXPECT_EQ(active, (std::set<std::string>{"slow_io"}));
  // Before extraction: nothing.
  EXPECT_TRUE(
      RuleEngine::ActiveEventNames(events, T("2024-01-01 10:00")).empty());
  // Expiry boundary is exclusive.
  active = RuleEngine::ActiveEventNames(events, T("2024-01-01 12:10"));
  EXPECT_TRUE(active.empty());
}

// Example 1's complete scenario: slow_io at 12:17 + nic_flapping at
// 12:16:28 match nic_error_cause_slow_io but not nic_error_cause_vm_hang.
TEST(RuleEngineTest, PaperExample1EndToEnd) {
  auto engine = RuleEngine::BuiltIn().value();
  const std::vector<RawEvent> events = {
      Make("slow_io", "2024-01-01 12:17"),
      Make("nic_flapping", "2024-01-01 12:16:28"),
  };
  auto matches = engine.MatchEvents(events, "vm-1", T("2024-01-01 12:18"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].rule_name, "nic_error_cause_slow_io");
  EXPECT_EQ(matches[0].target, "vm-1");
  ASSERT_EQ(matches[0].actions.size(), 3u);
  EXPECT_EQ(matches[0].actions[0].action, "live_migration");
}

TEST(RuleEngineTest, MultipleRulesCanMatch) {
  RuleEngine engine;
  ASSERT_TRUE(engine.Register("r1", "a", {{"x", 1}}).ok());
  ASSERT_TRUE(engine.Register("r2", "a || b", {{"y", 2}}).ok());
  auto matches = engine.Match({"a"}, "vm-1", T("2024-01-01 00:00"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].rule_name, "r1");  // registration order
  EXPECT_EQ(matches[1].rule_name, "r2");
}

TEST(RuleEngineTest, NoMatchOnEmptyActiveSet) {
  auto engine = RuleEngine::BuiltIn().value();
  EXPECT_TRUE(engine.Match({}, "vm-1", T("2024-01-01 00:00")).empty());
}

TEST(RuleEngineTest, NegationRules) {
  RuleEngine engine;
  // Sec. II-F1: CPU contention on a shared VM is expected; only act when
  // the VM is NOT shared (modeled via a meta-event).
  ASSERT_TRUE(
      engine.Register("contention", "vcpu_high && !shared_vm", {{"m", 1}})
          .ok());
  EXPECT_EQ(engine.Match({"vcpu_high"}, "vm", T("2024-01-01 00:00")).size(),
            1u);
  EXPECT_TRUE(engine.Match({"vcpu_high", "shared_vm"}, "vm",
                           T("2024-01-01 00:00"))
                  .empty());
}

}  // namespace
}  // namespace cdibot
