#include <gtest/gtest.h>

#include <algorithm>

#include "abtest/experiment.h"
#include "common/rng.h"

namespace cdibot {
namespace {

std::vector<AbArm> ThreeArms() {
  return {{"action_a", 0.3}, {"action_b", 0.4}, {"action_c", 0.3}};
}

VmCdi Cdi(double u, double p, double c) {
  return VmCdi{.unavailability = u,
               .performance = p,
               .control_plane = c,
               .service_time = Duration::Days(2)};
}

TEST(AbTestExperimentTest, CreateValidation) {
  EXPECT_TRUE(AbTestExperiment::Create({{"only", 1.0}}, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AbTestExperiment::Create({{"a", 0.5}, {"b", 0.6}}, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AbTestExperiment::Create({{"a", 0.5}, {"", 0.5}}, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AbTestExperiment::Create(ThreeArms(), 1).ok());
}

TEST(AbTestExperimentTest, AssignmentFollowsProbabilities) {
  auto exp = AbTestExperiment::Create(ThreeArms(), 42).value();
  std::vector<size_t> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[exp.Assign()];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.4, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.3, 0.02);
}

TEST(AbTestExperimentTest, ObservationBookkeeping) {
  auto exp = AbTestExperiment::Create(ThreeArms(), 1).value();
  EXPECT_TRUE(exp.AddObservation(0, Cdi(0.1, 0.2, 0.3)).ok());
  EXPECT_TRUE(exp.AddObservation(0, Cdi(0.0, 0.1, 0.0)).ok());
  EXPECT_TRUE(exp.AddObservation(9, Cdi(0, 0, 0)).IsOutOfRange());
  EXPECT_EQ(exp.ObservationCount(0), 2u);
  EXPECT_EQ(exp.ObservationCount(1), 0u);
}

TEST(AbTestExperimentTest, AnalyzeRequiresObservations) {
  auto exp = AbTestExperiment::Create(ThreeArms(), 1).value();
  EXPECT_TRUE(exp.Analyze().status().IsFailedPrecondition());
}

TEST(AbTestExperimentTest, DetectsPerformanceDifferenceOnly) {
  // Case 8's structure: arms identical on U and C, arm B much better on P.
  auto exp = AbTestExperiment::Create(ThreeArms(), 17).value();
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const size_t arm = exp.Assign();
    const double p_mean = arm == 1 ? 0.08 : 0.41;
    ASSERT_TRUE(exp.AddObservation(
                       arm, Cdi(std::max(0.0, rng.Normal(0.01, 0.005)),
                                std::max(0.0, rng.Normal(p_mean, 0.05)),
                                std::max(0.0, rng.Normal(0.02, 0.01))))
                    .ok());
  }
  auto report = exp.Analyze();
  ASSERT_TRUE(report.ok());
  const auto& perf = report->per_metric[static_cast<int>(
      StabilityCategory::kPerformance)];
  EXPECT_TRUE(perf.omnibus_significant);
  const auto& unavail = report->per_metric[static_cast<int>(
      StabilityCategory::kUnavailability)];
  EXPECT_FALSE(unavail.omnibus_significant);
  const auto& control = report->per_metric[static_cast<int>(
      StabilityCategory::kControlPlane)];
  EXPECT_FALSE(control.omnibus_significant);
  // Arm B's mean Performance Indicator is clearly the lowest.
  EXPECT_LT(report->arm_means[1][1], report->arm_means[0][1] / 2.0);
  EXPECT_LT(report->arm_means[1][1], report->arm_means[2][1] / 2.0);
}

TEST(AbTestExperimentTest, ReportRendersTableV) {
  auto exp = AbTestExperiment::Create(ThreeArms(), 17).value();
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    const size_t arm = exp.Assign();
    ASSERT_TRUE(exp.AddObservation(arm, Cdi(0.0, rng.Uniform(0.0, 1.0), 0.0))
                    .ok());
  }
  auto report = exp.Analyze();
  ASSERT_TRUE(report.ok());
  const std::string table = report->ToTableString();
  EXPECT_NE(table.find("Unavailability"), std::string::npos);
  EXPECT_NE(table.find("Control-plane"), std::string::npos);
  EXPECT_NE(table.find("Performance"), std::string::npos);
  EXPECT_NE(table.find("action_b"), std::string::npos);
}

TEST(AbTestExperimentTest, CompositeScalarizationFindsDifference) {
  // Sec. VI-D's weighted-summation alternative: one test instead of three.
  auto exp = AbTestExperiment::Create(ThreeArms(), 31).value();
  Rng rng(9);
  for (int i = 0; i < 150; ++i) {
    const size_t arm = exp.Assign();
    const double p_mean = arm == 1 ? 0.08 : 0.40;
    ASSERT_TRUE(exp.AddObservation(
                       arm, Cdi(std::max(0.0, rng.Normal(0.01, 0.004)),
                                std::max(0.0, rng.Normal(p_mean, 0.05)),
                                std::max(0.0, rng.Normal(0.02, 0.01))))
                    .ok());
  }
  auto composite = exp.AnalyzeComposite(1.0, 1.0, 1.0);
  ASSERT_TRUE(composite.ok()) << composite.status().ToString();
  EXPECT_TRUE(composite->omnibus_significant);
  // Weighting performance to zero hides the only real difference.
  auto no_perf = exp.AnalyzeComposite(1.0, 0.0, 1.0);
  ASSERT_TRUE(no_perf.ok());
  EXPECT_FALSE(no_perf->omnibus_significant);
}

TEST(AbTestExperimentTest, CompositeValidation) {
  auto exp = AbTestExperiment::Create(ThreeArms(), 31).value();
  EXPECT_TRUE(
      exp.AnalyzeComposite(-1.0, 1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      exp.AnalyzeComposite(0.0, 0.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      exp.AnalyzeComposite(1.0, 1.0, 1.0).status().IsFailedPrecondition());
}

TEST(AbTestExperimentTest, NullActionArmEvaluatesRuleEffectiveness) {
  // Sec. VI-D: "this methodology can also serve to evaluate the
  // effectiveness of the operation rules if a null action is included".
  // Acting (any migration) vs doing nothing: the rule is effective when
  // the null arm's post-window CDI is significantly worse.
  auto exp = AbTestExperiment::Create(
      {{"live_migration", 0.5}, {"null_action", 0.5}}, 53).value();
  Rng rng(13);
  for (int i = 0; i < 120; ++i) {
    const size_t arm = exp.Assign();
    const double p_mean = arm == 0 ? 0.05 : 0.35;  // untreated VMs suffer
    ASSERT_TRUE(exp.AddObservation(
                       arm, Cdi(0.0, std::max(0.0, rng.Normal(p_mean, 0.05)),
                                0.0))
                    .ok());
  }
  auto report = exp.Analyze();
  ASSERT_TRUE(report.ok());
  const auto& perf =
      report->per_metric[static_cast<int>(StabilityCategory::kPerformance)];
  EXPECT_TRUE(perf.omnibus_significant);
  EXPECT_LT(report->arm_means[0][1], report->arm_means[1][1]);
}

TEST(AbTestExperimentTest, IdenticalArmsNotSignificant) {
  auto exp =
      AbTestExperiment::Create({{"a", 0.5}, {"b", 0.5}}, 23).value();
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const size_t arm = exp.Assign();
    ASSERT_TRUE(exp.AddObservation(
                       arm, Cdi(0.0, std::max(0.0, rng.Normal(0.2, 0.05)),
                                0.0))
                    .ok());
  }
  auto report = exp.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report
                   ->per_metric[static_cast<int>(
                       StabilityCategory::kPerformance)]
                   .omnibus_significant);
}

}  // namespace
}  // namespace cdibot
