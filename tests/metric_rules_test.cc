#include <gtest/gtest.h>

#include "extract/metric_rules.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

MetricSeries Latency(std::vector<double> values) {
  MetricSeries series;
  series.metric = "read_latency";
  series.target = "vm-1";
  TimePoint t = T("2024-01-01 12:00");
  for (double v : values) {
    series.points.push_back({t, v});
    t += Duration::Minutes(1);
  }
  return series;
}

TEST(MetricRulesTest, ThresholdViolationsEmitEvents) {
  auto extractor = MetricThresholdExtractor::BuiltIn();
  // slow_io threshold is 20: 3 of 5 samples violate.
  auto events = extractor.Extract(Latency({5.0, 25.0, 30.0, 10.0, 21.0}));
  ASSERT_EQ(events.size(), 3u);
  for (const RawEvent& ev : events) {
    EXPECT_EQ(ev.name, "slow_io");
    EXPECT_EQ(ev.target, "vm-1");
    EXPECT_EQ(ev.level, Severity::kWarning);
  }
}

TEST(MetricRulesTest, EscalationUpgradesSeverity) {
  auto extractor = MetricThresholdExtractor::BuiltIn();
  // 60 exceeds the 50 escalation threshold -> critical.
  auto events = extractor.Extract(Latency({60.0, 30.0}));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].level, Severity::kCritical);
  EXPECT_EQ(events[1].level, Severity::kWarning);
}

TEST(MetricRulesTest, NonMatchingMetricIgnored) {
  auto extractor = MetricThresholdExtractor::BuiltIn();
  MetricSeries other;
  other.metric = "unrelated_metric";
  other.target = "vm-1";
  other.points = {{T("2024-01-01 12:00"), 1e9}};
  EXPECT_TRUE(extractor.Extract(other).empty());
}

TEST(MetricRulesTest, BelowDirectionRule) {
  MetricThresholdExtractor extractor(
      {MetricThresholdRule{.metric = "free_memory",
                           .event_name = "low_memory",
                           .direction = ThresholdDirection::kBelow,
                           .threshold = 1.0,
                           .level = Severity::kCritical}});
  MetricSeries series;
  series.metric = "free_memory";
  series.target = "nc-1";
  series.points = {{T("2024-01-01 00:00"), 0.5},
                   {T("2024-01-01 00:01"), 2.0}};
  auto events = extractor.Extract(series);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "low_memory");
}

TEST(MetricRulesTest, ExactThresholdDoesNotFire) {
  auto extractor = MetricThresholdExtractor::BuiltIn();
  EXPECT_TRUE(extractor.Extract(Latency({20.0})).empty());
}

TEST(MetricRulesTest, TdpRuleFromCase7) {
  auto extractor = MetricThresholdExtractor::BuiltIn();
  MetricSeries power;
  power.metric = "cpu_power_tdp_ratio";
  power.target = "nc-1";
  power.points = {{T("2024-01-01 00:00"), 0.99},
                  {T("2024-01-01 00:05"), 0.5},
                  {T("2024-01-01 00:10"), 0.0}};  // broken collector: silent
  auto events = extractor.Extract(power);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "inspect_cpu_power_tdp");
}

}  // namespace
}  // namespace cdibot
