#include <gtest/gtest.h>

#include <cmath>

#include "weights/ahp.h"

namespace cdibot {
namespace {

TEST(AhpTest, EqualImportanceGivesEqualPriorities) {
  auto m = AhpMatrix::FromSingleComparison(1.0);
  ASSERT_TRUE(m.ok());
  auto res = m->Evaluate();
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->priorities.size(), 2u);
  EXPECT_NEAR(res->priorities[0], 0.5, 1e-9);
  EXPECT_NEAR(res->priorities[1], 0.5, 1e-9);
  EXPECT_NEAR(res->lambda_max, 2.0, 1e-9);
  EXPECT_NEAR(res->consistency_ratio, 0.0, 1e-9);
}

TEST(AhpTest, TwoCriteriaRatioMatchesComparison) {
  // "Criterion 0 is 3x as important as criterion 1" -> 0.75 / 0.25.
  auto m = AhpMatrix::FromSingleComparison(3.0);
  ASSERT_TRUE(m.ok());
  auto res = m->Evaluate();
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->priorities[0], 0.75, 1e-9);
  EXPECT_NEAR(res->priorities[1], 0.25, 1e-9);
}

TEST(AhpTest, PrioritiesSumToOne) {
  auto m = AhpMatrix::FromJudgments({{1.0, 3.0, 5.0},
                                     {1.0 / 3.0, 1.0, 2.0},
                                     {1.0 / 5.0, 1.0 / 2.0, 1.0}});
  ASSERT_TRUE(m.ok());
  auto res = m->Evaluate();
  ASSERT_TRUE(res.ok());
  double sum = 0.0;
  for (double p : res->priorities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Ordering follows the judgments.
  EXPECT_GT(res->priorities[0], res->priorities[1]);
  EXPECT_GT(res->priorities[1], res->priorities[2]);
}

TEST(AhpTest, ConsistentMatrixHasNearZeroCr) {
  // A perfectly consistent matrix built from weights (4, 2, 1).
  auto m = AhpMatrix::FromJudgments(
      {{1.0, 2.0, 4.0}, {0.5, 1.0, 2.0}, {0.25, 0.5, 1.0}});
  ASSERT_TRUE(m.ok());
  auto res = m->Evaluate();
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->lambda_max, 3.0, 1e-6);
  EXPECT_LT(res->consistency_ratio, 1e-6);
  EXPECT_NEAR(res->priorities[0], 4.0 / 7.0, 1e-6);
  EXPECT_NEAR(res->priorities[1], 2.0 / 7.0, 1e-6);
  EXPECT_NEAR(res->priorities[2], 1.0 / 7.0, 1e-6);
}

TEST(AhpTest, InconsistentMatrixHasPositiveCr) {
  // Saaty's classic inconsistent example: a>b=3, b>c=3, but a>c only 1/3.
  auto m = AhpMatrix::FromJudgments({{1.0, 3.0, 1.0 / 3.0},
                                     {1.0 / 3.0, 1.0, 3.0},
                                     {3.0, 1.0 / 3.0, 1.0}});
  ASSERT_TRUE(m.ok());
  auto res = m->Evaluate();
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->consistency_ratio, 0.1);  // clearly inconsistent
}

TEST(AhpTest, ValidationRejectsBadMatrices) {
  EXPECT_TRUE(AhpMatrix::FromJudgments({}).status().IsInvalidArgument());
  // Not square.
  EXPECT_TRUE(AhpMatrix::FromJudgments({{1.0, 2.0}})
                  .status()
                  .IsInvalidArgument());
  // Diagonal not 1.
  EXPECT_TRUE(AhpMatrix::FromJudgments({{2.0, 1.0}, {1.0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Not reciprocal.
  EXPECT_TRUE(AhpMatrix::FromJudgments({{1.0, 2.0}, {2.0, 1.0}})
                  .status()
                  .IsInvalidArgument());
  // Non-positive entries.
  EXPECT_TRUE(AhpMatrix::FromJudgments({{1.0, -2.0}, {-0.5, 1.0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AhpMatrix::FromSingleComparison(0.0).status().IsInvalidArgument());
}

TEST(AhpTest, RandomIndexTable) {
  EXPECT_DOUBLE_EQ(AhpRandomIndex(1), 0.0);
  EXPECT_DOUBLE_EQ(AhpRandomIndex(2), 0.0);
  EXPECT_DOUBLE_EQ(AhpRandomIndex(3), 0.58);
  EXPECT_DOUBLE_EQ(AhpRandomIndex(10), 1.49);
  EXPECT_DOUBLE_EQ(AhpRandomIndex(50), 1.49);  // clamps
}

}  // namespace
}  // namespace cdibot
