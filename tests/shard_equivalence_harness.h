// Shared fixture logic for the sharded-equivalence differential suites: a
// ShardCoordinator over N workers — whatever the transport — must produce
// BIT-IDENTICAL results to a single-node engine fed the same registrations
// and events in the same order. The fleet CDI folds through the canonical
// ascending-vm_id fold on every topology and the baseline merges as raw
// integer sums, so every comparison is EXPECT_EQ on doubles, never
// tolerance-based.
//
// shard_equivalence_test.cc runs this over the in-process transport;
// shard_socket_equivalence_test.cc runs it over real Unix-domain sockets
// (worker threads and kill-9-able worker processes) with and without the
// network chaos layer.
#ifndef CDIBOT_TESTS_SHARD_EQUIVALENCE_HARNESS_H_
#define CDIBOT_TESTS_SHARD_EQUIVALENCE_HARNESS_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cdi/pipeline.h"
#include "shard/coordinator.h"
#include "stream/streaming_engine.h"
#include "equivalence_scenario.h"

namespace cdibot::testutil {

/// The canonical weight recipe all equivalence suites share. As a
/// WeightSpec it also crosses the wire in kInit, and BuildWeightModel()
/// runs the exact same FromCounts/Build path as BuildWeights(), so a
/// process worker's model is bit-identical to the coordinator's.
inline shard::WeightSpec CanonicalWeightSpec() {
  shard::WeightSpec spec;
  spec.ticket_counts = {{"slow_io", 100},
                        {"packet_loss", 60},
                        {"vcpu_high", 40},
                        {"vm_start_failed", 20}};
  spec.ticket_levels = 4;
  return spec;
}

inline EventWeightModel BuildCanonicalWeights() {
  return shard::BuildWeightModel(CanonicalWeightSpec()).value();
}

/// Per-run knobs for RunSharded.
struct ShardRunOptions {
  /// Kill shard (seed % num_shards) at the three-quarter mark, assert the
  /// degraded gather, then recover it.
  bool inject_failure = false;
  /// Applied to the topology options after the defaults (transport mode,
  /// session tuning, chaos decorator, worker binary...).
  std::function<void(shard::ShardTopologyOptions&)> configure;
};

class ShardEquivalenceHarness {
 public:
  ShardEquivalenceHarness()
      : catalog_(EventCatalog::BuiltIn()), weights_(BuildCanonicalWeights()) {}

  const EventCatalog& catalog() const { return catalog_; }
  const EventWeightModel& weights() const { return weights_; }

  /// The single-node reference: same registration/churn/event sequence the
  /// sharded run gets, one engine.
  DailyCdiResult RunSingleNode(const Scenario& sc) {
    StreamingCdiOptions opts;
    opts.window = sc.day;
    auto engine =
        StreamingCdiEngine::Create(&catalog_, &weights_, opts).value();
    for (const VmServiceInfo& vm : sc.vms) {
      if (IsLate(sc, vm.vm_id)) continue;
      auto it = sc.initial_override.find(vm.vm_id);
      EXPECT_TRUE(
          engine.RegisterVm(it != sc.initial_override.end() ? it->second : vm)
              .ok());
    }
    const size_t half = sc.arrivals.size() / 2;
    for (size_t i = 0; i < sc.arrivals.size(); ++i) {
      EXPECT_TRUE(engine.Ingest(sc.arrivals[i]).ok());
      if (i + 1 == half) {
        ApplyChurn(sc, [&](const VmServiceInfo& vm) {
          EXPECT_TRUE(engine.RegisterVm(vm).ok());
        });
        EXPECT_TRUE(engine.Snapshot().ok());  // must not disturb the final
      }
    }
    auto snap = engine.Snapshot();
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    return std::move(snap).value();
  }

  /// The sharded run: identical sequence through the coordinator, plus a
  /// mid-day rebalance right after churn; with inject_failure, shard
  /// (seed % num_shards) is killed at the three-quarter mark, its absence
  /// must surface as a degraded gather, and it is then recovered.
  DailyCdiResult RunSharded(const Scenario& sc, size_t num_shards,
                            uint64_t seed, const ShardRunOptions& run = {}) {
    shard::ShardTopologyOptions topo;
    topo.num_shards = num_shards;
    topo.engine.window = sc.day;
    if (run.configure) run.configure(topo);
    auto coord_or =
        shard::ShardCoordinator::Create(&catalog_, &weights_, std::move(topo));
    EXPECT_TRUE(coord_or.ok()) << coord_or.status().ToString();
    std::unique_ptr<shard::ShardCoordinator> coord =
        std::move(coord_or).value();

    std::vector<VmServiceInfo> initial;
    for (const VmServiceInfo& vm : sc.vms) {
      if (IsLate(sc, vm.vm_id)) continue;
      auto it = sc.initial_override.find(vm.vm_id);
      initial.push_back(it != sc.initial_override.end() ? it->second : vm);
    }
    EXPECT_TRUE(coord->RegisterVms(initial).ok());

    const size_t total = sc.arrivals.size();
    const size_t half = total / 2;
    const size_t three_quarter = total * 3 / 4;
    const size_t victim = seed % num_shards;
    for (size_t i = 0; i < total; ++i) {
      EXPECT_TRUE(coord->Ingest(sc.arrivals[i]).ok());
      if (i + 1 == half) {
        ApplyChurn(sc, [&](const VmServiceInfo& vm) {
          EXPECT_TRUE(coord->RegisterVm(vm).ok());
        });
        EXPECT_TRUE(coord->Snapshot().ok());  // intra-day gather
        // Rebalance with half the day still to stream: the recut includes
        // the late registrations, so ranges really move.
        EXPECT_TRUE(coord->Rebalance().ok());
      }
      if (run.inject_failure && i + 1 == three_quarter &&
          half != three_quarter) {
        EXPECT_TRUE(coord->InjectShardFailure(victim).ok());
        EXPECT_FALSE(coord->ShardAlive(victim));
        // The degraded gather: the dead shard's VMs are deferred, the
        // quality flag is set, the numbers for everyone else still flow.
        const size_t owned = OwnedBy(*coord, sc, victim);
        auto degraded = coord->Snapshot();
        if (num_shards == 1) {
          // Nobody left to answer.
          EXPECT_FALSE(degraded.ok());
        } else {
          EXPECT_TRUE(degraded.ok()) << degraded.status().ToString();
          if (degraded.ok()) {
            EXPECT_TRUE(degraded->quality.degraded);
            EXPECT_EQ(degraded->vms_deferred, owned);
          }
        }
        EXPECT_TRUE(coord->RecoverShard(victim).ok());
        EXPECT_TRUE(coord->ShardAlive(victim));
      }
    }
    auto snap = coord->Snapshot();
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    const shard::ShardFleetStats stats = coord->stats();
    EXPECT_EQ(stats.num_shards, num_shards);
    EXPECT_EQ(stats.shards_alive, num_shards);
    EXPECT_EQ(stats.rebalances, total / 2 > 0 ? 1u : 0u);
    return std::move(snap).value();
  }

  static bool IsLate(const Scenario& sc, const std::string& id) {
    return std::find(sc.late_registered.begin(), sc.late_registered.end(),
                     id) != sc.late_registered.end();
  }

  template <typename Fn>
  static void ApplyChurn(const Scenario& sc, Fn register_vm) {
    for (const VmServiceInfo& vm : sc.vms) {
      if (sc.initial_override.count(vm.vm_id) > 0 || IsLate(sc, vm.vm_id)) {
        register_vm(vm);
      }
    }
  }

  static size_t OwnedBy(const shard::ShardCoordinator& coord,
                        const Scenario& sc, size_t shard) {
    const shard::ShardMap map = coord.Map();
    size_t owned = 0;
    for (const VmServiceInfo& vm : sc.vms) {
      if (map.OwnerOf(vm.vm_id) == shard) ++owned;
    }
    return owned;
  }

  /// Bit-identical comparison: every double compared with EXPECT_EQ.
  static void ExpectIdentical(const DailyCdiResult& want,
                              const DailyCdiResult& got,
                              const std::string& what) {
    EXPECT_EQ(want.fleet.unavailability, got.fleet.unavailability) << what;
    EXPECT_EQ(want.fleet.performance, got.fleet.performance) << what;
    EXPECT_EQ(want.fleet.control_plane, got.fleet.control_plane) << what;
    EXPECT_EQ(want.fleet.service_time, got.fleet.service_time) << what;
    EXPECT_EQ(want.fleet_service_time, got.fleet_service_time) << what;

    EXPECT_EQ(want.fleet_baseline.interruption_count,
              got.fleet_baseline.interruption_count)
        << what;
    EXPECT_EQ(want.fleet_baseline.downtime, got.fleet_baseline.downtime)
        << what;
    EXPECT_EQ(want.fleet_baseline.downtime_percentage,
              got.fleet_baseline.downtime_percentage)
        << what;
    EXPECT_EQ(want.fleet_baseline.annual_interruption_rate,
              got.fleet_baseline.annual_interruption_rate)
        << what;
    EXPECT_EQ(want.fleet_baseline.mtbf, got.fleet_baseline.mtbf) << what;
    EXPECT_EQ(want.fleet_baseline.mttr, got.fleet_baseline.mttr) << what;

    EXPECT_EQ(want.vms_evaluated, got.vms_evaluated) << what;
    EXPECT_EQ(want.vms_skipped, got.vms_skipped) << what;
    EXPECT_EQ(want.vms_failed, got.vms_failed) << what;
    EXPECT_EQ(want.vms_deferred, got.vms_deferred) << what;
    EXPECT_EQ(want.vms_degraded, got.vms_degraded) << what;
    EXPECT_EQ(want.quality.events_quarantined, got.quality.events_quarantined)
        << what;
    EXPECT_EQ(want.quality.events_missing, got.quality.events_missing)
        << what;
    EXPECT_EQ(want.quality.events_shed, got.quality.events_shed) << what;
    EXPECT_EQ(want.quality.degraded, got.quality.degraded) << what;
    EXPECT_EQ(want.resolve_stats.resolved, got.resolve_stats.resolved)
        << what;
    EXPECT_EQ(want.resolve_stats.unknown_dropped,
              got.resolve_stats.unknown_dropped)
        << what;
    EXPECT_EQ(want.resolve_stats.duplicate_details_dropped,
              got.resolve_stats.duplicate_details_dropped)
        << what;
    EXPECT_EQ(want.resolve_stats.dangling_end_dropped,
              got.resolve_stats.dangling_end_dropped)
        << what;
    EXPECT_EQ(want.resolve_stats.unpaired_start_closed,
              got.resolve_stats.unpaired_start_closed)
        << what;

    // Per-VM rows: both sides emit sorted-by-vm_id, so the rows must match
    // positionally and exactly — ids, dims, all three indicators, service
    // time, and the data-quality annotation.
    ASSERT_EQ(want.per_vm.size(), got.per_vm.size()) << what;
    for (size_t i = 0; i < want.per_vm.size(); ++i) {
      const VmCdiRecord& w = want.per_vm[i];
      const VmCdiRecord& g = got.per_vm[i];
      EXPECT_EQ(w.vm_id, g.vm_id) << what << " row " << i;
      EXPECT_EQ(w.dims, g.dims) << what << " " << w.vm_id;
      EXPECT_EQ(w.cdi.unavailability, g.cdi.unavailability)
          << what << " " << w.vm_id;
      EXPECT_EQ(w.cdi.performance, g.cdi.performance)
          << what << " " << w.vm_id;
      EXPECT_EQ(w.cdi.control_plane, g.cdi.control_plane)
          << what << " " << w.vm_id;
      EXPECT_EQ(w.cdi.service_time, g.cdi.service_time)
          << what << " " << w.vm_id;
      EXPECT_EQ(w.quality.events_quarantined, g.quality.events_quarantined)
          << what << " " << w.vm_id;
      EXPECT_EQ(w.quality.events_missing, g.quality.events_missing)
          << what << " " << w.vm_id;
      EXPECT_EQ(w.quality.degraded, g.quality.degraded)
          << what << " " << w.vm_id;
    }

    // Per-event drill-down rows, ditto (sorted by vm_id then event name).
    ASSERT_EQ(want.per_event.size(), got.per_event.size()) << what;
    for (size_t i = 0; i < want.per_event.size(); ++i) {
      const EventCdiRecord& w = want.per_event[i];
      const EventCdiRecord& g = got.per_event[i];
      EXPECT_EQ(w.vm_id, g.vm_id) << what << " event row " << i;
      EXPECT_EQ(w.event_name, g.event_name) << what << " event row " << i;
      EXPECT_EQ(w.category, g.category) << what << " event row " << i;
      EXPECT_EQ(w.damage_minutes, g.damage_minutes)
          << what << " " << w.vm_id << "/" << w.event_name;
      EXPECT_EQ(w.service_time, g.service_time)
          << what << " " << w.vm_id << "/" << w.event_name;
    }
  }

 private:
  EventCatalog catalog_;
  EventWeightModel weights_;
};

}  // namespace cdibot::testutil

#endif  // CDIBOT_TESTS_SHARD_EQUIVALENCE_HARNESS_H_
