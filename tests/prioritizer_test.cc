#include <gtest/gtest.h>

#include "ops/prioritizer.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

ResolvedEvent Res(const char* name, Severity level, StabilityCategory cat) {
  return ResolvedEvent{
      .name = name,
      .target = "vm",
      .period = Interval(T("2024-01-01 10:00"), T("2024-01-01 10:10")),
      .level = level,
      .category = cat};
}

EventWeightModel MakeModel() {
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"packet_loss", 10}, {"gpu_drop", 50},
       {"mem_bw_contention", 5}},
      4);
  return EventWeightModel::Build(std::move(ticket).value(), {}).value();
}

TEST(PrioritizerTest, CreateValidation) {
  const EventWeightModel model = MakeModel();
  EXPECT_TRUE(OperationPrioritizer::Create(nullptr).status()
                  .IsInvalidArgument());
  OperationPrioritizer::Options bad;
  bad.migrate_threshold = 0.0;
  EXPECT_TRUE(OperationPrioritizer::Create(&model, bad).status()
                  .IsInvalidArgument());
  bad.migrate_threshold = 0.9;
  bad.cold_migrate_threshold = 0.5;
  EXPECT_TRUE(OperationPrioritizer::Create(&model, bad).status()
                  .IsInvalidArgument());
}

TEST(PrioritizerTest, DamageRateIsMaxActiveWeight) {
  const EventWeightModel model = MakeModel();
  auto prioritizer = OperationPrioritizer::Create(&model).value();
  PendingVm vm{.vm_id = "vm-1",
               .active_events = {
                   Res("packet_loss", Severity::kWarning,
                       StabilityCategory::kPerformance),
                   Res("slow_io", Severity::kCritical,
                       StabilityCategory::kPerformance),
               }};
  auto op = prioritizer.Score(vm);
  ASSERT_TRUE(op.ok());
  // slow_io: l=0.75, top ticket rank p=1.0 -> 0.875 dominates packet_loss.
  EXPECT_DOUBLE_EQ(op->damage_rate, 0.875);
  EXPECT_EQ(op->driving_event, "slow_io");
}

TEST(PrioritizerTest, SeverityDrivenActionSelection) {
  const EventWeightModel model = MakeModel();
  auto prioritizer = OperationPrioritizer::Create(&model).value();

  // No events -> nothing to do.
  auto idle = prioritizer.Score({.vm_id = "idle"});
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->action, ActionType::kNullAction);
  EXPECT_DOUBLE_EQ(idle->damage_rate, 0.0);

  // Low-severity issue -> ticket only (Sec. VIII-C: "low-severity issues
  // might result in a ticket being filed").
  auto low = prioritizer.Score(
      {.vm_id = "low",
       .active_events = {Res("mem_bw_contention", Severity::kInfo,
                             StabilityCategory::kPerformance)}});
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->action, ActionType::kRepairRequest);

  // Mid damage -> live migration.
  auto mid = prioritizer.Score(
      {.vm_id = "mid",
       .active_events = {Res("slow_io", Severity::kCritical,
                             StabilityCategory::kPerformance)}});
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->action, ActionType::kLiveMigration);

  // Full-weight damage (unavailability) -> cold migration.
  auto fatal = prioritizer.Score(
      {.vm_id = "fatal",
       .active_events = {Res("vm_crash", Severity::kFatal,
                             StabilityCategory::kUnavailability)}});
  ASSERT_TRUE(fatal.ok());
  EXPECT_DOUBLE_EQ(fatal->damage_rate, 1.0);
  EXPECT_EQ(fatal->action, ActionType::kColdMigration);
}

TEST(PrioritizerTest, RankOrdersByDescendingDamage) {
  const EventWeightModel model = MakeModel();
  auto prioritizer = OperationPrioritizer::Create(&model).value();
  std::vector<PendingVm> vms = {
      {.vm_id = "vm-low",
       .active_events = {Res("packet_loss", Severity::kInfo,
                             StabilityCategory::kPerformance)}},
      {.vm_id = "vm-down",
       .active_events = {Res("vm_crash", Severity::kFatal,
                             StabilityCategory::kUnavailability)}},
      {.vm_id = "vm-mid",
       .active_events = {Res("slow_io", Severity::kCritical,
                             StabilityCategory::kPerformance)}},
  };
  auto ranked = prioritizer.Rank(vms);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].vm_id, "vm-down");
  EXPECT_EQ((*ranked)[1].vm_id, "vm-mid");
  EXPECT_EQ((*ranked)[2].vm_id, "vm-low");
  // The paper's motivating example: between two migrations, the VM with the
  // higher event weights goes first.
  EXPECT_GT((*ranked)[0].damage_rate, (*ranked)[1].damage_rate);
}

TEST(PrioritizerTest, TieBreaksByVmId) {
  const EventWeightModel model = MakeModel();
  auto prioritizer = OperationPrioritizer::Create(&model).value();
  std::vector<PendingVm> vms = {
      {.vm_id = "vm-b",
       .active_events = {Res("slow_io", Severity::kCritical,
                             StabilityCategory::kPerformance)}},
      {.vm_id = "vm-a",
       .active_events = {Res("slow_io", Severity::kCritical,
                             StabilityCategory::kPerformance)}},
  };
  auto ranked = prioritizer.Rank(vms);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0].vm_id, "vm-a");
}

}  // namespace
}  // namespace cdibot
