// Fleet observability end-to-end: a coordinator over real shard_worker
// child processes (kSocketProcess — the honest failure boundary) pulls each
// worker's obs snapshot over the session layer and merges it with its own.
// The suite pins the three claims the subsystem makes:
//   1. aggregation is exact — fleet counters equal the sum of the per-shard
//      rows and fleet histograms are bucket-exact merges, never re-sampled;
//   2. trace identity crosses the process boundary — worker RPC spans carry
//      the coordinator's trace ids and parent into the merged Chrome trace,
//      with one named track per process and clocks aligned onto the
//      coordinator's;
//   3. the pull degrades like a gather — a worker killed with SIGKILL
//      mid-day drops out of the fleet view (degraded, not wrong) and
//      rejoins it after RecoverShard.
// JSON outputs are checked with the strict RFC 8259 parser, not a lenient
// validator.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/coordinator.h"
#include "shard_equivalence_harness.h"
#include "strict_json.h"

// Baked in by tests/CMakeLists.txt; points at the built shard_worker.
#ifndef SHARD_WORKER_BIN
#define SHARD_WORKER_BIN ""
#endif

namespace cdibot {
namespace {

const Interval kDay{TimePoint::FromMillis(0), TimePoint::FromMillis(86400000)};

VmServiceInfo FleetVm(const std::string& id) {
  VmServiceInfo vm;
  vm.vm_id = id;
  vm.dims = {{"region", "r1"}};
  vm.service_period = kDay;
  return vm;
}

RawEvent FleetEvent(const std::string& name, const std::string& target,
                    int64_t at_ms) {
  RawEvent ev;
  ev.name = name;
  ev.time = TimePoint::FromMillis(at_ms);
  ev.target = target;
  ev.expire_interval = Duration::Minutes(10);
  ev.attrs = {{"duration_ms", "1500"}};
  return ev;
}

/// Matches fleet.cc's HexId: how span ids appear in merged-trace args.
std::string HexId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

class FleetObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string binary = SHARD_WORKER_BIN;
    ASSERT_FALSE(binary.empty()) << "SHARD_WORKER_BIN not baked in";
    // A clean local registry/tracer so "fleet == sum of rows" sums small,
    // inspectable numbers (handles cached elsewhere stay valid).
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().Enable();
  }
  void TearDown() override {
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
  }

  std::unique_ptr<shard::ShardCoordinator> MakeFleet(size_t num_shards) {
    shard::ShardTopologyOptions topo;
    topo.num_shards = num_shards;
    topo.engine.window = kDay;
    topo.transport = shard::ShardTransportMode::kSocketProcess;
    topo.worker_binary = SHARD_WORKER_BIN;
    topo.weight_spec = testutil::CanonicalWeightSpec();
    topo.worker_tracing = true;  // kInit turns each worker's tracer on
    auto coord_or = shard::ShardCoordinator::Create(&catalog_, &weights_,
                                                    std::move(topo));
    EXPECT_TRUE(coord_or.ok()) << coord_or.status().ToString();
    return std::move(coord_or).value();
  }

  /// Registers a small fleet and streams one round of events through it,
  /// ending on a settled gather (which exercises every worker's RPC path).
  void RunTraffic(shard::ShardCoordinator& coord, int64_t base_ms) {
    std::vector<VmServiceInfo> vms;
    for (char c = 'a'; c <= 'f'; ++c) {
      vms.push_back(FleetVm(std::string("vm-") + c));
    }
    ASSERT_TRUE(coord.RegisterVms(vms).ok());
    std::vector<RawEvent> events;
    for (int i = 0; i < 24; ++i) {
      const std::string target =
          std::string("vm-") + static_cast<char>('a' + i % 6);
      events.push_back(FleetEvent(i % 2 == 0 ? "slow_io" : "packet_loss",
                                  target, base_ms + i * 60000));
    }
    ASSERT_TRUE(coord.IngestBatch(events).ok());
    auto snap = coord.Snapshot();
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  }

  /// The exactness contract: every fleet-aggregated number in `fleet` must
  /// re-derive, exactly, from the per-process rows it was merged from.
  static void ExpectAggregatesExact(const obs::FleetObsSnapshot& fleet) {
    for (const obs::CounterSnapshot& c : fleet.counters) {
      uint64_t sum = 0;
      for (const obs::ProcessObs& p : fleet.processes) {
        for (const obs::CounterSnapshot& pc : p.snap.counters) {
          if (pc.name == c.name) sum += pc.value;
        }
      }
      EXPECT_EQ(c.value, sum) << c.name;
    }
    // No process counter is dropped from the fleet list.
    for (const obs::ProcessObs& p : fleet.processes) {
      for (const obs::CounterSnapshot& pc : p.snap.counters) {
        bool found = false;
        for (const obs::CounterSnapshot& c : fleet.counters) {
          if (c.name == pc.name) found = true;
        }
        EXPECT_TRUE(found) << p.process << " counter " << pc.name;
      }
    }
    // Histograms: the fleet buckets are exactly MergeHistogramBuckets over
    // the per-process buckets — same counts, sums, and sparse bucket list.
    for (const obs::HistogramBuckets& h : fleet.histograms) {
      obs::HistogramBuckets manual;
      manual.name = h.name;
      for (const obs::ProcessObs& p : fleet.processes) {
        for (const obs::HistogramBuckets& ph : p.snap.histograms) {
          if (ph.name == h.name) obs::MergeHistogramBuckets(&manual, ph);
        }
      }
      EXPECT_EQ(h.count, manual.count) << h.name;
      EXPECT_EQ(h.sum, manual.sum) << h.name;
      EXPECT_EQ(h.min, manual.min) << h.name;
      EXPECT_EQ(h.max, manual.max) << h.name;
      EXPECT_EQ(h.buckets, manual.buckets) << h.name;
    }
  }

  static const obs::ProcessObs* FindProcess(const obs::FleetObsSnapshot& fleet,
                                            const std::string& name) {
    for (const obs::ProcessObs& p : fleet.processes) {
      if (p.process == name) return &p;
    }
    return nullptr;
  }

  EventCatalog catalog_ = EventCatalog::BuiltIn();
  EventWeightModel weights_ = testutil::BuildCanonicalWeights();
};

TEST_F(FleetObsTest, FleetCountersEqualSumOfPerShardRows) {
  auto coord = MakeFleet(2);
  ASSERT_NE(coord, nullptr);
  RunTraffic(*coord, 3600000);

  auto workers = coord->PullWorkerObs(/*include_spans=*/true);
  ASSERT_TRUE(workers.ok()) << workers.status().ToString();
  ASSERT_EQ(workers->size(), 2u);
  const obs::FleetObsSnapshot fleet =
      obs::CaptureFleetObsSnapshot(std::move(workers).value());

  ASSERT_EQ(fleet.processes.size(), 3u);
  EXPECT_EQ(fleet.processes[0].process, "coordinator");
  EXPECT_EQ(fleet.processes[0].clock_offset_ns, 0);
  ASSERT_NE(FindProcess(fleet, "shard-0"), nullptr);
  ASSERT_NE(FindProcess(fleet, "shard-1"), nullptr);

  ExpectAggregatesExact(fleet);

  // Not vacuous: both sides actually contributed. The coordinator counted
  // gathers; every worker handled at least one gather RPC and timed it.
  bool fleet_gathers = false;
  for (const obs::CounterSnapshot& c : fleet.counters) {
    if (c.name == "shard.gathers" && c.value >= 1) fleet_gathers = true;
  }
  EXPECT_TRUE(fleet_gathers);
  for (const std::string shard : {"shard-0", "shard-1"}) {
    const obs::ProcessObs* p = FindProcess(fleet, shard);
    ASSERT_NE(p, nullptr);
    bool handled_gather = false;
    for (const obs::HistogramBuckets& h : p->snap.histograms) {
      if (h.name == "shard.rpc.gather.handle_ns" && h.count >= 1) {
        handled_gather = true;
      }
    }
    EXPECT_TRUE(handled_gather) << shard;
    EXPECT_TRUE(p->snap.tracing_enabled) << shard;  // kInit turned it on
  }

  // The statusz renders agree with the structs: strict-parse the JSON and
  // re-check fleet == sum(by_process) for every counter in the document.
  const std::string json = obs::RenderFleetStatuszJson(fleet);
  testjson::JsonValue doc;
  std::string error;
  ASSERT_TRUE(testjson::ParseStrictJson(json, &doc, &error)) << error;
  const testjson::JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_FALSE(counters->object.empty());
  for (const auto& [name, entry] : counters->object) {
    const testjson::JsonValue* fleet_value = entry.Find("fleet");
    const testjson::JsonValue* by_process = entry.Find("by_process");
    ASSERT_NE(fleet_value, nullptr) << name;
    ASSERT_NE(by_process, nullptr) << name;
    double sum = 0.0;
    for (const auto& [proc, v] : by_process->object) sum += v.number;
    EXPECT_DOUBLE_EQ(fleet_value->number, sum) << name;
  }
  const testjson::JsonValue* processes = doc.Find("processes");
  ASSERT_NE(processes, nullptr);
  EXPECT_EQ(processes->array.size(), 3u);

  const std::string text = obs::RenderFleetStatuszText(fleet);
  EXPECT_NE(text.find("coordinator"), std::string::npos);
  EXPECT_NE(text.find("shard-0"), std::string::npos);
  EXPECT_NE(text.find("shard-1"), std::string::npos);
  EXPECT_NE(text.find("[fleet counters]"), std::string::npos);
}

TEST_F(FleetObsTest, WorkerRpcSpansShareCoordinatorTraceIds) {
  const uint64_t test_start_ns = obs::MonotonicNowNs();
  auto coord = MakeFleet(2);
  ASSERT_NE(coord, nullptr);

  // Traffic under one named root span: every scatter leg adopts this
  // context, so every worker-side RPC span must land in this trace.
  obs::TraceContext day_ctx;
  {
    TRACE_SPAN("test.fleet_day");
    day_ctx = obs::CurrentTraceContext();
    RunTraffic(*coord, 3600000);
  }
  ASSERT_NE(day_ctx.trace_id, 0u);

  auto workers = coord->PullWorkerObs(/*include_spans=*/true);
  const uint64_t pull_end_ns = obs::MonotonicNowNs();
  ASSERT_TRUE(workers.ok()) << workers.status().ToString();
  const obs::FleetObsSnapshot fleet =
      obs::CaptureFleetObsSnapshot(std::move(workers).value());

  // Coordinator side: the per-shard scatter spans belong to the day trace.
  std::set<uint64_t> scatter_span_ids;
  for (const obs::PortableSpan& s : fleet.processes[0].snap.spans) {
    if (s.name == "shard.gather.shard" && s.trace_id == day_ctx.trace_id) {
      scatter_span_ids.insert(s.span_id);
    }
  }
  ASSERT_FALSE(scatter_span_ids.empty());

  // Worker side: every gather RPC span carries the coordinator's trace id,
  // and its parent is one of the coordinator's scatter spans — the header's
  // trace context survived encode, wire, decode, and adoption.
  size_t worker_gather_spans = 0;
  for (const obs::ProcessObs& p : fleet.processes) {
    if (p.process == "coordinator") continue;
    for (const obs::PortableSpan& s : p.snap.spans) {
      if (s.name != "shard.rpc.gather") continue;
      ++worker_gather_spans;
      EXPECT_EQ(s.trace_id, day_ctx.trace_id) << p.process;
      EXPECT_EQ(scatter_span_ids.count(s.parent_span_id), 1u) << p.process;
      // Clock alignment: the worker's span, shifted by the measured offset,
      // lands inside the coordinator-clock window of this test (sub-RTT
      // accuracy; allow 100ms of slack for scheduling).
      const int64_t shifted =
          static_cast<int64_t>(s.start_ns) + p.clock_offset_ns;
      EXPECT_GT(shifted, static_cast<int64_t>(test_start_ns) - 100000000)
          << p.process;
      EXPECT_LT(shifted, static_cast<int64_t>(pull_end_ns) + 100000000)
          << p.process;
    }
  }
  EXPECT_GE(worker_gather_spans, 2u);  // at least one per worker

  // Merged Chrome trace: strictly valid JSON, one named track per process,
  // and a worker-track event still wearing the day's trace id.
  const std::string trace_json = obs::MergedChromeTraceJson(fleet);
  testjson::JsonValue doc;
  std::string error;
  ASSERT_TRUE(testjson::ParseStrictJson(trace_json, &doc, &error)) << error;
  const testjson::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<std::string, double> track_pids;  // process name -> pid
  bool worker_event_in_day_trace = false;
  const std::string day_trace_hex = HexId(day_ctx.trace_id);
  for (const testjson::JsonValue& ev : events->array) {
    const testjson::JsonValue* ph = ev.Find("ph");
    const testjson::JsonValue* name = ev.Find("name");
    const testjson::JsonValue* pid = ev.Find("pid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(pid, nullptr);
    if (ph->str == "M" && name->str == "process_name") {
      const testjson::JsonValue* args = ev.Find("args");
      ASSERT_NE(args, nullptr);
      const testjson::JsonValue* track = args->Find("name");
      ASSERT_NE(track, nullptr);
      track_pids[track->str] = pid->number;
      continue;
    }
    if (name->str == "shard.rpc.gather" && pid->number >= 2) {
      const testjson::JsonValue* args = ev.Find("args");
      ASSERT_NE(args, nullptr);
      const testjson::JsonValue* trace_id = args->Find("trace_id");
      ASSERT_NE(trace_id, nullptr);
      if (trace_id->str == day_trace_hex) worker_event_in_day_trace = true;
    }
  }
  ASSERT_EQ(track_pids.count("coordinator"), 1u);
  ASSERT_EQ(track_pids.count("shard-0"), 1u);
  ASSERT_EQ(track_pids.count("shard-1"), 1u);
  std::set<double> distinct_pids;
  for (const auto& [proc, pid] : track_pids) distinct_pids.insert(pid);
  EXPECT_EQ(distinct_pids.size(), track_pids.size());
  EXPECT_TRUE(worker_event_in_day_trace);

  // And the file writer round-trips the same bytes.
  const std::string path =
      ::testing::TempDir() + "fleet_obs_merged_trace.json";
  ASSERT_TRUE(obs::WriteMergedChromeTrace(fleet, path, &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string readback(trace_json.size() + 1, '\0');
  const size_t n = std::fread(readback.data(), 1, readback.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  readback.resize(n);
  EXPECT_EQ(readback, trace_json);
}

TEST_F(FleetObsTest, SpansAreDrainedExactlyOnceAcrossPulls) {
  auto coord = MakeFleet(2);
  ASSERT_NE(coord, nullptr);
  RunTraffic(*coord, 3600000);

  auto first = coord->PullWorkerObs(/*include_spans=*/true);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::set<uint64_t> first_span_ids;
  size_t first_spans = 0;
  for (const obs::ProcessObs& p : *first) {
    for (const obs::PortableSpan& s : p.snap.spans) {
      first_span_ids.insert(s.span_id);
      ++first_spans;
    }
  }
  EXPECT_GT(first_spans, 0u);

  // The pull drains: a second pull ships only spans recorded since (the
  // first pull's own RPC spans), never a span already shipped — the session
  // layer's dedup keeps retries from double-draining, and the drain keeps
  // pulls from double-shipping.
  auto second = coord->PullWorkerObs(/*include_spans=*/true);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (const obs::ProcessObs& p : *second) {
    for (const obs::PortableSpan& s : p.snap.spans) {
      EXPECT_EQ(first_span_ids.count(s.span_id), 0u)
          << p.process << " re-shipped span " << s.name;
    }
  }

  // A metrics-only pull must NOT cost the tracer its buffered spans: the
  // third (spanful) pull still sees the second pull's RPC spans.
  auto metrics_only = coord->PullWorkerObs(/*include_spans=*/false);
  ASSERT_TRUE(metrics_only.ok()) << metrics_only.status().ToString();
  for (const obs::ProcessObs& p : *metrics_only) {
    EXPECT_TRUE(p.snap.spans.empty()) << p.process;
  }
  auto third = coord->PullWorkerObs(/*include_spans=*/true);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  size_t third_spans = 0;
  for (const obs::ProcessObs& p : *third) third_spans += p.snap.spans.size();
  EXPECT_GT(third_spans, 0u);
}

TEST_F(FleetObsTest, Kill9MidDayDropsOutOfFleetViewAndRejoinsAfterRecover) {
  auto coord = MakeFleet(3);
  ASSERT_NE(coord, nullptr);
  RunTraffic(*coord, 3600000);

  // Before: all three workers answer.
  {
    auto workers = coord->PullWorkerObs(/*include_spans=*/true);
    ASSERT_TRUE(workers.ok()) << workers.status().ToString();
    EXPECT_EQ(workers->size(), 3u);
  }

  // Mid-day SIGKILL (process mode: the kernel kills a real child).
  ASSERT_TRUE(coord->InjectShardFailure(1).ok());
  ASSERT_FALSE(coord->ShardAlive(1));

  // Degraded, not wrong: the dead shard is absent, the rest still merge
  // exactly, and the operator surface says who is missing.
  {
    auto workers = coord->PullWorkerObs(/*include_spans=*/true);
    ASSERT_TRUE(workers.ok()) << workers.status().ToString();
    ASSERT_EQ(workers->size(), 2u);
    const obs::FleetObsSnapshot fleet =
        obs::CaptureFleetObsSnapshot(std::move(workers).value());
    EXPECT_EQ(fleet.processes.size(), 3u);  // coordinator + 2 survivors
    EXPECT_EQ(FindProcess(fleet, "shard-1"), nullptr);
    EXPECT_NE(FindProcess(fleet, "shard-0"), nullptr);
    EXPECT_NE(FindProcess(fleet, "shard-2"), nullptr);
    ExpectAggregatesExact(fleet);
  }

  // Recover: respawn + restore + replay. The rejoined worker is a fresh
  // process — new registry, tracer re-enabled by the rebuild's kInit — and
  // the next pull folds it back into the fleet view.
  ASSERT_TRUE(coord->RecoverShard(1).ok());
  ASSERT_TRUE(coord->ShardAlive(1));
  auto snap = coord->Snapshot();  // post-recovery gather touches everyone
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  auto workers = coord->PullWorkerObs(/*include_spans=*/true);
  ASSERT_TRUE(workers.ok()) << workers.status().ToString();
  ASSERT_EQ(workers->size(), 3u);
  const obs::FleetObsSnapshot fleet =
      obs::CaptureFleetObsSnapshot(std::move(workers).value());
  EXPECT_EQ(fleet.processes.size(), 4u);
  const obs::ProcessObs* rejoined = FindProcess(fleet, "shard-1");
  ASSERT_NE(rejoined, nullptr);
  EXPECT_TRUE(rejoined->snap.tracing_enabled);
  // The respawned process replayed its session (restore + outbox) and then
  // served the gather: its RPC service histograms are live again.
  bool handled_rpcs = false;
  for (const obs::HistogramBuckets& h : rejoined->snap.histograms) {
    if (h.name == "shard.rpc.gather.handle_ns" && h.count >= 1) {
      handled_rpcs = true;
    }
  }
  EXPECT_TRUE(handled_rpcs);
  ExpectAggregatesExact(fleet);

  const std::string text = obs::RenderFleetStatuszText(fleet);
  EXPECT_NE(text.find("shard-1"), std::string::npos);
}

// TSan arm (scripts/check.sh runs *Concurrent* under -fsanitize=thread):
// snapshot pulls racing fleet gathers racing a kill-9/recover cycle. The
// pull path shares the topology lock, per-handle mutexes, session rebuild
// state, and the metrics registry with everything else; this hammers all
// of it at once. Assertions are deliberately weak — liveness and "degraded,
// never wrong" — the value is the interleaving coverage.
TEST_F(FleetObsTest, PullsRaceGathersAndRecoveryConcurrent) {
  auto coord = MakeFleet(2);
  ASSERT_NE(coord, nullptr);
  RunTraffic(*coord, 3600000);

  std::atomic<bool> stop{false};
  std::atomic<size_t> pulls_ok{0};
  std::atomic<size_t> gathers_ok{0};
  std::thread puller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto workers = coord->PullWorkerObs(/*include_spans=*/true);
      if (workers.ok()) {
        const obs::FleetObsSnapshot fleet =
            obs::CaptureFleetObsSnapshot(std::move(workers).value());
        ExpectAggregatesExact(fleet);
        pulls_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread gatherer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (coord->Snapshot().ok()) {
        gathers_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Shard 1 dies and comes back, twice; shard 0 stays up throughout, so
  // pulls and gathers keep (at least degraded) answers the whole time.
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(coord->InjectShardFailure(1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(coord->RecoverShard(1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop.store(true, std::memory_order_relaxed);
  puller.join();
  gatherer.join();
  EXPECT_GT(pulls_ok.load(), 0u);
  EXPECT_GT(gathers_ok.load(), 0u);
}

TEST_F(FleetObsTest, PullFailsOnlyWhenNoShardAnswers) {
  auto coord = MakeFleet(2);
  ASSERT_NE(coord, nullptr);
  RunTraffic(*coord, 3600000);
  ASSERT_TRUE(coord->InjectShardFailure(0).ok());
  ASSERT_TRUE(coord->InjectShardFailure(1).ok());
  auto workers = coord->PullWorkerObs(/*include_spans=*/true);
  EXPECT_FALSE(workers.ok());
  EXPECT_TRUE(workers.status().IsUnavailable())
      << workers.status().ToString();
}

}  // namespace
}  // namespace cdibot
