#ifndef CDIBOT_TESTS_STRICT_JSON_H_
#define CDIBOT_TESTS_STRICT_JSON_H_

// A strict, dependency-free JSON parser for tests that assert rendered
// JSON (statusz, fleet statusz, Chrome traces) is *actually* JSON. The
// lenient validators a viewer happens to tolerate would wave through the
// classic renderer bugs — trailing commas, bare NaN/Infinity from printf,
// raw control characters, truncated escapes — so this one implements the
// RFC 8259 grammar and rejects them all. Parsed values are kept in a
// simple tree so tests can also assert on contents, not just validity.

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cdibot::testjson {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered; duplicate keys are allowed (JSON permits them).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// First member with `key`, or null when absent / not an object.
  const JsonValue* Find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class StrictJsonParser {
 public:
  explicit StrictJsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing data after value");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case '[':
        return ParseArray(out);
      case '{':
        return ParseObject(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          for (size_t i = 0; i < 4; ++i) {
            if (!std::isxdigit(
                    static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Tests only assert validity; the code point itself is kept as
          // its escaped form rather than decoded to UTF-8.
          out->append("\\u").append(text_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: 0, or a nonzero digit followed by digits. Leading
    // zeros, bare '-', NaN, and Infinity all die here.
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out->number)) return Fail("number overflows double");
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') return Fail("expected ',' or ']'");
      ++pos_;
      SkipWs();
      // A ']' here would make the previous comma trailing — ParseValue
      // rejects it because ']' starts no value.
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (text_[pos_] != ',') return Fail("expected ',' or '}'");
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

/// Parses `text` as one strict JSON document. Returns false (and fills
/// `error` when non-null) on any grammar violation.
inline bool ParseStrictJson(std::string_view text, JsonValue* out,
                            std::string* error = nullptr) {
  StrictJsonParser parser(text);
  if (parser.Parse(out)) return true;
  if (error != nullptr) *error = parser.error();
  return false;
}

}  // namespace cdibot::testjson

#endif  // CDIBOT_TESTS_STRICT_JSON_H_
