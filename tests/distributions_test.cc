#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"

namespace cdibot::stats {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-5);
}

TEST(NormalTest, SfComplementsCdf) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.0, 6.0}) {
    EXPECT_NEAR(NormalCdf(x) + NormalSf(x), 1.0, 1e-12);
  }
  // Tail accuracy: sf(6) ~ 9.866e-10 (erfc-based, not 1-cdf).
  EXPECT_NEAR(NormalSf(6.0), 9.8659e-10, 1e-13);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    const double x = NormalQuantile(p).value();
    EXPECT_NEAR(NormalCdf(x), p, 1e-10) << p;
  }
  EXPECT_NEAR(NormalQuantile(0.975).value(), 1.959963985, 1e-7);
  EXPECT_TRUE(NormalQuantile(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(NormalQuantile(1.0).status().IsInvalidArgument());
}

TEST(NormalTest, PdfIntegratesToCdfDerivative) {
  const double h = 1e-6;
  for (double x : {-1.0, 0.0, 1.5}) {
    EXPECT_NEAR((NormalCdf(x + h) - NormalCdf(x - h)) / (2 * h), NormalPdf(x),
                1e-6);
  }
}

TEST(ChiSquaredTest, CriticalValues) {
  // chi2(0.95; 1) = 3.841459, chi2(0.95; 2) = 5.991465.
  EXPECT_NEAR(ChiSquaredCdf(3.841459, 1.0).value(), 0.95, 1e-6);
  EXPECT_NEAR(ChiSquaredSf(5.991465, 2.0).value(), 0.05, 1e-6);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 3.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredSf(-1.0, 3.0).value(), 1.0);
}

TEST(ChiSquaredTest, TwoDfIsExponential) {
  // chi2 with 2 df: cdf(x) = 1 - exp(-x/2).
  for (double x : {0.5, 2.0, 6.0}) {
    EXPECT_NEAR(ChiSquaredCdf(x, 2.0).value(), 1.0 - std::exp(-x / 2.0),
                1e-12);
  }
}

TEST(StudentTTest, CriticalValues) {
  // t(0.975; 10) = 2.228139.
  EXPECT_NEAR(StudentTCdf(2.228139, 10.0).value(), 0.975, 1e-6);
  EXPECT_NEAR(StudentTTwoSidedP(2.228139, 10.0).value(), 0.05, 1e-6);
  EXPECT_NEAR(StudentTCdf(0.0, 5.0).value(), 0.5, 1e-12);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-1.3, 7.0).value() + StudentTCdf(1.3, 7.0).value(),
              1.0, 1e-12);
}

TEST(StudentTTest, LargeDfApproachesNormal) {
  EXPECT_NEAR(StudentTCdf(1.96, 1e6).value(), NormalCdf(1.96), 1e-5);
}

TEST(FDistTest, CriticalValues) {
  // F(0.95; 3, 10) = 3.708.
  EXPECT_NEAR(FSf(3.708, 3.0, 10.0).value(), 0.05, 2e-4);
  EXPECT_DOUBLE_EQ(FCdf(0.0, 2.0, 2.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(FSf(-1.0, 2.0, 2.0).value(), 1.0);
}

TEST(FDistTest, SquaredTIdentity) {
  // F(1, v) == t(v)^2: P(F <= t^2) = P(|T| <= t).
  const double t = 1.7;
  const double v = 9.0;
  EXPECT_NEAR(FCdf(t * t, 1.0, v).value(),
              1.0 - StudentTTwoSidedP(t, v).value(), 1e-10);
}

TEST(FDistTest, ReciprocalIdentity) {
  // P(F(d1,d2) <= x) = P(F(d2,d1) >= 1/x).
  EXPECT_NEAR(FCdf(2.5, 4.0, 7.0).value(), FSf(1.0 / 2.5, 7.0, 4.0).value(),
              1e-10);
}

TEST(StudentizedRangeTest, TwoGroupsReducesToStudentT) {
  // For k = 2: P(Q <= q) = P(|T| <= q / sqrt(2)).
  for (double q : {1.0, 2.5, 3.46, 5.0}) {
    for (double df : {6.0, 15.0, 60.0}) {
      EXPECT_NEAR(
          StudentizedRangeCdf(q, 2, df).value(),
          1.0 - StudentTTwoSidedP(q / std::sqrt(2.0), df).value(), 2e-4)
          << "q=" << q << " df=" << df;
    }
  }
}

TEST(StudentizedRangeTest, TabledCriticalValues) {
  // Standard q-table: q(0.05; k=3, df=10) = 3.88, q(0.05; k=4, df=20)=3.96.
  EXPECT_NEAR(StudentizedRangeSf(3.88, 3, 10.0).value(), 0.05, 3e-3);
  EXPECT_NEAR(StudentizedRangeSf(3.96, 4, 20.0).value(), 0.05, 3e-3);
  // q(0.05; k=2, df=6) = 3.46.
  EXPECT_NEAR(StudentizedRangeSf(3.46, 2, 6.0).value(), 0.05, 3e-3);
}

TEST(StudentizedRangeTest, MonotoneInQ) {
  double prev = -1.0;
  for (double q = 0.5; q < 8.0; q += 0.5) {
    const double cdf = StudentizedRangeCdf(q, 3, 12.0).value();
    EXPECT_GE(cdf, prev);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
}

TEST(StudentizedRangeTest, LargeDfMatchesNormalRange) {
  // df -> infinity: q(0.05; k=3, inf) = 3.31.
  EXPECT_NEAR(StudentizedRangeSf(3.31, 3, 1e5).value(), 0.05, 3e-3);
}

TEST(StudentizedRangeTest, Validation) {
  EXPECT_TRUE(StudentizedRangeCdf(1.0, 1, 5.0).status().IsInvalidArgument());
  EXPECT_TRUE(StudentizedRangeCdf(1.0, 3, 0.0).status().IsInvalidArgument());
  EXPECT_DOUBLE_EQ(StudentizedRangeCdf(0.0, 3, 5.0).value(), 0.0);
}

}  // namespace
}  // namespace cdibot::stats
