#include <gtest/gtest.h>

#include "cdi/vm_cdi.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

ResolvedEvent Res(const char* name, const char* start, const char* end,
                  Severity level, StabilityCategory cat) {
  return ResolvedEvent{.name = name,
                       .target = "vm-1",
                       .period = Interval(T(start), T(end)),
                       .level = level,
                       .category = cat};
}

EventWeightModel MakeModel() {
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"packet_loss", 50}, {"vm_start_failed", 10},
       {"vm_crash", 200}},
      4);
  auto model = EventWeightModel::Build(std::move(ticket).value(), {});
  return std::move(model).value();
}

TEST(AttachWeightsTest, MapsWeightsPerEvent) {
  EventWeightModel model = MakeModel();
  auto weighted = AttachWeights(
      {Res("vm_crash", "2024-01-01 01:00", "2024-01-01 01:10",
           Severity::kFatal, StabilityCategory::kUnavailability),
       Res("slow_io", "2024-01-01 02:00", "2024-01-01 02:10",
           Severity::kCritical, StabilityCategory::kPerformance)},
      model);
  ASSERT_TRUE(weighted.ok());
  ASSERT_EQ(weighted->size(), 2u);
  EXPECT_DOUBLE_EQ((*weighted)[0].weight, 1.0);  // unavailability
  // slow_io: l = 0.75; ticket rank 3rd of 4 -> p = 0.75 -> w = 0.75.
  EXPECT_DOUBLE_EQ((*weighted)[1].weight, 0.75);
  EXPECT_EQ((*weighted)[1].name, "slow_io");
}

TEST(ComputeVmCdiTest, SplitsByCategory) {
  EventWeightModel model = MakeModel();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  // 144 minutes of unavailability = 10% of the day.
  auto cdi = ComputeVmCdi(
      {Res("vm_crash", "2024-01-01 00:00", "2024-01-01 02:24",
           Severity::kFatal, StabilityCategory::kUnavailability),
       Res("slow_io", "2024-01-01 10:00", "2024-01-01 10:10",
           Severity::kCritical, StabilityCategory::kPerformance),
       Res("vm_start_failed", "2024-01-01 12:00", "2024-01-01 12:05",
           Severity::kCritical, StabilityCategory::kControlPlane)},
      model, day);
  ASSERT_TRUE(cdi.ok());
  EXPECT_NEAR(cdi->unavailability, 0.1, 1e-12);
  // slow_io w = 0.75 over 10 of 1440 minutes.
  EXPECT_NEAR(cdi->performance, 0.75 * 10.0 / 1440.0, 1e-12);
  // vm_start_failed: l = 0.75, ticket rank 1/4 -> p = 0.25 -> w = 0.5.
  EXPECT_NEAR(cdi->control_plane, 0.5 * 5.0 / 1440.0, 1e-12);
  EXPECT_EQ(cdi->service_time, Duration::Days(1));
}

TEST(ComputeVmCdiTest, CategoriesDoNotLeakIntoEachOther) {
  EventWeightModel model = MakeModel();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto cdi = ComputeVmCdi(
      {Res("slow_io", "2024-01-01 00:00", "2024-01-02 00:00",
           Severity::kFatal, StabilityCategory::kPerformance)},
      model, day);
  ASSERT_TRUE(cdi.ok());
  EXPECT_DOUBLE_EQ(cdi->unavailability, 0.0);
  EXPECT_GT(cdi->performance, 0.0);
  EXPECT_DOUBLE_EQ(cdi->control_plane, 0.0);
}

TEST(ComputeVmCdiTest, EmptyServicePeriodFails) {
  EventWeightModel model = MakeModel();
  const Interval empty(T("2024-01-01 00:00"), T("2024-01-01 00:00"));
  EXPECT_TRUE(ComputeVmCdi(std::vector<WeightedEvent>{}, empty)
                  .status()
                  .IsInvalidArgument());
  (void)model;
}

TEST(VmCdiTest, ForCategoryAccessor) {
  VmCdi cdi{.unavailability = 0.1, .performance = 0.2, .control_plane = 0.3};
  EXPECT_DOUBLE_EQ(cdi.ForCategory(StabilityCategory::kUnavailability), 0.1);
  EXPECT_DOUBLE_EQ(cdi.ForCategory(StabilityCategory::kPerformance), 0.2);
  EXPECT_DOUBLE_EQ(cdi.ForCategory(StabilityCategory::kControlPlane), 0.3);
}

}  // namespace
}  // namespace cdibot
