#include <gtest/gtest.h>

#include "extract/log_rules.h"
#include "telemetry/log_stream.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(LogStreamTest, BenignVolumeMatchesRate) {
  Rng rng(1);
  const Interval window(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto lines = GenerateBenignLogs("nc-1", window, 10.0, &rng);
  // Poisson(240): within a loose band.
  EXPECT_GT(lines.size(), 150u);
  EXPECT_LT(lines.size(), 350u);
  for (const LogLine& line : lines) {
    EXPECT_TRUE(window.Contains(line.time));
    EXPECT_EQ(line.target, "nc-1");
  }
}

TEST(LogStreamTest, BenignLogsAreTimeSorted) {
  Rng rng(2);
  const Interval window(T("2024-01-01 00:00"), T("2024-01-01 06:00"));
  auto lines = GenerateBenignLogs("nc-1", window, 50.0, &rng);
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LE(lines[i - 1].time, lines[i].time);
  }
}

TEST(LogStreamTest, EmptyWindowOrZeroRate) {
  Rng rng(3);
  const Interval empty(T("2024-01-01 00:00"), T("2024-01-01 00:00"));
  EXPECT_TRUE(GenerateBenignLogs("nc-1", empty, 10.0, &rng).empty());
  const Interval window(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  EXPECT_TRUE(GenerateBenignLogs("nc-1", window, 0.0, &rng).empty());
}

TEST(LogStreamTest, BenignLinesMatchNoExpertRule) {
  // The extractor must discard all benign noise (Fig. 1 discards 2 of 3
  // entries; here all are non-events).
  Rng rng(4);
  const Interval window(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto lines = GenerateBenignLogs("nc-1", window, 30.0, &rng);
  auto extractor = LogRuleExtractor::BuiltIn().value();
  EXPECT_TRUE(extractor.ExtractAll(lines).empty());
}

TEST(LogStreamTest, NicFlapProducesDownAndUpLines) {
  std::vector<LogLine> lines;
  AppendNicFlap("nc-7", T("2024-01-01 12:16:28"), &lines);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].text.find("NIC Link is Down"), std::string::npos);
  EXPECT_NE(lines[1].text.find("NIC Link is Up"), std::string::npos);
  EXPECT_LT(lines[0].time, lines[1].time);
}

TEST(LogStreamTest, QemuUpgradeCarriesDuration) {
  std::vector<LogLine> lines;
  AppendQemuLiveUpgrade("nc-7", T("2024-01-01 03:00"), 850, &lines);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].text.find("pause=850ms"), std::string::npos);
}

}  // namespace
}  // namespace cdibot
