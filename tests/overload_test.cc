// Overload-resilience suite for the flow-controlled telemetry -> CDI path.
//
//  * Differential: a day run through the BackpressureQueue with admission
//    control ENABLED but never triggered is bit-identical to the direct
//    path, across 24 seeds — flow control is free until it fires.
//  * Surge (SurgeOverload*, also run under ASan with an RSS ceiling by
//    scripts/check.sh): a 10x duplicate surge against a slow consumer keeps
//    queue memory bounded, sheds zero unavailability events (CDI-U exact),
//    and finishes with the affected VMs flagged degraded, not wrong.
//  * Flapping sink: a checkpoint disk that keeps failing trips the circuit
//    breaker within the failure window, fast-fails without I/O while open,
//    recovers through half-open probes, and the transitions are visible in
//    statusz.
//  * Watchdog: a supervisor crash with recovery-by-detection — the queue
//    buffers the outage, the watchdog notices the silent pump, and the
//    restored engine finishes the day equal to an uninterrupted one.
//  * Deadlines: the daily job, streaming Preview, and checkpoint Save all
//    return partial-but-honest results instead of running long.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdi/pipeline.h"
#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/rng.h"
#include "flow/backpressure_queue.h"
#include "obs/statusz.h"
#include "sim/cloudbot_loop.h"
#include "storage/checkpoint_store.h"
#include "stream/streaming_engine.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

long MaxRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// --- Shared fixture: a synthetic day with all three CDI classes -------------

class OverloadTest : public ::testing::Test {
 protected:
  OverloadTest() : catalog_(EventCatalog::BuiltIn()) {
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 100}, {"packet_loss", 60}, {"api_error", 25}}, 4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
    day_ = Interval(T("2026-07-01 00:00"), T("2026-07-02 00:00"));
    for (int v = 0; v < 8; ++v) {
      VmServiceInfo vm;
      vm.vm_id = "vm-" + std::to_string(v);
      vm.dims = {{"region", "r0"}};
      vm.service_period = day_;
      vms_.push_back(vm);
    }
    // Each VM gets a run of performance events, a shorter run of
    // control-plane events, and (every other VM) one unavailability
    // episode — the class whose loss would be unforgivable.
    Rng rng(1337);
    for (size_t v = 0; v < vms_.size(); ++v) {
      const int64_t start = rng.UniformInt(0, 16 * 60);
      for (int i = 0; i < 40; ++i) {
        events_.push_back(MakeEvent("slow_io", start + i, vms_[v].vm_id,
                                    Severity::kCritical));
      }
      for (int i = 0; i < 12; ++i) {
        events_.push_back(MakeEvent("api_error", start + 90 + i,
                                    vms_[v].vm_id, Severity::kWarning));
      }
      if (v % 2 == 0) {
        events_.push_back(MakeEvent("vm_crash", start + 200, vms_[v].vm_id,
                                    Severity::kFatal));
        events_.push_back(MakeEvent("vm_crash", start + 230, vms_[v].vm_id,
                                    Severity::kFatal));
      }
    }
  }

  RawEvent MakeEvent(const std::string& name, int64_t minute,
                     const std::string& target, Severity level) {
    RawEvent ev;
    ev.name = name;
    ev.time = day_.start + Duration::Minutes(minute);
    ev.target = target;
    ev.level = level;
    ev.expire_interval = Duration::Hours(1);
    return ev;
  }

  std::string FreshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  StreamingCdiEngine MakeEngine() {
    StreamingCdiOptions opts;
    opts.window = day_;
    opts.num_shards = 3;
    auto engine =
        StreamingCdiEngine::Create(&catalog_, &*weights_, opts).value();
    for (const VmServiceInfo& vm : vms_) {
      EXPECT_TRUE(engine.RegisterVm(vm).ok());
    }
    return engine;
  }

  flow::FlowClass ClassFor(const RawEvent& ev) const {
    const auto handle = catalog_.FindHandle(ev.name);
    return handle.has_value()
               ? flow::FlowClassForCategory(handle->spec->category)
               : flow::FlowClass::kPerformance;
  }

  EventCatalog catalog_;
  std::optional<EventWeightModel> weights_;
  Interval day_;
  std::vector<VmServiceInfo> vms_;
  std::vector<RawEvent> events_;
};

// --- Differential: flow control is bit-free when it does not fire -----------

class FlowDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowDifferentialTest, QueueThatKeepsUpIsBitIdenticalToDirectPath) {
  const uint64_t seed = GetParam();
  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 1;
  spec.clusters_per_az = 2;
  spec.ncs_per_cluster = 3;
  spec.vms_per_nc = 5;
  const Fleet fleet = Fleet::Build(spec).value();
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"nic_flapping", 30}, {"live_migration", 5}}, 4);
  const EventWeightModel weights =
      EventWeightModel::Build(std::move(ticket).value(), {}).value();
  const EventCatalog catalog = EventCatalog::BuiltIn();

  AutomationLoopOptions direct;
  direct.streaming_cdi = true;
  AutomationLoopOptions flow = direct;
  flow.flow_control = true;
  flow.flow_options.capacity = 1 << 16;  // never under pressure
  flow.flow_drain_per_step = 0;          // pump drains fully

  Rng rng_direct(seed), rng_flow(seed);
  auto base = RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog, weights,
                               direct, &rng_direct);
  auto gated = RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog,
                                weights, flow, &rng_flow);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();

  // Admission control was armed the whole day and never fired...
  EXPECT_EQ(gated->flow_stats.shed_total, 0u);
  EXPECT_EQ(gated->events_shed, 0u);
  EXPECT_EQ(gated->flow_stats.full_rejections, 0u);
  // ...and the streaming CDI is bit-identical to the direct path.
  EXPECT_EQ(gated->fleet_cdi_streaming.unavailability,
            base->fleet_cdi_streaming.unavailability);
  EXPECT_EQ(gated->fleet_cdi_streaming.performance,
            base->fleet_cdi_streaming.performance);
  EXPECT_EQ(gated->fleet_cdi_streaming.control_plane,
            base->fleet_cdi_streaming.control_plane);
  EXPECT_EQ(gated->stream_stats.events_ingested,
            base->stream_stats.events_ingested);
  EXPECT_EQ(gated->stream_stats.events_shed, 0u);
  // The batch job is unaffected by the flow path either way.
  EXPECT_EQ(gated->fleet_cdi.performance, base->fleet_cdi.performance);
}

INSTANTIATE_TEST_SUITE_P(TwentyFourSeeds, FlowDifferentialTest,
                         ::testing::Range<uint64_t>(0, 24));

// --- Surge: bounded memory, graceful degradation ----------------------------

TEST_F(OverloadTest, SurgeOverloadKeepsMemoryBoundedAndUnavailabilityExact) {
  // Reference: the clean stream, no surge, no queue.
  StreamingCdiEngine reference = MakeEngine();
  for (const RawEvent& ev : events_) {
    ASSERT_TRUE(reference.Ingest(ev).ok());
  }
  const DailyCdiResult expected = reference.Snapshot().value();

  // 10x duplicate surge into a small queue with a consumer that only keeps
  // up at the base rate — a sustained 10x overcommit.
  chaos::ChaosInjector injector(chaos::SurgeBurstPlan(/*seed=*/7, 10));
  const chaos::InjectedStream surge = injector.ApplyToEvents(events_);
  ASSERT_GE(surge.arrivals.size(), events_.size() * 10);

  const long rss_before_kb = MaxRssKb();
  constexpr size_t kCapacity = 256;
  flow::BackpressureQueue queue(flow::FlowOptions{.capacity = kCapacity});
  std::map<std::string, uint64_t> shed_counts;
  queue.set_shed_callback([&](const RawEvent& ev, flow::FlowClass klass) {
    EXPECT_NE(klass, flow::FlowClass::kUnavailability);
    ++shed_counts[ev.target];
  });

  StreamingCdiEngine engine = MakeEngine();
  RawEvent out;
  size_t offered = 0;
  for (const RawEvent& ev : surge.arrivals) {
    queue.TryPush(ev, ClassFor(ev));
    // Consumer drains at ~1/10 of the surge arrival rate.
    if (++offered % 10 == 0 && queue.TryPop(&out)) {
      ASSERT_TRUE(engine.Ingest(out).ok());
    }
  }
  while (queue.TryPop(&out)) {
    ASSERT_TRUE(engine.Ingest(out).ok());
  }
  for (const auto& [target, count] : shed_counts) {
    engine.RecordShed(target, count);
  }

  const flow::ShedStats stats = queue.stats();
  // Bounded memory: the queue never grew past its capacity, and the
  // process didn't balloon absorbing a 10x surge (the ceiling is asserted
  // under ASan by the check script's overload stage).
  EXPECT_LE(stats.peak_depth, kCapacity);
  EXPECT_LT(MaxRssKb() - rss_before_kb, 256 * 1024);  // < 256 MB growth
  // Graceful degradation: most of the surge was shed...
  EXPECT_GT(stats.shed_total, 0u);
  // ...but not one unavailability event.
  EXPECT_EQ(
      stats.shed_by_class[static_cast<int>(flow::FlowClass::kUnavailability)],
      0u);

  const DailyCdiResult degraded = engine.Snapshot().value();
  ASSERT_EQ(degraded.per_vm.size(), expected.per_vm.size());
  for (size_t i = 0; i < degraded.per_vm.size(); ++i) {
    // CDI-U survives the surge bit-exactly on every VM: duplicates dedupe
    // and no U event was shed.
    EXPECT_EQ(degraded.per_vm[i].cdi.unavailability,
              expected.per_vm[i].cdi.unavailability)
        << degraded.per_vm[i].vm_id;
  }
  // Every VM that lost telemetry says so: degraded, not silently wrong.
  EXPECT_GT(degraded.quality.events_shed, 0u);
  EXPECT_TRUE(degraded.quality.degraded);
  EXPECT_GT(degraded.vms_degraded, 0u);
  for (const auto& [target, count] : shed_counts) {
    bool found = false;
    for (const auto& row : degraded.per_vm) {
      if (row.vm_id != target) continue;
      found = true;
      EXPECT_GE(row.quality.events_shed, count) << target;
      EXPECT_TRUE(row.quality.degraded) << target;
    }
    EXPECT_TRUE(found) << target;
  }
}

TEST_F(OverloadTest, SurgeOverloadInSimLoopShedsOnlySheddableClasses) {
  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 1;
  spec.clusters_per_az = 2;
  spec.ncs_per_cluster = 4;
  spec.vms_per_nc = 6;
  const Fleet fleet = Fleet::Build(spec).value();
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"nic_flapping", 30}, {"live_migration", 5}}, 4);
  const EventWeightModel weights =
      EventWeightModel::Build(std::move(ticket).value(), {}).value();
  const EventCatalog catalog = EventCatalog::BuiltIn();

  AutomationLoopOptions options;
  options.streaming_cdi = true;
  options.flow_control = true;
  options.incident_probability = 0.5;  // a heavy day
  options.flow_options.capacity = 64;  // tiny queue
  options.flow_drain_per_step = 16;    // slow consumer
  Rng rng(99);
  auto result = RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog,
                                 weights, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->incidents, 0u);
  // The slow consumer forced real shedding...
  EXPECT_GT(result->events_shed, 0u);
  EXPECT_EQ(result->events_shed, result->flow_stats.shed_total);
  // ...bounded by the queue, never of unavailability class...
  EXPECT_LE(result->flow_stats.peak_depth, 64u);
  EXPECT_EQ(result->flow_stats.shed_by_class[static_cast<int>(
                flow::FlowClass::kUnavailability)],
            0u);
  // ...and the engine's quality accounting saw every shed.
  EXPECT_EQ(result->stream_stats.events_shed, result->events_shed);
}

// --- Flapping checkpoint sink: the breaker caps retry amplification ---------

TEST_F(OverloadTest, FlappingSinkTripsBreakerFastFailsThenRecovers) {
  int io_calls = 0;
  bool disk_up = false;
  CheckpointStoreOptions opts;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff = Duration::Millis(1);
  opts.retry.max_backoff = Duration::Millis(2);
  opts.breaker.failure_threshold = 3;
  opts.breaker.cooldown = Duration::Millis(50);
  opts.breaker.cooldown_jitter = 0.0;  // deterministic probe window
  opts.io_fault = [&](std::string_view) -> Status {
    ++io_calls;
    if (disk_up) return Status::OK();
    return Status::Unavailable("disk flapping");
  };
  auto store =
      StreamCheckpointStore::Open(FreshDir("flapping-sink"), opts).value();
  StreamingCdiEngine engine = MakeEngine();
  for (size_t i = 0; i < events_.size() / 2; ++i) {
    ASSERT_TRUE(engine.Ingest(events_[i]).ok());
  }
  const StreamCheckpoint ckpt = engine.Checkpoint();

  // First save: the retry schedule runs into the failure threshold and the
  // breaker trips open mid-retry — the remaining attempts are not spent.
  const Status first = store.Save(ckpt);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(store.breaker().state(), flow::BreakerState::kOpen);
  EXPECT_EQ(store.breaker().stats().trips, 1u);
  EXPECT_EQ(io_calls, 3);  // threshold, not max_attempts, bounded the I/O

  // While open, saves fail fast in FailedPrecondition without touching the
  // disk at all — no retry amplification against a dead sink.
  const int calls_before = io_calls;
  const Status rejected = store.Save(ckpt);
  EXPECT_TRUE(rejected.IsFailedPrecondition()) << rejected.ToString();
  EXPECT_EQ(io_calls, calls_before);
  EXPECT_GE(store.breaker().stats().rejected, 1u);

  // The disk heals and the cooldown elapses: a half-open probe goes
  // through, succeeds, and the breaker closes.
  disk_up = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const Status healed = store.Save(ckpt);
  ASSERT_TRUE(healed.ok()) << healed.ToString();
  EXPECT_EQ(store.breaker().state(), flow::BreakerState::kClosed);
  EXPECT_EQ(store.breaker().stats().closes, 1u);

  // The transitions are visible in statusz.
  const std::string statusz =
      obs::RenderStatuszText(obs::CaptureObsSnapshot());
  EXPECT_NE(statusz.find("flow.breaker.checkpoint_store.trips"),
            std::string::npos);
  EXPECT_NE(statusz.find("flow.breaker.checkpoint_store.state"),
            std::string::npos);
}

TEST_F(OverloadTest, FlappingSinkPresetBreakerBoundsTotalIoAttempts) {
  // The chaos preset drives the same path nondeterministically: whatever
  // the flap pattern, the breaker guarantees an upper bound on physical
  // attempts per save once open.
  chaos::ChaosInjector injector(chaos::FlappingSinkPlan(/*seed=*/11, 0.9));
  int io_calls = 0;
  CheckpointStoreOptions opts;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff = Duration::Millis(1);
  opts.retry.max_backoff = Duration::Millis(2);
  opts.breaker.failure_threshold = 2;
  opts.breaker.cooldown = Duration::Seconds(30);  // stays open for the test
  opts.io_fault = [&](std::string_view op) -> Status {
    ++io_calls;
    return injector.MaybeFailIo(op);
  };
  auto store =
      StreamCheckpointStore::Open(FreshDir("flapping-preset"), opts).value();
  StreamingCdiEngine engine = MakeEngine();
  const StreamCheckpoint ckpt = engine.Checkpoint();

  int saves_attempted = 0;
  int saves_ok = 0;
  for (int i = 0; i < 10; ++i) {
    ++saves_attempted;
    if (store.Save(ckpt).ok()) ++saves_ok;
    if (store.breaker().state() == flow::BreakerState::kOpen) break;
  }
  // At p=0.9 failure the breaker must have opened quickly; the total I/O
  // spent is a handful of attempts, not saves * max_attempts.
  EXPECT_EQ(store.breaker().state(), flow::BreakerState::kOpen);
  EXPECT_LE(io_calls, saves_attempted * opts.retry.max_attempts);
  EXPECT_GE(store.breaker().stats().trips, 1u);
  // And once open, further saves cost zero I/O.
  const int before = io_calls;
  EXPECT_TRUE(store.Save(ckpt).IsFailedPrecondition());
  EXPECT_EQ(io_calls, before);
  (void)saves_ok;
}

// --- Watchdog: recovery by detection ----------------------------------------

TEST_F(OverloadTest, WatchdogDetectsCrashedEngineAndRestoresFromCheckpoint) {
  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 1;
  spec.clusters_per_az = 2;
  spec.ncs_per_cluster = 4;
  spec.vms_per_nc = 6;
  const Fleet fleet = Fleet::Build(spec).value();
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"nic_flapping", 30}, {"live_migration", 5}}, 4);
  const EventWeightModel weights =
      EventWeightModel::Build(std::move(ticket).value(), {}).value();
  const EventCatalog catalog = EventCatalog::BuiltIn();

  AutomationLoopOptions supervised;
  supervised.streaming_cdi = true;
  supervised.supervise_streaming = true;
  supervised.checkpoint_dir = FreshDir("watchdog-loop");
  supervised.supervisor_crashes = 1;
  supervised.flow_control = true;
  supervised.flow_options.capacity = 1 << 16;  // buffer the whole outage
  supervised.watchdog_recovery = true;
  supervised.watchdog_stall_timeout = Duration::Minutes(30);
  supervised.incident_probability = 0.3;  // enough incidents after the crash
  Rng rng(5);
  auto result = RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog,
                                 weights, supervised, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->crashes_injected, 1u);
  // The crash was detected by heartbeat silence, not scripted restore...
  EXPECT_GE(result->watchdog_stalls, 1u);
  EXPECT_GE(result->watchdog_recoveries, 1u);
  EXPECT_GE(result->restores_completed, 1u);
  // ...nothing was lost while the engine was down...
  EXPECT_EQ(result->events_shed, 0u);

  // ...and the day ends exactly where an uninterrupted streaming run ends.
  AutomationLoopOptions plain;
  plain.streaming_cdi = true;
  plain.incident_probability = supervised.incident_probability;
  Rng rng_plain(5);
  auto baseline = RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog,
                                   weights, plain, &rng_plain);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(result->fleet_cdi_streaming.unavailability,
            baseline->fleet_cdi_streaming.unavailability);
  EXPECT_EQ(result->fleet_cdi_streaming.performance,
            baseline->fleet_cdi_streaming.performance);
  EXPECT_EQ(result->fleet_cdi_streaming.control_plane,
            baseline->fleet_cdi_streaming.control_plane);
}

TEST_F(OverloadTest, FlowOptionValidation) {
  FleetSpec spec;
  spec.regions = 1;
  spec.azs_per_region = 1;
  spec.clusters_per_az = 1;
  spec.ncs_per_cluster = 2;
  spec.vms_per_nc = 2;
  const Fleet fleet = Fleet::Build(spec).value();
  auto ticket = TicketRankModel::FromCounts({{"slow_io", 100}}, 4);
  const EventWeightModel weights =
      EventWeightModel::Build(std::move(ticket).value(), {}).value();
  const EventCatalog catalog = EventCatalog::BuiltIn();
  Rng rng(1);

  AutomationLoopOptions no_stream;
  no_stream.flow_control = true;  // but streaming_cdi is off
  EXPECT_TRUE(RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog, weights,
                               no_stream, &rng)
                  .status()
                  .IsInvalidArgument());

  AutomationLoopOptions no_flow;
  no_flow.streaming_cdi = true;
  no_flow.watchdog_recovery = true;  // but flow_control is off
  EXPECT_TRUE(RunAutomationDay(fleet, T("2026-07-01 00:00"), catalog, weights,
                               no_flow, &rng)
                  .status()
                  .IsInvalidArgument());
}

// --- Deadlines: partial-but-honest everywhere -------------------------------

TEST_F(OverloadTest, ExpiredDeadlineDefersDailyJobVms) {
  EventLog log;
  for (const RawEvent& ev : events_) log.Append(ev);

  DailyCdiJob::Options jopts;
  jopts.log = &log;
  jopts.catalog = &catalog_;
  jopts.weights = &*weights_;
  jopts.deadline = Deadline::After(Duration::Zero());  // already expired
  const DailyCdiJob job(jopts);
  auto result = job.Run(vms_, day_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Nothing computed, everything deferred, honestly reported.
  EXPECT_EQ(result->vms_deferred, vms_.size());
  EXPECT_EQ(result->vms_evaluated, 0u);
  EXPECT_TRUE(result->per_vm.empty());
  EXPECT_EQ(result->vms_failed, 0u);

  // The same job with an infinite deadline computes everything.
  jopts.deadline = Deadline::Infinite();
  auto full = DailyCdiJob(jopts).Run(vms_, day_);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->vms_deferred, 0u);
  EXPECT_EQ(full->vms_evaluated, vms_.size());
}

TEST_F(OverloadTest, PreviewDeadlineDefersDirtyVmsWithoutLosingThem) {
  StreamingCdiEngine engine = MakeEngine();
  for (const RawEvent& ev : events_) {
    ASSERT_TRUE(engine.Ingest(ev).ok());
  }
  // Expired budget: every dirty VM is deferred and stays dirty.
  auto partial = engine.Preview(Deadline::After(Duration::Zero()));
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->vms_deferred, vms_.size());
  EXPECT_TRUE(partial->per_vm.empty());  // no stale rows exist yet

  // A later unconstrained snapshot recomputes the deferred VMs: deferral
  // cost latency, never data.
  auto complete = engine.Snapshot();
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->vms_deferred, 0u);
  EXPECT_EQ(complete->per_vm.size(), vms_.size());

  StreamingCdiEngine reference = MakeEngine();
  for (const RawEvent& ev : events_) {
    ASSERT_TRUE(reference.Ingest(ev).ok());
  }
  const DailyCdiResult expected = reference.Snapshot().value();
  ASSERT_EQ(complete->per_vm.size(), expected.per_vm.size());
  for (size_t i = 0; i < complete->per_vm.size(); ++i) {
    EXPECT_EQ(complete->per_vm[i].cdi.performance,
              expected.per_vm[i].cdi.performance)
        << complete->per_vm[i].vm_id;
  }
}

TEST_F(OverloadTest, PreviewAfterSnapshotServesStaleRowsForDeferredVms) {
  StreamingCdiEngine engine = MakeEngine();
  for (size_t i = 0; i < events_.size() / 2; ++i) {
    ASSERT_TRUE(engine.Ingest(events_[i]).ok());
  }
  ASSERT_TRUE(engine.Snapshot().ok());  // every VM now has an output row
  for (size_t i = events_.size() / 2; i < events_.size(); ++i) {
    ASSERT_TRUE(engine.Ingest(events_[i]).ok());
  }
  auto stale = engine.Preview(Deadline::After(Duration::Zero()));
  ASSERT_TRUE(stale.ok());
  // Deferred VMs are reported, but their last-known rows still serve.
  EXPECT_GT(stale->vms_deferred, 0u);
  EXPECT_EQ(stale->per_vm.size(), vms_.size());
}

TEST_F(OverloadTest, SaveDeadlineStopsRetryingASickDisk) {
  int io_calls = 0;
  CheckpointStoreOptions opts;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff = Duration::Millis(5);
  opts.io_fault = [&](std::string_view) -> Status {
    ++io_calls;
    return Status::Unavailable("sick disk");
  };
  auto store =
      StreamCheckpointStore::Open(FreshDir("deadline-save"), opts).value();
  StreamingCdiEngine engine = MakeEngine();
  // An already-expired budget permits exactly one attempt — the schedule's
  // other nine never run.
  const Status st =
      store.Save(engine.Checkpoint(), Deadline::After(Duration::Zero()));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(io_calls, 1);
}

}  // namespace
}  // namespace cdibot
