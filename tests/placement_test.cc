#include <gtest/gtest.h>

#include "ops/placement.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

// Three-NC topology: nc0 (dedicated VMs), nc1 (dedicated, lots of room),
// nc2 (shared pool).
class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() {
    EXPECT_TRUE(topo_.AddCluster("r0", "az0", "c0").ok());
    EXPECT_TRUE(topo_.AddNc({.nc_id = "nc0", .cluster_id = "c0",
                             .num_cores = 32})
                    .ok());
    EXPECT_TRUE(topo_.AddNc({.nc_id = "nc1", .cluster_id = "c0",
                             .num_cores = 32})
                    .ok());
    EXPECT_TRUE(topo_.AddNc({.nc_id = "nc2", .cluster_id = "c0",
                             .num_cores = 32})
                    .ok());
    // nc0: two dedicated VMs of 8 cores.
    AddVm("vm-a", "nc0", VmType::kDedicated, 0, 8);
    AddVm("vm-b", "nc0", VmType::kDedicated, 8, 16);
    // nc1: one dedicated VM of 8 cores -> 24 free.
    AddVm("vm-c", "nc1", VmType::kDedicated, 0, 8);
    // nc2: one shared VM of 4 cores -> 28 free.
    AddVm("vm-d", "nc2", VmType::kShared, 0, 4);
  }

  void AddVm(const char* id, const char* nc, VmType type, int begin,
             int end) {
    EXPECT_TRUE(topo_.AddVm({.vm_id = id, .nc_id = nc, .type = type,
                             .core_begin = begin, .core_end = end})
                    .ok());
  }

  FleetTopology topo_;
  OperationPlatform platform_;
};

TEST_F(PlacementTest, FreeCores) {
  PlacementScheduler scheduler(&topo_, &platform_);
  EXPECT_EQ(scheduler.FreeCores("nc0").value(), 16);
  EXPECT_EQ(scheduler.FreeCores("nc1").value(), 24);
  EXPECT_EQ(scheduler.FreeCores("nc2").value(), 28);
  EXPECT_TRUE(scheduler.FreeCores("ghost").status().IsNotFound());
}

TEST_F(PlacementTest, DedicatedVmAvoidsSharedPool) {
  PlacementScheduler scheduler(&topo_, &platform_);
  // nc2 has the most free cores but hosts shared VMs on a homogeneous
  // arch: a dedicated VM must go to nc1.
  auto decision = scheduler.ChooseDestination("vm-a");
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision->destination_nc, "nc1");
  EXPECT_EQ(decision->source_nc, "nc0");
  EXPECT_EQ(decision->destination_free_cores, 16);  // 24 - 8
}

TEST_F(PlacementTest, SharedVmHasNoHomogeneousDestination) {
  PlacementScheduler scheduler(&topo_, &platform_);
  // vm-d lives on nc2; the only other hosts (nc0/nc1) are homogeneous
  // dedicated pools, which reject a shared VM (Fig. 7 a/b separation).
  auto decision = scheduler.ChooseDestination("vm-d");
  EXPECT_EQ(decision.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(PlacementTest, HybridHostAcceptsBothTypes) {
  ASSERT_TRUE(topo_.AddNc({.nc_id = "nc3", .cluster_id = "c0",
                           .arch = DeploymentArch::kHybrid,
                           .num_cores = 16})
                  .ok());
  PlacementScheduler scheduler(&topo_, &platform_);
  auto shared = scheduler.ChooseDestination("vm-d");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->destination_nc, "nc3");
  auto dedicated = scheduler.ChooseDestination("vm-a");
  ASSERT_TRUE(dedicated.ok());
  // Worst fit still prefers nc1 (24 free) over nc3 (16 free).
  EXPECT_EQ(dedicated->destination_nc, "nc1");
}

TEST_F(PlacementTest, LockedAndDecommissionedHostsExcluded) {
  // Lock nc1 (the natural destination for dedicated VMs).
  platform_.Submit({ActionRequest{.type = ActionType::kNcLock,
                                  .target = "nc1",
                                  .priority = 1,
                                  .submitted_at = T("2024-01-01 00:00")}},
                   {});
  PlacementScheduler scheduler(&topo_, &platform_);
  auto decision = scheduler.ChooseDestination("vm-a");
  // Only nc2 remains and it is shared-homogeneous: exhausted.
  EXPECT_TRUE(decision.status().code() == StatusCode::kResourceExhausted);
}

TEST_F(PlacementTest, CapacityIsRespected) {
  // Fill nc1 so only 4 cores remain: an 8-core dedicated VM cannot fit.
  AddVm("vm-e", "nc1", VmType::kDedicated, 8, 28);
  PlacementScheduler scheduler(&topo_, &platform_);
  EXPECT_EQ(scheduler.FreeCores("nc1").value(), 4);
  auto decision = scheduler.ChooseDestination("vm-a");
  EXPECT_TRUE(decision.status().code() == StatusCode::kResourceExhausted);
}

TEST_F(PlacementTest, EvacuationAccountsForItsOwnPlacements) {
  // nc1 has 24 free cores; evacuating both 8-core VMs of nc0 must track
  // the running usage (after vm-a lands, 16 remain for vm-b).
  PlacementScheduler scheduler(&topo_, &platform_);
  auto plan = scheduler.PlanEvacuation("nc0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->size(), 2u);
  EXPECT_EQ((*plan)[0].destination_nc, "nc1");
  EXPECT_EQ((*plan)[1].destination_nc, "nc1");
  EXPECT_EQ((*plan)[0].destination_free_cores, 16);
  EXPECT_EQ((*plan)[1].destination_free_cores, 8);
}

TEST_F(PlacementTest, EvacuationFailsAtomically) {
  // Shrink nc1's headroom so only one of nc0's two VMs fits.
  AddVm("vm-e", "nc1", VmType::kDedicated, 8, 24);  // 8 free left
  PlacementScheduler scheduler(&topo_, &platform_);
  auto plan = scheduler.PlanEvacuation("nc0");
  EXPECT_TRUE(plan.status().code() == StatusCode::kResourceExhausted);
}

TEST_F(PlacementTest, UnknownEntitiesFail) {
  PlacementScheduler scheduler(&topo_, &platform_);
  EXPECT_TRUE(scheduler.ChooseDestination("ghost").status().IsNotFound());
  EXPECT_TRUE(scheduler.PlanEvacuation("ghost").status().IsNotFound());
}

}  // namespace
}  // namespace cdibot
