#include <gtest/gtest.h>

#include "cdi/baselines.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

ResolvedEvent U(const char* start, const char* end) {
  return ResolvedEvent{.name = "vm_crash",
                       .target = "vm-1",
                       .period = Interval(T(start), T(end)),
                       .level = Severity::kFatal,
                       .category = StabilityCategory::kUnavailability};
}

ResolvedEvent P(const char* start, const char* end) {
  return ResolvedEvent{.name = "slow_io",
                       .target = "vm-1",
                       .period = Interval(T(start), T(end)),
                       .level = Severity::kCritical,
                       .category = StabilityCategory::kPerformance};
}

TEST(BaselinesTest, NoEventsMeansPerfectAvailability) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto stats = ComputeUnavailabilityStats({}, day);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->downtime_percentage, 0.0);
  EXPECT_DOUBLE_EQ(stats->annual_interruption_rate, 0.0);
  EXPECT_EQ(stats->interruption_count, 0u);
  EXPECT_EQ(stats->mtbf, Duration::Days(1));
  EXPECT_EQ(stats->mttr, Duration::Zero());
}

TEST(BaselinesTest, SingleEpisodeMetrics) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  // 72 minutes down = 5% of the day.
  auto stats = ComputeUnavailabilityStats(
      {U("2024-01-01 10:00", "2024-01-01 11:12")}, day);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->downtime_percentage, 0.05, 1e-12);
  EXPECT_EQ(stats->interruption_count, 1u);
  EXPECT_EQ(stats->downtime, Duration::Minutes(72));
  // One interruption in one day -> 365 per service-year.
  EXPECT_NEAR(stats->annual_interruption_rate, 365.0, 1e-9);
  EXPECT_EQ(stats->mttr, Duration::Minutes(72));
}

TEST(BaselinesTest, OverlappingAndTouchingEpisodesMerge) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto stats = ComputeUnavailabilityStats(
      {U("2024-01-01 10:00", "2024-01-01 10:30"),
       U("2024-01-01 10:20", "2024-01-01 10:50"),   // overlaps
       U("2024-01-01 10:50", "2024-01-01 11:00"),   // touches
       U("2024-01-01 15:00", "2024-01-01 15:10")},  // separate
      day);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->interruption_count, 2u);
  EXPECT_EQ(stats->downtime, Duration::Minutes(70));
}

TEST(BaselinesTest, PerformanceEventsAreInvisible) {
  // The paper's core claim: DP/AIR cannot see performance damage.
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto stats = ComputeUnavailabilityStats(
      {P("2024-01-01 08:00", "2024-01-01 20:00")}, day);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->downtime_percentage, 0.0);
  EXPECT_EQ(stats->interruption_count, 0u);
}

TEST(BaselinesTest, EventsClampIntoServicePeriod) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto stats = ComputeUnavailabilityStats(
      {U("2023-12-31 23:30", "2024-01-01 00:30")}, day);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->downtime, Duration::Minutes(30));
}

TEST(BaselinesTest, EmptyServicePeriodFails) {
  const Interval empty(T("2024-01-01 00:00"), T("2024-01-01 00:00"));
  EXPECT_TRUE(ComputeUnavailabilityStats({}, empty)
                  .status()
                  .IsInvalidArgument());
}

TEST(BaselinesTest, MtbfSplitsServiceTimeAcrossEpisodes) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto stats = ComputeUnavailabilityStats(
      {U("2024-01-01 06:00", "2024-01-01 06:10"),
       U("2024-01-01 18:00", "2024-01-01 18:20")},
      day);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->mtbf, Duration::Hours(12));
  EXPECT_EQ(stats->mttr, Duration::Minutes(15));
}

TEST(BaselinesTest, FleetAggregation) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto a = ComputeUnavailabilityStats({U("2024-01-01 00:00",
                                         "2024-01-01 02:24")},
                                      day)
               .value();  // 10% of one day
  auto b = ComputeUnavailabilityStats({}, day).value();
  auto fleet = AggregateUnavailabilityStats({a, b},
                                            {Duration::Days(1),
                                             Duration::Days(1)});
  EXPECT_NEAR(fleet.downtime_percentage, 0.05, 1e-12);
  EXPECT_EQ(fleet.interruption_count, 1u);
  // One interruption over 2 VM-days -> 182.5 per VM-year.
  EXPECT_NEAR(fleet.annual_interruption_rate, 182.5, 1e-9);
}

}  // namespace
}  // namespace cdibot
