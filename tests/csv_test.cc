#include <gtest/gtest.h>

#include <cstdio>

#include "dataflow/csv.h"

namespace cdibot::dataflow {
namespace {

Schema TestSchema() {
  return Schema({Field{"name", ValueType::kString},
                 Field{"count", ValueType::kInt},
                 Field{"ratio", ValueType::kDouble}});
}

Table TestTable() {
  Table t(TestSchema());
  t.AppendUnchecked({Value("plain"), Value(int64_t{3}), Value(0.5)});
  t.AppendUnchecked({Value("with,comma"), Value(int64_t{-7}), Value(1.25)});
  t.AppendUnchecked({Value("with \"quotes\""), Value(), Value()});
  return t;
}

TEST(CsvTest, RoundTripPreservesValues) {
  const Table original = TestTable();
  const std::string csv = ToCsv(original);
  auto parsed = FromCsv(csv, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(parsed->row(r)[c] == original.row(r)[c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, HeaderAndQuoting) {
  const std::string csv = ToCsv(TestTable());
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "name,count,ratio");
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quotes\"\"\""), std::string::npos);
}

TEST(CsvTest, NullsAreEmptyCells) {
  Table t(Schema({Field{"a", ValueType::kInt}, Field{"b", ValueType::kInt}}));
  t.AppendUnchecked({Value(), Value(int64_t{1})});
  const std::string csv = ToCsv(t);
  EXPECT_NE(csv.find("\n,1\n"), std::string::npos);
  auto parsed = FromCsv(csv, t.schema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->row(0)[0].is_null());
}

TEST(CsvTest, ParseErrors) {
  const Schema schema = TestSchema();
  EXPECT_TRUE(FromCsv("", schema).status().IsInvalidArgument());
  EXPECT_TRUE(FromCsv("wrong,header,row\n", schema).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count\n", schema).status().IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count,ratio\nonly_two,1\n", schema)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count,ratio\nx,notanint,0.5\n", schema)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count,ratio\n\"unterminated,1,0.5\n", schema)
                  .status()
                  .IsInvalidArgument());
}

TEST(CsvTest, CrlfAndBlankLinesTolerated) {
  auto parsed = FromCsv("name,count,ratio\r\nx,1,0.5\r\n\r\n", TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->At(0, "name")->AsString().value(), "x");
}

TEST(CsvTest, StrayQuoteMidCellIsRejected) {
  EXPECT_TRUE(FromCsv("name,count,ratio\nab\"cd,1,0.5\n", TestSchema())
                  .status()
                  .IsInvalidArgument());
}

TEST(CsvTest, EmbeddedNulBytes) {
  // A NUL inside a string cell is preserved verbatim...
  std::string csv = "name,count,ratio\na";
  csv += '\0';
  csv += "b,1,0.5\n";
  auto parsed = FromCsv(csv, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string expected = "a";
  expected += '\0';
  expected += 'b';
  EXPECT_EQ(parsed->At(0, "name")->AsString().value(), expected);

  // ...but a NUL inside a numeric cell cannot parse as a number.
  std::string bad = "name,count,ratio\nx,1";
  bad += '\0';
  bad += ",0.5\n";
  EXPECT_TRUE(FromCsv(bad, TestSchema()).status().IsInvalidArgument());
}

TEST(CsvLenientTest, TornTailDoesNotTakeDownThePrefix) {
  // The crash-recovery shape: intact rows, then a write that never finished.
  const std::string csv =
      "name,count,ratio\n"
      "good-1,1,0.5\n"
      "good-2,2,1.5\n"
      "torn-row,3\n";  // tail truncated mid-record: wrong cell count
  auto result = FromCsvLenient(csv, TestSchema());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 2u);
  EXPECT_EQ(result->rows_dropped, 1u);
  ASSERT_EQ(result->errors.size(), 1u);
  EXPECT_NE(result->errors[0].find("cells"), std::string::npos);
}

TEST(CsvLenientTest, EachDefectKindIsDroppedNotFatal) {
  std::string csv =
      "name,count,ratio\n"
      "\"unterminated,1,0.5\n"       // quote never closes
      "stray\"quote,2,0.5\n"         // quote mid-cell
      "badint,notanint,0.5\n"        // unparseable int
      "baddouble,3,notadouble\n"     // unparseable double
      "wide,4,0.5,extra\n"           // too many cells
      "survivor,5,2.5\n";
  csv += "nul,6";
  csv += '\0';
  csv += ",0.5\n";  // NUL corrupts the int cell
  auto result = FromCsvLenient(csv, TestSchema());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(result->table.At(0, "name")->AsString().value(), "survivor");
  EXPECT_EQ(result->rows_dropped, 6u);
  EXPECT_EQ(result->errors.size(), 6u);
}

TEST(CsvLenientTest, ErrorSamplesAreCappedCountersAreNot) {
  std::string csv = "name,count,ratio\n";
  for (int i = 0; i < 20; ++i) {
    csv += "row,notanint,0.5\n";
  }
  auto result = FromCsvLenient(csv, TestSchema());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 0u);
  EXPECT_EQ(result->rows_dropped, 20u);
  EXPECT_EQ(result->errors.size(), LenientCsvResult::kMaxErrors);
}

TEST(CsvLenientTest, UnusableHeaderIsStillFatal) {
  // Without a header no row can be interpreted, so leniency does not apply.
  EXPECT_TRUE(FromCsvLenient("", TestSchema()).status().IsInvalidArgument());
  EXPECT_TRUE(FromCsvLenient("wrong,header,row\nx,1,0.5\n", TestSchema())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsvLenient("name,count\nx,1\n", TestSchema())
                  .status()
                  .IsInvalidArgument());
}

TEST(CsvLenientTest, FileVariantReportsMissingFile) {
  const std::string path = ::testing::TempDir() + "/cdibot_lenient_gone.csv";
  std::remove(path.c_str());
  EXPECT_TRUE(
      ReadCsvFileLenient(path, TestSchema()).status().IsNotFound());
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cdibot_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(TestTable(), path).ok());
  auto parsed = ReadCsvFile(path, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 3u);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile(path, TestSchema()).status().IsNotFound());
}

}  // namespace
}  // namespace cdibot::dataflow
