#include <gtest/gtest.h>

#include <cstdio>

#include "dataflow/csv.h"

namespace cdibot::dataflow {
namespace {

Schema TestSchema() {
  return Schema({Field{"name", ValueType::kString},
                 Field{"count", ValueType::kInt},
                 Field{"ratio", ValueType::kDouble}});
}

Table TestTable() {
  Table t(TestSchema());
  t.AppendUnchecked({Value("plain"), Value(int64_t{3}), Value(0.5)});
  t.AppendUnchecked({Value("with,comma"), Value(int64_t{-7}), Value(1.25)});
  t.AppendUnchecked({Value("with \"quotes\""), Value(), Value()});
  return t;
}

TEST(CsvTest, RoundTripPreservesValues) {
  const Table original = TestTable();
  const std::string csv = ToCsv(original);
  auto parsed = FromCsv(csv, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(parsed->row(r)[c] == original.row(r)[c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, HeaderAndQuoting) {
  const std::string csv = ToCsv(TestTable());
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "name,count,ratio");
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quotes\"\"\""), std::string::npos);
}

TEST(CsvTest, NullsAreEmptyCells) {
  Table t(Schema({Field{"a", ValueType::kInt}, Field{"b", ValueType::kInt}}));
  t.AppendUnchecked({Value(), Value(int64_t{1})});
  const std::string csv = ToCsv(t);
  EXPECT_NE(csv.find("\n,1\n"), std::string::npos);
  auto parsed = FromCsv(csv, t.schema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->row(0)[0].is_null());
}

TEST(CsvTest, ParseErrors) {
  const Schema schema = TestSchema();
  EXPECT_TRUE(FromCsv("", schema).status().IsInvalidArgument());
  EXPECT_TRUE(FromCsv("wrong,header,row\n", schema).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count\n", schema).status().IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count,ratio\nonly_two,1\n", schema)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count,ratio\nx,notanint,0.5\n", schema)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromCsv("name,count,ratio\n\"unterminated,1,0.5\n", schema)
                  .status()
                  .IsInvalidArgument());
}

TEST(CsvTest, CrlfAndBlankLinesTolerated) {
  auto parsed = FromCsv("name,count,ratio\r\nx,1,0.5\r\n\r\n", TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->At(0, "name")->AsString().value(), "x");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cdibot_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(TestTable(), path).ok());
  auto parsed = ReadCsvFile(path, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 3u);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile(path, TestSchema()).status().IsNotFound());
}

}  // namespace
}  // namespace cdibot::dataflow
