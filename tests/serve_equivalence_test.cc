// Differential suite for the serving layer: a CdiQueryService with the ARC
// result cache and materialized cubes ON must answer every query with
// EXACTLY the same bits as a service with both OFF (which recomputes from a
// fresh source pull every time). 24 adversarial seeds, over both source
// topologies (single-node streaming engine and a sharded fleet), across
// watermark advances, mid-day churn + shard rebalance, and a shard
// kill/recover cycle. Every double is compared with EXPECT_EQ — never
// tolerance-based.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/query.h"
#include "serve/service.h"
#include "shard/coordinator.h"
#include "stream/streaming_engine.h"
#include "equivalence_scenario.h"
#include "shard_equivalence_harness.h"

namespace cdibot {
namespace {

using serve::CdiQuery;
using serve::CdiQueryResponse;
using serve::CdiQueryService;
using serve::CdiQueryServiceOptions;
using serve::Consistency;
using serve::FleetFidelity;
using testutil::MakeScenario;
using testutil::Scenario;
using testutil::ShardEquivalenceHarness;

/// Bit-identical response comparison: every double via EXPECT_EQ. The
/// served_from_cache/cube flags are deliberately NOT compared — they are
/// the two arms' whole point of difference.
void ExpectResponseIdentical(const CdiQueryResponse& want,
                             const CdiQueryResponse& got,
                             const std::string& what) {
  EXPECT_EQ(want.fleet.unavailability, got.fleet.unavailability) << what;
  EXPECT_EQ(want.fleet.performance, got.fleet.performance) << what;
  EXPECT_EQ(want.fleet.control_plane, got.fleet.control_plane) << what;
  EXPECT_EQ(want.fleet.service_time, got.fleet.service_time) << what;

  EXPECT_EQ(want.fleet_baseline.interruption_count,
            got.fleet_baseline.interruption_count)
      << what;
  EXPECT_EQ(want.fleet_baseline.downtime, got.fleet_baseline.downtime)
      << what;
  EXPECT_EQ(want.fleet_baseline.downtime_percentage,
            got.fleet_baseline.downtime_percentage)
      << what;
  EXPECT_EQ(want.fleet_baseline.annual_interruption_rate,
            got.fleet_baseline.annual_interruption_rate)
      << what;
  EXPECT_EQ(want.fleet_baseline.mtbf, got.fleet_baseline.mtbf) << what;
  EXPECT_EQ(want.fleet_baseline.mttr, got.fleet_baseline.mttr) << what;

  ASSERT_EQ(want.drilldown.groups.size(), got.drilldown.groups.size())
      << what;
  for (size_t i = 0; i < want.drilldown.groups.size(); ++i) {
    const DrilldownGroup& w = want.drilldown.groups[i];
    const DrilldownGroup& g = got.drilldown.groups[i];
    EXPECT_EQ(w.values, g.values) << what << " group " << i;
    EXPECT_EQ(w.key, g.key) << what << " group " << i;
    EXPECT_EQ(w.vm_count, g.vm_count) << what << " " << w.key;
    EXPECT_EQ(w.cdi.unavailability, g.cdi.unavailability)
        << what << " " << w.key;
    EXPECT_EQ(w.cdi.performance, g.cdi.performance) << what << " " << w.key;
    EXPECT_EQ(w.cdi.control_plane, g.cdi.control_plane)
        << what << " " << w.key;
    EXPECT_EQ(w.cdi.service_time, g.cdi.service_time) << what << " " << w.key;
    EXPECT_EQ(w.quality.events_quarantined, g.quality.events_quarantined)
        << what << " " << w.key;
    EXPECT_EQ(w.quality.events_missing, g.quality.events_missing)
        << what << " " << w.key;
    EXPECT_EQ(w.quality.events_shed, g.quality.events_shed)
        << what << " " << w.key;
    EXPECT_EQ(w.quality.degraded, g.quality.degraded) << what << " " << w.key;
  }
  EXPECT_EQ(want.drilldown.records_scanned, got.drilldown.records_scanned)
      << what;
  EXPECT_EQ(want.drilldown.records_filtered, got.drilldown.records_filtered)
      << what;

  EXPECT_EQ(want.quality.events_quarantined, got.quality.events_quarantined)
      << what;
  EXPECT_EQ(want.quality.events_missing, got.quality.events_missing) << what;
  EXPECT_EQ(want.quality.events_shed, got.quality.events_shed) << what;
  EXPECT_EQ(want.quality.degraded, got.quality.degraded) << what;
  EXPECT_EQ(want.vms_deferred, got.vms_deferred) << what;
  EXPECT_EQ(want.as_of_watermark, got.as_of_watermark) << what;

  ASSERT_EQ(want.detail != nullptr, got.detail != nullptr) << what;
  if (want.detail != nullptr && got.detail != nullptr) {
    ShardEquivalenceHarness::ExpectIdentical(*want.detail, *got.detail,
                                             what + " detail");
  }
}

/// The query battery: the shapes a dashboard + ad-hoc mix actually sends.
/// kStaleOk uses a bound wider than the day so the cube may always answer
/// — the differential pins that even maximally-stale cube/cache answers
/// match a fresh recompute while the watermark is unchanged.
std::vector<CdiQuery> QueryBattery() {
  std::vector<CdiQuery> battery;
  {
    CdiQuery q;  // fleet-only dashboard read
    q.consistency = Consistency::kCached;
    battery.push_back(q);
  }
  {
    CdiQuery q;  // one-dimension drill-down
    q.consistency = Consistency::kCached;
    q.group_by = {"az"};
    battery.push_back(q);
  }
  {
    CdiQuery q;  // composite drill-down, bounded staleness
    q.consistency = Consistency::kStaleOk;
    q.max_staleness = Duration::Hours(48);
    q.group_by = {"region", "az"};
    battery.push_back(q);
  }
  {
    CdiQuery q;  // filtered drill-down
    q.consistency = Consistency::kCached;
    q.group_by = {"az"};
    q.filter = {{"region", "r0"}};
    battery.push_back(q);
  }
  {
    CdiQuery q;  // legacy Snapshot() re-route shape
    q.consistency = Consistency::kFresh;
    q.include_detail = true;
    battery.push_back(q);
  }
  {
    CdiQuery q;  // legacy FleetCdi() re-route shape
    q.consistency = Consistency::kCached;
    q.fleet_fidelity = FleetFidelity::kPartialMerge;
    battery.push_back(q);
  }
  return battery;
}

/// Runs the battery against both arms. The reference (cache/cubes off)
/// answers first. The cached arm then answers three ways, all of which
/// must match the reference bit for bit: a forced kFresh pass (pull
/// through the cube, which also overwrites any entry left stale by VM
/// churn — registration changes do not advance the event-time watermark,
/// so bounded-stale answers across churn are *allowed* to differ and are
/// deliberately not compared), then the query's own consistency mode
/// (cache or cube path), then a repeat (a guaranteed cache hit).
void RunBattery(CdiQueryService& reference, CdiQueryService& cached,
                const std::string& stage) {
  // Settle the source's watermark clock first: the first pull after an
  // ingest may advance the reported watermark (a sharded gather flushes
  // pending work), and both arms must stamp as_of from the same clock.
  {
    CdiQuery settle;
    settle.consistency = Consistency::kFresh;
    auto s = reference.Query(settle);
    ASSERT_TRUE(s.ok()) << stage << " settle: " << s.status().ToString();
  }
  const std::vector<CdiQuery> battery = QueryBattery();
  for (size_t i = 0; i < battery.size(); ++i) {
    const CdiQuery& q = battery[i];
    const std::string what = stage + " query " + std::to_string(i);
    auto want = reference.Query(q);
    ASSERT_TRUE(want.ok()) << what << ": " << want.status().ToString();
    CdiQuery fresh = q;
    fresh.consistency = Consistency::kFresh;
    auto warmed = cached.Query(fresh);
    ASSERT_TRUE(warmed.ok()) << what << ": " << warmed.status().ToString();
    ExpectResponseIdentical(*want, *warmed, what + " fresh pass");
    for (int pass = 0; pass < 2; ++pass) {
      auto got = cached.Query(q);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
      ExpectResponseIdentical(*want, *got,
                              what + " pass " + std::to_string(pass));
    }
  }
}

CdiQueryServiceOptions CachedArm(const std::string& prefix) {
  return {.cache_entries = 64, .materialize_cubes = true,
          .metric_prefix = prefix};
}

CdiQueryServiceOptions ReferenceArm(const std::string& prefix) {
  return {.cache_entries = 0, .materialize_cubes = false,
          .metric_prefix = prefix};
}

class ServeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeEquivalenceTest, EngineCacheOnMatchesCacheOff) {
  const uint64_t seed = GetParam();
  const Scenario sc = MakeScenario(seed);
  ShardEquivalenceHarness harness;

  StreamingCdiOptions opts;
  opts.window = sc.day;
  auto engine_or = StreamingCdiEngine::Create(&harness.catalog(),
                                              &harness.weights(), opts);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  StreamingCdiEngine engine = std::move(engine_or).value();
  for (const VmServiceInfo& vm : sc.vms) {
    if (ShardEquivalenceHarness::IsLate(sc, vm.vm_id)) continue;
    auto it = sc.initial_override.find(vm.vm_id);
    ASSERT_TRUE(
        engine.RegisterVm(it != sc.initial_override.end() ? it->second : vm)
            .ok());
  }

  serve::EngineSource ref_source(&engine);
  serve::EngineSource cached_source(&engine);
  CdiQueryService reference(&ref_source, ReferenceArm("serve_eq.eng_ref"));
  CdiQueryService cached(&cached_source, CachedArm("serve_eq.eng_on"));

  const size_t half = sc.arrivals.size() / 2;
  for (size_t i = 0; i < sc.arrivals.size(); ++i) {
    ASSERT_TRUE(engine.Ingest(sc.arrivals[i]).ok());
    if (i + 1 == half) {
      // Mid-day battery, then churn (late registrations + window changes)
      // with the cache warm: the post-churn battery proves watermark-based
      // invalidation, not time, keeps the cached arm honest.
      RunBattery(reference, cached, "seed " + std::to_string(seed) +
                                        " engine mid-day");
      ShardEquivalenceHarness::ApplyChurn(sc, [&](const VmServiceInfo& vm) {
        ASSERT_TRUE(engine.RegisterVm(vm).ok());
      });
    }
  }
  RunBattery(reference, cached,
             "seed " + std::to_string(seed) + " engine end-of-day");
  // Nothing ingested since: the cached arm must now be serving repeats
  // without pulling, and still matched the reference above.
  if (sc.arrivals.size() > 1) {
    EXPECT_GT(cached.stats().cache_hits + cached.stats().cube_answers, 0u);
  }
}

TEST_P(ServeEquivalenceTest, ShardedCacheOnMatchesCacheOffAcrossRebalance) {
  const uint64_t seed = GetParam();
  const Scenario sc = MakeScenario(seed);
  ShardEquivalenceHarness harness;
  const size_t num_shards = 2 + seed % 3;

  shard::ShardTopologyOptions topo;
  topo.num_shards = num_shards;
  topo.engine.window = sc.day;
  auto coord_or = shard::ShardCoordinator::Create(
      &harness.catalog(), &harness.weights(), std::move(topo));
  ASSERT_TRUE(coord_or.ok()) << coord_or.status().ToString();
  std::unique_ptr<shard::ShardCoordinator> coord = std::move(coord_or).value();

  std::vector<VmServiceInfo> initial;
  for (const VmServiceInfo& vm : sc.vms) {
    if (ShardEquivalenceHarness::IsLate(sc, vm.vm_id)) continue;
    auto it = sc.initial_override.find(vm.vm_id);
    initial.push_back(it != sc.initial_override.end() ? it->second : vm);
  }
  ASSERT_TRUE(coord->RegisterVms(initial).ok());

  serve::CoordinatorSource ref_source(coord.get());
  serve::CoordinatorSource cached_source(coord.get());
  CdiQueryService reference(&ref_source, ReferenceArm("serve_eq.shard_ref"));
  CdiQueryService cached(&cached_source, CachedArm("serve_eq.shard_on"));

  const size_t total = sc.arrivals.size();
  const size_t half = total / 2;
  const size_t three_quarter = total * 3 / 4;
  const size_t victim = seed % num_shards;
  for (size_t i = 0; i < total; ++i) {
    ASSERT_TRUE(coord->Ingest(sc.arrivals[i]).ok());
    if (i + 1 == half) {
      RunBattery(reference, cached, "seed " + std::to_string(seed) +
                                        " sharded pre-rebalance");
      ShardEquivalenceHarness::ApplyChurn(sc, [&](const VmServiceInfo& vm) {
        ASSERT_TRUE(coord->RegisterVm(vm).ok());
      });
      // Mid-day recut under live traffic: the serving layer's answers must
      // be indistinguishable across the handoff.
      ASSERT_TRUE(coord->Rebalance().ok());
      RunBattery(reference, cached, "seed " + std::to_string(seed) +
                                        " sharded post-rebalance");
    }
    if (i + 1 == three_quarter && half != three_quarter) {
      // Chaos: kill a shard and recover it. The facade arms are only
      // compared after recovery — during the outage kFresh pulls see a
      // DEGRADED result while kCached may legitimately serve the
      // pre-outage answer (the watermark did not advance), which is the
      // documented consistency semantics, not a bug.
      ASSERT_TRUE(coord->InjectShardFailure(victim).ok());
      ASSERT_TRUE(coord->RecoverShard(victim).ok());
      ASSERT_TRUE(coord->ShardAlive(victim));
    }
  }
  RunBattery(reference, cached,
             "seed " + std::to_string(seed) + " sharded end-of-day");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace cdibot
