#include <gtest/gtest.h>

#include "sim/fleet.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(FleetTest, Validation) {
  FleetSpec spec;
  spec.regions = 0;
  EXPECT_TRUE(Fleet::Build(spec).status().IsInvalidArgument());
  spec = FleetSpec{};
  spec.hybrid_fraction = 1.5;
  EXPECT_TRUE(Fleet::Build(spec).status().IsInvalidArgument());
}

TEST(FleetTest, SizesMatchSpec) {
  FleetSpec spec;
  spec.regions = 2;
  spec.azs_per_region = 2;
  spec.clusters_per_az = 2;
  spec.ncs_per_cluster = 3;
  spec.vms_per_nc = 4;
  auto fleet = Fleet::Build(spec);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet->topology().num_ncs(), 2u * 2 * 2 * 3);
  EXPECT_EQ(fleet->num_vms(), 2u * 2 * 2 * 3 * 4);
}

TEST(FleetTest, DeterministicForSameSeed) {
  FleetSpec spec;
  spec.hybrid_fraction = 0.5;
  auto a = Fleet::Build(spec).value();
  auto b = Fleet::Build(spec).value();
  ASSERT_EQ(a.topology().ncs().size(), b.topology().ncs().size());
  for (size_t i = 0; i < a.topology().ncs().size(); ++i) {
    EXPECT_EQ(a.topology().ncs()[i].arch, b.topology().ncs()[i].arch);
    EXPECT_EQ(a.topology().ncs()[i].model, b.topology().ncs()[i].model);
  }
}

TEST(FleetTest, HybridFractionZeroAndOne) {
  FleetSpec spec;
  spec.hybrid_fraction = 0.0;
  auto fleet = Fleet::Build(spec).value();
  for (const NcInfo& nc : fleet.topology().ncs()) {
    EXPECT_EQ(nc.arch, DeploymentArch::kHomogeneous);
  }
  spec.hybrid_fraction = 1.0;
  fleet = Fleet::Build(spec).value();
  for (const NcInfo& nc : fleet.topology().ncs()) {
    EXPECT_EQ(nc.arch, DeploymentArch::kHybrid);
  }
}

TEST(FleetTest, HomogeneousNcsHostOneVmType) {
  FleetSpec spec;
  spec.hybrid_fraction = 0.0;
  auto fleet = Fleet::Build(spec).value();
  for (const NcInfo& nc : fleet.topology().ncs()) {
    std::set<VmType> types;
    for (const std::string& vm_id : fleet.topology().VmsOnNc(nc.nc_id)) {
      types.insert(fleet.topology().FindVm(vm_id)->type);
    }
    EXPECT_EQ(types.size(), 1u) << nc.nc_id;
  }
}

TEST(FleetTest, HybridNcsMixTypesOnDisjointCores) {
  FleetSpec spec;
  spec.hybrid_fraction = 1.0;
  spec.vms_per_nc = 6;
  auto fleet = Fleet::Build(spec).value();
  for (const NcInfo& nc : fleet.topology().ncs()) {
    std::set<VmType> types;
    std::vector<std::pair<int, int>> ranges;
    for (const std::string& vm_id : fleet.topology().VmsOnNc(nc.nc_id)) {
      const VmInfo vm = fleet.topology().FindVm(vm_id).value();
      types.insert(vm.type);
      ranges.emplace_back(vm.core_begin, vm.core_end);
    }
    EXPECT_EQ(types.size(), 2u) << nc.nc_id;
    // Core ranges are pairwise disjoint (Fig. 7c: "different cores").
    std::sort(ranges.begin(), ranges.end());
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_LE(ranges[i - 1].second, ranges[i].first);
    }
  }
}

TEST(FleetTest, ServiceInfosCoverEveryVm) {
  auto fleet = Fleet::Build(FleetSpec{}).value();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto infos = fleet.ServiceInfos(day);
  ASSERT_TRUE(infos.ok());
  EXPECT_EQ(infos->size(), fleet.num_vms());
  for (const VmServiceInfo& info : *infos) {
    EXPECT_EQ(info.service_period, day);
    EXPECT_EQ(info.dims.count("region"), 1u);
    EXPECT_EQ(info.dims.count("arch"), 1u);
  }
}

TEST(FleetTest, ServiceInfosWhereFilters) {
  FleetSpec spec;
  spec.hybrid_fraction = 0.5;
  auto fleet = Fleet::Build(spec).value();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto hybrid = fleet.ServiceInfosWhere(day, "arch", "hybrid").value();
  auto homogeneous =
      fleet.ServiceInfosWhere(day, "arch", "homogeneous").value();
  EXPECT_EQ(hybrid.size() + homogeneous.size(), fleet.num_vms());
  EXPECT_GT(hybrid.size(), 0u);
  EXPECT_GT(homogeneous.size(), 0u);
  for (const VmServiceInfo& info : hybrid) {
    EXPECT_EQ(info.dims.at("arch"), "hybrid");
  }
}

}  // namespace
}  // namespace cdibot
