// RetryPolicy + retryability semantics: the storage layer's defense
// against transient I/O failure. Pins which codes are retryable (DataLoss
// is NOT — corruption needs recovery, not repetition), the attempt budget,
// the backoff/jitter schedule, and the StatusOr OK-construction footgun.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/statusor.h"

namespace cdibot {
namespace {

TEST(RetryabilityTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::Aborted("x").IsRetryable());

  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsRetryable());
  // Corrupted data must never be hammered: a torn checkpoint stays torn no
  // matter how often it is re-read.
  EXPECT_FALSE(Status::DataLoss("x").IsRetryable());

  EXPECT_TRUE(StatusCodeIsRetryable(StatusCode::kUnavailable));
  EXPECT_FALSE(StatusCodeIsRetryable(StatusCode::kDataLoss));
}

TEST(RetryabilityTest, NewCodesRoundTripPredicatesAndNames) {
  const Status unavailable = Status::Unavailable("disk rebooting");
  EXPECT_TRUE(unavailable.IsUnavailable());
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: disk rebooting");

  const Status data_loss = Status::DataLoss("crc mismatch");
  EXPECT_TRUE(data_loss.IsDataLoss());
  EXPECT_EQ(data_loss.code(), StatusCode::kDataLoss);
  EXPECT_EQ(data_loss.ToString(), "DataLoss: crc mismatch");
}

// Constructing a StatusOr from an OK status would break the invariant
// "no value implies !ok()"; the class degrades it to Internal instead of
// silently pretending a value exists. Pinned so refactors keep it.
TEST(StatusOrFootgunTest, OkStatusConstructionBecomesInternal) {
  StatusOr<int> so(Status::OK());
  EXPECT_FALSE(so.ok());
  EXPECT_TRUE(so.status().IsInternal());
}

class RetryPolicyTest : public ::testing::Test {
 protected:
  /// A policy with a fake sleeper that records the backoff schedule.
  RetryPolicy Make(RetryOptions options, uint64_t seed = 7) {
    RetryPolicy policy(options, seed);
    policy.set_sleeper([this](Duration d) { sleeps_.push_back(d); });
    return policy;
  }

  std::vector<Duration> sleeps_;
};

TEST_F(RetryPolicyTest, SucceedsFirstTryWithoutSleeping) {
  RetryPolicy policy = Make({});
  EXPECT_TRUE(policy.Run([] { return Status::OK(); }).ok());
  EXPECT_EQ(policy.last_attempts(), 1);
  EXPECT_TRUE(sleeps_.empty());
}

TEST_F(RetryPolicyTest, RetriesTransientFailureUntilSuccess) {
  RetryPolicy policy = Make({});
  int calls = 0;
  const Status st = policy.Run([&calls] {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(policy.last_attempts(), 3);
  EXPECT_EQ(sleeps_.size(), 2u);
}

TEST_F(RetryPolicyTest, ExhaustsBudgetAndReturnsLastError) {
  RetryOptions options;
  options.max_attempts = 4;
  RetryPolicy policy = Make(options);
  int calls = 0;
  const Status st = policy.Run([&calls] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(policy.last_attempts(), 4);
  EXPECT_EQ(sleeps_.size(), 3u);  // no sleep after the final failure
}

TEST_F(RetryPolicyTest, PermanentErrorsReturnImmediately) {
  RetryPolicy policy = Make({});
  for (const Status& permanent :
       {Status::InvalidArgument("bad"), Status::DataLoss("torn"),
        Status::NotFound("gone"), Status::Internal("bug")}) {
    sleeps_.clear();
    int calls = 0;
    const Status st = policy.Run([&] {
      ++calls;
      return permanent;
    });
    EXPECT_EQ(st, permanent);
    EXPECT_EQ(calls, 1) << permanent.ToString();
    EXPECT_EQ(policy.last_attempts(), 1);
    EXPECT_TRUE(sleeps_.empty()) << permanent.ToString();
  }
}

TEST_F(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryOptions options;
  options.max_attempts = 6;
  options.initial_backoff = Duration::Millis(100);
  options.backoff_multiplier = 2.0;
  options.max_backoff = Duration::Seconds(10);
  options.jitter = 0.2;
  RetryPolicy policy = Make(options);
  (void)policy.Run([] { return Status::Unavailable("down"); });
  ASSERT_EQ(sleeps_.size(), 5u);
  int64_t nominal = 100;
  for (const Duration& sleep : sleeps_) {
    // Jitter only shortens: each sleep is drawn from
    // [nominal * (1 - jitter), nominal], never above the schedule.
    EXPECT_GE(sleep.millis(), static_cast<int64_t>(nominal * 0.8) - 1);
    EXPECT_LE(sleep.millis(), nominal);
    nominal *= 2;
  }
}

TEST_F(RetryPolicyTest, FullJitterSpansTheWholeBackoffRange) {
  // jitter = 1 (the default) is classic AWS full jitter: sleeps land
  // anywhere in [0, nominal]. Across many seeds the first sleep must
  // actually USE that range — low values, high values, and a mean near
  // nominal / 2 — otherwise synchronized retriers re-form a thundering
  // herd inside a narrow band.
  RetryOptions options;
  options.max_attempts = 2;
  options.initial_backoff = Duration::Millis(1000);
  ASSERT_EQ(options.jitter, 1.0);  // full jitter is the default
  int64_t min_ms = INT64_MAX, max_ms = 0, sum_ms = 0;
  constexpr int kSeeds = 200;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    sleeps_.clear();
    RetryPolicy policy = Make(options, seed);
    (void)policy.Run([] { return Status::Unavailable("down"); });
    ASSERT_EQ(sleeps_.size(), 1u);
    const int64_t ms = sleeps_[0].millis();
    EXPECT_GE(ms, 0);
    EXPECT_LE(ms, 1000);
    min_ms = std::min(min_ms, ms);
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
  }
  EXPECT_LT(min_ms, 150);  // the bottom of the range is reachable
  EXPECT_GT(max_ms, 850);  // so is the top
  const double mean = static_cast<double>(sum_ms) / kSeeds;
  EXPECT_GT(mean, 400.0);  // uniform over [0, 1000] has mean 500
  EXPECT_LT(mean, 600.0);
}

TEST_F(RetryPolicyTest, ZeroJitterIsTheDeterministicSchedule) {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = Duration::Millis(100);
  options.backoff_multiplier = 2.0;
  options.jitter = 0.0;
  RetryPolicy policy = Make(options);
  (void)policy.Run([] { return Status::Unavailable("down"); });
  ASSERT_EQ(sleeps_.size(), 3u);
  EXPECT_EQ(sleeps_[0], Duration::Millis(100));
  EXPECT_EQ(sleeps_[1], Duration::Millis(200));
  EXPECT_EQ(sleeps_[2], Duration::Millis(400));
}

TEST_F(RetryPolicyTest, ExpiredDeadlineStopsAfterTheFirstAttempt) {
  RetryOptions options;
  options.max_attempts = 10;
  RetryPolicy policy = Make(options);
  int calls = 0;
  const Status st = policy.Run(
      [&calls] {
        ++calls;
        return Status::Unavailable("down");
      },
      Deadline::After(Duration::Zero()));
  EXPECT_TRUE(st.IsUnavailable());  // the last real error, not a new one
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps_.empty());  // no point sleeping with no budget left
}

TEST_F(RetryPolicyTest, InfiniteDeadlineRunsTheFullSchedule) {
  RetryOptions options;
  options.max_attempts = 4;
  RetryPolicy policy = Make(options);
  int calls = 0;
  const Status st = policy.Run(
      [&calls] {
        ++calls;
        return Status::Unavailable("down");
      },
      Deadline::Infinite());
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(sleeps_.size(), 3u);
}

TEST_F(RetryPolicyTest, SleepsAreClippedToTheRemainingBudget) {
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff = Duration::Seconds(30);  // far beyond the budget
  options.jitter = 0.0;
  RetryPolicy policy = Make(options);
  const Deadline deadline = Deadline::After(Duration::Millis(50));
  (void)policy.Run([] { return Status::Unavailable("down"); }, deadline);
  for (const Duration& sleep : sleeps_) {
    EXPECT_LE(sleep, Duration::Millis(50)) << sleep.millis();
  }
}

TEST_F(RetryPolicyTest, BackoffIsCappedAtMax) {
  RetryOptions options;
  options.max_attempts = 10;
  options.initial_backoff = Duration::Millis(100);
  options.backoff_multiplier = 10.0;
  options.max_backoff = Duration::Millis(500);
  options.jitter = 0.0;
  RetryPolicy policy = Make(options);
  (void)policy.Run([] { return Status::Unavailable("down"); });
  ASSERT_EQ(sleeps_.size(), 9u);
  for (size_t i = 1; i < sleeps_.size(); ++i) {
    EXPECT_LE(sleeps_[i].millis(), 500);
  }
}

TEST_F(RetryPolicyTest, JitterScheduleIsSeedDeterministic) {
  RetryOptions options;
  options.max_attempts = 5;
  RetryPolicy a = Make(options, /*seed=*/42);
  const std::vector<Duration> first = [&] {
    (void)a.Run([] { return Status::Unavailable("x"); });
    return sleeps_;
  }();
  sleeps_.clear();
  RetryPolicy b = Make(options, /*seed=*/42);
  (void)b.Run([] { return Status::Unavailable("x"); });
  EXPECT_EQ(first, sleeps_);
}

}  // namespace
}  // namespace cdibot
