#include <gtest/gtest.h>

#include "event/period_resolver.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Make(const char* name, const char* time, const char* target = "vm-1",
              Severity level = Severity::kWarning) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = target;
  ev.level = level;
  ev.expire_interval = Duration::Hours(24);
  return ev;
}

class PeriodResolverTest : public ::testing::Test {
 protected:
  PeriodResolverTest()
      : catalog_(EventCatalog::BuiltIn()), resolver_(&catalog_) {}
  EventCatalog catalog_;
  PeriodResolver resolver_;
};

TEST_F(PeriodResolverTest, WindowedEventTracesBackOneWindow) {
  // slow_io has a 1-minute window: start = time - 1m (Sec. IV-B1).
  auto out = resolver_.Resolve({Make("slow_io", "2024-01-01 12:17")});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().period.start, T("2024-01-01 12:16"));
  EXPECT_EQ(out->front().period.end, T("2024-01-01 12:17"));
  EXPECT_EQ(out->front().category, StabilityCategory::kPerformance);
}

TEST_F(PeriodResolverTest, ConsecutiveWindowedEventsTileTheEpisode) {
  auto out = resolver_.Resolve({Make("slow_io", "2024-01-01 12:01"),
                                Make("slow_io", "2024-01-01 12:02"),
                                Make("slow_io", "2024-01-01 12:03")});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  // Sorted by time, periods tile [12:00, 12:03).
  EXPECT_EQ((*out)[0].period.start, T("2024-01-01 12:00"));
  EXPECT_EQ((*out)[2].period.end, T("2024-01-01 12:03"));
}

TEST_F(PeriodResolverTest, LoggedDurationUsesAttribute) {
  RawEvent ev = Make("qemu_live_upgrade", "2024-01-01 03:00:10");
  ev.attrs["duration_ms"] = "2500";
  auto out = resolver_.Resolve({ev});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().period.length(), Duration::Millis(2500));
  EXPECT_EQ(out->front().period.end, T("2024-01-01 03:00:10"));
}

TEST_F(PeriodResolverTest, LoggedDurationFallsBackToDefault) {
  auto out = resolver_.Resolve({Make("qemu_live_upgrade", "2024-01-01 03:00")});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().period.length(),
            catalog_.Find("qemu_live_upgrade")->default_duration);
}

// Example 2 of the paper: add at t2 and t3 (t3 redundant), del at t4 and t5
// (t5 redundant) -> one ddos_blackhole event [t2, t4).
TEST_F(PeriodResolverTest, PaperExample2StatefulDedupAndPairing) {
  ResolveStats stats;
  auto out = resolver_.Resolve(
      {Make("ddos_blackhole_add", "2024-01-01 10:02"),   // t2
       Make("ddos_blackhole_add", "2024-01-01 10:03"),   // t3 (dropped)
       Make("ddos_blackhole_del", "2024-01-01 10:04"),   // t4
       Make("ddos_blackhole_del", "2024-01-01 10:05")},  // t5 (dropped)
      std::nullopt, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().name, "ddos_blackhole");
  EXPECT_EQ(out->front().period.start, T("2024-01-01 10:02"));
  EXPECT_EQ(out->front().period.end, T("2024-01-01 10:04"));
  EXPECT_EQ(stats.duplicate_details_dropped, 2u);
  EXPECT_EQ(stats.resolved, 1u);
}

TEST_F(PeriodResolverTest, StatefulAlternatingPairsResolveSeparately) {
  auto out = resolver_.Resolve({Make("ddos_blackhole_add", "2024-01-01 01:00"),
                                Make("ddos_blackhole_del", "2024-01-01 01:10"),
                                Make("ddos_blackhole_add", "2024-01-01 02:00"),
                                Make("ddos_blackhole_del", "2024-01-01 02:05")});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].period.length(), Duration::Minutes(10));
  EXPECT_EQ((*out)[1].period.length(), Duration::Minutes(5));
}

TEST_F(PeriodResolverTest, DanglingEndIsDropped) {
  ResolveStats stats;
  auto out = resolver_.Resolve(
      {Make("ddos_blackhole_del", "2024-01-01 01:00")}, std::nullopt, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(stats.dangling_end_dropped, 1u);
}

TEST_F(PeriodResolverTest, UnpairedStartClosesAtExpireOrBounds) {
  ResolveStats stats;
  // No bounds: closes at start + expire_interval (24h for built-in).
  auto out = resolver_.Resolve(
      {Make("ddos_blackhole_add", "2024-01-01 01:00")}, std::nullopt, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().period.length(), Duration::Hours(24));
  EXPECT_EQ(stats.unpaired_start_closed, 1u);

  // With bounds: closes at the bounds end.
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  out = resolver_.Resolve({Make("ddos_blackhole_add", "2024-01-01 20:00")},
                          day, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().period.end, day.end);
}

TEST_F(PeriodResolverTest, UnknownEventsAreCountedAndDropped) {
  ResolveStats stats;
  auto out = resolver_.Resolve({Make("mystery_event", "2024-01-01 01:00")},
                               std::nullopt, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(stats.unknown_dropped, 1u);
}

TEST_F(PeriodResolverTest, BoundsClampAndDropOutside) {
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto out = resolver_.Resolve(
      {
          Make("slow_io", "2024-01-01 00:00:30"),  // straddles day start
          Make("slow_io", "2023-12-31 23:00"),     // fully before
          Make("slow_io", "2024-01-01 12:00"),     // inside
      },
      day);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].period.start, day.start);  // clamped
  EXPECT_EQ((*out)[0].period.length(), Duration::Seconds(30));
}

TEST_F(PeriodResolverTest, TargetsAreIndependentForStatefulPairing) {
  auto out = resolver_.Resolve({
      Make("ddos_blackhole_add", "2024-01-01 01:00", "vm-1"),
      Make("ddos_blackhole_add", "2024-01-01 01:05", "vm-2"),
      Make("ddos_blackhole_del", "2024-01-01 01:10", "vm-1"),
      Make("ddos_blackhole_del", "2024-01-01 01:20", "vm-2"),
  });
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  for (const ResolvedEvent& ev : *out) {
    if (ev.target == "vm-1") {
      EXPECT_EQ(ev.period.length(), Duration::Minutes(10));
    } else {
      EXPECT_EQ(ev.period.length(), Duration::Minutes(15));
    }
  }
}

TEST_F(PeriodResolverTest, SeverityOfStartDetailIsKept) {
  auto out = resolver_.Resolve(
      {Make("ddos_blackhole_add", "2024-01-01 01:00", "vm-1",
            Severity::kFatal),
       Make("ddos_blackhole_del", "2024-01-01 01:10", "vm-1",
            Severity::kInfo)});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().level, Severity::kFatal);
}

TEST_F(PeriodResolverTest, EmptyInputYieldsEmptyOutput) {
  auto out = resolver_.Resolve({});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

}  // namespace
}  // namespace cdibot
