#include <gtest/gtest.h>

#include <cmath>

#include "extract/statistical.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

MetricSeries SeasonalSeries(size_t days, double anomaly_at_minute = -1,
                            double anomaly_size = 0.0, uint64_t seed = 1) {
  Rng rng(seed);
  MetricSeries series;
  series.metric = "read_latency";
  series.target = "vm-1";
  const TimePoint start = T("2024-01-01 00:00");
  const size_t n = days * 1440;
  for (size_t i = 0; i < n; ++i) {
    const double seasonal =
        3.0 * std::sin(2.0 * M_PI * static_cast<double>(i % 1440) / 1440.0);
    double v = 10.0 + seasonal + rng.Normal(0.0, 0.4);
    if (anomaly_at_minute >= 0 &&
        static_cast<double>(i) == anomaly_at_minute) {
      v += anomaly_size;
    }
    series.points.push_back(
        {start + Duration::Minutes(static_cast<int64_t>(i)), v});
  }
  return series;
}

TEST(StatisticalExtractorTest, CalibrationValidation) {
  StatisticalExtractor::Options options;
  options.event_name = "";
  EXPECT_TRUE(StatisticalExtractor::Calibrate(SeasonalSeries(3), options)
                  .status()
                  .IsInvalidArgument());
  options.event_name = "metric_anomaly";
  MetricSeries tiny;
  tiny.points = {{T("2024-01-01 00:00"), 1.0}};
  EXPECT_TRUE(StatisticalExtractor::Calibrate(tiny, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(StatisticalExtractorTest, QuietOnNormalTraffic) {
  StatisticalExtractor::Options options;
  options.q = 1e-5;
  auto extractor =
      StatisticalExtractor::Calibrate(SeasonalSeries(3), options).value();
  auto events = extractor.ExtractAll(SeasonalSeries(2, -1, 0.0, 99));
  // Allow a stray alarm on 2880 points at q=1e-5, but no more.
  EXPECT_LE(events.size(), 2u);
}

TEST(StatisticalExtractorTest, FlagsInjectedSpike) {
  StatisticalExtractor::Options options;
  options.q = 1e-4;
  auto extractor =
      StatisticalExtractor::Calibrate(SeasonalSeries(3), options).value();
  // A +30 spike at minute 700 of the follow-on day.
  auto events = extractor.ExtractAll(SeasonalSeries(1, 700, 30.0, 77));
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].name, "metric_anomaly");
  EXPECT_EQ(events[0].target, "vm-1");
  // The flagged minute is the injected one.
  EXPECT_EQ(events[0].time, T("2024-01-01 00:00") + Duration::Minutes(700));
}

TEST(StatisticalExtractorTest, DSpotDetectorFlagsDips) {
  StatisticalExtractor::Options options;
  options.q = 1e-4;
  options.detector = StatisticalExtractor::Detector::kDSpot;
  auto extractor =
      StatisticalExtractor::Calibrate(SeasonalSeries(3), options).value();
  // A day whose minute 500 collapses toward zero (Case 7's broken
  // collector): the bidirectional detector must flag the dip.
  MetricSeries day = SeasonalSeries(1, -1, 0.0, 55);
  day.points[500].value = 0.0;
  auto events = extractor.ExtractAll(day);
  bool dip_found = false;
  for (const RawEvent& ev : events) {
    if (ev.attrs.count("direction") > 0 &&
        ev.attrs.at("direction") == "dip") {
      dip_found = true;
    }
  }
  EXPECT_TRUE(dip_found);
}

TEST(StatisticalExtractorTest, SpotDetectorIsBlindToDips) {
  StatisticalExtractor::Options options;
  options.q = 1e-4;
  options.detector = StatisticalExtractor::Detector::kSpot;
  auto extractor =
      StatisticalExtractor::Calibrate(SeasonalSeries(3), options).value();
  MetricSeries day = SeasonalSeries(1, -1, 0.0, 55);
  day.points[500].value = 0.0;
  for (const RawEvent& ev : extractor.ExtractAll(day)) {
    EXPECT_NE(ev.attrs.at("direction"), "dip");
  }
}

TEST(StatisticalExtractorTest, RobustStlOptionAccepted) {
  StatisticalExtractor::Options options;
  options.robust_stl = true;
  EXPECT_TRUE(
      StatisticalExtractor::Calibrate(SeasonalSeries(3), options).ok());
}

TEST(FailurePredictorTest, Validation) {
  EXPECT_TRUE(FailurePredictor::Create(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(FailurePredictor::Create(1.0).status().IsInvalidArgument());
}

TEST(FailurePredictorTest, HealthyHostScoresLow) {
  auto predictor = FailurePredictor::Create().value();
  EXPECT_LT(predictor.Score({}), 0.05);
  EXPECT_FALSE(
      predictor.Predict("nc-1", T("2024-01-01 00:00"), {}).has_value());
}

TEST(FailurePredictorTest, DegradedHostTriggersPrediction) {
  auto predictor = FailurePredictor::Create().value();
  FailurePredictor::Features sick;
  sick.corrected_memory_errors = 1.0;
  sick.disk_reallocated_sectors = 1.0;
  sick.nic_error_rate = 0.8;
  EXPECT_GT(predictor.Score(sick), 0.9);
  auto ev = predictor.Predict("nc-1", T("2024-01-01 00:00"), sick);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "nc_down_prediction");
  EXPECT_EQ(ev->target, "nc-1");
  EXPECT_EQ(ev->level, Severity::kCritical);
}

TEST(FailurePredictorTest, ScoreIsMonotoneInEachFeature) {
  auto predictor = FailurePredictor::Create().value();
  FailurePredictor::Features f;
  double prev = predictor.Score(f);
  for (double level = 0.2; level <= 1.0; level += 0.2) {
    f.corrected_memory_errors = level;
    const double s = predictor.Score(f);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace cdibot
