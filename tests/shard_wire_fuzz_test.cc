// Fuzz-style decoder corpus for the shard wire protocol: every prefix
// truncation and every single-byte corruption of every frame kind, at both
// layers. At the wire layer a mangled frame must come out of the
// FrameAssembler as a clean NotFound/DataLoss, never as a silently wrong
// payload; at the message layer a mangled frame fed to ShardService::Handle
// must come back as a decodable status response — the worker's serve loop
// never dies on bad input, and ASan/UBSan provide the memory-safety teeth.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "shard/message.h"
#include "shard/service.h"
#include "shard/socket_transport.h"
#include "shard_equivalence_harness.h"

namespace cdibot {
namespace {

using shard::EncodeWireFrame;
using shard::FrameAssembler;

const Interval kDay{TimePoint::FromMillis(0), TimePoint::FromMillis(86400000)};

VmServiceInfo FuzzVm(const std::string& id) {
  VmServiceInfo vm;
  vm.vm_id = id;
  vm.dims = {{"region", "r1"}, {"tier", "gold"}};
  vm.service_period = kDay;
  return vm;
}

RawEvent FuzzEvent(const std::string& name, const std::string& target,
                   int64_t at_ms) {
  RawEvent ev;
  ev.name = name;
  ev.time = TimePoint::FromMillis(at_ms);
  ev.target = target;
  ev.expire_interval = Duration::Minutes(10);
  ev.attrs = {{"duration_ms", "1500"}};
  return ev;
}

/// A named frame in the corpus.
struct CorpusFrame {
  std::string name;
  std::string bytes;
};

/// Builds one of every request frame kind (plus payload variants), using a
/// live service to mint a real checkpoint for kInstallVms/kRestore.
class WireFuzzTest : public ::testing::Test {
 protected:
  WireFuzzTest()
      : weights_(testutil::BuildCanonicalWeights()),
        service_(0, &catalog_, &weights_, {}) {
    ReinitService();
    // Mint a realistic checkpoint: a VM and some events, then kCheckpoint.
    Apply(shard::EncodeRegisterVm(2, FuzzVm("vm-fuzz")));
    Apply(shard::EncodeIngestBatch(
        3, {FuzzEvent("slow_io", "vm-fuzz", 3600000),
            FuzzEvent("packet_loss", "vm-fuzz", 7200000)}));
    const std::string ckpt_resp = service_.Handle(shard::EncodeCheckpointRequest(4));
    auto hdr = shard::DecodeResponseHeader(ckpt_resp);
    EXPECT_TRUE(hdr.ok() && hdr->status.ok());
    ckpt_ = shard::DecodeCheckpoint(hdr->reader);
    EXPECT_TRUE(hdr->reader.ok());
    snapshot_resp_ = service_.Handle(shard::EncodeGather(5, -1));
    hello_resp_ = service_.Handle(shard::EncodeHello(6));
    ping_resp_ = service_.Handle(shard::EncodePing(7));
    obs_resp_ = service_.Handle(shard::EncodeObsPull(8, /*include_spans=*/true));
    ckpt_resp_ = ckpt_resp;
  }

  void ReinitService() {
    const std::string resp = service_.Handle(shard::EncodeInit(
        1, kDay, Duration::Minutes(5), /*engine_shards=*/4, std::nullopt));
    auto hdr = shard::DecodeResponseHeader(resp);
    ASSERT_TRUE(hdr.ok() && hdr->status.ok()) << "init failed";
  }

  void Apply(const std::string& frame) {
    auto hdr = shard::DecodeResponseHeader(service_.Handle(frame));
    ASSERT_TRUE(hdr.ok() && hdr->status.ok());
  }

  std::vector<CorpusFrame> RequestCorpus() const {
    shard::WeightSpec spec = testutil::CanonicalWeightSpec();
    return {
        {"ping", shard::EncodePing(1001)},
        {"register_vm", shard::EncodeRegisterVm(1002, FuzzVm("vm-a"))},
        {"ingest_batch",
         shard::EncodeIngestBatch(
             1003, {FuzzEvent("slow_io", "vm-a", 1000),
                    FuzzEvent("vm_start_failed", "vm-b", 2000)})},
        {"ingest_empty", shard::EncodeIngestBatch(1004, {})},
        {"gather_settled", shard::EncodeGather(1005, -1)},
        {"gather_budget", shard::EncodeGather(1006, 250)},
        {"extract_bounded",
         shard::EncodeExtractRange(1007, "vm-a", std::optional<std::string>("vm-m"))},
        {"extract_open", shard::EncodeExtractRange(1008, "vm-a", std::nullopt)},
        {"install_vms", shard::EncodeInstallVms(1009, ckpt_)},
        {"expect_delivery", shard::EncodeExpectDelivery(1010, "vm-a", 3)},
        {"record_shed", shard::EncodeRecordShed(1011, "vm-a", 2)},
        {"advance_watermark",
         shard::EncodeAdvanceWatermark(1012, TimePoint::FromMillis(43200000))},
        {"checkpoint", shard::EncodeCheckpointRequest(1013)},
        {"restore", shard::EncodeRestore(1014, ckpt_)},
        {"hello", shard::EncodeHello(1015)},
        {"init_no_weights",
         shard::EncodeInit(1016, kDay, Duration::Minutes(5), 4, std::nullopt)},
        {"init_with_weights",
         shard::EncodeInit(1017, kDay, Duration::Minutes(5), 4, spec)},
        {"obs_pull_spans", shard::EncodeObsPull(1018, /*include_spans=*/true)},
        {"obs_pull_metrics",
         shard::EncodeObsPull(1019, /*include_spans=*/false)},
    };
  }

  std::vector<CorpusFrame> ResponseCorpus() const {
    return {
        {"status_ok", shard::EncodeStatusResponse(
                          2001, shard::MessageKind::kRegisterVm, Status::OK())},
        {"status_err",
         shard::EncodeStatusResponse(2002, shard::MessageKind::kIngestBatch,
                                     Status::InvalidArgument("fuzz"))},
        {"ping_resp", ping_resp_},
        {"gather_resp", snapshot_resp_},
        {"checkpoint_resp", ckpt_resp_},
        {"hello_resp", hello_resp_},
        {"obs_snapshot_resp", obs_resp_},
    };
  }

  /// Feeds a mangled frame to the service: must never crash, must always
  /// answer with a frame that decodes as a response. Returns its status.
  Status HandleMangled(const std::string& frame) {
    const std::string resp = service_.Handle(frame);
    auto hdr = shard::DecodeResponseHeader(resp);
    EXPECT_TRUE(hdr.ok()) << "service response must always decode: "
                          << hdr.status().ToString();
    if (!hdr.ok()) return hdr.status();
    // A corrupted kInit/kRestore can legitimately drop or replace the
    // engine; restore a known-good one so later iterations still exercise
    // the payload decoders instead of the engine-null guard.
    if (!service_.engine_ready()) ReinitService();
    return hdr->status;
  }

  EventCatalog catalog_ = EventCatalog::BuiltIn();
  EventWeightModel weights_;
  shard::ShardService service_;
  StreamCheckpoint ckpt_;
  std::string snapshot_resp_;
  std::string hello_resp_;
  std::string ping_resp_;
  std::string obs_resp_;
  std::string ckpt_resp_;
};

// --- Message layer: ShardService::Handle ------------------------------------

TEST_F(WireFuzzTest, EveryRequestPrefixTruncationAnswersCleanError) {
  for (const CorpusFrame& f : RequestCorpus()) {
    for (size_t len = 0; len < f.bytes.size(); ++len) {
      const Status st = HandleMangled(f.bytes.substr(0, len));
      // A proper prefix always cuts a field some decoder reads, so the
      // answer is an error — DataLoss from the poisoned reader or
      // InvalidArgument from header validation — never silent success.
      EXPECT_FALSE(st.ok()) << f.name << " truncated to " << len;
      EXPECT_TRUE(st.IsDataLoss() || st.IsInvalidArgument())
          << f.name << " truncated to " << len << ": " << st.ToString();
    }
  }
}

TEST_F(WireFuzzTest, EveryRequestSingleByteCorruptionNeverCrashes) {
  const uint8_t kPatterns[] = {0x01, 0x80, 0xff};
  for (const CorpusFrame& f : RequestCorpus()) {
    for (size_t i = 0; i < f.bytes.size(); ++i) {
      for (const uint8_t pattern : kPatterns) {
        std::string mangled = f.bytes;
        mangled[i] = static_cast<char>(mangled[i] ^ pattern);
        // A flipped byte may decode to a different-but-valid message (the
        // CRC trailer catches it at the wire layer); what the message layer
        // owes us is a clean status response, never a crash or a hang —
        // HandleMangled asserts the response itself always decodes.
        (void)HandleMangled(mangled);
      }
    }
  }
}

TEST_F(WireFuzzTest, EveryResponsePrefixTruncationDecodesAsError) {
  for (const CorpusFrame& f : ResponseCorpus()) {
    for (size_t len = 0; len < f.bytes.size(); ++len) {
      const std::string prefix = f.bytes.substr(0, len);
      auto hdr = shard::DecodeResponseHeader(prefix);
      if (!hdr.ok()) continue;  // clean header reject
      // Header decoded: the truncation hit the payload, so the payload
      // decoder must poison the reader rather than fabricate values.
      bool payload_ok = true;
      switch (hdr->kind) {
        case shard::MessageKind::kGather:
          (void)shard::DecodeSnapshot(hdr->reader);
          payload_ok = hdr->reader.ok();
          break;
        case shard::MessageKind::kCheckpoint:
          (void)shard::DecodeCheckpoint(hdr->reader);
          payload_ok = hdr->reader.ok();
          break;
        case shard::MessageKind::kHello:
          (void)shard::DecodeHelloInfo(hdr->reader);
          payload_ok = hdr->reader.ok();
          break;
        case shard::MessageKind::kObsSnapshot:
          (void)shard::DecodeWorkerObs(hdr->reader);
          payload_ok = hdr->reader.ok();
          break;
        default:
          // Status/ping payloads are consumed by the header or ad hoc
          // reads; a truncated reader stays bounds-checked either way.
          payload_ok = !hdr->status.ok();
          break;
      }
      EXPECT_FALSE(payload_ok && hdr->status.ok())
          << f.name << " truncated to " << len << " decoded silently";
    }
  }
}

TEST_F(WireFuzzTest, EveryResponseSingleByteCorruptionNeverCrashes) {
  const uint8_t kPatterns[] = {0x01, 0x80, 0xff};
  for (const CorpusFrame& f : ResponseCorpus()) {
    for (size_t i = 0; i < f.bytes.size(); ++i) {
      for (const uint8_t pattern : kPatterns) {
        std::string mangled = f.bytes;
        mangled[i] = static_cast<char>(mangled[i] ^ pattern);
        auto hdr = shard::DecodeResponseHeader(mangled);
        if (!hdr.ok()) continue;
        switch (hdr->kind) {
          case shard::MessageKind::kGather:
            (void)shard::DecodeSnapshot(hdr->reader);
            break;
          case shard::MessageKind::kCheckpoint:
            (void)shard::DecodeCheckpoint(hdr->reader);
            break;
          case shard::MessageKind::kHello:
            (void)shard::DecodeHelloInfo(hdr->reader);
            break;
          case shard::MessageKind::kObsSnapshot:
            (void)shard::DecodeWorkerObs(hdr->reader);
            break;
          default:
            break;
        }
        // Bounds-checked readers: no assertion beyond "did not crash";
        // ASan/UBSan turn any overread into a test failure.
      }
    }
  }
}

// --- Wire layer: FrameAssembler ---------------------------------------------

TEST_F(WireFuzzTest, EveryWirePrefixTruncationStaysIncomplete) {
  std::vector<CorpusFrame> corpus = RequestCorpus();
  for (CorpusFrame& f : ResponseCorpus()) corpus.push_back(std::move(f));
  for (const CorpusFrame& f : corpus) {
    const std::string wire = EncodeWireFrame(f.bytes);
    for (size_t len = 0; len < wire.size(); ++len) {
      FrameAssembler asm_;
      asm_.Feed(std::string_view(wire).substr(0, len));
      auto next = asm_.Next();
      ASSERT_FALSE(next.ok()) << f.name << " wire prefix " << len;
      EXPECT_TRUE(next.status().IsNotFound())
          << f.name << " wire prefix " << len << ": "
          << next.status().ToString();
      EXPECT_EQ(asm_.mid_frame(), len > 0) << f.name << " wire prefix " << len;
    }
  }
}

TEST_F(WireFuzzTest, EveryWireSingleByteCorruptionIsDetected) {
  const uint8_t kPatterns[] = {0x01, 0x80, 0xff};
  std::vector<CorpusFrame> corpus = RequestCorpus();
  for (CorpusFrame& f : ResponseCorpus()) corpus.push_back(std::move(f));
  for (const CorpusFrame& f : corpus) {
    const std::string wire = EncodeWireFrame(f.bytes);
    for (size_t i = 0; i < wire.size(); ++i) {
      for (const uint8_t pattern : kPatterns) {
        std::string mangled = wire;
        mangled[i] = static_cast<char>(mangled[i] ^ pattern);
        FrameAssembler asm_;
        asm_.Feed(mangled);
        // A corrupted length prefix reads as an incomplete or oversize
        // frame; a corrupted payload or trailer byte is a CRC mismatch.
        // Either way the assembler must never hand back a payload as if
        // the frame were intact.
        auto next = asm_.Next();
        EXPECT_FALSE(next.ok())
            << f.name << " byte " << i << " ^ " << int(pattern)
            << " yielded a frame";
        EXPECT_TRUE(next.status().IsNotFound() || next.status().IsDataLoss())
            << f.name << " byte " << i << ": " << next.status().ToString();
      }
    }
  }
}

}  // namespace
}  // namespace cdibot
