#include <gtest/gtest.h>

#include "ops/actions.h"

namespace cdibot {
namespace {

TEST(ActionsTest, NameRoundTrip) {
  for (ActionType t : {ActionType::kLiveMigration, ActionType::kInPlaceReboot,
                       ActionType::kColdMigration, ActionType::kDiskClean,
                       ActionType::kMemoryCompaction, ActionType::kProcessRepair,
                       ActionType::kDeviceDisable, ActionType::kRepairRequest,
                       ActionType::kFpgaSoftRepair, ActionType::kNcReboot,
                       ActionType::kNcLock, ActionType::kNcDecommission,
                       ActionType::kNullAction}) {
    auto parsed = ActionTypeFromString(ActionTypeToString(t));
    ASSERT_TRUE(parsed.ok()) << ActionTypeToString(t);
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_TRUE(ActionTypeFromString("nonsense").status().IsNotFound());
}

TEST(ActionsTest, TableIiiCategories) {
  EXPECT_EQ(CategoryOf(ActionType::kLiveMigration),
            ActionCategory::kVmOperation);
  EXPECT_EQ(CategoryOf(ActionType::kColdMigration),
            ActionCategory::kVmOperation);
  EXPECT_EQ(CategoryOf(ActionType::kDiskClean),
            ActionCategory::kNcSoftwareRepair);
  EXPECT_EQ(CategoryOf(ActionType::kMemoryCompaction),
            ActionCategory::kNcSoftwareRepair);
  EXPECT_EQ(CategoryOf(ActionType::kRepairRequest),
            ActionCategory::kNcHardwareRepair);
  EXPECT_EQ(CategoryOf(ActionType::kFpgaSoftRepair),
            ActionCategory::kNcHardwareRepair);
  EXPECT_EQ(CategoryOf(ActionType::kNcLock), ActionCategory::kNcControl);
  EXPECT_EQ(CategoryOf(ActionType::kNcDecommission),
            ActionCategory::kNcControl);
  EXPECT_EQ(CategoryOf(ActionType::kNullAction), ActionCategory::kNone);
}

TEST(ActionsTest, DisruptivenessFlags) {
  EXPECT_TRUE(IsVmDisruptive(ActionType::kLiveMigration));
  EXPECT_TRUE(IsVmDisruptive(ActionType::kInPlaceReboot));
  EXPECT_TRUE(IsVmDisruptive(ActionType::kColdMigration));
  EXPECT_FALSE(IsVmDisruptive(ActionType::kRepairRequest));
  EXPECT_FALSE(IsVmDisruptive(ActionType::kNcLock));
  EXPECT_TRUE(IsNcDisruptive(ActionType::kNcReboot));
  EXPECT_TRUE(IsNcDisruptive(ActionType::kNcDecommission));
  EXPECT_FALSE(IsNcDisruptive(ActionType::kNcLock));
}

}  // namespace
}  // namespace cdibot
