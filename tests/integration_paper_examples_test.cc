// Exact reproduction of the paper's worked examples (Examples 2-4 and
// Table IV) through the real pipeline: raw events -> period resolution ->
// weights -> Algorithm 1 -> Eq. 4.
#include <gtest/gtest.h>

#include "cdi/aggregate.h"
#include "cdi/indicator.h"
#include "cdi/vm_cdi.h"
#include "event/period_resolver.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

// Table IV re-built from first principles with the paper's weights.
TEST(PaperExamplesTest, Table4AllRows) {
  // VM 1: 60 min service, two 2-min packet_loss events w = 0.3.
  const Interval s1(T("2024-01-01 10:00"), T("2024-01-01 11:00"));
  const std::vector<WeightedEvent> vm1 = {
      {.period = Interval(T("2024-01-01 10:08"), T("2024-01-01 10:10")),
       .weight = 0.3},
      {.period = Interval(T("2024-01-01 10:10"), T("2024-01-01 10:12")),
       .weight = 0.3},
  };
  const double q1 = ComputeCdi(vm1, s1).value();
  EXPECT_DOUBLE_EQ(q1, 0.020);

  // VM 2: 1440 min service, one 5-min vcpu_high w = 0.6.
  const Interval s2(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  const std::vector<WeightedEvent> vm2 = {
      {.period = Interval(T("2024-01-01 13:25"), T("2024-01-01 13:30")),
       .weight = 0.6},
  };
  const double q2 = ComputeCdi(vm2, s2).value();
  EXPECT_DOUBLE_EQ(q2, 3.0 / 1440.0);

  // VM 3: 1000 min service; slow_io (0.5) x2 overlapped by vcpu_high (0.6).
  const Interval s3(T("2024-01-01 08:00"),
                    T("2024-01-01 08:00") + Duration::Minutes(1000));
  const std::vector<WeightedEvent> vm3 = {
      {.period = Interval(T("2024-01-01 08:08"), T("2024-01-01 08:10")),
       .weight = 0.5},
      {.period = Interval(T("2024-01-01 08:10"), T("2024-01-01 08:12")),
       .weight = 0.5},
      {.period = Interval(T("2024-01-01 08:10"), T("2024-01-01 08:15")),
       .weight = 0.6},
  };
  const double q3 = ComputeCdi(vm3, s3).value();
  EXPECT_DOUBLE_EQ(q3, 0.004);

  // "All" row via Eq. 4.
  CdiAccumulator all;
  all.Add(Duration::Minutes(60), q1);
  all.Add(Duration::Minutes(1440), q2);
  all.Add(Duration::Minutes(1000), q3);
  EXPECT_NEAR(all.Value(), 0.003, 3e-4);
}

// Example 2 driven through the resolver, then Algorithm 1 on the result.
TEST(PaperExamplesTest, Example2ThenAlgorithm1) {
  EventCatalog catalog = EventCatalog::BuiltIn();
  PeriodResolver resolver(&catalog);
  auto mk = [](const char* name, const char* time) {
    RawEvent ev;
    ev.name = name;
    ev.time = TimePoint::Parse(time).value();
    ev.target = "vm-x";
    ev.level = Severity::kFatal;
    ev.expire_interval = Duration::Hours(24);
    return ev;
  };
  auto resolved = resolver.Resolve({
      mk("slow_io", "2024-01-01 09:01"),            // e1, 1-minute window
      mk("ddos_blackhole_add", "2024-01-01 10:00"),  // t2
      mk("ddos_blackhole_add", "2024-01-01 10:20"),  // t3, dropped
      mk("ddos_blackhole_del", "2024-01-01 11:00"),  // t4
      mk("ddos_blackhole_del", "2024-01-01 11:30"),  // t5, dropped
  });
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 2u);

  // Unavailability weight is 1; slow_io is performance so it does not enter
  // CDI-U. The blackhole lasted 60 of 1440 minutes.
  auto ticket = TicketRankModel::FromCounts({{"slow_io", 1}}, 4);
  auto model = EventWeightModel::Build(std::move(ticket).value(), {}).value();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  auto cdi = ComputeVmCdi(*resolved, model, day);
  ASSERT_TRUE(cdi.ok());
  EXPECT_NEAR(cdi->unavailability, 60.0 / 1440.0, 1e-12);
  EXPECT_GT(cdi->performance, 0.0);
}

// Example 3 through the weight model (w = 0.625) feeding Algorithm 1.
TEST(PaperExamplesTest, Example3WeightDrivesCdi) {
  // 100 events with distinct counts; pick the one above 43% of them.
  std::map<std::string, int64_t> counts;
  for (int i = 0; i < 100; ++i) {
    counts["ev" + std::to_string(1000 + i)] = i;
  }
  auto model =
      EventWeightModel::Build(
          TicketRankModel::FromCounts(counts, 4).value(), {})
          .value();
  const double w = model
                       .WeightFor("ev1043", Severity::kCritical,
                                  StabilityCategory::kPerformance)
                       .value();
  EXPECT_DOUBLE_EQ(w, 0.625);

  // A 10-minute event with this weight in a 100-minute service period.
  const Interval service(T("2024-01-01 00:00"),
                         T("2024-01-01 00:00") + Duration::Minutes(100));
  ResolvedEvent ev{.name = "ev1043",
                   .target = "vm",
                   .period = Interval(T("2024-01-01 00:10"),
                                      T("2024-01-01 00:20")),
                   .level = Severity::kCritical,
                   .category = StabilityCategory::kPerformance};
  auto cdi = ComputeVmCdi({ev}, model, service);
  ASSERT_TRUE(cdi.ok());
  EXPECT_DOUBLE_EQ(cdi->performance, 0.0625);
}

}  // namespace
}  // namespace cdibot
