#include "common/interner.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cdibot {
namespace {

TEST(StringInternerTest, InternAssignsDenseIdsFromZero) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(StringInternerTest, InternIsIdempotent) {
  StringInterner interner;
  const uint32_t id = interner.Intern("vm-1");
  EXPECT_EQ(interner.Intern("vm-1"), id);
  EXPECT_EQ(interner.Intern(std::string("vm-1")), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInternerTest, LookupFindsInternedAndRejectsUnknown) {
  StringInterner interner;
  const uint32_t id = interner.Intern("slow_io");
  EXPECT_EQ(interner.Lookup("slow_io"), id);
  EXPECT_EQ(interner.Lookup("never_interned"), StringInterner::kInvalidId);
  EXPECT_EQ(interner.Lookup(""), StringInterner::kInvalidId);
}

TEST(StringInternerTest, NameOfRoundTrips) {
  StringInterner interner;
  const uint32_t a = interner.Intern("a");
  const uint32_t empty = interner.Intern("");
  EXPECT_EQ(interner.NameOf(a), "a");
  EXPECT_EQ(interner.NameOf(empty), "");
  // Unknown / invalid ids degrade to "" instead of UB.
  EXPECT_EQ(interner.NameOf(12345), "");
  EXPECT_EQ(interner.NameOf(StringInterner::kInvalidId), "");
}

TEST(StringInternerTest, NameOfViewIsStableAcrossGrowth) {
  StringInterner interner;
  const uint32_t id = interner.Intern("pinned");
  const std::string_view before = interner.NameOf(id);
  const char* data = before.data();
  // Force many chunk allocations and snapshot republishes.
  for (int i = 0; i < 5000; ++i) {
    interner.Intern("filler_" + std::to_string(i));
  }
  const std::string_view after = interner.NameOf(id);
  EXPECT_EQ(after, "pinned");
  EXPECT_EQ(after.data(), data);  // storage never moved
}

TEST(StringInternerTest, LookupSeesStringsInternedSinceLastRepublish) {
  // The snapshot republish happens on a doubling schedule; strings interned
  // between republishes must still be found (via the locked fallback).
  StringInterner interner;
  for (int i = 0; i < 100; ++i) {
    const std::string s = "s" + std::to_string(i);
    const uint32_t id = interner.Intern(s);
    ASSERT_EQ(interner.Lookup(s), id) << s;
  }
}

TEST(StringInternerTest, ConcurrentInternAndLookupAgree) {
  StringInterner interner;
  constexpr int kThreads = 4;
  constexpr int kStringsPerThread = 500;
  // All threads intern overlapping sets concurrently; ids must be
  // consistent (same string -> same id everywhere) and dense.
  std::vector<std::vector<uint32_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&interner, &ids, t] {
      ids[t].reserve(kStringsPerThread);
      for (int i = 0; i < kStringsPerThread; ++i) {
        // Half shared across threads, half unique to this thread.
        const std::string s = i % 2 == 0
                                  ? "shared_" + std::to_string(i)
                                  : "t" + std::to_string(t) + "_" +
                                        std::to_string(i);
        const uint32_t id = interner.Intern(s);
        // Read back immediately through both lock-free paths.
        EXPECT_EQ(interner.NameOf(id), s);
        EXPECT_EQ(interner.Lookup(s), id);
        ids[t].push_back(id);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Same string interned by different threads got the same id.
  for (int i = 0; i < kStringsPerThread; i += 2) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][i], ids[0][i]);
    }
  }
  // Ids are dense: exactly size() distinct values in [0, size()).
  std::set<uint32_t> all;
  for (const auto& v : ids) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), interner.size());
  EXPECT_EQ(*all.rbegin(), interner.size() - 1);
}

TEST(StringInternerTest, GlobalInternerIsOneInstance) {
  StringInterner& a = GlobalInterner();
  StringInterner& b = GlobalInterner();
  EXPECT_EQ(&a, &b);
  const uint32_t id = a.Intern("global_interner_test_marker");
  EXPECT_EQ(b.Lookup("global_interner_test_marker"), id);
}

}  // namespace
}  // namespace cdibot
