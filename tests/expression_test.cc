#include <gtest/gtest.h>

#include "rules/expression.h"

namespace cdibot {
namespace {

bool Eval(const std::string& text, const std::set<std::string>& active) {
  auto expr = Expression::Parse(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
  return expr->Eval(active);
}

TEST(ExpressionTest, SingleEvent) {
  EXPECT_TRUE(Eval("slow_io", {"slow_io"}));
  EXPECT_FALSE(Eval("slow_io", {"packet_loss"}));
  EXPECT_FALSE(Eval("slow_io", {}));
}

// Example 1: nic_error_cause_slow_io matches when both events co-occur;
// nic_error_cause_vm_hang does not match without vm_hang.
TEST(ExpressionTest, PaperExample1Rules) {
  const std::set<std::string> active = {"slow_io", "nic_flapping"};
  EXPECT_TRUE(Eval("slow_io && nic_flapping", active));
  EXPECT_FALSE(Eval("nic_flapping && vm_hang", active));
}

TEST(ExpressionTest, OrAndNot) {
  EXPECT_TRUE(Eval("a || b", {"b"}));
  EXPECT_FALSE(Eval("a || b", {"c"}));
  EXPECT_TRUE(Eval("!a", {}));
  EXPECT_FALSE(Eval("!a", {"a"}));
  EXPECT_TRUE(Eval("!!a", {"a"}));
}

TEST(ExpressionTest, PrecedenceAndBeforeOr) {
  // a || b && c parses as a || (b && c).
  EXPECT_TRUE(Eval("a || b && c", {"a"}));
  EXPECT_FALSE(Eval("a || b && c", {"b"}));
  EXPECT_TRUE(Eval("a || b && c", {"b", "c"}));
}

TEST(ExpressionTest, ParenthesesOverridePrecedence) {
  EXPECT_FALSE(Eval("(a || b) && c", {"a"}));
  EXPECT_TRUE(Eval("(a || b) && c", {"a", "c"}));
}

TEST(ExpressionTest, WordOperators) {
  EXPECT_TRUE(Eval("a and b", {"a", "b"}));
  EXPECT_TRUE(Eval("a or b", {"b"}));
  EXPECT_TRUE(Eval("not a", {}));
  // Words are not stolen from identifiers containing them.
  EXPECT_TRUE(Eval("android", {"android"}));
  EXPECT_TRUE(Eval("not_a_keyword", {"not_a_keyword"}));
}

TEST(ExpressionTest, NotBindsTighterThanAnd) {
  EXPECT_TRUE(Eval("!a && b", {"b"}));
  EXPECT_FALSE(Eval("!a && b", {"a", "b"}));
  EXPECT_FALSE(Eval("!(a && b)", {"a", "b"}));
}

TEST(ExpressionTest, SyntaxErrors) {
  EXPECT_FALSE(Expression::Parse("").ok());
  EXPECT_FALSE(Expression::Parse("a &&").ok());
  EXPECT_FALSE(Expression::Parse("&& a").ok());
  EXPECT_FALSE(Expression::Parse("(a").ok());
  EXPECT_FALSE(Expression::Parse("a)").ok());
  EXPECT_FALSE(Expression::Parse("a & b").ok());
  EXPECT_FALSE(Expression::Parse("a | b").ok());
  EXPECT_FALSE(Expression::Parse("a b").ok());
  EXPECT_FALSE(Expression::Parse("123").ok());
}

TEST(ExpressionTest, ReferencedEventsSortedUnique) {
  auto expr = Expression::Parse("(slow_io && nic_flapping) || !slow_io");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->ReferencedEvents(),
            (std::vector<std::string>{"nic_flapping", "slow_io"}));
}

TEST(ExpressionTest, ToStringIsReparseable) {
  auto expr = Expression::Parse("a && (b || !c)");
  ASSERT_TRUE(expr.ok());
  auto round = Expression::Parse(expr->ToString());
  ASSERT_TRUE(round.ok());
  // Same truth table over the referenced events.
  for (int mask = 0; mask < 8; ++mask) {
    std::set<std::string> active;
    if (mask & 1) active.insert("a");
    if (mask & 2) active.insert("b");
    if (mask & 4) active.insert("c");
    EXPECT_EQ(expr->Eval(active), round->Eval(active)) << mask;
  }
}

TEST(ExpressionTest, CopySemantics) {
  auto expr = Expression::Parse("a && b").value();
  Expression copy = expr;
  EXPECT_TRUE(copy.Eval({"a", "b"}));
  EXPECT_FALSE(copy.Eval({"a"}));
  Expression assigned = Expression::Parse("x").value();
  assigned = expr;
  EXPECT_TRUE(assigned.Eval({"a", "b"}));
}

}  // namespace
}  // namespace cdibot
