#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/tests.h"

namespace cdibot::stats {
namespace {

Sample NormalSample(cdibot::Rng* rng, size_t n, double mean, double sd) {
  Sample x;
  x.reserve(n);
  for (size_t i = 0; i < n; ++i) x.push_back(rng->Normal(mean, sd));
  return x;
}

TEST(DAgostinoTest, AcceptsNormalData) {
  cdibot::Rng rng(7);
  int rejections = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto res = DAgostinoK2Test(NormalSample(&rng, 200, 10.0, 2.0));
    ASSERT_TRUE(res.ok());
    if (res->SignificantAt(0.05)) ++rejections;
  }
  // ~5% type-I rate: 20 trials should rarely exceed 4 rejections.
  EXPECT_LE(rejections, 4);
}

TEST(DAgostinoTest, RejectsHeavySkew) {
  cdibot::Rng rng(7);
  Sample x;
  for (int i = 0; i < 300; ++i) x.push_back(rng.Exponential(1.0));
  auto res = DAgostinoK2Test(x);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->p_value, 1e-6);
}

TEST(DAgostinoTest, MinimumSampleSize) {
  EXPECT_TRUE(DAgostinoK2Test({1, 2, 3, 4, 5, 6, 7}).status()
                  .IsInvalidArgument());
}

TEST(OneWayAnovaTest, TwoGroupFEqualsPooledTSquared) {
  const Sample a = {6.0, 8.0, 4.0, 5.0, 3.0, 4.0};
  const Sample b = {8.0, 12.0, 9.0, 11.0, 6.0, 8.0};
  auto anova = OneWayAnova({a, b});
  ASSERT_TRUE(anova.ok());
  // Independent pooled two-sample t, computed directly.
  const double ma = Mean(a).value(), mb = Mean(b).value();
  const double va = Variance(a).value(), vb = Variance(b).value();
  const double sp2 = ((a.size() - 1) * va + (b.size() - 1) * vb) /
                     (a.size() + b.size() - 2.0);
  const double t =
      (ma - mb) / std::sqrt(sp2 * (1.0 / a.size() + 1.0 / b.size()));
  EXPECT_NEAR(anova->statistic, t * t, 1e-10);
  EXPECT_DOUBLE_EQ(anova->df1, 1.0);
  EXPECT_DOUBLE_EQ(anova->df2, 10.0);
}

TEST(OneWayAnovaTest, IdenticalGroupsNotSignificant) {
  const Sample g = {1.0, 2.0, 3.0, 4.0};
  auto res = OneWayAnova({g, g, g});
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->statistic, 0.0, 1e-12);
  EXPECT_NEAR(res->p_value, 1.0, 1e-9);
}

TEST(OneWayAnovaTest, WellSeparatedGroupsSignificant) {
  cdibot::Rng rng(3);
  auto res = OneWayAnova({NormalSample(&rng, 30, 0.0, 1.0),
                          NormalSample(&rng, 30, 5.0, 1.0),
                          NormalSample(&rng, 30, 10.0, 1.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->p_value, 1e-10);
}

TEST(OneWayAnovaTest, ConstantGroupsEdgeCases) {
  // Internally constant but different means: infinitely significant.
  auto res = OneWayAnova({{1.0, 1.0}, {2.0, 2.0}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->p_value, 0.0);
  // All identical constants: no effect.
  res = OneWayAnova({{1.0, 1.0}, {1.0, 1.0}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->p_value, 1.0);
}

TEST(OneWayAnovaTest, Validation) {
  EXPECT_TRUE(OneWayAnova({{1.0, 2.0}}).status().IsInvalidArgument());
  EXPECT_TRUE(OneWayAnova({{1.0, 2.0}, {1.0}}).status().IsInvalidArgument());
}

TEST(WelchAnovaTest, AgreesWithClassicUnderHomoscedasticity) {
  cdibot::Rng rng(11);
  std::vector<Sample> groups = {NormalSample(&rng, 50, 0.0, 1.0),
                                NormalSample(&rng, 50, 0.5, 1.0),
                                NormalSample(&rng, 50, 1.0, 1.0)};
  auto classic = OneWayAnova(groups);
  auto welch = WelchAnova(groups);
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(welch.ok());
  EXPECT_NEAR(welch->statistic, classic->statistic,
              0.15 * classic->statistic);
  EXPECT_EQ(welch->df1, classic->df1);
}

TEST(WelchAnovaTest, DetectsShiftWithUnequalVariances) {
  cdibot::Rng rng(5);
  auto res = WelchAnova({NormalSample(&rng, 40, 0.0, 0.5),
                         NormalSample(&rng, 25, 3.0, 4.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->p_value, 0.01);
}

TEST(WelchAnovaTest, RejectsZeroVarianceGroups) {
  EXPECT_TRUE(WelchAnova({{1.0, 1.0}, {2.0, 3.0}})
                  .status()
                  .IsFailedPrecondition());
}

TEST(LeveneTest, AcceptsEqualVariances) {
  cdibot::Rng rng(13);
  auto res = LeveneTest({NormalSample(&rng, 60, 0.0, 2.0),
                         NormalSample(&rng, 60, 5.0, 2.0),
                         NormalSample(&rng, 60, -3.0, 2.0)});
  ASSERT_TRUE(res.ok());
  // Means differ wildly but spreads match: Levene must not fire.
  EXPECT_GT(res->p_value, 0.05);
}

TEST(LeveneTest, RejectsUnequalVariances) {
  cdibot::Rng rng(13);
  auto res = LeveneTest({NormalSample(&rng, 60, 0.0, 0.5),
                         NormalSample(&rng, 60, 0.0, 5.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->p_value, 1e-6);
}

TEST(KruskalWallisTest, HandComputedExample) {
  // Groups {1,2,3} and {4,5,6}: H = 3.857, p = chi2_sf(3.857, 1) ~ 0.0495.
  auto res = KruskalWallisTest({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->statistic, 27.0 / 7.0, 1e-10);
  EXPECT_NEAR(res->p_value, 0.0495, 2e-3);
}

TEST(KruskalWallisTest, TieCorrectionRaisesH) {
  auto no_ties = KruskalWallisTest({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  auto with_ties = KruskalWallisTest({{1.0, 2.0, 2.0}, {4.0, 5.0, 5.0}});
  ASSERT_TRUE(no_ties.ok());
  ASSERT_TRUE(with_ties.ok());
  // The tie-corrected H for the tied data exceeds the uncorrected value it
  // would otherwise produce; both remain valid probabilities.
  EXPECT_GT(with_ties->statistic, 0.0);
  EXPECT_LE(with_ties->p_value, 1.0);
}

TEST(KruskalWallisTest, InsensitiveToMonotoneTransform) {
  // Rank test: applying exp() to every value changes nothing.
  const std::vector<Sample> raw = {{1.0, 2.0, 5.0}, {3.0, 4.0, 6.0}};
  std::vector<Sample> transformed = raw;
  for (auto& g : transformed) {
    for (auto& v : g) v = std::exp(v);
  }
  EXPECT_DOUBLE_EQ(KruskalWallisTest(raw)->statistic,
                   KruskalWallisTest(transformed)->statistic);
}

TEST(KruskalWallisTest, AllTiedFails) {
  EXPECT_TRUE(KruskalWallisTest({{1.0, 1.0}, {1.0, 1.0}})
                  .status()
                  .IsFailedPrecondition());
}

TEST(TestResultTest, SignificanceHelper) {
  TestResult r{.method = "x", .statistic = 1.0, .p_value = 0.03};
  EXPECT_TRUE(r.SignificantAt(0.05));
  EXPECT_FALSE(r.SignificantAt(0.01));
}

}  // namespace
}  // namespace cdibot::stats
