// Unit tests for the flow-control layer: BackpressureQueue admission /
// shedding / hysteresis / eviction ordering, CircuitBreaker state machine
// on a fake clock, and Watchdog stall detection on event time. The
// Concurrent* tests are additionally run under TSan by scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "flow/backpressure_queue.h"
#include "flow/circuit_breaker.h"
#include "flow/watchdog.h"

namespace cdibot::flow {
namespace {

RawEvent Ev(const std::string& name, int minute, Severity level,
            const std::string& target = "vm-1") {
  RawEvent ev;
  ev.name = name;
  ev.time = TimePoint::FromMillis(0) + Duration::Minutes(minute);
  ev.target = target;
  ev.level = level;
  ev.expire_interval = Duration::Hours(1);
  return ev;
}

// --- BackpressureQueue ------------------------------------------------------

TEST(BackpressureQueueTest, FifoUnderTheHighWatermark) {
  BackpressureQueue queue(FlowOptions{.capacity = 64});
  // Interleaved classes and severities: order out must equal order in as
  // long as no shedding happened (the bit-identical-downstream property).
  const FlowClass classes[] = {FlowClass::kPerformance,
                               FlowClass::kUnavailability,
                               FlowClass::kControlPlane};
  const Severity levels[] = {Severity::kInfo, Severity::kWarning,
                             Severity::kCritical, Severity::kFatal};
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(queue.TryPush(Ev("e" + std::to_string(i), i, levels[i % 4]),
                            classes[i % 3]),
              AdmitResult::kAdmitted);
  }
  for (int i = 0; i < 24; ++i) {
    RawEvent out;
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out.name, "e" + std::to_string(i)) << "position " << i;
  }
  const ShedStats stats = queue.stats();
  EXPECT_EQ(stats.pushed, 24u);
  EXPECT_EQ(stats.admitted, 24u);
  EXPECT_EQ(stats.popped, 24u);
  EXPECT_EQ(stats.shed_total, 0u);
  EXPECT_FALSE(queue.shedding());
}

TEST(BackpressureQueueTest, ShedsSheddableClassesAboveHighWatermark) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 8, .high_watermark = 6, .low_watermark = 2});
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(queue.TryPush(Ev("fill", i, Severity::kCritical),
                            FlowClass::kPerformance),
              AdmitResult::kAdmitted);
  }
  EXPECT_TRUE(queue.shedding());
  // Sheddable classes are rejected at admission...
  EXPECT_EQ(queue.TryPush(Ev("p", 10, Severity::kFatal),
                          FlowClass::kPerformance),
            AdmitResult::kShed);
  EXPECT_EQ(queue.TryPush(Ev("c", 11, Severity::kInfo),
                          FlowClass::kControlPlane),
            AdmitResult::kShed);
  // ...unavailability is not.
  EXPECT_EQ(queue.TryPush(Ev("down", 12, Severity::kFatal),
                          FlowClass::kUnavailability),
            AdmitResult::kAdmitted);
  const ShedStats stats = queue.stats();
  EXPECT_EQ(stats.shed_total, 2u);
  EXPECT_EQ(stats.shed_by_class[static_cast<int>(FlowClass::kPerformance)],
            1u);
  EXPECT_EQ(stats.shed_by_class[static_cast<int>(FlowClass::kControlPlane)],
            1u);
  EXPECT_EQ(stats.shed_by_class[static_cast<int>(FlowClass::kUnavailability)],
            0u);
  EXPECT_EQ(stats.shed_by_level[static_cast<int>(Severity::kFatal) - 1], 1u);
  EXPECT_EQ(stats.shed_by_level[static_cast<int>(Severity::kInfo) - 1], 1u);
  EXPECT_EQ(stats.shed_mode_entries, 1u);
}

TEST(BackpressureQueueTest, HysteresisHoldsUntilLowWatermark) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 8, .high_watermark = 6, .low_watermark = 2});
  for (int i = 0; i < 6; ++i) {
    queue.TryPush(Ev("fill", i, Severity::kCritical),
                  FlowClass::kPerformance);
  }
  ASSERT_TRUE(queue.shedding());
  RawEvent out;
  // Draining to just above the low watermark keeps shedding engaged (no
  // oscillation around the trip point)...
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_TRUE(queue.TryPop(&out));  // depth 3 > low 2
  EXPECT_TRUE(queue.shedding());
  EXPECT_EQ(queue.TryPush(Ev("still", 20, Severity::kCritical),
                          FlowClass::kPerformance),
            AdmitResult::kShed);
  // ...and reaching it re-opens admission.
  ASSERT_TRUE(queue.TryPop(&out));  // depth 2 == low
  EXPECT_FALSE(queue.shedding());
  EXPECT_EQ(queue.TryPush(Ev("again", 21, Severity::kCritical),
                          FlowClass::kPerformance),
            AdmitResult::kAdmitted);
  EXPECT_EQ(queue.stats().shed_mode_entries, 1u);
}

TEST(BackpressureQueueTest, UnavailabilityEvictsSheddableAtHardCapacity) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 4, .high_watermark = 4, .low_watermark = 1});
  // Fill to capacity with a mix; the control-plane info event occupies the
  // highest (first-shed) band.
  queue.TryPush(Ev("p1", 0, Severity::kFatal), FlowClass::kPerformance);
  queue.TryPush(Ev("u1", 1, Severity::kFatal), FlowClass::kUnavailability);
  queue.TryPush(Ev("c1", 2, Severity::kInfo), FlowClass::kControlPlane);
  queue.TryPush(Ev("p2", 3, Severity::kInfo), FlowClass::kPerformance);
  ASSERT_EQ(queue.depth(), 4u);

  std::vector<std::string> shed_names;
  queue.set_shed_callback([&](const RawEvent& ev, FlowClass) {
    shed_names.push_back(ev.name);
  });
  EXPECT_EQ(queue.TryPush(Ev("u2", 4, Severity::kFatal),
                          FlowClass::kUnavailability),
            AdmitResult::kAdmitted);
  EXPECT_EQ(queue.depth(), 4u);  // bounded: someone was displaced
  // The victim is the control-plane item, the lowest-value class present.
  ASSERT_EQ(shed_names.size(), 1u);
  EXPECT_EQ(shed_names[0], "c1");
  const ShedStats stats = queue.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.shed_total, 1u);
  EXPECT_EQ(stats.shed_by_class[static_cast<int>(FlowClass::kUnavailability)],
            0u);
  // Survivors drain in original arrival order (minus the victim).
  std::vector<std::string> out_names;
  RawEvent out;
  while (queue.TryPop(&out)) out_names.push_back(out.name);
  EXPECT_EQ(out_names,
            (std::vector<std::string>{"p1", "u1", "p2", "u2"}));
}

TEST(BackpressureQueueTest, QueueFullOfUnavailabilityRejectsOnlyMoreU) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 3, .high_watermark = 3, .low_watermark = 1});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.TryPush(Ev("u", i, Severity::kFatal),
                            FlowClass::kUnavailability),
              AdmitResult::kAdmitted);
  }
  // Nothing evictable: a further unavailability arrival is the one case
  // that pushes real backpressure onto the producer...
  EXPECT_EQ(queue.TryPush(Ev("u3", 3, Severity::kFatal),
                          FlowClass::kUnavailability),
            AdmitResult::kQueueFull);
  EXPECT_EQ(queue.stats().full_rejections, 1u);
  // ...while sheddable arrivals are simply shed.
  EXPECT_EQ(queue.TryPush(Ev("p", 4, Severity::kCritical),
                          FlowClass::kPerformance),
            AdmitResult::kShed);
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(BackpressureQueueTest, BlockingPushWaitsForSpaceAndBlockingPopForData) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 2, .high_watermark = 2, .low_watermark = 1});
  ASSERT_TRUE(queue.Push(Ev("u0", 0, Severity::kFatal),
                         FlowClass::kUnavailability));
  ASSERT_TRUE(queue.Push(Ev("u1", 1, Severity::kFatal),
                         FlowClass::kUnavailability));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    // Full of unavailability: this must block until the consumer pops.
    EXPECT_TRUE(queue.Push(Ev("u2", 2, Severity::kFatal),
                           FlowClass::kUnavailability));
    pushed.store(true);
  });
  RawEvent out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.name, "u0");
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.name, "u1");
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.name, "u2");
}

TEST(BackpressureQueueTest, CloseDrainsThenSignalsConsumers) {
  BackpressureQueue queue(FlowOptions{.capacity = 8});
  queue.TryPush(Ev("a", 0, Severity::kCritical), FlowClass::kPerformance);
  queue.TryPush(Ev("b", 1, Severity::kCritical), FlowClass::kPerformance);
  queue.Close();
  EXPECT_EQ(queue.TryPush(Ev("late", 2, Severity::kFatal),
                          FlowClass::kUnavailability),
            AdmitResult::kQueueFull);
  RawEvent out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(BackpressureQueueTest, DefaultWatermarksDeriveFromCapacity) {
  BackpressureQueue queue(FlowOptions{.capacity = 64});
  EXPECT_EQ(queue.options().high_watermark, 56u);  // 7/8 of capacity
  EXPECT_EQ(queue.options().low_watermark, 32u);   // half of capacity
}

// --- Concurrency (run under TSan via scripts/check.sh) ----------------------

TEST(BackpressureQueueConcurrentTest, ProducersAndConsumersAccountForAll) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 128, .high_watermark = 96, .low_watermark = 32});
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<uint64_t> popped{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const FlowClass klass = i % 10 == 0 ? FlowClass::kUnavailability
                                : i % 3 == 0 ? FlowClass::kControlPlane
                                             : FlowClass::kPerformance;
        const Severity level =
            static_cast<Severity>(1 + (i % kNumSeverityLevels));
        if (klass == FlowClass::kUnavailability) {
          // U producers apply real backpressure and never lose events.
          EXPECT_TRUE(queue.Push(Ev("u", i, Severity::kFatal,
                                    "vm-" + std::to_string(p)),
                                 klass));
        } else {
          queue.TryPush(Ev("s", i, level, "vm-" + std::to_string(p)), klass);
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      RawEvent out;
      while (queue.Pop(&out)) popped.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  const ShedStats stats = queue.stats();
  // A blocked unavailability Push retries its admission, so attempts can
  // exceed the logical event count but never undershoot it.
  EXPECT_GE(stats.pushed, static_cast<uint64_t>(kProducers * kPerProducer));
  // Every attempt is accounted exactly once: admitted, shed at admission,
  // or rejected-full; evictions shed an already-admitted item.
  EXPECT_EQ(stats.admitted + (stats.shed_total - stats.evictions) +
                stats.full_rejections,
            stats.pushed);
  EXPECT_EQ(stats.popped, popped.load());
  EXPECT_EQ(stats.admitted - stats.evictions, stats.popped);
  // The invariant of the whole design: no unavailability event was shed.
  EXPECT_EQ(stats.shed_by_class[static_cast<int>(FlowClass::kUnavailability)],
            0u);
  EXPECT_LE(stats.peak_depth, 128u);
}

TEST(BackpressureQueueConcurrentTest, WatermarkHysteresisUnderContention) {
  BackpressureQueue queue(
      FlowOptions{.capacity = 64, .high_watermark = 48, .low_watermark = 16});
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    // Reads the shedding flag continuously while it flips — a pure data
    // race detector target.
    while (!stop.load()) {
      (void)queue.shedding();
      (void)queue.depth();
      (void)queue.stats();
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < 20000; ++i) {
      queue.TryPush(Ev("p", i, Severity::kCritical), FlowClass::kPerformance);
    }
  });
  std::thread consumer([&] {
    RawEvent out;
    for (int i = 0; i < 20000; ++i) {
      if (!queue.TryPop(&out)) std::this_thread::yield();
    }
  });
  producer.join();
  consumer.join();
  stop.store(true);
  flipper.join();
  const ShedStats stats = queue.stats();
  EXPECT_EQ(stats.pushed, 20000u);
  EXPECT_LE(stats.peak_depth, 64u);
}

// --- CircuitBreaker ---------------------------------------------------------

struct FakeClock {
  int64_t now_ms = 0;
  std::function<int64_t()> fn() {
    return [this] { return now_ms; };
  }
};

CircuitBreakerOptions BreakerOpts(FakeClock* clock, int threshold = 3) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = threshold;
  opts.cooldown = Duration::Millis(1000);
  opts.cooldown_jitter = 0.5;
  opts.half_open_probes = 1;
  opts.jitter_seed = 42;
  opts.clock = clock->fn();
  return opts;
}

TEST(CircuitBreakerTest, DisabledBreakerIsPassThrough) {
  CircuitBreaker breaker("disabled");  // default threshold 0
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureCount) {
  FakeClock clock;
  CircuitBreaker breaker("reset", BreakerOpts(&clock));
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();  // third consecutive
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
}

TEST(CircuitBreakerTest, OpenRejectsUntilJitteredCooldownElapses) {
  FakeClock clock;
  CircuitBreaker breaker("cooldown", BreakerOpts(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // The jitter only extends: rejected strictly before the base cooldown...
  clock.now_ms = 999;
  EXPECT_FALSE(breaker.Allow());
  EXPECT_GE(breaker.stats().rejected, 1u);
  // ...and must probe by cooldown * (1 + jitter) at the latest.
  clock.now_ms = 1500;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stats().probes, 1u);
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses) {
  FakeClock clock;
  CircuitBreaker breaker("probe_ok", BreakerOpts(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.now_ms = 1500;
  ASSERT_TRUE(breaker.Allow());
  // Only half_open_probes trial calls fit; the next caller is rejected.
  EXPECT_FALSE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  FakeClock clock;
  CircuitBreaker breaker("probe_fail", BreakerOpts(&clock));
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.now_ms = 1500;
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);
  // The new cooldown starts from the failed probe.
  clock.now_ms = 1600;
  EXPECT_FALSE(breaker.Allow());
  clock.now_ms = 1500 + 1500;
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, ClosingCanRequireMultipleProbeSuccesses) {
  FakeClock clock;
  CircuitBreakerOptions opts = BreakerOpts(&clock);
  opts.half_open_probes = 2;
  CircuitBreaker breaker("two_probes", opts);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.now_ms = 1500;
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // one is not enough
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, JitteredCooldownIsDeterministicPerSeed) {
  // Two breakers with the same seed trip at the same time and admit their
  // first probe at exactly the same fake-clock instant.
  for (int trial = 0; trial < 2; ++trial) {
    FakeClock clock;
    CircuitBreaker breaker("det" + std::to_string(trial),
                           BreakerOpts(&clock));
    for (int i = 0; i < 3; ++i) breaker.RecordFailure();
    int64_t first_allowed = -1;
    for (int64_t t = 1000; t <= 1500; t += 10) {
      clock.now_ms = t;
      if (breaker.Allow()) {
        first_allowed = t;
        break;
      }
    }
    ASSERT_GE(first_allowed, 1000);
    static int64_t expected = -1;
    if (expected < 0) {
      expected = first_allowed;
    } else {
      EXPECT_EQ(first_allowed, expected);
    }
  }
}

// --- Watchdog ---------------------------------------------------------------

TEST(WatchdogTest, UnarmedWatchdogNeverStalls) {
  Watchdog dog("idle", WatchdogOptions{.stall_timeout = Duration::Minutes(5)});
  EXPECT_FALSE(dog.Poll(TimePoint::FromMillis(0) + Duration::Days(10)));
  EXPECT_EQ(dog.stats().stalls, 0u);
}

TEST(WatchdogTest, StallEpisodeIsCountedOnce) {
  const TimePoint t0 = TimePoint::FromMillis(0);
  Watchdog dog("pump", WatchdogOptions{.stall_timeout = Duration::Minutes(5)});
  dog.Heartbeat(t0);
  EXPECT_FALSE(dog.Poll(t0 + Duration::Minutes(5)));  // exactly at timeout
  EXPECT_TRUE(dog.Poll(t0 + Duration::Minutes(6)));
  EXPECT_TRUE(dog.Poll(t0 + Duration::Minutes(7)));  // same episode
  EXPECT_EQ(dog.stats().stalls, 1u);
}

TEST(WatchdogTest, HeartbeatEndsTheEpisodeAndReArms) {
  const TimePoint t0 = TimePoint::FromMillis(0);
  Watchdog dog("pump", WatchdogOptions{.stall_timeout = Duration::Minutes(5)});
  dog.Heartbeat(t0);
  ASSERT_TRUE(dog.Poll(t0 + Duration::Minutes(10)));
  dog.Heartbeat(t0 + Duration::Minutes(10));
  EXPECT_FALSE(dog.Poll(t0 + Duration::Minutes(11)));
  EXPECT_TRUE(dog.Poll(t0 + Duration::Minutes(16)));  // a NEW episode
  EXPECT_EQ(dog.stats().stalls, 2u);
}

TEST(WatchdogTest, NoteRecoveryDisarmsUntilTheNextHeartbeat) {
  const TimePoint t0 = TimePoint::FromMillis(0);
  Watchdog dog("pump", WatchdogOptions{.stall_timeout = Duration::Minutes(5)});
  dog.Heartbeat(t0);
  ASSERT_TRUE(dog.Poll(t0 + Duration::Minutes(10)));
  dog.NoteRecovery();
  EXPECT_EQ(dog.stats().recoveries, 1u);
  // Recovered and not yet heartbeating: silence alone is no longer a stall.
  EXPECT_FALSE(dog.Poll(t0 + Duration::Days(1)));
  dog.Heartbeat(t0 + Duration::Days(1));
  EXPECT_TRUE(dog.Poll(t0 + Duration::Days(1) + Duration::Minutes(6)));
  EXPECT_EQ(dog.stats().stalls, 2u);
}

TEST(WatchdogTest, HeartbeatTimeNeverMovesBackwards) {
  const TimePoint t0 = TimePoint::FromMillis(0);
  Watchdog dog("pump", WatchdogOptions{.stall_timeout = Duration::Minutes(5)});
  dog.Heartbeat(t0 + Duration::Minutes(10));
  dog.Heartbeat(t0);  // out-of-order heartbeat must not rewind the clock
  EXPECT_EQ(dog.last_heartbeat(), t0 + Duration::Minutes(10));
}

// --- FlowClass mapping ------------------------------------------------------

TEST(FlowClassTest, CategoryMappingMirrorsTheCdiOrdering) {
  EXPECT_EQ(FlowClassForCategory(StabilityCategory::kUnavailability),
            FlowClass::kUnavailability);
  EXPECT_EQ(FlowClassForCategory(StabilityCategory::kPerformance),
            FlowClass::kPerformance);
  EXPECT_EQ(FlowClassForCategory(StabilityCategory::kControlPlane),
            FlowClass::kControlPlane);
  EXPECT_EQ(FlowClassToString(FlowClass::kUnavailability), "unavailability");
  EXPECT_EQ(FlowClassToString(FlowClass::kPerformance), "performance");
  EXPECT_EQ(FlowClassToString(FlowClass::kControlPlane), "control_plane");
}

}  // namespace
}  // namespace cdibot::flow
