// Unit tests for the socket transport stack underneath the shard fleet:
// wire framing (length prefix + CRC32 trailer) under arbitrary byte splits,
// SocketTransport error vocabulary (Aborted deadlines, Unavailable clean
// EOF, DataLoss torn/corrupted frames), close-while-blocked-in-Recv drain
// semantics for both the in-process channel and the socket, the worker-side
// exactly-once session tracking in ShardService, session resumption across
// reconnects in ShardServer, and the ProcessHost supervising a real child
// process the kernel can SIGKILL.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/host.h"
#include "shard/message.h"
#include "shard/service.h"
#include "shard/socket_transport.h"
#include "shard_equivalence_harness.h"

// Baked in by tests/CMakeLists.txt; points at the built shard_worker.
#ifndef SHARD_WORKER_BIN
#define SHARD_WORKER_BIN ""
#endif

namespace cdibot {
namespace {

using shard::EncodeWireFrame;
using shard::FrameAssembler;
using shard::SocketListener;
using shard::SocketTransport;
using shard::Transport;

std::string TempSocketPath(const std::string& tag) {
  return "/tmp/cdibot-sock-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

/// A connected Unix-domain transport pair (client end, server end).
struct SocketPair {
  std::unique_ptr<SocketTransport> client;
  std::unique_ptr<SocketTransport> server;
};

SocketPair MakeUnixPair(const std::string& tag) {
  auto listener_or = SocketListener::BindUnix(TempSocketPath(tag));
  EXPECT_TRUE(listener_or.ok()) << listener_or.status().ToString();
  SocketListener listener = std::move(listener_or).value();
  auto client_or =
      shard::ConnectUnix(listener.path(), Deadline::After(Duration::Seconds(5)));
  EXPECT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto server_or = listener.Accept(Deadline::After(Duration::Seconds(5)));
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  return {std::move(client_or).value(), std::move(server_or).value()};
}

// --- Wire framing -----------------------------------------------------------

TEST(FrameAssemblerTest, WholeFrameRoundTrips) {
  const std::string payload = "the payload \x00\x01\xff bytes";
  FrameAssembler asm_;
  asm_.Feed(EncodeWireFrame(payload));
  auto got = asm_.Next();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(asm_.Next().status().IsNotFound());
  EXPECT_FALSE(asm_.mid_frame());
}

TEST(FrameAssemblerTest, ReassemblesOneByteAtATime) {
  const std::string payload(1000, 'x');
  const std::string wire = EncodeWireFrame(payload);
  FrameAssembler asm_;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    asm_.Feed(std::string_view(wire).substr(i, 1));
    EXPECT_TRUE(asm_.Next().status().IsNotFound()) << "byte " << i;
    EXPECT_TRUE(asm_.mid_frame());
  }
  asm_.Feed(std::string_view(wire).substr(wire.size() - 1, 1));
  auto got = asm_.Next();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(asm_.mid_frame());
}

TEST(FrameAssemblerTest, SplitsAcrossMultipleFramesAnywhere) {
  const std::vector<std::string> payloads = {"first", "", std::string(500, 'z'),
                                             "last"};
  std::string wire;
  for (const std::string& p : payloads) wire += EncodeWireFrame(p);
  // Feed in awkward 7-byte chunks; pop frames as they complete.
  FrameAssembler asm_;
  std::vector<std::string> got;
  for (size_t off = 0; off < wire.size(); off += 7) {
    asm_.Feed(std::string_view(wire).substr(off, 7));
    for (;;) {
      auto next = asm_.Next();
      if (!next.ok()) {
        EXPECT_TRUE(next.status().IsNotFound());
        break;
      }
      got.push_back(std::move(next).value());
    }
  }
  EXPECT_EQ(got, payloads);
}

TEST(FrameAssemblerTest, CrcMismatchIsDataLossAndLatches) {
  std::string wire = EncodeWireFrame("payload to be corrupted");
  wire[shard::kWireHeaderBytes + 3] ^= 0x20;  // flip one payload bit
  FrameAssembler asm_;
  asm_.Feed(wire);
  EXPECT_TRUE(asm_.Next().status().IsDataLoss());
  // Framing is unrecoverable on a byte stream: the error latches even if a
  // pristine frame arrives afterwards.
  asm_.Feed(EncodeWireFrame("pristine"));
  EXPECT_TRUE(asm_.Next().status().IsDataLoss());
  EXPECT_FALSE(asm_.mid_frame());
}

TEST(FrameAssemblerTest, OversizeLengthPrefixIsDataLoss) {
  FrameAssembler asm_(/*max_frame_bytes=*/64);
  asm_.Feed(EncodeWireFrame(std::string(65, 'a')));
  EXPECT_TRUE(asm_.Next().status().IsDataLoss());
}

TEST(FrameAssemblerTest, TruncatedTailReportsMidFrame) {
  const std::string wire = EncodeWireFrame("torn");
  FrameAssembler asm_;
  asm_.Feed(std::string_view(wire).substr(0, wire.size() - 1));
  EXPECT_TRUE(asm_.Next().status().IsNotFound());
  // EOF here would mean the peer died mid-write.
  EXPECT_TRUE(asm_.mid_frame());
}

// --- SocketTransport --------------------------------------------------------

TEST(SocketTransportTest, UnixPairRoundTripsBothDirections) {
  SocketPair pair = MakeUnixPair("roundtrip");
  ASSERT_TRUE(pair.client->Send("ping from client").ok());
  auto at_server = pair.server->Recv(Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(at_server.ok()) << at_server.status().ToString();
  EXPECT_EQ(*at_server, "ping from client");

  ASSERT_TRUE(pair.server->Send("pong from server").ok());
  auto at_client = pair.client->Recv(Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(at_client.ok()) << at_client.status().ToString();
  EXPECT_EQ(*at_client, "pong from server");
}

TEST(SocketTransportTest, TcpPairRoundTrips) {
  auto listener_or = SocketListener::BindTcp(0);
  ASSERT_TRUE(listener_or.ok()) << listener_or.status().ToString();
  SocketListener listener = std::move(listener_or).value();
  ASSERT_GT(listener.port(), 0);
  auto client_or =
      shard::ConnectTcp(listener.port(), Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto server_or = listener.Accept(Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();

  const std::string big(200000, 'q');  // forces short writes / split reads
  ASSERT_TRUE((*client_or)->Send(big).ok());
  auto got = (*server_or)->Recv(Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, big);
}

TEST(SocketTransportTest, RecvDeadlineExpiryIsAbortedAndRecoverable) {
  SocketPair pair = MakeUnixPair("deadline");
  auto timed_out = pair.client->Recv(Deadline::After(Duration::Millis(30)));
  EXPECT_TRUE(timed_out.status().IsAborted()) << timed_out.status().ToString();
  // A deadline expiry is a straggler, not a dead connection: the transport
  // keeps working.
  ASSERT_TRUE(pair.server->Send("late answer").ok());
  auto got = pair.client->Recv(Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "late answer");
}

TEST(SocketTransportTest, CleanEofAfterLastFrameIsUnavailable) {
  SocketPair pair = MakeUnixPair("eof");
  ASSERT_TRUE(pair.server->Send("final frame").ok());
  pair.server->Close();
  auto got = pair.client->Recv(Deadline::After(Duration::Seconds(5)));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "final frame");
  EXPECT_TRUE(pair.client->Recv(Deadline::After(Duration::Seconds(5)))
                  .status()
                  .IsUnavailable());
}

TEST(SocketTransportTest, EofMidFrameIsDataLoss) {
  SocketPair pair = MakeUnixPair("torn");
  const std::string wire = EncodeWireFrame("this frame will be torn");
  ASSERT_TRUE(
      pair.server->SendRaw(std::string_view(wire).substr(0, wire.size() - 3))
          .ok());
  pair.server->Close();
  EXPECT_TRUE(pair.client->Recv(Deadline::After(Duration::Seconds(5)))
                  .status()
                  .IsDataLoss());
}

TEST(SocketTransportTest, CorruptedFrameIsDataLoss) {
  SocketPair pair = MakeUnixPair("corrupt");
  std::string wire = EncodeWireFrame("bit flip incoming");
  wire[shard::kWireHeaderBytes + 5] ^= 0x01;
  ASSERT_TRUE(pair.server->SendRaw(wire).ok());
  EXPECT_TRUE(pair.client->Recv(Deadline::After(Duration::Seconds(5)))
                  .status()
                  .IsDataLoss());
  // The latch holds: later frames on this connection are not trusted.
  ASSERT_FALSE(pair.client->Recv(Deadline::After(Duration::Millis(50))).ok());
}

TEST(SocketTransportTest, SendAfterCloseFailsUnavailable) {
  SocketPair pair = MakeUnixPair("sendclosed");
  pair.client->Close();
  EXPECT_TRUE(pair.client->closed());
  EXPECT_TRUE(pair.client->Send("into the void").IsUnavailable());
}

// --- Close-while-blocked-in-Recv (satellite: drain-then-Unavailable) --------

TEST(TransportCloseTest, InProcessLocalCloseWakesBlockedRecvConcurrent) {
  shard::TransportPair pair = shard::MakeInProcessPair(16);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.coordinator_end->Close();
  });
  // Blocks with an infinite deadline until Close() wakes it.
  EXPECT_TRUE(pair.coordinator_end->Recv().status().IsUnavailable());
  closer.join();
}

TEST(TransportCloseTest, InProcessCloseDrainsQueuedFramesFirstConcurrent) {
  constexpr int kFrames = 200;
  shard::TransportPair pair = shard::MakeInProcessPair(kFrames + 1);
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(pair.worker_end->Send("frame-" + std::to_string(i)).ok());
    }
    pair.worker_end->Close();
  });
  // The consumer races the producer's sends and the close: it must see
  // every frame sent before the close, then Unavailable — never a dropped
  // frame, never a premature wakeup.
  int received = 0;
  for (;;) {
    auto got = pair.coordinator_end->Recv();
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsUnavailable()) << got.status().ToString();
      break;
    }
    EXPECT_EQ(*got, "frame-" + std::to_string(received));
    ++received;
  }
  EXPECT_EQ(received, kFrames);
  producer.join();
}

TEST(TransportCloseTest, SocketLocalCloseWakesBlockedRecvConcurrent) {
  SocketPair pair = MakeUnixPair("wake");
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.client->Close();
  });
  EXPECT_TRUE(pair.client->Recv().status().IsUnavailable());
  closer.join();
}

TEST(TransportCloseTest, SocketPeerCloseDrainsQueuedFramesFirstConcurrent) {
  constexpr int kFrames = 200;
  SocketPair pair = MakeUnixPair("drain");
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(pair.server->Send("frame-" + std::to_string(i)).ok());
    }
    pair.server->Close();
  });
  int received = 0;
  for (;;) {
    auto got = pair.client->Recv(Deadline::After(Duration::Seconds(30)));
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsUnavailable()) << got.status().ToString();
      break;
    }
    EXPECT_EQ(*got, "frame-" + std::to_string(received));
    ++received;
  }
  EXPECT_EQ(received, kFrames);
  producer.join();
}

// --- ShardService session tracking (worker-side exactly-once) ---------------

class ShardServiceTest : public ::testing::Test {
 protected:
  ShardServiceTest()
      : weights_(testutil::BuildCanonicalWeights()),
        service_(0, &catalog_, &weights_, {}) {}

  Interval Day() const {
    return {TimePoint::FromMillis(0), TimePoint::FromMillis(86400000)};
  }

  VmServiceInfo Vm(const std::string& id) const {
    VmServiceInfo vm;
    vm.vm_id = id;
    vm.service_period = Day();
    return vm;
  }

  shard::ResponseFrame Respond(const std::string& frame) {
    response_bytes_ = service_.Handle(frame);
    auto hdr = shard::DecodeResponseHeader(response_bytes_);
    EXPECT_TRUE(hdr.ok()) << hdr.status().ToString();
    return std::move(hdr).value();
  }

  shard::HelloInfo Hello(uint64_t id) {
    auto hdr = Respond(shard::EncodeHello(id));
    EXPECT_TRUE(hdr.status.ok()) << hdr.status.ToString();
    return shard::DecodeHelloInfo(hdr.reader);
  }

  void Init(uint64_t id) {
    auto hdr = Respond(shard::EncodeInit(id, Day(), Duration::Minutes(5),
                                         /*engine_shards=*/4, std::nullopt));
    ASSERT_TRUE(hdr.status.ok()) << hdr.status.ToString();
  }

  EventCatalog catalog_ = EventCatalog::BuiltIn();
  EventWeightModel weights_;
  shard::ShardService service_;
  std::string response_bytes_;
};

TEST_F(ShardServiceTest, MutationsBeforeInitFailButHelloWorks) {
  shard::HelloInfo hello = Hello(1);
  EXPECT_FALSE(hello.engine_ready);
  EXPECT_EQ(hello.last_applied, 0u);
  auto hdr = Respond(shard::EncodeRegisterVm(2, Vm("vm-a")));
  EXPECT_TRUE(hdr.status.IsFailedPrecondition()) << hdr.status.ToString();
}

TEST_F(ShardServiceTest, ExactResendReturnsIdenticalCachedBytes) {
  Init(1);
  const std::string request = shard::EncodeRegisterVm(5, Vm("vm-a"));
  const std::string first = service_.Handle(request);
  auto hdr = shard::DecodeResponseHeader(first);
  ASSERT_TRUE(hdr.ok() && hdr->status.ok());
  // The chaos layer duplicates frames on purpose; the retry of an id whose
  // response the network swallowed must get the original bytes back.
  EXPECT_EQ(service_.Handle(request), first);
  shard::HelloInfo hello = Hello(6);
  EXPECT_TRUE(hello.engine_ready);
  EXPECT_EQ(hello.last_applied, 5u);
  EXPECT_EQ(hello.num_vms, 1u);
}

TEST_F(ShardServiceTest, HistoricalDuplicateDedupsToPlainOk) {
  Init(1);
  ASSERT_TRUE(Respond(shard::EncodeRegisterVm(5, Vm("vm-a"))).status.ok());
  ASSERT_TRUE(Respond(shard::EncodeRegisterVm(6, Vm("vm-b"))).status.ok());
  // id 5 is below last_applied and no longer cached: it already executed,
  // so the dedup answer is a plain OK — and the VM is NOT registered twice.
  auto hdr = Respond(shard::EncodeRegisterVm(5, Vm("vm-a")));
  EXPECT_TRUE(hdr.status.ok()) << hdr.status.ToString();
  EXPECT_EQ(hdr.request_id, 5u);
  shard::HelloInfo hello = Hello(7);
  EXPECT_EQ(hello.last_applied, 6u);
  EXPECT_EQ(hello.num_vms, 2u);
}

TEST_F(ShardServiceTest, InitResetsSessionTrackingSoReplayExecutes) {
  Init(1);
  ASSERT_TRUE(Respond(shard::EncodeRegisterVm(5, Vm("vm-a"))).status.ok());
  // A rebuild travels with a fresh large id; the outbox replay that follows
  // reuses the ORIGINAL small ids, which must execute, not dedup.
  Init(1000);
  shard::HelloInfo hello = Hello(1001);
  EXPECT_TRUE(hello.engine_ready);
  EXPECT_EQ(hello.last_applied, 0u);
  EXPECT_EQ(hello.num_vms, 0u);  // kInit rebuilt the engine from scratch
  ASSERT_TRUE(Respond(shard::EncodeRegisterVm(5, Vm("vm-a"))).status.ok());
  hello = Hello(1002);
  EXPECT_EQ(hello.last_applied, 5u);
  EXPECT_EQ(hello.num_vms, 1u);
}

TEST_F(ShardServiceTest, MalformedFrameAnswersWithStatusNotCrash) {
  Init(1);
  const std::string garbage = "\x01\x02\x03 not a frame";
  const std::string resp = service_.Handle(garbage);
  auto hdr = shard::DecodeResponseHeader(resp);
  ASSERT_TRUE(hdr.ok()) << hdr.status().ToString();
  EXPECT_FALSE(hdr->status.ok());
}

// --- ShardServer: session resumption across reconnects ----------------------

TEST(ShardServerTest, EngineSurvivesReconnectSessionResumes) {
  EventCatalog catalog = EventCatalog::BuiltIn();
  EventWeightModel weights = testutil::BuildCanonicalWeights();
  shard::ShardService service(0, &catalog, &weights, {});
  auto listener_or = SocketListener::BindUnix(TempSocketPath("resume"));
  ASSERT_TRUE(listener_or.ok()) << listener_or.status().ToString();
  const std::string path = listener_or->path();
  shard::ShardServer server(&service, std::move(listener_or).value());
  server.Start();

  const Interval day{TimePoint::FromMillis(0), TimePoint::FromMillis(86400000)};
  const Deadline forever = Deadline::After(Duration::Seconds(30));
  std::string resp_bytes;  // keeps the frame alive for the returned reader
  auto call = [&](Transport& t, const std::string& frame) {
    shard::ResponseFrame failed;
    failed.status = Status::Unavailable("call failed");
    EXPECT_TRUE(t.Send(frame).ok());
    auto resp = t.Recv(forever);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp.ok()) return failed;
    resp_bytes = std::move(resp).value();
    auto hdr = shard::DecodeResponseHeader(resp_bytes);
    EXPECT_TRUE(hdr.ok()) << hdr.status().ToString();
    if (!hdr.ok()) return failed;
    return std::move(hdr).value();
  };

  {
    auto conn = shard::ConnectUnix(path, forever);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    ASSERT_TRUE(
        call(**conn, shard::EncodeInit(1, day, Duration::Minutes(5), 4,
                                       std::nullopt))
            .status.ok());
    VmServiceInfo vm;
    vm.vm_id = "vm-a";
    vm.service_period = day;
    ASSERT_TRUE(call(**conn, shard::EncodeRegisterVm(7, vm)).status.ok());
    (*conn)->Close();
  }
  // Reconnect: the engine (and the session-tracking state) lived in the
  // service, not the connection — hello reports both intact.
  {
    auto conn = shard::ConnectUnix(path, forever);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    auto hdr = call(**conn, shard::EncodeHello(8));
    ASSERT_TRUE(hdr.status.ok()) << hdr.status.ToString();
    shard::HelloInfo hello = shard::DecodeHelloInfo(hdr.reader);
    EXPECT_TRUE(hello.engine_ready);
    EXPECT_EQ(hello.last_applied, 7u);
    EXPECT_EQ(hello.num_vms, 1u);
  }
  server.Stop();
}

// --- ProcessHost: a real child process, really killed -----------------------

/// Connect() is single-shot (a freshly spawned child may not have bound
/// yet); production wraps it in the session layer's retry policy, the test
/// in this little loop.
StatusOr<std::unique_ptr<Transport>> DialWithRetry(shard::ProcessHost& host) {
  StatusOr<std::unique_ptr<Transport>> conn =
      Status::Unavailable("never dialed");
  for (int i = 0; i < 200; ++i) {
    conn = host.Connect(Deadline::After(Duration::Seconds(1)));
    if (conn.ok()) return conn;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return conn;
}

TEST(ProcessHostTest, SpawnKill9ReapRespawn) {
  const std::string binary = SHARD_WORKER_BIN;
  ASSERT_FALSE(binary.empty()) << "SHARD_WORKER_BIN not baked in";
  shard::ProcessHost host(0, binary, TempSocketPath("prochost"), {}, nullptr);

  ASSERT_TRUE(host.Respawn().ok());
  EXPECT_TRUE(host.Alive());
  const Deadline forever = Deadline::After(Duration::Seconds(30));
  {
    auto conn = DialWithRetry(host);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    ASSERT_TRUE((*conn)->Send(shard::EncodeHello(1)).ok());
    auto resp = (*conn)->Recv(forever);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    auto hdr = shard::DecodeResponseHeader(*resp);
    ASSERT_TRUE(hdr.ok() && hdr->status.ok());
    EXPECT_FALSE(shard::DecodeHelloInfo(hdr->reader).engine_ready);
  }

  // External SIGKILL — the kernel, not us. Alive() must reap the zombie and
  // report dead.
  ASSERT_GT(host.pid(), 0);
  ASSERT_EQ(::kill(host.pid(), SIGKILL), 0);
  for (int i = 0; i < 200 && host.Alive(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(host.Alive());

  // Supervisor restart: a respawned worker answers hello as a fresh one.
  ASSERT_TRUE(host.Respawn().ok());
  EXPECT_TRUE(host.Alive());
  {
    auto conn = DialWithRetry(host);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    ASSERT_TRUE((*conn)->Send(shard::EncodeHello(2)).ok());
    auto resp = (*conn)->Recv(forever);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    auto hdr = shard::DecodeResponseHeader(*resp);
    ASSERT_TRUE(hdr.ok() && hdr->status.ok());
    EXPECT_FALSE(shard::DecodeHelloInfo(hdr->reader).engine_ready);
  }
  host.Kill();
  EXPECT_FALSE(host.Alive());
}

}  // namespace
}  // namespace cdibot
