// Observability layer tests: lock-free metric correctness under concurrent
// hammering (the TSan target in scripts/check.sh), histogram quantiles
// against a sorted reference, registry handle semantics, scoped-span
// recording/nesting, and structural validity of the Chrome-trace export.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/statusz.h"
#include "obs/trace.h"
#include "strict_json.h"

namespace cdibot {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator (objects/arrays/strings/numbers/bools/null). Good
// enough to prove the exporters emit well-formed JSON without a JSON
// library in the build.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Validate() {
    pos_ = 0;
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipSpace();
          if (!String()) return false;
          SkipSpace();
          if (pos_ >= text_.size() || text_[pos_] != ':') return false;
          ++pos_;
          if (!Value()) return false;
          SkipSpace();
          if (pos_ >= text_.size()) return false;
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          if (!Value()) return false;
          SkipSpace();
          if (pos_ >= text_.size()) return false;
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counters and gauges

TEST(ObsCounterTest, ConcurrentHammeringIsExact) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("obstest.hammer_counter");
  const uint64_t before = counter->Value();

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value() - before, kThreads * kPerThread);
}

TEST(ObsCounterTest, AddAccumulates) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("obstest.add_counter");
  const uint64_t before = counter->Value();
  counter->Add(7);
  counter->Add(35);
  EXPECT_EQ(counter->Value() - before, 42u);
}

TEST(ObsGaugeTest, SetAndAdd) {
  obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("obstest.gauge");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 1.5);
  gauge->Set(0.0);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogramTest, BucketLayoutInvariants) {
  // Every value maps into a bucket whose [lower, next-lower) range holds it,
  // and the relative bucket width stays within the 1/16 design error.
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1023ull,
                     1024ull, 65535ull, 1000000ull, (1ull << 40),
                     (1ull << 62) + 12345}) {
    const size_t idx = obs::Histogram::BucketIndex(v);
    ASSERT_LT(idx, obs::Histogram::kNumBuckets) << v;
    EXPECT_LE(obs::Histogram::BucketLowerBound(idx), v) << v;
    if (idx + 1 < obs::Histogram::kNumBuckets) {
      EXPECT_GT(obs::Histogram::BucketLowerBound(idx + 1), v) << v;
    }
  }
  // Lower bounds are strictly increasing (no bucket is empty-ranged).
  for (size_t i = 1; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_GT(obs::Histogram::BucketLowerBound(i),
              obs::Histogram::BucketLowerBound(i - 1))
        << i;
  }
}

TEST(ObsHistogramTest, QuantilesMatchSortedReference) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("obstest.quantile_hist");
  Rng rng(97);
  std::vector<uint64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread over ~6 decades, the shape of real latencies.
    const double log_v = rng.Uniform(0.0, 6.0);
    values.push_back(static_cast<uint64_t>(std::pow(10.0, log_v)));
  }
  for (uint64_t v : values) hist->Record(v);

  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double expected = static_cast<double>(
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))]);
    const double actual = hist->Quantile(q);
    // Bucket resolution is 1/16 (6.25%) relative; allow a little slack for
    // interpolation at the bucket edges.
    EXPECT_NEAR(actual, expected, expected * 0.08)
        << "q=" << q;
  }
  const auto snap = hist->Snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.min, values.front());
  EXPECT_EQ(snap.max, values.back());
}

TEST(ObsHistogramTest, MergeHistogramBucketsIsExact) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* a = reg.GetHistogram("obstest.merge_a");
  obs::Histogram* b = reg.GetHistogram("obstest.merge_b");
  obs::Histogram* all = reg.GetHistogram("obstest.merge_all");
  Rng rng(1234);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = static_cast<uint64_t>(
        std::pow(10.0, rng.Uniform(0.0, 7.0)));
    obs::Histogram* target = (i % 3 == 0) ? a : b;
    target->Record(v);
    all->Record(v);
  }

  obs::HistogramBuckets merged = a->SnapshotBuckets();
  obs::MergeHistogramBuckets(&merged, b->SnapshotBuckets());
  const obs::HistogramBuckets reference = all->SnapshotBuckets();

  // The merge is bucket-exact: the fleet view of two shards is bit-for-bit
  // the histogram a single process recording both streams would hold.
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.min, reference.min);
  EXPECT_EQ(merged.max, reference.max);
  ASSERT_EQ(merged.buckets.size(), reference.buckets.size());
  for (size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i], reference.buckets[i]) << "bucket " << i;
  }
  // And so are derived quantiles.
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(merged, q), all->Quantile(q))
        << "q=" << q;
  }
}

TEST(ObsHistogramTest, MergeIntoEmptyAdoptsMinMax) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* src = reg.GetHistogram("obstest.merge_src_only");
  src->Record(7);
  src->Record(9000);
  obs::HistogramBuckets into;  // empty: count 0, min 0
  into.name = "kept";
  obs::MergeHistogramBuckets(&into, src->SnapshotBuckets());
  EXPECT_EQ(into.name, "kept");
  EXPECT_EQ(into.count, 2u);
  EXPECT_EQ(into.min, 7u);  // not clamped to the empty side's 0
  EXPECT_EQ(into.max, 9000u);
}

TEST(ObsHistogramTest, ConcurrentRecordIsExact) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("obstest.hammer_hist");
  const uint64_t count_before = hist->Count();

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist->Record(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist->Count() - count_before, kThreads * kPerThread);
  EXPECT_EQ(hist->Snapshot().max, kThreads * kPerThread - 1);
}

// ---------------------------------------------------------------------------
// Registry

TEST(ObsRegistryTest, HandlesAreStableAcrossReset) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("obstest.reset_counter");
  c->Add(5);
  reg.Reset();
  // Same handle, zeroed value — cached function-local statics stay valid.
  EXPECT_EQ(c, reg.GetCounter("obstest.reset_counter"));
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

TEST(ObsRegistryTest, KindMismatchReturnsNull) {
  auto& reg = obs::MetricsRegistry::Global();
  ASSERT_NE(reg.GetCounter("obstest.kind_probe"), nullptr);
  EXPECT_EQ(reg.GetGauge("obstest.kind_probe"), nullptr);
  EXPECT_EQ(reg.GetHistogram("obstest.kind_probe"), nullptr);
}

TEST(ObsRegistryTest, SnapshotCarriesRegisteredMetrics) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obstest.snap_counter")->Add(3);
  reg.GetGauge("obstest.snap_gauge")->Set(1.25);
  reg.GetHistogram("obstest.snap_hist")->Record(10);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  auto find_counter = [&](const std::string& name) -> const obs::CounterSnapshot* {
    for (const auto& c : snap.counters) {
      if (c.name == name) return &c;
    }
    return nullptr;
  };
  ASSERT_NE(find_counter("obstest.snap_counter"), nullptr);
  EXPECT_GE(find_counter("obstest.snap_counter")->value, 3u);
}

// ---------------------------------------------------------------------------
// Tracer

class ObsTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().Enable();
  }
  void TearDown() override {
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
  }
};

TEST_F(ObsTracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer::Global().Disable();
  {
    TRACE_SPAN("obstest.invisible");
  }
  EXPECT_TRUE(obs::Tracer::Global().CollectSpans().empty());
}

TEST_F(ObsTracerTest, NestedSpansRecordDepthAndContainment) {
  {
    TRACE_SPAN("obstest.outer");
    {
      TRACE_SPAN("obstest.inner");
      {
        TRACE_SPAN("obstest.leaf");
      }
    }
    TRACE_SPAN("obstest.sibling");
  }
  const std::vector<obs::SpanRecord> spans =
      obs::Tracer::Global().CollectSpans();
  ASSERT_EQ(spans.size(), 4u);

  auto find = [&](const std::string& name) -> const obs::SpanRecord* {
    for (const auto& s : spans) {
      if (name == s.name) return &s;
    }
    return nullptr;
  };
  const auto* outer = find("obstest.outer");
  const auto* inner = find("obstest.inner");
  const auto* leaf = find("obstest.leaf");
  const auto* sibling = find("obstest.sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(leaf->depth, 2u);
  EXPECT_EQ(sibling->depth, 1u);

  // Containment: children start no earlier and end no later than parents.
  auto end = [](const obs::SpanRecord* s) { return s->start_ns + s->dur_ns; };
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(end(inner), end(outer));
  EXPECT_GE(leaf->start_ns, inner->start_ns);
  EXPECT_LE(end(leaf), end(inner));
}

TEST_F(ObsTracerTest, StatsAggregateByName) {
  for (int i = 0; i < 5; ++i) {
    TRACE_SPAN("obstest.repeated");
  }
  const auto stats = obs::Tracer::Global().StatsByName();
  const auto it = std::find_if(
      stats.begin(), stats.end(),
      [](const obs::SpanStat& s) { return s.name == "obstest.repeated"; });
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->count, 5u);
  EXPECT_GE(it->total_ns, it->max_ns);
}

TEST_F(ObsTracerTest, ChromeTraceJsonIsValidAndNested) {
  {
    TRACE_SPAN("obstest.trace_outer");
    TRACE_SPAN("obstest.trace_inner");
  }
  const std::string json = obs::Tracer::Global().ToChromeTraceJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Validate()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("obstest.trace_outer"), std::string::npos);
  EXPECT_NE(json.find("obstest.trace_inner"), std::string::npos);
  // Golden structural property: the exporter sorts by start time with
  // longer spans first on ties, so the outer span appears before the inner
  // one — Perfetto renders parent-above-child from exactly this order.
  EXPECT_LT(json.find("obstest.trace_outer"),
            json.find("obstest.trace_inner"));
}

TEST_F(ObsTracerTest, ConcurrentSpansLandInPerThreadBuffers) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TRACE_SPAN("obstest.mt_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto spans = obs::Tracer::Global().CollectSpans();
  size_t mt_spans = 0;
  for (const auto& s : spans) {
    if (std::string("obstest.mt_span") == s.name) ++mt_spans;
  }
  EXPECT_EQ(mt_spans, static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST_F(ObsTracerTest, BufferCapDropsAreCounted) {
  const uint64_t dropped_before = obs::Tracer::Global().dropped();
  for (size_t i = 0; i < obs::Tracer::kMaxSpansPerThread + 100; ++i) {
    TRACE_SPAN("obstest.flood");
  }
  EXPECT_GE(obs::Tracer::Global().dropped(), dropped_before + 100);
}

TEST_F(ObsTracerTest, SpanIdsLinkParentToChild) {
  // Isolate from any ambient context the test thread may carry.
  obs::ScopedTraceContext isolate(obs::TraceContext{});
  {
    TRACE_SPAN("obstest.id_outer");
    TRACE_SPAN("obstest.id_inner");
  }
  const auto spans = obs::Tracer::Global().CollectSpans();
  const obs::SpanRecord* outer = nullptr;
  const obs::SpanRecord* inner = nullptr;
  for (const auto& s : spans) {
    if (std::string("obstest.id_outer") == s.name) outer = &s;
    if (std::string("obstest.id_inner") == s.name) inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The outer span minted a fresh root trace; the inner one joined it.
  EXPECT_NE(outer->trace_id, 0u);
  EXPECT_EQ(outer->parent_span_id, 0u);
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);
  EXPECT_NE(inner->span_id, 0u);
}

TEST_F(ObsTracerTest, ScopedTraceContextAdoptsForeignIds) {
  // The worker side of an RPC: adopt the coordinator's ids, open a span,
  // and the span must claim that foreign trace as its own parent chain.
  const obs::TraceContext remote{obs::NewTraceId(), obs::NewTraceId()};
  {
    obs::ScopedTraceContext adopt(remote);
    EXPECT_EQ(obs::CurrentTraceContext().trace_id, remote.trace_id);
    TRACE_SPAN("obstest.adopted");
  }
  // Context restored after the scope.
  EXPECT_NE(obs::CurrentTraceContext().trace_id, remote.trace_id);
  const auto spans = obs::Tracer::Global().CollectSpans();
  const auto it = std::find_if(
      spans.begin(), spans.end(), [](const obs::SpanRecord& s) {
        return std::string("obstest.adopted") == s.name;
      });
  ASSERT_NE(it, spans.end());
  EXPECT_EQ(it->trace_id, remote.trace_id);
  EXPECT_EQ(it->parent_span_id, remote.span_id);
}

TEST_F(ObsTracerTest, RecordInstantTagsCurrentContext) {
  const obs::TraceContext ctx{obs::NewTraceId(), obs::NewTraceId()};
  {
    obs::ScopedTraceContext adopt(ctx);
    obs::RecordInstant("obstest.instant");
  }
  const auto spans = obs::Tracer::Global().CollectSpans();
  const auto it = std::find_if(
      spans.begin(), spans.end(), [](const obs::SpanRecord& s) {
        return std::string("obstest.instant") == s.name;
      });
  ASSERT_NE(it, spans.end());
  EXPECT_TRUE(it->instant);
  EXPECT_EQ(it->dur_ns, 0u);
  EXPECT_EQ(it->trace_id, ctx.trace_id);
  EXPECT_EQ(it->parent_span_id, ctx.span_id);
  EXPECT_NE(it->span_id, 0u);

  // Disabled tracing: RecordInstant is a no-op, not a buffered event.
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().Disable();
  obs::RecordInstant("obstest.instant_off");
  EXPECT_TRUE(obs::Tracer::Global().CollectSpans().empty());
}

TEST_F(ObsTracerTest, DrainSpansMovesOutAndResetsDropCount) {
  {
    TRACE_SPAN("obstest.drain_a");
    TRACE_SPAN("obstest.drain_b");
  }
  uint64_t dropped = 42;
  const auto first = obs::Tracer::Global().DrainSpans(&dropped);
  EXPECT_GE(first.size(), 2u);
  EXPECT_EQ(dropped, 0u);
  // Drained spans are gone: the next pull starts from an empty buffer.
  EXPECT_TRUE(obs::Tracer::Global().CollectSpans().empty());
  EXPECT_TRUE(obs::Tracer::Global().DrainSpans().empty());

  // Dropped counts ship with the drain that observes them, then reset.
  for (size_t i = 0; i < obs::Tracer::kMaxSpansPerThread + 50; ++i) {
    TRACE_SPAN("obstest.drain_flood");
  }
  (void)obs::Tracer::Global().DrainSpans(&dropped);
  EXPECT_GE(dropped, 50u);
  (void)obs::Tracer::Global().DrainSpans(&dropped);
  EXPECT_EQ(dropped, 0u);
}

// ---------------------------------------------------------------------------
// statusz

TEST(ObsStatuszTest, RendersSubsystemsAndValidJson) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("alpha.one")->Increment();
  reg.GetCounter("beta.two")->Increment();
  reg.GetHistogram("gamma.lat_ns")->Record(1500000);

  const obs::ObsSnapshot snap = obs::CaptureObsSnapshot();
  EXPECT_GE(obs::SubsystemCount(snap), 3u);

  const std::string text = obs::RenderStatuszText(snap);
  EXPECT_NE(text.find("[alpha]"), std::string::npos);
  EXPECT_NE(text.find("[beta]"), std::string::npos);
  EXPECT_NE(text.find("[gamma]"), std::string::npos);
  // "_ns" histograms are humanized to time units in the text renderer.
  EXPECT_NE(text.find("ms"), std::string::npos);

  const std::string json = obs::RenderStatuszJson(snap);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Validate()) << json;
  EXPECT_NE(json.find("\"alpha.one\""), std::string::npos);
}

TEST(ObsStatuszTest, JsonSurvivesStrictParsingWithNonFiniteGauges) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("strictjson.counter")->Add(11);
  reg.GetGauge("strictjson.gauge_nan")
      ->Set(std::numeric_limits<double>::quiet_NaN());
  reg.GetGauge("strictjson.gauge_inf")
      ->Set(std::numeric_limits<double>::infinity());
  reg.GetGauge("strictjson.gauge_neg_inf")
      ->Set(-std::numeric_limits<double>::infinity());
  reg.GetHistogram("strictjson.lat_ns")->Record(123456);

  const std::string json = obs::RenderStatuszJson(obs::CaptureObsSnapshot());
  testjson::JsonValue doc;
  std::string error;
  ASSERT_TRUE(testjson::ParseStrictJson(json, &doc, &error))
      << error << "\n" << json;

  // NaN/Inf gauges must render as null — a printf'd "nan"/"inf" token
  // would have failed the strict parse above, but pin the shape too.
  const testjson::JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_TRUE(gauges->is_object());
  for (const char* name : {"strictjson.gauge_nan", "strictjson.gauge_inf",
                           "strictjson.gauge_neg_inf"}) {
    const testjson::JsonValue* g = gauges->Find(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->kind, testjson::JsonValue::Kind::kNull) << name;
  }
  const testjson::JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  const testjson::JsonValue* c = counters->Find("strictjson.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_number());
  EXPECT_DOUBLE_EQ(c->number, 11.0);
  const testjson::JsonValue* hists = doc.Find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->Find("strictjson.lat_ns"), nullptr);

  reg.GetGauge("strictjson.gauge_nan")->Set(0.0);
  reg.GetGauge("strictjson.gauge_inf")->Set(0.0);
  reg.GetGauge("strictjson.gauge_neg_inf")->Set(0.0);
}

TEST(ObsStatuszTest, StrictParserRejectsClassicRendererBugs) {
  // The teeth of the strict parser itself: each of these is something a
  // lenient validator happily accepts and a JSON consumer chokes on.
  testjson::JsonValue v;
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":1,}", &v));    // trailing comma
  EXPECT_FALSE(testjson::ParseStrictJson("[1,2,]", &v));        // trailing comma
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":NaN}", &v));   // bare NaN
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":inf}", &v));   // bare inf
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":-}", &v));     // dangling sign
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":01}", &v));    // leading zero
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":1.}", &v));    // bare fraction
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":\"\\x\"}", &v));  // bad escape
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":\"\\u12g4\"}", &v));
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":\"\n\"}", &v));  // raw control
  EXPECT_FALSE(testjson::ParseStrictJson("{\"a\":1} x", &v));   // trailing junk
  EXPECT_FALSE(testjson::ParseStrictJson("{'a':1}", &v));       // single quotes
  EXPECT_FALSE(testjson::ParseStrictJson("", &v));
  // And the happy path still parses with values intact.
  ASSERT_TRUE(testjson::ParseStrictJson(
      " {\"k\": [1, -2.5e3, \"s\\u00e9\", true, null]} ", &v));
  const testjson::JsonValue* arr = v.Find("k");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 5u);
  EXPECT_DOUBLE_EQ(arr->array[1].number, -2500.0);
}

// ---------------------------------------------------------------------------
// Rate-limited logging helpers

TEST(ObsLoggingTest, LogEveryNFiresOnMultiples) {
  std::atomic<uint64_t> counter{0};
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal_logging::LogEveryN(counter, 4)) ++fired;
  }
  // Fires on occurrences 1, 5, 9.
  EXPECT_EQ(fired, 3);
}

TEST(ObsLoggingTest, LogFirstNFiresExactlyNTimes) {
  std::atomic<uint64_t> counter{0};
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal_logging::LogFirstN(counter, 3)) ++fired;
  }
  EXPECT_EQ(fired, 3);
}

TEST(ObsLoggingTest, MacrosCompileAndLimit) {
  // The macros wrap CDIBOT_LOG in a once-through for loop; this pins that
  // they expand to valid statements in branchy contexts.
  for (int i = 0; i < 5; ++i) {
    if (i % 2 == 0) CDIBOT_LOG_EVERY_N(Info, 100) << "every-n " << i;
    CDIBOT_LOG_FIRST_N(Info, 1) << "first-n " << i;
  }
  SUCCEED();
}

}  // namespace
}  // namespace cdibot
