// End-to-end test of the CloudBot workflow from Fig. 1 / Example 1:
// raw telemetry -> Event Extractor -> Rule Engine -> Operation Platform.
#include <gtest/gtest.h>

#include "extract/log_rules.h"
#include "extract/metric_rules.h"
#include "ops/operation_platform.h"
#include "rules/rule_engine.h"
#include "telemetry/log_stream.h"
#include "telemetry/metric_series.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(CloudBotIntegrationTest, Example1NicWorkflow) {
  // --- Data Collector: metrics, logs ---------------------------------------
  Rng rng(12);
  MetricSpec latency_spec;
  latency_spec.metric = "read_latency";
  latency_spec.target = "vm-7";
  latency_spec.start = T("2024-01-01 12:00");
  latency_spec.count = 30;
  latency_spec.base = 10.0;
  latency_spec.diurnal_amplitude = 0.0;
  latency_spec.noise_sigma = 0.5;
  // Latency spikes from minute 16 (12:16) onward: the NIC fault's effect.
  latency_spec.anomalies = {
      MetricAnomaly{.begin = 16, .end = 30, .offset = 55.0}};
  const MetricSeries latency =
      GenerateMetricSeries(latency_spec, &rng).value();

  std::vector<LogLine> logs =
      GenerateBenignLogs("vm-7", Interval(T("2024-01-01 12:00"),
                                          T("2024-01-01 12:30")),
                         20.0, &rng);
  AppendNicFlap("vm-7", T("2024-01-01 12:16:28"), &logs);

  // --- Event Extractor ------------------------------------------------------
  auto metric_extractor = MetricThresholdExtractor::BuiltIn();
  auto log_extractor = LogRuleExtractor::BuiltIn().value();
  std::vector<RawEvent> events = metric_extractor.Extract(latency);
  for (RawEvent& ev : log_extractor.ExtractAll(logs)) {
    events.push_back(std::move(ev));
  }
  // slow_io events (escalated to critical by the +55 offset) and exactly
  // one nic_flapping event; all benign lines discarded.
  size_t slow_io = 0, nic_flapping = 0, other = 0;
  for (const RawEvent& ev : events) {
    if (ev.name == "slow_io") {
      ++slow_io;
      EXPECT_EQ(ev.level, Severity::kCritical);
    } else if (ev.name == "nic_flapping") {
      ++nic_flapping;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(slow_io, 14u);
  EXPECT_EQ(nic_flapping, 1u);
  EXPECT_EQ(other, 0u);

  // --- Rule Engine -----------------------------------------------------------
  auto engine = RuleEngine::BuiltIn().value();
  auto matches = engine.MatchEvents(events, "vm-7", T("2024-01-01 12:17"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].rule_name, "nic_error_cause_slow_io");

  // --- Operation Platform ----------------------------------------------------
  OperationPlatform platform;
  auto requests = platform.RequestsFromMatch(matches[0], "nc-3");
  ASSERT_TRUE(requests.ok());
  auto records = platform.Submit(std::move(requests).value(),
                                 {{"vm-7", "nc-3"}});
  // All three of Example 1's actions execute: live migration of the VM,
  // repair ticket for the host, NC lock during the repair.
  ASSERT_EQ(records.size(), 3u);
  for (const ActionRecord& rec : records) {
    EXPECT_EQ(rec.outcome, ActionOutcome::kExecuted);
  }
  EXPECT_EQ(platform.ExecutedCount(ActionType::kLiveMigration), 1u);
  EXPECT_EQ(platform.ExecutedCount(ActionType::kRepairRequest), 1u);
  EXPECT_TRUE(platform.IsLocked("nc-3"));
}

TEST(CloudBotIntegrationTest, NoVmHangMeansNoSecondRule) {
  // The paper stresses nic_error_cause_vm_hang must NOT match on
  // nic_flapping alone.
  auto engine = RuleEngine::BuiltIn().value();
  RawEvent flap;
  flap.name = "nic_flapping";
  flap.time = T("2024-01-01 12:16:28");
  flap.target = "vm-7";
  flap.expire_interval = Duration::Hours(1);
  auto matches = engine.MatchEvents({flap}, "vm-7", T("2024-01-01 12:17"));
  EXPECT_TRUE(matches.empty());
}

}  // namespace
}  // namespace cdibot
