#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/posthoc.h"

namespace cdibot::stats {
namespace {

Sample NormalSample(cdibot::Rng* rng, size_t n, double mean, double sd) {
  Sample x;
  x.reserve(n);
  for (size_t i = 0; i < n; ++i) x.push_back(rng->Normal(mean, sd));
  return x;
}

TEST(TukeyHsdTest, SeparatedPairSignificantCloseNot) {
  cdibot::Rng rng(21);
  // a ~ b, c far away.
  auto res = TukeyHsd({NormalSample(&rng, 20, 0.0, 1.0),
                       NormalSample(&rng, 20, 0.2, 1.0),
                       NormalSample(&rng, 20, 5.0, 1.0)});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);  // 3 choose 2
  for (const PairwiseResult& pr : *res) {
    if (pr.group_b == 2) {
      EXPECT_LT(pr.p_value, 0.001) << pr.group_a << "-" << pr.group_b;
    } else {
      EXPECT_GT(pr.p_value, 0.05);
    }
    EXPECT_DOUBLE_EQ(pr.df, 57.0);  // N - k = 60 - 3
  }
}

TEST(TukeyHsdTest, RequiresEqualSizes) {
  EXPECT_TRUE(TukeyHsd({{1.0, 2.0, 3.0}, {1.0, 2.0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(TukeyKramerTest, HandlesUnequalSizes) {
  cdibot::Rng rng(22);
  auto res = TukeyKramer({NormalSample(&rng, 12, 0.0, 1.0),
                          NormalSample(&rng, 30, 4.0, 1.0)});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_LT(res->front().p_value, 0.001);
}

TEST(TukeyKramerTest, EqualSizesMatchesHsd) {
  cdibot::Rng rng(23);
  const std::vector<Sample> groups = {NormalSample(&rng, 15, 0.0, 1.0),
                                      NormalSample(&rng, 15, 1.0, 1.0),
                                      NormalSample(&rng, 15, 2.0, 1.0)};
  auto hsd = TukeyHsd(groups);
  auto kramer = TukeyKramer(groups);
  ASSERT_TRUE(hsd.ok());
  ASSERT_TRUE(kramer.ok());
  for (size_t i = 0; i < hsd->size(); ++i) {
    EXPECT_DOUBLE_EQ((*hsd)[i].statistic, (*kramer)[i].statistic);
    EXPECT_DOUBLE_EQ((*hsd)[i].p_value, (*kramer)[i].p_value);
  }
}

TEST(TukeyKramerTest, QStatisticFormula) {
  // Two groups of two: hand-check q = |diff| / sqrt(MSE/2 * (1/2 + 1/2)).
  auto res = TukeyKramer({{0.0, 2.0}, {10.0, 12.0}});
  ASSERT_TRUE(res.ok());
  // Group means 1 and 11; within-SS = 2 + 2 = 4 over df = 2 -> MSE = 2.
  const double expected_q = 10.0 / std::sqrt(2.0 / 2.0 * (0.5 + 0.5));
  EXPECT_NEAR(res->front().statistic, expected_q, 1e-12);
}

TEST(TukeyKramerTest, ZeroVarianceFails) {
  EXPECT_TRUE(TukeyKramer({{1.0, 1.0}, {2.0, 2.0}})
                  .status()
                  .IsFailedPrecondition());
}

TEST(GamesHowellTest, DetectsDifferenceUnderHeteroscedasticity) {
  cdibot::Rng rng(24);
  auto res = GamesHowell({NormalSample(&rng, 40, 0.0, 0.3),
                          NormalSample(&rng, 40, 2.0, 3.0),
                          NormalSample(&rng, 40, 0.1, 0.3)});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  // 0 vs 2 and 1 vs 2 involve the distant group-1 mean.
  for (const PairwiseResult& pr : *res) {
    if (pr.group_a == 0 && pr.group_b == 2) {
      EXPECT_GT(pr.p_value, 0.05);  // near-identical groups
    } else {
      EXPECT_LT(pr.p_value, 0.05);
    }
  }
}

TEST(GamesHowellTest, PerPairDfIsWelchSatterthwaite) {
  cdibot::Rng rng(25);
  auto res = GamesHowell({NormalSample(&rng, 10, 0.0, 1.0),
                          NormalSample(&rng, 40, 1.0, 5.0)});
  ASSERT_TRUE(res.ok());
  // df must be below the pooled N - k and above min(n_i) - 1.
  EXPECT_LT(res->front().df, 48.0);
  EXPECT_GT(res->front().df, 9.0);
}

TEST(GamesHowellTest, ZeroVarianceFails) {
  EXPECT_TRUE(GamesHowell({{1.0, 1.0}, {2.0, 3.0}})
                  .status()
                  .IsFailedPrecondition());
}

TEST(DunnTest, SeparatedGroupsSignificant) {
  // With n = 5 per group the rank test only has power for the extreme
  // pair: mean ranks 3, 8, 13 give z = 5/sqrt(8) ~ 1.77 for adjacent pairs
  // (p ~ 0.077) but z ~ 3.54 for the 0-2 pair.
  auto res = DunnTest({{1.0, 2.0, 3.0, 4.0, 5.0},
                       {11.0, 12.0, 13.0, 14.0, 15.0},
                       {21.0, 22.0, 23.0, 24.0, 25.0}},
                      /*bonferroni=*/false);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  for (const PairwiseResult& pr : *res) {
    EXPECT_GT(pr.statistic, 0.0);
    if (pr.group_a == 0 && pr.group_b == 2) {
      EXPECT_LT(pr.p_value, 0.001);
    } else {
      EXPECT_NEAR(pr.p_value, 0.0771, 1e-3);
    }
  }
}

TEST(DunnTest, BonferroniInflatesP) {
  const std::vector<Sample> groups = {{1.0, 2.0, 3.0, 4.0, 5.0},
                                      {3.0, 4.0, 5.0, 6.0, 7.0},
                                      {5.0, 6.0, 7.0, 8.0, 9.0}};
  auto plain = DunnTest(groups, false);
  auto adjusted = DunnTest(groups, true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(adjusted.ok());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_NEAR((*adjusted)[i].p_value,
                std::min(1.0, (*plain)[i].p_value * 3.0), 1e-12);
  }
}

TEST(DunnTest, HandComputedZ) {
  // Groups {1,2,3} and {4,5,6}: mean ranks 2 and 5; no ties.
  // z = 3 / sqrt((6*7/12) * (1/3 + 1/3)) = 3 / sqrt(7/3).
  auto res = DunnTest({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}}, false);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->front().statistic, 3.0 / std::sqrt(7.0 / 3.0), 1e-12);
}

TEST(DunnTest, AllTiedFails) {
  EXPECT_TRUE(DunnTest({{2.0, 2.0}, {2.0, 2.0}}, false)
                  .status()
                  .IsFailedPrecondition());
}

TEST(PosthocTest, PairEnumerationCoversAllPairs) {
  cdibot::Rng rng(26);
  std::vector<Sample> groups;
  for (int g = 0; g < 5; ++g) {
    groups.push_back(NormalSample(&rng, 10, g * 1.0, 1.0));
  }
  auto res = TukeyKramer(groups);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 10u);  // 5 choose 2
  std::set<std::pair<size_t, size_t>> seen;
  for (const PairwiseResult& pr : *res) {
    EXPECT_LT(pr.group_a, pr.group_b);
    seen.insert({pr.group_a, pr.group_b});
  }
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace cdibot::stats
