#include <gtest/gtest.h>

#include "event/period_resolver.h"
#include "sim/scenario.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest()
      : catalog_(EventCatalog::BuiltIn()),
        rng_(99),
        injector_(&catalog_, &rng_) {}

  EventCatalog catalog_;
  Rng rng_;
  FaultInjector injector_;
  EventLog log_;
};

TEST_F(ScenarioTest, WindowedEpisodeTilesPeriod) {
  const Interval episode(T("2024-01-01 10:00"), T("2024-01-01 10:05"));
  ASSERT_TRUE(injector_.InjectEpisode("vm-1", "slow_io", episode, &log_).ok());
  // 5 whole minutes -> 5 raw events at window ends.
  EXPECT_EQ(log_.size(), 5u);
  // Resolving recovers the full episode.
  PeriodResolver resolver(&catalog_);
  auto resolved = resolver.Resolve(
      log_.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00"))));
  ASSERT_TRUE(resolved.ok());
  Duration total;
  for (const ResolvedEvent& ev : *resolved) total += ev.period.length();
  EXPECT_EQ(total, Duration::Minutes(5));
}

TEST_F(ScenarioTest, WindowedEpisodeWithPartialWindow) {
  const Interval episode(T("2024-01-01 10:00"), T("2024-01-01 10:02:30"));
  ASSERT_TRUE(injector_.InjectEpisode("vm-1", "slow_io", episode, &log_).ok());
  // 2 full windows + 1 partial event at the episode end.
  EXPECT_EQ(log_.size(), 3u);
}

TEST_F(ScenarioTest, LoggedDurationEpisodeSingleEvent) {
  const Interval episode(T("2024-01-01 03:00"),
                         T("2024-01-01 03:00") + Duration::Millis(800));
  ASSERT_TRUE(
      injector_.InjectEpisode("vm-1", "qemu_live_upgrade", episode, &log_)
          .ok());
  ASSERT_EQ(log_.size(), 1u);
  auto events =
      log_.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  EXPECT_EQ(events[0].LoggedDuration()->millis(), 800);
}

TEST_F(ScenarioTest, StatefulEpisodeEmitsPair) {
  const Interval episode(T("2024-01-01 10:00"), T("2024-01-01 11:00"));
  ASSERT_TRUE(
      injector_.InjectEpisode("vm-1", "ddos_blackhole", episode, &log_).ok());
  auto events =
      log_.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "ddos_blackhole_add");
  EXPECT_EQ(events[1].name, "ddos_blackhole_del");
}

TEST_F(ScenarioTest, InjectEpisodeValidation) {
  const Interval empty(T("2024-01-01 10:00"), T("2024-01-01 10:00"));
  EXPECT_TRUE(
      injector_.InjectEpisode("vm-1", "slow_io", empty, &log_)
          .IsInvalidArgument());
  const Interval ok(T("2024-01-01 10:00"), T("2024-01-01 10:01"));
  EXPECT_TRUE(
      injector_.InjectEpisode("vm-1", "made_up", ok, &log_).IsNotFound());
}

TEST_F(ScenarioTest, SeverityOverride) {
  const Interval episode(T("2024-01-01 10:00"), T("2024-01-01 10:01"));
  ASSERT_TRUE(injector_
                  .InjectEpisode("vm-1", "packet_loss", episode, &log_,
                                 Severity::kFatal)
                  .ok());
  auto events =
      log_.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  EXPECT_EQ(events[0].level, Severity::kFatal);
}

TEST_F(ScenarioTest, InjectDayVolumeScalesWithRates) {
  auto fleet = Fleet::Build(FleetSpec{}).value();
  const TimePoint day = T("2024-01-01 00:00");
  auto low = injector_.InjectDay(fleet, day, BaselineRates(), &log_);
  ASSERT_TRUE(low.ok());
  EventLog log2;
  auto high =
      injector_.InjectDay(fleet, day, BaselineRates().Scaled(10.0), &log2);
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high.value(), low.value() * 4);
}

TEST_F(ScenarioTest, InjectDayWhereOnlyTouchesMatchingVms) {
  FleetSpec spec;
  spec.hybrid_fraction = 0.5;
  auto fleet = Fleet::Build(spec).value();
  FaultRates rates;
  rates.episodes_per_vm_day["vcpu_high"] = 2.0;
  ASSERT_TRUE(injector_
                  .InjectDayWhere(fleet, T("2024-01-01 00:00"), rates, "arch",
                                  "hybrid", &log_)
                  .ok());
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  for (const RawEvent& ev : log_.Search(day)) {
    const auto dims = fleet.topology().DimsForVm(ev.target);
    ASSERT_TRUE(dims.ok());
    EXPECT_EQ(dims->at("arch"), "hybrid");
  }
}

TEST_F(ScenarioTest, ScaledRatesMultiply) {
  FaultRates rates;
  rates.episodes_per_vm_day = {{"a", 0.5}, {"b", 2.0}};
  const FaultRates scaled = rates.Scaled(3.0);
  EXPECT_DOUBLE_EQ(scaled.episodes_per_vm_day.at("a"), 1.5);
  EXPECT_DOUBLE_EQ(scaled.episodes_per_vm_day.at("b"), 6.0);
}

TEST_F(ScenarioTest, BaselineRatesCoverAllCategories) {
  const FaultRates rates = BaselineRates();
  bool has_u = false, has_p = false, has_c = false;
  for (const auto& [name, rate] : rates.episodes_per_vm_day) {
    EXPECT_GT(rate, 0.0);
    const auto spec = catalog_.Find(name);
    ASSERT_TRUE(spec.ok()) << name;
    switch (spec->category) {
      case StabilityCategory::kUnavailability:
        has_u = true;
        break;
      case StabilityCategory::kPerformance:
        has_p = true;
        break;
      case StabilityCategory::kControlPlane:
        has_c = true;
        break;
    }
  }
  EXPECT_TRUE(has_u);
  EXPECT_TRUE(has_p);
  EXPECT_TRUE(has_c);
}

}  // namespace
}  // namespace cdibot
