// Full-stack integration: simulated fleet -> injected faults -> daily CDI
// job -> drill-down + event-level monitoring + baselines, across several
// days, exercising the Sec. VI applications end to end.
#include <gtest/gtest.h>

#include "anomaly/ksigma.h"
#include "cdi/pipeline.h"
#include "common/thread_pool.h"
#include "sim/incidents.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

class FullPipelineTest : public ::testing::Test {
 protected:
  FullPipelineTest()
      : catalog_(EventCatalog::BuiltIn()),
        rng_(2024),
        injector_(&catalog_, &rng_),
        pool_(4) {
    FleetSpec spec;
    spec.regions = 1;
    spec.azs_per_region = 2;
    spec.clusters_per_az = 2;
    spec.ncs_per_cluster = 3;
    spec.vms_per_nc = 4;
    fleet_.emplace(Fleet::Build(spec).value());
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 120}, {"packet_loss", 80}, {"vcpu_high", 60},
         {"vm_crash", 200}, {"api_error", 40}},
        4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
  }

  StatusOr<DailyCdiResult> RunDay(TimePoint day_start) {
    const Interval day(day_start, day_start + Duration::Days(1));
    DailyCdiJob job(&log_, &catalog_, &*weights_,
                    {.pool = &pool_, .min_parallel_rows = 1});
    CDIBOT_ASSIGN_OR_RETURN(auto vms, fleet_->ServiceInfos(day));
    return job.Run(vms, day);
  }

  EventCatalog catalog_;
  Rng rng_;
  FaultInjector injector_;
  ThreadPool pool_;
  std::optional<Fleet> fleet_;
  std::optional<EventWeightModel> weights_;
  EventLog log_;
};

TEST_F(FullPipelineTest, MultiDayTrendReflectsInjectedRates) {
  // Three days with decreasing fault rates: the daily CDI must decrease.
  const TimePoint d0 = T("2024-05-01 00:00");
  std::vector<double> daily_p;
  const double scales[3] = {8.0, 3.0, 0.5};
  for (int d = 0; d < 3; ++d) {
    ASSERT_TRUE(injector_
                    .InjectDay(*fleet_, d0 + Duration::Days(d),
                               BaselineRates().Scaled(scales[d]), &log_)
                    .ok());
    auto result = RunDay(d0 + Duration::Days(d));
    ASSERT_TRUE(result.ok());
    daily_p.push_back(result->fleet.performance);
  }
  EXPECT_GT(daily_p[0], daily_p[1]);
  EXPECT_GT(daily_p[1], daily_p[2]);
}

TEST_F(FullPipelineTest, EventLevelSpikeDetectedByKSigma) {
  // Case 6: a baseline of normal days, then an allocation-bug day; the
  // event-level CDI series for vm_allocation_failed spikes on day 14.
  const TimePoint d0 = T("2024-05-01 00:00");
  std::vector<double> series;
  for (int d = 0; d < 16; ++d) {
    const TimePoint day = d0 + Duration::Days(d);
    ASSERT_TRUE(
        injector_.InjectDay(*fleet_, day, BaselineRates(), &log_).ok());
    if (d == 13) {
      ASSERT_TRUE(InjectAllocationBug(*fleet_, "r0-az0-c0", day, 0.6,
                                      &injector_, &log_, &rng_)
                      .ok());
    }
    auto result = RunDay(day);
    ASSERT_TRUE(result.ok());
    auto value = EventLevelCdiFor(result->per_event, "vm_allocation_failed",
                                  result->fleet_service_time);
    ASSERT_TRUE(value.ok());
    series.push_back(value.value());
  }
  auto scan = KSigmaScan(series, 8, 3.0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)[13], AnomalyDirection::kSpike);
}

TEST_F(FullPipelineTest, ResolveStatsAccumulateAcrossVms) {
  const TimePoint d0 = T("2024-05-01 00:00");
  ASSERT_TRUE(injector_
                  .InjectDay(*fleet_, d0, BaselineRates().Scaled(5.0), &log_)
                  .ok());
  auto result = RunDay(d0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->resolve_stats.resolved, 0u);
  EXPECT_EQ(result->resolve_stats.unknown_dropped, 0u);
}

TEST_F(FullPipelineTest, BiLayerAggregatesVmTableWithDataflow) {
  // Sec. V: the BI system re-aggregates the per-VM table with Eq. 4 via
  // SQL-like group-by. Reproduce with the dataflow engine and check it
  // agrees with the native drill-down.
  const TimePoint d0 = T("2024-05-01 00:00");
  ASSERT_TRUE(injector_
                  .InjectDay(*fleet_, d0, BaselineRates().Scaled(6.0), &log_)
                  .ok());
  auto result = RunDay(d0);
  ASSERT_TRUE(result.ok());

  const dataflow::Table vm_table = result->ToVmTable();
  dataflow::ExecContext ctx{.pool = &pool_, .min_parallel_rows = 1};
  auto grouped = dataflow::HashGroupBy(
      vm_table, {"az"},
      {dataflow::AggSpec{.kind = dataflow::AggKind::kWeightedMean,
                         .input_column = "cdi_p",
                         .weight_column = "service_minutes",
                         .output_name = "cdi_p"}},
      ctx);
  ASSERT_TRUE(grouped.ok());

  const auto native = RunDrilldown(result->per_vm, {.dimensions = {"az"}});
  ASSERT_TRUE(native.ok());
  ASSERT_EQ(grouped->num_rows(), native->groups.size());
  for (size_t i = 0; i < native->groups.size(); ++i) {
    EXPECT_EQ(grouped->At(i, "az")->AsString().value(),
              native->groups[i].key);
    EXPECT_NEAR(grouped->At(i, "cdi_p")->AsDouble().value(),
                native->groups[i].cdi.performance, 1e-9);
  }
}

TEST_F(FullPipelineTest, ExportedDayRoundTripsThroughStorage) {
  // SLS -> MaxCompute sync (Fig. 4): exporting a day and re-importing it
  // yields the same CDI.
  const TimePoint d0 = T("2024-05-01 00:00");
  ASSERT_TRUE(injector_
                  .InjectDay(*fleet_, d0, BaselineRates().Scaled(4.0), &log_)
                  .ok());
  auto direct = RunDay(d0);
  ASSERT_TRUE(direct.ok());

  auto table = log_.ExportDay(d0);
  ASSERT_TRUE(table.ok());
  auto events = EventLog::ImportTable(table.value());
  ASSERT_TRUE(events.ok());
  EventLog log2;
  log2.AppendBatch(*events);
  // Also re-import the preceding/next day partitions (empty here).
  DailyCdiJob job(&log2, &catalog_, &*weights_, {});
  const Interval day(d0, d0 + Duration::Days(1));
  auto vms = fleet_->ServiceInfos(day).value();
  auto reimported = job.Run(vms, day);
  ASSERT_TRUE(reimported.ok());
  EXPECT_NEAR(direct->fleet.performance, reimported->fleet.performance,
              1e-12);
  EXPECT_NEAR(direct->fleet.unavailability, reimported->fleet.unavailability,
              1e-12);
  EXPECT_NEAR(direct->fleet.control_plane, reimported->fleet.control_plane,
              1e-12);
}

}  // namespace
}  // namespace cdibot
