#include <gtest/gtest.h>

#include <cmath>

#include "anomaly/dspot.h"
#include "common/rng.h"

namespace cdibot {
namespace {

std::vector<double> Series(Rng* rng, size_t n, double level, double sigma,
                           double drift_per_step = 0.0) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(level + drift_per_step * static_cast<double>(i) +
                  rng->Normal(0.0, sigma));
  }
  return out;
}

TEST(DSpotTest, Validation) {
  Rng rng(1);
  const auto data = Series(&rng, 500, 10.0, 1.0);
  DSpotDetector::Options bad;
  bad.depth = 1;
  EXPECT_TRUE(DSpotDetector::Calibrate(data, bad).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DSpotDetector::Calibrate({1.0, 2.0}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DSpotDetector::Calibrate(data).ok());
}

TEST(DSpotTest, QuietOnStationaryNoise) {
  Rng rng(2);
  auto det = DSpotDetector::Calibrate(Series(&rng, 2000, 10.0, 1.0)).value();
  int alarms = 0;
  for (int i = 0; i < 5000; ++i) {
    if (det.Observe(rng.Normal(10.0, 1.0)) != AnomalyDirection::kNone) {
      ++alarms;
    }
  }
  EXPECT_LT(alarms, 10);
}

TEST(DSpotTest, DetectsSpikeAndDip) {
  Rng rng(3);
  auto det = DSpotDetector::Calibrate(Series(&rng, 2000, 10.0, 1.0)).value();
  EXPECT_EQ(det.Observe(100.0), AnomalyDirection::kSpike);
  // Case 7's zeroed-collector dip.
  EXPECT_EQ(det.Observe(-80.0), AnomalyDirection::kDip);
}

TEST(DSpotTest, ToleratesSlowDriftThatWouldBreakPlainSpot) {
  Rng rng(4);
  // Slow upward drift: +0.01 per step, sigma 1. Over 5000 steps the level
  // rises by 50 — far beyond any fixed threshold from calibration at the
  // original level.
  const auto calibration = Series(&rng, 1000, 10.0, 1.0, 0.01);
  auto dspot = DSpotDetector::Calibrate(calibration).value();
  auto plain = SpotDetector::Calibrate(calibration, 1e-4).value();

  int dspot_alarms = 0, plain_alarms = 0;
  double level = 10.0 + 0.01 * 1000;
  for (int i = 0; i < 5000; ++i) {
    const double x = level + rng.Normal(0.0, 1.0);
    level += 0.01;
    if (dspot.Observe(x) != AnomalyDirection::kNone) ++dspot_alarms;
    if (plain.Observe(x)) ++plain_alarms;
  }
  // Drift-aware stays near its q-rate (a handful of alarms in 5000 points);
  // the fixed-threshold detector drowns. Two orders of magnitude apart.
  EXPECT_LT(dspot_alarms, 40);
  EXPECT_GT(plain_alarms, 1000);
  EXPECT_LT(dspot_alarms * 25, plain_alarms);
}

TEST(DSpotTest, DetectsAnomalyOnTopOfDrift) {
  Rng rng(5);
  const auto calibration = Series(&rng, 1000, 10.0, 1.0, 0.01);
  auto det = DSpotDetector::Calibrate(calibration).value();
  double level = 10.0 + 0.01 * 1000;
  for (int i = 0; i < 500; ++i) {
    (void)det.Observe(level + rng.Normal(0.0, 1.0));
    level += 0.01;
  }
  EXPECT_EQ(det.Observe(level + 60.0), AnomalyDirection::kSpike);
  EXPECT_EQ(det.Observe(level - 60.0), AnomalyDirection::kDip);
}

TEST(DSpotTest, ThresholdsTrackTheLocalLevel) {
  Rng rng(6);
  auto det = DSpotDetector::Calibrate(Series(&rng, 1000, 10.0, 1.0)).value();
  const double upper_before = det.upper_threshold();
  EXPECT_GT(upper_before, 10.0);
  EXPECT_LT(det.lower_threshold(), 10.0);
  // Shift the level to 30 gradually (small steps stay under the threshold);
  // thresholds follow.
  for (int i = 0; i < 3000; ++i) {
    (void)det.Observe(10.0 + 20.0 * std::min(1.0, i / 2000.0) +
                      rng.Normal(0.0, 1.0));
  }
  EXPECT_GT(det.upper_threshold(), upper_before + 10.0);
}

TEST(DSpotTest, AnomaliesDoNotShiftTheLevel) {
  Rng rng(7);
  auto det = DSpotDetector::Calibrate(Series(&rng, 1000, 10.0, 1.0)).value();
  const double upper = det.upper_threshold();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(det.Observe(1000.0), AnomalyDirection::kSpike);
  }
  // 50 extreme outliers in a row must not raise the local level.
  EXPECT_NEAR(det.upper_threshold(), upper, 1.0);
}

}  // namespace
}  // namespace cdibot
