#include <gtest/gtest.h>

#include "event/event_store.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Make(const char* name, const char* time, const char* target,
              Severity level = Severity::kWarning) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = target;
  ev.level = level;
  return ev;
}

TEST(EventStoreTest, AppendAndSize) {
  EventStore store;
  EXPECT_TRUE(store.empty());
  store.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  store.AppendBatch({Make("slow_io", "2024-01-01 10:01", "vm-1"),
                     Make("vm_crash", "2024-01-01 10:02", "vm-2")});
  EXPECT_EQ(store.size(), 3u);
}

TEST(EventStoreTest, QueryByTarget) {
  EventStore store;
  store.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  store.Append(Make("slow_io", "2024-01-01 10:01", "vm-2"));
  auto res = store.Query({.target = "vm-1"});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].target, "vm-1");
  EXPECT_TRUE(store.Query({.target = "vm-9"}).empty());
}

TEST(EventStoreTest, QueryByTimeRangeIsHalfOpen) {
  EventStore store;
  store.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  store.Append(Make("slow_io", "2024-01-01 11:00", "vm-1"));
  EventQuery q;
  q.time_range = Interval(T("2024-01-01 10:00"), T("2024-01-01 11:00"));
  auto res = store.Query(q);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].time, T("2024-01-01 10:00"));
}

TEST(EventStoreTest, QueryByNameAndLevel) {
  EventStore store;
  store.Append(Make("slow_io", "2024-01-01 10:00", "vm-1", Severity::kWarning));
  store.Append(
      Make("slow_io", "2024-01-01 10:01", "vm-1", Severity::kCritical));
  store.Append(Make("vm_crash", "2024-01-01 10:02", "vm-1", Severity::kFatal));
  EXPECT_EQ(store.Query({.name = "slow_io"}).size(), 2u);
  EventQuery q;
  q.min_level = Severity::kCritical;
  EXPECT_EQ(store.Query(q).size(), 2u);
  q.name = "slow_io";
  EXPECT_EQ(store.Query(q).size(), 1u);
}

TEST(EventStoreTest, ResultsAreTimeSorted) {
  EventStore store;
  store.Append(Make("slow_io", "2024-01-01 12:00", "vm-1"));
  store.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  store.Append(Make("slow_io", "2024-01-01 11:00", "vm-1"));
  auto res = store.ForTarget("vm-1");
  ASSERT_EQ(res.size(), 3u);
  EXPECT_LT(res[0].time, res[1].time);
  EXPECT_LT(res[1].time, res[2].time);
}

TEST(EventStoreTest, TargetsAreSortedUnique) {
  EventStore store;
  store.Append(Make("a", "2024-01-01 10:00", "vm-b"));
  store.Append(Make("a", "2024-01-01 10:01", "vm-a"));
  store.Append(Make("a", "2024-01-01 10:02", "vm-b"));
  EXPECT_EQ(store.Targets(), (std::vector<std::string>{"vm-a", "vm-b"}));
}

TEST(EventStoreTest, CountsByName) {
  EventStore store;
  store.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  store.Append(Make("slow_io", "2024-01-01 10:01", "vm-2"));
  store.Append(Make("vm_crash", "2024-01-01 10:02", "vm-1"));
  auto counts = store.CountsByName();
  EXPECT_EQ(counts["slow_io"], 2u);
  EXPECT_EQ(counts["vm_crash"], 1u);
}

TEST(EventStoreTest, ClearEmptiesEverything) {
  EventStore store;
  store.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.ForTarget("vm-1").empty());
  EXPECT_TRUE(store.Targets().empty());
}

}  // namespace
}  // namespace cdibot
