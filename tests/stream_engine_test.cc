// Unit tests of StreamingCdiEngine internals the differential suite does
// not pin directly: watermark/lateness accounting, orphan adoption,
// out-of-window rejection, incremental-recompute bookkeeping, and the
// checkpoint round trip through src/storage.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "cdi/monitor.h"
#include "storage/stream_checkpoint.h"
#include "stream/streaming_engine.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

class StreamEngineTest : public ::testing::Test {
 protected:
  StreamEngineTest() : catalog_(EventCatalog::BuiltIn()) {
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 100}, {"packet_loss", 60}, {"vcpu_high", 40},
         {"vm_start_failed", 20}},
        4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
    day_ = Interval(T("2026-03-10 00:00"), T("2026-03-11 00:00"));
  }

  StreamingCdiEngine MakeEngine(Duration lateness = Duration::Minutes(5)) {
    StreamingCdiOptions opts;
    opts.window = day_;
    opts.allowed_lateness = lateness;
    opts.num_shards = 4;
    return StreamingCdiEngine::Create(&catalog_, &*weights_, opts).value();
  }

  VmServiceInfo Vm(const std::string& id) const {
    return VmServiceInfo{.vm_id = id,
                         .dims = {{"region", "r0"}},
                         .service_period = day_};
  }

  RawEvent SlowIo(const std::string& vm, int64_t minute) const {
    RawEvent ev;
    ev.name = "slow_io";
    ev.time = day_.start + Duration::Minutes(minute);
    ev.target = vm;
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(24);
    return ev;
  }

  EventCatalog catalog_;
  std::optional<EventWeightModel> weights_;
  Interval day_;
};

TEST_F(StreamEngineTest, CreateRejectsBadOptions) {
  StreamingCdiOptions opts;  // empty window
  EXPECT_FALSE(
      StreamingCdiEngine::Create(&catalog_, &*weights_, opts).ok());
  opts.window = day_;
  opts.allowed_lateness = Duration::Minutes(-1);
  EXPECT_FALSE(
      StreamingCdiEngine::Create(&catalog_, &*weights_, opts).ok());
  EXPECT_FALSE(StreamingCdiEngine::Create(nullptr, &*weights_,
                                          StreamingCdiOptions{.window = day_})
                   .ok());
}

TEST_F(StreamEngineTest, WatermarkTrailsMaxEventTime) {
  auto engine = MakeEngine(Duration::Minutes(5));
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-1")).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 600)).ok());
  EXPECT_EQ(engine.watermark(),
            day_.start + Duration::Minutes(600) - Duration::Minutes(5));
  // An event behind the watermark counts as late but is still applied.
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 100)).ok());
  EXPECT_EQ(engine.stats().events_late, 1u);
  // The watermark never regresses.
  EXPECT_EQ(engine.watermark(),
            day_.start + Duration::Minutes(595));
  engine.AdvanceWatermarkTo(day_.start + Duration::Minutes(50));
  EXPECT_EQ(engine.watermark(), day_.start + Duration::Minutes(595));
  engine.AdvanceWatermarkTo(day_.end);
  EXPECT_EQ(engine.watermark(), day_.end);
}

TEST_F(StreamEngineTest, LateEventStillRevisesTheVm) {
  auto engine = MakeEngine(Duration::Millis(0));
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-1")).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 1200)).ok());
  const double before = engine.FleetCdi().value().performance;
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 300)).ok());  // late
  const double after = engine.FleetCdi().value().performance;
  EXPECT_EQ(engine.stats().events_late, 1u);
  EXPECT_GT(after, before);
}

TEST_F(StreamEngineTest, OutOfWindowEventsAreDropped) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-1")).ok());
  RawEvent far = SlowIo("vm-1", 0);
  far.time = day_.start - Duration::Days(2);
  ASSERT_TRUE(engine.Ingest(far).ok());
  far.time = day_.end + Duration::Days(2);
  ASSERT_TRUE(engine.Ingest(far).ok());
  EXPECT_EQ(engine.stats().events_out_of_window, 2u);
  EXPECT_DOUBLE_EQ(engine.FleetCdi().value().performance, 0.0);
}

TEST_F(StreamEngineTest, OrphanEventsAdoptedOnRegistration) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-9", 100)).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-9", 101)).ok());
  EXPECT_EQ(engine.stats().events_orphaned, 2u);
  EXPECT_EQ(engine.num_vms(), 0u);
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-9")).ok());
  auto snap = engine.Snapshot().value();
  ASSERT_EQ(snap.per_vm.size(), 1u);
  EXPECT_GT(snap.per_vm[0].cdi.performance, 0.0);
}

TEST_F(StreamEngineTest, OnlyDirtyVmsAreRecomputed) {
  auto engine = MakeEngine();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.RegisterVm(Vm("vm-" + std::to_string(i))).ok());
  }
  (void)engine.FleetCdi().value();
  EXPECT_EQ(engine.stats().vms_recomputed, 10u);
  // A quiet stream: refreshing the fleet CDI recomputes nothing.
  (void)engine.FleetCdi().value();
  EXPECT_EQ(engine.stats().vms_recomputed, 10u);
  // One event dirties exactly one VM.
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-3", 60)).ok());
  (void)engine.FleetCdi().value();
  EXPECT_EQ(engine.stats().vms_recomputed, 11u);
}

TEST_F(StreamEngineTest, ReRegistrationShrinksServiceWindow) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-1")).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 60)).ok());
  const Duration full = engine.Snapshot().value().fleet_service_time;
  EXPECT_EQ(full, Duration::Days(1));
  // VM released at noon: window shrinks, service time follows.
  VmServiceInfo shrunk = Vm("vm-1");
  shrunk.service_period =
      Interval(day_.start, day_.start + Duration::Hours(12));
  ASSERT_TRUE(engine.RegisterVm(shrunk).ok());
  EXPECT_EQ(engine.Snapshot().value().fleet_service_time,
            Duration::Hours(12));
}

TEST_F(StreamEngineTest, CheckpointRoundTripPreservesState) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-1")).ok());
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-2")).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 60)).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 61)).ok());
  ASSERT_TRUE(engine.Ingest(SlowIo("vm-orphan", 70)).ok());
  RawEvent junk = SlowIo("vm-1", 0);
  junk.time = day_.start - Duration::Days(2);
  ASSERT_TRUE(engine.Ingest(junk).ok());
  const VmCdi before = engine.FleetCdi().value();

  // Own subdirectory: checkpoints saved straight into the shared TempDir()
  // collide with other test processes doing the same.
  const std::string dir = ::testing::TempDir() + "/stream_engine_ckpt";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveStreamCheckpoint(engine.Checkpoint(), dir).ok());
  auto loaded = LoadStreamCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vms.size(), 2u);
  EXPECT_EQ(loaded->events.size(), 2u);
  EXPECT_EQ(loaded->orphan_events.size(), 1u);

  StreamingCdiOptions opts;
  opts.window = day_;
  auto restored =
      StreamingCdiEngine::Restore(*loaded, &catalog_, &*weights_, opts);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Same watermark, same counters, same fleet CDI.
  EXPECT_EQ(restored->watermark(), engine.watermark());
  EXPECT_EQ(restored->stats().events_ingested,
            engine.stats().events_ingested);
  EXPECT_EQ(restored->stats().events_out_of_window, 1u);
  EXPECT_EQ(restored->stats().events_orphaned, 1u);
  const VmCdi after = restored->FleetCdi().value();
  EXPECT_DOUBLE_EQ(before.performance, after.performance);
  // The restored engine keeps streaming: the orphan's VM shows up late.
  ASSERT_TRUE(restored->RegisterVm(Vm("vm-orphan")).ok());
  EXPECT_EQ(restored->Snapshot().value().per_vm.size(), 3u);
}

TEST_F(StreamEngineTest, MonitorPreviewDoesNotCommit) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine.RegisterVm(Vm("vm-1")).ok());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(engine.Ingest(SlowIo("vm-1", 300 + i)).ok());
  }
  auto snap = engine.Snapshot().value();

  auto monitor = CdiMonitor::Create({.window = 3, .k = 3.0}).value();
  // Seed a flat history so today's damage is a spike.
  DailyCdiResult quiet;
  quiet.fleet_service_time = Duration::Days(1);
  for (int d = 0; d < 5; ++d) {
    ASSERT_TRUE(
        monitor.IngestDay(day_.start - Duration::Days(5 - d), quiet).ok());
  }
  const size_t days_before = monitor.days_ingested();
  // Previewing many intra-day snapshots flags the spike every time without
  // advancing the detectors.
  for (int i = 0; i < 3; ++i) {
    auto problems = monitor.Preview(day_.start, snap);
    ASSERT_TRUE(problems.ok());
    ASSERT_EQ(problems->size(), 1u);
    EXPECT_EQ((*problems)[0].event_name, "slow_io");
    EXPECT_EQ((*problems)[0].direction, AnomalyDirection::kSpike);
  }
  EXPECT_EQ(monitor.days_ingested(), days_before);
  EXPECT_TRUE(monitor.SeriesFor("slow_io").empty());
  // Committing the day afterwards still detects it.
  auto committed = monitor.IngestDay(day_.start, snap);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->size(), 1u);
}

}  // namespace
}  // namespace cdibot
