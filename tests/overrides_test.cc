#include <gtest/gtest.h>

#include "event/overrides.h"
#include "event/period_resolver.h"
#include "storage/catalog_config.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(OverridesTest, AppliesLevelWindowAndExpire) {
  const EventCatalog base = EventCatalog::BuiltIn();
  // Sec. VIII-A's Redis scenario: packet_loss is more severe for this
  // workload, and detection uses a finer window.
  auto adjusted = ApplyOverrides(
      base, {EventOverride{.event_name = "packet_loss",
                           .level = Severity::kCritical,
                           .window = Duration::Seconds(30),
                           .expire_interval = Duration::Hours(2)}});
  ASSERT_TRUE(adjusted.ok()) << adjusted.status().ToString();
  const EventSpec spec = adjusted->Find("packet_loss").value();
  EXPECT_EQ(spec.default_level, Severity::kCritical);
  EXPECT_EQ(spec.window, Duration::Seconds(30));
  EXPECT_EQ(spec.expire_interval, Duration::Hours(2));
  // Everything else is untouched.
  EXPECT_EQ(adjusted->Find("slow_io").value().window,
            base.Find("slow_io").value().window);
  EXPECT_EQ(adjusted->specs().size(), base.specs().size());
}

TEST(OverridesTest, Validation) {
  const EventCatalog base = EventCatalog::BuiltIn();
  EXPECT_TRUE(ApplyOverrides(base, {EventOverride{.event_name = "nope"}})
                  .status()
                  .IsNotFound());
  // Window override on a logged-duration event is meaningless.
  EXPECT_TRUE(ApplyOverrides(base,
                             {EventOverride{.event_name = "qemu_live_upgrade",
                                            .window = Duration::Minutes(1)}})
                  .status()
                  .IsInvalidArgument());
  // Detail names cannot be targeted.
  EXPECT_TRUE(ApplyOverrides(base,
                             {EventOverride{.event_name =
                                                "ddos_blackhole_add",
                                            .level = Severity::kFatal}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ApplyOverrides(base,
                             {EventOverride{.event_name = "packet_loss",
                                            .window = Duration::Zero()}})
                  .status()
                  .IsInvalidArgument());
}

TEST(OverridesTest, AdjustedCatalogDrivesResolution) {
  const EventCatalog base = EventCatalog::BuiltIn();
  auto adjusted =
      ApplyOverrides(base, {EventOverride{.event_name = "packet_loss",
                                          .window = Duration::Minutes(5)}})
          .value();
  PeriodResolver resolver(&adjusted);
  RawEvent ev;
  ev.name = "packet_loss";
  ev.time = T("2024-01-01 12:05");
  ev.target = "redis-vm";
  ev.expire_interval = Duration::Hours(24);
  auto resolved = resolver.Resolve({ev});
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 1u);
  EXPECT_EQ(resolved->front().period.length(), Duration::Minutes(5));
}

TEST(CatalogConfigTest, LoadsFromConfigStore) {
  ConfigStore config;
  config.Set("catalog/packet_loss/level", "critical");
  config.SetInt("catalog/packet_loss/window_ms", 30000);
  config.SetInt("catalog/slow_io/expire_ms", 7200000);
  config.Set("unrelated/key", "ignored");

  auto overrides = LoadOverridesFromConfig(config);
  ASSERT_TRUE(overrides.ok()) << overrides.status().ToString();
  ASSERT_EQ(overrides->size(), 2u);

  auto adjusted = ApplyOverrides(EventCatalog::BuiltIn(), *overrides);
  ASSERT_TRUE(adjusted.ok());
  EXPECT_EQ(adjusted->Find("packet_loss").value().default_level,
            Severity::kCritical);
  EXPECT_EQ(adjusted->Find("packet_loss").value().window,
            Duration::Seconds(30));
  EXPECT_EQ(adjusted->Find("slow_io").value().expire_interval,
            Duration::Hours(2));
}

TEST(CatalogConfigTest, BadValuesFail) {
  ConfigStore config;
  config.Set("catalog/packet_loss/level", "severe");  // not a severity
  EXPECT_TRUE(LoadOverridesFromConfig(config).status().IsInvalidArgument());

  ConfigStore config2;
  config2.Set("catalog/packet_loss/window_ms", "abc");
  EXPECT_TRUE(LoadOverridesFromConfig(config2).status().IsInvalidArgument());

  ConfigStore config3;
  config3.Set("catalog/packet_loss/unknown_field", "1");
  EXPECT_TRUE(LoadOverridesFromConfig(config3).status().IsInvalidArgument());

  ConfigStore config4;
  config4.Set("catalog/too/many/parts", "1");
  EXPECT_TRUE(LoadOverridesFromConfig(config4).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cdibot
