#include <gtest/gtest.h>

#include "dataflow/table.h"

namespace cdibot::dataflow {
namespace {

Schema TestSchema() {
  return Schema({Field{"id", ValueType::kInt},
                 Field{"name", ValueType::kString},
                 Field{"score", ValueType::kDouble}});
}

TEST(SchemaTest, IndexOf) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("id").value(), 0u);
  EXPECT_EQ(s.IndexOf("score").value(), 2u);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
  EXPECT_EQ(s.ToString(), "(id:int, name:string, score:double)");
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  EXPECT_FALSE(TestSchema() == Schema({Field{"id", ValueType::kInt}}));
  EXPECT_FALSE(TestSchema() ==
               Schema({Field{"id", ValueType::kDouble},
                       Field{"name", ValueType::kString},
                       Field{"score", ValueType::kDouble}}));
}

TEST(TableTest, AppendValidatesArityAndTypes) {
  Table t(TestSchema());
  EXPECT_TRUE(
      t.Append({Value(int64_t{1}), Value("a"), Value(0.5)}).ok());
  EXPECT_TRUE(t.Append({Value(int64_t{1})}).IsInvalidArgument());
  EXPECT_TRUE(t.Append({Value("wrong"), Value("a"), Value(0.5)})
                  .IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, NullsAcceptedForAnyColumn) {
  Table t(TestSchema());
  EXPECT_TRUE(t.Append({Value(), Value(), Value()}).ok());
}

TEST(TableTest, AtAccessor) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Append({Value(int64_t{1}), Value("a"), Value(0.5)}).ok());
  EXPECT_EQ(t.At(0, "name")->AsString().value(), "a");
  EXPECT_TRUE(t.At(5, "name").status().IsOutOfRange());
  EXPECT_TRUE(t.At(0, "nope").status().IsNotFound());
}

TEST(TableTest, PrettyStringShowsHeaderAndTruncation) {
  Table t(TestSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Append({Value(int64_t{i}), Value("row"), Value(1.0)}).ok());
  }
  const std::string rendered = t.ToPrettyString(2);
  EXPECT_NE(rendered.find("id"), std::string::npos);
  EXPECT_NE(rendered.find("(3 more rows)"), std::string::npos);
}

}  // namespace
}  // namespace cdibot::dataflow
