#include <gtest/gtest.h>

#include "weights/event_weights.h"

namespace cdibot {
namespace {

TEST(ExpertLevelWeightTest, Equation1) {
  // l_i = i / m with m = 4 (Eq. 1).
  EXPECT_DOUBLE_EQ(ExpertLevelWeight(Severity::kInfo).value(), 0.25);
  EXPECT_DOUBLE_EQ(ExpertLevelWeight(Severity::kWarning).value(), 0.5);
  EXPECT_DOUBLE_EQ(ExpertLevelWeight(Severity::kCritical).value(), 0.75);
  EXPECT_DOUBLE_EQ(ExpertLevelWeight(Severity::kFatal).value(), 1.0);
}

TEST(ExpertLevelWeightTest, Validation) {
  EXPECT_TRUE(ExpertLevelWeight(Severity::kFatal, 0).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExpertLevelWeight(Severity::kFatal, 3).status().IsOutOfRange());
}

TEST(TicketRankModelTest, RanksDistributeProportionally) {
  // 8 events in 4 levels: 2 per level by ascending ticket count.
  std::map<std::string, int64_t> counts;
  for (int i = 0; i < 8; ++i) {
    counts["e" + std::to_string(i)] = 10 * (i + 1);
  }
  auto model = TicketRankModel::FromCounts(counts, 4);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->LevelFor("e0"), 1);
  EXPECT_EQ(model->LevelFor("e1"), 1);
  EXPECT_EQ(model->LevelFor("e2"), 2);
  EXPECT_EQ(model->LevelFor("e3"), 2);
  EXPECT_EQ(model->LevelFor("e6"), 4);
  EXPECT_EQ(model->LevelFor("e7"), 4);
  EXPECT_DOUBLE_EQ(model->WeightFor("e7"), 1.0);
  EXPECT_DOUBLE_EQ(model->WeightFor("e0"), 0.25);
}

TEST(TicketRankModelTest, Example3Percentile) {
  // Example 3: an event with more tickets than 43% of events lands in the
  // second of four levels -> p = 0.5. Build 100 events; the one ranked 44th
  // (ascending) is higher than 43% of them.
  std::map<std::string, int64_t> counts;
  for (int i = 0; i < 100; ++i) {
    counts["e" + std::to_string(i + 1000)] = i;  // distinct counts
  }
  auto model = TicketRankModel::FromCounts(counts, 4);
  ASSERT_TRUE(model.ok());
  // Rank 44 (value 43): ceil(44 * 4 / 100) = 2 -> p = 0.5.
  EXPECT_EQ(model->LevelFor("e1043"), 2);
  EXPECT_DOUBLE_EQ(model->WeightFor("e1043"), 0.5);
}

TEST(TicketRankModelTest, UnknownEventsGetLowestLevel) {
  auto model = TicketRankModel::FromCounts({{"a", 5}}, 4);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->LevelFor("never_seen"), 1);
  EXPECT_DOUBLE_EQ(model->WeightFor("never_seen"), 0.25);
}

TEST(TicketRankModelTest, Validation) {
  EXPECT_TRUE(TicketRankModel::FromCounts({}, 4).status().IsInvalidArgument());
  EXPECT_TRUE(
      TicketRankModel::FromCounts({{"a", 1}}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(TicketRankModel::FromCounts({{"a", -1}}, 4)
                  .status()
                  .IsInvalidArgument());
}

EventWeightModel MakeModel(
    const std::map<std::string, int64_t>& counts = {{"low", 1},
                                                    {"mid_a", 10},
                                                    {"mid_b", 20},
                                                    {"high", 100}},
    EventWeightOptions options = {}) {
  auto ticket = TicketRankModel::FromCounts(counts, options.ticket_levels);
  EXPECT_TRUE(ticket.ok());
  auto model = EventWeightModel::Build(std::move(ticket).value(), options);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(EventWeightModelTest, PaperExample3ExactValue) {
  // Example 3: critical level (3rd of 4) -> l = 0.75; customer level 2 of 4
  // -> p = 0.5; alpha_1 = alpha_2 = 0.5 -> w = 0.625 (Eq. 3).
  // "mid_a" ranks 2nd ascending of 4 events -> level 2.
  EventWeightModel model = MakeModel();
  auto w = model.WeightFor("mid_a", Severity::kCritical,
                           StabilityCategory::kPerformance);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w.value(), 0.625);
}

TEST(EventWeightModelTest, UnavailabilityAlwaysWeighsOne) {
  EventWeightModel model = MakeModel();
  auto w = model.WeightFor("low", Severity::kInfo,
                           StabilityCategory::kUnavailability);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w.value(), 1.0);
}

TEST(EventWeightModelTest, AsymmetricAlphas) {
  // alpha_expert = 0.8, alpha_ticket = 0.2:
  // w = (0.8 * l + 0.2 * p) / 1.0.
  EventWeightOptions options;
  options.alpha_expert = 0.8;
  options.alpha_ticket = 0.2;
  EventWeightModel model = MakeModel(
      {{"low", 1}, {"mid_a", 10}, {"mid_b", 20}, {"high", 100}}, options);
  auto w = model.WeightFor("high", Severity::kWarning,
                           StabilityCategory::kControlPlane);
  ASSERT_TRUE(w.ok());
  // l = 0.5, p = 1.0 -> 0.8*0.5 + 0.2*1.0 = 0.6.
  EXPECT_NEAR(w.value(), 0.6, 1e-12);
}

TEST(EventWeightModelTest, WeightsAreInUnitInterval) {
  EventWeightModel model = MakeModel();
  for (const char* name : {"low", "mid_a", "mid_b", "high", "unknown"}) {
    for (Severity s : {Severity::kInfo, Severity::kWarning,
                       Severity::kCritical, Severity::kFatal}) {
      for (StabilityCategory c : {StabilityCategory::kUnavailability,
                                  StabilityCategory::kPerformance,
                                  StabilityCategory::kControlPlane}) {
        auto w = model.WeightFor(name, s, c);
        ASSERT_TRUE(w.ok());
        EXPECT_GE(w.value(), 0.0);
        EXPECT_LE(w.value(), 1.0);
      }
    }
  }
}

TEST(EventWeightModelTest, WeightIncreasesWithSeverity) {
  EventWeightModel model = MakeModel();
  double prev = -1.0;
  for (Severity s : {Severity::kInfo, Severity::kWarning, Severity::kCritical,
                     Severity::kFatal}) {
    const double w =
        model.WeightFor("mid_a", s, StabilityCategory::kPerformance).value();
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(EventWeightModelTest, OverridesWinForNonUnavailability) {
  EventWeightModel model = MakeModel();
  ASSERT_TRUE(model.SetOverride("mid_a", 0.99).ok());
  EXPECT_DOUBLE_EQ(model
                       .WeightFor("mid_a", Severity::kInfo,
                                  StabilityCategory::kPerformance)
                       .value(),
                   0.99);
  // Unavailability stays pinned at 1.
  EXPECT_DOUBLE_EQ(model
                       .WeightFor("mid_a", Severity::kInfo,
                                  StabilityCategory::kUnavailability)
                       .value(),
                   1.0);
  EXPECT_TRUE(model.SetOverride("mid_a", 1.5).IsInvalidArgument());
}

TEST(EventWeightModelTest, BuildValidation) {
  auto ticket = TicketRankModel::FromCounts({{"a", 1}}, 4).value();
  EventWeightOptions bad;
  bad.alpha_expert = 0.0;
  EXPECT_TRUE(
      EventWeightModel::Build(ticket, bad).status().IsInvalidArgument());
  EventWeightOptions mismatch;
  mismatch.ticket_levels = 5;  // ticket model was built with 4
  EXPECT_TRUE(
      EventWeightModel::Build(ticket, mismatch).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cdibot
