#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace cdibot::stats {
namespace {

TEST(DescriptiveTest, MeanVarianceStdDev) {
  const Sample x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(x).value(), 5.0);
  EXPECT_NEAR(Variance(x).value(), 32.0 / 7.0, 1e-12);  // n-1 denominator
  EXPECT_NEAR(StdDev(x).value(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, Validation) {
  EXPECT_TRUE(Mean({}).status().IsInvalidArgument());
  EXPECT_TRUE(Variance({1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(Median({}).status().IsInvalidArgument());
  EXPECT_TRUE(Quantile({1.0}, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(Skewness({1.0, 2.0}).status().IsInvalidArgument());
  EXPECT_TRUE(ExcessKurtosis({1.0, 2.0, 3.0}).status().IsInvalidArgument());
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}).value(), 2.5);
  EXPECT_DOUBLE_EQ(Median({7.0}).value(), 7.0);
}

TEST(DescriptiveTest, QuantileType7Interpolation) {
  const Sample x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 0.5).value(), 2.5);
  // h = 0.25 * 3 = 0.75 -> 1 + 0.75 * (2 - 1) = 1.75.
  EXPECT_DOUBLE_EQ(Quantile(x, 0.25).value(), 1.75);
}

TEST(DescriptiveTest, SymmetricSampleHasZeroSkewness) {
  EXPECT_NEAR(Skewness({1.0, 2.0, 3.0, 4.0, 5.0}).value(), 0.0, 1e-12);
  // Right-skewed sample has positive skewness.
  EXPECT_GT(Skewness({1.0, 1.0, 1.0, 1.0, 10.0}).value(), 1.0);
}

TEST(DescriptiveTest, UniformKurtosisIsNegative) {
  Sample x;
  for (int i = 0; i < 1000; ++i) x.push_back(static_cast<double>(i));
  // Continuous uniform excess kurtosis is -1.2.
  EXPECT_NEAR(ExcessKurtosis(x).value(), -1.2, 0.01);
}

TEST(DescriptiveTest, DegenerateSampleMomentsFail) {
  EXPECT_TRUE(Skewness({3.0, 3.0, 3.0}).status().IsFailedPrecondition());
  EXPECT_TRUE(
      ExcessKurtosis({3.0, 3.0, 3.0, 3.0}).status().IsFailedPrecondition());
}

TEST(MidRanksTest, NoTies) {
  const std::vector<double> ranks = MidRanks({30.0, 10.0, 20.0});
  EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(MidRanksTest, TiesGetAverageRank) {
  // 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4.
  const std::vector<double> ranks = MidRanks({10.0, 20.0, 20.0, 30.0});
  EXPECT_EQ(ranks, (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(MidRanksTest, AllTied) {
  const std::vector<double> ranks = MidRanks({5.0, 5.0, 5.0});
  EXPECT_EQ(ranks, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(MidRanksTest, RankSumInvariant) {
  // Ranks always sum to n(n+1)/2 regardless of ties.
  const std::vector<double> ranks = MidRanks({1.0, 1.0, 2.0, 9.0, 9.0, 9.0});
  double sum = 0.0;
  for (double r : ranks) sum += r;
  EXPECT_DOUBLE_EQ(sum, 21.0);
}

TEST(EwmaTest, AlphaOneIsIdentity) {
  const std::vector<double> x = {3.0, 1.0, 4.0};
  EXPECT_EQ(Ewma(x, 1.0).value(), x);
}

TEST(EwmaTest, SmoothsTowardHistory) {
  auto out = Ewma({10.0, 0.0, 0.0}, 0.5).value();
  EXPECT_DOUBLE_EQ(out[0], 10.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[2], 2.5);
}

TEST(EwmaTest, Validation) {
  EXPECT_TRUE(Ewma({1.0}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(Ewma({1.0}, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(Ewma({}, 0.5)->empty());
}

}  // namespace
}  // namespace cdibot::stats
