// Sharded-equivalence differential suite over REAL transports: worker
// threads behind Unix-domain sockets, and shard_worker child processes the
// kernel can kill -9 — with and without the network chaos layer mangling
// the wire. Whatever the transport and however hostile the network, the
// final gather must be BIT-IDENTICAL to a single-node engine fed the same
// inputs (EXPECT_EQ on every double): the CRC trailer detects corruption,
// the session layer redials and resumes, the worker's dedup makes every
// retry exact, and recovery replays checkpoint + outbox to the same state.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "chaos/net_chaos.h"
#include "shard_equivalence_harness.h"

namespace cdibot {
namespace {

using testutil::CanonicalWeightSpec;
using testutil::MakeScenario;
using testutil::Scenario;
using testutil::ShardEquivalenceHarness;

constexpr size_t kShardCounts[] = {1, 2, 4, 7};

// Baked in by tests/CMakeLists.txt; points at the built shard_worker.
#ifndef SHARD_WORKER_BIN
#define SHARD_WORKER_BIN ""
#endif

/// Session tuning for lossy-network runs: a short per-attempt timeout so a
/// swallowed response becomes a quick retry of the same request id, a short
/// connect timeout so a dropped handshake frame redials fast, and a deep
/// attempt budget so even the hostile plan converges.
shard::ShardSessionOptions ChaosSession() {
  shard::ShardSessionOptions session;
  session.call_timeout = Duration::Millis(250);
  session.connect_timeout = Duration::Millis(500);
  session.max_call_attempts = 16;
  return session;
}

void UseSocketThreads(shard::ShardTopologyOptions& topo) {
  topo.transport = shard::ShardTransportMode::kSocketThread;
}

void UseWorkerProcesses(shard::ShardTopologyOptions& topo) {
  topo.transport = shard::ShardTransportMode::kSocketProcess;
  topo.worker_binary = SHARD_WORKER_BIN;
  topo.weight_spec = CanonicalWeightSpec();
}

class SocketShardEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ShardEquivalenceHarness harness_;
};

// Socket-thread workers, clean network: pure transport-substitution check.
// Any framing or session bug shows up as a wrong double here.
TEST_P(SocketShardEquivalenceTest, SocketThreadsBitIdenticalToSingleNode) {
  const Scenario sc = MakeScenario(GetParam());
  const DailyCdiResult reference = harness_.RunSingleNode(sc);
  for (const size_t n : kShardCounts) {
    const DailyCdiResult sharded = harness_.RunSharded(
        sc, n, GetParam(), {.configure = UseSocketThreads});
    ShardEquivalenceHarness::ExpectIdentical(
        reference, sharded, "socket-thread shards=" + std::to_string(n));
  }
}

// Multi-process workers (real child processes, real kill -9): the full
// acceptance gauntlet. Every run has the hostile network plan active (torn
// frames + flipped bits + resets + duplicates + delays + asymmetric
// partition) AND kills one worker with SIGKILL at the three-quarter mark,
// asserting the degraded gather and then bit-identical recovery.
TEST_P(SocketShardEquivalenceTest, ProcessWorkersKill9UnderHostileNetwork) {
  const Scenario sc = MakeScenario(GetParam());
  const DailyCdiResult reference = harness_.RunSingleNode(sc);
  for (const size_t n : kShardCounts) {
    testutil::ShardRunOptions run;
    run.inject_failure = true;
    run.configure = [&](shard::ShardTopologyOptions& topo) {
      UseWorkerProcesses(topo);
      topo.session = ChaosSession();
      topo.transport_decorator = chaos::MakeChaosDecorator(
          chaos::NetFaultPlan::HostileNetwork(GetParam() * 977 + n));
    };
    const DailyCdiResult sharded = harness_.RunSharded(sc, n, GetParam(), run);
    ShardEquivalenceHarness::ExpectIdentical(
        reference, sharded,
        "process+chaos+kill9 shards=" + std::to_string(n));
  }
}

// Socket threads under the per-family chaos plans: each fault family alone,
// still bit-identical. (Thread mode keeps this cheap enough to run per
// family; the hostile superset runs against real processes above.)
TEST_P(SocketShardEquivalenceTest, FaultFamiliesPreserveBitIdentity) {
  if (GetParam() % 4 != 1) GTEST_SKIP() << "fault-family seed subset";
  const Scenario sc = MakeScenario(GetParam());
  const DailyCdiResult reference = harness_.RunSingleNode(sc);
  const chaos::NetFaultPlan plans[] = {
      chaos::NetFaultPlan::TornFrames(GetParam()),
      chaos::NetFaultPlan::FlippedBits(GetParam()),
      chaos::NetFaultPlan::Resets(GetParam()),
      chaos::NetFaultPlan::FlakyDelivery(GetParam()),
      chaos::NetFaultPlan::Partition(GetParam()),
  };
  for (const chaos::NetFaultPlan& plan : plans) {
    testutil::ShardRunOptions run;
    run.configure = [&](shard::ShardTopologyOptions& topo) {
      UseSocketThreads(topo);
      topo.session = ChaosSession();
      topo.transport_decorator = chaos::MakeChaosDecorator(plan);
    };
    const DailyCdiResult sharded = harness_.RunSharded(sc, 4, GetParam(), run);
    ShardEquivalenceHarness::ExpectIdentical(reference, sharded,
                                             "plan=" + plan.name);
  }
}

// The coordinator's transport stats must reflect the chaos: reconnects and
// session rebuilds happen, and a SIGKILLed worker forces at least one full
// restore.
TEST_P(SocketShardEquivalenceTest, SessionStatsRecordTheTurbulence) {
  if (GetParam() != 4) GTEST_SKIP() << "single representative seed";
  const Scenario sc = MakeScenario(GetParam());
  shard::ShardTopologyOptions topo;
  topo.num_shards = 2;
  topo.engine.window = sc.day;
  UseWorkerProcesses(topo);
  topo.session = ChaosSession();
  topo.transport_decorator = chaos::MakeChaosDecorator(
      chaos::NetFaultPlan::HostileNetwork(GetParam()));
  auto coord_or = shard::ShardCoordinator::Create(
      &harness_.catalog(), &harness_.weights(), std::move(topo));
  ASSERT_TRUE(coord_or.ok()) << coord_or.status().ToString();
  auto coord = std::move(coord_or).value();

  std::vector<VmServiceInfo> initial;
  for (const VmServiceInfo& vm : sc.vms) {
    if (ShardEquivalenceHarness::IsLate(sc, vm.vm_id)) continue;
    initial.push_back(vm);
  }
  ASSERT_TRUE(coord->RegisterVms(initial).ok());
  for (const RawEvent& ev : sc.arrivals) {
    ASSERT_TRUE(coord->Ingest(ev).ok());
  }
  ASSERT_TRUE(coord->InjectShardFailure(0).ok());
  ASSERT_TRUE(coord->RecoverShard(0).ok());
  ASSERT_TRUE(coord->Snapshot().ok());

  const shard::ShardFleetStats stats = coord->stats();
  EXPECT_EQ(stats.shards_alive, 2u);
  EXPECT_EQ(stats.shard_failures, 1u);
  EXPECT_EQ(stats.shards_recovered, 1u);
  // The SIGKILL respawn alone guarantees one reconnect + one restore.
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.sessions_restored, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SocketShardEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace cdibot
