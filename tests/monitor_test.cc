#include <gtest/gtest.h>

#include "cdi/monitor.h"

namespace cdibot {
namespace {

TimePoint Day(int d) {
  return TimePoint::Parse("2024-01-01 00:00").value() + Duration::Days(d);
}

// A DailyCdiResult with one event's damage spread over the given clusters.
DailyCdiResult MakeResult(
    const std::string& event, double total_damage_minutes,
    const std::map<std::string, double>& cluster_share) {
  DailyCdiResult result;
  result.fleet_service_time = Duration::Days(100);  // 100 VM-days
  int i = 0;
  for (const auto& [cluster, share] : cluster_share) {
    result.per_event.push_back(EventCdiRecord{
        .vm_id = "vm-" + std::to_string(i++),
        .event_name = event,
        .category = StabilityCategory::kPerformance,
        .damage_minutes = total_damage_minutes * share,
        .service_time = Duration::Days(1),
        .dims = {{"cluster", cluster}}});
  }
  return result;
}

TEST(CdiMonitorTest, Validation) {
  CdiMonitor::Options bad;
  bad.window = 2;
  EXPECT_TRUE(CdiMonitor::Create(bad).status().IsInvalidArgument());
  bad = CdiMonitor::Options{};
  bad.k = 0.0;
  EXPECT_TRUE(CdiMonitor::Create(bad).status().IsInvalidArgument());
  EXPECT_TRUE(CdiMonitor::Create().ok());
}

TEST(CdiMonitorTest, SteadyCurveStaysQuiet) {
  auto monitor = CdiMonitor::Create().value();
  for (int d = 0; d < 20; ++d) {
    auto problems = monitor.IngestDay(
        Day(d), MakeResult("slow_io", 100.0, {{"c0", 1.0}}));
    ASSERT_TRUE(problems.ok());
    EXPECT_TRUE(problems->empty()) << "day " << d;
  }
  EXPECT_EQ(monitor.days_ingested(), 20u);
  EXPECT_EQ(monitor.SeriesFor("slow_io").size(), 20u);
}

TEST(CdiMonitorTest, SpikeDetectedAndLocalized) {
  auto monitor = CdiMonitor::Create().value();
  for (int d = 0; d < 10; ++d) {
    (void)monitor.IngestDay(
        Day(d), MakeResult("vm_allocation_failed", 50.0,
                           {{"c0", 0.5}, {"c1", 0.5}}));
  }
  // Day 10: 10x damage, all of the increase in cluster c1 (Case 6's
  // corrupted scheduling data in one cluster).
  auto problems = monitor.IngestDay(
      Day(10), MakeResult("vm_allocation_failed", 500.0,
                          {{"c0", 0.05}, {"c1", 0.95}}));
  ASSERT_TRUE(problems.ok());
  ASSERT_EQ(problems->size(), 1u);
  const PotentialProblem& p = problems->front();
  EXPECT_EQ(p.event_name, "vm_allocation_failed");
  EXPECT_EQ(p.direction, AnomalyDirection::kSpike);
  EXPECT_GT(p.value, p.baseline * 5.0);
  ASSERT_FALSE(p.root_causes.empty());
  EXPECT_EQ(p.root_causes.front().dimension, "cluster");
  EXPECT_EQ(p.root_causes.front().value, "c1");
}

TEST(CdiMonitorTest, DipDetected) {
  // Case 7: the TDP curve collapses when the collector breaks.
  auto monitor = CdiMonitor::Create().value();
  for (int d = 0; d < 10; ++d) {
    (void)monitor.IngestDay(
        Day(d), MakeResult("inspect_cpu_power_tdp", 200.0, {{"c0", 1.0}}));
  }
  auto problems = monitor.IngestDay(
      Day(10), MakeResult("inspect_cpu_power_tdp", 0.0, {}));
  ASSERT_TRUE(problems.ok());
  ASSERT_EQ(problems->size(), 1u);
  EXPECT_EQ(problems->front().direction, AnomalyDirection::kDip);
  EXPECT_DOUBLE_EQ(problems->front().value, 0.0);
}

TEST(CdiMonitorTest, NewEventBackfillsZeros) {
  auto monitor = CdiMonitor::Create().value();
  for (int d = 0; d < 10; ++d) {
    (void)monitor.IngestDay(Day(d),
                            MakeResult("slow_io", 100.0, {{"c0", 1.0}}));
  }
  // A brand-new event appearing with large damage: its curve baseline is
  // the backfilled zeros, so the first appearance is itself a spike.
  auto problems = monitor.IngestDay(
      Day(10), MakeResult("gpu_drop", 300.0, {{"c0", 1.0}}));
  ASSERT_TRUE(problems.ok());
  bool flagged = false;
  for (const PotentialProblem& p : *problems) {
    if (p.event_name == "gpu_drop") {
      flagged = p.direction == AnomalyDirection::kSpike;
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_EQ(monitor.SeriesFor("gpu_drop").size(), 11u);
  EXPECT_DOUBLE_EQ(monitor.SeriesFor("gpu_drop")[0], 0.0);
}

TEST(CdiMonitorTest, UnknownSeriesIsEmpty) {
  auto monitor = CdiMonitor::Create().value();
  EXPECT_TRUE(monitor.SeriesFor("never_seen").empty());
}

}  // namespace
}  // namespace cdibot
