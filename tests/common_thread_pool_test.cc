#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace cdibot {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([]() { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&]() {
      const int now = ++in_flight;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --in_flight;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, DefaultPoolIsUsable) {
  EXPECT_GE(DefaultThreadPool().num_threads(), 2u);
  EXPECT_EQ(DefaultThreadPool().Submit([]() { return 3; }).get(), 3);
}

}  // namespace
}  // namespace cdibot
