#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <system_error>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace cdibot {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([]() { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&]() {
      const int now = ++in_flight;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --in_flight;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, DefaultPoolIsUsable) {
  EXPECT_GE(DefaultThreadPool().num_threads(), 2u);
  EXPECT_EQ(DefaultThreadPool().Submit([]() { return 3; }).get(), 3);
}

// --- Stress: the situations that deadlock naive pool implementations ------

TEST(ThreadPoolStressTest, ParallelForOnSingleThreadPool) {
  // With one worker there is no one to offload to: the caller must be able
  // to run every chunk itself instead of waiting on a worker that may be
  // the caller.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolStressTest, ParallelForFromInsideWorker) {
  // A pool task that itself calls ParallelFor must not block on helper
  // tasks that can never be scheduled (every worker could be inside such a
  // task simultaneously — the classic nested-fork deadlock).
  ThreadPool pool(2);
  std::vector<std::future<int>> outer;
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.Submit([&pool]() {
      std::atomic<int> sum{0};
      pool.ParallelFor(100, [&sum](size_t i) { sum += static_cast<int>(i); });
      return sum.load();
    }));
  }
  for (auto& f : outer) EXPECT_EQ(f.get(), 4950);
}

TEST(ThreadPoolStressTest, NestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&pool, &total](size_t) {
    pool.ParallelFor(8, [&total](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolStressTest, SubmitFromWorkerDoesNotDeadlock) {
  // A task enqueueing follow-up work and waiting for completion through an
  // atomic (not .get(), which would deadlock on a saturated pool).
  ThreadPool pool(2);
  std::atomic<int> done{0};
  auto outer = pool.Submit([&pool, &done]() {
    for (int i = 0; i < 10; ++i) {
      (void)pool.Submit([&done]() { ++done; });
    }
  });
  outer.get();
  // Queued children drain even while the test thread just waits.
  while (done.load() < 10) std::this_thread::yield();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolStressTest, DestructionDrainsQueuedWork) {
  // Destroying the pool with a deep queue must run (not drop) every task:
  // futures obtained from Submit would otherwise throw broken_promise.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++ran;
      }));
    }
    // Destructor joins here with most of the queue still pending.
  }
  EXPECT_EQ(ran.load(), 200);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

// --- Shutdown: drain-then-reject semantics under teardown races ----------

TEST(ThreadPoolShutdownTest, ShutdownDrainsQueuedTasksBeforeJoining) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran]() {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      ++ran;
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownIsRejectedWithBrokenPromise) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.accepting());
  std::atomic<bool> ran{false};
  auto f = pool.Submit([&ran]() { ran = true; });
  // The rejected task must never run, and the future must resolve (with an
  // error) rather than hang on a queue no worker will drain.
  try {
    f.get();
    FAIL() << "rejected Submit returned a value";
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
  }
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolShutdownTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.accepting());
  EXPECT_EQ(pool.Submit([]() { return 5; }).get(), 5);
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op, not a double-join crash
  EXPECT_FALSE(pool.accepting());
}

TEST(ThreadPoolShutdownTest, SubmitsRacingDestructionDrainOrReject) {
  // Producers hammer Submit while the pool is torn down mid-traffic. Every
  // future must resolve: either the task ran (enqueued before shutdown) or
  // it reports broken_promise (rejected) — never a hang, never a crash.
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  std::mutex futures_mu;
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&]() {
        while (!stop.load()) {
          auto f = pool.Submit([&ran]() { ++ran; });
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(f));
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Destructor runs here while producers are still submitting.
  }
  stop = true;
  for (auto& t : producers) t.join();

  int executed = 0;
  int rejected = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++executed;
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(),
                std::make_error_code(std::future_errc::broken_promise));
      ++rejected;
    }
  }
  EXPECT_EQ(executed, ran.load());
  EXPECT_EQ(executed + rejected, static_cast<int>(futures.size()));
  EXPECT_GT(executed, 0);  // some work got in before teardown began
}

TEST(ThreadPoolStressTest, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&pool, &total]() {
      pool.ParallelFor(500, [&total](size_t) { ++total; });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 3000);
}

}  // namespace
}  // namespace cdibot
