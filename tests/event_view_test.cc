#include "event/event_view.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Make(const char* name, const char* time, const char* target) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = target;
  ev.level = Severity::kCritical;
  ev.expire_interval = Duration::Hours(24);
  return ev;
}

TEST(EventRowsTest, AppendEncodesColumnsAndInternsStrings) {
  StringInterner interner;
  EventRows rows(&interner);
  RawEvent ev = Make("slow_io", "2024-01-01 10:00", "vm-1");
  const uint32_t row = rows.Append(ev);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.time(row), ev.time);
  EXPECT_EQ(rows.name(row), "slow_io");
  EXPECT_EQ(rows.target(row), "vm-1");
  EXPECT_EQ(rows.level(row), Severity::kCritical);
  EXPECT_EQ(rows.expire_interval(row), Duration::Hours(24));
  EXPECT_EQ(rows.name_id(row), interner.Lookup("slow_io"));
  EXPECT_EQ(rows.target_id(row), interner.Lookup("vm-1"));
  // Re-appending the same strings reuses the ids.
  const uint32_t row2 = rows.Append(Make("slow_io", "2024-01-01 11:00",
                                         "vm-1"));
  EXPECT_EQ(rows.name_id(row2), rows.name_id(row));
  EXPECT_EQ(rows.target_id(row2), rows.target_id(row));
}

TEST(EventRowsTest, CanonicalDurationLivesInTheColumn) {
  EventRows rows;
  RawEvent ev = Make("a", "2024-01-01 10:00", "vm-1");
  ev.attrs["duration_ms"] = "2500";
  const uint32_t row = rows.Append(ev);
  EXPECT_EQ(rows.duration_ms(row), 2500);
  EXPECT_FALSE(rows.has_extra_attrs(row));
  EXPECT_EQ(rows.Materialize(row).attrs, ev.attrs);
  // Zero is canonical too.
  RawEvent zero = Make("a", "2024-01-01 10:00", "vm-1");
  zero.attrs["duration_ms"] = "0";
  const uint32_t zrow = rows.Append(zero);
  EXPECT_EQ(rows.duration_ms(zrow), 0);
  EXPECT_FALSE(rows.has_extra_attrs(zrow));
}

TEST(EventRowsTest, NoAttrsMeansNoDuration) {
  EventRows rows;
  const uint32_t row = rows.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  EXPECT_EQ(rows.duration_ms(row), -1);
  EXPECT_FALSE(rows.has_extra_attrs(row));
  EXPECT_TRUE(rows.Materialize(row).attrs.empty());
}

TEST(EventRowsTest, NonCanonicalAttrsRoundTripViaSideTable) {
  EventRows rows;
  // Each of these must come back bit-for-bit from Materialize.
  std::vector<std::map<std::string, std::string>> shapes = {
      {{"duration_ms", "2500"}, {"note", "extra key"}},  // extra keys
      {{"duration_ms", "not_a_number"}},                 // unparseable
      {{"duration_ms", "-5"}},                           // negative
      {{"duration_ms", "0500"}},                         // leading zero
      {{"duration_ms", "+7"}},                           // explicit sign
      {{"duration_ms", "25 "}},                          // trailing junk
      {{"duration_ms", ""}},                             // empty value
      {{"other_key", "value"}},                          // no duration at all
  };
  for (const auto& attrs : shapes) {
    RawEvent ev = Make("a", "2024-01-01 10:00", "vm-1");
    ev.attrs = attrs;
    const uint32_t row = rows.Append(ev);
    EXPECT_TRUE(rows.has_extra_attrs(row));
    EXPECT_EQ(rows.duration_ms(row), -1);
    const RawEvent back = rows.Materialize(row);
    EXPECT_EQ(back.attrs, attrs);
    EXPECT_EQ(back.name, ev.name);
    EXPECT_EQ(back.time, ev.time);
  }
}

TEST(EventRefTest, LoggedDurationMirrorsRawEvent) {
  EventRows rows;
  auto append = [&rows](std::map<std::string, std::string> attrs) {
    RawEvent ev = Make("a", "2024-01-01 10:00", "vm-1");
    ev.attrs = std::move(attrs);
    return EventRef(&rows, rows.Append(ev));
  };
  // Canonical: value from the column.
  EXPECT_EQ(append({{"duration_ms", "900"}}).LoggedDuration()->millis(), 900);
  // Absent: NotFound, and -1 on the allocation-free path.
  const EventRef none = append({});
  EXPECT_TRUE(none.LoggedDuration().status().IsNotFound());
  EXPECT_EQ(none.LoggedDurationMsOrNeg(), -1);
  // Overflow row with a valid duration among extra keys still parses.
  const EventRef extra = append({{"duration_ms", "42"}, {"k", "v"}});
  EXPECT_EQ(extra.LoggedDuration()->millis(), 42);
  EXPECT_EQ(extra.LoggedDurationMsOrNeg(), 42);
  // Overflow row with a bad duration: InvalidArgument / -1, exactly like
  // RawEvent::LoggedDuration on the same attrs.
  const EventRef bad = append({{"duration_ms", "junk"}});
  EXPECT_TRUE(bad.LoggedDuration().status().IsInvalidArgument());
  EXPECT_EQ(bad.LoggedDurationMsOrNeg(), -1);
  const EventRef negative = append({{"duration_ms", "-1"}});
  EXPECT_TRUE(negative.LoggedDuration().status().IsInvalidArgument());
  EXPECT_EQ(negative.LoggedDurationMsOrNeg(), -1);
}

TEST(EventSpanTest, ForEachAppliesTimeFilter) {
  EventRows rows;
  rows.Append(Make("before", "2024-01-01 09:00", "vm-1"));
  rows.Append(Make("at_start", "2024-01-01 10:00", "vm-1"));
  rows.Append(Make("inside", "2024-01-01 12:00", "vm-1"));
  rows.Append(Make("at_end", "2024-01-01 14:00", "vm-1"));

  EventSpan span(Interval(T("2024-01-01 10:00"), T("2024-01-01 14:00")));
  span.AddSegment(EventSpan::Segment{
      .rows = &rows, .indices = nullptr, .first = 0,
      .last = static_cast<uint32_t>(rows.size())});
  EXPECT_EQ(span.UpperBound(), 4u);  // pre-filter bound

  std::vector<std::string> names;
  span.ForEach([&names](const EventRef& ev) {
    names.emplace_back(ev.name());
  });
  // Half-open [start, end): start included, end excluded.
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "at_start");
  EXPECT_EQ(names[1], "inside");
}

TEST(EventSpanTest, IndexSegmentsSelectRows) {
  EventRows rows;
  rows.Append(Make("r0", "2024-01-01 10:00", "vm-1"));
  rows.Append(Make("r1", "2024-01-01 11:00", "vm-2"));
  rows.Append(Make("r2", "2024-01-01 12:00", "vm-1"));
  const std::vector<uint32_t> picks = {0, 2};

  EventSpan span;  // no filter
  span.AddSegment(EventSpan::Segment{
      .rows = &rows, .indices = picks.data(), .first = 0,
      .last = static_cast<uint32_t>(picks.size())});
  std::vector<std::string> names;
  span.ForEach([&names](const EventRef& ev) {
    names.emplace_back(ev.name());
  });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "r0");
  EXPECT_EQ(names[1], "r2");
}

TEST(EventSpanTest, EmptySegmentsAreDroppedAndOverflowWorks) {
  EventRows rows;
  for (int i = 0; i < 12; ++i) {
    rows.Append(Make("e", "2024-01-01 10:00", "vm-1"));
  }
  EventSpan span;
  // Empty segments are not stored.
  span.AddSegment(EventSpan::Segment{.rows = &rows, .indices = nullptr,
                                     .first = 3, .last = 3});
  EXPECT_TRUE(span.empty());
  // More than kInlineSegments single-row segments spill to the overflow
  // vector without losing any.
  for (uint32_t i = 0; i < 12; ++i) {
    span.AddSegment(EventSpan::Segment{.rows = &rows, .indices = nullptr,
                                       .first = i, .last = i + 1});
  }
  EXPECT_EQ(span.segment_count(), 12u);
  size_t seen = 0;
  span.ForEach([&seen](const EventRef&) { ++seen; });
  EXPECT_EQ(seen, 12u);
}

TEST(EventSpanTest, MaterializeAllReconstructsEvents) {
  EventRows rows;
  RawEvent ev = Make("qemu_live_upgrade", "2024-01-01 10:00", "vm-1");
  ev.attrs["duration_ms"] = "800";
  rows.Append(ev);
  EventSpan span;
  span.AddSegment(EventSpan::Segment{.rows = &rows, .indices = nullptr,
                                     .first = 0, .last = 1});
  const std::vector<RawEvent> out = span.MaterializeAll();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, ev.name);
  EXPECT_EQ(out[0].time, ev.time);
  EXPECT_EQ(out[0].target, ev.target);
  EXPECT_EQ(out[0].level, ev.level);
  EXPECT_EQ(out[0].expire_interval, ev.expire_interval);
  EXPECT_EQ(out[0].attrs, ev.attrs);
}

}  // namespace
}  // namespace cdibot
