#include <gtest/gtest.h>

#include "event/catalog.h"

namespace cdibot {
namespace {

TEST(EventEnumsTest, CategoryRoundTrip) {
  for (StabilityCategory c :
       {StabilityCategory::kUnavailability, StabilityCategory::kPerformance,
        StabilityCategory::kControlPlane}) {
    auto parsed = StabilityCategoryFromString(StabilityCategoryToString(c));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), c);
  }
  EXPECT_FALSE(StabilityCategoryFromString("bogus").ok());
}

TEST(EventEnumsTest, SeverityRoundTripAndOrdering) {
  for (Severity s : {Severity::kInfo, Severity::kWarning, Severity::kCritical,
                     Severity::kFatal}) {
    auto parsed = SeverityFromString(SeverityToString(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), s);
  }
  EXPECT_LT(static_cast<int>(Severity::kInfo),
            static_cast<int>(Severity::kFatal));
  EXPECT_FALSE(SeverityFromString("bogus").ok());
}

TEST(RawEventTest, LoggedDurationParsing) {
  RawEvent ev;
  EXPECT_TRUE(ev.LoggedDuration().status().IsNotFound());
  ev.attrs["duration_ms"] = "1500";
  ASSERT_TRUE(ev.LoggedDuration().ok());
  EXPECT_EQ(ev.LoggedDuration()->millis(), 1500);
  ev.attrs["duration_ms"] = "abc";
  EXPECT_TRUE(ev.LoggedDuration().status().IsInvalidArgument());
  ev.attrs["duration_ms"] = "-5";
  EXPECT_TRUE(ev.LoggedDuration().status().IsInvalidArgument());
  ev.attrs["duration_ms"] = "12x";
  EXPECT_TRUE(ev.LoggedDuration().status().IsInvalidArgument());
}

TEST(EventCatalogTest, RegisterAndFind) {
  EventCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register({.name = "my_event",
                             .category = StabilityCategory::kPerformance,
                             .default_level = Severity::kWarning})
                  .ok());
  EXPECT_TRUE(catalog.Contains("my_event"));
  auto spec = catalog.Find("my_event");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->category, StabilityCategory::kPerformance);
  EXPECT_FALSE(catalog.Find("other").ok());
}

TEST(EventCatalogTest, RejectsDuplicatesAndEmptyName) {
  EventCatalog catalog;
  ASSERT_TRUE(catalog.Register({.name = "dup"}).ok());
  EXPECT_TRUE(catalog.Register({.name = "dup"}).IsAlreadyExists());
  EXPECT_TRUE(catalog.Register({.name = ""}).IsInvalidArgument());
}

TEST(EventCatalogTest, StatefulRequiresDetailNames) {
  EventCatalog catalog;
  EXPECT_TRUE(catalog
                  .Register({.name = "bad_stateful",
                             .period_kind = PeriodKind::kStateful})
                  .IsInvalidArgument());
}

TEST(EventCatalogTest, StatefulDetailNamesResolveToParent) {
  EventCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register({.name = "blackhole",
                             .period_kind = PeriodKind::kStateful,
                             .start_detail = "blackhole_add",
                             .end_detail = "blackhole_del"})
                  .ok());
  auto from_detail = catalog.Find("blackhole_add");
  ASSERT_TRUE(from_detail.ok());
  EXPECT_EQ(from_detail->name, "blackhole");
  // Detail names are reserved.
  EXPECT_TRUE(catalog.Register({.name = "blackhole_del"}).IsAlreadyExists());
}

TEST(EventCatalogTest, BuiltInCoversPaperEvents) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  // Events named in the paper's figures, tables, and cases.
  for (const char* name :
       {"slow_io", "packet_loss", "vcpu_high", "nic_flapping",
        "qemu_live_upgrade", "ddos_blackhole", "vm_allocation_failed",
        "inspect_cpu_power_tdp", "vm_hang", "net_cable_repaired"}) {
    EXPECT_TRUE(catalog.Contains(name)) << name;
  }
  // ddos_blackhole detail events resolve.
  EXPECT_TRUE(catalog.Contains("ddos_blackhole_add"));
  EXPECT_TRUE(catalog.Contains("ddos_blackhole_del"));
}

TEST(EventCatalogTest, BuiltInCategoriesMatchPaper) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  EXPECT_EQ(catalog.Find("slow_io")->category,
            StabilityCategory::kPerformance);
  EXPECT_EQ(catalog.Find("vm_crash")->category,
            StabilityCategory::kUnavailability);
  EXPECT_EQ(catalog.Find("vm_start_failed")->category,
            StabilityCategory::kControlPlane);
  EXPECT_EQ(catalog.Find("ddos_blackhole")->category,
            StabilityCategory::kUnavailability);
}

TEST(EventCatalogTest, BuiltInPeriodKinds) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  EXPECT_EQ(catalog.Find("slow_io")->period_kind, PeriodKind::kWindowed);
  EXPECT_EQ(catalog.Find("slow_io")->window, Duration::Minutes(1));
  EXPECT_EQ(catalog.Find("qemu_live_upgrade")->period_kind,
            PeriodKind::kLoggedDuration);
  EXPECT_EQ(catalog.Find("ddos_blackhole")->period_kind,
            PeriodKind::kStateful);
}

TEST(EventCatalogTest, SpecsPreserveRegistrationOrder) {
  EventCatalog catalog;
  ASSERT_TRUE(catalog.Register({.name = "a"}).ok());
  ASSERT_TRUE(catalog.Register({.name = "b"}).ok());
  ASSERT_EQ(catalog.specs().size(), 2u);
  EXPECT_EQ(catalog.specs()[0].name, "a");
  EXPECT_EQ(catalog.specs()[1].name, "b");
}

}  // namespace
}  // namespace cdibot
