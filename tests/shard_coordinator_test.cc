// Unit tests for the shard map and coordinator, plus the TSan-targeted
// *Concurrent* suite (gathers racing ingest, rebalance, shard failure and
// recovery). The concurrent tests are written to race if the coordinator's
// locking does: gathers take the topology lock shared while rebalance /
// failure / recovery take it exclusive, and each shard channel is
// serialized by a per-handle mutex. scripts/check.sh runs the *Concurrent*
// filter under TSan as the referee.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "shard/coordinator.h"
#include "shard/shard_map.h"
#include "weights/event_weights.h"

namespace cdibot::shard {
namespace {

// --- ShardMap --------------------------------------------------------------

std::vector<std::string> Ids(int n) {
  std::vector<std::string> ids;
  for (int i = 0; i < n; ++i) {
    std::string id = "vm-";
    if (i < 10) id += "0";
    id += std::to_string(i);
    ids.push_back(std::move(id));
  }
  return ids;
}

TEST(ShardMapTest, EverythingMapsToShardZeroUntilAssigned) {
  ShardMap map(3);
  EXPECT_EQ(map.OwnerOf(""), 0u);
  EXPECT_EQ(map.OwnerOf("vm-5"), 0u);
  EXPECT_EQ(map.OwnerOf("zzz"), 0u);
}

TEST(ShardMapTest, BalancedCutsContiguousNearEqualRuns) {
  const auto ids = Ids(12);
  const ShardMap map = ShardMap::Balanced(ids, 4);
  size_t prev = 0;
  std::vector<size_t> counts(4, 0);
  for (const std::string& id : ids) {
    const size_t owner = map.OwnerOf(id);
    ASSERT_LT(owner, 4u);
    ASSERT_GE(owner, prev) << "ownership must be non-decreasing over sorted "
                              "ids (contiguous ranges)";
    prev = owner;
    ++counts[owner];
  }
  for (size_t c : counts) EXPECT_EQ(c, 3u);
}

TEST(ShardMapTest, BalancedIsDeterministic) {
  const auto ids = Ids(17);
  const ShardMap a = ShardMap::Balanced(ids, 5);
  const ShardMap b = ShardMap::Balanced(ids, 5);
  for (const std::string& id : ids) {
    EXPECT_EQ(a.OwnerOf(id), b.OwnerOf(id)) << id;
  }
}

TEST(ShardMapTest, BalancedWithFewerIdsThanShards) {
  const auto ids = Ids(2);
  const ShardMap map = ShardMap::Balanced(ids, 5);
  // Every id still has exactly one owner in range.
  for (const std::string& id : ids) EXPECT_LT(map.OwnerOf(id), 5u);
}

TEST(ShardMapTest, AssignSplitsAtHalfOpenBoundaries) {
  ShardMap map = ShardMap::Balanced(Ids(12), 3);
  map.Assign({.lo = "vm-04", .hi = "vm-06"}, 2);
  EXPECT_EQ(map.OwnerOf("vm-04"), 2u);  // lo inclusive
  EXPECT_EQ(map.OwnerOf("vm-05"), 2u);
  EXPECT_NE(map.OwnerOf("vm-06"), 2u);  // hi exclusive
  EXPECT_EQ(map.OwnerOf("vm-03"), 0u);  // untouched below
}

TEST(ShardMapTest, AssignUnboundedTail) {
  ShardMap map = ShardMap::Balanced(Ids(6), 2);
  map.Assign({.lo = "vm-04", .hi = std::nullopt}, 0);
  EXPECT_EQ(map.OwnerOf("vm-04"), 0u);
  EXPECT_EQ(map.OwnerOf("zzzz"), 0u);
}

TEST(ShardMapTest, DiffMovesTransformFromIntoTo) {
  const auto ids = Ids(20);
  ShardMap from = ShardMap::Balanced(ids, 4);
  ShardMap to = ShardMap::Balanced(ids, 3);
  const auto moves = ShardMap::Diff(from, to);
  for (const ShardMap::Move& m : moves) {
    EXPECT_EQ(from.OwnerOf(m.range.lo), m.from);
    EXPECT_EQ(to.OwnerOf(m.range.lo), m.to);
    from.Assign(m.range, m.to);
  }
  for (const std::string& id : ids) {
    EXPECT_EQ(from.OwnerOf(id), to.OwnerOf(id)) << id;
  }
  // Probe boundaries between ids too, not only the ids themselves.
  EXPECT_EQ(from.OwnerOf("vm-05x"), to.OwnerOf("vm-05x"));
  EXPECT_EQ(from.OwnerOf(""), to.OwnerOf(""));
}

TEST(ShardMapTest, DiffOfIdenticalMapsIsEmpty) {
  const ShardMap map = ShardMap::Balanced(Ids(9), 3);
  EXPECT_TRUE(ShardMap::Diff(map, map).empty());
}

// --- Coordinator -----------------------------------------------------------

class ShardCoordinatorTest : public ::testing::Test {
 protected:
  ShardCoordinatorTest() : catalog_(EventCatalog::BuiltIn()) {
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 100}, {"packet_loss", 60}, {"vcpu_high", 40},
         {"vm_start_failed", 20}},
        4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
    day_ = Interval(TimePoint::Parse("2026-03-10 00:00").value(),
                    TimePoint::Parse("2026-03-11 00:00").value());
  }

  std::unique_ptr<ShardCoordinator> MakeFleet(size_t shards, int vms) {
    ShardTopologyOptions topo;
    topo.num_shards = shards;
    topo.engine.window = day_;
    auto coord = ShardCoordinator::Create(&catalog_, &*weights_, topo);
    EXPECT_TRUE(coord.ok()) << coord.status().ToString();
    std::vector<VmServiceInfo> fleet;
    for (const std::string& id : Ids(vms)) {
      VmServiceInfo vm;
      vm.vm_id = id;
      vm.service_period = day_;
      fleet.push_back(std::move(vm));
    }
    EXPECT_TRUE((*coord)->RegisterVms(fleet).ok());
    return std::move(*coord);
  }

  RawEvent Event(const std::string& target, int64_t minute,
                 const char* name = "slow_io") {
    RawEvent ev;
    ev.name = name;
    ev.time = day_.start + Duration::Minutes(minute);
    ev.target = target;
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(1);
    return ev;
  }

  EventCatalog catalog_;
  std::optional<EventWeightModel> weights_;
  Interval day_;
};

TEST_F(ShardCoordinatorTest, GatherDegradesOnDeadShardAndRecovers) {
  auto coord = MakeFleet(3, 9);
  for (int m = 0; m < 30; ++m) {
    ASSERT_TRUE(coord->Ingest(Event(Ids(9)[m % 9], 60 + m)).ok());
  }
  auto before = coord->Snapshot();
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before->quality.degraded);
  EXPECT_EQ(before->vms_evaluated, 9u);

  ASSERT_TRUE(coord->InjectShardFailure(1).ok());
  EXPECT_FALSE(coord->ShardAlive(1));
  auto degraded = coord->Snapshot();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->quality.degraded);
  EXPECT_GT(degraded->vms_deferred, 0u);
  EXPECT_LT(degraded->vms_evaluated, 9u);

  ASSERT_TRUE(coord->RecoverShard(1).ok());
  EXPECT_TRUE(coord->ShardAlive(1));
  auto after = coord->Snapshot();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->quality.degraded);
  // Recovery is bit-identical: checkpoint + outbox replay restore the
  // exact pre-failure state.
  EXPECT_EQ(before->fleet.unavailability, after->fleet.unavailability);
  EXPECT_EQ(before->fleet.performance, after->fleet.performance);
  EXPECT_EQ(before->fleet.control_plane, after->fleet.control_plane);

  const ShardFleetStats stats = coord->stats();
  EXPECT_EQ(stats.shard_failures, 1u);
  EXPECT_EQ(stats.shards_recovered, 1u);
  EXPECT_EQ(stats.shards_alive, 3u);
  EXPECT_GE(stats.degraded_gathers, 1u);
}

TEST_F(ShardCoordinatorTest, SnapshotFailsOnlyWhenNoShardResponds) {
  auto coord = MakeFleet(2, 4);
  ASSERT_TRUE(coord->InjectShardFailure(0).ok());
  EXPECT_TRUE(coord->Snapshot().ok());  // one survivor: degraded, not dead
  ASSERT_TRUE(coord->InjectShardFailure(1).ok());
  const auto dead = coord->Snapshot();
  EXPECT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
}

TEST_F(ShardCoordinatorTest, EventsBufferedDuringOutageDeliverAfterRecovery) {
  auto coord = MakeFleet(2, 4);
  const std::string victim_vm = Ids(4)[0];
  const size_t owner = coord->Map().OwnerOf(victim_vm);
  ASSERT_TRUE(coord->InjectShardFailure(owner).ok());
  // Routed to the dead owner: buffered coordinator-side, not lost.
  ASSERT_TRUE(coord->Ingest(Event(victim_vm, 120)).ok());
  ASSERT_TRUE(coord->RecoverShard(owner).ok());
  auto snap = coord->Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap->quality.degraded);
  bool found = false;
  for (const auto& rec : snap->per_event) {
    found |= rec.vm_id == victim_vm;
  }
  EXPECT_TRUE(found) << "event ingested during the outage must surface "
                        "after recovery";
}

TEST_F(ShardCoordinatorTest, WatermarkIsMinAcrossShardsAndPinsOnFailure) {
  auto coord = MakeFleet(3, 6);
  const TimePoint t1 = day_.start + Duration::Hours(6);
  ASSERT_TRUE(coord->AdvanceWatermarkTo(t1).ok());
  EXPECT_EQ(coord->Watermark(), t1);

  ASSERT_TRUE(coord->InjectShardFailure(2).ok());
  const TimePoint t2 = day_.start + Duration::Hours(12);
  ASSERT_TRUE(coord->AdvanceWatermarkTo(t2).ok());
  // The dead shard pins the global min at its last reported value.
  EXPECT_EQ(coord->Watermark(), t1);

  ASSERT_TRUE(coord->RecoverShard(2).ok());
  // Recovery re-advances to the highest requested target.
  EXPECT_EQ(coord->Watermark(), t2);
}

TEST_F(ShardCoordinatorTest, RebalanceKeepsSnapshotStable) {
  auto coord = MakeFleet(4, 16);
  for (int m = 0; m < 64; ++m) {
    ASSERT_TRUE(coord->Ingest(Event(Ids(16)[m % 16], m)).ok());
  }
  auto before = coord->Snapshot();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(coord->Rebalance().ok());
  auto after = coord->Snapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->fleet.unavailability, after->fleet.unavailability);
  EXPECT_EQ(before->fleet.performance, after->fleet.performance);
  EXPECT_EQ(before->fleet.control_plane, after->fleet.control_plane);
  EXPECT_EQ(before->per_vm.size(), after->per_vm.size());
}

TEST_F(ShardCoordinatorTest, LateRegistrationRoutesByExistingMap) {
  auto coord = MakeFleet(2, 4);
  VmServiceInfo late;
  late.vm_id = "vm-99";
  late.service_period = day_;
  ASSERT_TRUE(coord->RegisterVm(late).ok());
  ASSERT_TRUE(coord->Ingest(Event("vm-99", 200)).ok());
  auto snap = coord->Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->vms_evaluated, 5u);
}

// --- TSan-targeted concurrent suite ---------------------------------------
//
// Run under scripts/check.sh's CDIBOT_TSAN stage with
// --gtest_filter='*Concurrent*'. Iteration counts are deliberately small:
// TSan catches ordering violations on any interleaving it observes, and
// these loops force gathers, ingest, rebalance, failure and recovery to
// overlap continuously.

TEST_F(ShardCoordinatorTest, ConcurrentGathersRaceIngestAndRebalance) {
  auto coord = MakeFleet(4, 16);
  const auto ids = Ids(16);
  std::atomic<bool> stop{false};
  std::atomic<int> gather_errors{0};

  std::vector<std::thread> gatherers;
  for (int g = 0; g < 3; ++g) {
    gatherers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = coord->Snapshot();
        if (!snap.ok()) gather_errors.fetch_add(1);
      }
    });
  }
  std::thread ingester([&] {
    int m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)coord->Ingest(Event(ids[static_cast<size_t>(m) % ids.size()],
                                m % (24 * 60)));
      ++m;
    }
  });
  std::thread watermarker([&] {
    int h = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)coord->AdvanceWatermarkTo(day_.start + Duration::Minutes(h % 1440));
      (void)coord->Watermark();
      ++h;
    }
  });
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(coord->Rebalance().ok());
  }
  stop.store(true);
  for (auto& t : gatherers) t.join();
  ingester.join();
  watermarker.join();
  // All shards alive throughout: every gather must have succeeded.
  EXPECT_EQ(gather_errors.load(), 0);
  EXPECT_EQ(coord->stats().rebalances, 8u);
}

TEST_F(ShardCoordinatorTest, ConcurrentGathersRaceFailureAndRecovery) {
  auto coord = MakeFleet(4, 12);
  const auto ids = Ids(12);
  for (int m = 0; m < 24; ++m) {
    ASSERT_TRUE(coord->Ingest(Event(ids[static_cast<size_t>(m) % 12], m)).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> hard_errors{0};

  std::vector<std::thread> gatherers;
  for (int g = 0; g < 3; ++g) {
    gatherers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = coord->Snapshot();
        // With at most one shard of four down, gathers degrade but never
        // fail; a failure here means the coordinator lost more state than
        // the injected fault.
        if (!snap.ok()) hard_errors.fetch_add(1);
      }
    });
  }
  std::thread ingester([&] {
    int m = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)coord->Ingest(
          Event(ids[static_cast<size_t>(m) % ids.size()], m % 1440));
      ++m;
    }
  });
  for (int round = 0; round < 6; ++round) {
    const size_t victim = static_cast<size_t>(round) % 4;
    ASSERT_TRUE(coord->InjectShardFailure(victim).ok());
    ASSERT_TRUE(coord->RecoverShard(victim).ok());
  }
  stop.store(true);
  for (auto& t : gatherers) t.join();
  ingester.join();
  EXPECT_EQ(hard_errors.load(), 0);
  const ShardFleetStats stats = coord->stats();
  EXPECT_EQ(stats.shard_failures, 6u);
  EXPECT_EQ(stats.shards_recovered, 6u);
  EXPECT_EQ(stats.shards_alive, 4u);
  // The fleet must end consistent: a settled snapshot sees every VM.
  auto final_snap = coord->Snapshot();
  ASSERT_TRUE(final_snap.ok());
  EXPECT_EQ(final_snap->vms_evaluated, 12u);
  EXPECT_FALSE(final_snap->quality.degraded);
}

TEST_F(ShardCoordinatorTest, ConcurrentRegistrationRacesGathers) {
  auto coord = MakeFleet(3, 6);
  std::atomic<bool> stop{false};
  std::vector<std::thread> gatherers;
  for (int g = 0; g < 2; ++g) {
    gatherers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)coord->Snapshot();
        (void)coord->FleetCdi();
      }
    });
  }
  for (int i = 0; i < 24; ++i) {
    VmServiceInfo vm;
    vm.vm_id = "late-" + std::to_string(100 + i);
    vm.service_period = day_;
    ASSERT_TRUE(coord->RegisterVm(vm).ok());
    ASSERT_TRUE(coord->Ingest(Event(vm.vm_id, i * 10)).ok());
  }
  stop.store(true);
  for (auto& t : gatherers) t.join();
  auto snap = coord->Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->vms_evaluated, 30u);
}

}  // namespace
}  // namespace cdibot::shard
