#include <gtest/gtest.h>

#include <algorithm>

#include "rules/coverage.h"
#include "rules/meta_events.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(RuleCoverageTest, BuiltInRulesCoverTheirEvents) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  auto engine = RuleEngine::BuiltIn().value();
  const RuleCoverageReport report = AnalyzeRuleCoverage(engine, catalog);

  // slow_io, nic_flapping, vm_hang are referenced by the built-in rules.
  ASSERT_EQ(report.covered_events.count("slow_io"), 1u);
  EXPECT_EQ(report.covered_events.at("slow_io"),
            (std::vector<std::string>{"nic_error_cause_slow_io"}));
  EXPECT_EQ(report.covered_events.count("vm_hang"), 1u);

  // Plenty of catalog events have no rule yet: they are review candidates.
  EXPECT_FALSE(report.uncovered_events.empty());
  EXPECT_NE(std::find(report.uncovered_events.begin(),
                      report.uncovered_events.end(), "packet_loss"),
            report.uncovered_events.end());

  // Informational events are not flagged.
  EXPECT_EQ(std::find(report.uncovered_events.begin(),
                      report.uncovered_events.end(), "net_cable_repaired"),
            report.uncovered_events.end());
}

TEST(RuleCoverageTest, UnknownReferencesAreFlagged) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  RuleEngine engine;
  ASSERT_TRUE(engine.Register("typo_rule", "slow_io && slw_io_typo",
                              {{"nc_lock", 1}})
                  .ok());
  const RuleCoverageReport report = AnalyzeRuleCoverage(engine, catalog);
  ASSERT_EQ(report.unknown_references.count("typo_rule"), 1u);
  EXPECT_EQ(report.unknown_references.at("typo_rule"),
            (std::vector<std::string>{"slw_io_typo"}));
}

TEST(RuleCoverageTest, MatchHistoryIdentifiesDeadRules) {
  const EventCatalog catalog = EventCatalog::BuiltIn();
  auto engine = RuleEngine::BuiltIn().value();
  std::vector<RuleMatch> history = {
      RuleMatch{.rule_name = "nic_error_cause_slow_io",
                .target = "vm-1",
                .time = T("2024-01-01 12:00")},
      RuleMatch{.rule_name = "nic_error_cause_slow_io",
                .target = "vm-2",
                .time = T("2024-01-02 12:00")},
  };
  const RuleCoverageReport report =
      AnalyzeRuleCoverage(engine, catalog, history);
  EXPECT_EQ(report.match_counts.at("nic_error_cause_slow_io"), 2u);
  EXPECT_EQ(report.match_counts.at("nic_error_cause_vm_hang"), 0u);
  EXPECT_NE(std::find(report.unmatched_rules.begin(),
                      report.unmatched_rules.end(),
                      "nic_error_cause_vm_hang"),
            report.unmatched_rules.end());
  EXPECT_EQ(std::find(report.unmatched_rules.begin(),
                      report.unmatched_rules.end(),
                      "nic_error_cause_slow_io"),
            report.unmatched_rules.end());
}

TEST(MetaEventsTest, DerivesProductConfigurationNames) {
  FleetTopology topo;
  ASSERT_TRUE(topo.AddCluster("r0", "az0", "c0").ok());
  ASSERT_TRUE(topo.AddNc({.nc_id = "nc0",
                          .cluster_id = "c0",
                          .arch = DeploymentArch::kHybrid,
                          .model = "gen2"})
                  .ok());
  ASSERT_TRUE(
      topo.AddVm({.vm_id = "vm0", .nc_id = "nc0", .type = VmType::kShared})
          .ok());
  auto meta = MetaEventsForVm(topo, "vm0");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(*meta, (std::set<std::string>{"shared_vm", "hybrid_host",
                                          "model_gen2"}));
  EXPECT_TRUE(MetaEventsForVm(topo, "ghost").status().IsNotFound());
}

TEST(MetaEventsTest, SuppressesContentionRuleOnSharedVms) {
  // Sec. II-F1's exact scenario: CPU contention on a shared VM is within
  // the product definition, so the rule excludes shared_vm.
  FleetTopology topo;
  ASSERT_TRUE(topo.AddCluster("r0", "az0", "c0").ok());
  ASSERT_TRUE(topo.AddNc({.nc_id = "nc0", .cluster_id = "c0"}).ok());
  ASSERT_TRUE(topo.AddVm({.vm_id = "vm-shared",
                          .nc_id = "nc0",
                          .type = VmType::kShared})
                  .ok());
  ASSERT_TRUE(topo.AddVm({.vm_id = "vm-dedicated",
                          .nc_id = "nc0",
                          .type = VmType::kDedicated})
                  .ok());

  RuleEngine engine;
  ASSERT_TRUE(engine.Register("contention_on_dedicated",
                              "vcpu_high && !shared_vm",
                              {{"live_migration", 9}})
                  .ok());
  for (const char* vm : {"vm-shared", "vm-dedicated"}) {
    std::set<std::string> active = {"vcpu_high"};
    auto meta = MetaEventsForVm(topo, vm).value();
    active.insert(meta.begin(), meta.end());
    const auto matches = engine.Match(active, vm, T("2024-01-01 00:00"));
    if (std::string(vm) == "vm-shared") {
      EXPECT_TRUE(matches.empty());
    } else {
      EXPECT_EQ(matches.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace cdibot
