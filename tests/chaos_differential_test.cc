// Chaos differential suite: the CDI pipeline is driven through the full
// fault-plan corpus and judged against the clean batch job.
//
//  * Lossless delivery faults (duplication, reorder, delay, and mixes)
//    must leave every per-VM CDI bit-identical to the clean batch run and
//    set no degraded flag anywhere — the resolver dedups and is
//    arrival-order invariant, so a mangled-but-complete stream is
//    indistinguishable from a clean one.
//  * Detectably lossy faults (drop, collector outage, malform, and mixes)
//    must flag every affected VM as degraded via the quarantine sink and
//    the delivery-manifest gap check, and any VM whose CDI deviates from
//    the clean value must carry the flag. Nothing may crash: every Ingest
//    returns OK, no VM fails.
//  * Clock skew alters ground truth invisibly (the skewed event still
//    arrives); the suite only requires that the pipeline survives it.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cdi/aggregate.h"
#include "cdi/pipeline.h"
#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/rng.h"
#include "stream/streaming_engine.h"

namespace cdibot {
namespace {

using chaos::ChaosInjector;
using chaos::FaultPlan;
using chaos::InjectedStream;

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

/// A clean scenario for chaos injection. Every event is structurally valid
/// and unique (distinct minutes per burst region), so the injector's
/// delivery manifest counts exactly match what a faithful transport would
/// deliver — duplicates in the CLEAN stream would make "missing" ambiguous.
struct ChaosScenario {
  Interval day;
  std::vector<VmServiceInfo> vms;
  std::vector<RawEvent> clean;
};

ChaosScenario MakeScenario(uint64_t seed) {
  Rng rng(seed);
  ChaosScenario sc;
  sc.day = Interval(T("2026-05-20 00:00"), T("2026-05-21 00:00"));

  const char* names[] = {"slow_io", "packet_loss", "vcpu_high",
                         "vm_start_failed"};
  const Severity levels[] = {Severity::kWarning, Severity::kCritical,
                             Severity::kFatal};
  const int num_vms = static_cast<int>(rng.UniformInt(8, 16));
  for (int v = 0; v < num_vms; ++v) {
    VmServiceInfo vm;
    vm.vm_id = "vm-" + std::to_string(v);
    vm.dims = {{"region", "r0"},
               {"az", rng.Bernoulli(0.5) ? "r0-az0" : "r0-az1"}};
    vm.service_period = sc.day;
    sc.vms.push_back(vm);

    // Up to 4 bursts, each confined to its own ~5h region of the day so no
    // two events of a VM can share (name, minute).
    const int bursts = static_cast<int>(rng.UniformInt(1, 4));
    for (int b = 0; b < bursts; ++b) {
      const int64_t region_start = b * 300;
      const int64_t start = region_start + rng.UniformInt(0, 240);
      const int len = static_cast<int>(rng.UniformInt(3, 50));
      const char* name = names[rng.UniformInt(0, 3)];
      const Severity level = levels[rng.UniformInt(0, 2)];
      for (int i = 0; i < len; ++i) {
        RawEvent ev;
        ev.name = name;
        ev.time = sc.day.start + Duration::Minutes(start + i);
        ev.target = vm.vm_id;
        ev.level = level;
        ev.expire_interval = Duration::Hours(24);
        sc.clean.push_back(std::move(ev));
      }
    }
  }
  return sc;
}

/// What the suite asserts for one plan.
enum class Expectation {
  /// Complete information delivered: bit-identical to the clean batch run,
  /// no degraded flags.
  kBitExact,
  /// Information destroyed detectably: every affected VM degraded, any
  /// CDI deviation flagged, zero crashes.
  kDegraded,
  /// Information altered invisibly (clock skew): pipeline survives.
  kNoCrash,
};

struct ChaosCase {
  FaultPlan plan;
  Expectation expect;
};

/// The seeded plan corpus (>= 12 plans, every preset represented).
std::vector<ChaosCase> Corpus() {
  std::vector<ChaosCase> cases;
  cases.push_back({chaos::CleanPlan(), Expectation::kBitExact});
  cases.push_back({chaos::DuplicationPlan(101), Expectation::kBitExact});
  cases.push_back({chaos::DuplicationPlan(102, 0.5, 4),
                   Expectation::kBitExact});
  cases.push_back({chaos::ReorderPlan(201), Expectation::kBitExact});
  cases.push_back({chaos::ReorderPlan(202, 0.8, 128),
                   Expectation::kBitExact});
  cases.push_back({chaos::DelayPlan(301), Expectation::kBitExact});
  cases.push_back({chaos::MixedLosslessPlan(401), Expectation::kBitExact});
  cases.push_back({chaos::MixedLosslessPlan(402), Expectation::kBitExact});
  // Metric corruption and flaky I/O have no event-stream faults; the event
  // path must be untouched (their own surfaces are covered elsewhere).
  cases.push_back({chaos::MetricCorruptionPlan(501), Expectation::kBitExact});
  cases.push_back({chaos::FlakyIoPlan(601), Expectation::kBitExact});
  cases.push_back({chaos::DropPlan(701), Expectation::kDegraded});
  cases.push_back({chaos::DropPlan(702, 0.3), Expectation::kDegraded});
  cases.push_back({chaos::CollectorOutagePlan(801), Expectation::kDegraded});
  cases.push_back({chaos::MalformPlan(901), Expectation::kDegraded});
  cases.push_back({chaos::MixedLossyPlan(1001), Expectation::kDegraded});
  cases.push_back({chaos::MixedLossyPlan(1002), Expectation::kDegraded});
  cases.push_back({chaos::ClockSkewPlan(1101), Expectation::kNoCrash});
  return cases;
}

class ChaosDifferentialTest : public ::testing::TestWithParam<size_t> {
 protected:
  ChaosDifferentialTest() : catalog_(EventCatalog::BuiltIn()) {
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 100}, {"packet_loss", 60}, {"vcpu_high", 40},
         {"vm_start_failed", 20}},
        4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
  }

  DailyCdiResult RunCleanBatch(const ChaosScenario& sc) {
    EventLog log;
    log.AppendBatch(sc.clean);
    DailyCdiJob job(&log, &catalog_, &*weights_, {});
    auto result = job.Run(sc.vms, sc.day);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  /// Feeds the injected stream to a streaming engine; every Ingest must
  /// succeed (malformed input degrades, never errors).
  DailyCdiResult RunInjectedStream(const ChaosScenario& sc,
                                   const InjectedStream& injected) {
    StreamingCdiOptions opts;
    opts.window = sc.day;
    opts.num_shards = 4;
    auto engine =
        StreamingCdiEngine::Create(&catalog_, &*weights_, opts).value();
    for (const VmServiceInfo& vm : sc.vms) {
      EXPECT_TRUE(engine.RegisterVm(vm).ok());
    }
    for (const auto& [target, count] : injected.announced) {
      engine.ExpectDelivery(target, count);
    }
    for (const RawEvent& ev : injected.arrivals) {
      const Status st = engine.Ingest(ev);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    auto snap = engine.Snapshot();
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    return std::move(snap).value();
  }

  EventCatalog catalog_;
  std::optional<EventWeightModel> weights_;
};

TEST_P(ChaosDifferentialTest, PlanBehavesAsSpecified) {
  const ChaosCase kase = Corpus()[GetParam()];
  SCOPED_TRACE("plan: " + kase.plan.name +
               " seed: " + std::to_string(kase.plan.seed));
  const ChaosScenario sc = MakeScenario(7000 + kase.plan.seed);
  const DailyCdiResult batch = RunCleanBatch(sc);

  ChaosInjector injector(kase.plan);
  const InjectedStream injected = injector.ApplyToEvents(sc.clean);
  const DailyCdiResult snap = RunInjectedStream(sc, injected);

  // Zero crashes, ever: no VM may fail regardless of what was injected.
  EXPECT_EQ(snap.vms_failed, 0u);
  EXPECT_TRUE(snap.first_vm_error.ok());
  EXPECT_EQ(snap.vms_evaluated, batch.vms_evaluated);

  std::map<std::string, const VmCdiRecord*> by_id;
  for (const VmCdiRecord& rec : batch.per_vm) by_id[rec.vm_id] = &rec;
  ASSERT_EQ(snap.per_vm.size(), batch.per_vm.size());

  switch (kase.expect) {
    case Expectation::kBitExact: {
      for (const VmCdiRecord& rec : snap.per_vm) {
        auto it = by_id.find(rec.vm_id);
        ASSERT_NE(it, by_id.end()) << rec.vm_id;
        EXPECT_EQ(rec.cdi.unavailability, it->second->cdi.unavailability)
            << rec.vm_id;
        EXPECT_EQ(rec.cdi.performance, it->second->cdi.performance)
            << rec.vm_id;
        EXPECT_EQ(rec.cdi.control_plane, it->second->cdi.control_plane)
            << rec.vm_id;
        EXPECT_FALSE(rec.quality.degraded) << rec.vm_id;
      }
      EXPECT_EQ(snap.vms_degraded, 0u);
      EXPECT_FALSE(snap.quality.degraded);
      EXPECT_EQ(snap.quality.events_quarantined, 0u);
      EXPECT_EQ(snap.quality.events_missing, 0u);
      break;
    }
    case Expectation::kDegraded: {
      // The injector must actually have destroyed something, or the case
      // proves nothing.
      ASSERT_FALSE(injected.affected_targets.empty());
      for (const std::string& target : injected.affected_targets) {
        SCOPED_TRACE("affected target: " + target);
        bool found = false;
        for (const VmCdiRecord& rec : snap.per_vm) {
          if (rec.vm_id != target) continue;
          found = true;
          EXPECT_TRUE(rec.quality.degraded);
        }
        EXPECT_TRUE(found);
      }
      // Any deviation from the clean CDI must be flagged — a silently
      // wrong-but-confident number is the failure mode this layer exists
      // to prevent.
      for (const VmCdiRecord& rec : snap.per_vm) {
        auto it = by_id.find(rec.vm_id);
        ASSERT_NE(it, by_id.end());
        const bool deviates =
            std::abs(rec.cdi.unavailability - it->second->cdi.unavailability) >
                1e-9 ||
            std::abs(rec.cdi.performance - it->second->cdi.performance) >
                1e-9 ||
            std::abs(rec.cdi.control_plane - it->second->cdi.control_plane) >
                1e-9;
        if (deviates) {
          EXPECT_TRUE(rec.quality.degraded) << rec.vm_id;
        }
      }
      EXPECT_GT(snap.vms_degraded, 0u);
      EXPECT_TRUE(snap.quality.degraded);
      break;
    }
    case Expectation::kNoCrash: {
      EXPECT_GT(injected.stats.clock_skews_applied, 0u);
      EXPECT_TRUE(std::isfinite(snap.fleet.performance));
      EXPECT_TRUE(std::isfinite(snap.fleet.unavailability));
      break;
    }
  }

  // Deterministic re-aggregation: folding the snapshot's sorted per-VM
  // rows back through the fleet aggregator reproduces the reported fleet
  // CDI, so a BI layer recomputing from the table gets the same number.
  FleetCdiPartial partial;
  for (const VmCdiRecord& rec : snap.per_vm) partial.AddVm(rec.cdi);
  const VmCdi refleet = partial.Finalize();
  EXPECT_NEAR(refleet.unavailability, snap.fleet.unavailability, 1e-9);
  EXPECT_NEAR(refleet.performance, snap.fleet.performance, 1e-9);
  EXPECT_NEAR(refleet.control_plane, snap.fleet.control_plane, 1e-9);
}

// The injector itself is deterministic: one (plan, input) pair, one output.
TEST(ChaosInjectorDeterminism, SamePlanSameStream) {
  const ChaosScenario sc = MakeScenario(99);
  for (size_t i = 0; i < Corpus().size(); ++i) {
    const ChaosCase kase = Corpus()[i];
    ChaosInjector a(kase.plan);
    ChaosInjector b(kase.plan);
    const InjectedStream sa = a.ApplyToEvents(sc.clean);
    const InjectedStream sb = b.ApplyToEvents(sc.clean);
    ASSERT_EQ(sa.arrivals.size(), sb.arrivals.size()) << kase.plan.name;
    for (size_t j = 0; j < sa.arrivals.size(); ++j) {
      EXPECT_EQ(sa.arrivals[j].name, sb.arrivals[j].name);
      EXPECT_EQ(sa.arrivals[j].time, sb.arrivals[j].time);
      EXPECT_EQ(sa.arrivals[j].target, sb.arrivals[j].target);
    }
    EXPECT_EQ(sa.affected_targets, sb.affected_targets) << kase.plan.name;
    EXPECT_EQ(sa.stats.events_dropped, sb.stats.events_dropped);
    EXPECT_EQ(sa.stats.duplicates_injected, sb.stats.duplicates_injected);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ChaosDifferentialTest,
                         ::testing::Range<size_t>(0, Corpus().size()));

}  // namespace
}  // namespace cdibot
