#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "stats/workflow.h"

namespace cdibot::stats {
namespace {

Sample NormalSample(cdibot::Rng* rng, size_t n, double mean, double sd) {
  Sample x;
  x.reserve(n);
  for (size_t i = 0; i < n; ++i) x.push_back(rng->Normal(mean, sd));
  return x;
}

Sample SkewedSample(cdibot::Rng* rng, size_t n, double scale) {
  Sample x;
  x.reserve(n);
  for (size_t i = 0; i < n; ++i) x.push_back(scale * rng->Exponential(1.0));
  return x;
}

// Fig. 10 branch 1: normal + equal variances -> one-way ANOVA + Tukey HSD.
TEST(WorkflowTest, NormalEqualVarianceBranch) {
  cdibot::Rng rng(31);
  auto res = RunHypothesisWorkflow({NormalSample(&rng, 50, 0.0, 1.0),
                                    NormalSample(&rng, 50, 2.0, 1.0),
                                    NormalSample(&rng, 50, 4.0, 1.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->all_normal);
  EXPECT_TRUE(res->equal_variances);
  EXPECT_EQ(res->omnibus.method, "one-way ANOVA");
  EXPECT_TRUE(res->omnibus_significant);
  EXPECT_EQ(res->posthoc_method, "Tukey HSD");
  EXPECT_EQ(res->posthoc.size(), 3u);
}

// Branch 1b: unequal group sizes pick Tukey-Kramer.
TEST(WorkflowTest, NormalEqualVarianceUnequalSizesUsesKramer) {
  cdibot::Rng rng(32);
  auto res = RunHypothesisWorkflow({NormalSample(&rng, 40, 0.0, 1.0),
                                    NormalSample(&rng, 60, 2.0, 1.0),
                                    NormalSample(&rng, 50, 4.0, 1.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->posthoc_method, "Tukey-Kramer");
}

// Fig. 10 branch 2: normal + unequal variances -> Welch + Games-Howell.
TEST(WorkflowTest, NormalUnequalVarianceBranch) {
  cdibot::Rng rng(33);
  auto res = RunHypothesisWorkflow({NormalSample(&rng, 60, 0.0, 0.3),
                                    NormalSample(&rng, 60, 2.0, 3.0),
                                    NormalSample(&rng, 60, 6.0, 6.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->all_normal);
  EXPECT_FALSE(res->equal_variances);
  EXPECT_EQ(res->omnibus.method, "Welch's ANOVA");
  ASSERT_TRUE(res->omnibus_significant);
  EXPECT_EQ(res->posthoc_method, "Games-Howell");
}

// Fig. 10 branch 3: non-normal -> Kruskal-Wallis + Dunn.
TEST(WorkflowTest, NonNormalBranch) {
  cdibot::Rng rng(34);
  auto res = RunHypothesisWorkflow({SkewedSample(&rng, 80, 1.0),
                                    SkewedSample(&rng, 80, 5.0),
                                    SkewedSample(&rng, 80, 20.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->all_normal);
  EXPECT_EQ(res->omnibus.method, "Kruskal-Wallis H");
  ASSERT_TRUE(res->omnibus_significant);
  EXPECT_EQ(res->posthoc_method, "Dunn");
}

TEST(WorkflowTest, SmallGroupsCountAsNonNormal) {
  auto res = RunHypothesisWorkflow({{1.0, 2.0, 3.0}, {7.0, 8.0, 9.0}});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->all_normal);
  EXPECT_EQ(res->omnibus.method, "Kruskal-Wallis H");
}

TEST(WorkflowTest, InsignificantOmnibusSkipsPosthoc) {
  cdibot::Rng rng(35);
  auto res = RunHypothesisWorkflow({NormalSample(&rng, 40, 0.0, 1.0),
                                    NormalSample(&rng, 40, 0.0, 1.0),
                                    NormalSample(&rng, 40, 0.0, 1.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->omnibus_significant);
  EXPECT_TRUE(res->posthoc_method.empty());
  EXPECT_TRUE(res->posthoc.empty());
}

TEST(WorkflowTest, TwoGroupsNeverRunPosthoc) {
  cdibot::Rng rng(36);
  auto res = RunHypothesisWorkflow({NormalSample(&rng, 40, 0.0, 1.0),
                                    NormalSample(&rng, 40, 10.0, 1.0)});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->omnibus_significant);
  EXPECT_TRUE(res->posthoc_method.empty());
}

TEST(WorkflowTest, ConstantGroupsFallToNonNormalBranch) {
  // Degenerate samples cannot be normal; the workflow still completes via
  // Kruskal-Wallis (which handles ties here).
  auto res = RunHypothesisWorkflow(
      {{1.0, 1.0, 1.0, 2.0}, {5.0, 5.0, 5.0, 6.0}});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->all_normal);
  EXPECT_EQ(res->omnibus.method, "Kruskal-Wallis H");
}

TEST(WorkflowTest, AlphaControlsDecisions) {
  cdibot::Rng rng(37);
  const std::vector<Sample> groups = {NormalSample(&rng, 25, 0.0, 1.0),
                                      NormalSample(&rng, 25, 0.7, 1.0)};
  WorkflowOptions strict;
  strict.alpha = 1e-6;
  auto res = RunHypothesisWorkflow(groups, strict);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->omnibus_significant);
}

TEST(WorkflowTest, RejectsSingleGroup) {
  EXPECT_TRUE(RunHypothesisWorkflow({{1.0, 2.0}})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace cdibot::stats
