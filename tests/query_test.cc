#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dataflow/query.h"

namespace cdibot::dataflow {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : pool_(4), engine_({.pool = &pool_, .min_parallel_rows = 1}) {
    Table t(Schema({Field{"vm_id", ValueType::kString},
                    Field{"region", ValueType::kString},
                    Field{"az", ValueType::kString},
                    Field{"cdi_p", ValueType::kDouble},
                    Field{"service_minutes", ValueType::kDouble}}));
    auto add = [&t](const char* vm, const char* region, const char* az,
                    double cdi, double svc) {
      t.AppendUnchecked({Value(vm), Value(region), Value(az), Value(cdi),
                         Value(svc)});
    };
    add("vm-1", "r0", "az0", 0.020, 60);
    add("vm-2", "r0", "az0", 0.002, 1440);
    add("vm-3", "r0", "az1", 0.004, 1000);
    add("vm-4", "r1", "az2", 0.100, 500);
    engine_.RegisterTable("vm_cdi", std::move(t));
  }

  ThreadPool pool_;
  QueryEngine engine_;
};

TEST_F(QueryTest, SimpleProjection) {
  auto result = engine_.Execute("SELECT vm_id, cdi_p FROM vm_cdi");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->schema().num_fields(), 2u);
  EXPECT_EQ(result->At(0, "vm_id")->AsString().value(), "vm-1");
}

TEST_F(QueryTest, WhereFilters) {
  auto result = engine_.Execute(
      "SELECT vm_id FROM vm_cdi WHERE region = 'r0' AND cdi_p > 0.003");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);  // vm-1 and vm-3
}

TEST_F(QueryTest, WhereOrAndNotAndParens) {
  auto result = engine_.Execute(
      "SELECT vm_id FROM vm_cdi WHERE NOT (region = 'r0' OR cdi_p >= 0.1)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 0u);
  result = engine_.Execute(
      "SELECT vm_id FROM vm_cdi WHERE region = 'r1' OR az = 'az1'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(QueryTest, GroupByWithWavgImplementsEq4) {
  // Formula 4 re-aggregation at the AZ level, exactly as Sec. V describes.
  auto result = engine_.Execute(
      "SELECT az, WAVG(cdi_p, service_minutes) AS q, COUNT(*) AS n "
      "FROM vm_cdi GROUP BY az ORDER BY az");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->At(0, "az")->AsString().value(), "az0");
  EXPECT_NEAR(result->At(0, "q")->AsDouble().value(),
              (60 * 0.020 + 1440 * 0.002) / 1500.0, 1e-12);
  EXPECT_EQ(result->At(0, "n")->AsInt().value(), 2);
  EXPECT_NEAR(result->At(1, "q")->AsDouble().value(), 0.004, 1e-12);
}

TEST_F(QueryTest, HavingFiltersAggregatedGroups) {
  auto result = engine_.Execute(
      "SELECT az, COUNT(*) AS n FROM vm_cdi GROUP BY az "
      "HAVING n >= 2 ORDER BY az");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);  // only az0 has 2 VMs
  EXPECT_EQ(result->At(0, "az")->AsString().value(), "az0");

  result = engine_.Execute(
      "SELECT az, WAVG(cdi_p, service_minutes) AS q FROM vm_cdi "
      "GROUP BY az HAVING q > 0.003 AND n >= 0");
  // 'n' is not a column of the aggregated output: NotFound.
  EXPECT_TRUE(result.status().IsNotFound());

  result = engine_.Execute(
      "SELECT az, WAVG(cdi_p, service_minutes) AS q FROM vm_cdi "
      "GROUP BY az HAVING q > 0.003 ORDER BY q DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 2u);  // az2 (0.1) and az1 (0.004)
}

TEST_F(QueryTest, HavingWithoutAggregationFails) {
  EXPECT_TRUE(engine_.Execute("SELECT vm_id FROM vm_cdi HAVING vm_id = 'x'")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, GlobalAggregateWithoutGroupBy) {
  auto result = engine_.Execute(
      "SELECT COUNT(*) AS n, SUM(service_minutes) AS total, MIN(cdi_p) AS "
      "lo, MAX(cdi_p) AS hi, AVG(cdi_p) AS mean FROM vm_cdi");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->At(0, "n")->AsInt().value(), 4);
  EXPECT_DOUBLE_EQ(result->At(0, "total")->AsDouble().value(), 3000.0);
  EXPECT_DOUBLE_EQ(result->At(0, "lo")->AsDouble().value(), 0.002);
  EXPECT_DOUBLE_EQ(result->At(0, "hi")->AsDouble().value(), 0.100);
  EXPECT_NEAR(result->At(0, "mean")->AsDouble().value(), 0.1260 / 4, 1e-12);
}

TEST_F(QueryTest, OrderByAndLimit) {
  auto result = engine_.Execute(
      "SELECT vm_id, cdi_p FROM vm_cdi ORDER BY cdi_p DESC LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->At(0, "vm_id")->AsString().value(), "vm-4");
  EXPECT_EQ(result->At(1, "vm_id")->AsString().value(), "vm-1");
}

TEST_F(QueryTest, MultiKeyOrderBy) {
  auto result = engine_.Execute(
      "SELECT region, cdi_p FROM vm_cdi ORDER BY region ASC, cdi_p DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->At(0, "region")->AsString().value(), "r0");
  EXPECT_DOUBLE_EQ(result->At(0, "cdi_p")->AsDouble().value(), 0.020);
  EXPECT_EQ(result->At(3, "region")->AsString().value(), "r1");
}

TEST_F(QueryTest, KeywordsAreCaseInsensitive) {
  auto result = engine_.Execute(
      "select vm_id from vm_cdi where cdi_p > 0.05 order by vm_id limit 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST_F(QueryTest, ErrorCases) {
  EXPECT_TRUE(engine_.Execute("SELECT x FROM missing").status().IsNotFound());
  EXPECT_TRUE(engine_.Execute("SELECT nope FROM vm_cdi").status()
                  .IsNotFound());
  EXPECT_TRUE(engine_.Execute("SELECT FROM vm_cdi").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_.Execute("SELECT vm_id vm_cdi").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_.Execute("SELECT vm_id FROM vm_cdi WHERE cdi_p >")
                  .status()
                  .IsInvalidArgument());
  // Plain column with aggregate but no GROUP BY membership.
  EXPECT_TRUE(engine_.Execute("SELECT vm_id, COUNT(*) FROM vm_cdi")
                  .status()
                  .IsInvalidArgument());
  // WAVG arity.
  EXPECT_TRUE(engine_.Execute("SELECT WAVG(cdi_p) FROM vm_cdi")
                  .status()
                  .IsInvalidArgument());
  // Unterminated string.
  EXPECT_TRUE(engine_.Execute("SELECT vm_id FROM vm_cdi WHERE region = 'r0")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, NullNeverMatchesWhere) {
  Table t(Schema({Field{"k", ValueType::kString},
                  Field{"v", ValueType::kDouble}}));
  t.AppendUnchecked({Value("a"), Value()});
  t.AppendUnchecked({Value("b"), Value(1.0)});
  engine_.RegisterTable("nulls", std::move(t));
  auto result = engine_.Execute("SELECT k FROM nulls WHERE v < 100");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->At(0, "k")->AsString().value(), "b");
}

TEST_F(QueryTest, DefaultAggregateNames) {
  auto result =
      engine_.Execute("SELECT COUNT(*), SUM(cdi_p) FROM vm_cdi");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->schema().IndexOf("count_all").ok());
  EXPECT_TRUE(result->schema().IndexOf("sum_cdi_p").ok());
}

}  // namespace
}  // namespace cdibot::dataflow
