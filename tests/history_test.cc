#include <gtest/gtest.h>

#include "cdi/history.h"

namespace cdibot {
namespace {

TimePoint Day(int d) {
  return TimePoint::Parse("2023-04-01 00:00").value() + Duration::Days(d);
}

VmCdi Cdi(double u, double p, double c) {
  return VmCdi{.unavailability = u,
               .performance = p,
               .control_plane = c,
               .service_time = Duration::Days(1)};
}

TEST(CdiHistoryTest, AppendRequiresIncreasingDays) {
  CdiHistory history;
  ASSERT_TRUE(history.Append(Day(0), Cdi(0.1, 0.2, 0.3)).ok());
  EXPECT_TRUE(history.Append(Day(0), Cdi(0, 0, 0)).IsInvalidArgument());
  EXPECT_TRUE(
      history.Append(Day(0) - Duration::Days(1), Cdi(0, 0, 0))
          .IsInvalidArgument());
  ASSERT_TRUE(history.Append(Day(1), Cdi(0, 0, 0)).ok());
  EXPECT_EQ(history.size(), 2u);
}

TEST(CdiHistoryTest, AtLooksUpStoredDays) {
  CdiHistory history;
  ASSERT_TRUE(history.Append(Day(0), Cdi(0.1, 0.2, 0.3)).ok());
  auto v = history.At(Day(0));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->performance, 0.2);
  EXPECT_TRUE(history.At(Day(5)).status().IsNotFound());
}

TEST(CdiHistoryTest, Case4ReductionComputation) {
  // A year where U halves, P drops 80%, C drops 35% — Case 4's numbers.
  CdiHistory history;
  const int n = 100;
  for (int d = 0; d < n; ++d) {
    const double t = static_cast<double>(d) / (n - 1);
    ASSERT_TRUE(history
                    .Append(Day(d), Cdi(0.010 * (1.0 - 0.40 * t),
                                        0.050 * (1.0 - 0.80 * t),
                                        0.020 * (1.0 - 0.35 * t)))
                    .ok());
  }
  auto reduction = history.ReductionBetween(1, 1);
  ASSERT_TRUE(reduction.ok());
  EXPECT_NEAR(reduction->unavailability, 0.40, 1e-9);
  EXPECT_NEAR(reduction->performance, 0.80, 1e-9);
  EXPECT_NEAR(reduction->control_plane, 0.35, 1e-9);
}

TEST(CdiHistoryTest, WindowedReductionAverages) {
  CdiHistory history;
  ASSERT_TRUE(history.Append(Day(0), Cdi(0.2, 0.2, 0.2)).ok());
  ASSERT_TRUE(history.Append(Day(1), Cdi(0.4, 0.4, 0.4)).ok());
  ASSERT_TRUE(history.Append(Day(2), Cdi(0.1, 0.1, 0.1)).ok());
  ASSERT_TRUE(history.Append(Day(3), Cdi(0.2, 0.2, 0.2)).ok());
  // head mean 0.3, tail mean 0.15 -> reduction 0.5.
  auto reduction = history.ReductionBetween(2, 2);
  ASSERT_TRUE(reduction.ok());
  EXPECT_NEAR(reduction->performance, 0.5, 1e-12);
}

TEST(CdiHistoryTest, ReductionValidation) {
  CdiHistory history;
  ASSERT_TRUE(history.Append(Day(0), Cdi(0.1, 0.1, 0.1)).ok());
  EXPECT_TRUE(history.ReductionBetween(0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(history.ReductionBetween(1, 1).status().IsFailedPrecondition());
  ASSERT_TRUE(history.Append(Day(1), Cdi(0.05, 0.05, 0.05)).ok());
  EXPECT_TRUE(history.ReductionBetween(1, 1).ok());
  // Zero head level is undefined.
  CdiHistory zero;
  ASSERT_TRUE(zero.Append(Day(0), Cdi(0, 0, 0)).ok());
  ASSERT_TRUE(zero.Append(Day(1), Cdi(0.1, 0.1, 0.1)).ok());
  EXPECT_TRUE(zero.ReductionBetween(1, 1).status().IsFailedPrecondition());
}

TEST(CdiHistoryTest, ExcludedIncidentDaysSkipTrend) {
  CdiHistory history;
  ASSERT_TRUE(history.Append(Day(0), Cdi(0.1, 0.10, 0.1)).ok());
  // Day 1 is a massive incident that would wreck the trend.
  ASSERT_TRUE(history.Append(Day(1), Cdi(0.9, 0.90, 0.9)).ok());
  ASSERT_TRUE(history.Append(Day(2), Cdi(0.1, 0.05, 0.1)).ok());
  EXPECT_TRUE(history.ExcludeDay(Day(9)).IsNotFound());
  ASSERT_TRUE(history.ExcludeDay(Day(1)).ok());

  auto reduction = history.ReductionBetween(1, 1);
  ASSERT_TRUE(reduction.ok());
  // Head = day 0 (0.10), tail = day 2 (0.05): the incident day is invisible.
  EXPECT_NEAR(reduction->performance, 0.5, 1e-12);

  auto series = history.SmoothedSeries(StabilityCategory::kPerformance, 1.0);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 2u);  // excluded day dropped
}

TEST(CdiHistoryTest, SmoothedSeriesUsesEwma) {
  CdiHistory history;
  ASSERT_TRUE(history.Append(Day(0), Cdi(0, 1.0, 0)).ok());
  ASSERT_TRUE(history.Append(Day(1), Cdi(0, 0.0, 0)).ok());
  auto series = history.SmoothedSeries(StabilityCategory::kPerformance, 0.5);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ((*series)[0], 1.0);
  EXPECT_DOUBLE_EQ((*series)[1], 0.5);
  EXPECT_TRUE(history.SmoothedSeries(StabilityCategory::kPerformance, 0.0)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace cdibot
