#include <gtest/gtest.h>

#include "anomaly/ksigma.h"
#include "common/rng.h"

namespace cdibot {
namespace {

TEST(KSigmaTest, ValidatesParameters) {
  EXPECT_TRUE(KSigmaDetector::Create(2, 3.0).status().IsInvalidArgument());
  EXPECT_TRUE(KSigmaDetector::Create(10, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(KSigmaDetector::Create(3, 3.0).ok());
}

TEST(KSigmaTest, CalibrationPeriodIsSilent) {
  auto det = KSigmaDetector::Create(5, 3.0).value();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(det.Observe(1000.0 * i), AnomalyDirection::kNone);
  }
}

TEST(KSigmaTest, DetectsSpike) {
  // k = 5 keeps ordinary noise quiet (a trailing-window sigma estimate on
  // 10 points lets the odd 3-sigma noise point fire), while a z = 80 spike
  // must alert.
  auto det = KSigmaDetector::Create(10, 5.0).value();
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(det.Observe(rng.Normal(10.0, 0.5)), AnomalyDirection::kNone);
  }
  EXPECT_EQ(det.Observe(50.0), AnomalyDirection::kSpike);
}

TEST(KSigmaTest, DetectsDip) {
  auto det = KSigmaDetector::Create(10, 3.0).value();
  Rng rng(2);
  for (int i = 0; i < 50; ++i) det.Observe(rng.Normal(10.0, 0.5));
  // Case 7: power collection failing to zero must be flagged as a dip.
  EXPECT_EQ(det.Observe(0.0), AnomalyDirection::kDip);
}

TEST(KSigmaTest, ToleratesNormalNoise) {
  auto det = KSigmaDetector::Create(20, 4.0).value();
  Rng rng(3);
  int anomalies = 0;
  for (int i = 0; i < 2000; ++i) {
    if (det.Observe(rng.Normal(5.0, 1.0)) != AnomalyDirection::kNone) {
      ++anomalies;
    }
  }
  // 4-sigma on normal data: a handful at most.
  EXPECT_LT(anomalies, 10);
}

TEST(KSigmaTest, FlatWindowFlagsAnyDeparture) {
  auto det = KSigmaDetector::Create(5, 3.0).value();
  for (int i = 0; i < 10; ++i) det.Observe(7.0);
  EXPECT_EQ(det.Observe(7.1), AnomalyDirection::kSpike);
  EXPECT_EQ(det.Observe(7.0), AnomalyDirection::kNone);
}

TEST(KSigmaScanTest, BatchMatchesStreaming) {
  Rng rng(4);
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) series.push_back(rng.Normal(0.0, 1.0));
  series[150] = 25.0;
  auto scan = KSigmaScan(series, 20, 3.0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)[150], AnomalyDirection::kSpike);

  auto det = KSigmaDetector::Create(20, 3.0).value();
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(det.Observe(series[i]), (*scan)[i]) << i;
  }
}

TEST(KSigmaTest, LevelShiftBecomesNewNormal) {
  auto det = KSigmaDetector::Create(5, 3.0).value();
  for (int i = 0; i < 10; ++i) det.Observe(1.0);
  EXPECT_EQ(det.Observe(100.0), AnomalyDirection::kSpike);
  // After the window fills with the new level, it stops alerting.
  for (int i = 0; i < 6; ++i) det.Observe(100.0);
  EXPECT_EQ(det.Observe(100.0), AnomalyDirection::kNone);
}

}  // namespace
}  // namespace cdibot
