#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "storage/event_log.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Make(const char* name, const char* time, const char* target,
              int64_t duration_ms = -1) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = target;
  ev.level = Severity::kCritical;
  ev.expire_interval = Duration::Hours(24);
  if (duration_ms >= 0) {
    ev.attrs["duration_ms"] = std::to_string(duration_ms);
  }
  return ev;
}

TEST(EventLogTest, AppendAndSearchAcrossDays) {
  EventLog log;
  log.Append(Make("slow_io", "2024-01-01 23:59", "vm-1"));
  log.Append(Make("slow_io", "2024-01-02 00:01", "vm-1"));
  log.Append(Make("slow_io", "2024-01-03 12:00", "vm-2"));
  EXPECT_EQ(log.size(), 3u);
  auto res = log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-03 00:00")));
  ASSERT_EQ(res.size(), 2u);
  EXPECT_LT(res[0].time, res[1].time);
}

TEST(EventLogTest, SearchIsHalfOpen) {
  EventLog log;
  log.Append(Make("a", "2024-01-02 00:00", "vm-1"));
  EXPECT_TRUE(
      log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")))
          .empty());
  EXPECT_EQ(
      log.Search(Interval(T("2024-01-02 00:00"), T("2024-01-03 00:00")))
          .size(),
      1u);
}

TEST(EventLogTest, SearchTargetFilters) {
  EventLog log;
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("a", "2024-01-01 11:00", "vm-2"));
  auto res = log.SearchTarget(
      Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")), "vm-2");
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].target, "vm-2");
}

TEST(EventLogTest, PartitionDays) {
  EventLog log;
  log.Append(Make("a", "2024-01-05 10:00", "vm-1"));
  log.Append(Make("a", "2024-01-03 10:00", "vm-1"));
  log.Append(Make("a", "2024-01-05 12:00", "vm-1"));
  auto days = log.PartitionDays();
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].ToDateString(), "2024-01-03");
  EXPECT_EQ(days[1].ToDateString(), "2024-01-05");
}

TEST(EventLogTest, ExportImportRoundTrip) {
  EventLog log;
  log.Append(Make("qemu_live_upgrade", "2024-01-01 10:00", "vm-1", 2500));
  log.Append(Make("slow_io", "2024-01-01 11:00", "vm-2"));
  auto table = log.ExportDay(T("2024-01-01 05:00"));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);

  auto events = EventLog::ImportTable(table.value());
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].name, "qemu_live_upgrade");
  EXPECT_EQ((*events)[0].LoggedDuration()->millis(), 2500);
  EXPECT_TRUE((*events)[1].LoggedDuration().status().IsNotFound());
  EXPECT_EQ((*events)[1].target, "vm-2");
  EXPECT_EQ((*events)[1].level, Severity::kCritical);
}

TEST(EventLogTest, ExportEmptyDayIsEmptyTable) {
  EventLog log;
  auto table = log.ExportDay(T("2024-06-01 00:00"));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
}

TEST(EventLogTest, ImportRejectsWrongSchema) {
  dataflow::Table wrong(dataflow::Schema(
      {dataflow::Field{"x", dataflow::ValueType::kInt}}));
  EXPECT_TRUE(EventLog::ImportTable(wrong).status().IsInvalidArgument());
}

TEST(EventLogTest, SaveAndLoadDirectoryRoundTrip) {
  EventLog log;
  log.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("qemu_live_upgrade", "2024-01-01 11:00", "vm-2", 900));
  log.Append(Make("packet_loss", "2024-01-03 09:00", "vm-1"));

  const std::string dir = ::testing::TempDir() + "/cdibot_event_log";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(log.SaveToDir(dir).ok());

  auto loaded = EventLog::LoadFromDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->PartitionDays().size(), 2u);
  auto events = loaded->Search(
      Interval(T("2024-01-01 00:00"), T("2024-01-05 00:00")));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].LoggedDuration()->millis(), 900);
  EXPECT_EQ(events[2].name, "packet_loss");
  std::filesystem::remove_all(dir);
}

TEST(EventLogTest, LoadFromMissingDirectoryFails) {
  EXPECT_TRUE(EventLog::LoadFromDir("/definitely/not/here")
                  .status()
                  .IsNotFound());
  EventLog log;
  EXPECT_TRUE(log.SaveToDir("/definitely/not/here").IsNotFound());
}

TEST(EventLogTest, EmptySearchRange) {
  EventLog log;
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  EXPECT_TRUE(
      log.Search(Interval(T("2024-01-01 10:00"), T("2024-01-01 10:00")))
          .empty());
}

// --- Ordering pins. Search promises stable time order regardless of append
// order; the SoA rework must not change what callers observe.

TEST(EventLogTest, SearchSortsOutOfOrderAppendsWithinDay) {
  EventLog log;
  log.Append(Make("c", "2024-01-01 12:00", "vm-1"));
  log.Append(Make("a", "2024-01-01 08:00", "vm-1"));
  log.Append(Make("b", "2024-01-01 10:00", "vm-2"));
  auto res = log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].name, "a");
  EXPECT_EQ(res[1].name, "b");
  EXPECT_EQ(res[2].name, "c");
}

TEST(EventLogTest, SearchOrdersAcrossDaysAppendedOutOfOrder) {
  EventLog log;
  log.Append(Make("late", "2024-01-03 01:00", "vm-1"));
  log.Append(Make("early", "2024-01-01 23:00", "vm-1"));
  log.Append(Make("mid", "2024-01-02 12:00", "vm-1"));
  auto res = log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-04 00:00")));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].name, "early");
  EXPECT_EQ(res[1].name, "mid");
  EXPECT_EQ(res[2].name, "late");
}

TEST(EventLogTest, SearchIsStableForEqualTimestamps) {
  // Equal-time events must come back in append order (stable sort
  // semantics), including when an earlier event forces the sort path.
  EventLog log;
  log.Append(Make("first", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("second", "2024-01-01 10:00", "vm-2"));
  log.Append(Make("force_sort", "2024-01-01 09:00", "vm-3"));
  log.Append(Make("third", "2024-01-01 10:00", "vm-1"));
  auto res = log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  ASSERT_EQ(res.size(), 4u);
  EXPECT_EQ(res[0].name, "force_sort");
  EXPECT_EQ(res[1].name, "first");
  EXPECT_EQ(res[2].name, "second");
  EXPECT_EQ(res[3].name, "third");
}

TEST(EventLogTest, SearchTargetKeepsTimeOrderForOutOfOrderAppends) {
  EventLog log;
  log.Append(Make("b", "2024-01-01 11:00", "vm-1"));
  log.Append(Make("x", "2024-01-01 10:30", "vm-2"));
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  auto res = log.SearchTarget(
      Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")), "vm-1");
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].name, "a");
  EXPECT_EQ(res[1].name, "b");
}

// --- Query API: the zero-copy read path.

std::vector<RawEvent> Collect(const EventSpan& span) {
  std::vector<RawEvent> out;
  span.ForEach([&out](const EventRef& ev) { out.push_back(ev.Materialize()); });
  return out;
}

TEST(EventLogTest, QueryYieldsTargetRowsAcrossPartitions) {
  EventLog log;
  log.Append(Make("d1", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("other", "2024-01-01 11:00", "vm-2"));
  log.Append(Make("d2", "2024-01-02 10:00", "vm-1"));
  const EventSpan span = log.Query(
      EventQuery{.interval = Interval(T("2024-01-01 00:00"),
                                      T("2024-01-03 00:00")),
                 .target_id = GlobalInterner().Lookup("vm-1")});
  EXPECT_EQ(span.segment_count(), 2u);
  auto events = Collect(span);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "d1");
  EXPECT_EQ(events[1].name, "d2");
  for (const RawEvent& ev : events) EXPECT_EQ(ev.target, "vm-1");
}

TEST(EventLogTest, QueryMarginExtendsTheInterval) {
  EventLog log;
  log.Append(Make("before", "2024-01-01 23:00", "vm-1"));
  log.Append(Make("inside", "2024-01-02 12:00", "vm-1"));
  log.Append(Make("after", "2024-01-03 01:00", "vm-1"));
  const Interval day(T("2024-01-02 00:00"), T("2024-01-03 00:00"));
  const uint32_t vm1 = GlobalInterner().Lookup("vm-1");

  auto no_margin = Collect(log.Query(
      EventQuery{.interval = day, .target_id = vm1}));
  ASSERT_EQ(no_margin.size(), 1u);
  EXPECT_EQ(no_margin[0].name, "inside");

  auto with_margin = Collect(log.Query(EventQuery{
      .interval = day, .target_id = vm1, .margin = Duration::Hours(2)}));
  ASSERT_EQ(with_margin.size(), 3u);
  EXPECT_EQ(with_margin[0].name, "before");
  EXPECT_EQ(with_margin[2].name, "after");
}

TEST(EventLogTest, QueryUnknownTargetIsEmptySpan) {
  EventLog log;
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  // A target string never interned anywhere in the process.
  const EventSpan span = log.Query(EventQuery{
      .interval = day,
      .target_id = GlobalInterner().Lookup("vm-never-seen-anywhere")});
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(span.UpperBound(), 0u);
  // A target interned by some other subsystem but absent from this log.
  const uint32_t elsewhere = GlobalInterner().Intern("vm-interned-elsewhere");
  EXPECT_TRUE(
      log.Query(EventQuery{.interval = day, .target_id = elsewhere}).empty());
}

TEST(EventLogTest, QueryEmptyIntervalIsEmptySpan) {
  EventLog log;
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  const EventSpan span = log.Query(EventQuery{
      .interval = Interval(T("2024-01-01 10:00"), T("2024-01-01 10:00")),
      .target_id = GlobalInterner().Lookup("vm-1")});
  EXPECT_TRUE(span.empty());
}

TEST(EventLogTest, QuerySpanMatchesSearchTargetContent) {
  // The span iterates rows in append order per partition (the resolver
  // sorts internally); as a set it must match SearchTarget with the same
  // effective range.
  EventLog log;
  log.Append(Make("b", "2024-01-01 11:00", "vm-1", 500));
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("c", "2024-01-02 09:00", "vm-1"));
  const Interval range(T("2024-01-01 00:00"), T("2024-01-03 00:00"));
  auto from_span = Collect(log.Query(EventQuery{
      .interval = range, .target_id = GlobalInterner().Lookup("vm-1")}));
  auto from_search = log.SearchTarget(range, "vm-1");
  ASSERT_EQ(from_span.size(), from_search.size());
  // Align by time, then compare field-for-field.
  std::sort(from_span.begin(), from_span.end(),
            [](const RawEvent& x, const RawEvent& y) { return x.time < y.time; });
  for (size_t i = 0; i < from_span.size(); ++i) {
    EXPECT_EQ(from_span[i].name, from_search[i].name);
    EXPECT_EQ(from_span[i].time, from_search[i].time);
    EXPECT_EQ(from_span[i].attrs, from_search[i].attrs);
  }
}

}  // namespace
}  // namespace cdibot
