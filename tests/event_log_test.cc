#include <gtest/gtest.h>

#include <filesystem>

#include "storage/event_log.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

RawEvent Make(const char* name, const char* time, const char* target,
              int64_t duration_ms = -1) {
  RawEvent ev;
  ev.name = name;
  ev.time = T(time);
  ev.target = target;
  ev.level = Severity::kCritical;
  ev.expire_interval = Duration::Hours(24);
  if (duration_ms >= 0) {
    ev.attrs["duration_ms"] = std::to_string(duration_ms);
  }
  return ev;
}

TEST(EventLogTest, AppendAndSearchAcrossDays) {
  EventLog log;
  log.Append(Make("slow_io", "2024-01-01 23:59", "vm-1"));
  log.Append(Make("slow_io", "2024-01-02 00:01", "vm-1"));
  log.Append(Make("slow_io", "2024-01-03 12:00", "vm-2"));
  EXPECT_EQ(log.size(), 3u);
  auto res = log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-03 00:00")));
  ASSERT_EQ(res.size(), 2u);
  EXPECT_LT(res[0].time, res[1].time);
}

TEST(EventLogTest, SearchIsHalfOpen) {
  EventLog log;
  log.Append(Make("a", "2024-01-02 00:00", "vm-1"));
  EXPECT_TRUE(
      log.Search(Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")))
          .empty());
  EXPECT_EQ(
      log.Search(Interval(T("2024-01-02 00:00"), T("2024-01-03 00:00")))
          .size(),
      1u);
}

TEST(EventLogTest, SearchTargetFilters) {
  EventLog log;
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("a", "2024-01-01 11:00", "vm-2"));
  auto res = log.SearchTarget(
      Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")), "vm-2");
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].target, "vm-2");
}

TEST(EventLogTest, PartitionDays) {
  EventLog log;
  log.Append(Make("a", "2024-01-05 10:00", "vm-1"));
  log.Append(Make("a", "2024-01-03 10:00", "vm-1"));
  log.Append(Make("a", "2024-01-05 12:00", "vm-1"));
  auto days = log.PartitionDays();
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].ToDateString(), "2024-01-03");
  EXPECT_EQ(days[1].ToDateString(), "2024-01-05");
}

TEST(EventLogTest, ExportImportRoundTrip) {
  EventLog log;
  log.Append(Make("qemu_live_upgrade", "2024-01-01 10:00", "vm-1", 2500));
  log.Append(Make("slow_io", "2024-01-01 11:00", "vm-2"));
  auto table = log.ExportDay(T("2024-01-01 05:00"));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);

  auto events = EventLog::ImportTable(table.value());
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].name, "qemu_live_upgrade");
  EXPECT_EQ((*events)[0].LoggedDuration()->millis(), 2500);
  EXPECT_TRUE((*events)[1].LoggedDuration().status().IsNotFound());
  EXPECT_EQ((*events)[1].target, "vm-2");
  EXPECT_EQ((*events)[1].level, Severity::kCritical);
}

TEST(EventLogTest, ExportEmptyDayIsEmptyTable) {
  EventLog log;
  auto table = log.ExportDay(T("2024-06-01 00:00"));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
}

TEST(EventLogTest, ImportRejectsWrongSchema) {
  dataflow::Table wrong(dataflow::Schema(
      {dataflow::Field{"x", dataflow::ValueType::kInt}}));
  EXPECT_TRUE(EventLog::ImportTable(wrong).status().IsInvalidArgument());
}

TEST(EventLogTest, SaveAndLoadDirectoryRoundTrip) {
  EventLog log;
  log.Append(Make("slow_io", "2024-01-01 10:00", "vm-1"));
  log.Append(Make("qemu_live_upgrade", "2024-01-01 11:00", "vm-2", 900));
  log.Append(Make("packet_loss", "2024-01-03 09:00", "vm-1"));

  const std::string dir = ::testing::TempDir() + "/cdibot_event_log";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(log.SaveToDir(dir).ok());

  auto loaded = EventLog::LoadFromDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->PartitionDays().size(), 2u);
  auto events = loaded->Search(
      Interval(T("2024-01-01 00:00"), T("2024-01-05 00:00")));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].LoggedDuration()->millis(), 900);
  EXPECT_EQ(events[2].name, "packet_loss");
  std::filesystem::remove_all(dir);
}

TEST(EventLogTest, LoadFromMissingDirectoryFails) {
  EXPECT_TRUE(EventLog::LoadFromDir("/definitely/not/here")
                  .status()
                  .IsNotFound());
  EventLog log;
  EXPECT_TRUE(log.SaveToDir("/definitely/not/here").IsNotFound());
}

TEST(EventLogTest, EmptySearchRange) {
  EventLog log;
  log.Append(Make("a", "2024-01-01 10:00", "vm-1"));
  EXPECT_TRUE(
      log.Search(Interval(T("2024-01-01 10:00"), T("2024-01-01 10:00")))
          .empty());
}

}  // namespace
}  // namespace cdibot
