// Golden-value regression for Table IV ("Example of CDI Calculation"):
// the paper's worked example, pinned to its EXACT closed-form values under
// ctest — not the 3-decimal printed precision of the paper's table. Any
// change to Algorithm 1's boundary sweep or Eq. 4's aggregation that moves
// these numbers is a regression, caught here rather than in a bench binary
// someone has to remember to run.
#include <gtest/gtest.h>

#include "cdi/aggregate.h"
#include "cdi/indicator.h"
#include "shard/message.h"
#include "shard/wire.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

WeightedEvent Ev(const char* name, const char* start, const char* end,
                 double w) {
  return WeightedEvent{.period = Interval(T(start), T(end)),
                       .weight = w,
                       .name = name};
}

// Exact closed forms of the table's rows:
//   VM1: two back-to-back 2-min packet_loss @0.3 in a 60-min window
//        -> 0.3 * 4 / 60            = 0.02
//   VM2: one 5-min vcpu_high @0.6 in a 1440-min window
//        -> 0.6 * 5 / 1440          = 1/480        (paper prints 0.002)
//   VM3: slow_io 08:08-08:12 @0.5 overlapped by vcpu_high 08:10-08:15
//        @0.6 in a 1000-min window; max-overlap damage
//        -> (0.5*2 + 0.6*5) / 1000  = 0.004
//   Fleet (Eq. 4): (60*0.02 + 1440/480 + 1000*0.004) / 2500
//        -> 8.2 / 2500              = 0.00328      (paper prints 0.003)
constexpr double kVm1 = 0.02;
constexpr double kVm2 = 3.0 / 1440.0;
constexpr double kVm3 = 0.004;
constexpr double kFleet = 8.2 / 2500.0;
constexpr double kTol = 1e-12;

TEST(Table4GoldenTest, WorkedExampleExactValues) {
  const auto vm1 = ComputeCdi(
      {Ev("packet_loss", "2024-01-01 10:08", "2024-01-01 10:10", 0.3),
       Ev("packet_loss", "2024-01-01 10:10", "2024-01-01 10:12", 0.3)},
      Interval(T("2024-01-01 10:00"), T("2024-01-01 11:00")));
  ASSERT_TRUE(vm1.ok());
  EXPECT_NEAR(vm1.value(), kVm1, kTol);

  const auto vm2 = ComputeCdi(
      {Ev("vcpu_high", "2024-01-01 13:25", "2024-01-01 13:30", 0.6)},
      Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  ASSERT_TRUE(vm2.ok());
  EXPECT_NEAR(vm2.value(), kVm2, kTol);

  const auto vm3 = ComputeCdi(
      {Ev("slow_io", "2024-01-01 08:08", "2024-01-01 08:10", 0.5),
       Ev("slow_io", "2024-01-01 08:10", "2024-01-01 08:12", 0.5),
       Ev("vcpu_high", "2024-01-01 08:10", "2024-01-01 08:15", 0.6)},
      Interval(T("2024-01-01 08:00"),
               T("2024-01-01 08:00") + Duration::Minutes(1000)));
  ASSERT_TRUE(vm3.ok());
  EXPECT_NEAR(vm3.value(), kVm3, kTol);

  CdiAccumulator fleet;
  fleet.Add(Duration::Minutes(60), vm1.value());
  fleet.Add(Duration::Minutes(1440), vm2.value());
  fleet.Add(Duration::Minutes(1000), vm3.value());
  EXPECT_NEAR(fleet.Value(), kFleet, kTol);
  EXPECT_EQ(fleet.total_service_time(), Duration::Minutes(2500));
}

// The same fleet row through the mergeable-partial path the streaming
// engine uses: partials split any way must land on the identical value.
TEST(Table4GoldenTest, FleetRowViaMergeablePartials) {
  auto vm = [](double cdi, int64_t minutes) {
    VmCdi v;
    v.unavailability = cdi;
    v.performance = cdi;
    v.control_plane = cdi;
    v.service_time = Duration::Minutes(minutes);
    return v;
  };
  const VmCdi vm1 = vm(kVm1, 60), vm2 = vm(kVm2, 1440), vm3 = vm(kVm3, 1000);

  FleetCdiPartial left, right;
  left.AddVm(vm1);
  right.AddVm(vm2);
  right.AddVm(vm3);
  left.Merge(right);
  EXPECT_NEAR(left.Finalize().performance, kFleet, kTol);

  // Retract + re-add (the streaming revision path) is value-preserving.
  FleetCdiPartial churn;
  churn.AddVm(vm1);
  churn.AddVm(vm2);
  churn.AddVm(vm(0.9, 1000));  // wrong provisional value for VM3...
  churn.RemoveVm(vm(0.9, 1000));  // ...retracted on revision
  churn.AddVm(vm3);
  EXPECT_NEAR(churn.Finalize().performance, kFleet, 1e-9);

  // AggregateVmCdi (the batch entry point) agrees with the partial path.
  const VmCdi direct = AggregateVmCdi({vm1, vm2, vm3});
  EXPECT_NEAR(direct.performance, kFleet, kTol);
  EXPECT_EQ(direct.service_time, Duration::Minutes(2500));
}

// The worked example under the sharded topology: the three VM rows are
// split across 1, 2, and 3 shards, each shard's contribution round-trips
// through the coordinator's wire snapshot encoding (doubles bit-cast), and
// the gathered union folds through the canonical ascending-vm_id fleet
// fold. Every split must land on the paper's exact fleet value — and on
// the SAME bits as every other split.
TEST(Table4GoldenTest, ShardedGatherPinsWorkedExample) {
  auto row = [](const char* id, double cdi, int64_t minutes) {
    VmCdiRecord rec;
    rec.vm_id = id;
    rec.cdi.unavailability = cdi;
    rec.cdi.performance = cdi;
    rec.cdi.control_plane = cdi;
    rec.cdi.service_time = Duration::Minutes(minutes);
    return rec;
  };
  const std::vector<VmCdiRecord> rows = {row("vm1", kVm1, 60),
                                         row("vm2", kVm2, 1440),
                                         row("vm3", kVm3, 1000)};
  // Shard splits of the fleet: indices of `rows` per shard. The 2-shard
  // split deliberately breaks ascending-id grouping (vm3 with vm1).
  const std::vector<std::vector<std::vector<size_t>>> splits = {
      {{0, 1, 2}},          // 1 shard
      {{0, 2}, {1}},        // 2 shards
      {{2}, {0}, {1}},      // 3 shards, scrambled order
  };
  // One shard's gather contribution: encode as a wire snapshot, ship,
  // decode, fold — the exact coordinator gather data path.
  auto fold_via_wire = [&rows](const std::vector<size_t>& idx,
                               CanonicalCdiFold* fold) {
    shard::ShardSnapshot snap;
    for (size_t i : idx) snap.per_vm.push_back(rows[i]);
    shard::WireWriter w;
    shard::EncodeSnapshot(w, snap);
    const std::string frame = std::move(w).Take();
    shard::WireReader r{std::string_view(frame)};
    const shard::ShardSnapshot decoded = shard::DecodeSnapshot(r);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(decoded.per_vm.size(), idx.size());
    for (const VmCdiRecord& rec : decoded.per_vm) {
      fold->Add(rec.vm_id, rec.cdi);
    }
  };
  std::vector<VmCdi> fleets;
  for (const auto& split : splits) {
    CanonicalCdiFold fold;
    for (const auto& shard_rows : split) {
      fold_via_wire(shard_rows, &fold);
    }
    fleets.push_back(fold.Finalize());
  }
  for (const VmCdi& fleet : fleets) {
    EXPECT_NEAR(fleet.performance, kFleet, kTol);
    EXPECT_NEAR(fleet.unavailability, kFleet, kTol);
    EXPECT_EQ(fleet.service_time, Duration::Minutes(2500));
    // Bit-identical across shard splits, not merely within tolerance.
    EXPECT_EQ(fleet.performance, fleets[0].performance);
    EXPECT_EQ(fleet.unavailability, fleets[0].unavailability);
    EXPECT_EQ(fleet.control_plane, fleets[0].control_plane);
  }
}

}  // namespace
}  // namespace cdibot
