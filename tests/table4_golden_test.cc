// Golden-value regression for Table IV ("Example of CDI Calculation"):
// the paper's worked example, pinned to its EXACT closed-form values under
// ctest — not the 3-decimal printed precision of the paper's table. Any
// change to Algorithm 1's boundary sweep or Eq. 4's aggregation that moves
// these numbers is a regression, caught here rather than in a bench binary
// someone has to remember to run.
#include <gtest/gtest.h>

#include "cdi/aggregate.h"
#include "cdi/indicator.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

WeightedEvent Ev(const char* name, const char* start, const char* end,
                 double w) {
  return WeightedEvent{.period = Interval(T(start), T(end)),
                       .weight = w,
                       .name = name};
}

// Exact closed forms of the table's rows:
//   VM1: two back-to-back 2-min packet_loss @0.3 in a 60-min window
//        -> 0.3 * 4 / 60            = 0.02
//   VM2: one 5-min vcpu_high @0.6 in a 1440-min window
//        -> 0.6 * 5 / 1440          = 1/480        (paper prints 0.002)
//   VM3: slow_io 08:08-08:12 @0.5 overlapped by vcpu_high 08:10-08:15
//        @0.6 in a 1000-min window; max-overlap damage
//        -> (0.5*2 + 0.6*5) / 1000  = 0.004
//   Fleet (Eq. 4): (60*0.02 + 1440/480 + 1000*0.004) / 2500
//        -> 8.2 / 2500              = 0.00328      (paper prints 0.003)
constexpr double kVm1 = 0.02;
constexpr double kVm2 = 3.0 / 1440.0;
constexpr double kVm3 = 0.004;
constexpr double kFleet = 8.2 / 2500.0;
constexpr double kTol = 1e-12;

TEST(Table4GoldenTest, WorkedExampleExactValues) {
  const auto vm1 = ComputeCdi(
      {Ev("packet_loss", "2024-01-01 10:08", "2024-01-01 10:10", 0.3),
       Ev("packet_loss", "2024-01-01 10:10", "2024-01-01 10:12", 0.3)},
      Interval(T("2024-01-01 10:00"), T("2024-01-01 11:00")));
  ASSERT_TRUE(vm1.ok());
  EXPECT_NEAR(vm1.value(), kVm1, kTol);

  const auto vm2 = ComputeCdi(
      {Ev("vcpu_high", "2024-01-01 13:25", "2024-01-01 13:30", 0.6)},
      Interval(T("2024-01-01 00:00"), T("2024-01-02 00:00")));
  ASSERT_TRUE(vm2.ok());
  EXPECT_NEAR(vm2.value(), kVm2, kTol);

  const auto vm3 = ComputeCdi(
      {Ev("slow_io", "2024-01-01 08:08", "2024-01-01 08:10", 0.5),
       Ev("slow_io", "2024-01-01 08:10", "2024-01-01 08:12", 0.5),
       Ev("vcpu_high", "2024-01-01 08:10", "2024-01-01 08:15", 0.6)},
      Interval(T("2024-01-01 08:00"),
               T("2024-01-01 08:00") + Duration::Minutes(1000)));
  ASSERT_TRUE(vm3.ok());
  EXPECT_NEAR(vm3.value(), kVm3, kTol);

  CdiAccumulator fleet;
  fleet.Add(Duration::Minutes(60), vm1.value());
  fleet.Add(Duration::Minutes(1440), vm2.value());
  fleet.Add(Duration::Minutes(1000), vm3.value());
  EXPECT_NEAR(fleet.Value(), kFleet, kTol);
  EXPECT_EQ(fleet.total_service_time(), Duration::Minutes(2500));
}

// The same fleet row through the mergeable-partial path the streaming
// engine uses: partials split any way must land on the identical value.
TEST(Table4GoldenTest, FleetRowViaMergeablePartials) {
  auto vm = [](double cdi, int64_t minutes) {
    VmCdi v;
    v.unavailability = cdi;
    v.performance = cdi;
    v.control_plane = cdi;
    v.service_time = Duration::Minutes(minutes);
    return v;
  };
  const VmCdi vm1 = vm(kVm1, 60), vm2 = vm(kVm2, 1440), vm3 = vm(kVm3, 1000);

  FleetCdiPartial left, right;
  left.AddVm(vm1);
  right.AddVm(vm2);
  right.AddVm(vm3);
  left.Merge(right);
  EXPECT_NEAR(left.Finalize().performance, kFleet, kTol);

  // Retract + re-add (the streaming revision path) is value-preserving.
  FleetCdiPartial churn;
  churn.AddVm(vm1);
  churn.AddVm(vm2);
  churn.AddVm(vm(0.9, 1000));  // wrong provisional value for VM3...
  churn.RemoveVm(vm(0.9, 1000));  // ...retracted on revision
  churn.AddVm(vm3);
  EXPECT_NEAR(churn.Finalize().performance, kFleet, 1e-9);

  // AggregateVmCdi (the batch entry point) agrees with the partial path.
  const VmCdi direct = AggregateVmCdi({vm1, vm2, vm3});
  EXPECT_NEAR(direct.performance, kFleet, kTol);
  EXPECT_EQ(direct.service_time, Duration::Minutes(2500));
}

}  // namespace
}  // namespace cdibot
