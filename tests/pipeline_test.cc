#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cdi/pipeline.h"
#include "common/thread_pool.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : catalog_(EventCatalog::BuiltIn()) {
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 100}, {"packet_loss", 60}, {"vcpu_high", 40},
         {"vm_start_failed", 20}},
        4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
    day_ = Interval(T("2024-04-25 00:00"), T("2024-04-26 00:00"));
  }

  // Emits one windowed raw event per minute across `episode`.
  void InjectWindowed(const char* name, const char* vm, TimePoint start,
                      int minutes, Severity level = Severity::kCritical) {
    for (int i = 1; i <= minutes; ++i) {
      RawEvent ev;
      ev.name = name;
      ev.time = start + Duration::Minutes(i);
      ev.target = vm;
      ev.level = level;
      ev.expire_interval = Duration::Hours(24);
      log_.Append(ev);
    }
  }

  std::vector<VmServiceInfo> TwoVms() const {
    return {
        VmServiceInfo{.vm_id = "vm-1",
                      .dims = {{"region", "r0"}, {"az", "r0-az0"}},
                      .service_period = day_},
        VmServiceInfo{.vm_id = "vm-2",
                      .dims = {{"region", "r0"}, {"az", "r0-az1"}},
                      .service_period = day_},
    };
  }

  EventCatalog catalog_;
  std::optional<EventWeightModel> weights_;
  EventLog log_;
  Interval day_;
};

TEST_F(PipelineTest, CleanFleetHasZeroCdi) {
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(TwoVms(), day_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_vm.size(), 2u);
  EXPECT_DOUBLE_EQ(result->fleet.unavailability, 0.0);
  EXPECT_DOUBLE_EQ(result->fleet.performance, 0.0);
  EXPECT_DOUBLE_EQ(result->fleet.control_plane, 0.0);
  EXPECT_EQ(result->fleet_service_time, Duration::Days(2));
  EXPECT_TRUE(result->per_event.empty());
}

TEST_F(PipelineTest, ComputesPerVmAndFleetValues) {
  // vm-1: 144 minutes of slow_io (10% of day, weight 0.875 for critical level
  // 0.75 composed with top ticket rank 1.0).
  InjectWindowed("slow_io", "vm-1", T("2024-04-25 08:00"), 144);
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(TwoVms(), day_);
  ASSERT_TRUE(result.ok());
  const VmCdiRecord* vm1 = nullptr;
  for (const auto& rec : result->per_vm) {
    if (rec.vm_id == "vm-1") vm1 = &rec;
  }
  ASSERT_NE(vm1, nullptr);
  EXPECT_NEAR(vm1->cdi.performance, 0.875 * 0.1, 1e-9);
  // Fleet averages across two equal-service VMs.
  EXPECT_NEAR(result->fleet.performance, 0.875 * 0.1 / 2.0, 1e-9);
  // Event-level table has a slow_io row for vm-1.
  ASSERT_EQ(result->per_event.size(), 1u);
  EXPECT_EQ(result->per_event[0].event_name, "slow_io");
  EXPECT_NEAR(result->per_event[0].damage_minutes, 144 * 0.875, 1e-6);
}

TEST_F(PipelineTest, BaselineSeesOnlyUnavailability) {
  InjectWindowed("vm_crash", "vm-1", T("2024-04-25 10:00"), 72,
                 Severity::kFatal);
  InjectWindowed("slow_io", "vm-2", T("2024-04-25 10:00"), 720);
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(TwoVms(), day_);
  ASSERT_TRUE(result.ok());
  // DP = 72 / 2880 VM-minutes.
  EXPECT_NEAR(result->fleet_baseline.downtime_percentage, 72.0 / 2880.0,
              1e-9);
  EXPECT_EQ(result->fleet_baseline.interruption_count, 1u);
  EXPECT_GT(result->fleet.performance, 0.0);
}

TEST_F(PipelineTest, VmsOutsideWindowAreSkipped) {
  auto vms = TwoVms();
  vms.push_back(VmServiceInfo{
      .vm_id = "vm-old",
      .service_period = Interval(T("2024-04-20 00:00"),
                                 T("2024-04-21 00:00"))});
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(vms, day_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_vm.size(), 2u);
}

TEST_F(PipelineTest, PartialDayServiceClamps) {
  // VM released mid-day: its service time is 12h and an event beyond the
  // release is discarded.
  std::vector<VmServiceInfo> vms = {VmServiceInfo{
      .vm_id = "vm-1",
      .service_period = Interval(T("2024-04-25 00:00"),
                                 T("2024-04-25 12:00"))}};
  InjectWindowed("slow_io", "vm-1", T("2024-04-25 13:00"), 30);
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(vms, day_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_vm.size(), 1u);
  EXPECT_EQ(result->per_vm[0].cdi.service_time, Duration::Hours(12));
  EXPECT_DOUBLE_EQ(result->per_vm[0].cdi.performance, 0.0);
}

TEST_F(PipelineTest, ParallelAndSerialAgree) {
  InjectWindowed("slow_io", "vm-1", T("2024-04-25 08:00"), 60);
  InjectWindowed("vm_crash", "vm-2", T("2024-04-25 09:00"), 10,
                 Severity::kFatal);
  DailyCdiJob serial(&log_, &catalog_, &*weights_, {});
  ThreadPool pool(4);
  DailyCdiJob parallel(&log_, &catalog_, &*weights_,
                       {.pool = &pool, .min_parallel_rows = 1});
  auto a = serial.Run(TwoVms(), day_);
  auto b = parallel.Run(TwoVms(), day_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->fleet.performance, b->fleet.performance);
  EXPECT_DOUBLE_EQ(a->fleet.unavailability, b->fleet.unavailability);
  EXPECT_EQ(a->per_event.size(), b->per_event.size());
}

TEST_F(PipelineTest, TablesExportExpectedSchemas) {
  InjectWindowed("slow_io", "vm-1", T("2024-04-25 08:00"), 10);
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(TwoVms(), day_);
  ASSERT_TRUE(result.ok());
  const dataflow::Table vm_table = result->ToVmTable();
  EXPECT_EQ(vm_table.num_rows(), 2u);
  EXPECT_TRUE(vm_table.schema().IndexOf("cdi_p").ok());
  EXPECT_TRUE(vm_table.schema().IndexOf("region").ok());
  const dataflow::Table ev_table = result->ToEventTable();
  EXPECT_EQ(ev_table.num_rows(), 1u);
  EXPECT_EQ(ev_table.At(0, "event")->AsString().value(), "slow_io");
}

TEST_F(PipelineTest, EmptyWindowFails) {
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  const Interval empty(day_.start, day_.start);
  EXPECT_TRUE(job.Run(TwoVms(), empty).status().IsInvalidArgument());
}

TEST_F(PipelineTest, DataQualityCountersAccountForEveryVm) {
  InjectWindowed("slow_io", "vm-1", T("2024-04-25 08:00"), 10);
  auto vms = TwoVms();
  // A VM whose service ended before this day: skipped, not evaluated.
  vms.push_back(VmServiceInfo{
      .vm_id = "vm-gone",
      .dims = {{"region", "r0"}},
      .service_period = Interval(T("2024-04-20 00:00"),
                                 T("2024-04-21 00:00"))});
  DailyCdiJob job(&log_, &catalog_, &*weights_, {});
  auto result = job.Run(vms, day_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vms_evaluated, 2u);
  EXPECT_EQ(result->vms_skipped, 1u);
  EXPECT_EQ(result->vms_failed, 0u);
  EXPECT_TRUE(result->first_vm_error.ok());
  // Skipped VMs produce no per-VM row and contribute no service time.
  EXPECT_EQ(result->per_vm.size(), 2u);
  EXPECT_EQ(result->fleet_service_time, Duration::Days(2));
  // Resolver counters survive into the result.
  EXPECT_EQ(result->resolve_stats.resolved, 10u);
}

// A weight model that only knows one expert level: any warning-or-worse
// event passes edge sanitation (its ordinal is a legal Severity) but fails
// weighting mid-computation — exactly the per-VM failure Run must survive.
class PipelineFailureSamplingTest : public PipelineTest {
 protected:
  PipelineFailureSamplingTest() {
    auto ticket = TicketRankModel::FromCounts({{"slow_io", 100}}, 4);
    strict_.emplace(EventWeightModel::Build(std::move(ticket).value(),
                                            {.expert_levels = 1})
                        .value());
  }

  /// Adds a VM whose day contains 5 slow_io events at `level`.
  void AddFailingVm(std::vector<VmServiceInfo>* vms, const std::string& id,
                    Severity level) {
    InjectWindowed("slow_io", id.c_str(), T("2024-04-25 08:00"), 5, level);
    vms->push_back(
        VmServiceInfo{.vm_id = id, .dims = {}, .service_period = day_});
  }

  std::optional<EventWeightModel> strict_;
};

TEST_F(PipelineFailureSamplingTest, OneExemplarPerDistinctReason) {
  std::vector<VmServiceInfo> vms;
  for (int i = 0; i < 20; ++i) {
    // Ordinals 2, 3, 4 produce three distinct failure messages.
    AddFailingVm(&vms, "vm-" + std::to_string(i),
                 static_cast<Severity>(2 + (i % 3)));
  }
  vms.push_back(
      VmServiceInfo{.vm_id = "vm-ok", .dims = {}, .service_period = day_});

  DailyCdiJob job(&log_, &catalog_, &*strict_, {});
  auto result = job.Run(vms, day_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vms_failed, 20u);
  EXPECT_EQ(result->vms_evaluated, 1u);
  EXPECT_FALSE(result->first_vm_error.ok());
  // Three distinct reasons -> three exemplars, well under the cap.
  ASSERT_EQ(result->vm_error_samples.size(), 3u);
  ASSERT_LE(result->vm_error_samples.size(),
            DailyCdiResult::kMaxVmErrorSamples);
  std::set<std::string> unique(result->vm_error_samples.begin(),
                               result->vm_error_samples.end());
  EXPECT_EQ(unique.size(), 3u);
  for (const std::string& sample : result->vm_error_samples) {
    EXPECT_NE(sample.find("severity ordinal"), std::string::npos) << sample;
    EXPECT_EQ(sample.rfind("vm vm-", 0), 0u) << sample;
  }
  // Only the healthy VM produced a row.
  EXPECT_EQ(result->per_vm.size(), 1u);
}

TEST_F(PipelineFailureSamplingTest, IdenticalReasonsCollapseToOneSample) {
  std::vector<VmServiceInfo> vms;
  for (int i = 0; i < 30; ++i) {
    AddFailingVm(&vms, "vm-" + std::to_string(i), Severity::kFatal);
  }
  DailyCdiJob job(&log_, &catalog_, &*strict_, {});
  auto result = job.Run(vms, day_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vms_failed, 30u);
  // A fleet-wide incident is thousands of identical failures; the operator
  // gets one exemplar, not a flood.
  ASSERT_EQ(result->vm_error_samples.size(), 1u);
  EXPECT_NE(result->vm_error_samples[0].find("severity ordinal 4 outside"),
            std::string::npos);
  // Failed VMs still contribute their resolver counters: 30 VMs x 5 events.
  EXPECT_EQ(result->resolve_stats.resolved, 150u);
}

}  // namespace
}  // namespace cdibot
