#include <gtest/gtest.h>

#include "cdi/customer_indicator.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

ResolvedEvent Res(const char* name, const char* start, const char* end,
                  StabilityCategory cat,
                  Severity level = Severity::kCritical) {
  return ResolvedEvent{.name = name,
                       .target = "vm-1",
                       .period = Interval(T(start), T(end)),
                       .level = level,
                       .category = cat};
}

EventWeightModel MakeModel() {
  auto ticket = TicketRankModel::FromCounts(
      {{"slow_io", 100}, {"vm_allocation_failed", 50},
       {"inspect_cpu_power_tdp", 10}, {"vm_crash", 200}},
      4);
  return EventWeightModel::Build(std::move(ticket).value(), {}).value();
}

TEST(CustomerFilterTest, BuiltInDisclosureChoices) {
  const CustomerEventFilter filter = CustomerEventFilter::BuiltIn();
  // Customer-visible symptoms.
  EXPECT_TRUE(filter.IsDisclosed("vm_crash"));
  EXPECT_TRUE(filter.IsDisclosed("slow_io"));
  EXPECT_TRUE(filter.IsDisclosed("vm_start_failed"));
  // Internal inspection events are hidden.
  EXPECT_FALSE(filter.IsDisclosed("inspect_cpu_power_tdp"));
  EXPECT_FALSE(filter.IsDisclosed("vm_allocation_failed"));
  EXPECT_FALSE(filter.IsDisclosed("nic_flapping"));
  EXPECT_FALSE(filter.IsDisclosed("qemu_live_upgrade"));
}

TEST(CustomerFilterTest, FilterKeepsOnlyDisclosed) {
  const CustomerEventFilter filter = CustomerEventFilter::BuiltIn();
  auto filtered = filter.Filter({
      Res("slow_io", "2024-01-01 01:00", "2024-01-01 01:10",
          StabilityCategory::kPerformance),
      Res("inspect_cpu_power_tdp", "2024-01-01 02:00", "2024-01-01 02:30",
          StabilityCategory::kPerformance),
  });
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].name, "slow_io");
}

TEST(CustomerIndicatorTest, CpiIsLowerBoundOfCdi) {
  const CustomerEventFilter filter = CustomerEventFilter::BuiltIn();
  const EventWeightModel model = MakeModel();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  const std::vector<ResolvedEvent> events = {
      Res("vm_crash", "2024-01-01 01:00", "2024-01-01 01:30",
          StabilityCategory::kUnavailability, Severity::kFatal),
      Res("slow_io", "2024-01-01 02:00", "2024-01-01 04:00",
          StabilityCategory::kPerformance),
      Res("vm_allocation_failed", "2024-01-01 06:00", "2024-01-01 12:00",
          StabilityCategory::kPerformance),
      Res("inspect_cpu_power_tdp", "2024-01-01 13:00", "2024-01-01 14:00",
          StabilityCategory::kPerformance, Severity::kWarning),
  };
  auto cmp = CompareCdiAndCpi(events, model, filter, day);
  ASSERT_TRUE(cmp.ok());
  EXPECT_LE(cmp->customer.unavailability, cmp->internal.unavailability);
  EXPECT_LE(cmp->customer.performance, cmp->internal.performance);
  EXPECT_LE(cmp->customer.control_plane, cmp->internal.control_plane);
  EXPECT_GE(cmp->HiddenPerformance(), 0.0);
  // The 6h allocation failure and 1h TDP event are hidden; the customer
  // only sees the 2h slow_io.
  EXPECT_GT(cmp->HiddenPerformance(), 0.0);
  // Unavailability (vm_crash) is fully disclosed.
  EXPECT_DOUBLE_EQ(cmp->HiddenUnavailability(), 0.0);
}

TEST(CustomerIndicatorTest, DisclosedOnlyEventsGiveEqualPerspectives) {
  const CustomerEventFilter filter = CustomerEventFilter::BuiltIn();
  const EventWeightModel model = MakeModel();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  const std::vector<ResolvedEvent> events = {
      Res("slow_io", "2024-01-01 02:00", "2024-01-01 04:00",
          StabilityCategory::kPerformance),
  };
  auto cmp = CompareCdiAndCpi(events, model, filter, day);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->internal.performance, cmp->customer.performance);
}

TEST(CustomerIndicatorTest, CustomDisclosureSet) {
  const CustomerEventFilter filter({"slow_io"});
  EXPECT_TRUE(filter.IsDisclosed("slow_io"));
  EXPECT_FALSE(filter.IsDisclosed("vm_crash"));
  EXPECT_EQ(filter.disclosed_events().size(), 1u);
}

TEST(CustomerIndicatorTest, OverlapHidingIsExact) {
  // Hidden event fully overlapped by a disclosed one with a higher weight:
  // the customer perspective loses nothing.
  const CustomerEventFilter filter = CustomerEventFilter::BuiltIn();
  const EventWeightModel model = MakeModel();
  const Interval day(T("2024-01-01 00:00"), T("2024-01-02 00:00"));
  const std::vector<ResolvedEvent> events = {
      // slow_io: critical + top tickets -> high weight, whole window.
      Res("slow_io", "2024-01-01 02:00", "2024-01-01 04:00",
          StabilityCategory::kPerformance, Severity::kFatal),
      // Hidden low-weight TDP event inside the same window.
      Res("inspect_cpu_power_tdp", "2024-01-01 02:30", "2024-01-01 03:00",
          StabilityCategory::kPerformance, Severity::kInfo),
  };
  auto cmp = CompareCdiAndCpi(events, model, filter, day);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->HiddenPerformance(), 0.0);
}

}  // namespace
}  // namespace cdibot
