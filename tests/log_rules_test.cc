#include <gtest/gtest.h>

#include "extract/log_rules.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

TEST(LogRulesTest, CreateValidation) {
  EXPECT_TRUE(LogRuleExtractor::Create({LogRule{.event_name = "",
                                                .pattern = "x"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LogRuleExtractor::Create({LogRule{.event_name = "bad",
                                                .pattern = "("}})
                  .status()
                  .IsInvalidArgument());
}

// Fig. 1: "eth0 NIC Link is Down" becomes nic_flapping; the Up line and
// unrelated noise are discarded.
TEST(LogRulesTest, PaperExample1NicFlapping) {
  auto extractor = LogRuleExtractor::BuiltIn().value();
  const LogLine down{.time = T("2024-01-01 12:16:28"),
                     .target = "nc-3",
                     .text = "kernel: eth0 NIC Link is Down"};
  auto ev = extractor.Extract(down);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "nic_flapping");
  EXPECT_EQ(ev->target, "nc-3");
  EXPECT_EQ(ev->level, Severity::kCritical);
  EXPECT_EQ(ev->time, T("2024-01-01 12:16:28"));

  EXPECT_FALSE(extractor
                   .Extract({.time = T("2024-01-01 12:16:35"),
                             .target = "nc-3",
                             .text = "kernel: eth0 NIC Link is Up 25Gbps"})
                   .has_value());
  EXPECT_FALSE(extractor
                   .Extract({.time = T("2024-01-01 12:16:40"),
                             .target = "nc-3",
                             .text = "systemd: session opened"})
                   .has_value());
}

TEST(LogRulesTest, QemuDurationCapture) {
  auto extractor = LogRuleExtractor::BuiltIn().value();
  auto ev = extractor.Extract(
      {.time = T("2024-01-01 03:00"),
       .target = "vm-9",
       .text = "qemu: live upgrade complete, pause=1234ms"});
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "qemu_live_upgrade");
  EXPECT_EQ(ev->LoggedDuration()->millis(), 1234);
}

TEST(LogRulesTest, FirstMatchingRuleWins) {
  auto extractor =
      LogRuleExtractor::Create(
          {LogRule{.event_name = "first", .pattern = "error"},
           LogRule{.event_name = "second", .pattern = "disk error"}})
          .value();
  auto ev = extractor.Extract(
      {.time = T("2024-01-01 00:00"), .target = "x", .text = "disk error"});
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "first");
}

TEST(LogRulesTest, ExtractAllKeepsOnlyMatches) {
  auto extractor = LogRuleExtractor::BuiltIn().value();
  std::vector<LogLine> lines = {
      {.time = T("2024-01-01 00:01"), .target = "a", .text = "noise"},
      {.time = T("2024-01-01 00:02"), .target = "a",
       .text = "watchdog: guest unresponsive"},
      {.time = T("2024-01-01 00:03"), .target = "a", .text = "more noise"},
      {.time = T("2024-01-01 00:04"), .target = "a",
       .text = "GPU has fallen off the bus"},
  };
  auto events = extractor.ExtractAll(lines);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "vm_hang");
  EXPECT_EQ(events[1].name, "gpu_drop");
}

TEST(LogRulesTest, BuiltInRuleCount) {
  auto extractor = LogRuleExtractor::BuiltIn().value();
  EXPECT_EQ(extractor.num_rules(), 5u);
}

}  // namespace
}  // namespace cdibot
