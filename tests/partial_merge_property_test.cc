// Property tests for the mergeable partials the shard gather rests on.
//
// Two different guarantees are pinned, deliberately separately:
//  * UnavailabilityPartial is all-integer (episode count + two millisecond
//    durations), so its merge is EXACTLY associative, commutative and
//    identity-respecting — any shard split of the fleet produces the same
//    bits. FromRaw round-trips it across a wire encoding.
//  * FleetCdiPartial sums doubles, so its merge is commutative but only
//    approximately associative (FP addition reorders differ in the last
//    ulp). That is precisely why topologies cannot just merge partials and
//    expect bit-identity — and why CanonicalCdiFold exists: it re-sorts
//    terms by vm_id and left-folds, making the result bit-identical under
//    ANY partition and permutation of the fleet. The fuzz cases here
//    randomize shard splits exactly the way a ShardCoordinator would.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "cdi/aggregate.h"
#include "cdi/baselines.h"
#include "common/rng.h"
#include "common/time.h"

namespace cdibot {
namespace {

struct Term {
  std::string vm_id;
  VmCdi cdi;
};

std::vector<Term> RandomFleet(Rng& rng) {
  const int n = static_cast<int>(rng.UniformInt(1, 40));
  std::vector<Term> fleet;
  fleet.reserve(n);
  for (int i = 0; i < n; ++i) {
    Term t;
    t.vm_id = "vm-" + std::to_string(i);
    // Spread magnitudes widely so FP non-associativity would actually bite
    // if the fold were order-sensitive.
    t.cdi.unavailability =
        rng.NextDouble() * (rng.Bernoulli(0.3) ? 1e-9 : 1.0);
    t.cdi.performance = rng.NextDouble() * (rng.Bernoulli(0.3) ? 1e6 : 1.0);
    t.cdi.control_plane = rng.NextDouble();
    t.cdi.service_time =
        Duration::Minutes(rng.UniformInt(1, 24 * 60));
    fleet.push_back(std::move(t));
  }
  return fleet;
}

/// Splits the fleet into `shards` contiguous runs of a random permutation —
/// the adversarial version of what a ShardCoordinator does.
std::vector<std::vector<Term>> RandomSplit(const std::vector<Term>& fleet,
                                           size_t shards, Rng& rng) {
  std::vector<Term> shuffled = fleet;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
  }
  std::vector<std::vector<Term>> parts(shards);
  for (const Term& t : shuffled) {
    parts[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(shards) - 1))].push_back(t);
  }
  return parts;
}

VmCdi CanonicalOver(const std::vector<Term>& terms) {
  CanonicalCdiFold fold;
  for (const Term& t : terms) fold.Add(t.vm_id, t.cdi);
  return fold.Finalize();
}

// --- CanonicalCdiFold: bit-identical under any partition + permutation ----

TEST(CanonicalCdiFoldTest, BitIdenticalUnderAnyPartitionAndPermutation) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const std::vector<Term> fleet = RandomFleet(rng);
    const VmCdi want = CanonicalOver(fleet);
    for (size_t shards : {1u, 2u, 3u, 5u, 8u}) {
      // Rows travel shard-by-shard in arbitrary order; the coordinator
      // feeds the concatenation to one fold.
      const auto parts = RandomSplit(fleet, shards, rng);
      CanonicalCdiFold fold;
      for (const auto& part : parts) {
        for (const Term& t : part) fold.Add(t.vm_id, t.cdi);
      }
      const VmCdi got = fold.Finalize();
      EXPECT_EQ(want.unavailability, got.unavailability)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(want.performance, got.performance)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(want.control_plane, got.control_plane)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(want.service_time, got.service_time)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(CanonicalCdiFoldTest, EmptyFoldFinalizesToZero) {
  CanonicalCdiFold fold;
  EXPECT_TRUE(fold.empty());
  const VmCdi zero = fold.Finalize();
  EXPECT_EQ(zero.unavailability, 0.0);
  EXPECT_EQ(zero.performance, 0.0);
  EXPECT_EQ(zero.control_plane, 0.0);
  EXPECT_TRUE(zero.service_time.IsZero());
}

TEST(CanonicalCdiFoldTest, MatchesDirectFleetPartialOnSortedInput) {
  // On already-ascending input the canonical fold IS the plain left fold.
  Rng rng(7);
  std::vector<Term> fleet = RandomFleet(rng);
  std::sort(fleet.begin(), fleet.end(),
            [](const Term& a, const Term& b) { return a.vm_id < b.vm_id; });
  FleetCdiPartial plain;
  for (const Term& t : fleet) plain.AddVm(t.cdi);
  const VmCdi want = plain.Finalize();
  const VmCdi got = CanonicalOver(fleet);
  EXPECT_EQ(want.unavailability, got.unavailability);
  EXPECT_EQ(want.performance, got.performance);
  EXPECT_EQ(want.control_plane, got.control_plane);
  EXPECT_EQ(want.service_time, got.service_time);
}

// --- FleetCdiPartial: commutative, associative to FP tolerance, identity --

TEST(FleetCdiPartialMergeTest, IdentityElement) {
  Rng rng(11);
  const std::vector<Term> fleet = RandomFleet(rng);
  FleetCdiPartial a;
  for (const Term& t : fleet) a.AddVm(t.cdi);
  FleetCdiPartial left = a, empty1;
  left.Merge(empty1);  // a * e == a
  FleetCdiPartial empty2;
  empty2.Merge(a);  // e * a == a
  const VmCdi want = a.Finalize();
  EXPECT_EQ(want.unavailability, left.Finalize().unavailability);
  EXPECT_EQ(want.unavailability, empty2.Finalize().unavailability);
  EXPECT_EQ(want.performance, empty2.Finalize().performance);
  EXPECT_EQ(want.service_time, empty2.Finalize().service_time);
}

TEST(FleetCdiPartialMergeTest, CommutativeExactly) {
  // a + b == b + a holds bitwise for IEEE doubles.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const std::vector<Term> fleet = RandomFleet(rng);
    const auto parts = RandomSplit(fleet, 2, rng);
    FleetCdiPartial a, b;
    for (const Term& t : parts[0]) a.AddVm(t.cdi);
    for (const Term& t : parts[1]) b.AddVm(t.cdi);
    FleetCdiPartial ab = a, ba = b;
    ab.Merge(b);
    ba.Merge(a);
    EXPECT_EQ(ab.Finalize().unavailability, ba.Finalize().unavailability)
        << seed;
    EXPECT_EQ(ab.Finalize().performance, ba.Finalize().performance) << seed;
    EXPECT_EQ(ab.Finalize().control_plane, ba.Finalize().control_plane)
        << seed;
    EXPECT_EQ(ab.Finalize().service_time, ba.Finalize().service_time)
        << seed;
  }
}

TEST(FleetCdiPartialMergeTest, AssociativeToFpTolerance) {
  // (a*b)*c vs a*(b*c): equal as real numbers, so within relative FP
  // tolerance — but NOT guaranteed bitwise, which is the entire reason the
  // gather uses CanonicalCdiFold instead of merging shard partials.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed + 100);
    const std::vector<Term> fleet = RandomFleet(rng);
    const auto parts = RandomSplit(fleet, 3, rng);
    FleetCdiPartial a, b, c;
    for (const Term& t : parts[0]) a.AddVm(t.cdi);
    for (const Term& t : parts[1]) b.AddVm(t.cdi);
    for (const Term& t : parts[2]) c.AddVm(t.cdi);
    FleetCdiPartial ab = a;
    ab.Merge(b);
    ab.Merge(c);  // (a*b)*c
    FleetCdiPartial bc = b;
    bc.Merge(c);
    FleetCdiPartial a_bc = a;
    a_bc.Merge(bc);  // a*(b*c)
    const VmCdi left = ab.Finalize();
    const VmCdi right = a_bc.Finalize();
    const double tol = 1e-12;
    EXPECT_NEAR(left.unavailability, right.unavailability,
                tol * (1.0 + std::abs(left.unavailability)))
        << seed;
    EXPECT_NEAR(left.performance, right.performance,
                tol * (1.0 + std::abs(left.performance)))
        << seed;
    EXPECT_NEAR(left.control_plane, right.control_plane,
                tol * (1.0 + std::abs(left.control_plane)))
        << seed;
    EXPECT_EQ(left.service_time, right.service_time) << seed;
  }
}

// --- UnavailabilityPartial: exact under every grouping ---------------------

UnavailabilityStats RandomVmBaseline(Rng& rng, Duration* service_out) {
  UnavailabilityStats vm;
  vm.interruption_count = static_cast<size_t>(rng.UniformInt(0, 5));
  vm.downtime = Duration::Millis(rng.UniformInt(0, 3600 * 1000));
  *service_out = Duration::Minutes(rng.UniformInt(1, 24 * 60));
  return vm;
}

TEST(UnavailabilityPartialMergeTest, ExactlyAssociativeCommutativeIdentity) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const int n = static_cast<int>(rng.UniformInt(1, 30));
    // The reference: one partial over everything, in order.
    UnavailabilityPartial all;
    std::vector<std::pair<UnavailabilityStats, Duration>> vms;
    for (int i = 0; i < n; ++i) {
      Duration service;
      const UnavailabilityStats vm = RandomVmBaseline(rng, &service);
      all.AddVm(vm, service);
      vms.emplace_back(vm, service);
    }
    const UnavailabilityStats want = all.Finalize();

    // Any random grouping into shards, merged in any order, is bit-equal.
    for (size_t shards : {2u, 3u, 7u}) {
      std::vector<UnavailabilityPartial> parts(shards);
      for (auto it = vms.rbegin(); it != vms.rend(); ++it) {  // reversed
        parts[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(shards) - 1))]
            .AddVm(it->first, it->second);
      }
      // Merge right-to-left (the opposite of the natural order).
      UnavailabilityPartial merged;
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        merged.Merge(*it);
      }
      const UnavailabilityStats got = merged.Finalize();
      EXPECT_EQ(want.interruption_count, got.interruption_count) << seed;
      EXPECT_EQ(want.downtime, got.downtime) << seed;
      EXPECT_EQ(want.downtime_percentage, got.downtime_percentage) << seed;
      EXPECT_EQ(want.annual_interruption_rate, got.annual_interruption_rate)
          << seed;
      EXPECT_EQ(want.mtbf, got.mtbf) << seed;
      EXPECT_EQ(want.mttr, got.mttr) << seed;
    }

    // Identity element.
    UnavailabilityPartial with_empty = all;
    with_empty.Merge(UnavailabilityPartial());
    EXPECT_EQ(want.downtime_percentage,
              with_empty.Finalize().downtime_percentage);
  }
}

TEST(UnavailabilityPartialMergeTest, FromRawRoundTripsExactly) {
  // The wire form of a shard's baseline is (count, downtime, service): all
  // integers, so reconstruction is lossless and merging reconstructed
  // partials equals merging the originals.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    UnavailabilityPartial a;
    const int n = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < n; ++i) {
      Duration service;
      const UnavailabilityStats vm = RandomVmBaseline(rng, &service);
      a.AddVm(vm, service);
    }
    const UnavailabilityPartial b = UnavailabilityPartial::FromRaw(
        a.raw_interruption_count(), a.raw_downtime(), a.raw_service_total());
    EXPECT_EQ(a.raw_interruption_count(), b.raw_interruption_count());
    EXPECT_EQ(a.raw_downtime(), b.raw_downtime());
    EXPECT_EQ(a.raw_service_total(), b.raw_service_total());
    const UnavailabilityStats want = a.Finalize();
    const UnavailabilityStats got = b.Finalize();
    EXPECT_EQ(want.downtime_percentage, got.downtime_percentage) << seed;
    EXPECT_EQ(want.annual_interruption_rate, got.annual_interruption_rate)
        << seed;
    EXPECT_EQ(want.mtbf, got.mtbf) << seed;
    EXPECT_EQ(want.mttr, got.mttr) << seed;
  }
}

}  // namespace
}  // namespace cdibot
