// Malformed-checkpoint corpus: every way a checkpoint directory can be
// damaged — torn files, bit rot, missing files, tampered counters, future
// format versions — and the exact status each one must produce. The restore
// path must refuse to load anything inconsistent rather than resume from a
// lie; the slot store must retry transient I/O and give up on permanent.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/atomic_io.h"
#include "storage/checkpoint_store.h"
#include "storage/stream_checkpoint.h"

namespace cdibot {
namespace {

namespace fs = std::filesystem;

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

const std::vector<std::string> kCheckpointFiles = {
    "stream_meta.csv", "stream_vms.csv", "stream_events.csv",
    "stream_orphans.csv", "stream_quality.csv"};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

StreamCheckpoint Golden() {
    StreamCheckpoint ckpt;
    const TimePoint day = T("2026-05-20 00:00");
    ckpt.window = Interval(day, day + Duration::Days(1));
    ckpt.watermark = day + Duration::Hours(1);
    ckpt.max_event_time = day + Duration::Hours(2);
    ckpt.events_ingested = 10;
    ckpt.events_late = 1;
    ckpt.events_out_of_window = 2;
    ckpt.events_orphaned = 3;
    ckpt.vms_recomputed = 4;
    ckpt.quarantined_by_reason = {0, 2, 0, 1, 0, 0, 0};

    CheckpointVmEntry vm_a;
    vm_a.vm_id = "vm-a";
    vm_a.dims = {{"region", "eu"}, {"pool", "general"}};
    vm_a.service_period = ckpt.window;
    ckpt.vms.push_back(vm_a);
    CheckpointVmEntry vm_b;
    vm_b.vm_id = "vm-b";
    vm_b.service_period = ckpt.window;
    ckpt.vms.push_back(vm_b);

    RawEvent ev;
    ev.name = "slow_io";
    ev.time = day + Duration::Hours(2);
    ev.target = "vm-sev";  // unique marker so tests can patch this row
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(1);
    ev.attrs["duration_ms"] = "60000";
    ckpt.events.push_back(ev);
    ev.target = "vm-a";
    ev.attrs.clear();
    ckpt.events.push_back(ev);

    RawEvent orphan = ev;
    orphan.target = "vm-unregistered";
    ckpt.orphan_events.push_back(orphan);

    CheckpointTargetQuality q;
    q.target = "vm-a";
    q.received = 5;
    q.expected = 6;
    q.quarantined = 1;
    ckpt.target_quality.push_back(q);
    return ckpt;
}

class CheckpointCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process directory: ctest may run corpus cases concurrently in
    // separate processes, and a shared path lets them corrupt each other.
    dir_ = ::testing::TempDir() + "/ckpt_corpus_" +
           std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ASSERT_TRUE(SaveStreamCheckpoint(Golden(), dir_).ok());
  }

  std::string Path(const std::string& file) const { return dir_ + "/" + file; }

  /// Edits one data file, then re-seals the directory with a fresh valid
  /// MANIFEST so the semantic validators (not the CRC check) see the edit.
  void PatchAndReseal(const std::string& file, const std::string& from,
                      const std::string& to) {
    std::string text = ReadAll(Path(file));
    const size_t at = text.find(from);
    ASSERT_NE(at, std::string::npos) << from << " not in " << file;
    text.replace(at, from.size(), to);
    WriteAll(Path(file), text);
    ASSERT_TRUE(WriteDirManifest(dir_, kStreamCheckpointManifestFormat,
                                 kCheckpointFiles)
                    .ok());
  }

  std::string dir_;
};

TEST_F(CheckpointCorpusTest, RoundTripPreservesEverything) {
  const StreamCheckpoint golden = Golden();
  auto loaded = LoadStreamCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->window.start, golden.window.start);
  EXPECT_EQ(loaded->window.end, golden.window.end);
  EXPECT_EQ(loaded->watermark, golden.watermark);
  EXPECT_EQ(loaded->max_event_time, golden.max_event_time);
  EXPECT_EQ(loaded->events_ingested, golden.events_ingested);
  EXPECT_EQ(loaded->events_late, golden.events_late);
  EXPECT_EQ(loaded->events_out_of_window, golden.events_out_of_window);
  EXPECT_EQ(loaded->events_orphaned, golden.events_orphaned);
  EXPECT_EQ(loaded->vms_recomputed, golden.vms_recomputed);
  EXPECT_EQ(loaded->quarantined_by_reason, golden.quarantined_by_reason);

  ASSERT_EQ(loaded->vms.size(), 2u);
  EXPECT_EQ(loaded->vms[0].vm_id, "vm-a");
  EXPECT_EQ(loaded->vms[0].dims, golden.vms[0].dims);
  EXPECT_TRUE(loaded->vms[1].dims.empty());

  ASSERT_EQ(loaded->events.size(), 2u);
  EXPECT_EQ(loaded->events[0].name, "slow_io");
  EXPECT_EQ(loaded->events[0].time, golden.events[0].time);
  EXPECT_EQ(loaded->events[0].attrs.at("duration_ms"), "60000");
  ASSERT_EQ(loaded->orphan_events.size(), 1u);
  EXPECT_EQ(loaded->orphan_events[0].target, "vm-unregistered");

  ASSERT_EQ(loaded->target_quality.size(), 1u);
  EXPECT_EQ(loaded->target_quality[0].target, "vm-a");
  EXPECT_EQ(loaded->target_quality[0].received, 5u);
  EXPECT_EQ(loaded->target_quality[0].expected, 6u);
  EXPECT_EQ(loaded->target_quality[0].quarantined, 1u);
}

TEST_F(CheckpointCorpusTest, ManifestDetectsMissingFile) {
  fs::remove(Path("stream_events.csv"));
  EXPECT_TRUE(LoadStreamCheckpoint(dir_).status().IsDataLoss());
}

TEST_F(CheckpointCorpusTest, ManifestDetectsTruncation) {
  std::string text = ReadAll(Path("stream_vms.csv"));
  ASSERT_GT(text.size(), 5u);
  text.resize(text.size() - 5);  // the torn write: tail never hit disk
  WriteAll(Path("stream_vms.csv"), text);
  EXPECT_TRUE(LoadStreamCheckpoint(dir_).status().IsDataLoss());
}

TEST_F(CheckpointCorpusTest, ManifestDetectsBitRot) {
  std::string text = ReadAll(Path("stream_quality.csv"));
  text[text.size() / 2] ^= 0x20;  // same size, different bytes
  WriteAll(Path("stream_quality.csv"), text);
  EXPECT_TRUE(LoadStreamCheckpoint(dir_).status().IsDataLoss());
}

TEST_F(CheckpointCorpusTest, WrongManifestTagIsDataLoss) {
  ASSERT_TRUE(
      WriteDirManifest(dir_, "cdibot-checkpoint-v999", kCheckpointFiles)
          .ok());
  EXPECT_TRUE(LoadStreamCheckpoint(dir_).status().IsDataLoss());
}

TEST_F(CheckpointCorpusTest, GarbageManifestIsRejected) {
  WriteAll(Path(kManifestFileName), "not a manifest at all\n");
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsNotFound());  // garbage is not "no manifest"
}

TEST_F(CheckpointCorpusTest, FutureFormatVersionIsRejected) {
  PatchAndReseal("stream_meta.csv", "format_version,2", "format_version,3");
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("unsupported checkpoint format_version"),
            std::string::npos)
      << st.ToString();
}

TEST_F(CheckpointCorpusTest, WatermarkBeyondMaxEventTimeIsRejected) {
  // Golden: watermark = day+1h, max_event_time = day+2h. Push the watermark
  // an hour past max_event_time — an impossible state for the engine.
  const int64_t wm = (T("2026-05-20 00:00") + Duration::Hours(1)).millis();
  const int64_t beyond = (T("2026-05-20 00:00") + Duration::Hours(3)).millis();
  PatchAndReseal("stream_meta.csv",
                 "watermark_ms," + std::to_string(wm),
                 "watermark_ms," + std::to_string(beyond));
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("beyond max_event_time"), std::string::npos);
}

TEST_F(CheckpointCorpusTest, NegativeIngestCounterIsRejected) {
  PatchAndReseal("stream_meta.csv", "events_ingested,10",
                 "events_ingested,-10");
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("negative"), std::string::npos);
}

TEST_F(CheckpointCorpusTest, NegativeQuarantineCounterIsRejected) {
  PatchAndReseal("stream_meta.csv", "quarantined_reason_1,2",
                 "quarantined_reason_1,-2");
  EXPECT_TRUE(LoadStreamCheckpoint(dir_).status().IsInvalidArgument());
}

TEST_F(CheckpointCorpusTest, NegativeQualityCounterIsRejected) {
  PatchAndReseal("stream_quality.csv", "vm-a,5,6,1", "vm-a,-5,6,1");
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("negative quality counter"), std::string::npos);
}

TEST_F(CheckpointCorpusTest, MissingMetaKeyIsRejected) {
  const int64_t wm = (T("2026-05-20 00:00") + Duration::Hours(1)).millis();
  PatchAndReseal("stream_meta.csv",
                 "watermark_ms," + std::to_string(wm) + "\n", "");
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("missing"), std::string::npos);
}

TEST_F(CheckpointCorpusTest, BadSeverityEventRowIsRejected) {
  // Find the unique vm-sev event row and stomp its severity ordinal.
  std::string text = ReadAll(Path("stream_events.csv"));
  const size_t at = text.find("vm-sev,");
  ASSERT_NE(at, std::string::npos);
  text[at + 7] = '9';  // severity is the column right after the target
  WriteAll(Path("stream_events.csv"), text);
  ASSERT_TRUE(WriteDirManifest(dir_, kStreamCheckpointManifestFormat,
                               kCheckpointFiles)
                  .ok());
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("bad severity"), std::string::npos);
}

TEST_F(CheckpointCorpusTest, MalformedPackedMapCellIsRejected) {
  // vm-b has no dims, so its cell is empty; inject a cell with a pair but
  // no unit separator between key and value.
  PatchAndReseal("stream_vms.csv", "vm-b,,", "vm-b,broken-cell,");
  const Status st = LoadStreamCheckpoint(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("malformed packed map"), std::string::npos);
}

TEST_F(CheckpointCorpusTest, LegacyV1DirectoryWithoutManifestStillLoads) {
  // Pre-v2 saves have no MANIFEST and no quality file; they load without an
  // integrity check and with empty quality history.
  fs::remove(Path(kManifestFileName));
  fs::remove(Path("stream_quality.csv"));
  auto loaded = LoadStreamCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->events_ingested, 10u);
  EXPECT_EQ(loaded->vms.size(), 2u);
  EXPECT_EQ(loaded->events.size(), 2u);
  EXPECT_TRUE(loaded->target_quality.empty());
}

// --- StreamCheckpointStore: injected I/O faults against the retry path ----

TEST(CheckpointStoreFaultTest, SaveRetriesTransientInjectedFaults) {
  const std::string root = ::testing::TempDir() + "/store_transient";
  fs::remove_all(root);
  CheckpointStoreOptions options;
  int failures_left = 2;
  options.io_fault = [&failures_left](std::string_view op) {
    if (op == "save" && failures_left > 0) {
      --failures_left;
      return Status::Unavailable("injected");
    }
    return Status::OK();
  };
  auto store = StreamCheckpointStore::Open(root, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(Golden()).ok());
  EXPECT_EQ(store->last_attempts(), 3);
  EXPECT_EQ(store->ListSlots().size(), 1u);
  EXPECT_TRUE(store->LoadLastGood().ok());
}

TEST(CheckpointStoreFaultTest, PermanentInjectedFaultAbortsSaveCleanly) {
  const std::string root = ::testing::TempDir() + "/store_permanent";
  fs::remove_all(root);
  CheckpointStoreOptions options;
  options.io_fault = [](std::string_view) {
    return Status::DataLoss("disk is lying");
  };
  auto store = StreamCheckpointStore::Open(root, options);
  ASSERT_TRUE(store.ok());
  const Status st = store->Save(Golden());
  EXPECT_TRUE(st.IsDataLoss());
  EXPECT_EQ(store->last_attempts(), 1);  // DataLoss is never retried
  // The aborted save left no half-written slot for LoadLastGood to trip on.
  EXPECT_TRUE(store->ListSlots().empty());
}

TEST(CheckpointStoreFaultTest, LoadRetriesTransientInjectedFaults) {
  const std::string root = ::testing::TempDir() + "/store_load_transient";
  fs::remove_all(root);
  int failures_left = 1;
  CheckpointStoreOptions options;
  options.io_fault = [&failures_left](std::string_view op) {
    if (op == "load" && failures_left > 0) {
      --failures_left;
      return Status::Unavailable("injected");
    }
    return Status::OK();
  };
  auto store = StreamCheckpointStore::Open(root, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(Golden()).ok());
  auto loaded = store->LoadLastGood();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(store->last_attempts(), 2);
  EXPECT_EQ(loaded->events_ingested, 10u);
}

}  // namespace
}  // namespace cdibot
