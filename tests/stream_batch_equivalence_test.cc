// Differential suite: the streaming engine's snapshot must equal the batch
// DailyCdiJob on the same inputs, for any arrival order. Each seed builds a
// randomized scenario — out-of-order (shuffled) arrivals, VMs with partial
// service windows, mid-day churn (VMs registered late or re-registered with
// a changed window), unknown/duplicate/out-of-window events, stateful
// add/del streams and logged-duration events — feeds the identical event
// set to both engines, and requires per-VM and fleet CDI-U/P/C to agree to
// within 1e-9 (they agree exactly in practice: the per-VM math is the same
// code, and period resolution is arrival-order invariant).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cdi/pipeline.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "storage/stream_checkpoint.h"
#include "stream/streaming_engine.h"
#include "equivalence_scenario.h"

namespace cdibot {
namespace {

using testutil::MakeScenario;
using testutil::Scenario;

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  EquivalenceTest() : catalog_(EventCatalog::BuiltIn()) {
    auto ticket = TicketRankModel::FromCounts(
        {{"slow_io", 100}, {"packet_loss", 60}, {"vcpu_high", 40},
         {"vm_start_failed", 20}},
        4);
    weights_.emplace(
        EventWeightModel::Build(std::move(ticket).value(), {}).value());
  }

  DailyCdiResult RunBatch(const Scenario& sc, ThreadPool* pool) {
    EventLog log;
    log.AppendBatch(sc.arrivals);
    DailyCdiJob job(&log, &catalog_, &*weights_, {.pool = pool});
    auto result = job.Run(sc.vms, sc.day);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  DailyCdiResult RunStream(const Scenario& sc, ThreadPool* pool,
                           bool checkpoint_midway) {
    StreamingCdiOptions opts;
    opts.window = sc.day;
    opts.pool = pool;
    opts.num_shards = 1 + GetParam() % 7;  // vary sharding too
    auto engine =
        StreamingCdiEngine::Create(&catalog_, &*weights_, opts).value();

    std::vector<std::string> late(sc.late_registered);
    for (const VmServiceInfo& vm : sc.vms) {
      if (std::find(late.begin(), late.end(), vm.vm_id) != late.end()) {
        continue;  // registered only mid-stream
      }
      auto it = sc.initial_override.find(vm.vm_id);
      EXPECT_TRUE(
          engine.RegisterVm(it != sc.initial_override.end() ? it->second : vm)
              .ok());
    }

    const size_t half = sc.arrivals.size() / 2;
    for (size_t i = 0; i < sc.arrivals.size(); ++i) {
      EXPECT_TRUE(engine.Ingest(sc.arrivals[i]).ok());
      if (i + 1 == half) {
        // Mid-stream: churn lands (late registrations + window changes),
        // and an intra-day snapshot must not disturb the final result.
        for (const VmServiceInfo& vm : sc.vms) {
          if (sc.initial_override.count(vm.vm_id) > 0 ||
              std::find(late.begin(), late.end(), vm.vm_id) != late.end()) {
            EXPECT_TRUE(engine.RegisterVm(vm).ok());
          }
        }
        EXPECT_TRUE(engine.Snapshot().ok());
        if (checkpoint_midway) {
          // Per-seed/per-process directory: ctest runs each seed as its
          // own process, possibly concurrently, and checkpoints in a
          // shared TempDir() tear each other's manifest/CSV pairs apart.
          const std::string dir = ::testing::TempDir() + "/stream_eq_ckpt_" +
                                  std::to_string(GetParam()) + "_" +
                                  std::to_string(::getpid());
          std::filesystem::create_directories(dir);
          EXPECT_TRUE(SaveStreamCheckpoint(engine.Checkpoint(), dir).ok());
          auto loaded = LoadStreamCheckpoint(dir);
          EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
          auto restored = StreamingCdiEngine::Restore(*loaded, &catalog_,
                                                      &*weights_, opts);
          EXPECT_TRUE(restored.ok()) << restored.status().ToString();
          engine = std::move(*restored);
          std::filesystem::remove_all(dir);
        }
      }
    }
    auto snap = engine.Snapshot();
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    return std::move(snap).value();
  }

  static void ExpectSameCdi(const VmCdi& a, const VmCdi& b,
                            const std::string& what) {
    EXPECT_NEAR(a.unavailability, b.unavailability, 1e-9) << what;
    EXPECT_NEAR(a.performance, b.performance, 1e-9) << what;
    EXPECT_NEAR(a.control_plane, b.control_plane, 1e-9) << what;
    EXPECT_EQ(a.service_time, b.service_time) << what;
  }

  EventCatalog catalog_;
  std::optional<EventWeightModel> weights_;
};

TEST_P(EquivalenceTest, StreamSnapshotMatchesBatchJob) {
  const Scenario sc = MakeScenario(GetParam());
  ThreadPool pool(4);
  const DailyCdiResult batch = RunBatch(sc, &pool);
  // Every 4th seed also exercises checkpoint/restore mid-stream.
  const DailyCdiResult stream =
      RunStream(sc, &pool, /*checkpoint_midway=*/GetParam() % 4 == 0);

  ExpectSameCdi(batch.fleet, stream.fleet, "fleet");

  // Per-VM rows match one-to-one (batch order is input order, stream order
  // is sorted; compare by id).
  std::map<std::string, const VmCdiRecord*> batch_vms;
  for (const VmCdiRecord& rec : batch.per_vm) batch_vms[rec.vm_id] = &rec;
  ASSERT_EQ(batch.per_vm.size(), stream.per_vm.size());
  for (const VmCdiRecord& rec : stream.per_vm) {
    auto it = batch_vms.find(rec.vm_id);
    ASSERT_NE(it, batch_vms.end()) << rec.vm_id;
    ExpectSameCdi(it->second->cdi, rec.cdi, rec.vm_id);
  }

  // Aggregates, baselines, counters, and data-quality stats line up too.
  EXPECT_EQ(batch.vms_evaluated, stream.vms_evaluated);
  EXPECT_EQ(batch.vms_skipped, stream.vms_skipped);
  EXPECT_EQ(batch.vms_failed, stream.vms_failed);
  EXPECT_EQ(batch.fleet_service_time, stream.fleet_service_time);
  EXPECT_NEAR(batch.fleet_baseline.downtime_percentage,
              stream.fleet_baseline.downtime_percentage, 1e-9);
  EXPECT_NEAR(batch.fleet_baseline.annual_interruption_rate,
              stream.fleet_baseline.annual_interruption_rate, 1e-9);
  EXPECT_EQ(batch.resolve_stats.resolved, stream.resolve_stats.resolved);
  EXPECT_EQ(batch.resolve_stats.unknown_dropped,
            stream.resolve_stats.unknown_dropped);
  EXPECT_EQ(batch.resolve_stats.duplicate_details_dropped,
            stream.resolve_stats.duplicate_details_dropped);
  EXPECT_EQ(batch.resolve_stats.dangling_end_dropped,
            stream.resolve_stats.dangling_end_dropped);
  EXPECT_EQ(batch.resolve_stats.unpaired_start_closed,
            stream.resolve_stats.unpaired_start_closed);

  // Per-event drill-down damage totals per (vm, event).
  std::map<std::pair<std::string, std::string>, double> batch_damage;
  for (const EventCdiRecord& rec : batch.per_event) {
    batch_damage[{rec.vm_id, rec.event_name}] += rec.damage_minutes;
  }
  std::map<std::pair<std::string, std::string>, double> stream_damage;
  for (const EventCdiRecord& rec : stream.per_event) {
    stream_damage[{rec.vm_id, rec.event_name}] += rec.damage_minutes;
  }
  ASSERT_EQ(batch_damage.size(), stream_damage.size());
  for (const auto& [key, damage] : batch_damage) {
    auto it = stream_damage.find(key);
    ASSERT_NE(it, stream_damage.end()) << key.first << "/" << key.second;
    EXPECT_NEAR(damage, it->second, 1e-9)
        << key.first << "/" << key.second;
  }
}

// Re-delivering the whole stream a second time must not change the result:
// duplicates hit the resolver's dedup rules identically in both engines.
TEST_P(EquivalenceTest, DoubleDeliveryStillMatchesBatch) {
  if (GetParam() % 5 != 0) GTEST_SKIP() << "subset of seeds";
  Scenario sc = MakeScenario(GetParam());
  const size_t original = sc.arrivals.size();
  sc.arrivals.reserve(original * 2);
  for (size_t i = 0; i < original; ++i) sc.arrivals.push_back(sc.arrivals[i]);
  const DailyCdiResult batch = RunBatch(sc, nullptr);
  const DailyCdiResult stream = RunStream(sc, nullptr, false);
  ExpectSameCdi(batch.fleet, stream.fleet, "fleet under double delivery");
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace cdibot
