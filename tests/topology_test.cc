#include <gtest/gtest.h>

#include "telemetry/topology.h"

namespace cdibot {
namespace {

FleetTopology SmallTopology() {
  FleetTopology topo;
  EXPECT_TRUE(topo.AddCluster("r0", "r0-az0", "c0").ok());
  EXPECT_TRUE(topo.AddCluster("r0", "r0-az1", "c1").ok());
  EXPECT_TRUE(topo.AddNc({.nc_id = "nc0",
                          .cluster_id = "c0",
                          .arch = DeploymentArch::kHybrid,
                          .model = "gen2"})
                  .ok());
  EXPECT_TRUE(topo.AddNc({.nc_id = "nc1", .cluster_id = "c1"}).ok());
  EXPECT_TRUE(topo.AddVm({.vm_id = "vm0",
                          .nc_id = "nc0",
                          .type = VmType::kDedicated,
                          .core_begin = 0,
                          .core_end = 8})
                  .ok());
  EXPECT_TRUE(topo.AddVm({.vm_id = "vm1",
                          .nc_id = "nc0",
                          .type = VmType::kShared,
                          .core_begin = 8,
                          .core_end = 12})
                  .ok());
  return topo;
}

TEST(TopologyTest, Lookups) {
  const FleetTopology topo = SmallTopology();
  EXPECT_EQ(topo.num_vms(), 2u);
  EXPECT_EQ(topo.num_ncs(), 2u);
  EXPECT_EQ(topo.FindVm("vm0")->type, VmType::kDedicated);
  EXPECT_EQ(topo.FindNc("nc0")->model, "gen2");
  EXPECT_TRUE(topo.FindVm("nope").status().IsNotFound());
  EXPECT_TRUE(topo.FindNc("nope").status().IsNotFound());
}

TEST(TopologyTest, ReferentialIntegrity) {
  FleetTopology topo;
  EXPECT_TRUE(topo.AddNc({.nc_id = "nc0", .cluster_id = "ghost"}).IsNotFound());
  ASSERT_TRUE(topo.AddCluster("r0", "az0", "c0").ok());
  EXPECT_TRUE(topo.AddVm({.vm_id = "vm0", .nc_id = "ghost"}).IsNotFound());
}

TEST(TopologyTest, DuplicateIdsRejected) {
  FleetTopology topo = SmallTopology();
  EXPECT_TRUE(topo.AddCluster("r9", "az9", "c0").IsAlreadyExists());
  EXPECT_TRUE(topo.AddNc({.nc_id = "nc0", .cluster_id = "c0"})
                  .IsAlreadyExists());
  EXPECT_TRUE(
      topo.AddVm({.vm_id = "vm0", .nc_id = "nc0"}).IsAlreadyExists());
}

TEST(TopologyTest, VmsOnNc) {
  const FleetTopology topo = SmallTopology();
  EXPECT_EQ(topo.VmsOnNc("nc0"), (std::vector<std::string>{"vm0", "vm1"}));
  EXPECT_TRUE(topo.VmsOnNc("nc1").empty());
  EXPECT_TRUE(topo.VmsOnNc("ghost").empty());
}

TEST(TopologyTest, DimsForVmExposeDrilldownKeys) {
  const FleetTopology topo = SmallTopology();
  auto dims = topo.DimsForVm("vm0");
  ASSERT_TRUE(dims.ok());
  EXPECT_EQ(dims->at("region"), "r0");
  EXPECT_EQ(dims->at("az"), "r0-az0");
  EXPECT_EQ(dims->at("cluster"), "c0");
  EXPECT_EQ(dims->at("nc"), "nc0");
  EXPECT_EQ(dims->at("type"), "dedicated");
  EXPECT_EQ(dims->at("arch"), "hybrid");
  EXPECT_EQ(dims->at("model"), "gen2");
  EXPECT_TRUE(topo.DimsForVm("ghost").status().IsNotFound());
}

TEST(TopologyTest, EnumRendering) {
  EXPECT_EQ(VmTypeToString(VmType::kShared), "shared");
  EXPECT_EQ(DeploymentArchToString(DeploymentArch::kHomogeneous),
            "homogeneous");
}

}  // namespace
}  // namespace cdibot
