#include <gtest/gtest.h>

#include <cmath>

#include "anomaly/evt.h"
#include "common/rng.h"

namespace cdibot {
namespace {

TEST(GpdFitTest, ExponentialExcessesGiveNearZeroShape) {
  Rng rng(5);
  std::vector<double> excesses;
  for (int i = 0; i < 5000; ++i) excesses.push_back(rng.Exponential(0.5));
  auto fit = FitGpdPwm(excesses);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->shape, 0.0, 0.08);
  EXPECT_NEAR(fit->scale, 2.0, 0.15);  // mean of exp(0.5) is 2
}

TEST(GpdFitTest, HeavyTailGivesPositiveShape) {
  Rng rng(6);
  std::vector<double> excesses;
  // Pareto(1, 2) - 1 is GPD with shape 0.5, scale 0.5.
  for (int i = 0; i < 20000; ++i) excesses.push_back(rng.Pareto(1.0, 2.0) - 1.0);
  auto fit = FitGpdPwm(excesses);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->shape, 0.3);
}

TEST(GpdFitTest, Validation) {
  EXPECT_TRUE(FitGpdPwm({1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(FitGpdPwm({1.0, -0.5}).status().IsInvalidArgument());
}

std::vector<double> GaussianSeries(Rng* rng, int n) {
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(rng->Normal(0.0, 1.0));
  return out;
}

TEST(SpotTest, CalibrationValidation) {
  Rng rng(7);
  const auto data = GaussianSeries(&rng, 500);
  EXPECT_TRUE(SpotDetector::Calibrate(data, 0.0).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SpotDetector::Calibrate(data, 1e-4, 1.5).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SpotDetector::Calibrate({1.0, 2.0}, 1e-4).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SpotDetector::Calibrate(data, 1e-4).ok());
}

TEST(SpotTest, ThresholdAboveCalibrationQuantile) {
  Rng rng(8);
  const auto data = GaussianSeries(&rng, 2000);
  auto det = SpotDetector::Calibrate(data, 1e-4).value();
  EXPECT_GT(det.threshold(), det.peaks_threshold());
  EXPECT_GT(det.threshold(), 2.0);  // far above the 98% quantile of N(0,1)
}

TEST(SpotTest, FlagsExtremesNotNoise) {
  Rng rng(9);
  auto det = SpotDetector::Calibrate(GaussianSeries(&rng, 2000), 1e-5).value();
  int false_alarms = 0;
  for (int i = 0; i < 5000; ++i) {
    if (det.Observe(rng.Normal(0.0, 1.0))) ++false_alarms;
  }
  EXPECT_LT(false_alarms, 5);
  EXPECT_TRUE(det.Observe(1000.0));
}

TEST(SpotTest, AdaptsThresholdWithNewPeaks) {
  Rng rng(10);
  auto det = SpotDetector::Calibrate(GaussianSeries(&rng, 2000), 1e-4).value();
  const size_t initial_peaks = det.num_peaks();
  // Feed values between t and z_q: they become peaks and refit the tail.
  const double mid = (det.peaks_threshold() + det.threshold()) / 2.0;
  for (int i = 0; i < 50; ++i) det.Observe(mid);
  EXPECT_GT(det.num_peaks(), initial_peaks);
}

TEST(SpotTest, AnomaliesDoNotPolluteModel) {
  Rng rng(11);
  auto det = SpotDetector::Calibrate(GaussianSeries(&rng, 2000), 1e-4).value();
  const double before = det.threshold();
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(det.Observe(1e6));
  // Extreme anomalies are excluded from refitting, so z_q cannot explode.
  EXPECT_DOUBLE_EQ(det.threshold(), before);
}

}  // namespace
}  // namespace cdibot
