#include <gtest/gtest.h>

#include "ops/operation_platform.h"

namespace cdibot {
namespace {

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

ActionRequest Req(ActionType type, const std::string& target,
                  int priority = 0) {
  return ActionRequest{.type = type,
                       .target = target,
                       .source_rule = "test",
                       .priority = priority,
                       .submitted_at = T("2024-01-01 12:00")};
}

size_t CountOutcome(const std::vector<ActionRecord>& records,
                    ActionOutcome outcome) {
  size_t n = 0;
  for (const auto& r : records) {
    if (r.outcome == outcome) ++n;
  }
  return n;
}

TEST(OperationPlatformTest, RequestsFromMatchRoutesTargets) {
  OperationPlatform platform;
  RuleMatch match{.rule_name = "nic_error_cause_slow_io",
                  .target = "vm-1",
                  .time = T("2024-01-01 12:18"),
                  .actions = {{"live_migration", 10},
                              {"repair_request", 5},
                              {"nc_lock", 8}}};
  auto reqs = platform.RequestsFromMatch(match, "nc-3");
  ASSERT_TRUE(reqs.ok());
  ASSERT_EQ(reqs->size(), 3u);
  EXPECT_EQ((*reqs)[0].target, "vm-1");  // VM operation targets the VM
  EXPECT_EQ((*reqs)[1].target, "nc-3");  // hardware repair targets the host
  EXPECT_EQ((*reqs)[2].target, "nc-3");  // lock targets the host
}

TEST(OperationPlatformTest, RequestsFromMatchRejectsUnknownAction) {
  OperationPlatform platform;
  RuleMatch match{.rule_name = "r",
                  .target = "vm-1",
                  .time = T("2024-01-01 12:00"),
                  .actions = {{"teleport", 1}}};
  EXPECT_TRUE(platform.RequestsFromMatch(match, "nc-1").status().IsNotFound());
}

TEST(OperationPlatformTest, Example1FullFlowLocksNc) {
  OperationPlatform platform;
  std::vector<ActionRequest> reqs = {
      Req(ActionType::kLiveMigration, "vm-1", 10),
      Req(ActionType::kRepairRequest, "nc-3", 5),
      Req(ActionType::kNcLock, "nc-3", 8),
  };
  auto records = platform.Submit(std::move(reqs), {{"vm-1", "nc-3"}});
  EXPECT_EQ(CountOutcome(records, ActionOutcome::kExecuted), 3u);
  EXPECT_TRUE(platform.IsLocked("nc-3"));
  EXPECT_FALSE(platform.IsDecommissioned("nc-3"));
  // Repair done: Example 1 ends with the machine unlocked.
  platform.Unlock("nc-3");
  EXPECT_FALSE(platform.IsLocked("nc-3"));
}

TEST(OperationPlatformTest, ConflictingVmActionsKeepHighestPriority) {
  OperationPlatform platform;
  auto records = platform.Submit(
      {Req(ActionType::kLiveMigration, "vm-1", 10),
       Req(ActionType::kInPlaceReboot, "vm-1", 3)},
      {{"vm-1", "nc-1"}});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].request.type, ActionType::kLiveMigration);
  EXPECT_EQ(records[0].outcome, ActionOutcome::kExecuted);
  EXPECT_EQ(records[1].outcome, ActionOutcome::kDiscardedConflict);
  EXPECT_EQ(platform.ExecutedCount(ActionType::kInPlaceReboot), 0u);
}

TEST(OperationPlatformTest, DuplicateRequestsCollapse) {
  OperationPlatform platform;
  auto records = platform.Submit({Req(ActionType::kRepairRequest, "nc-1", 5),
                                  Req(ActionType::kRepairRequest, "nc-1", 5)},
                                 {});
  EXPECT_EQ(CountOutcome(records, ActionOutcome::kExecuted), 1u);
  EXPECT_EQ(CountOutcome(records, ActionOutcome::kDiscardedConflict), 1u);
}

TEST(OperationPlatformTest, NcRebootSupersedesVmMigration) {
  OperationPlatform platform;
  auto records = platform.Submit(
      {Req(ActionType::kNcReboot, "nc-1", 20),
       Req(ActionType::kLiveMigration, "vm-1", 10)},
      {{"vm-1", "nc-1"}});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].request.type, ActionType::kNcReboot);
  EXPECT_EQ(records[0].outcome, ActionOutcome::kExecuted);
  EXPECT_EQ(records[1].outcome, ActionOutcome::kDiscardedConflict);
}

TEST(OperationPlatformTest, DecommissionedHostRejectsMigrationsAndRepairs) {
  OperationPlatform platform;
  platform.Submit({Req(ActionType::kNcDecommission, "nc-1", 30)}, {});
  ASSERT_TRUE(platform.IsDecommissioned("nc-1"));
  auto records = platform.Submit(
      {Req(ActionType::kLiveMigration, "vm-1", 10),
       Req(ActionType::kDiskClean, "nc-1", 5)},
      {{"vm-1", "nc-1"}});
  EXPECT_EQ(CountOutcome(records, ActionOutcome::kDiscardedLocked), 2u);
}

TEST(OperationPlatformTest, PriorityOrdersExecution) {
  OperationPlatform platform;
  platform.Submit({Req(ActionType::kRepairRequest, "nc-1", 1),
                   Req(ActionType::kNcLock, "nc-2", 9),
                   Req(ActionType::kDiskClean, "nc-3", 5)},
                  {});
  const auto& history = platform.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].request.type, ActionType::kNcLock);
  EXPECT_EQ(history[1].request.type, ActionType::kDiskClean);
  EXPECT_EQ(history[2].request.type, ActionType::kRepairRequest);
}

TEST(OperationPlatformTest, DifferentVmsDoNotConflict) {
  OperationPlatform platform;
  auto records = platform.Submit(
      {Req(ActionType::kLiveMigration, "vm-1", 10),
       Req(ActionType::kLiveMigration, "vm-2", 10)},
      {{"vm-1", "nc-1"}, {"vm-2", "nc-1"}});
  EXPECT_EQ(CountOutcome(records, ActionOutcome::kExecuted), 2u);
  EXPECT_EQ(platform.ExecutedCount(ActionType::kLiveMigration), 2u);
}

}  // namespace
}  // namespace cdibot
