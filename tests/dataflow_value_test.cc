#include <gtest/gtest.h>

#include "dataflow/value.h"

namespace cdibot::dataflow {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).AsInt().value(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble().value(), 2.5);
  EXPECT_EQ(Value("hi").AsString().value(), "hi");
}

TEST(ValueTest, IntWidensToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble().value(), 3.0);
}

TEST(ValueTest, WrongTypeAccessFails) {
  EXPECT_TRUE(Value("x").AsInt().status().IsInvalidArgument());
  EXPECT_TRUE(Value("x").AsDouble().status().IsInvalidArgument());
  EXPECT_TRUE(Value(1.0).AsString().status().IsInvalidArgument());
  EXPECT_TRUE(Value().AsInt().status().IsInvalidArgument());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, OrderingWithinTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, CrossNumericOrderingAndEquality) {
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
  EXPECT_LT(Value(0.5), Value(int64_t{1}));
  EXPECT_TRUE(Value(int64_t{1}) == Value(1.0));
}

TEST(ValueTest, NullSortsFirstStringsLast) {
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1000}), Value("a"));
  EXPECT_FALSE(Value() < Value());
  EXPECT_TRUE(Value() == Value());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value("key").Hash(), Value("key").Hash());
}

}  // namespace
}  // namespace cdibot::dataflow
