#include <gtest/gtest.h>

#include "cdi/aggregate.h"

namespace cdibot {
namespace {

TEST(CdiAccumulatorTest, EmptyIsZero) {
  CdiAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.Value(), 0.0);
}

TEST(CdiAccumulatorTest, SingleValuePassesThrough) {
  CdiAccumulator acc;
  acc.Add(Duration::Minutes(60), 0.25);
  EXPECT_DOUBLE_EQ(acc.Value(), 0.25);
  EXPECT_EQ(acc.total_service_time(), Duration::Minutes(60));
}

// Table IV bottom row: Q_all = (60*0.020 + 1440*0.002 + 1000*0.004) / 2500
// = 0.003 (the paper rounds; exact value is 0.003232 with exact Q_2).
TEST(CdiAccumulatorTest, PaperTable4Aggregate) {
  CdiAccumulator acc;
  acc.Add(Duration::Minutes(60), 0.020);
  acc.Add(Duration::Minutes(1440), 0.002);
  acc.Add(Duration::Minutes(1000), 0.004);
  EXPECT_NEAR(acc.Value(), (60 * 0.020 + 1440 * 0.002 + 1000 * 0.004) / 2500.0,
              1e-12);
  EXPECT_NEAR(acc.Value(), 0.003, 5e-4);
}

TEST(CdiAccumulatorTest, ZeroServiceTimeEntriesDoNotCount) {
  CdiAccumulator acc;
  acc.Add(Duration::Zero(), 0.9);
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.Value(), 0.0);
}

TEST(CdiAccumulatorTest, MergeEqualsUnion) {
  CdiAccumulator a, b, merged;
  a.Add(Duration::Minutes(30), 0.1);
  a.Add(Duration::Minutes(90), 0.5);
  b.Add(Duration::Minutes(60), 0.9);
  merged.Add(Duration::Minutes(30), 0.1);
  merged.Add(Duration::Minutes(90), 0.5);
  merged.Add(Duration::Minutes(60), 0.9);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Value(), merged.Value());
  EXPECT_EQ(a.total_service_time(), merged.total_service_time());
}

TEST(CdiAccumulatorTest, ValueIsWithinInputRange) {
  CdiAccumulator acc;
  acc.Add(Duration::Minutes(10), 0.2);
  acc.Add(Duration::Minutes(50), 0.8);
  EXPECT_GE(acc.Value(), 0.2);
  EXPECT_LE(acc.Value(), 0.8);
}

TEST(AggregateVmCdiTest, AggregatesEachSubMetric) {
  std::vector<VmCdi> vms = {
      VmCdi{.unavailability = 0.1,
            .performance = 0.2,
            .control_plane = 0.0,
            .service_time = Duration::Minutes(100)},
      VmCdi{.unavailability = 0.3,
            .performance = 0.0,
            .control_plane = 0.4,
            .service_time = Duration::Minutes(300)},
  };
  const VmCdi all = AggregateVmCdi(vms);
  EXPECT_NEAR(all.unavailability, (100 * 0.1 + 300 * 0.3) / 400.0, 1e-12);
  EXPECT_NEAR(all.performance, (100 * 0.2) / 400.0, 1e-12);
  EXPECT_NEAR(all.control_plane, (300 * 0.4) / 400.0, 1e-12);
  EXPECT_EQ(all.service_time, Duration::Minutes(400));
}

TEST(AggregateVmCdiTest, EmptyInput) {
  const VmCdi all = AggregateVmCdi({});
  EXPECT_DOUBLE_EQ(all.unavailability, 0.0);
  EXPECT_DOUBLE_EQ(all.performance, 0.0);
  EXPECT_DOUBLE_EQ(all.control_plane, 0.0);
  EXPECT_EQ(all.service_time, Duration::Zero());
}

TEST(AggregateVmCdiTest, AggregationIsIdempotentOnUniformFleet) {
  // Every VM identical -> aggregate equals the individual value.
  std::vector<VmCdi> vms(10, VmCdi{.unavailability = 0.05,
                                   .performance = 0.01,
                                   .control_plane = 0.02,
                                   .service_time = Duration::Days(1)});
  const VmCdi all = AggregateVmCdi(vms);
  EXPECT_NEAR(all.unavailability, 0.05, 1e-12);
  EXPECT_NEAR(all.performance, 0.01, 1e-12);
  EXPECT_NEAR(all.control_plane, 0.02, 1e-12);
}

}  // namespace
}  // namespace cdibot
