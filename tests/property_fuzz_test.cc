// Randomized property tests: differential checks and invariants that hold
// for arbitrary inputs, swept over many seeds with parameterized gtest.
#include <gtest/gtest.h>

#include <map>

#include "cdi/aggregate.h"
#include "common/rng.h"
#include "dataflow/engine.h"
#include "event/period_resolver.h"

namespace cdibot {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

// --- Interval algebra -------------------------------------------------------

TEST_P(FuzzTest, IntervalAlgebraLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    auto mk = [&rng]() {
      const int64_t a = rng.UniformInt(0, 1000);
      const int64_t b = rng.UniformInt(0, 1000);
      return Interval(TimePoint::FromMillis(a), TimePoint::FromMillis(b));
    };
    const Interval x = mk(), y = mk(), z = mk();
    // Intersection is commutative (as a set: empty==empty in length terms).
    EXPECT_EQ(x.Intersect(y).length(), y.Intersect(x).length());
    // Clamping is idempotent.
    const Interval once = x.ClampTo(y);
    EXPECT_EQ(once.ClampTo(y).length(), once.length());
    // Intersection is associative in length.
    EXPECT_EQ(x.Intersect(y).Intersect(z).length(),
              x.Intersect(y.Intersect(z)).length());
    // Overlap symmetric and consistent with intersection.
    EXPECT_EQ(x.Overlaps(y), y.Overlaps(x));
    EXPECT_EQ(x.Overlaps(y), !x.Intersect(y).empty());
  }
}

// --- Period resolver invariants ---------------------------------------------

TEST_P(FuzzTest, ResolverInvariantsOnRandomStreams) {
  Rng rng(GetParam() + 1000);
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const PeriodResolver resolver(&catalog);
  const TimePoint day0 = TimePoint::Parse("2024-06-01 00:00").value();
  const Interval bounds(day0, day0 + Duration::Days(1));

  const char* names[] = {"slow_io",           "packet_loss",
                         "qemu_live_upgrade", "ddos_blackhole_add",
                         "ddos_blackhole_del", "not_in_catalog"};
  std::vector<RawEvent> raw;
  const int n = static_cast<int>(rng.UniformInt(0, 120));
  for (int i = 0; i < n; ++i) {
    RawEvent ev;
    ev.name = names[rng.UniformInt(0, 5)];
    ev.time = day0 + Duration::Millis(
                  rng.UniformInt(-3600000, bounds.length().millis()));
    ev.target = rng.Bernoulli(0.5) ? "vm-a" : "vm-b";
    ev.level = static_cast<Severity>(rng.UniformInt(1, 4));
    ev.expire_interval = Duration::Hours(rng.UniformInt(1, 24));
    if (rng.Bernoulli(0.3)) {
      ev.attrs["duration_ms"] =
          std::to_string(rng.UniformInt(100, 600000));
    }
    raw.push_back(std::move(ev));
  }

  ResolveStats stats;
  auto resolved = resolver.Resolve(raw, bounds, &stats);
  ASSERT_TRUE(resolved.ok());

  size_t unknown_in = 0;
  for (const RawEvent& ev : raw) {
    if (ev.name == std::string("not_in_catalog")) ++unknown_in;
  }
  EXPECT_EQ(stats.unknown_dropped, unknown_in);

  std::map<std::string, std::vector<Interval>> stateful_periods;
  for (const ResolvedEvent& ev : *resolved) {
    // Every period is non-empty and inside the bounds.
    EXPECT_FALSE(ev.period.empty());
    EXPECT_GE(ev.period.start, bounds.start);
    EXPECT_LE(ev.period.end, bounds.end);
    // Names are parent names, never details or unknowns.
    EXPECT_TRUE(catalog.Contains(ev.name));
    EXPECT_NE(ev.name, "ddos_blackhole_add");
    EXPECT_NE(ev.name, "not_in_catalog");
    if (ev.name == "ddos_blackhole") {
      stateful_periods[ev.target].push_back(ev.period);
    }
  }
  // Stateful episodes of one target never overlap (pairing is sequential).
  for (auto& [target, periods] : stateful_periods) {
    std::sort(periods.begin(), periods.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (size_t i = 1; i < periods.size(); ++i) {
      EXPECT_LE(periods[i - 1].end, periods[i].start) << target;
    }
  }
  // Counters are consistent: every input is resolved, dropped, or merged
  // into a stateful pair (a resolved pair consumes 2 inputs; an unpaired
  // start consumes 1).
  EXPECT_LE(stats.resolved, raw.size());
}

// Resolution is invariant under arrival-order permutations: the resolver
// canonicalizes internally, so shuffled (or late, out-of-order) delivery of
// the same raw set produces the same periods and the same data-quality
// counters. This is the property the streaming engine's batch-equivalence
// guarantee rests on.
TEST_P(FuzzTest, ResolverIsPermutationInvariant) {
  Rng rng(GetParam() + 4000);
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const PeriodResolver resolver(&catalog);
  const TimePoint day0 = TimePoint::Parse("2024-06-01 00:00").value();
  const Interval bounds(day0, day0 + Duration::Days(1));

  const char* names[] = {"slow_io",           "packet_loss",
                         "qemu_live_upgrade", "ddos_blackhole_add",
                         "ddos_blackhole_del", "not_in_catalog"};
  std::vector<RawEvent> raw;
  const int n = static_cast<int>(rng.UniformInt(2, 120));
  for (int i = 0; i < n; ++i) {
    RawEvent ev;
    ev.name = names[rng.UniformInt(0, 5)];
    // Coarse timestamps on purpose: collisions are likely, so the
    // permutation invariance must hold even for ties.
    ev.time = day0 + Duration::Minutes(rng.UniformInt(-60, 24 * 60));
    ev.target = rng.Bernoulli(0.5) ? "vm-a" : "vm-b";
    ev.level = static_cast<Severity>(rng.UniformInt(1, 4));
    ev.expire_interval = Duration::Hours(rng.UniformInt(1, 24));
    raw.push_back(std::move(ev));
    // Exact duplicates (double delivery) are part of the input space.
    if (rng.Bernoulli(0.15)) raw.push_back(raw.back());
  }

  auto canonical = [](std::vector<ResolvedEvent> events) {
    std::sort(events.begin(), events.end(),
              [](const ResolvedEvent& a, const ResolvedEvent& b) {
                return std::tie(a.target, a.name, a.period.start,
                                a.period.end) <
                       std::tie(b.target, b.name, b.period.start,
                                b.period.end);
              });
    return events;
  };

  ResolveStats base_stats;
  auto base = resolver.Resolve(raw, bounds, &base_stats);
  ASSERT_TRUE(base.ok());
  const auto base_sorted = canonical(*base);

  for (int round = 0; round < 5; ++round) {
    std::vector<RawEvent> shuffled = raw;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1],
                shuffled[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(i) - 1))]);
    }
    ResolveStats stats;
    auto resolved = resolver.Resolve(shuffled, bounds, &stats);
    ASSERT_TRUE(resolved.ok());
    const auto sorted = canonical(*resolved);

    ASSERT_EQ(sorted.size(), base_sorted.size()) << "round " << round;
    for (size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i].name, base_sorted[i].name);
      EXPECT_EQ(sorted[i].target, base_sorted[i].target);
      EXPECT_EQ(sorted[i].period.start, base_sorted[i].period.start);
      EXPECT_EQ(sorted[i].period.end, base_sorted[i].period.end);
      EXPECT_EQ(sorted[i].level, base_sorted[i].level);
      EXPECT_EQ(sorted[i].category, base_sorted[i].category);
    }
    EXPECT_EQ(stats.resolved, base_stats.resolved);
    EXPECT_EQ(stats.unknown_dropped, base_stats.unknown_dropped);
    EXPECT_EQ(stats.duplicate_details_dropped,
              base_stats.duplicate_details_dropped);
    EXPECT_EQ(stats.dangling_end_dropped, base_stats.dangling_end_dropped);
    EXPECT_EQ(stats.unpaired_start_closed, base_stats.unpaired_start_closed);
  }
}

// Late delivery as a prefix/suffix split: resolving the full set equals
// resolving "everything seen so far plus the stragglers", regardless of
// where the split falls — the recompute-from-buffer model the streaming
// engine uses is therefore exact, never approximate.
TEST_P(FuzzTest, LateDeliverySplitIsExact) {
  Rng rng(GetParam() + 5000);
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const PeriodResolver resolver(&catalog);
  const TimePoint day0 = TimePoint::Parse("2024-06-01 00:00").value();
  const Interval bounds(day0, day0 + Duration::Days(1));

  std::vector<RawEvent> raw;
  const char* names[] = {"slow_io", "ddos_blackhole_add",
                         "ddos_blackhole_del"};
  const int n = static_cast<int>(rng.UniformInt(4, 80));
  for (int i = 0; i < n; ++i) {
    RawEvent ev;
    ev.name = names[rng.UniformInt(0, 2)];
    ev.time = day0 + Duration::Minutes(rng.UniformInt(0, 24 * 60 - 1));
    ev.target = "vm-a";
    ev.level = Severity::kCritical;
    ev.expire_interval = Duration::Hours(2);
    raw.push_back(std::move(ev));
  }

  ResolveStats full_stats;
  auto full = resolver.Resolve(raw, bounds, &full_stats);
  ASSERT_TRUE(full.ok());

  // "On-time" prefix arrives first, "late" suffix arrives afterwards in
  // reverse order; the union re-resolved must equal the one-shot result.
  const size_t cut = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(raw.size())));
  std::vector<RawEvent> replay(raw.begin(), raw.begin() + cut);
  for (size_t i = raw.size(); i > cut; --i) replay.push_back(raw[i - 1]);
  ResolveStats replay_stats;
  auto replayed = resolver.Resolve(replay, bounds, &replay_stats);
  ASSERT_TRUE(replayed.ok());

  ASSERT_EQ(replayed->size(), full->size());
  double full_minutes = 0.0, replay_minutes = 0.0;
  for (const ResolvedEvent& ev : *full) {
    full_minutes += ev.period.length().minutes();
  }
  for (const ResolvedEvent& ev : *replayed) {
    replay_minutes += ev.period.length().minutes();
  }
  EXPECT_DOUBLE_EQ(full_minutes, replay_minutes);
  EXPECT_EQ(replay_stats.resolved, full_stats.resolved);
}

// --- Dataflow group-by differential ------------------------------------------

TEST_P(FuzzTest, GroupByMatchesBruteForce) {
  Rng rng(GetParam() + 2000);
  using namespace dataflow;
  Table t(Schema({Field{"k", ValueType::kString},
                  Field{"x", ValueType::kDouble},
                  Field{"w", ValueType::kDouble}}));
  const int n = static_cast<int>(rng.UniformInt(0, 400));
  for (int i = 0; i < n; ++i) {
    t.AppendUnchecked(
        {Value("g" + std::to_string(rng.UniformInt(0, 5))),
         Value(rng.Uniform(-10.0, 10.0)), Value(rng.Uniform(0.1, 5.0))});
  }
  ExecContext ctx{};  // single-threaded is fine for the differential
  auto grouped = HashGroupBy(
      t, {"k"},
      {AggSpec{.kind = AggKind::kCount, .output_name = "n"},
       AggSpec{.kind = AggKind::kSum, .input_column = "x",
               .output_name = "sum"},
       AggSpec{.kind = AggKind::kWeightedMean, .input_column = "x",
               .weight_column = "w", .output_name = "wavg"}},
      ctx);
  ASSERT_TRUE(grouped.ok());

  struct Expect {
    int64_t count = 0;
    double sum = 0.0;
    double wsum = 0.0;
    double wtotal = 0.0;
  };
  std::map<std::string, Expect> expected;
  for (const Row& row : t.rows()) {
    Expect& e = expected[row[0].string_unchecked()];
    ++e.count;
    e.sum += row[1].double_unchecked();
    e.wsum += row[1].double_unchecked() * row[2].double_unchecked();
    e.wtotal += row[2].double_unchecked();
  }
  ASSERT_EQ(grouped->num_rows(), expected.size());
  for (size_t r = 0; r < grouped->num_rows(); ++r) {
    const std::string key = grouped->row(r)[0].string_unchecked();
    ASSERT_EQ(expected.count(key), 1u);
    const Expect& e = expected[key];
    EXPECT_EQ(grouped->At(r, "n")->AsInt().value(), e.count);
    EXPECT_NEAR(grouped->At(r, "sum")->AsDouble().value(), e.sum, 1e-9);
    EXPECT_NEAR(grouped->At(r, "wavg")->AsDouble().value(),
                e.wsum / e.wtotal, 1e-9);
  }
}

// --- Eq. 4 accumulator laws ---------------------------------------------------

TEST_P(FuzzTest, AccumulatorMergeIsSplitInvariant) {
  Rng rng(GetParam() + 3000);
  std::vector<std::pair<Duration, double>> samples;
  const int n = static_cast<int>(rng.UniformInt(1, 60));
  for (int i = 0; i < n; ++i) {
    samples.emplace_back(Duration::Minutes(rng.UniformInt(1, 3000)),
                         rng.Uniform(0.0, 1.0));
  }
  CdiAccumulator whole;
  for (const auto& [svc, q] : samples) whole.Add(svc, q);

  // Split at a random point; merged halves equal the whole.
  const size_t cut = static_cast<size_t>(rng.UniformInt(0, n));
  CdiAccumulator left, right;
  for (size_t i = 0; i < samples.size(); ++i) {
    (i < cut ? left : right).Add(samples[i].first, samples[i].second);
  }
  left.Merge(right);
  EXPECT_NEAR(left.Value(), whole.Value(), 1e-12);
  EXPECT_EQ(left.total_service_time(), whole.total_service_time());

  // Q is a weighted mean: bounded by min/max of inputs.
  double lo = 1.0, hi = 0.0;
  for (const auto& [svc, q] : samples) {
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  EXPECT_GE(whole.Value() + 1e-12, lo);
  EXPECT_LE(whole.Value() - 1e-12, hi);
}

// Retraction law: adding VMs then removing a subset equals building the
// partial from the remaining VMs directly (up to float rounding). This is
// what lets the streaming engine revise a VM in place.
TEST_P(FuzzTest, FleetPartialRetractionMatchesRebuild) {
  Rng rng(GetParam() + 6000);
  std::vector<VmCdi> vms;
  const int n = static_cast<int>(rng.UniformInt(1, 40));
  for (int i = 0; i < n; ++i) {
    VmCdi vm;
    vm.unavailability = rng.Uniform(0.0, 1.0);
    vm.performance = rng.Uniform(0.0, 1.0);
    vm.control_plane = rng.Uniform(0.0, 1.0);
    vm.service_time = Duration::Minutes(rng.UniformInt(1, 1440));
    vms.push_back(vm);
  }

  FleetCdiPartial churned;
  for (const VmCdi& vm : vms) churned.AddVm(vm);
  std::vector<bool> keep(vms.size(), true);
  for (size_t i = 0; i < vms.size(); ++i) {
    if (rng.Bernoulli(0.4)) {
      churned.RemoveVm(vms[i]);
      keep[i] = false;
    }
  }

  FleetCdiPartial rebuilt;
  for (size_t i = 0; i < vms.size(); ++i) {
    if (keep[i]) rebuilt.AddVm(vms[i]);
  }

  const VmCdi a = churned.Finalize();
  const VmCdi b = rebuilt.Finalize();
  EXPECT_NEAR(a.unavailability, b.unavailability, 1e-9);
  EXPECT_NEAR(a.performance, b.performance, 1e-9);
  EXPECT_NEAR(a.control_plane, b.control_plane, 1e-9);
  EXPECT_EQ(a.service_time, b.service_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cdibot
