// Randomized property tests: differential checks and invariants that hold
// for arbitrary inputs, swept over many seeds with parameterized gtest.
#include <gtest/gtest.h>

#include <map>

#include "cdi/aggregate.h"
#include "common/rng.h"
#include "dataflow/engine.h"
#include "event/period_resolver.h"

namespace cdibot {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

// --- Interval algebra -------------------------------------------------------

TEST_P(FuzzTest, IntervalAlgebraLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    auto mk = [&rng]() {
      const int64_t a = rng.UniformInt(0, 1000);
      const int64_t b = rng.UniformInt(0, 1000);
      return Interval(TimePoint::FromMillis(a), TimePoint::FromMillis(b));
    };
    const Interval x = mk(), y = mk(), z = mk();
    // Intersection is commutative (as a set: empty==empty in length terms).
    EXPECT_EQ(x.Intersect(y).length(), y.Intersect(x).length());
    // Clamping is idempotent.
    const Interval once = x.ClampTo(y);
    EXPECT_EQ(once.ClampTo(y).length(), once.length());
    // Intersection is associative in length.
    EXPECT_EQ(x.Intersect(y).Intersect(z).length(),
              x.Intersect(y.Intersect(z)).length());
    // Overlap symmetric and consistent with intersection.
    EXPECT_EQ(x.Overlaps(y), y.Overlaps(x));
    EXPECT_EQ(x.Overlaps(y), !x.Intersect(y).empty());
  }
}

// --- Period resolver invariants ---------------------------------------------

TEST_P(FuzzTest, ResolverInvariantsOnRandomStreams) {
  Rng rng(GetParam() + 1000);
  const EventCatalog catalog = EventCatalog::BuiltIn();
  const PeriodResolver resolver(&catalog);
  const TimePoint day0 = TimePoint::Parse("2024-06-01 00:00").value();
  const Interval bounds(day0, day0 + Duration::Days(1));

  const char* names[] = {"slow_io",           "packet_loss",
                         "qemu_live_upgrade", "ddos_blackhole_add",
                         "ddos_blackhole_del", "not_in_catalog"};
  std::vector<RawEvent> raw;
  const int n = static_cast<int>(rng.UniformInt(0, 120));
  for (int i = 0; i < n; ++i) {
    RawEvent ev;
    ev.name = names[rng.UniformInt(0, 5)];
    ev.time = day0 + Duration::Millis(
                  rng.UniformInt(-3600000, bounds.length().millis()));
    ev.target = rng.Bernoulli(0.5) ? "vm-a" : "vm-b";
    ev.level = static_cast<Severity>(rng.UniformInt(1, 4));
    ev.expire_interval = Duration::Hours(rng.UniformInt(1, 24));
    if (rng.Bernoulli(0.3)) {
      ev.attrs["duration_ms"] =
          std::to_string(rng.UniformInt(100, 600000));
    }
    raw.push_back(std::move(ev));
  }

  ResolveStats stats;
  auto resolved = resolver.Resolve(raw, bounds, &stats);
  ASSERT_TRUE(resolved.ok());

  size_t unknown_in = 0;
  for (const RawEvent& ev : raw) {
    if (ev.name == std::string("not_in_catalog")) ++unknown_in;
  }
  EXPECT_EQ(stats.unknown_dropped, unknown_in);

  std::map<std::string, std::vector<Interval>> stateful_periods;
  for (const ResolvedEvent& ev : *resolved) {
    // Every period is non-empty and inside the bounds.
    EXPECT_FALSE(ev.period.empty());
    EXPECT_GE(ev.period.start, bounds.start);
    EXPECT_LE(ev.period.end, bounds.end);
    // Names are parent names, never details or unknowns.
    EXPECT_TRUE(catalog.Contains(ev.name));
    EXPECT_NE(ev.name, "ddos_blackhole_add");
    EXPECT_NE(ev.name, "not_in_catalog");
    if (ev.name == "ddos_blackhole") {
      stateful_periods[ev.target].push_back(ev.period);
    }
  }
  // Stateful episodes of one target never overlap (pairing is sequential).
  for (auto& [target, periods] : stateful_periods) {
    std::sort(periods.begin(), periods.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (size_t i = 1; i < periods.size(); ++i) {
      EXPECT_LE(periods[i - 1].end, periods[i].start) << target;
    }
  }
  // Counters are consistent: every input is resolved, dropped, or merged
  // into a stateful pair (a resolved pair consumes 2 inputs; an unpaired
  // start consumes 1).
  EXPECT_LE(stats.resolved, raw.size());
}

// --- Dataflow group-by differential ------------------------------------------

TEST_P(FuzzTest, GroupByMatchesBruteForce) {
  Rng rng(GetParam() + 2000);
  using namespace dataflow;
  Table t(Schema({Field{"k", ValueType::kString},
                  Field{"x", ValueType::kDouble},
                  Field{"w", ValueType::kDouble}}));
  const int n = static_cast<int>(rng.UniformInt(0, 400));
  for (int i = 0; i < n; ++i) {
    t.AppendUnchecked(
        {Value("g" + std::to_string(rng.UniformInt(0, 5))),
         Value(rng.Uniform(-10.0, 10.0)), Value(rng.Uniform(0.1, 5.0))});
  }
  ExecContext ctx{};  // single-threaded is fine for the differential
  auto grouped = HashGroupBy(
      t, {"k"},
      {AggSpec{.kind = AggKind::kCount, .output_name = "n"},
       AggSpec{.kind = AggKind::kSum, .input_column = "x",
               .output_name = "sum"},
       AggSpec{.kind = AggKind::kWeightedMean, .input_column = "x",
               .weight_column = "w", .output_name = "wavg"}},
      ctx);
  ASSERT_TRUE(grouped.ok());

  struct Expect {
    int64_t count = 0;
    double sum = 0.0;
    double wsum = 0.0;
    double wtotal = 0.0;
  };
  std::map<std::string, Expect> expected;
  for (const Row& row : t.rows()) {
    Expect& e = expected[row[0].string_unchecked()];
    ++e.count;
    e.sum += row[1].double_unchecked();
    e.wsum += row[1].double_unchecked() * row[2].double_unchecked();
    e.wtotal += row[2].double_unchecked();
  }
  ASSERT_EQ(grouped->num_rows(), expected.size());
  for (size_t r = 0; r < grouped->num_rows(); ++r) {
    const std::string key = grouped->row(r)[0].string_unchecked();
    ASSERT_EQ(expected.count(key), 1u);
    const Expect& e = expected[key];
    EXPECT_EQ(grouped->At(r, "n")->AsInt().value(), e.count);
    EXPECT_NEAR(grouped->At(r, "sum")->AsDouble().value(), e.sum, 1e-9);
    EXPECT_NEAR(grouped->At(r, "wavg")->AsDouble().value(),
                e.wsum / e.wtotal, 1e-9);
  }
}

// --- Eq. 4 accumulator laws ---------------------------------------------------

TEST_P(FuzzTest, AccumulatorMergeIsSplitInvariant) {
  Rng rng(GetParam() + 3000);
  std::vector<std::pair<Duration, double>> samples;
  const int n = static_cast<int>(rng.UniformInt(1, 60));
  for (int i = 0; i < n; ++i) {
    samples.emplace_back(Duration::Minutes(rng.UniformInt(1, 3000)),
                         rng.Uniform(0.0, 1.0));
  }
  CdiAccumulator whole;
  for (const auto& [svc, q] : samples) whole.Add(svc, q);

  // Split at a random point; merged halves equal the whole.
  const size_t cut = static_cast<size_t>(rng.UniformInt(0, n));
  CdiAccumulator left, right;
  for (size_t i = 0; i < samples.size(); ++i) {
    (i < cut ? left : right).Add(samples[i].first, samples[i].second);
  }
  left.Merge(right);
  EXPECT_NEAR(left.Value(), whole.Value(), 1e-12);
  EXPECT_EQ(left.total_service_time(), whole.total_service_time());

  // Q is a weighted mean: bounded by min/max of inputs.
  double lo = 1.0, hi = 0.0;
  for (const auto& [svc, q] : samples) {
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  EXPECT_GE(whole.Value() + 1e-12, lo);
  EXPECT_LE(whole.Value() - 1e-12, hi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cdibot
