// Allocation-count regression tests for the zero-copy per-VM hot path.
//
// The data-plane redesign's core promise is that ComputeVmDailyCdi does not
// churn the heap: an event-free VM computes without touching it at all, and
// a VM with events stays within a small fixed budget (vectors sized by
// reserve, refs instead of copies, interned ids instead of strings). These
// tests pin that promise with a counting global operator new, so an
// accidental per-event std::string or map copy on the hot path fails CI
// instead of silently regressing throughput.
//
// This lives in its own test binary: replacing global operator new/delete
// is program-wide, and no other test should run under a counting allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cdi/pipeline.h"
#include "event/catalog.h"
#include "weights/event_weights.h"

namespace {

std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cdibot {
namespace {

/// Runs `fn` with allocation counting on and returns how many times global
/// operator new fired inside.
template <typename Fn>
size_t CountAllocations(Fn&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

TimePoint T(const char* s) { return TimePoint::Parse(s).value(); }

class AllocRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = EventCatalog::BuiltIn();
    resolver_ = std::make_unique<PeriodResolver>(&catalog_);
    auto tickets = TicketRankModel::FromCounts(
        {{"slow_io", 420}, {"vm_resize_failed", 77}}, /*num_levels=*/4);
    ASSERT_TRUE(tickets.ok());
    auto weights = EventWeightModel::Build(std::move(tickets).value(), {});
    ASSERT_TRUE(weights.ok());
    weights_ =
        std::make_unique<EventWeightModel>(std::move(weights).value());
    day_ = Interval(T("2024-03-01 00:00"), T("2024-03-02 00:00"));
    // Short id: stays in the small-string buffer, as fleet VM ids that
    // matter for the zero-alloc guarantee do.
    vm_ = VmServiceInfo{.vm_id = "vm-1", .dims = {}, .service_period = day_};
  }

  EventCatalog catalog_;
  std::unique_ptr<PeriodResolver> resolver_;
  std::unique_ptr<EventWeightModel> weights_;
  Interval day_;
  VmServiceInfo vm_;
};

TEST_F(AllocRegressionTest, EventFreeVmComputesWithoutAllocating) {
  const EventSpan empty_span(Interval(day_.start - kEventSearchMargin,
                                      day_.end + kEventSearchMargin));
  // Warm-up: lazily created statics (trace spans, metric histograms) and
  // any first-call caches allocate once per process, not per VM.
  auto run = [&] {
    auto out = ComputeVmDailyCdi(empty_span, vm_, day_, *resolver_,
                                 *weights_);
    ASSERT_TRUE(out.ok());
    ASSERT_FALSE(out->skipped);
  };
  run();
  const size_t allocs = CountAllocations(run);
  EXPECT_EQ(allocs, 0u)
      << "the event-free per-VM path must not touch the heap";
}

TEST_F(AllocRegressionTest, SkippedVmComputesWithoutAllocating) {
  VmServiceInfo off_day = vm_;
  off_day.service_period =
      Interval(T("2024-05-01 00:00"), T("2024-05-02 00:00"));
  const EventSpan empty_span;
  auto run = [&] {
    auto out = ComputeVmDailyCdi(empty_span, off_day, day_, *resolver_,
                                 *weights_);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->skipped);
  };
  run();
  EXPECT_EQ(CountAllocations(run), 0u);
}

TEST_F(AllocRegressionTest, SmallEventLoadStaysWithinFixedBudget) {
  // A handful of events on one VM: the output genuinely needs some heap
  // (result vectors, one drill-down row with an owned name string), but
  // the count must stay a small constant — not O(events) string copies.
  EventRows rows;  // on the global interner, like the log's partitions
  for (int m = 0; m < 8; ++m) {
    RawEvent ev;
    ev.name = "slow_io";
    ev.time = T("2024-03-01 09:00") + Duration::Minutes(m);
    ev.target = "vm-1";
    ev.level = Severity::kCritical;
    rows.Append(ev);
  }
  EventSpan span(Interval(day_.start - kEventSearchMargin,
                          day_.end + kEventSearchMargin));
  span.AddSegment(EventSpan::Segment{
      .rows = &rows, .indices = nullptr, .first = 0,
      .last = static_cast<uint32_t>(rows.size())});

  auto run = [&] {
    auto out = ComputeVmDailyCdi(span, vm_, day_, *resolver_, *weights_);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->events.size(), 1u);  // one distinct event name
  };
  run();
  const size_t allocs = CountAllocations(run);
  // Budget, not exact count: vector growth policy may vary across standard
  // libraries. 48 is ~2x the libstdc++ count observed at the time of
  // writing; a per-event copy of 8 events' strings/maps would blow past it.
  EXPECT_LE(allocs, 48u) << "hot-path allocation count regressed";
  EXPECT_GT(allocs, 0u);  // the counter itself works
}

TEST_F(AllocRegressionTest, PerEventCostIsFlat) {
  // Doubling the event count must not double allocations: grouping works
  // on interned ids and refs, so extra events of the same name only grow
  // the (reserved) vectors.
  auto make_span = [this](int events, EventRows* rows) {
    for (int m = 0; m < events; ++m) {
      RawEvent ev;
      ev.name = "slow_io";
      ev.time = T("2024-03-01 09:00") + Duration::Minutes(m);
      ev.target = "vm-1";
      ev.level = Severity::kCritical;
      rows->Append(ev);
    }
    EventSpan span(Interval(day_.start - kEventSearchMargin,
                            day_.end + kEventSearchMargin));
    span.AddSegment(EventSpan::Segment{
        .rows = rows, .indices = nullptr, .first = 0,
        .last = static_cast<uint32_t>(rows->size())});
    return span;
  };
  EventRows rows16, rows64;
  const EventSpan span16 = make_span(16, &rows16);
  const EventSpan span64 = make_span(64, &rows64);
  auto run = [&](const EventSpan& span) {
    auto out = ComputeVmDailyCdi(span, vm_, day_, *resolver_, *weights_);
    ASSERT_TRUE(out.ok());
  };
  run(span16);
  run(span64);
  const size_t a16 = CountAllocations([&] { run(span16); });
  const size_t a64 = CountAllocations([&] { run(span64); });
  // 4x the events may cost a few more vector doublings (log-many), never
  // 4x the allocations.
  EXPECT_LT(a64, 2 * a16 + 16)
      << "a16=" << a16 << " a64=" << a64
      << ": allocation count grows with event count";
}

}  // namespace
}  // namespace cdibot
